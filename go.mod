module cdb

go 1.22
