// Package client is the typed Go client for cdbd, CDB's HTTP serving
// front-end. It speaks the /v1 JSON wire protocol: blocking queries
// (Query), round-by-round streaming of long-lived crowd queries
// (QueryStream), and catalog introspection (Tables). Errors come back
// typed — an *APIError unwraps to the cdb sentinels (cdb.ErrOverloaded,
// cdb.ErrUnknownTable, *cdb.ParseError), so remote callers branch with
// errors.Is/As exactly like embedded ones.
//
// This file is the wire schema, shared verbatim with internal/server:
// both sides marshal these structs, so a field rename is caught by the
// golden-file tests rather than by a confused peer.
package client

import "cdb"

// QueryRequest is the body of POST /v1/query and /v1/query/stream.
type QueryRequest struct {
	// Query is one CQL SELECT statement.
	Query string `json:"query"`
	// TimeoutMs optionally bounds execution server-side; past it the
	// query degrades gracefully and returns its partial result
	// (Stats.Partial) exactly like DB.ExecContext with a deadline.
	// Zero means no server-side deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// TablesResponse is the body of GET /v1/tables.
type TablesResponse struct {
	Tables []string `json:"tables"`
}

// Correlation headers. Every response carries HeaderRequestID; requests
// may supply it to name the query across client logs, server logs,
// trace spans and the query log. HeaderTraceParent is the W3C
// trace-context header; the server joins an incoming trace (minting a
// child span ID) or starts a fresh one.
const (
	HeaderRequestID   = "X-CDB-Request-ID"
	HeaderTraceParent = "traceparent"
)

// QueryInfo is one query's introspection record in GET /v1/queries —
// the wire form of cdb.QueryStatus. States are the cdb.Query*
// constants: queued, running, draining, done, shared, failed.
type QueryInfo struct {
	// ID is the engine-local submission sequence number.
	ID int64 `json:"id"`
	// RequestID is the correlation ID the query ran under.
	RequestID string `json:"request_id,omitempty"`
	// Query is the submitted CQL text.
	Query string `json:"query"`
	// State is the lifecycle state at snapshot time.
	State string `json:"state"`
	// ElapsedMs counts from admission (total time once completed).
	ElapsedMs int64 `json:"elapsed_ms"`
	// Rounds..Open mirror cdb.QueryStatus: completed crowd rounds, the
	// work they issued, and the edges still open after the last round.
	Rounds      int `json:"rounds"`
	Tasks       int `json:"tasks,omitempty"`
	Assignments int `json:"assignments,omitempty"`
	Open        int `json:"open,omitempty"`
	// HITs, Coalesced and Cached are final sharing economics (completed
	// queries only).
	HITs      int `json:"hits,omitempty"`
	Coalesced int `json:"coalesced,omitempty"`
	Cached    int `json:"cached,omitempty"`
	// Ledger counts tasks served from the durable crowd-work ledger —
	// paid for before a restart, re-issued zero times (completed
	// queries only; absent when the server runs without -ledger-dir).
	Ledger int `json:"ledger,omitempty"`
	// Plan is the planned join order ("p2→p0→p1", with "→∅" marking a
	// plan-time early exit) and PlanEarlyExits its early-exit count;
	// absent when the server runs without the greedy planner.
	Plan           string `json:"plan,omitempty"`
	PlanEarlyExits int    `json:"plan_early_exits,omitempty"`
	// Error is the failure message (state "failed" only).
	Error string `json:"error,omitempty"`
}

// LedgerInfo is the server-wide durability summary on GET /v1/queries:
// what the crowd-work ledger holds, what it replayed at boot, and how
// much of this session's traffic the replayed work served.
type LedgerInfo struct {
	// Replayed is the records applied from disk at boot; TornTruncated
	// counts torn WAL tails cut at the last valid CRC frame on the way.
	Replayed      int64 `json:"replayed"`
	TornTruncated int64 `json:"torn_truncated,omitempty"`
	// Appended / Compactions count records logged and snapshot
	// compactions since boot.
	Appended    int64 `json:"appended"`
	Compactions int64 `json:"compactions,omitempty"`
	// Hits is the session traffic served from replayed verdicts — paid
	// crowd work that was not re-issued.
	Hits int64 `json:"hits"`
	// Verdicts / Statements / Answers are the durable contents.
	Verdicts   int `json:"verdicts"`
	Statements int `json:"statements"`
	Answers    int `json:"answers"`
}

// QueriesResponse is the body of GET /v1/queries: the live query table
// (admission order) plus recently completed queries (most recent
// first). Ledger is present only when the server runs a crowd-work
// ledger (-ledger-dir).
type QueriesResponse struct {
	InFlight []QueryInfo `json:"in_flight"`
	Recent   []QueryInfo `json:"recent"`
	Ledger   *LedgerInfo `json:"ledger,omitempty"`
}

// Error codes carried by ErrorPayload.Code. They are the wire-stable
// names of the library's typed errors.
const (
	CodeParse        = "parse_error"   // CQL syntax error (Offset/Near set)
	CodeUnsupported  = "unsupported"   // statement the engine cannot serve
	CodeUnknownTable = "unknown_table" // FROM references a missing table
	CodeOverloaded   = "overloaded"    // admission control shed the query; retry later
	CodeDraining     = "draining"      // server is shutting down gracefully
	CodeTimeout      = "timeout"       // request deadline elapsed before completion
	CodeBadRequest   = "bad_request"   // malformed request body
	CodeInternal     = "internal"      // unexpected execution failure
)

// ErrorPayload is the JSON body of every non-2xx response (and of
// terminal "error" stream events).
type ErrorPayload struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Offset and Near locate a CQL syntax error in the submitted
	// statement (CodeParse only). Offset -1 means no single position.
	Offset *int   `json:"offset,omitempty"`
	Near   string `json:"near,omitempty"`
	// RetryAfterMs mirrors the Retry-After header on 429/503 so
	// non-HTTP-aware callers see the backoff hint too.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// Stream event types for POST /v1/query/stream. The stream is NDJSON:
// one StreamEvent per line — at most one "plan" event first (servers
// running the greedy planner), zero or more "round" events in round
// order, terminated by exactly one "result" or "error" event. Readers
// must skip unknown event types, which is how pre-plan clients stay
// compatible.
const (
	EventPlan   = "plan"
	EventRound  = "round"
	EventResult = "result"
	EventError  = "error"
)

// StreamEvent is one NDJSON line of a streamed query.
type StreamEvent struct {
	Type string `json:"type"`
	// Plan carries the join order the rounds will follow (Type "plan",
	// emitted before any round on planner-enabled servers).
	Plan *cdb.Plan `json:"plan,omitempty"`
	// Round carries the per-round progress snapshot (Type "round").
	Round *cdb.RoundUpdate `json:"round,omitempty"`
	// Result carries the final outcome (Type "result").
	Result *cdb.Result `json:"result,omitempty"`
	// Error carries the terminal failure (Type "error").
	Error *ErrorPayload `json:"error,omitempty"`
}
