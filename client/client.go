package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cdb"
	"cdb/internal/reqid"
)

// Client talks to one cdbd server. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default has no client-side timeout:
// crowd queries are long-lived, and deadlines belong on the context.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the cdbd server at baseURL (host:port or a
// full http:// URL).
func New(baseURL string, opts ...Option) *Client {
	base := strings.TrimRight(baseURL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{base: base, hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the server, decoded from its
// ErrorPayload. It unwraps to the library's typed errors — errors.Is
// (cdb.ErrOverloaded, cdb.ErrUnknownTable, context.DeadlineExceeded)
// and errors.As(*cdb.ParseError) work on a remote error exactly as
// they do on a local one.
type APIError struct {
	// Status is the HTTP status code (0 for in-stream errors, which
	// arrive after a 200 header).
	Status int
	// Code is the wire-stable error code (the Code* constants).
	Code string
	// Message describes the failure.
	Message string
	// Offset and Near locate a CQL syntax error (CodeParse); Offset is
	// -1 when the error has no single position.
	Offset int
	Near   string
	// RetryAfter is the server's backoff hint on overload or drain.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	s := fmt.Sprintf("cdbd: %s: %s", e.Code, e.Message)
	if e.Code == CodeParse && e.Offset >= 0 {
		s += fmt.Sprintf(" at offset %d", e.Offset)
	}
	return s
}

// Unwrap maps the wire code back to the library's typed error, so the
// network hop is transparent to errors.Is / errors.As.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case CodeOverloaded:
		return cdb.ErrOverloaded
	case CodeDraining:
		return cdb.ErrEngineClosed
	case CodeUnknownTable:
		return cdb.ErrUnknownTable
	case CodeUnsupported:
		return cdb.ErrEngineUnsupported
	case CodeTimeout:
		return context.DeadlineExceeded
	case CodeParse:
		return &cdb.ParseError{Offset: e.Offset, Near: e.Near, Msg: e.Message}
	}
	return nil
}

// Query executes one CQL SELECT and blocks until the full result. A
// context deadline is forwarded to the server as the request's
// TimeoutMs, so the server stops crowdsourcing at the same moment the
// client stops waiting and returns the partial result of the completed
// rounds (Stats.Partial) instead of nothing.
func (c *Client) Query(ctx context.Context, query string) (*cdb.Result, error) {
	req := QueryRequest{Query: query}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.TimeoutMs = ms
		}
	}
	resp, err := c.post(ctx, "/v1/query", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var res cdb.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("client: decode result: %w", err)
	}
	return &res, nil
}

// QueryStream executes one CQL SELECT over the NDJSON streaming
// endpoint: onRound (nil-safe) is invoked for every completed crowd
// round as its event arrives, and the final Result is returned when
// the terminal event lands. This is the endpoint for long-lived crowd
// queries — the caller watches answers trickle in round by round
// instead of staring at a blocked request.
func (c *Client) QueryStream(ctx context.Context, query string, onRound func(cdb.RoundUpdate)) (*cdb.Result, error) {
	req := QueryRequest{Query: query}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.TimeoutMs = ms
		}
	}
	resp, err := c.post(ctx, "/v1/query/stream", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("client: decode stream event: %w", err)
		}
		switch ev.Type {
		case EventRound:
			if onRound != nil && ev.Round != nil {
				onRound(*ev.Round)
			}
		case EventResult:
			if ev.Result == nil {
				return nil, fmt.Errorf("client: result event without result")
			}
			return ev.Result, nil
		case EventError:
			return nil, apiErrorFrom(0, ev.Error, "")
		default:
			// Skip unknown event types: the protocol may grow new
			// progress kinds without breaking old clients.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: stream: %w", err)
	}
	return nil, fmt.Errorf("client: stream ended without a terminal event")
}

// Explain plans one CQL SELECT (or EXPLAIN SELECT) on the server
// without executing it — zero crowd assignments — and returns the
// cdb.Plan: join order, per-step predicted candidate edges, and
// early-exit points. Non-SELECT targets come back as a typed 400 that
// unwraps to cdb.ErrEngineUnsupported.
func (c *Client) Explain(ctx context.Context, query string) (*cdb.Plan, error) {
	resp, err := c.post(ctx, "/v1/explain", QueryRequest{Query: query})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var p cdb.Plan
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, fmt.Errorf("client: decode plan: %w", err)
	}
	return &p, nil
}

// Tables lists the tables in the server's catalog.
func (c *Client) Tables(ctx context.Context) ([]string, error) {
	var tr TablesResponse
	if err := c.get(ctx, "/v1/tables", &tr); err != nil {
		return nil, err
	}
	return tr.Tables, nil
}

// Queries snapshots the server's live query table (GET /v1/queries):
// everything in flight plus recently completed queries. The endpoint
// stays up during drain, so it is the way to watch a shutdown progress.
func (c *Client) Queries(ctx context.Context) (*QueriesResponse, error) {
	var qr QueriesResponse
	if err := c.get(ctx, "/v1/queries", &qr); err != nil {
		return nil, err
	}
	return &qr, nil
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	c.correlate(ctx, hreq)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.correlate(ctx, hreq)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return resp, nil
}

// correlate stamps the outgoing request with the correlation headers.
// A request ID attached to ctx (cdb.ContextWithRequestID) rides along
// so client and server logs share a key; absent one, the server mints
// its own and echoes it. The traceparent continues a trace already on
// ctx or starts a fresh one per request.
func (c *Client) correlate(ctx context.Context, hreq *http.Request) {
	cor := reqid.From(ctx)
	if cor.RequestID != "" {
		hreq.Header.Set(HeaderRequestID, cor.RequestID)
	}
	if tp, ok := reqid.ParseTraceParent(cor.TraceParent); ok {
		hreq.Header.Set(HeaderTraceParent, tp.Child().String())
	} else {
		hreq.Header.Set(HeaderTraceParent, reqid.NewTraceParent().String())
	}
}

// decodeAPIError turns a non-2xx response into an *APIError,
// tolerating non-JSON bodies from intermediaries.
func decodeAPIError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var p ErrorPayload
	if err := json.Unmarshal(body, &p); err != nil || p.Code == "" {
		p = ErrorPayload{
			Code:    CodeInternal,
			Message: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body))),
		}
	}
	return apiErrorFrom(resp.StatusCode, &p, resp.Header.Get("Retry-After"))
}

// apiErrorFrom assembles an APIError from a payload plus the optional
// Retry-After header (seconds).
func apiErrorFrom(status int, p *ErrorPayload, retryAfter string) *APIError {
	if p == nil {
		p = &ErrorPayload{Code: CodeInternal, Message: "missing error payload"}
	}
	e := &APIError{Status: status, Code: p.Code, Message: p.Message, Near: p.Near, Offset: -1}
	if p.Offset != nil {
		e.Offset = *p.Offset
	}
	if p.RetryAfterMs > 0 {
		e.RetryAfter = time.Duration(p.RetryAfterMs) * time.Millisecond
	}
	if e.RetryAfter == 0 && retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}
