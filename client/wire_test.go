package client

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cdb"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestQueriesWireSchema pins the JSON wire schema of GET /v1/queries
// the same way the root package pins Result: a renamed or retyped
// field is a breaking protocol change that must be made deliberately
// (run with -update), not discovered by a confused cdbtop.
func TestQueriesWireSchema(t *testing.T) {
	// Every field populated with distinguishable values so the golden
	// file shows the complete schema.
	resp := QueriesResponse{
		InFlight: []QueryInfo{{
			ID:             3,
			RequestID:      "req-0123456789abcdef",
			Query:          "SELECT * FROM Paper, Researcher WHERE Paper.author CROWDJOIN Researcher.name;",
			State:          "running",
			ElapsedMs:      1250,
			Rounds:         2,
			Tasks:          13,
			Assignments:    65,
			Open:           4,
			Plan:           "p1→p0→p2",
			PlanEarlyExits: 0,
		}},
		Recent: []QueryInfo{{
			ID:             2,
			RequestID:      "req-fedcba9876543210",
			Query:          "SELECT Paper.title FROM Paper WHERE Paper.conference CROWDEQUAL 'SIGMOD';",
			State:          "done",
			ElapsedMs:      890,
			Rounds:         3,
			Tasks:          9,
			Assignments:    45,
			HITs:           5,
			Coalesced:      2,
			Cached:         1,
			Plan:           "p0→∅",
			PlanEarlyExits: 1,
		}, {
			ID:        1,
			Query:     "SELECT * FROM Nope;",
			State:     "failed",
			ElapsedMs: 4,
			Error:     "unknown table \"Nope\"",
		}},
	}
	got, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "queries_wire.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test -run TestQueriesWireSchema -update ./client` after a deliberate schema change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("queries wire schema drifted from %s — this breaks cdbtop and other pollers.\ngot:\n%s\nwant:\n%s", path, got, want)
	}

	// A minimal in-flight entry stays lean: omitempty drops the
	// completion-only economics, the always-on fields remain.
	lean, err := json.Marshal(QueryInfo{ID: 1, Query: "SELECT 1", State: "queued"})
	if err != nil {
		t.Fatal(err)
	}
	const wantLean = `{"id":1,"query":"SELECT 1","state":"queued","elapsed_ms":0,"rounds":0}`
	if string(lean) != wantLean {
		t.Errorf("lean QueryInfo wire form drifted:\ngot  %s\nwant %s", lean, wantLean)
	}
}

// TestExplainWireSchema pins the JSON schema of POST /v1/explain (and
// of Result.Plan / "plan" stream events): the cdb.Plan value with every
// field populated, including an early-exit step. EXPLAIN clients and
// dashboards parse this shape; changing it requires -update.
func TestExplainWireSchema(t *testing.T) {
	plan := cdb.Plan{
		Statement: "SELECT * FROM Paper, Researcher, University WHERE Paper.author CROWDJOIN Researcher.name AND Researcher.affiliation CROWDJOIN University.name;",
		Structure: "chain",
		Tables:    []string{"Paper", "Researcher", "University"},
		Greedy:    true,
		JoinOrder: "p1→p0→∅",
		Steps: []cdb.PlanStep{{
			Pred:           1,
			Predicate:      "Researcher.affiliation CROWDJOIN University.name",
			CandidateEdges: 18,
			PredictedEdges: 18,
			Histogram:      []int{2, 4, 6, 4, 2, 0, 0, 0},
		}, {
			Pred:           0,
			Predicate:      "Paper.author CROWDJOIN Researcher.name",
			CandidateEdges: 42,
			PredictedEdges: 0,
			EarlyExit:      true,
		}},
		EarlyExit:      true,
		EarlyExitStep:  1,
		PredictedTasks: 0,
		FixedTasks:     60,
		PlanningMicros: 87,
	}
	got, err := json.MarshalIndent(&plan, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "explain_wire.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test -run TestExplainWireSchema -update ./client` after a deliberate schema change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("explain wire schema drifted from %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}
