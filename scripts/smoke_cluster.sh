#!/usr/bin/env bash
# Smoke-test the component-sharded cluster end to end:
#   1. the same three statements piped through `cdbsh -connect` against
#      a standalone cdbd and against a coordinator over two shards must
#      produce byte-identical transcripts (rounds, rows, stats —
#      everything after the connect banner),
#   2. the coordinator must actually scatter (multi-component
#      statements split across both shards, not pass-through),
#   3. verdict-cache replication must reach both shards,
#   4. SIGTERMing one shard mid-stream must degrade gracefully: the
#      in-flight stream finishes, the fleet marks the shard dead, and
#      follow-up queries keep working off the survivor's replicated
#      cache (or shed with a clean 503 — never a hang or a 500).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR_SINGLE=${CDB_SINGLE_ADDR:-127.0.0.1:8110}
ADDR_COORD=${CDB_COORD_ADDR:-127.0.0.1:8113}
ADDR_A=${CDB_SHARD_A_ADDR:-127.0.0.1:8111}
ADDR_B=${CDB_SHARD_B_ADDR:-127.0.0.1:8112}
SMOKE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/cdbd-cluster.XXXXXX")
BIN=${CDBD_BIN:-./bin}

mkdir -p "$BIN"
go build -o "$BIN/cdbd" ./cmd/cdbd
go build -o "$BIN/cdbsh" ./cmd/cdbsh
go build -o "$BIN/cdbtop" ./cmd/cdbtop

# Identical engine flags everywhere: the fleet fingerprint contract.
ENGINE_FLAGS=(-dataset paper -scale 0.3 -seed 7 -workers 30 -accuracy 0.9 -redundancy 5)

STATEMENTS='SELECT Paper.title, Researcher.name FROM Paper, Researcher WHERE Paper.author CROWDJOIN Researcher.name;
SELECT Paper.title, Researcher.name FROM Paper, Researcher, Citation WHERE Paper.author CROWDJOIN Researcher.name AND Paper.title CROWDJOIN Citation.title;
SELECT Paper.title, Researcher.name FROM Paper, Researcher WHERE Paper.author CROWDJOIN Researcher.name;'

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  return 1
}

PIDS=()
cleanup() { for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done; }
trap cleanup EXIT

echo "== single node: reference transcript =="
"$BIN/cdbd" -addr "$ADDR_SINGLE" "${ENGINE_FLAGS[@]}" 2>"$SMOKE_DIR/single.log" &
PIDS+=($!)
wait_healthy "$ADDR_SINGLE" || { echo "single cdbd never became healthy"; cat "$SMOKE_DIR/single.log"; exit 1; }
echo "$STATEMENTS" | "$BIN/cdbsh" -connect "$ADDR_SINGLE" | grep -v '^cdbsh — connected' >"$SMOKE_DIR/single.txt"

echo "== cluster: coordinator over two shards =="
"$BIN/cdbd" -addr "$ADDR_A" -shard-id a "${ENGINE_FLAGS[@]}" 2>"$SMOKE_DIR/shard-a.log" &
PIDS+=($!)
"$BIN/cdbd" -addr "$ADDR_B" -shard-id b "${ENGINE_FLAGS[@]}" 2>"$SMOKE_DIR/shard-b.log" &
SHARD_B=$!
PIDS+=($SHARD_B)
wait_healthy "$ADDR_A" || { echo "shard a never became healthy"; cat "$SMOKE_DIR/shard-a.log"; exit 1; }
wait_healthy "$ADDR_B" || { echo "shard b never became healthy"; cat "$SMOKE_DIR/shard-b.log"; exit 1; }
"$BIN/cdbd" -addr "$ADDR_COORD" -coordinator -shards "a=$ADDR_A,b=$ADDR_B" "${ENGINE_FLAGS[@]}" 2>"$SMOKE_DIR/coord.log" &
PIDS+=($!)
wait_healthy "$ADDR_COORD" || { echo "coordinator never became healthy"; cat "$SMOKE_DIR/coord.log"; exit 1; }

echo "$STATEMENTS" | "$BIN/cdbsh" -connect "$ADDR_COORD" | grep -v '^cdbsh — connected' >"$SMOKE_DIR/cluster.txt"

if ! cmp -s "$SMOKE_DIR/single.txt" "$SMOKE_DIR/cluster.txt"; then
  echo "cluster transcript diverged from the single node"
  diff "$SMOKE_DIR/single.txt" "$SMOKE_DIR/cluster.txt" | head -40 || true
  exit 1
fi

SCATTERS=$(curl -sf "http://$ADDR_COORD/metrics" | grep '^cdb_cluster_route_scatter_total' | awk '{print $2}')
[ "${SCATTERS:-0}" -gt 0 ] || { echo "coordinator never scattered; the byte-compare was vacuous"; exit 1; }
for S in "$ADDR_A" "$ADDR_B"; do
  IMPORTED=$(curl -sf "http://$S/metrics" | grep '^cdb_engine_remote_imported_total' | awk '{print $2}')
  [ "${IMPORTED:-0}" -gt 0 ] || { echo "shard $S imported no replicated verdicts"; exit 1; }
done

"$BIN/cdbtop" -connect "coord=$ADDR_COORD" -connect "a=$ADDR_A" -connect "b=$ADDR_B" -once >"$SMOKE_DIR/top.txt"
grep -q 'remote imported' "$SMOKE_DIR/top.txt" || { echo "cdbtop cluster view missing replication rows"; cat "$SMOKE_DIR/top.txt"; exit 1; }

echo "== SIGTERM shard b mid-stream: graceful degradation =="
STREAM_Q='{"query":"SELECT Paper.title, Researcher.name FROM Paper, Researcher, Citation WHERE Paper.author CROWDJOIN Researcher.name AND Paper.title CROWDJOIN Citation.title;"}'
curl -sN -XPOST "http://$ADDR_COORD/v1/query/stream" -d "$STREAM_Q" >"$SMOKE_DIR/stream.ndjson" &
CURL=$!
sleep 0.3
kill -TERM "$SHARD_B"
if ! wait "$CURL"; then
  echo "mid-stream curl failed outright (connection torn instead of in-band handling)"; exit 1
fi
tail -n 1 "$SMOKE_DIR/stream.ndjson" | grep -Eq '"type":"(result|error)"' || {
  echo "stream ended without a terminal frame"; tail -3 "$SMOKE_DIR/stream.ndjson"; exit 1; }
wait "$SHARD_B" 2>/dev/null || true

# The fleet must notice the death and keep answering: 200 off the
# survivor's replicated cache, or a clean 503 while it converges.
OK=0
for _ in $(seq 1 20); do
  CODE=$(curl -s -o "$SMOKE_DIR/failover.json" -w '%{http_code}' -XPOST "http://$ADDR_COORD/v1/query" -d "$STREAM_Q")
  if [ "$CODE" = 200 ]; then OK=1; break; fi
  if [ "$CODE" != 503 ] && [ "$CODE" != 429 ]; then
    echo "post-kill query returned HTTP $CODE (want 200, 429 or 503)"; cat "$SMOKE_DIR/failover.json"; exit 1
  fi
  sleep 0.3
done
[ "$OK" = 1 ] || { echo "fleet never recovered to 200 after losing one shard"; exit 1; }
grep -q '"columns"' "$SMOKE_DIR/failover.json" || { echo "failover result carries no rows"; cat "$SMOKE_DIR/failover.json"; exit 1; }
curl -sf "http://$ADDR_COORD/v1/cluster/shards" | grep -q '"live":false' || {
  echo "coordinator still reports every shard live after SIGTERM"; exit 1; }

echo "cluster-smoke: OK (logs in $SMOKE_DIR)"
