#!/usr/bin/env bash
# Smoke-test the cdbd serving stack end to end: build server and shell,
# run three queries through the typed client, then SIGTERM the server
# mid-query and assert the in-flight stream still completes with its
# result before the process exits cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${CDBD_ADDR:-127.0.0.1:8099}
LOG=${CDBD_LOG:-cdbd-smoke.log}
BIN=${CDBD_BIN:-./bin}

mkdir -p "$BIN"
go build -o "$BIN/cdbd" ./cmd/cdbd
go build -o "$BIN/cdbsh" ./cmd/cdbsh

"$BIN/cdbd" -addr "$ADDR" -dataset example -seed 7 -workers 30 -accuracy 0.9 2>"$LOG" &
SRV=$!
cleanup() { kill "$SRV" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null || { echo "cdbd never became healthy"; cat "$LOG"; exit 1; }

echo "== catalog =="
curl -sf "http://$ADDR/v1/tables"
echo

echo "== three queries over cdbsh -connect (typed client + streaming) =="
"$BIN/cdbsh" -connect "$ADDR" <<'EOF'
SELECT * FROM Paper, Researcher WHERE Paper.author CROWDJOIN Researcher.name;
SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title;
SELECT * FROM Researcher, University WHERE Researcher.affiliation CROWDJOIN University.name;
\quit
EOF

echo "== SIGTERM mid-query: in-flight stream must still finish =="
STREAM_OUT=$(mktemp)
curl -sN -XPOST "http://$ADDR/v1/query/stream" \
  -d '{"query":"SELECT Paper.title, Researcher.name FROM Paper, Researcher, Citation WHERE Paper.author CROWDJOIN Researcher.name AND Paper.title CROWDJOIN Citation.title;"}' \
  >"$STREAM_OUT" &
CURL=$!
sleep 0.05
kill -TERM "$SRV"

if ! wait "$CURL"; then
  echo "in-flight stream aborted during drain"; cat "$STREAM_OUT"; cat "$LOG"; exit 1
fi
grep -q '"type":"result"' "$STREAM_OUT" || { echo "drained stream lost its result"; cat "$STREAM_OUT"; exit 1; }

if ! wait "$SRV"; then
  echo "cdbd exited non-zero after SIGTERM"; cat "$LOG"; exit 1
fi
trap - EXIT
grep -q 'drained cleanly' "$LOG" || { echo "missing clean-drain log line"; cat "$LOG"; exit 1; }

echo "== post-drain: new connections are refused =="
if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
  echo "server still serving after drain"; exit 1
fi

echo "smoke: OK"
