#!/usr/bin/env bash
# Smoke-test the cdbd serving stack end to end: build server, shell and
# dashboard, round-trip a request ID (header -> result body -> query
# log), run three queries through the typed client, watch an in-flight
# stream in /v1/queries, then SIGTERM the server mid-query and assert
# the stream still completes with its result before the process exits
# cleanly. All logs land under a temp dir (override with CDBD_LOG /
# CDBD_QUERY_LOG), never in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${CDBD_ADDR:-127.0.0.1:8099}
SMOKE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/cdbd-smoke.XXXXXX")
LOG=${CDBD_LOG:-$SMOKE_DIR/cdbd-smoke.log}
QLOG=${CDBD_QUERY_LOG:-$SMOKE_DIR/cdbd-queries.jsonl}
BIN=${CDBD_BIN:-./bin}

mkdir -p "$BIN"
go build -o "$BIN/cdbd" ./cmd/cdbd
go build -o "$BIN/cdbsh" ./cmd/cdbsh
go build -o "$BIN/cdbtop" ./cmd/cdbtop

# Large paper dataset with extra redundancy: the 3-way join below runs
# ~1s over 3 crowd rounds, a wide enough window for the mid-stream
# introspection poll to observe it in flight.
"$BIN/cdbd" -addr "$ADDR" -dataset paper -scale 0.8 -seed 7 -workers 30 -accuracy 0.9 \
  -redundancy 15 -planner -query-log "$QLOG" -slow-query-ms 0 2>"$LOG" &
SRV=$!
cleanup() { kill "$SRV" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null || { echo "cdbd never became healthy"; cat "$LOG"; exit 1; }

echo "== catalog =="
curl -sf "http://$ADDR/v1/tables"
echo

echo "== request-ID round trip: header -> result body -> query log =="
RID="smoke-rid-$$"
HDRS="$SMOKE_DIR/headers.txt"
RES=$(curl -sf -D "$HDRS" -H "X-CDB-Request-ID: $RID" -XPOST "http://$ADDR/v1/query" \
  -d '{"query":"SELECT Paper.title FROM Paper WHERE Paper.conference CROWDEQUAL \"sigmod\";"}')
grep -qi "x-cdb-request-id: $RID" "$HDRS" || { echo "response did not echo the request ID"; cat "$HDRS"; exit 1; }
echo "$RES" | grep -q "\"request_id\":\"$RID\"" || { echo "result body missing request_id"; echo "$RES" | head -c 400; exit 1; }
grep -q "$RID" "$QLOG" || { echo "query log missing the request ID"; cat "$QLOG"; exit 1; }

echo "== three queries plus an \\explain round trip over cdbsh -connect =="
SH_OUT=$("$BIN/cdbsh" -connect "$ADDR" <<'EOF'
SELECT * FROM Paper, Researcher WHERE Paper.author CROWDJOIN Researcher.name;
SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title;
SELECT Paper.author FROM Paper WHERE Paper.conference CROWDEQUAL "icde";
\explain SELECT * FROM Paper, Researcher WHERE Paper.author CROWDJOIN Researcher.name;
\quit
EOF
)
echo "$SH_OUT"
grep -q "0 crowd assignments" <<<"$SH_OUT" || { echo "cdbsh \\explain produced no plan"; exit 1; }
grep -q "predicted" <<<"$SH_OUT" || { echo "cdbsh \\explain missing predicted-task summary"; exit 1; }

echo "== cdbtop -once against the live server =="
TOP=$("$BIN/cdbtop" -addr "$ADDR" -once)
echo "$TOP" | grep -q "requests" || { echo "cdbtop missing request counters"; echo "$TOP"; exit 1; }
echo "$TOP" | grep -q "recent queries" || { echo "cdbtop missing the recent-query table"; echo "$TOP"; exit 1; }

echo "== mid-stream introspection, then SIGTERM: stream must still finish =="
STREAM_OUT="$SMOKE_DIR/stream.ndjson"
curl -sN -XPOST "http://$ADDR/v1/query/stream" \
  -d '{"query":"SELECT Paper.title, Researcher.name FROM Paper, Researcher, Citation WHERE Paper.author CROWDJOIN Researcher.name AND Paper.title CROWDJOIN Citation.title;"}' \
  >"$STREAM_OUT" &
CURL=$!

# While the stream runs, /v1/queries must show it in flight with at
# least one completed crowd round.
SAW_INFLIGHT=0
for _ in $(seq 1 500); do
  kill -0 "$CURL" 2>/dev/null || break
  Q=$(curl -sf "http://$ADDR/v1/queries" || true)
  INFLIGHT=${Q%%\"recent\"*}
  if echo "$INFLIGHT" | grep -q '"state":"running"' && echo "$INFLIGHT" | grep -Eq '"rounds":[1-9]'; then
    SAW_INFLIGHT=1
    break
  fi
  sleep 0.02
done
[ "$SAW_INFLIGHT" = 1 ] || { echo "/v1/queries never showed the in-flight stream with a completed round"; exit 1; }

kill -TERM "$SRV"

if ! wait "$CURL"; then
  echo "in-flight stream aborted during drain"; cat "$STREAM_OUT"; cat "$LOG"; exit 1
fi
grep -q '"type":"result"' "$STREAM_OUT" || { echo "drained stream lost its result"; cat "$STREAM_OUT"; exit 1; }

if ! wait "$SRV"; then
  echo "cdbd exited non-zero after SIGTERM"; cat "$LOG"; exit 1
fi
trap - EXIT
grep -q 'drained cleanly' "$LOG" || { echo "missing clean-drain log line"; cat "$LOG"; exit 1; }
grep -q '"endpoint":"stream"' "$QLOG" || { echo "query log missing the stream entry"; cat "$QLOG"; exit 1; }

echo "== post-drain: new connections are refused =="
if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
  echo "server still serving after drain"; exit 1
fi

echo "smoke: OK (logs in $SMOKE_DIR)"
