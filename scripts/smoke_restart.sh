#!/usr/bin/env bash
# Smoke-test the durable crowd-work ledger end to end: run a reference
# query on a ledger-less server, then on a second server (fresh ledger
# dir, same seed) kill -9 mid-stream, restart with the same ledger dir,
# resubmit the same statement, and assert
#   1. the final wire Result is byte-identical to the uninterrupted
#      reference run (same seed, same request ID),
#   2. the engine proves previously-paid verdicts were served from the
#      ledger (replay hits > 0 — zero re-issued HITs for completed
#      rounds),
#   3. boot replay handled the kill -9 WAL (torn final frame truncated,
#      never fatal),
#   4. SIGTERM drain syncs and closes the ledger cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${CDBD_ADDR:-127.0.0.1:8098}
SMOKE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/cdbd-restart.XXXXXX")
LOG_REF="$SMOKE_DIR/ref.log"
LOG_A="$SMOKE_DIR/killed.log"
LOG_B="$SMOKE_DIR/restarted.log"
LEDGER="$SMOKE_DIR/ledger"
BIN=${CDBD_BIN:-./bin}

mkdir -p "$BIN"
go build -o "$BIN/cdbd" ./cmd/cdbd
go build -o "$BIN/cdbtop" ./cmd/cdbtop

# Shared server knobs: the 3-way join below runs ~1s over >=3 crowd
# rounds, a wide enough window to kill -9 mid-stream after round 1.
SRV_FLAGS=(-addr "$ADDR" -dataset paper -scale 0.8 -seed 7 -workers 30 -accuracy 0.9 -redundancy 15)
QUERY='{"query":"SELECT Paper.title, Researcher.name FROM Paper, Researcher, Citation WHERE Paper.author CROWDJOIN Researcher.name AND Paper.title CROWDJOIN Citation.title;"}'
RID="restart-smoke-$$"

wait_healthy() {
  local a=${1:-$ADDR}
  for _ in $(seq 1 100); do
    curl -sf "http://$a/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  return 1
}

SRV=""
cleanup() { [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true; }
trap cleanup EXIT

echo "== reference: uninterrupted run, no ledger =="
"$BIN/cdbd" "${SRV_FLAGS[@]}" 2>"$LOG_REF" &
SRV=$!
wait_healthy || { echo "reference cdbd never became healthy"; cat "$LOG_REF"; exit 1; }
REF=$(curl -sf -H "X-CDB-Request-ID: $RID" -XPOST "http://$ADDR/v1/query" -d "$QUERY")
kill -TERM "$SRV" && wait "$SRV" || true
SRV=""
[ -n "$REF" ] || { echo "reference query returned nothing"; cat "$LOG_REF"; exit 1; }

echo "== ledger run: kill -9 mid-stream =="
"$BIN/cdbd" "${SRV_FLAGS[@]}" -ledger-dir "$LEDGER" -fsync always 2>"$LOG_A" &
SRV=$!
wait_healthy || { echo "ledger cdbd never became healthy"; cat "$LOG_A"; exit 1; }

curl -sN -XPOST "http://$ADDR/v1/query/stream" -d "$QUERY" >"$SMOKE_DIR/stream.ndjson" 2>/dev/null &
CURL=$!

# Kill the instant the query has at least one completed (and therefore
# fsynced) crowd round but is still running.
SAW_MIDSTREAM=0
for _ in $(seq 1 500); do
  kill -0 "$CURL" 2>/dev/null || break
  Q=$(curl -sf "http://$ADDR/v1/queries" || true)
  INFLIGHT=${Q%%\"recent\"*}
  if echo "$INFLIGHT" | grep -q '"state":"running"' && echo "$INFLIGHT" | grep -Eq '"rounds":[1-9]'; then
    SAW_MIDSTREAM=1
    break
  fi
  sleep 0.02
done
[ "$SAW_MIDSTREAM" = 1 ] || { echo "never caught the stream mid-flight with a completed round"; cat "$LOG_A"; exit 1; }
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=""
wait "$CURL" 2>/dev/null || true
[ -s "$LEDGER/wal.ldg" ] || { echo "ledger WAL missing after kill -9"; ls -la "$LEDGER" || true; exit 1; }

echo "== restart with the same ledger dir and seed, resubmit =="
"$BIN/cdbd" "${SRV_FLAGS[@]}" -ledger-dir "$LEDGER" -fsync always 2>"$LOG_B" &
SRV=$!
wait_healthy || { echo "restarted cdbd never became healthy"; cat "$LOG_B"; exit 1; }
grep -q 'ledger: replayed' "$LOG_B" || { echo "missing boot replay log line"; cat "$LOG_B"; exit 1; }

RES=$(curl -sf -H "X-CDB-Request-ID: $RID" -XPOST "http://$ADDR/v1/query" -d "$QUERY")
if [ "$RES" != "$REF" ]; then
  echo "resumed Result is not byte-identical to the uninterrupted run"
  echo "--- reference:"; echo "$REF" | head -c 600; echo
  echo "--- resumed:";   echo "$RES" | head -c 600; echo
  exit 1
fi

QJSON=$(curl -sf "http://$ADDR/v1/queries")
# LedgerInfo is a flat object, so [^}]* captures exactly its fields —
# keeps the "hits" check from matching a per-query HIT count instead.
LBLOCK=$(echo "$QJSON" | grep -o '"ledger":{[^}]*}' || true)
[ -n "$LBLOCK" ] || { echo "/v1/queries missing the ledger block"; echo "$QJSON"; exit 1; }
echo "$LBLOCK" | grep -Eq '"hits":[1-9]' || {
  echo "ledger replay hits == 0: previously-paid verdicts were re-issued"; echo "$QJSON"; exit 1; }
echo "$QJSON" | grep -Eq '"ledger":[1-9]' || {
  echo "resubmitted query shows no ledger-served tasks"; echo "$QJSON"; exit 1; }

TOP=$("$BIN/cdbtop" -addr "$ADDR" -once)
echo "$TOP" | grep -q '^ledger ' || { echo "cdbtop missing the ledger line"; echo "$TOP"; exit 1; }

echo "== SIGTERM: drain must sync and close the ledger =="
kill -TERM "$SRV"
if ! wait "$SRV"; then
  echo "cdbd exited non-zero after SIGTERM"; cat "$LOG_B"; exit 1
fi
SRV=""
trap - EXIT
grep -q 'ledger: synced and closed' "$LOG_B" || { echo "missing ledger close log line"; cat "$LOG_B"; exit 1; }
grep -q 'drained cleanly' "$LOG_B" || { echo "missing clean-drain log line"; cat "$LOG_B"; exit 1; }

# ---------------------------------------------------------------------
# Cluster variant: two ledgered shards under one coordinator, sharing a
# single -ledger-dir but isolated by -shard-id subdirectories. kill -9
# one shard: the survivor must keep answering through the coordinator,
# and the restarted shard must warm-boot from its own WAL.
echo "== cluster: per-shard ledgers, one shard killed =="
ADDR_A=${CDB_SHARD_A_ADDR:-127.0.0.1:8099}
ADDR_B=${CDB_SHARD_B_ADDR:-127.0.0.1:8100}
ADDR_C=${CDB_COORD_ADDR:-127.0.0.1:8101}
LEDGER2="$SMOKE_DIR/cluster-ledger"
# Lighter engine flags than the single-node run: this section asserts
# ledger placement and failover, not mid-stream kill timing.
CL_FLAGS=(-dataset paper -scale 0.3 -seed 7 -workers 30 -accuracy 0.9 -redundancy 5 -ledger-dir "$LEDGER2" -fsync always)

PIDS2=()
cleanup2() { for p in "${PIDS2[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done; }
trap cleanup2 EXIT

"$BIN/cdbd" -addr "$ADDR_A" -shard-id a "${CL_FLAGS[@]}" 2>"$SMOKE_DIR/shard-a.log" &
PIDS2+=($!)
"$BIN/cdbd" -addr "$ADDR_B" -shard-id b "${CL_FLAGS[@]}" 2>"$SMOKE_DIR/shard-b.log" &
SHARD_B=$!
PIDS2+=($SHARD_B)
wait_healthy "$ADDR_A" || { echo "shard a never became healthy"; cat "$SMOKE_DIR/shard-a.log"; exit 1; }
wait_healthy "$ADDR_B" || { echo "shard b never became healthy"; cat "$SMOKE_DIR/shard-b.log"; exit 1; }
"$BIN/cdbd" -addr "$ADDR_C" -coordinator -shards "a=$ADDR_A,b=$ADDR_B" \
  -dataset paper -scale 0.3 -seed 7 -workers 30 -accuracy 0.9 -redundancy 5 2>"$SMOKE_DIR/coord.log" &
PIDS2+=($!)
wait_healthy "$ADDR_C" || { echo "coordinator never became healthy"; cat "$SMOKE_DIR/coord.log"; exit 1; }

curl -sf -XPOST "http://$ADDR_C/v1/query" -d "$QUERY" >/dev/null || {
  echo "cluster query through the coordinator failed"; cat "$SMOKE_DIR/coord.log"; exit 1; }
# A direct query on shard b with a predicate nobody has run (so no
# replicated verdict can cover it) guarantees b journals crowd work of
# its own, whatever the component ownership of the statement above.
BQUERY='{"query":"SELECT Researcher.name FROM Researcher, University WHERE Researcher.affiliation CROWDJOIN University.name;"}'
curl -sf -XPOST "http://$ADDR_B/v1/query" -d "$BQUERY" >/dev/null || {
  echo "direct query on shard b failed"; cat "$SMOKE_DIR/shard-b.log"; exit 1; }
AQUERY='{"query":"SELECT Paper.title FROM Paper WHERE Paper.conference CROWDEQUAL \"sigmod\";"}'
curl -sf -XPOST "http://$ADDR_A/v1/query" -d "$AQUERY" >/dev/null || {
  echo "direct query on shard a failed"; cat "$SMOKE_DIR/shard-a.log"; exit 1; }
[ -s "$LEDGER2/a/wal.ldg" ] || { echo "shard a has no per-shard WAL under $LEDGER2/a"; ls -laR "$LEDGER2" || true; exit 1; }
[ -s "$LEDGER2/b/wal.ldg" ] || { echo "shard b has no per-shard WAL under $LEDGER2/b"; ls -laR "$LEDGER2" || true; exit 1; }

# The brace group keeps bash's asynchronous "Killed" job notification
# out of the script output.
{ kill -9 "$SHARD_B" && wait "$SHARD_B"; } 2>/dev/null || true
CODE=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "http://$ADDR_C/v1/query" -d "$QUERY")
[ "$CODE" = 200 ] || { echo "survivor did not answer after shard b died (HTTP $CODE)"; cat "$SMOKE_DIR/coord.log"; exit 1; }

"$BIN/cdbd" -addr "$ADDR_B" -shard-id b "${CL_FLAGS[@]}" 2>"$SMOKE_DIR/shard-b-restart.log" &
PIDS2+=($!)
wait_healthy "$ADDR_B" || { echo "restarted shard b never became healthy"; cat "$SMOKE_DIR/shard-b-restart.log"; exit 1; }
grep -q 'ledger: replayed' "$SMOKE_DIR/shard-b-restart.log" || {
  echo "restarted shard b did not warm-boot from its WAL"; cat "$SMOKE_DIR/shard-b-restart.log"; exit 1; }

# The replication loop must probe the restarted shard back into rotation.
BACK=0
for _ in $(seq 1 40); do
  if ! curl -sf "http://$ADDR_C/v1/cluster/shards" | grep -q '"live":false'; then BACK=1; break; fi
  sleep 0.25
done
[ "$BACK" = 1 ] || { echo "restarted shard b never rejoined the fleet"; curl -sf "http://$ADDR_C/v1/cluster/shards"; exit 1; }

echo "restart-smoke: OK (logs in $SMOKE_DIR)"
