package cdb

import (
	"fmt"
	"strconv"
	"strings"

	"cdb/internal/cql"
	"cdb/internal/groupsort"
)

// applyGroupSort post-processes a SELECT's answers with the
// crowd-powered GROUP BY / ORDER BY of §4.2's Remark: grouping runs
// crowdsourced entity resolution over the grouped column's (dirty)
// values, ordering runs a crowd-compared merge sort. Both add their
// tasks and rounds to the result's stats.
func (db *DB) applyGroupSort(s *cql.Select, res *Result) error {
	cfg := groupsort.Config{
		Pool:       db.pool,
		Redundancy: db.redundancy,
		Sim:        db.simFunc,
		Epsilon:    db.epsilon,
	}
	if s.GroupBy != nil {
		pos, err := projectedColumn(res.Columns, *s.GroupBy)
		if err != nil {
			return err
		}
		values := columnOf(res.Rows, pos)
		same := func(a, b string) bool {
			return db.oracle.JoinMatch(s.GroupBy.Table, s.GroupBy.Column,
				s.GroupBy.Table, s.GroupBy.Column, a, b)
		}
		groups, gr := groupsort.GroupBy(values, same, cfg)
		res.Stats.Tasks += gr.Tasks
		res.Stats.Rounds += gr.Rounds
		res.Stats.Assignments += gr.Tasks * cfg.Redundancy

		// One output row per group: the first member as representative,
		// plus the group size. A group is only as trustworthy as its
		// least-confident member, so confidences fold by min; provenance
		// folds by summing the members' edge counts.
		var rows [][]string
		var conf []float64
		var prov []AnswerProvenance
		for _, g := range groups {
			rep := append([]string(nil), res.Rows[g[0]]...)
			rep = append(rep, strconv.Itoa(len(g)))
			rows = append(rows, rep)
			if res.Confidence != nil {
				c := res.Confidence[g[0]]
				for _, idx := range g[1:] {
					if res.Confidence[idx] < c {
						c = res.Confidence[idx]
					}
				}
				conf = append(conf, c)
			}
			if res.Provenance != nil {
				var p AnswerProvenance
				for _, idx := range g {
					p.Crowd += res.Provenance[idx].Crowd
					p.Inferred += res.Provenance[idx].Inferred
					p.Prior += res.Provenance[idx].Prior
				}
				prov = append(prov, p)
			}
		}
		res.Rows = rows
		if res.Confidence != nil {
			res.Confidence = conf
		}
		if res.Provenance != nil {
			res.Provenance = prov
		}
		res.Columns = append(append([]string(nil), res.Columns...), "group_count")
	}
	if s.OrderBy != nil {
		pos, err := projectedColumn(res.Columns, *s.OrderBy)
		if err != nil {
			return err
		}
		values := columnOf(res.Rows, pos)
		perm, sr := groupsort.SortBy(values, naturalLess, cfg)
		res.Stats.Tasks += sr.Tasks
		res.Stats.Rounds += sr.Rounds
		res.Stats.Assignments += sr.Tasks * cfg.Redundancy
		sorted := make([][]string, len(perm))
		for i, idx := range perm {
			sorted[i] = res.Rows[idx]
		}
		res.Rows = sorted
		if res.Confidence != nil {
			conf := make([]float64, len(perm))
			for i, idx := range perm {
				conf[i] = res.Confidence[idx]
			}
			res.Confidence = conf
		}
		if res.Provenance != nil {
			prov := make([]AnswerProvenance, len(perm))
			for i, idx := range perm {
				prov[i] = res.Provenance[idx]
			}
			res.Provenance = prov
		}
	}
	return nil
}

// projectedColumn finds a Table.column reference among the projected
// columns.
func projectedColumn(columns []string, ref cql.ColRef) (int, error) {
	want := strings.ToLower(ref.String())
	for i, c := range columns {
		if strings.ToLower(c) == want {
			return i, nil
		}
	}
	return 0, fmt.Errorf("cdb: GROUP/ORDER BY column %s must appear in the projection (have %v)", ref, columns)
}

func columnOf(rows [][]string, pos int) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[pos]
	}
	return out
}

// naturalLess is the ground-truth comparator the simulated workers
// err around: numeric when both values parse as numbers, otherwise
// case-insensitive lexicographic.
func naturalLess(a, b string) bool {
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errA == nil && errB == nil {
		return fa < fb
	}
	return strings.ToLower(a) < strings.ToLower(b)
}
