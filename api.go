// Package cdb is a crowd-powered database system: a Go reproduction of
// "CDB: Optimizing Queries with Crowd-Based Selections and Joins"
// (SIGMOD 2017). It compiles CQL — SQL extended with CROWDJOIN,
// CROWDEQUAL, FILL, COLLECT and BUDGET — into a tuple-level query
// graph, selects crowd tasks with graph-based multi-goal optimization
// (cost via pruning expectations, latency via conflict-free rounds,
// quality via EM truth inference and entropy-driven task assignment),
// and executes them against a simulated crowd whose workers have
// latent accuracies.
//
// Quickstart:
//
//	db := cdb.Open(cdb.WithDataset("example", 0, 1))
//	res, err := db.Exec(`SELECT * FROM Paper, Researcher, Citation, University
//	    WHERE Paper.author CROWDJOIN Researcher.name AND
//	          Paper.title CROWDJOIN Citation.title AND
//	          Researcher.affiliation CROWDJOIN University.name;`)
//
// See the examples/ directory for runnable programs and cmd/cdbench
// for the paper's full benchmark suite.
package cdb

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"cdb/internal/baselines"
	"cdb/internal/cost"
	"cdb/internal/cql"
	"cdb/internal/crowd"
	"cdb/internal/dataset"
	"cdb/internal/exec"
	"cdb/internal/faults"
	"cdb/internal/meta"
	"cdb/internal/obs"
	qplan "cdb/internal/plan"
	"cdb/internal/quality"
	"cdb/internal/sim"
	"cdb/internal/stats"
	"cdb/internal/table"
)

// MatchOracle supplies ground truth for the crowd simulation: whether
// two cell values denote the same real-world entity. Implement it for
// your own data, or use a generated dataset whose oracle is built in.
type MatchOracle interface {
	// JoinMatch reports whether leftVal (of leftTable.leftCol) and
	// rightVal (of rightTable.rightCol) truly join.
	JoinMatch(leftTable, leftCol, rightTable, rightCol, leftVal, rightVal string) bool
	// SelMatch reports whether val (of table.col) truly satisfies the
	// CROWDEQUAL constant.
	SelMatch(table, col, val, constant string) bool
}

// Strategy names accepted by WithStrategy.
const (
	StrategyCDB     = "cdb"     // expectation-based selection (the default)
	StrategyMinCut  = "mincut"  // sampling + min-cut greedy
	StrategyCrowdDB = "crowddb" // rule-based tree baseline
	StrategyQurk    = "qurk"    // rule-based tree baseline
	StrategyDeco    = "deco"    // cost-based tree baseline
	StrategyOptTree = "opttree" // oracle-optimal tree baseline
	StrategyTrans   = "trans"   // transitivity entity resolution
	StrategyACD     = "acd"     // adaptive correlation clustering ER
)

// DB is a CDB instance: a catalog of relations, a simulated crowd, and
// the optimizer configuration.
type DB struct {
	catalog    *table.Catalog
	oracle     exec.Oracle
	pool       *crowd.Pool
	workers    *quality.WorkerModel
	rng        *stats.RNG
	simFunc    sim.Func
	epsilon    float64
	redundancy int
	qualityOn  bool
	strategy   string
	samples    int
	fillTruth  func(tableName string, row int, col string) string
	universe   map[string][]string // COLLECT universes per table
	router     *crowd.Router
	meta       *meta.Store
	calibrate  bool
	transitive bool
	observer   obs.Observer
	planner    plannerState
	tracing    bool
	faults     *faults.Injector
	reliable   *exec.Reliability

	// errs accumulates option-validation failures. Open keeps the
	// historical lenient behaviour (invalid knobs fall back to
	// defaults) but records what was wrong; Err surfaces it, and
	// OpenConfig turns it into a construction failure.
	errs []error
}

// Err reports the configuration errors recorded while applying
// options: unknown dataset, similarity or strategy names, out-of-range
// epsilon or redundancy, and the like. Open never fails — invalid
// knobs fall back to their documented defaults so old callers keep
// working — but the mistake is no longer silent: check Err after Open
// (OpenConfig does it for you and refuses to construct).
func (db *DB) Err() error { return errors.Join(db.errs...) }

// saveErr records one option-validation failure.
func (db *DB) saveErr(err error) { db.errs = append(db.errs, err) }

// Option configures Open.
type Option func(*DB)

// WithSeed fixes the random seed (defaults to 1); equal seeds replay
// identical crowds and answers.
func WithSeed(seed uint64) Option {
	return func(db *DB) { db.rng = stats.NewRNG(seed) }
}

// WithWorkers configures the simulated worker pool: n workers with
// latent accuracy drawn from N(mean, stddev²), the paper's model.
func WithWorkers(n int, mean, stddev float64) Option {
	return func(db *DB) {
		if n <= 0 {
			db.saveErr(fmt.Errorf("cdb: worker count %d must be positive", n))
			return
		}
		if mean < 0 || mean > 1 {
			db.saveErr(fmt.Errorf("cdb: worker accuracy %v out of range [0, 1]", mean))
			return
		}
		if stddev < 0 {
			db.saveErr(fmt.Errorf("cdb: worker accuracy stddev %v must be non-negative", stddev))
			return
		}
		db.pool = crowd.NewPool(n, mean, stddev, db.rng.Split())
	}
}

// WithPerfectWorkers installs an infallible crowd — useful to study
// cost behaviour in isolation.
func WithPerfectWorkers(n int) Option {
	return func(db *DB) { db.pool = crowd.NewPerfectPool(n, db.rng.Split()) }
}

// WithOracle installs a ground-truth oracle for the simulation.
func WithOracle(o MatchOracle) Option {
	return func(db *DB) { db.oracle = oracleAdapter{o} }
}

// WithDataset loads a built-in dataset: "paper" or "award" (the
// synthetic Table 2/3 benchmarks; scale 1.0 reproduces the paper's
// cardinalities) or "example" (the 12-tuple running example of
// Table 1 / Figure 4). The dataset's ground-truth oracle is installed
// automatically.
func WithDataset(name string, scale float64, seed uint64) Option {
	return func(db *DB) {
		var d *dataset.Data
		switch name {
		case "award":
			d = dataset.GenAward(dataset.Config{Seed: seed, Scale: scale})
		case "example":
			d = dataset.RunningExample()
		case "paper":
			d = dataset.GenPaper(dataset.Config{Seed: seed, Scale: scale})
		default:
			db.saveErr(fmt.Errorf("cdb: unknown dataset %q (want paper, award or example)", name))
			d = dataset.GenPaper(dataset.Config{Seed: seed, Scale: scale})
		}
		db.catalog = d.Catalog
		db.oracle = d.Oracle
	}
}

// WithSimilarity selects the matching-probability estimator:
// "2gram" (default), "token", "edit", "cosine" or "none".
//
// Deprecated: use WithPlanner (PlannerConfig.Similarity) or
// Config.Planner, which consolidate the optimizer knobs in one place.
// This option keeps working.
func WithSimilarity(name string) Option {
	return func(db *DB) {
		f, err := simByName(name)
		if err != nil {
			db.saveErr(err)
			return
		}
		db.simFunc = f
	}
}

// simByName resolves a similarity-estimator name.
func simByName(name string) (sim.Func, error) {
	switch name {
	case "token":
		return sim.TokenJaccard, nil
	case "edit":
		return sim.EditDistance, nil
	case "cosine":
		return sim.Cosine, nil
	case "none":
		return sim.NoSim, nil
	case "2gram", "":
		return sim.Gram2Jaccard, nil
	default:
		return sim.Gram2Jaccard, fmt.Errorf("cdb: unknown similarity %q (want 2gram, token, edit, cosine or none)", name)
	}
}

// WithEpsilon sets the similarity pruning threshold (default 0.3).
// Values outside (0, 1] are recorded as validation errors (see Err)
// and ignored.
//
// Deprecated: use WithPlanner (PlannerConfig.Epsilon) or
// Config.Planner, which consolidate the optimizer knobs in one place.
// This option keeps working.
func WithEpsilon(eps float64) Option {
	return func(db *DB) {
		if eps <= 0 || eps > 1 {
			db.saveErr(fmt.Errorf("cdb: epsilon %v out of range (0, 1]", eps))
			return
		}
		db.epsilon = eps
	}
}

// WithRedundancy sets the answers collected per task (default 5).
// Non-positive values are recorded as validation errors (see Err) and
// ignored.
func WithRedundancy(k int) Option {
	return func(db *DB) {
		if k <= 0 {
			db.saveErr(fmt.Errorf("cdb: redundancy %d must be positive", k))
			return
		}
		db.redundancy = k
	}
}

// WithQualityControl toggles CDB+ mode: EM truth inference with a
// persistent worker model and entropy-driven task assignment, instead
// of plain majority voting.
func WithQualityControl(on bool) Option {
	return func(db *DB) { db.qualityOn = on }
}

// WithTransitivity toggles transitive join inference: crowd answers
// are chained through per-predicate equivalence (A=B ∧ B=C ⟹ A=C;
// A=B ∧ B≠C ⟹ A≠C), entailed labels are applied without spending
// tasks, and question ordering prefers the answers that entail the
// most. Stats.Inferred counts the labels deduced for free and
// Result.Provenance attributes each answer's evidence. Costs extra
// crowd rounds: edges whose label the round could entail are deferred,
// trading latency for tasks.
func WithTransitivity(on bool) Option {
	return func(db *DB) { db.transitive = on }
}

// WithStrategy selects the task-selection strategy (see the Strategy*
// constants). Unknown names fall back to the CDB default and record a
// validation error on the DB (see Err).
//
// Deprecated: use WithPlanner (PlannerConfig.Strategy) or
// Config.Planner, which consolidate the optimizer knobs in one place.
// This option keeps working.
func WithStrategy(name string) Option {
	return func(db *DB) {
		s := strings.ToLower(name)
		if !validStrategy(s) {
			db.saveErr(fmt.Errorf("cdb: unknown strategy %q (want cdb, mincut, crowddb, qurk, deco, opttree, trans or acd)", name))
			return
		}
		db.strategy = s
	}
}

// validStrategy reports whether name is one of the Strategy* constants.
func validStrategy(name string) bool {
	switch name {
	case StrategyCDB, StrategyMinCut, StrategyCrowdDB, StrategyQurk,
		StrategyDeco, StrategyOptTree, StrategyTrans, StrategyACD:
		return true
	}
	return false
}

// WithFillTruth supplies the ground truth for FILL simulations: the
// true value of (table, row, column).
func WithFillTruth(f func(tableName string, row int, col string) string) Option {
	return func(db *DB) { db.fillTruth = f }
}

// WithCollectUniverse registers the hidden item universe workers draw
// from when COLLECTing rows for the named crowd table.
func WithCollectUniverse(tableName string, items []string) Option {
	return func(db *DB) { db.universe[strings.ToLower(tableName)] = items }
}

// WithMetadata enables CDB's relational metadata store (§2.1): every
// task, worker answer and inferred verdict is recorded into the
// cdb_tasks / cdb_workers / cdb_assignments relations, retrievable via
// Metadata().
func WithMetadata() Option {
	return func(db *DB) { db.meta = meta.NewStore() }
}

// WithCalibration enables adaptive similarity→probability calibration
// (§4.1): answered tasks act as a training set and the optimizer
// re-weights the remaining edges with isotonic-calibrated
// probabilities mid-query.
func WithCalibration(on bool) Option {
	return func(db *DB) { db.calibrate = on }
}

// MarketSpec describes one crowdsourcing market for cross-market HIT
// deployment (the AMT/CrowdFlower/ChinaCrowd feature of §2.2).
type MarketSpec struct {
	Name string
	// AssignControl mirrors AMT's developer model (requester-controlled
	// task assignment) vs CrowdFlower-style routing.
	AssignControl bool
	Workers       int
	Accuracy      float64
	Stddev        float64
}

// WithMarkets deploys HITs across several markets round-robin instead
// of a single pool.
func WithMarkets(specs ...MarketSpec) Option {
	return func(db *DB) {
		var markets []*crowd.Market
		for _, s := range specs {
			pool := crowd.NewPool(s.Workers, s.Accuracy, s.Stddev, db.rng.Split())
			markets = append(markets, crowd.NewMarket(s.Name, s.AssignControl, pool))
		}
		db.router = crowd.NewRouter(markets...)
	}
}

// BlackoutSpec is a market outage window in the transport's virtual
// ticks; an empty Market blacks out every platform.
type BlackoutSpec struct {
	Market string
	From   int64
	Until  int64
}

// FaultConfig configures the deterministic chaos engine: simulated
// platform unreliability applied to every crowd answer. Rates are
// probabilities in [0, 1]; equal seeds replay identical chaos.
type FaultConfig struct {
	Seed          uint64
	DropRate      float64 // worker abandons the HIT; answer never arrives
	StragglerRate float64 // answer arrives after the round deadline
	DuplicateRate float64 // answer delivered twice
	CorruptRate   float64 // answer replaced by a random verdict
	Blackouts     []BlackoutSpec
}

// WithFaults turns on fault injection, which also switches execution
// to the fault-tolerant asynchronous transport (see WithReliability
// for the policy knobs). Queries then degrade gracefully: instead of
// wedging on lost answers, they return partial results flagged in
// Stats.Partial with per-answer confidences.
func WithFaults(fc FaultConfig) Option {
	return func(db *DB) {
		cfg := faults.Config{
			Seed:          fc.Seed,
			DropRate:      fc.DropRate,
			StragglerRate: fc.StragglerRate,
			DuplicateRate: fc.DuplicateRate,
			CorruptRate:   fc.CorruptRate,
		}
		for _, b := range fc.Blackouts {
			cfg.Blackouts = append(cfg.Blackouts, faults.Blackout{Market: b.Market, From: b.From, Until: b.Until})
		}
		db.faults = faults.New(cfg)
	}
}

// ReliabilityPolicy tunes the executor's fault tolerance over the
// asynchronous transport. Zero fields take the documented defaults;
// see exec.Reliability for the full semantics.
type ReliabilityPolicy struct {
	TaskDeadline int64   // virtual ticks per HIT attempt (default 64)
	MaxRetries   int     // reissue waves per round (default 2, negative disables)
	RetryBudget  int     // extra assignments chargeable per query (default 256)
	BackoffBase  float64 // deadline multiplier per wave (default 2)
	JitterFrac   float64 // deterministic reissue jitter (default 0.25)
	HedgeAfter   float64 // hedge point as a fraction of the deadline (default 0.5)
	HedgeFrac    float64 // slowest fraction of a round hedged (default 0.1)
	Strict       bool    // fail fast instead of returning partial results
}

// WithReliability selects the fault policy and switches execution to
// the asynchronous transport even without injected faults (useful to
// impose deadlines and cancellation on clean runs).
func WithReliability(rp ReliabilityPolicy) Option {
	return func(db *DB) {
		db.reliable = &exec.Reliability{
			TaskDeadline: rp.TaskDeadline,
			MaxRetries:   rp.MaxRetries,
			RetryBudget:  rp.RetryBudget,
			BackoffBase:  rp.BackoffBase,
			JitterFrac:   rp.JitterFrac,
			HedgeAfter:   rp.HedgeAfter,
			HedgeFrac:    rp.HedgeFrac,
			Strict:       rp.Strict,
		}
	}
}

// Open creates a CDB instance.
func Open(options ...Option) *DB {
	db := &DB{
		catalog:    table.NewCatalog(),
		oracle:     exec.ExactOracle{},
		rng:        stats.NewRNG(1),
		simFunc:    sim.Gram2Jaccard,
		epsilon:    0.3,
		redundancy: 5,
		strategy:   StrategyCDB,
		samples:    20,
		workers:    quality.NewWorkerModel(),
		universe:   map[string][]string{},
	}
	for _, opt := range options {
		opt(db)
	}
	if db.pool == nil {
		db.pool = crowd.NewPool(50, 0.8, 0.1, db.rng.Split())
	}
	return db
}

type oracleAdapter struct{ o MatchOracle }

func (a oracleAdapter) JoinMatch(lt, lc, rt, rc, lv, rv string) bool {
	return a.o.JoinMatch(lt, lc, rt, rc, lv, rv)
}
func (a oracleAdapter) SelMatch(t, c, v, k string) bool { return a.o.SelMatch(t, c, v, k) }

// Stats summarizes one execution's crowd interaction.
//
// The json tags are the wire schema of the HTTP serving layer
// (cmd/cdbd) and are pinned by a golden-file test: renaming a tag is a
// breaking protocol change and fails CI.
type Stats struct {
	Tasks       int     `json:"tasks"`       // crowd tasks issued (the paper's cost metric)
	Rounds      int     `json:"rounds"`      // crowd interaction rounds (latency metric)
	Assignments int     `json:"assignments"` // individual worker answers
	HITs        int     `json:"hits"`        // priced HITs (10 tasks per HIT)
	Dollars     float64 `json:"dollars"`     // simulated spend ($0.1 per HIT)
	Precision   float64 `json:"precision"`   // vs the oracle's ground truth
	Recall      float64 `json:"recall"`
	F1          float64 `json:"f1"`

	// Reliability telemetry, populated on the fault-tolerant transport
	// (WithFaults / WithReliability). Partial marks a degraded result:
	// the query ran out of time, retries, or was cancelled, and Reason
	// says which. The counters attribute where answers went.
	Partial         bool   `json:"partial,omitempty"`
	Reason          string `json:"reason,omitempty"`
	Lost            int    `json:"lost,omitempty"`             // tasks that never got any answer
	Retried         int    `json:"retried,omitempty"`          // tasks reissued after missing a deadline
	Hedged          int    `json:"hedged,omitempty"`           // tasks speculatively reissued before the deadline
	Late            int    `json:"late,omitempty"`             // answers that arrived after their round deadline
	Duplicates      int    `json:"duplicates,omitempty"`       // redundant deliveries deduplicated away
	RoundsTruncated int    `json:"rounds_truncated,omitempty"` // rounds discarded by cancellation or deadline

	// Sharing telemetry, populated when the query ran through an Engine:
	// tasks that attached to another query's in-flight HIT, and tasks
	// answered from the shared verdict cache. Assignments/HITs/Dollars
	// above still charge the full redundancy to this query either way —
	// sharing changes what the platform does, not what a query observes.
	Coalesced   int `json:"coalesced,omitempty"`
	CachedTasks int `json:"cached_tasks,omitempty"`

	// Inferred counts the edge labels transitive inference deduced
	// without crowd work (WithTransitivity); zero when inference is off
	// or nothing was entailed.
	Inferred int `json:"inferred,omitempty"`
}

// Result is the outcome of one Exec call.
//
// Like Stats, the json tags are the serving layer's wire schema,
// pinned by a golden-file test.
type Result struct {
	// Columns and Rows hold the projected answers for SELECT; for DDL
	// and collection statements Rows is empty and Message explains what
	// happened.
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Message string     `json:"message,omitempty"`
	Stats   Stats      `json:"stats"`
	// Confidence holds one entry per row of Rows on the fault-tolerant
	// transport: the weakest per-edge posterior backing that answer
	// (1.0 when every supporting verdict is certain). Nil on the
	// synchronous path.
	Confidence []float64 `json:"confidence,omitempty"`
	// Provenance holds one entry per row of Rows when transitive
	// inference ran (WithTransitivity): how many of the answer's
	// supporting edges were crowd-answered, inferred, or decided by
	// prior evidence. GROUP BY folds member entries into their group's
	// row by summing; ORDER BY permutes alongside the rows. Nil when
	// inference is off.
	Provenance []AnswerProvenance `json:"provenance,omitempty"`
	// Trace is the statement's span tree when tracing is enabled via
	// WithObserver or WithTracing; nil otherwise. Never serialized on
	// the wire — traces are process-local diagnostics.
	Trace *Trace `json:"-"`
	// RequestID is the serving tier's correlation ID: the
	// X-CDB-Request-ID the query arrived under (caller-supplied or
	// minted by cdbd), echoed here so the response body, trace spans
	// and query-log lines of one request all join on the same key.
	// Empty for queries executed without one.
	RequestID string `json:"request_id,omitempty"`
	// Plan is the executed (or, for EXPLAIN, the would-be) query plan.
	// Populated when the greedy planner is enabled (WithPlanner /
	// Config.Planner) or the statement was an EXPLAIN; nil otherwise,
	// so legacy wire fixtures are unaffected.
	Plan *Plan `json:"plan,omitempty"`
}

// AnswerProvenance breaks one answer's supporting edges down by how
// their labels were decided: crowd-answered, transitively inferred, or
// prior evidence (exact equi-join matches colored at plan build).
type AnswerProvenance = exec.AnswerProvenance

// Exec parses and executes one CQL statement. It is ExecContext with
// a background context: no deadline, never cancelled.
func (db *DB) Exec(q string) (*Result, error) {
	return db.ExecContext(context.Background(), q)
}

// ExecContext parses and executes one CQL statement under ctx.
// Cancellation and deadlines are honored at crowd-round boundaries: a
// query interrupted mid-flight returns the partial result of its
// completed rounds (Stats.Partial set) rather than an error, unless
// the Strict reliability policy is selected.
func (db *DB) ExecContext(ctx context.Context, q string) (*Result, error) {
	tr := db.tracer()
	root := tr.Begin(obs.SpanQuery)
	tr.Mutate(root, func(s *obs.Span) { s.Query = q })

	parseSpan := tr.Begin(obs.SpanParse)
	st, err := cql.Parse(q)
	tr.End(parseSpan)
	if err != nil {
		tr.Mutate(root, func(s *obs.Span) { s.Err = err.Error() })
		tr.End(root)
		tr.Finish()
		return nil, err
	}

	var res *Result
	switch s := st.(type) {
	case *cql.CreateTable:
		res, err = db.execCreate(s)
	case *cql.Select:
		res, err = db.execSelect(ctx, s, tr)
	case *cql.Fill:
		res, err = db.execFill(s)
	case *cql.Collect:
		res, err = db.execCollect(s)
	case *cql.Explain:
		res, err = db.execExplain(s)
	default:
		err = fmt.Errorf("cdb: unsupported statement %T", st)
	}
	if err != nil {
		tr.Mutate(root, func(s *obs.Span) { s.Err = err.Error() })
	}
	tr.End(root)
	if trace := tr.Finish(); trace != nil && res != nil {
		res.Trace = trace
	}
	return res, err
}

// MustExec is Exec that panics on error (for examples and tests).
func (db *DB) MustExec(q string) *Result {
	r, err := db.Exec(q)
	if err != nil {
		panic(err)
	}
	return r
}

func (db *DB) execCreate(s *cql.CreateTable) (*Result, error) {
	if _, exists := db.catalog.Get(s.Name); exists {
		return nil, fmt.Errorf("cdb: table %s already exists", s.Name)
	}
	schema := table.Schema{Name: s.Name, CrowdTable: s.Crowd}
	for _, c := range s.Cols {
		kind := table.String
		switch c.Type {
		case "int":
			kind = table.Int
		case "float":
			kind = table.Float
		}
		schema.Columns = append(schema.Columns, table.Column{Name: c.Name, Kind: kind, Crowd: c.Crowd})
	}
	db.catalog.Register(table.New(schema))
	return &Result{Message: fmt.Sprintf("table %s created", s.Name)}, nil
}

// Insert appends a row of textual values (parsed per column type;
// "CNULL" marks a value to be crowd-filled later).
func (db *DB) Insert(tableName string, values ...string) error {
	tb, ok := db.catalog.Get(tableName)
	if !ok {
		return fmt.Errorf("cdb: %w %s", ErrUnknownTable, tableName)
	}
	if len(values) != len(tb.Schema.Columns) {
		return fmt.Errorf("cdb: table %s wants %d values, got %d", tableName, len(tb.Schema.Columns), len(values))
	}
	row := make(table.Tuple, len(values))
	for i, v := range values {
		val, err := table.ParseValue(tb.Schema.Columns[i].Kind, v)
		if err != nil {
			return fmt.Errorf("cdb: %w", err)
		}
		row[i] = val
	}
	return tb.Append(row)
}

// TableNames lists the registered tables.
func (db *DB) TableNames() []string { return db.catalog.Names() }

// Metadata returns the metadata store (nil unless WithMetadata was
// given).
func (db *DB) Metadata() *meta.Store { return db.meta }

// Dump returns a table's contents as strings (header included).
func (db *DB) Dump(tableName string) ([][]string, error) {
	tb, ok := db.catalog.Get(tableName)
	if !ok {
		return nil, fmt.Errorf("cdb: %w %s", ErrUnknownTable, tableName)
	}
	header := make([]string, len(tb.Schema.Columns))
	for i, c := range tb.Schema.Columns {
		header[i] = c.Name
	}
	out := [][]string{header}
	for _, row := range tb.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out = append(out, cells)
	}
	return out, nil
}

func (db *DB) strategyFor(p *exec.Plan, budget int) cost.Strategy {
	if budget > 0 {
		return cost.NewBudget(budget)
	}
	switch db.strategy {
	case StrategyMinCut:
		return cost.NewMinCutSampling(db.samples, db.rng.Split())
	case StrategyCrowdDB:
		return baselines.NewTreeModel("CrowdDB", baselines.CrowdDBOrder(p.S))
	case StrategyQurk:
		return baselines.NewTreeModel("Qurk", baselines.QurkOrder(p.S))
	case StrategyDeco:
		return baselines.NewTreeModel("Deco", baselines.DecoOrder(p.G))
	case StrategyOptTree:
		return baselines.NewTreeModel("OptTree", baselines.OptTreeOrder(p.G, p.Truth))
	case StrategyTrans:
		s := baselines.NewTrans()
		s.Side = p.ERSideOracle(0.35)
		return s
	case StrategyACD:
		s := baselines.NewACD()
		s.Side = p.ERSideOracle(0.35)
		return s
	default:
		return &cost.Expectation{}
	}
}

// transportFor builds the per-query asynchronous transport when the
// fault-tolerant path is selected (fault injection or an explicit
// reliability policy), nil for the legacy synchronous path. The caller
// owns Close.
func (db *DB) transportFor() *crowd.Transport {
	if db.faults == nil && db.reliable == nil {
		return nil
	}
	markets := []*crowd.Market{crowd.NewMarket("default", true, db.pool)}
	if db.router != nil && len(db.router.Markets) > 0 {
		markets = db.router.Markets
	}
	return crowd.NewTransport(crowd.TransportConfig{
		Markets: markets,
		Faults:  db.faults,
		Seed:    db.rng.Split().Uint64(),
	})
}

func (db *DB) execSelect(ctx context.Context, s *cql.Select, tr *obs.Tracer) (*Result, error) {
	planSpan := tr.Begin(obs.SpanPlan)
	plan, err := exec.BuildPlan(s, db.catalog, db.oracle, exec.PlanConfig{Sim: db.simFunc, Epsilon: db.epsilon})
	if err != nil {
		tr.End(planSpan)
		return nil, err
	}
	tr.Mutate(planSpan, func(sp *obs.Span) { sp.Edges = plan.G.NumEdges() })
	tr.End(planSpan)
	qm := exec.MajorityVoting
	if db.qualityOn {
		qm = exec.CDBPlus
	}
	opts := exec.Options{
		Strategy:   db.strategyFor(plan, s.Budget),
		Redundancy: db.redundancy,
		Quality:    qm,
		Pool:       db.pool,
		Workers:    db.workers,
		Router:     db.router,
		Meta:       db.meta,
		Calibrate:  db.calibrate,
		Transitive: db.transitive,
		Trace:      tr,
	}
	if tp := db.transportFor(); tp != nil {
		defer tp.Close()
		opts.Transport = tp
		if db.reliable != nil {
			opts.Reliability = *db.reliable
		}
	}
	var decision *qplan.Decision
	if db.plannerOn() && s.Budget == 0 && opts.Transport == nil {
		if db.planner.Greedy {
			decision = qplan.Greedy(plan, db.planner.Bins)
		} else {
			decision = qplan.Fixed(plan, db.planner.Bins)
		}
		opts.Strategy = &qplan.Ordered{Order: decision.Order}
		// Content-pure verdicts are what make reordering
		// answer-preserving; the resolver seed is drawn the same way on
		// the greedy and fixed-order paths so equal DB seeds compare the
		// two orders over identical crowds.
		opts.Resolver = &qplan.PureResolver{Seed: db.rng.Split().Uint64(), Pool: db.pool}
		// Transitive deferral schedules rounds by entailment order, which
		// fights the planned predicate order; the planned path keeps it
		// off.
		opts.Transitive = false
	}
	rep, err := exec.Run(ctx, plan, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Stats: Stats{
			Tasks:       rep.Metrics.Tasks,
			Rounds:      rep.Metrics.Rounds,
			Assignments: rep.Assignments,
			HITs:        rep.HITs,
			Dollars:     rep.Dollars,
			Precision:   rep.Metrics.Precision,
			Recall:      rep.Metrics.Recall,
			F1:          rep.Metrics.F1(),

			Partial:         rep.Reliability.Partial,
			Reason:          rep.Reliability.Reason,
			Lost:            rep.Reliability.Lost,
			Retried:         rep.Reliability.Retried,
			Hedged:          rep.Reliability.Hedged,
			Late:            rep.Reliability.Late,
			Duplicates:      rep.Reliability.Duplicates,
			RoundsTruncated: rep.Reliability.RoundsTruncated,

			Coalesced:   rep.Coalesced,
			CachedTasks: rep.CachedTasks,

			Inferred: rep.Inferred,
		},
	}
	res.Columns = plan.ProjectionColumns()
	for _, a := range rep.Answers {
		row, err := plan.ProjectAnswer(a)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	res.Confidence = rep.Confidence
	res.Provenance = rep.Provenance
	if decision != nil {
		res.Plan = qplan.Describe(plan, decision, db.planner.Greedy)
	}
	if err := db.applyGroupSort(s, res); err != nil {
		return nil, err
	}
	res.Message = fmt.Sprintf("%d answers, %d tasks, %d rounds", len(res.Rows), res.Stats.Tasks, res.Stats.Rounds)
	if res.Stats.Partial {
		res.Message += fmt.Sprintf(" (partial: %s)", res.Stats.Reason)
	}
	return res, nil
}
