// Budget: the BUDGET keyword caps crowdsourcing spend; CDB's
// budget-aware selector (§5.1.3) invests each task in the candidate
// most likely to become an answer, so recall climbs steeply with the
// budget — the paper's Figure 18 in miniature.
//
//	go run ./examples/budget
package main

import (
	"fmt"

	"cdb"
)

func main() {
	query := `SELECT Paper.title, Citation.number
	          FROM Paper, Citation, Researcher
	          WHERE Paper.title CROWDJOIN Citation.title AND
	                Paper.author CROWDJOIN Researcher.name
	          BUDGET %d;`

	fmt.Println("budget  tasks  answers  recall  precision")
	for _, budget := range []int{50, 100, 200, 400, 800} {
		db := cdb.Open(
			cdb.WithDataset("paper", 0.12, 7),
			cdb.WithWorkers(40, 0.9, 0.05),
			cdb.WithSeed(3),
		)
		res, err := db.Exec(fmt.Sprintf(query, budget))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%6d  %5d  %7d  %6.2f  %9.2f\n",
			budget, res.Stats.Tasks, len(res.Rows), res.Stats.Recall, res.Stats.Precision)
	}
	fmt.Println("\nEvery budgeted task lands on a promising candidate: precision")
	fmt.Println("stays high while recall grows with the budget and flattens out")
	fmt.Println("once nearly all answers are found.")
}
