// Dedup: crowd-based entity resolution, single-join vs multi-join.
//
// On a SINGLE crowd join (pure deduplication) there is nothing for
// cross-predicate inference to prune, so the classic transitivity
// method (Trans) is the specialist: it deduces many pair labels for
// free. The moment a second join enters the query, CDB's tuple-level
// graph optimization prunes candidates across predicates and overtakes
// both the ER methods and the tree-model systems — the core story of
// the paper's introduction.
//
//	go run ./examples/dedup
package main

import (
	"fmt"

	"cdb"
)

func run(label, query string) {
	fmt.Printf("%s\n", label)
	fmt.Println("  strategy      tasks  rounds  precision  recall")
	for _, strat := range []string{cdb.StrategyCDB, cdb.StrategyTrans, cdb.StrategyCrowdDB} {
		db := cdb.Open(
			cdb.WithDataset("paper", 0.10, 7), // same data every run (same seed)
			cdb.WithWorkers(40, 0.9, 0.05),
			cdb.WithStrategy(strat),
			cdb.WithSeed(99),
		)
		res, err := db.Exec(query)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-12s  %5d  %6d  %9.2f  %6.2f\n",
			strat, res.Stats.Tasks, res.Stats.Rounds, res.Stats.Precision, res.Stats.Recall)
	}
	fmt.Println()
}

func main() {
	run("1 join (pure dedup): transitivity is the specialist",
		`SELECT Researcher.name, University.name, University.country
		 FROM Researcher, University
		 WHERE Researcher.affiliation CROWDJOIN University.name;`)

	run("2 joins: tuple-level pruning across predicates takes over",
		`SELECT Paper.title, Researcher.affiliation, Citation.number
		 FROM Paper, Citation, Researcher
		 WHERE Paper.title CROWDJOIN Citation.title AND
		       Paper.author CROWDJOIN Researcher.name;`)

	fmt.Println("With one predicate CDB degenerates to asking every candidate")
	fmt.Println("pair (like the tree systems) while Trans deduces labels via")
	fmt.Println("transitivity. With two, most candidates die on one side or the")
	fmt.Println("other, and CDB asks far fewer questions in far fewer rounds.")
}
