// Quickstart: run the paper's running example (Table 1 / Figure 4).
//
// Four small relations — Paper, Researcher, Citation, University —
// hold dirty strings ("Univ. of Massachusetts" vs "University of
// Massachusetts", "W. Bruce Croft" vs "Bruce W Croft"). The 3-join CQL
// query below cannot be answered with exact matching; CDB builds the
// tuple-level query graph, asks a simulated crowd the cheapest set of
// "do these match?" tasks, and assembles the three answers the paper
// reports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"strings"

	"cdb"
)

func main() {
	db := cdb.Open(
		cdb.WithDataset("example", 0, 1), // the paper's Table 1
		cdb.WithWorkers(30, 0.9, 0.05),   // 30 simulated workers, ~90% accurate
		cdb.WithSeed(42),
	)

	query := `SELECT Researcher.name, Researcher.affiliation, Paper.title, Citation.number
	          FROM Paper, Researcher, Citation, University
	          WHERE Paper.author CROWDJOIN Researcher.name AND
	                Paper.title CROWDJOIN Citation.title AND
	                Researcher.affiliation CROWDJOIN University.name;`
	fmt.Println("CQL:")
	fmt.Println(indent(query))

	res, err := db.Exec(query)
	if err != nil {
		panic(err)
	}

	fmt.Printf("\n%d answers (crowd asked %d tasks in %d rounds, %d worker answers, $%.2f):\n\n",
		len(res.Rows), res.Stats.Tasks, res.Stats.Rounds, res.Stats.Assignments, res.Stats.Dollars)
	fmt.Println("  " + strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		fmt.Println("  " + strings.Join(row, " | "))
	}
	fmt.Printf("\nprecision %.2f, recall %.2f vs the paper's ground truth\n",
		res.Stats.Precision, res.Stats.Recall)
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = "  " + strings.TrimSpace(l)
	}
	return strings.Join(lines, "\n")
}
