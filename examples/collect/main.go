// Collect: the open-world side of CQL. A CROWD table is declared
// empty, the crowd COLLECTs its rows from a hidden universe (with
// CDB's autocompletion suppressing duplicates), and FILL completes a
// CROWD column of the collected rows with early-stopping redundancy —
// the workload of the paper's Figure 17.
//
//	go run ./examples/collect
package main

import (
	"fmt"

	"cdb"
)

func main() {
	universe := []string{
		"MIT", "Stanford University", "Carnegie Mellon University",
		"UC Berkeley", "University of Oxford", "University of Cambridge",
		"ETH Zurich", "Tsinghua University", "National University of Singapore",
		"University of Toronto", "Cornell University", "Princeton University",
		"University of Washington", "Georgia Tech", "University of Michigan",
		"Columbia University", "UCLA", "EPFL", "University of Edinburgh",
		"University of Illinois Urbana-Champaign",
	}
	states := map[string]string{
		"MIT": "Massachusetts", "Stanford University": "California",
		"Carnegie Mellon University": "Pennsylvania", "UC Berkeley": "California",
		"Cornell University": "New York", "Princeton University": "New Jersey",
		"University of Washington": "Washington", "Georgia Tech": "Georgia",
		"University of Michigan": "Michigan", "Columbia University": "New York",
		"UCLA": "California", "University of Illinois Urbana-Champaign": "Illinois",
	}

	db := cdb.Open(
		cdb.WithWorkers(30, 0.85, 0.08),
		cdb.WithSeed(17),
		cdb.WithCollectUniverse("University", universe),
		cdb.WithFillTruth(func(tbl string, row int, col string) string {
			// The simulator looks the true state up by the row's name; a
			// real deployment would have nothing to look up — that is the
			// point of asking the crowd.
			dump, _ := dbDump(tbl)
			name := dump[row+1][0]
			if s, ok := states[name]; ok {
				return s
			}
			return "out-of-state"
		}),
	)
	registerDump(db)

	db.MustExec(`CREATE CROWD TABLE University (name varchar(64), state CROWD varchar(32));`)

	res := db.MustExec(`COLLECT University.name BUDGET 60;`)
	fmt.Println(res.Message)

	res = db.MustExec(`FILL University.state;`)
	fmt.Printf("%s (%d worker answers — early stop saves vs the %d a fixed\nredundancy of 5 would cost)\n\n",
		res.Message, res.Stats.Assignments, res.Stats.Tasks*5)

	rows, _ := db.Dump("University")
	fmt.Println("collected table:")
	for _, r := range rows {
		fmt.Printf("  %-42s %s\n", r[0], r[1])
	}
}

// tiny indirection so the fill-truth closure can read the table while
// the DB is being assembled.
var dbDump func(table string) ([][]string, error)

func registerDump(db *cdb.DB) {
	dbDump = db.Dump
}
