// Analytics: crowd-powered GROUP BY and ORDER BY (§4.2 Remark).
//
// After the crowd joins papers with their citations, the conference
// strings are still dirty ("sigmod16", "acm sigmod", "sigmod10" are
// the same venue). GROUP BY runs crowdsourced entity resolution over
// them; ORDER BY ranks the joined rows with crowd-compared merge sort.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"strings"

	"cdb"
)

func main() {
	db := cdb.Open(
		cdb.WithDataset("example", 0, 1),
		cdb.WithWorkers(30, 0.92, 0.04),
		cdb.WithSeed(8),
		cdb.WithMetadata(),
	)

	fmt.Println("-- venues of cited papers (GROUP BY collapses dirty variants) --")
	res := db.MustExec(`SELECT Paper.conference
		FROM Paper, Citation
		WHERE Paper.title CROWDJOIN Citation.title
		GROUP BY Paper.conference;`)
	for _, row := range res.Rows {
		fmt.Printf("  %-12s x%s\n", row[0], row[1])
	}
	fmt.Printf("  (%d crowd tasks total)\n\n", res.Stats.Tasks)

	fmt.Println("-- cited papers by citation count (crowd-compared ORDER BY) --")
	res = db.MustExec(`SELECT Paper.title, Citation.number
		FROM Paper, Citation
		WHERE Paper.title CROWDJOIN Citation.title
		ORDER BY Citation.number;`)
	for _, row := range res.Rows {
		title := row[0]
		if len(title) > 52 {
			title = title[:49] + "..."
		}
		fmt.Printf("  %-52s %s\n", title, row[1])
	}

	fmt.Println("\n-- crowd metadata (§2.1's Task/Worker/Assignment store) --")
	var sb strings.Builder
	db.Metadata().WriteReport(&sb)
	fmt.Print(sb.String())
}
