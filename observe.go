package cdb

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"cdb/internal/obs"
	"cdb/internal/reqid"
)

// Observability surface. The heavy lifting lives in internal/obs; the
// aliases below re-export the handful of types an embedding application
// needs so that `import "cdb"` is enough to stream traces or scrape
// metrics. With no observer configured and tracing off, every probe in
// the execution stack is a nil check and the hot path allocates nothing
// for observability.

// Observer receives every finished span of a traced query, children
// before parents, the root query span last. Implementations must be
// safe for reuse across queries; spans arrive as values and may be
// retained.
type Observer = obs.Observer

// Span is one timed node of a query trace: parse, plan, each crowd
// round, and the scoring/batching/issue/inference/coloring phases
// within a round. See internal/obs for the span-name taxonomy and the
// meaning of the count fields.
type Span = obs.Span

// Trace is the complete span tree of one executed statement, in
// Begin order (the root query span first).
type Trace = obs.Trace

// JSONLWriter is an Observer that appends one JSON object per finished
// span to an io.Writer — point it at a file and every traced query
// streams its rounds as they complete.
type JSONLWriter = obs.JSONLWriter

// NewJSONLWriter returns a JSONLWriter writing to w. Check Err() after
// the run: write failures are retained, not panicked.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return obs.NewJSONLWriter(w) }

// Span names as they appear in Span.Name and in trace JSONL output.
// The tree is query → {parse, plan, round*} and each round nests
// score/batch (inside the strategy) plus issue/infer/color; on the
// fault-tolerant transport, issue further nests collect windows and
// reissue (retry/hedge) events.
const (
	SpanQuery   = obs.SpanQuery
	SpanParse   = obs.SpanParse
	SpanPlan    = obs.SpanPlan
	SpanRound   = obs.SpanRound
	SpanScore   = obs.SpanScore
	SpanBatch   = obs.SpanBatch
	SpanIssue   = obs.SpanIssue
	SpanCollect = obs.SpanCollect
	SpanReissue = obs.SpanReissue
	SpanInfer   = obs.SpanInfer
	SpanColor   = obs.SpanColor
	SpanDrain   = obs.SpanDrain
)

// MetricsRegistry aggregates the process-wide counters, gauges and
// histograms the execution stack maintains (task, round, batch, cache,
// EM and join metrics — all under the cdb_ prefix).
type MetricsRegistry = obs.Registry

// Metrics returns the process-wide registry every cdb subsystem
// records into.
func Metrics() *MetricsRegistry { return obs.Default }

// WriteMetrics writes the current metric values to w in Prometheus
// text exposition format (version 0.0.4).
func WriteMetrics(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// WriteMetricsSummary writes a human-oriented rendering of the current
// metrics: counters and gauges one per line, histograms as
// count/p50/p95/p99/mean instead of raw cumulative buckets. Histograms
// named *_seconds render their quantiles as durations. This is what
// cdbsh's \metrics prints — an operator wants latency quantiles, not
// twenty bucket counters.
func WriteMetricsSummary(w io.Writer) error {
	snap := obs.Default.Snapshot()
	for _, c := range snap.Counters {
		if _, err := fmt.Fprintf(w, "%-46s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		if _, err := fmt.Fprintf(w, "%-46s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		val := func(v float64) string {
			if strings.HasSuffix(h.Name, "_seconds") {
				return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
			}
			return fmt.Sprintf("%.4g", v)
		}
		mean := h.Sum / float64(h.Count)
		if _, err := fmt.Fprintf(w, "%-46s count=%d p50=%s p95=%s p99=%s mean=%s\n",
			h.Name, h.Count, val(h.P50), val(h.P95), val(h.P99), val(mean)); err != nil {
			return err
		}
	}
	return nil
}

// ContextWithRequestID attaches a request-correlation ID to ctx.
// Queries submitted (or client requests issued) under the returned
// context carry the ID end to end: cdbd echoes it on the response,
// stamps it on every trace span, and writes it to the query log — the
// key that joins one request's artifacts across processes.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	c := reqid.From(ctx)
	c.RequestID = reqid.Sanitize(id)
	return reqid.With(ctx, c)
}

// RequestIDFromContext extracts the request-correlation ID from ctx
// ("" when none is attached).
func RequestIDFromContext(ctx context.Context) string {
	return reqid.From(ctx).RequestID
}

// ServeMetrics starts an HTTP listener on addr (":0" picks a free
// port) exposing /metrics (Prometheus text), /debug/vars (expvar) and
// /debug/pprof. It returns the bound address and a shutdown func.
func ServeMetrics(addr string) (boundAddr string, shutdown func() error, err error) {
	return obs.Serve(addr, obs.Default)
}

// StartProfiles begins a CPU profile at cpuPath (empty to skip) and
// arranges a heap profile at memPath (empty to skip). The returned
// stop func flushes both; call it before exit.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	return obs.StartProfiles(cpuPath, memPath)
}

// WithObserver streams every traced span of every statement to o as it
// finishes, and attaches the full trace to each Result. Use
// NewJSONLWriter for a ready-made file sink.
func WithObserver(o Observer) Option {
	return func(db *DB) { db.observer = o }
}

// WithTracing toggles trace collection without an observer: each
// Result carries its Trace, but nothing is streamed. WithObserver
// implies tracing.
func WithTracing(on bool) Option {
	return func(db *DB) { db.tracing = on }
}

// tracer returns a fresh per-statement tracer, or nil when
// observability is off — the nil tracer disables every probe downstream
// at the cost of one branch each.
func (db *DB) tracer() *obs.Tracer {
	if db.observer == nil && !db.tracing {
		return nil
	}
	return obs.NewTracer(db.observer)
}
