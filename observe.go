package cdb

import (
	"io"

	"cdb/internal/obs"
)

// Observability surface. The heavy lifting lives in internal/obs; the
// aliases below re-export the handful of types an embedding application
// needs so that `import "cdb"` is enough to stream traces or scrape
// metrics. With no observer configured and tracing off, every probe in
// the execution stack is a nil check and the hot path allocates nothing
// for observability.

// Observer receives every finished span of a traced query, children
// before parents, the root query span last. Implementations must be
// safe for reuse across queries; spans arrive as values and may be
// retained.
type Observer = obs.Observer

// Span is one timed node of a query trace: parse, plan, each crowd
// round, and the scoring/batching/issue/inference/coloring phases
// within a round. See internal/obs for the span-name taxonomy and the
// meaning of the count fields.
type Span = obs.Span

// Trace is the complete span tree of one executed statement, in
// Begin order (the root query span first).
type Trace = obs.Trace

// JSONLWriter is an Observer that appends one JSON object per finished
// span to an io.Writer — point it at a file and every traced query
// streams its rounds as they complete.
type JSONLWriter = obs.JSONLWriter

// NewJSONLWriter returns a JSONLWriter writing to w. Check Err() after
// the run: write failures are retained, not panicked.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return obs.NewJSONLWriter(w) }

// Span names as they appear in Span.Name and in trace JSONL output.
// The tree is query → {parse, plan, round*} and each round nests
// score/batch (inside the strategy) plus issue/infer/color; on the
// fault-tolerant transport, issue further nests collect windows and
// reissue (retry/hedge) events.
const (
	SpanQuery   = obs.SpanQuery
	SpanParse   = obs.SpanParse
	SpanPlan    = obs.SpanPlan
	SpanRound   = obs.SpanRound
	SpanScore   = obs.SpanScore
	SpanBatch   = obs.SpanBatch
	SpanIssue   = obs.SpanIssue
	SpanCollect = obs.SpanCollect
	SpanReissue = obs.SpanReissue
	SpanInfer   = obs.SpanInfer
	SpanColor   = obs.SpanColor
	SpanDrain   = obs.SpanDrain
)

// MetricsRegistry aggregates the process-wide counters, gauges and
// histograms the execution stack maintains (task, round, batch, cache,
// EM and join metrics — all under the cdb_ prefix).
type MetricsRegistry = obs.Registry

// Metrics returns the process-wide registry every cdb subsystem
// records into.
func Metrics() *MetricsRegistry { return obs.Default }

// WriteMetrics writes the current metric values to w in Prometheus
// text exposition format (version 0.0.4).
func WriteMetrics(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// ServeMetrics starts an HTTP listener on addr (":0" picks a free
// port) exposing /metrics (Prometheus text), /debug/vars (expvar) and
// /debug/pprof. It returns the bound address and a shutdown func.
func ServeMetrics(addr string) (boundAddr string, shutdown func() error, err error) {
	return obs.Serve(addr, obs.Default)
}

// StartProfiles begins a CPU profile at cpuPath (empty to skip) and
// arranges a heap profile at memPath (empty to skip). The returned
// stop func flushes both; call it before exit.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	return obs.StartProfiles(cpuPath, memPath)
}

// WithObserver streams every traced span of every statement to o as it
// finishes, and attaches the full trace to each Result. Use
// NewJSONLWriter for a ready-made file sink.
func WithObserver(o Observer) Option {
	return func(db *DB) { db.observer = o }
}

// WithTracing toggles trace collection without an observer: each
// Result carries its Trace, but nothing is streamed. WithObserver
// implies tracing.
func WithTracing(on bool) Option {
	return func(db *DB) { db.tracing = on }
}

// tracer returns a fresh per-statement tracer, or nil when
// observability is off — the nil tracer disables every probe downstream
// at the cost of one branch each.
func (db *DB) tracer() *obs.Tracer {
	if db.observer == nil && !db.tracing {
		return nil
	}
	return obs.NewTracer(db.observer)
}
