// Command cdbd serves a CDB instance over HTTP: the network face of
// the crowd-powered database. It mounts the /v1 JSON wire protocol —
// blocking queries, round-by-round NDJSON streams for long-lived crowd
// queries, catalog introspection — plus the observability endpoints
// (/metrics, /debug/pprof) on one listener.
//
//	cdbd -addr :8080 -dataset example
//	cdbd -addr :8080 -dataset paper -scale 0.1 -max-inflight 16
//
//	curl -s localhost:8080/v1/tables
//	curl -s -XPOST localhost:8080/v1/query -d '{"query":"SELECT * FROM ..."}'
//	curl -sN -XPOST localhost:8080/v1/query/stream -d '{"query":"..."}'
//
// Admission control maps to HTTP: an overloaded engine sheds with 429
// and a Retry-After hint instead of queueing unboundedly. On SIGTERM
// (or SIGINT) the server drains gracefully: new queries get 503,
// accepted queries run to completion — including deadline-partial
// results — and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdb"
	"cdb/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		datasetN   = flag.String("dataset", "example", "dataset to serve: example, paper or award")
		scale      = flag.Float64("scale", 0.1, "dataset scale for paper/award")
		seed       = flag.Uint64("seed", 1, "engine seed (equal seeds replay identical verdicts)")
		workers    = flag.Int("workers", 50, "simulated worker count")
		accuracy   = flag.Float64("accuracy", 0.85, "mean worker accuracy")
		stddev     = flag.Float64("stddev", 0.1, "worker accuracy stddev")
		similarity = flag.String("similarity", "2gram", "similarity estimator: 2gram, token, edit, cosine or none")
		epsilon    = flag.Float64("epsilon", 0.3, "similarity pruning threshold")
		redundancy = flag.Int("redundancy", 5, "answers per crowd task")

		maxInFlight = flag.Int("max-inflight", 8, "concurrently executing queries")
		maxQueue    = flag.Int("max-queue", 64, "queries queued behind the in-flight set")
		verdictLRU  = flag.Int("verdict-cache", 4096, "shared verdict cache entries")
		resultLRU   = flag.Int("result-cache", 256, "whole-answer cache entries (negative disables)")

		ledgerDir = flag.String("ledger-dir", "", "durable crowd-work ledger directory: paid verdicts survive restarts and are replayed on boot (empty disables)")
		fsyncPol  = flag.String("fsync", "interval", "ledger durability policy: always, interval or never")

		retryAfter   = flag.Duration("retry-after", time.Second, "backoff hint on 429/503 responses")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for connection shutdown after the engine drains")

		queryLogPath = flag.String("query-log", "", "append one JSON line per logged query to this file (empty disables)")
		slowQueryMs  = flag.Int64("slow-query-ms", 0, "only log queries at least this slow (0 logs every query)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "cdbd: ", log.LstdFlags|log.Lmsgprefix)

	var qlog *server.QueryLog
	if *queryLogPath != "" {
		f, err := os.OpenFile(*queryLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatalf("query log: %v", err)
		}
		defer f.Close()
		qlog = server.NewQueryLog(f, time.Duration(*slowQueryMs)*time.Millisecond)
	}

	db, err := cdb.OpenConfig(cdb.Config{
		Seed:           *seed,
		Dataset:        *datasetN,
		DatasetScale:   *scale,
		Workers:        *workers,
		WorkerAccuracy: *accuracy,
		WorkerStddev:   *stddev,
		Similarity:     *similarity,
		Epsilon:        *epsilon,
		Redundancy:     *redundancy,
	})
	if err != nil {
		logger.Fatalf("config: %v", err)
	}
	engineOpts := []cdb.EngineOption{
		cdb.WithMaxInFlight(*maxInFlight),
		cdb.WithMaxQueue(*maxQueue),
		cdb.WithVerdictCache(*verdictLRU),
		cdb.WithResultCache(*resultLRU),
	}
	if *ledgerDir != "" {
		engineOpts = append(engineOpts,
			cdb.WithLedgerDir(*ledgerDir),
			cdb.WithLedgerFsync(*fsyncPol))
	}
	engine, err := db.NewEngine(engineOpts...)
	if err != nil {
		logger.Fatalf("engine: %v", err)
	}
	if ls := engine.LedgerStats(); ls.Enabled {
		logger.Printf("ledger: replayed %d records from %s (%d verdicts, %d statements, %d answers; torn tails truncated: %d; fsync=%s)",
			ls.Replayed, *ledgerDir, ls.Verdicts, ls.Statements, ls.Answers, ls.TornTruncations, *fsyncPol)
	}

	srv, err := server.New(server.Config{
		DB:         db,
		Engine:     engine,
		Logger:     logger,
		RetryAfter: *retryAfter,
		QueryLog:   qlog,
	})
	if err != nil {
		logger.Fatalf("server: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		got := <-sig
		logger.Printf("received %s, draining", got)
		// Drain ordering: stop admitting and wait for every accepted
		// query first, so their handlers finish writing; only then
		// close the listener and linger for the final response bytes.
		// Engine.Close (inside Drain) flushes and syncs the ledger
		// after the last query, so every paid verdict is durable
		// before the process exits.
		srv.Drain()
		if ls := engine.LedgerStats(); ls.Enabled {
			logger.Printf("ledger: synced and closed (%d records appended this session, %d replay hits, %d compactions)",
				ls.Appended, ls.Hits, ls.Compactions)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		logger.Printf("drained cleanly")
	}()

	logger.Printf("serving dataset %q (scale %v, seed %d) on %s: tables %v",
		*datasetN, *scale, *seed, *addr, db.TableNames())
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("listen: %v", err)
	}
	<-done
	fmt.Fprintln(os.Stderr, "cdbd: bye")
}
