// Command cdbd serves a CDB instance over HTTP: the network face of
// the crowd-powered database. It mounts the /v1 JSON wire protocol —
// blocking queries, round-by-round NDJSON streams for long-lived crowd
// queries, catalog introspection — plus the observability endpoints
// (/metrics, /debug/pprof) on one listener.
//
//	cdbd -addr :8080 -dataset example
//	cdbd -addr :8080 -dataset paper -scale 0.1 -max-inflight 16
//
// A fleet of cdbd processes scales horizontally: boot N shards with
// identical dataset/seed/worker flags (distinct -shard-id, -addr and
// ledger subdirectories), then a coordinator that routes queries by
// tuple-graph component and merges scattered slices bit-identically:
//
//	cdbd -addr :8081 -shard-id a ...
//	cdbd -addr :8082 -shard-id b ...
//	cdbd -addr :8080 -coordinator -shards a:8081,b:8082 ...
//
//	curl -s localhost:8080/v1/tables
//	curl -s -XPOST localhost:8080/v1/query -d '{"query":"SELECT * FROM ..."}'
//	curl -sN -XPOST localhost:8080/v1/query/stream -d '{"query":"..."}'
//
// Admission control maps to HTTP: an overloaded engine sheds with 429
// and a Retry-After hint instead of queueing unboundedly. On SIGTERM
// (or SIGINT) the server drains gracefully: new queries get 503,
// accepted queries run to completion — including deadline-partial
// results — and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cdb"
	"cdb/internal/cluster"
	"cdb/internal/server"
)

// parseShards turns the -shards flag into ordered (id, base URL)
// pairs. Each entry is id=host:port, or id:port as shorthand for a
// local shard on 127.0.0.1.
func parseShards(spec string) ([]cluster.Backend, error) {
	var backends []cluster.Backend
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		var id, hostport string
		if eq := strings.IndexByte(entry, '='); eq >= 0 {
			id, hostport = entry[:eq], entry[eq+1:]
		} else if colon := strings.LastIndexByte(entry, ':'); colon >= 0 {
			id, hostport = entry[:colon], "127.0.0.1:"+entry[colon+1:]
		} else {
			return nil, fmt.Errorf("shard entry %q: want id=host:port or id:port", entry)
		}
		if id == "" || hostport == "" {
			return nil, fmt.Errorf("shard entry %q: empty id or address", entry)
		}
		base := hostport
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		backends = append(backends, cluster.NewHTTPBackend(id, base, nil))
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("no shards in %q", spec)
	}
	return backends, nil
}

// plannerConfig maps the -planner flag to a Config.Planner value (nil
// keeps the default fixed-order executor).
func plannerConfig(on bool) *cdb.PlannerConfig {
	if !on {
		return nil
	}
	return &cdb.PlannerConfig{Greedy: true}
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		datasetN   = flag.String("dataset", "example", "dataset to serve: example, paper or award")
		scale      = flag.Float64("scale", 0.1, "dataset scale for paper/award")
		seed       = flag.Uint64("seed", 1, "engine seed (equal seeds replay identical verdicts)")
		workers    = flag.Int("workers", 50, "simulated worker count")
		accuracy   = flag.Float64("accuracy", 0.85, "mean worker accuracy")
		stddev     = flag.Float64("stddev", 0.1, "worker accuracy stddev")
		similarity = flag.String("similarity", "2gram", "similarity estimator: 2gram, token, edit, cosine or none")
		epsilon    = flag.Float64("epsilon", 0.3, "similarity pruning threshold")
		redundancy = flag.Int("redundancy", 5, "answers per crowd task")
		planner    = flag.Bool("planner", false, "greedy multi-join planning: SELECTs run joins cheapest-first with plan-time early exit, /v1/explain and streams report the plan")

		maxInFlight = flag.Int("max-inflight", 8, "concurrently executing queries")
		maxQueue    = flag.Int("max-queue", 64, "queries queued behind the in-flight set")
		verdictLRU  = flag.Int("verdict-cache", 4096, "shared verdict cache entries")
		resultLRU   = flag.Int("result-cache", 256, "whole-answer cache entries (negative disables)")

		ledgerDir = flag.String("ledger-dir", "", "durable crowd-work ledger directory: paid verdicts survive restarts and are replayed on boot (empty disables)")
		fsyncPol  = flag.String("fsync", "interval", "ledger durability policy: always, interval or never")

		retryAfter   = flag.Duration("retry-after", time.Second, "backoff hint on 429/503 responses")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for connection shutdown after the engine drains")

		queryLogPath = flag.String("query-log", "", "append one JSON line per logged query to this file (empty disables)")
		slowQueryMs  = flag.Int64("slow-query-ms", 0, "only log queries at least this slow (0 logs every query)")

		shardID     = flag.String("shard-id", "", "this node's shard name in a cluster; with -ledger-dir the ledger lives in <dir>/<id> so shards never share a journal (empty: standalone)")
		coordinator = flag.Bool("coordinator", false, "coordinator mode: route /v1/query across the -shards fleet by tuple-graph component instead of executing locally")
		shardList   = flag.String("shards", "", "fleet members as id=host:port (or id:port, implying 127.0.0.1) separated by commas, e.g. a:8081,b:8082")
		spillQueue  = flag.Int("spill-queue", 4, "coordinator: observed shard queue depth past which work spills to a less-loaded shard (0 disables)")
		replEvery   = flag.Duration("replicate-interval", 500*time.Millisecond, "coordinator: verdict-cache anti-entropy pull interval")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "cdbd: ", log.LstdFlags|log.Lmsgprefix)

	var qlog *server.QueryLog
	if *queryLogPath != "" {
		f, err := os.OpenFile(*queryLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatalf("query log: %v", err)
		}
		defer f.Close()
		qlog = server.NewQueryLog(f, time.Duration(*slowQueryMs)*time.Millisecond)
	}

	db, err := cdb.OpenConfig(cdb.Config{
		Seed:           *seed,
		Dataset:        *datasetN,
		DatasetScale:   *scale,
		Workers:        *workers,
		WorkerAccuracy: *accuracy,
		WorkerStddev:   *stddev,
		Similarity:     *similarity,
		Epsilon:        *epsilon,
		Redundancy:     *redundancy,
		Planner:        plannerConfig(*planner),
	})
	if err != nil {
		logger.Fatalf("config: %v", err)
	}
	engineOpts := []cdb.EngineOption{
		cdb.WithMaxInFlight(*maxInFlight),
		cdb.WithMaxQueue(*maxQueue),
		cdb.WithVerdictCache(*verdictLRU),
		cdb.WithResultCache(*resultLRU),
	}
	// Each shard journals into its own subdirectory: two cdbd processes
	// must never interleave appends in one ledger file.
	journalDir := *ledgerDir
	if journalDir != "" && *shardID != "" {
		journalDir = filepath.Join(journalDir, *shardID)
	}
	if journalDir != "" {
		engineOpts = append(engineOpts,
			cdb.WithLedgerDir(journalDir),
			cdb.WithLedgerFsync(*fsyncPol))
	}
	engine, err := db.NewEngine(engineOpts...)
	if err != nil {
		logger.Fatalf("engine: %v", err)
	}
	if ls := engine.LedgerStats(); ls.Enabled {
		logger.Printf("ledger: replayed %d records from %s (%d verdicts, %d statements, %d answers; torn tails truncated: %d; fsync=%s)",
			ls.Replayed, journalDir, ls.Verdicts, ls.Statements, ls.Answers, ls.TornTruncations, *fsyncPol)
	}

	var fleet *cluster.Fleet
	if *coordinator {
		backends, perr := parseShards(*shardList)
		if perr != nil {
			logger.Fatalf("shards: %v", perr)
		}
		fleet, err = cluster.New(cluster.Config{
			Planner:    engine,
			Backends:   backends,
			SpillQueue: *spillQueue,
			Logger:     logger,
		})
		if err != nil {
			logger.Fatalf("cluster: %v", err)
		}
		fleet.StartReplication(*replEvery)
		ids := make([]string, 0, len(backends))
		for _, b := range backends {
			ids = append(ids, b.ID())
		}
		logger.Printf("coordinator over shards %v (fingerprint %s)", ids, fleet.Fingerprint())
	} else if *shardList != "" {
		logger.Fatalf("-shards requires -coordinator")
	}

	srv, err := server.New(server.Config{
		DB:         db,
		Engine:     engine,
		Logger:     logger,
		RetryAfter: *retryAfter,
		QueryLog:   qlog,
		ShardID:    *shardID,
		Fleet:      fleet,
	})
	if err != nil {
		logger.Fatalf("server: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		got := <-sig
		logger.Printf("received %s, draining", got)
		if fleet != nil {
			fleet.StopReplication()
		}
		// Drain ordering: stop admitting and wait for every accepted
		// query first, so their handlers finish writing; only then
		// close the listener and linger for the final response bytes.
		// Engine.Close (inside Drain) flushes and syncs the ledger
		// after the last query, so every paid verdict is durable
		// before the process exits.
		srv.Drain()
		if ls := engine.LedgerStats(); ls.Enabled {
			logger.Printf("ledger: synced and closed (%d records appended this session, %d replay hits, %d compactions)",
				ls.Appended, ls.Hits, ls.Compactions)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		logger.Printf("drained cleanly")
	}()

	logger.Printf("serving dataset %q (scale %v, seed %d) on %s: tables %v",
		*datasetN, *scale, *seed, *addr, db.TableNames())
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("listen: %v", err)
	}
	<-done
	fmt.Fprintln(os.Stderr, "cdbd: bye")
}
