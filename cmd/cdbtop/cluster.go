// Cluster view: with one or more repeated -connect flags cdbtop polls
// every shard's /metrics and renders them side by side — one column
// per shard plus a fleet-totals column — reusing the same Prometheus
// de-cumulation path as the single-node view. A shard that fails to
// scrape renders as "down" without hiding the survivors.
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// connectList collects repeated -connect flags. Each entry is
// id=host:port, or a bare address whose column is named by the
// address itself.
type connectList []string

func (c *connectList) String() string { return strings.Join(*c, ",") }

func (c *connectList) Set(v string) error {
	*c = append(*c, v)
	return nil
}

// shardTarget is one column of the cluster view.
type shardTarget struct {
	name string
	base string
}

func parseConnects(entries []string) []shardTarget {
	out := make([]shardTarget, 0, len(entries))
	for _, e := range entries {
		name, addr := e, e
		if eq := strings.IndexByte(e, '='); eq >= 0 {
			name, addr = e[:eq], e[eq+1:]
		}
		base := strings.TrimRight(addr, "/")
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		out = append(out, shardTarget{name: name, base: base})
	}
	return out
}

// clusterRows is the metric set worth a per-shard column: serving
// pressure, admission state, and the cross-shard cache economy.
var clusterRows = []struct{ label, metric string }{
	{"requests", "cdb_server_requests_total"},
	{"2xx", "cdb_server_requests_2xx_total"},
	{"429", "cdb_server_requests_429_total"},
	{"5xx", "cdb_server_requests_5xx_total"},
	{"shed", "cdb_server_shed_total"},
	{"in-flight", "cdb_engine_inflight"},
	{"queued", "cdb_engine_queued"},
	{"shard execs", "cdb_server_cluster_exec_total"},
	{"repl applied", "cdb_server_cluster_applied_total"},
	{"remote hits", "cdb_engine_remote_hits_total"},
	{"remote imported", "cdb_engine_remote_imported_total"},
	{"tasks shared", "cdb_engine_tasks_shared_total"},
	{"assignments", "cdb_transport_assignments_issued_total"},
}

// runCluster is the poll/render loop for the aggregated view.
func runCluster(targets []shardTarget, interval time.Duration, once bool) {
	hc := &http.Client{Timeout: 10 * time.Second}
	prev := make([]*metricsSnapshot, len(targets))
	var prevAt time.Time
	for {
		cur := make([]*metricsSnapshot, len(targets))
		errs := make([]error, len(targets))
		for i, tg := range targets {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			cur[i], errs[i] = scrapeMetrics(ctx, hc, tg.base)
			cancel()
		}
		now := time.Now()
		if !once {
			fmt.Print("\x1b[2J\x1b[H")
		}
		dt := time.Duration(0)
		if !prevAt.IsZero() {
			dt = now.Sub(prevAt)
		}
		renderCluster(os.Stdout, targets, prev, cur, errs, dt)
		if once {
			for _, err := range errs {
				if err != nil {
					fmt.Fprintf(os.Stderr, "cdbtop: %v\n", err)
					os.Exit(1)
				}
			}
			return
		}
		prev, prevAt = cur, now
		time.Sleep(interval)
	}
}

func scrapeMetrics(ctx context.Context, hc *http.Client, base string) (*metricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("scrape %s/metrics: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s/metrics: HTTP %d", base, resp.StatusCode)
	}
	return parsePrometheus(resp.Body)
}

func renderCluster(w io.Writer, targets []shardTarget, prev, cur []*metricsSnapshot, errs []error, dt time.Duration) {
	fmt.Fprintf(w, "cdbtop — cluster (%d shards) — %s\n\n", len(targets), time.Now().Format("15:04:05"))

	fmt.Fprintf(w, "%-16s", "")
	for _, tg := range targets {
		fmt.Fprintf(w, " %12s", trunc(tg.name, 12))
	}
	fmt.Fprintf(w, " %12s\n", "fleet")

	// Request rate first: the line operators watch.
	if dt > 0 {
		fmt.Fprintf(w, "%-16s", "req/s")
		total := 0.0
		for i := range targets {
			if errs[i] != nil || prev[i] == nil {
				fmt.Fprintf(w, " %12s", "—")
				continue
			}
			d := float64(cur[i].scalar("cdb_server_requests_total") - prev[i].scalar("cdb_server_requests_total"))
			r := d / dt.Seconds()
			total += r
			fmt.Fprintf(w, " %12.1f", r)
		}
		fmt.Fprintf(w, " %12.1f\n", total)
	}

	for _, row := range clusterRows {
		fmt.Fprintf(w, "%-16s", row.label)
		var sum int64
		live := false
		for i := range targets {
			if errs[i] != nil {
				fmt.Fprintf(w, " %12s", "down")
				continue
			}
			v := cur[i].scalar(row.metric)
			sum += v
			live = true
			fmt.Fprintf(w, " %12d", v)
		}
		if live {
			fmt.Fprintf(w, " %12d\n", sum)
		} else {
			fmt.Fprintf(w, " %12s\n", "—")
		}
	}

	// Latency quantiles are per-shard only: percentiles don't sum.
	fmt.Fprintf(w, "%-16s", "query p95")
	for i := range targets {
		if errs[i] != nil {
			fmt.Fprintf(w, " %12s", "down")
			continue
		}
		h, ok := cur[i].hist("cdb_server_latency_query_seconds")
		if !ok || h.Count == 0 {
			fmt.Fprintf(w, " %12s", "—")
			continue
		}
		fmt.Fprintf(w, " %12s", fmtSec(h.P95))
	}
	fmt.Fprintf(w, " %12s\n", "")

	for i, tg := range targets {
		if errs[i] != nil {
			fmt.Fprintf(w, "\n%s: %v", tg.name, errs[i])
		}
	}
	fmt.Fprintln(w)
}
