package main

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cdb/client"
	"cdb/internal/obs"
)

// TestParsePrometheusRoundTrip feeds a real registry's exposition text
// through the parser and checks scalars and histograms survive intact
// — the dashboard must agree with the server about every number.
func TestParsePrometheusRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("cdb_server_requests_total").Add(42)
	r.Gauge("cdb_engine_inflight").Add(3)
	h := r.Histogram("cdb_server_latency_query_seconds", obs.DurationBuckets)
	for _, v := range []float64{0.001, 0.002, 0.004, 0.1, 2.5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := parsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got := snap.scalar("cdb_server_requests_total"); got != 42 {
		t.Errorf("requests_total = %d, want 42", got)
	}
	if got := snap.scalar("cdb_engine_inflight"); got != 3 {
		t.Errorf("inflight = %d, want 3", got)
	}
	ph, ok := snap.hist("cdb_server_latency_query_seconds")
	if !ok {
		t.Fatal("latency histogram missing from parse")
	}
	want := findHist(t, r, "cdb_server_latency_query_seconds")
	if ph.Count != want.Count {
		t.Errorf("count = %d, want %d", ph.Count, want.Count)
	}
	if math.Abs(ph.Sum-want.Sum) > 1e-12 {
		t.Errorf("sum = %g, want %g", ph.Sum, want.Sum)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, exp := ph.Quantile(q), want.Quantile(q); math.Abs(got-exp) > 1e-12 {
			t.Errorf("quantile(%v) = %g, want %g", q, got, exp)
		}
	}
	if ph.P95 != want.Quantile(0.95) {
		t.Errorf("precomputed P95 = %g, want %g", ph.P95, want.Quantile(0.95))
	}
}

func findHist(t *testing.T, r *obs.Registry, name string) obs.HistSnap {
	t.Helper()
	for _, h := range r.Snapshot().Histograms {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("histogram %s not in registry snapshot", name)
	return obs.HistSnap{}
}

// TestParsePrometheusMalformed pins the parser's tolerance: unknown
// lines are skipped, truncated histograms are an error.
func TestParsePrometheusMalformed(t *testing.T) {
	snap, err := parsePrometheus(strings.NewReader(
		"# HELP something\nnot_a_sample\nweird{label=\"x\"} abc\ncdb_ok_total 7\n"))
	if err != nil {
		t.Fatalf("tolerant parse failed: %v", err)
	}
	if got := snap.scalar("cdb_ok_total"); got != 7 {
		t.Errorf("cdb_ok_total = %d, want 7", got)
	}

	_, err = parsePrometheus(strings.NewReader(
		"# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_sum 0.05\nh_count 1\n"))
	if err == nil {
		t.Error("histogram missing its +Inf bucket should fail to parse")
	}
}

// TestRenderSnapshot smoke-tests the dashboard rendering: all sections
// present, quantiles as durations, query rows truncated.
func TestRenderSnapshot(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("cdb_server_requests_total").Add(10)
	r.Counter("cdb_server_requests_2xx_total").Add(9)
	r.Counter("cdb_server_requests_429_total").Add(1)
	h := r.Histogram("cdb_server_latency_query_seconds", obs.DurationBuckets)
	h.Observe(0.010)
	h.Observe(0.020)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	cur, err := parsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := &client.QueriesResponse{
		InFlight: []client.QueryInfo{{
			ID: 7, RequestID: "req-deadbeef00112233", State: "running",
			ElapsedMs: 1500, Rounds: 2, Open: 3,
			Query: strings.Repeat("SELECT * FROM Paper ", 10),
		}},
		Recent: []client.QueryInfo{{
			ID: 6, RequestID: "req-cafe", State: "done", ElapsedMs: 900, Rounds: 1, HITs: 4,
			Query: "SELECT 1",
		}},
	}

	var out bytes.Buffer
	render(&out, "http://localhost:8080", nil, cur, q, 0)
	s := out.String()
	for _, want := range []string{
		"2xx=9", "429=1", "/v1/query", "in-flight queries (1)", "recent queries (1)",
		"running", "done", "req-cafe", "…", // truncated long query
	} {
		if !strings.Contains(s, want) {
			t.Errorf("render output missing %q\n%s", want, s)
		}
	}
}
