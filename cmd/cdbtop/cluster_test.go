package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseConnects(t *testing.T) {
	got := parseConnects([]string{"a=localhost:8081", "b=http://10.0.0.2:8082/", "localhost:9090"})
	want := []shardTarget{
		{name: "a", base: "http://localhost:8081"},
		{name: "b", base: "http://10.0.0.2:8082"},
		{name: "localhost:9090", base: "http://localhost:9090"},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d targets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("target %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRenderClusterTotalsAndDownShards(t *testing.T) {
	snap := func(reqs, hits int64) *metricsSnapshot {
		return &metricsSnapshot{scalars: map[string]int64{
			"cdb_server_requests_total":    reqs,
			"cdb_engine_remote_hits_total": hits,
		}}
	}
	targets := []shardTarget{{name: "a"}, {name: "b"}, {name: "c"}}
	cur := []*metricsSnapshot{snap(10, 3), snap(32, 4), nil}
	prev := []*metricsSnapshot{snap(0, 0), snap(2, 0), nil}
	var sb strings.Builder
	renderCluster(&sb, targets, prev, cur, []error{nil, nil, errDown{}}, 2*time.Second)
	// Compare on whitespace-collapsed lines so column padding can
	// evolve without rewriting the expectations.
	var lines []string
	for _, l := range strings.Split(sb.String(), "\n") {
		lines = append(lines, strings.Join(strings.Fields(l), " "))
	}
	out := strings.Join(lines, "\n")
	for _, want := range []string{
		"requests 10 32 down 42",
		"remote hits 3 4 down 7",
		"req/s 5.0 15.0 — 20.0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster view missing %q in:\n%s", want, sb.String())
		}
	}
}

type errDown struct{}

func (errDown) Error() string { return "connection refused" }
