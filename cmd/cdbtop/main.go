// Command cdbtop is a terminal dashboard for a running cdbd: the
// operator's live view of the serving layer. It polls /metrics
// (Prometheus text) and /v1/queries (the engine's query registry) and
// renders request rates by status class, per-endpoint latency
// quantiles, execution-phase timings, crowd-work-ledger durability
// counters (when the server runs -ledger-dir), and the live query
// table — the queued/running/draining queries with their crowd-round
// progress, plus the most recently completed ones.
//
//	cdbtop -addr localhost:8080
//	cdbtop -addr localhost:8080 -interval 1s
//	cdbtop -addr localhost:8080 -once        # one snapshot, no screen control (CI, scripts)
//
// With repeated -connect flags cdbtop watches a whole fleet instead:
// one column per shard plus fleet totals, including the cross-shard
// verdict-cache economy (remote hits, replicated imports):
//
//	cdbtop -connect coord=localhost:8080 -connect a=localhost:8081 -connect b=localhost:8082
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"cdb/client"
)

func main() {
	var connects connectList
	var (
		addr     = flag.String("addr", "localhost:8080", "cdbd address (host:port or URL)")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		once     = flag.Bool("once", false, "print one snapshot and exit (no screen control)")
	)
	flag.Var(&connects, "connect", "cluster member as id=host:port (repeatable); any -connect switches to the aggregated per-shard view")
	flag.Parse()

	if len(connects) > 0 {
		runCluster(parseConnects(connects), *interval, *once)
		return
	}

	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	p := &poller{
		base: base,
		hc:   &http.Client{Timeout: 10 * time.Second},
		qc:   client.New(base),
	}

	var prev *metricsSnapshot
	var prevAt time.Time
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		cur, queries, err := p.poll(ctx)
		cancel()
		now := time.Now()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdbtop: %v\n", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		dt := time.Duration(0)
		if prev != nil {
			dt = now.Sub(prevAt)
		}
		render(os.Stdout, base, prev, cur, queries, dt)
		if *once {
			return
		}
		prev, prevAt = cur, now
		time.Sleep(*interval)
	}
}

type poller struct {
	base string
	hc   *http.Client
	qc   *client.Client
}

func (p *poller) poll(ctx context.Context) (*metricsSnapshot, *client.QueriesResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/metrics", nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("scrape %s/metrics: %w", p.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("scrape %s/metrics: HTTP %d", p.base, resp.StatusCode)
	}
	snap, err := parsePrometheus(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	queries, err := p.qc.Queries(ctx)
	if err != nil {
		return nil, nil, err
	}
	return snap, queries, nil
}

// endpoints maps the latency histograms to their display rows.
var endpoints = []struct{ label, hist string }{
	{"/v1/query", "cdb_server_latency_query_seconds"},
	{"/v1/query/stream", "cdb_server_latency_stream_seconds"},
	{"/v1/tables", "cdb_server_latency_tables_seconds"},
	{"/v1/queries", "cdb_server_latency_queries_seconds"},
	{"other", "cdb_server_latency_other_seconds"},
}

// phases maps the execution-phase histograms to their display rows.
var phases = []struct{ label, hist string }{
	{"parse", "cdb_engine_phase_parse_seconds"},
	{"plan", "cdb_engine_phase_plan_seconds"},
	{"round", "cdb_exec_phase_round_seconds"},
	{"issue", "cdb_exec_phase_issue_seconds"},
}

func render(w io.Writer, base string, prev, cur *metricsSnapshot, q *client.QueriesResponse, dt time.Duration) {
	total := cur.scalar("cdb_server_requests_total")
	rate := ""
	if dt > 0 {
		d := total - prev.scalar("cdb_server_requests_total")
		rate = fmt.Sprintf("  %.1f req/s", float64(d)/dt.Seconds())
	}
	fmt.Fprintf(w, "cdbtop — %s — %s\n\n", base, time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "requests  total=%d%s  2xx=%d 4xx=%d 429=%d 5xx=%d  shed=%d drain_shed=%d\n",
		total, rate,
		cur.scalar("cdb_server_requests_2xx_total"),
		cur.scalar("cdb_server_requests_4xx_total"),
		cur.scalar("cdb_server_requests_429_total"),
		cur.scalar("cdb_server_requests_5xx_total"),
		cur.scalar("cdb_server_shed_total"),
		cur.scalar("cdb_server_drain_shed_total"))
	fmt.Fprintf(w, "engine    in-flight=%d queued=%d  queries=%d streams=%d\n",
		cur.scalar("cdb_engine_inflight"),
		cur.scalar("cdb_engine_queued"),
		cur.scalar("cdb_server_queries_total"),
		cur.scalar("cdb_server_streams_total"))
	if l := q.Ledger; l != nil {
		fmt.Fprintf(w, "ledger    verdicts=%d stmts=%d answers=%d  replayed=%d appended=%d compactions=%d  hits=%d torn=%d\n",
			l.Verdicts, l.Statements, l.Answers,
			l.Replayed, l.Appended, l.Compactions, l.Hits, l.TornTruncated)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-18s %8s %10s %10s %10s\n", "endpoint", "count", "p50", "p95", "p99")
	for _, e := range endpoints {
		h, ok := cur.hist(e.hist)
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-18s %8d %10s %10s %10s\n", e.label, h.Count, fmtSec(h.P50), fmtSec(h.P95), fmtSec(h.P99))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s %8s %10s %10s %10s\n", "phase", "count", "p50", "p95", "p99")
	for _, ph := range phases {
		h, ok := cur.hist(ph.hist)
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-18s %8d %10s %10s %10s\n", ph.label, h.Count, fmtSec(h.P50), fmtSec(h.P95), fmtSec(h.P99))
	}

	fmt.Fprintf(w, "\nin-flight queries (%d)\n", len(q.InFlight))
	if len(q.InFlight) > 0 {
		fmt.Fprintf(w, "%4s %-9s %9s %6s %6s %-14s %-18s %s\n", "id", "state", "elapsed", "rounds", "open", "plan", "request", "query")
		for _, qi := range q.InFlight {
			fmt.Fprintf(w, "%4d %-9s %9s %6d %6d %-14s %-18s %s\n",
				qi.ID, qi.State, fmtMs(qi.ElapsedMs), qi.Rounds, qi.Open, planCol(qi), trunc(qi.RequestID, 18), trunc(qi.Query, 48))
		}
	}

	recent := append([]client.QueryInfo(nil), q.Recent...)
	sort.SliceStable(recent, func(i, j int) bool { return recent[i].ID > recent[j].ID })
	if len(recent) > 10 {
		recent = recent[:10]
	}
	fmt.Fprintf(w, "\nrecent queries (%d)\n", len(q.Recent))
	if len(recent) > 0 {
		fmt.Fprintf(w, "%4s %-9s %9s %6s %6s %6s %-14s %-18s %s\n", "id", "state", "elapsed", "rounds", "hits", "ledger", "plan", "request", "query")
		for _, qi := range recent {
			fmt.Fprintf(w, "%4d %-9s %9s %6d %6d %6d %-14s %-18s %s\n",
				qi.ID, qi.State, fmtMs(qi.ElapsedMs), qi.Rounds, qi.HITs, qi.Ledger, planCol(qi), trunc(qi.RequestID, 18), trunc(qi.Query, 48))
		}
	}
}

// planCol renders the planned join order for the query tables: the
// order string already carries the "→∅" early-exit marker; a non-zero
// exit count is appended for multi-exit statements. "-" means the
// server ran without the greedy planner.
func planCol(qi client.QueryInfo) string {
	if qi.Plan == "" {
		return "-"
	}
	s := qi.Plan
	if qi.PlanEarlyExits > 1 {
		s = fmt.Sprintf("%s ×%d", s, qi.PlanEarlyExits)
	}
	return trunc(s, 14)
}

// fmtSec renders a quantile estimate (seconds) as a compact duration.
func fmtSec(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

func fmtMs(ms int64) string {
	return (time.Duration(ms) * time.Millisecond).String()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}
