package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cdb/internal/obs"
)

// metricsSnapshot is one parsed /metrics scrape: scalar samples
// (counters and gauges share a namespace — names are unique in the
// registry) plus reconstructed histograms ready for quantile math.
type metricsSnapshot struct {
	scalars map[string]int64
	hists   map[string]obs.HistSnap
}

func (m *metricsSnapshot) scalar(name string) int64 {
	if m == nil {
		return 0
	}
	return m.scalars[name]
}

func (m *metricsSnapshot) hist(name string) (obs.HistSnap, bool) {
	if m == nil {
		return obs.HistSnap{}, false
	}
	h, ok := m.hists[name]
	return h, ok
}

// parsePrometheus reads the text exposition format cdbd's /metrics
// emits (the subset obs.WritePrometheus produces: no labels except a
// histogram's le). Histogram _bucket series arrive cumulative and in
// bound order; they are de-cumulated back into per-bucket counts so
// the shared obs.HistSnap.Quantile estimator applies unchanged.
func parsePrometheus(r io.Reader) (*metricsSnapshot, error) {
	snap := &metricsSnapshot{
		scalars: make(map[string]int64),
		hists:   make(map[string]obs.HistSnap),
	}
	isHist := make(map[string]bool)
	cumulative := make(map[string][]int64) // bucket counts as scraped
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// "# TYPE <name> <kind>" declares what follows.
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" && fields[3] == "histogram" {
				isHist[fields[2]] = true
				snap.hists[fields[2]] = obs.HistSnap{Name: fields[2]}
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		key, val := line[:sp], strings.TrimSpace(line[sp+1:])
		switch {
		case strings.Contains(key, "_bucket{le="):
			brace := strings.Index(key, "_bucket{")
			base := key[:brace]
			if !isHist[base] {
				continue
			}
			le := strings.TrimSuffix(strings.TrimPrefix(key[brace:], `_bucket{le="`), `"}`)
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cdbtop: bad bucket count %q: %v", line, err)
			}
			h := snap.hists[base]
			if le != "+Inf" {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("cdbtop: bad bucket bound %q: %v", line, err)
				}
				h.Bounds = append(h.Bounds, bound)
			}
			cumulative[base] = append(cumulative[base], n)
			snap.hists[base] = h
		case isHist[strings.TrimSuffix(key, "_sum")] && strings.HasSuffix(key, "_sum"):
			base := strings.TrimSuffix(key, "_sum")
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("cdbtop: bad sum %q: %v", line, err)
			}
			h := snap.hists[base]
			h.Sum = f
			snap.hists[base] = h
		case isHist[strings.TrimSuffix(key, "_count")] && strings.HasSuffix(key, "_count"):
			base := strings.TrimSuffix(key, "_count")
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cdbtop: bad count %q: %v", line, err)
			}
			h := snap.hists[base]
			h.Count = n
			snap.hists[base] = h
		default:
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				continue // not a scalar sample we understand
			}
			snap.scalars[key] = n
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cdbtop: scan metrics: %w", err)
	}
	// De-cumulate bucket counts into the HistSnap layout (one extra
	// +Inf entry) and precompute the quantiles.
	for base, cum := range cumulative {
		h := snap.hists[base]
		if len(cum) != len(h.Bounds)+1 {
			return nil, fmt.Errorf("cdbtop: histogram %s: %d buckets for %d bounds", base, len(cum), len(h.Bounds))
		}
		h.Counts = make([]int64, len(cum))
		prev := int64(0)
		for i, c := range cum {
			h.Counts[i] = c - prev
			prev = c
		}
		h.P50, h.P95, h.P99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
		snap.hists[base] = h
	}
	return snap, nil
}
