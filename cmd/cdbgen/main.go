// Command cdbgen emits the synthetic benchmark datasets as CSV files
// plus a ground-truth file mapping every generated string to its
// entity id, so external tools can score crowd answers.
//
//	cdbgen -dataset paper -scale 1.0 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cdb/internal/dataset"
	"cdb/internal/obs"
)

func main() {
	var (
		name  = flag.String("dataset", "paper", "dataset: paper, award or example")
		scale = flag.Float64("scale", 1.0, "scale (1.0 = the paper's Table 2/3 sizes)")
		seed  = flag.Uint64("seed", 1, "random seed")
		out   = flag.String("out", ".", "output directory")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" || *memProfile != "" {
		stop, err := obs.StartProfiles(*cpuProfile, *memProfile)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fatal(err)
			}
		}()
	}

	var d *dataset.Data
	switch *name {
	case "award":
		d = dataset.GenAward(dataset.Config{Seed: *seed, Scale: *scale})
	case "example":
		d = dataset.RunningExample()
	default:
		d = dataset.GenPaper(dataset.Config{Seed: *seed, Scale: *scale})
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	names := d.Catalog.Names()
	sort.Strings(names)
	for _, tn := range names {
		tb := d.Catalog.MustGet(tn)
		path := filepath.Join(*out, fmt.Sprintf("%s_%s.csv", d.Name, tn))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := tb.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, tb.Len())
	}
	fmt.Println("done; ground truth is embedded in the generator (use the cdb API's oracle for scoring)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cdbgen:", err)
	os.Exit(1)
}
