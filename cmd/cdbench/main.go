// Command cdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	cdbench -exp fig8 -dataset paper -scale 0.12 -reps 3
//	cdbench -exp all
//
// Each experiment prints one or more aligned text tables; see
// EXPERIMENTS.md for the mapping to the paper and the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cdb/internal/bench"
	"cdb/internal/obs"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (fig1, fig8, fig11, fig14, fig17, fig18, fig20, fig21, fig22, fig23, table5, chaos, serve, trans, shard, plan) or 'all'")
		dataset    = flag.String("dataset", "paper", "dataset: paper or award")
		scale      = flag.Float64("scale", 0.12, "dataset scale (1.0 = the paper's Table 2/3 sizes)")
		reps       = flag.Int("reps", 3, "repetitions per cell (the paper averages 1000)")
		seed       = flag.Uint64("seed", 1, "random seed")
		red        = flag.Int("redundancy", 5, "answers per task")
		workerQ    = flag.Float64("workerq", 0.8, "mean simulated worker accuracy")
		samples    = flag.Int("samples", 20, "MinCut sampling count")
		costbench  = flag.Bool("costbench", false, "run the incremental cost-engine benchmarks and write BENCH_cost.json")
		benchOut   = flag.String("costbenchout", "BENCH_cost.json", "output path for -costbench")
		benchProcs = flag.Int("costbenchprocs", 0, "pin GOMAXPROCS for -costbench (0 = leave as is)")

		serveClients = flag.Int("serve-clients", 8, "serve experiment: concurrent in-flight queries")
		serveQueries = flag.Int("serve-queries", 24, "serve experiment: workload size over the 5 query templates")
		serveOut     = flag.String("serve-out", "BENCH_engine.json", "serve experiment: report path (empty skips the artifact)")

		transOut = flag.String("trans-out", "BENCH_trans.json", "trans experiment: report path (empty skips the artifact)")

		planOut = flag.String("plan-out", "BENCH_plan.json", "plan experiment: report path (empty skips the artifact)")

		shardClients = flag.Int("shard-clients", 8, "shard experiment: concurrent clients driving the coordinator")
		shardQueries = flag.Int("shard-queries", 40, "shard experiment: workload size over the 5 query templates")
		shardDelay   = flag.Int("shard-delay-ms", 60, "shard experiment: simulated crowd round-trip per completed round")
		shardOut     = flag.String("shard-out", "BENCH_shard.json", "shard experiment: report path (empty skips the artifact)")

		faultSeed      = flag.Uint64("fault-seed", 1, "chaos engine seed (same seed replays identical faults)")
		faultDrop      = flag.Float64("fault-drop", 0, "fraction of crowd answers dropped (chaos experiment sweeps its own grid unless set)")
		faultStraggler = flag.Float64("fault-straggler", 0, "fraction of answers delayed past the round deadline")
		faultDup       = flag.Float64("fault-dup", 0, "fraction of answers delivered twice")
		faultCorrupt   = flag.Float64("fault-corrupt", 0, "fraction of answers replaced by random verdicts")
		faultBlackout  = flag.String("fault-blackout", "", "market outage as market:from:until in virtual ticks (empty market = all)")
		deadline       = flag.Int64("deadline", 0, "per-HIT deadline in virtual ticks (0 = executor default)")
		retries        = flag.Int("retries", 0, "reissue waves per round (0 = executor default, negative disables)")
		hedge          = flag.Float64("hedge", 0, "slowest fraction of a round hedged early (0 = executor default, negative disables)")

		traceOut    = flag.String("trace", "", "write query-lifecycle spans as JSONL to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (\":0\" picks a port)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *metricsAddr != "" {
		bound, shutdown, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdbench: metrics: %v\n", err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "cdbench: metrics on http://%s/metrics\n", bound)
	}
	if *cpuProfile != "" || *memProfile != "" {
		stop, err := obs.StartProfiles(*cpuProfile, *memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdbench: profiling: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "cdbench: profiling: %v\n", err)
			}
		}()
	}
	var observer obs.Observer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdbench: trace: %v\n", err)
			os.Exit(1)
		}
		jw := obs.NewJSONLWriter(f)
		observer = jw
		defer func() {
			if err := jw.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "cdbench: trace: %v\n", err)
			}
			f.Close()
		}()
	}

	if *costbench {
		if err := bench.RunCostBench(*benchOut, *benchProcs, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cdbench: costbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Dataset = *dataset
	cfg.Scale = *scale
	cfg.Reps = *reps
	cfg.Seed = *seed
	cfg.Redundancy = *red
	cfg.WorkerQ = *workerQ
	cfg.Samples = *samples
	cfg.Observer = observer
	cfg.FaultSeed = *faultSeed
	cfg.FaultStraggler = *faultStraggler
	cfg.FaultDup = *faultDup
	cfg.FaultCorrupt = *faultCorrupt
	cfg.FaultBlackout = *faultBlackout
	cfg.TaskDeadline = *deadline
	cfg.MaxRetries = *retries
	cfg.HedgeFrac = *hedge
	cfg.ServeClients = *serveClients
	cfg.ServeQueries = *serveQueries
	cfg.ServeOut = *serveOut
	cfg.TransOut = *transOut
	cfg.PlanOut = *planOut
	cfg.ShardClients = *shardClients
	cfg.ShardQueries = *shardQueries
	cfg.ShardDelayMs = *shardDelay
	cfg.ShardOut = *shardOut
	if *faultDrop > 0 {
		// An explicit drop rate pins the chaos experiment's whole grid
		// to that single intensity.
		bench.SetChaosDropGrid([]float64{*faultDrop})
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.ExperimentIDs()
	}
	for _, id := range ids {
		runner, ok := bench.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "cdbench: unknown experiment %q; known: %v\n", id, bench.ExperimentIDs())
			os.Exit(2)
		}
		start := time.Now()
		tables, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		fmt.Printf("(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
