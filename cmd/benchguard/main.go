// Command benchguard gates benchmark regressions in CI.
//
// It compares a freshly measured BENCH_cost.json against the committed
// baseline and exits non-zero if any matched ns/op metric regressed by
// more than the allowed fraction (default 25%). Metrics are matched by
// identity — round benchmarks by edge count, join benchmarks by
// (n, workers) — so adding or removing scales never trips the guard;
// only a measured slowdown on a shared metric does.
//
// With -trans-baseline and -trans-current it additionally guards the
// transitive-inference experiment (BENCH_trans.json): the build fails
// when the HITs saved by inference drop more than the allowed fraction
// below the committed baseline — the direction is inverted relative to
// ns/op, fewer savings is the regression.
//
// With -shard-baseline and -shard-current it guards the horizontal
// scale-out experiment (BENCH_shard.json): the build fails when the
// 2-shard aggregate QPS scaling drops below the hard 1.6x floor (or
// more than the allowed fraction below the committed baseline), when
// no cross-shard cache hits are observed, or when the off-owner probe
// has to issue fresh crowd work — replication failing to cover it.
//
// With -plan-baseline and -plan-current it guards the greedy-planner
// experiment (BENCH_plan.json): the build fails when the HITs saved by
// greedy ordering drop more than the allowed fraction below the
// committed baseline, when planning p95 exceeds 1ms, or when EXPLAIN
// is observed issuing any crowd assignment.
//
// Usage:
//
//	go run ./cmd/cdbench -costbench -costbenchout BENCH_current.json
//	go run ./cmd/benchguard -baseline BENCH_baseline.json -current BENCH_current.json
//	go run ./cmd/cdbench -exp trans -trans-out BENCH_trans_current.json
//	go run ./cmd/benchguard -trans-baseline BENCH_trans.json -trans-current BENCH_trans_current.json
//	go run ./cmd/cdbench -exp shard -shard-out BENCH_shard_current.json
//	go run ./cmd/benchguard -shard-baseline BENCH_shard.json -shard-current BENCH_shard_current.json
//	go run ./cmd/cdbench -exp plan -plan-out BENCH_plan_current.json
//	go run ./cmd/benchguard -plan-baseline BENCH_plan.json -plan-current BENCH_plan_current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cdb/internal/bench"
)

// checkTrans guards the transitive-inference savings: the current
// HITsSaved must not fall more than the allowed fraction below the
// committed baseline, and inference must never cost more HITs than the
// non-inferring run. Exits the process with the guard's verdict.
func checkTrans(basePath, curPath string, allowed float64) {
	base, err := loadTrans(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadTrans(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if base.HITsSaved <= 0 {
		fmt.Fprintf(os.Stderr, "benchguard: baseline %s reports no HITs saved (%d); nothing to guard\n",
			basePath, base.HITsSaved)
		os.Exit(2)
	}
	floor := float64(base.HITsSaved) * (1 - allowed)
	fmt.Printf("%-34s baseline %6d HITs saved  current %6d  floor %8.1f\n",
		"trans/hits-saved", base.HITsSaved, cur.HITsSaved, floor)
	if cur.HITsSaved <= 0 {
		fmt.Fprintf(os.Stderr, "benchguard: transitive inference saves nothing (%d HITs); REGRESSED\n", cur.HITsSaved)
		os.Exit(1)
	}
	if float64(cur.HITsSaved) < floor {
		fmt.Fprintf(os.Stderr, "benchguard: HITs saved dropped %.1f%% below baseline (allowed %.0f%%); REGRESSED\n",
			(1-float64(cur.HITsSaved)/float64(base.HITsSaved))*100, allowed*100)
		os.Exit(1)
	}
	fmt.Printf("benchguard: inference savings within %.0f%% of baseline\n", allowed*100)
}

// planP95FloorMicros is the absolute planning-latency bar: the greedy
// planner must stay under 1ms at p95 regardless of the baseline.
const planP95FloorMicros = 1000

// checkPlan guards the greedy-planner report. Exits with the verdict.
func checkPlan(basePath, curPath string, allowed float64) {
	base, err := loadPlan(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadPlan(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if base.HITsSaved <= 0 {
		fmt.Fprintf(os.Stderr, "benchguard: baseline %s reports no HITs saved (%d); nothing to guard\n",
			basePath, base.HITsSaved)
		os.Exit(2)
	}
	floor := float64(base.HITsSaved) * (1 - allowed)
	fmt.Printf("%-34s baseline %6d HITs saved  current %6d  floor %8.1f\n",
		"plan/hits-saved", base.HITsSaved, cur.HITsSaved, floor)
	fmt.Printf("%-34s current %6dµs (floor %dµs)\n", "plan/p95-planning", cur.PlanP95Micros, planP95FloorMicros)
	fmt.Printf("%-34s current %6d (want 0)\n", "plan/explain-assignments", cur.ExplainAssignments)
	failed := false
	if cur.HITsSaved <= 0 {
		fmt.Fprintf(os.Stderr, "benchguard: greedy planning saves nothing (%d HITs); REGRESSED\n", cur.HITsSaved)
		failed = true
	} else if float64(cur.HITsSaved) < floor {
		fmt.Fprintf(os.Stderr, "benchguard: HITs saved dropped %.1f%% below baseline (allowed %.0f%%); REGRESSED\n",
			(1-float64(cur.HITsSaved)/float64(base.HITsSaved))*100, allowed*100)
		failed = true
	}
	if cur.PlanP95Micros > planP95FloorMicros {
		fmt.Fprintf(os.Stderr, "benchguard: planning p95 %dµs exceeds %dµs; REGRESSED\n",
			cur.PlanP95Micros, planP95FloorMicros)
		failed = true
	}
	if cur.ExplainAssignments != 0 {
		fmt.Fprintf(os.Stderr, "benchguard: EXPLAIN issued %d crowd assignments (want 0); REGRESSED\n",
			cur.ExplainAssignments)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchguard: greedy planning saves %d HITs (%d early exits) within %.0f%% of baseline\n",
		cur.HITsSaved, cur.EarlyExitQueries, allowed*100)
}

func loadPlan(path string) (*bench.PlanBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.PlanBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// shardScalingFloor is the acceptance bar for 2-shard scaling: a fleet
// that cannot beat 1.6x aggregate QPS over one node is not scaling.
const shardScalingFloor = 1.6

// checkShard guards the scale-out report. Exits with the verdict.
func checkShard(basePath, curPath string, allowed float64) {
	base, err := loadShard(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadShard(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	floor := shardScalingFloor
	if f := base.Scaling2x * (1 - allowed); f > floor {
		floor = f
	}
	fmt.Printf("%-34s baseline %6.2fx  current %6.2fx  floor %6.2fx\n",
		"shard/scaling-2x", base.Scaling2x, cur.Scaling2x, floor)
	fmt.Printf("%-34s baseline %6d   current %6d\n",
		"shard/cross-shard-hits", base.CrossShardHits, cur.CrossShardHits)
	failed := false
	if cur.Scaling2x < floor {
		fmt.Fprintf(os.Stderr, "benchguard: 2-shard scaling %.2fx below floor %.2fx; REGRESSED\n", cur.Scaling2x, floor)
		failed = true
	}
	if cur.CrossShardHits <= 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no cross-shard cache hits; replication is not paying for itself; REGRESSED")
		failed = true
	}
	for _, fl := range cur.Fleets {
		if fl.ProbeAssignments != 0 {
			fmt.Fprintf(os.Stderr, "benchguard: off-owner probe at %d shards issued %d fresh assignments (want 0: replicated verdicts must cover it); REGRESSED\n",
				fl.Shards, fl.ProbeAssignments)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchguard: scale-out holds %.2fx at 2 shards with %d cross-shard hits\n", cur.Scaling2x, cur.CrossShardHits)
}

func loadShard(path string) (*bench.ShardBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.ShardBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func loadTrans(path string) (*bench.TransBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.TransBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func load(path string) (*bench.CostBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.CostBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// check compares one matched metric and reports whether it passed.
func check(w *int, label string, base, cur, allowed float64) bool {
	ratio := cur / base
	status := "ok"
	pass := true
	if ratio > 1+allowed {
		status = "REGRESSED"
		pass = false
	}
	fmt.Printf("%-34s baseline %12.0f ns  current %12.0f ns  %+6.1f%%  %s\n",
		label, base, cur, (ratio-1)*100, status)
	if !pass {
		*w++
	}
	return pass
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
		currentPath  = flag.String("current", "BENCH_cost.json", "freshly measured report")
		allowed      = flag.Float64("allowed", 0.25, "allowed ns/op regression fraction before failing")

		transBasePath = flag.String("trans-baseline", "", "committed BENCH_trans.json baseline (with -trans-current, runs the inference-savings guard instead)")
		transCurPath  = flag.String("trans-current", "", "freshly measured trans report")

		shardBasePath = flag.String("shard-baseline", "", "committed BENCH_shard.json baseline (with -shard-current, runs the scale-out guard instead)")
		shardCurPath  = flag.String("shard-current", "", "freshly measured shard report")

		planBasePath = flag.String("plan-baseline", "", "committed BENCH_plan.json baseline (with -plan-current, runs the planner guard instead)")
		planCurPath  = flag.String("plan-current", "", "freshly measured plan report")
	)
	flag.Parse()

	if *transBasePath != "" || *transCurPath != "" {
		if *transBasePath == "" || *transCurPath == "" {
			fmt.Fprintln(os.Stderr, "benchguard: -trans-baseline and -trans-current must be given together")
			os.Exit(2)
		}
		checkTrans(*transBasePath, *transCurPath, *allowed)
		return
	}
	if *shardBasePath != "" || *shardCurPath != "" {
		if *shardBasePath == "" || *shardCurPath == "" {
			fmt.Fprintln(os.Stderr, "benchguard: -shard-baseline and -shard-current must be given together")
			os.Exit(2)
		}
		checkShard(*shardBasePath, *shardCurPath, *allowed)
		return
	}
	if *planBasePath != "" || *planCurPath != "" {
		if *planBasePath == "" || *planCurPath == "" {
			fmt.Fprintln(os.Stderr, "benchguard: -plan-baseline and -plan-current must be given together")
			os.Exit(2)
		}
		checkPlan(*planBasePath, *planCurPath, *allowed)
		return
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if base.GoMaxProcs != cur.GoMaxProcs {
		fmt.Printf("note: GOMAXPROCS differs (baseline %d, current %d); comparison is advisory\n",
			base.GoMaxProcs, cur.GoMaxProcs)
	}

	baseRounds := make(map[int]bench.RoundBenchResult, len(base.Rounds))
	for _, r := range base.Rounds {
		baseRounds[r.Edges] = r
	}
	type joinKey struct{ n, workers int }
	baseJoins := make(map[joinKey]bench.JoinBenchResult, len(base.Joins))
	for _, j := range base.Joins {
		baseJoins[joinKey{j.N, j.Workers}] = j
	}

	regressions, matched := 0, 0
	for _, r := range cur.Rounds {
		b, ok := baseRounds[r.Edges]
		if !ok {
			fmt.Printf("%-34s no baseline, skipped\n", fmt.Sprintf("rounds/%d-edges", r.Edges))
			continue
		}
		matched++
		check(&regressions, fmt.Sprintf("rounds/%d-edges", r.Edges),
			b.IncrementalNsRound, r.IncrementalNsRound, *allowed)
	}
	for _, j := range cur.Joins {
		b, ok := baseJoins[joinKey{j.N, j.Workers}]
		if !ok {
			fmt.Printf("%-34s no baseline, skipped\n", fmt.Sprintf("join/n=%d-workers=%d", j.N, j.Workers))
			continue
		}
		matched++
		check(&regressions, fmt.Sprintf("join/n=%d-workers=%d", j.N, j.Workers),
			b.NsJoin, j.NsJoin, *allowed)
	}

	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no metrics matched between baseline and current")
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d of %d metrics regressed beyond %.0f%%\n",
			regressions, matched, *allowed*100)
		os.Exit(1)
	}
	fmt.Printf("benchguard: all %d metrics within %.0f%% of baseline\n", matched, *allowed*100)
}
