// Command cdbsh is an interactive CQL shell over a simulated crowd.
//
//	cdbsh                       # empty catalog
//	cdbsh -dataset example      # the paper's Table 1 running example
//	cdbsh -dataset paper -scale 0.1
//	cdbsh -connect host:8080    # remote mode against a cdbd server
//
// Statements end with ';'. Besides CQL (CREATE TABLE / SELECT …
// CROWDJOIN / CROWDEQUAL / FILL / COLLECT / BUDGET) the shell accepts:
//
//	\tables          list tables
//	\dump <table>    print a table (local mode)
//	\explain <sel>   plan a SELECT without executing it (zero crowd spend)
//	\metrics         print the process metrics (quantile summary)
//	\ledger          durable crowd-work ledger counters (remote mode)
//	\quit            exit
//
// In remote mode every SELECT runs over cdbd's streaming endpoint, so
// long crowd queries print their progress round by round as answers
// trickle in, instead of blocking silently.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"cdb"
	"cdb/client"
)

func main() {
	var (
		connect = flag.String("connect", "", "remote mode: address of a cdbd server (host:port)")

		datasetName = flag.String("dataset", "", "preload dataset: example, paper or award")
		scale       = flag.Float64("scale", 0.1, "dataset scale for paper/award")
		seed        = flag.Uint64("seed", 1, "random seed")
		workers     = flag.Int("workers", 50, "simulated worker count")
		accuracy    = flag.Float64("accuracy", 0.85, "mean worker accuracy")
		strategy    = flag.String("strategy", "cdb", "task selection strategy (cdb, mincut, crowddb, qurk, deco, opttree, trans, acd)")
		qc          = flag.Bool("quality", false, "enable CDB+ quality control (EM + task assignment)")

		traceOut    = flag.String("trace", "", "write query-lifecycle spans as JSONL to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (\":0\" picks a port)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *connect != "" {
		os.Exit(runRemote(*connect))
	}

	if *metricsAddr != "" {
		bound, shutdown, err := cdb.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdbsh: metrics: %v\n", err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "cdbsh: metrics on http://%s/metrics\n", bound)
	}
	if *cpuProfile != "" || *memProfile != "" {
		stop, err := cdb.StartProfiles(*cpuProfile, *memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdbsh: profiling: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "cdbsh: profiling: %v\n", err)
			}
		}()
	}

	opts := []cdb.Option{
		cdb.WithSeed(*seed),
		cdb.WithWorkers(*workers, *accuracy, 0.1),
		cdb.WithStrategy(*strategy),
		cdb.WithQualityControl(*qc),
		cdb.WithMetadata(),
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdbsh: trace: %v\n", err)
			os.Exit(1)
		}
		jw := cdb.NewJSONLWriter(f)
		opts = append(opts, cdb.WithObserver(jw))
		defer func() {
			if err := jw.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "cdbsh: trace: %v\n", err)
			}
			f.Close()
		}()
	}
	if *datasetName != "" {
		opts = append(opts, cdb.WithDataset(*datasetName, *scale, *seed))
	}
	db := cdb.Open(opts...)

	fmt.Println("cdbsh — crowd-powered CQL shell (end statements with ';', \\quit to exit)")
	if *datasetName != "" {
		fmt.Printf("loaded dataset %q: tables %v\n", *datasetName, db.TableNames())
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("cql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !command(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.Contains(line, ";") {
			execute(db, buf.String())
			buf.Reset()
		}
		prompt()
	}
}

func command(db *cdb.DB, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\tables":
		fmt.Println(strings.Join(db.TableNames(), ", "))
	case "\\meta":
		db.Metadata().WriteReport(os.Stdout)
	case "\\metrics":
		if err := cdb.WriteMetricsSummary(os.Stdout); err != nil {
			fmt.Println("error:", err)
		}
	case "\\ledger":
		fmt.Println("the crowd-work ledger lives in the serving engine: run cdbd with -ledger-dir and use \\ledger from cdbsh -connect")
	case "\\dump":
		if len(fields) < 2 {
			fmt.Println("usage: \\dump <table>")
			break
		}
		rows, err := db.Dump(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		printGrid(rows)
	case "\\explain":
		if len(fields) < 2 {
			fmt.Println("usage: \\explain SELECT ... ;")
			break
		}
		p, err := db.Explain(strings.TrimSpace(strings.TrimPrefix(cmd, fields[0])))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		printPlan(p)
	default:
		fmt.Println("unknown command; try \\tables, \\dump <table>, \\explain <select>, \\meta, \\metrics, \\ledger, \\quit")
	}
	return true
}

// printPlan renders an EXPLAIN result: the join order, each step's
// predicted crowd work, and the planner's zero-spend guarantee.
func printPlan(p *cdb.Plan) {
	mode := "fixed order"
	if p.Greedy {
		mode = "greedy"
	}
	fmt.Printf("plan %s (%s, %s)\n", p.JoinOrder, p.Structure, mode)
	rows := [][]string{{"step", "predicate", "candidates", "predicted", "note"}}
	for i, s := range p.Steps {
		note := ""
		if s.EarlyExit {
			note = "early exit: provably empty, 0 further HITs"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), s.Predicate,
			fmt.Sprintf("%d", s.CandidateEdges), fmt.Sprintf("%d", s.PredictedEdges), note,
		})
	}
	printGrid(rows)
	fmt.Printf("[predicted %d tasks (fixed order %d), planned in %dµs, 0 crowd assignments]\n",
		p.PredictedTasks, p.FixedTasks, p.PlanningMicros)
}

func execute(db *cdb.DB, stmt string) {
	res, err := db.Exec(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(res.Rows) > 0 {
		printGrid(append([][]string{res.Columns}, res.Rows...))
	}
	if res.Plan != nil && len(res.Rows) == 0 {
		// The EXPLAIN verb: render the plan instead of an empty grid.
		printPlan(res.Plan)
		return
	}
	if res.Message != "" {
		fmt.Println(res.Message)
	}
	if res.Stats.Tasks > 0 {
		fmt.Printf("[crowd: %d tasks, %d rounds, %d answers, $%.2f]\n",
			res.Stats.Tasks, res.Stats.Rounds, res.Stats.Assignments, res.Stats.Dollars)
	}
}

// runRemote is the -connect REPL: statements execute on a cdbd server
// through the typed client, SELECTs over the streaming endpoint with
// per-round progress lines. Returns the process exit code (non-zero
// when the final statement failed, so scripts piping statements in can
// assert success).
func runRemote(addr string) int {
	c := client.New(addr)
	ctx := context.Background()
	tables, err := c.Tables(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdbsh: connect %s: %v\n", addr, err)
		return 1
	}
	fmt.Printf("cdbsh — connected to cdbd at %s (tables: %s)\n", addr, strings.Join(tables, ", "))

	exitCode := 0
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("cql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !remoteCommand(ctx, c, trimmed) {
				return exitCode
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.Contains(line, ";") {
			if remoteExecute(ctx, c, buf.String()) {
				exitCode = 0
			} else {
				exitCode = 1
			}
			buf.Reset()
		}
		prompt()
	}
	return exitCode
}

func remoteCommand(ctx context.Context, c *client.Client, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\tables":
		tables, err := c.Tables(ctx)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println(strings.Join(tables, ", "))
	case "\\explain":
		if len(fields) < 2 {
			fmt.Println("usage: \\explain SELECT ... ;")
			break
		}
		p, err := c.Explain(ctx, strings.TrimSpace(strings.TrimPrefix(cmd, fields[0])))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		printPlan(p)
	case "\\ledger":
		resp, err := c.Queries(ctx)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		l := resp.Ledger
		if l == nil {
			fmt.Println("no ledger: the server runs without -ledger-dir")
			break
		}
		fmt.Printf("ledger: %d verdicts, %d statements, %d answers durable\n", l.Verdicts, l.Statements, l.Answers)
		fmt.Printf("        replayed %d records at boot (%d torn tails truncated)\n", l.Replayed, l.TornTruncated)
		fmt.Printf("        appended %d this session, %d compactions, %d replay hits (paid HIT work not re-issued)\n",
			l.Appended, l.Compactions, l.Hits)
	default:
		fmt.Println("unknown remote command; try \\tables, \\explain <select>, \\ledger, \\quit")
	}
	return true
}

// remoteExecute streams one statement and reports success. EXPLAIN
// statements route to the dedicated /v1/explain endpoint, everything
// else to the streaming query path.
func remoteExecute(ctx context.Context, c *client.Client, stmt string) bool {
	if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(stmt)), "EXPLAIN") {
		p, err := c.Explain(ctx, stmt)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		printPlan(p)
		return true
	}
	res, err := c.QueryStream(ctx, stmt, func(u cdb.RoundUpdate) {
		fmt.Printf("[round %d: %d tasks, %d↑ %d↓, %d edges open]\n", u.Round, u.Tasks, u.Blue, u.Red, u.Open)
	})
	if err != nil {
		var pe *cdb.ParseError
		if errors.As(err, &pe) && pe.Offset >= 0 {
			fmt.Printf("error: %v\n       %s\n       %s^\n", err, strings.ReplaceAll(stmt, "\n", " "), strings.Repeat(" ", pe.Offset))
		} else {
			fmt.Println("error:", err)
		}
		return false
	}
	if len(res.Rows) > 0 {
		printGrid(append([][]string{res.Columns}, res.Rows...))
	}
	if res.Message != "" {
		fmt.Println(res.Message)
	}
	if res.Stats.Tasks > 0 {
		fmt.Printf("[crowd: %d tasks, %d rounds, %d answers, $%.2f]\n",
			res.Stats.Tasks, res.Stats.Rounds, res.Stats.Assignments, res.Stats.Dollars)
	}
	return true
}

func printGrid(rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, r := range rows {
		var sb strings.Builder
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			}
		}
		fmt.Println(strings.TrimRight(sb.String(), " "))
		if ri == 0 {
			fmt.Println(strings.Repeat("-", len(strings.TrimRight(sb.String(), " "))))
		}
	}
}
