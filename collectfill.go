package cdb

import (
	"fmt"
	"strings"

	"cdb/internal/cql"
	"cdb/internal/quality"
	"cdb/internal/sim"
	"cdb/internal/table"
)

// execFill implements FILL Table.Col: every CNULL cell of the CROWD
// column (restricted by simple equality WHERE conditions on the same
// table) is crowdsourced to up to Redundancy workers. Following §6.3.2,
// collection stops early once the first three answers agree, and the
// final value is the pivot answer (the one most similar to all
// others). Ground truth comes from WithFillTruth; without it the
// column's existing non-null values act as the candidate pool and a
// random one is "true" per row, which still exercises the machinery.
func (db *DB) execFill(s *cql.Fill) (*Result, error) {
	tb, ok := db.catalog.Get(s.Target.Table)
	if !ok {
		return nil, fmt.Errorf("cdb: %w %s", ErrUnknownTable, s.Target.Table)
	}
	col := tb.Schema.ColIndex(s.Target.Column)
	if col < 0 {
		return nil, fmt.Errorf("cdb: table %s has no column %s", s.Target.Table, s.Target.Column)
	}
	if !tb.Schema.Columns[col].Crowd {
		return nil, fmt.Errorf("cdb: column %s is not a CROWD column", s.Target)
	}
	cond, err := compileRowFilter(tb, s.Where)
	if err != nil {
		return nil, err
	}

	// Candidate pool for wrong answers: every distinct non-null value
	// of the column plus the fill truths.
	pool := map[string]bool{}
	for r := 0; r < tb.Len(); r++ {
		if v := tb.Cell(r, col); !v.Null && v.S != "" {
			pool[v.S] = true
		}
	}
	truthOf := func(row int) string {
		if db.fillTruth != nil {
			return db.fillTruth(tb.Schema.Name, row, tb.Schema.Columns[col].Name)
		}
		for v := range pool {
			return v // arbitrary but deterministic enough for demos
		}
		return "unknown"
	}

	simFn := func(a, b string) float64 { return sim.Jaccard2Gram(a, b) }
	filled, assignments := 0, 0
	for row := 0; row < tb.Len(); row++ {
		if !tb.Cell(row, col).Null || !cond(row) {
			continue
		}
		if s.Budget > 0 && filled >= s.Budget {
			break
		}
		truth := truthOf(row)
		wrong := make([]string, 0, len(pool))
		for v := range pool {
			if v != truth {
				wrong = append(wrong, v)
			}
		}
		var answers []quality.FillAnswer
		for _, w := range db.pool.DistinctArrivals(db.redundancy) {
			answers = append(answers, quality.FillAnswer{Worker: w.ID, Text: w.AnswerFill(truth, wrong)})
			assignments++
			if len(answers) >= 3 && quality.FillConsistency(answers, simFn) > 0.9 {
				break // early stop: the crowd already agrees
			}
		}
		tb.Rows[row][col] = table.SV(quality.PivotAnswer(answers, simFn))
		filled++
	}
	return &Result{
		Message: fmt.Sprintf("filled %d cells of %s", filled, s.Target),
		Stats:   Stats{Tasks: filled, Assignments: assignments},
	}, nil
}

// execCollect implements COLLECT Table.Col…: workers contribute rows of
// a CROWD table from the hidden universe registered via
// WithCollectUniverse. CDB's autocompletion interface is simulated:
// workers see what has already been collected and usually contribute
// something new, and their contributions are canonicalized (no
// spelling variants pile up). BUDGET bounds the number of questions
// (default: twice the universe).
func (db *DB) execCollect(s *cql.Collect) (*Result, error) {
	tabName := s.Cols[0].Table
	tb, ok := db.catalog.Get(tabName)
	if !ok {
		return nil, fmt.Errorf("cdb: %w %s", ErrUnknownTable, tabName)
	}
	if !tb.Schema.CrowdTable {
		return nil, fmt.Errorf("cdb: %s is not a CROWD table", tabName)
	}
	universe := db.universe[strings.ToLower(tabName)]
	if len(universe) == 0 {
		return nil, fmt.Errorf("cdb: no collect universe registered for %s (use WithCollectUniverse)", tabName)
	}
	primaryCol := tb.Schema.ColIndex(s.Cols[0].Column)
	if primaryCol < 0 {
		return nil, fmt.Errorf("cdb: table %s has no column %s", tabName, s.Cols[0].Column)
	}
	budget := s.Budget
	if budget <= 0 {
		budget = 2 * len(universe)
	}

	collected := map[int]bool{}
	for r := 0; r < tb.Len(); r++ {
		if v := tb.Cell(r, primaryCol); !v.Null {
			for i, item := range universe {
				if v.S == item {
					collected[i] = true
				}
			}
		}
	}
	questions, added := 0, 0
	for questions < budget && len(collected) < len(universe) {
		questions++
		var idx int
		if db.rng.Bool(0.9) && len(collected) > 0 {
			// Autocompletion: the worker sees existing entries and
			// contributes something new.
			remaining := len(universe) - len(collected)
			if remaining == 0 {
				break
			}
			k := db.rng.Intn(remaining)
			for cand := range universe {
				if collected[cand] {
					continue
				}
				if k == 0 {
					idx = cand
					break
				}
				k--
			}
		} else {
			idx = db.rng.Intn(len(universe))
		}
		if collected[idx] {
			continue // duplicate contribution: recognized and discarded
		}
		collected[idx] = true
		row := make(table.Tuple, len(tb.Schema.Columns))
		for i, c := range tb.Schema.Columns {
			if i == primaryCol {
				row[i] = table.SV(universe[idx])
			} else {
				row[i] = table.CNull(c.Kind)
			}
		}
		if err := tb.Append(row); err != nil {
			return nil, err
		}
		added++
	}
	return &Result{
		Message: fmt.Sprintf("collected %d new rows into %s with %d questions", added, tabName, questions),
		Stats:   Stats{Tasks: questions, Assignments: questions},
	}, nil
}

// compileRowFilter turns simple single-table equality predicates into
// a row filter.
func compileRowFilter(tb *table.Table, preds []cql.Predicate) (func(row int) bool, error) {
	type check struct {
		col int
		val string
	}
	var checks []check
	for _, p := range preds {
		if p.Kind != cql.Equal {
			return nil, fmt.Errorf("cdb: FILL/COLLECT WHERE supports only simple equality, got %s", p)
		}
		if p.Left.Table != "" && !strings.EqualFold(p.Left.Table, tb.Schema.Name) {
			return nil, fmt.Errorf("cdb: WHERE references another table: %s", p)
		}
		col := tb.Schema.ColIndex(p.Left.Column)
		if col < 0 {
			return nil, fmt.Errorf("cdb: no column %s", p.Left.Column)
		}
		checks = append(checks, check{col: col, val: p.Value})
	}
	return func(row int) bool {
		for _, c := range checks {
			v := tb.Cell(row, c.col)
			if v.Null || v.String() != c.val {
				return false
			}
		}
		return true
	}, nil
}
