package cdb_test

// One testing.B benchmark per table/figure of the paper (DESIGN.md §4
// maps each to its experiment). They execute the same code paths as
// cmd/cdbench at a reduced scale so `go test -bench=.` regenerates
// every result quickly; crank the scale/reps through cmd/cdbench for
// paper-sized runs.

import (
	"context"
	"testing"

	"cdb"

	"cdb/internal/bench"
	"cdb/internal/cost"
	"cdb/internal/cql"
	"cdb/internal/crowd"
	"cdb/internal/dataset"
	"cdb/internal/exec"
	"cdb/internal/graph"
	"cdb/internal/quality"
	"cdb/internal/sim"
	"cdb/internal/stats"
)

func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Scale = 0.06
	cfg.Reps = 1
	cfg.Samples = 10
	return cfg
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	runner := bench.Registry[id]
	if runner == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		tables, err := runner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkFig1Motivating regenerates Figure 1 (tuple-level vs
// table-level optimization on the motivating example).
func BenchmarkFig1Motivating(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig8Cost regenerates Figures 8–10 (cost, quality and
// latency of the nine methods on the five queries, simulated crowd).
func BenchmarkFig8Cost(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig11WorkerQuality regenerates Figure 11 (sweeping the
// simulated worker quality).
func BenchmarkFig11WorkerQuality(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig14to16Real regenerates Figures 14–16 (the AMT-like
// high-quality crowd with HIT pricing).
func BenchmarkFig14to16Real(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig17Collect regenerates Figure 17 (COLLECT and FILL vs
// Deco).
func BenchmarkFig17Collect(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig18Budget regenerates Figures 18–19 (budget-aware
// selection recall/precision curves).
func BenchmarkFig18Budget(b *testing.B) { runExperiment(b, "fig18") }

// BenchmarkFig20Redundancy regenerates Figure 20 (CDB+ vs majority
// voting as redundancy grows).
func BenchmarkFig20Redundancy(b *testing.B) { runExperiment(b, "fig20") }

// BenchmarkFig21QualityCost regenerates Figure 21 (quality vs number
// of questions).
func BenchmarkFig21QualityCost(b *testing.B) { runExperiment(b, "fig21") }

// BenchmarkFig22CostLatency regenerates Figure 22 (cost under a
// latency constraint).
func BenchmarkFig22CostLatency(b *testing.B) { runExperiment(b, "fig22") }

// BenchmarkFig23Similarity regenerates Figures 23–24 (similarity
// function ablation).
func BenchmarkFig23Similarity(b *testing.B) { runExperiment(b, "fig23") }

// BenchmarkTable5Efficiency regenerates Table 5 (optimizer
// efficiency).
func BenchmarkTable5Efficiency(b *testing.B) { runExperiment(b, "table5") }

// --- micro-benchmarks of the core machinery ---

func benchPlan(b *testing.B, scale float64, query string) *exec.Plan {
	b.Helper()
	d := dataset.GenPaper(dataset.Config{Seed: 42, Scale: scale})
	st, err := cql.Parse(dataset.Queries("paper")[query])
	if err != nil {
		b.Fatal(err)
	}
	p, err := exec.BuildPlan(st.(*cql.Select), d.Catalog, d.Oracle, exec.DefaultPlanConfig())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkExpectationOrder measures one full pruning-expectation
// ranking pass (Eq. 1 for every valid edge).
func BenchmarkExpectationOrder(b *testing.B) {
	p := benchPlan(b, 0.15, "3J")
	e := &cost.Expectation{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(e.Order(p.G)) == 0 {
			b.Fatal("empty order")
		}
	}
}

// BenchmarkKnownColorSelect measures the Lemma-1 optimal selection
// (blue chains + min-cut) on a known coloring.
func BenchmarkKnownColorSelect(b *testing.B) {
	p := benchPlan(b, 0.15, "2J")
	colorOf := func(e int) graph.Color {
		if p.Truth[e] {
			return graph.Blue
		}
		return graph.Red
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(cost.KnownColorSelect(p.G, colorOf)) == 0 {
			b.Fatal("empty selection")
		}
	}
}

// BenchmarkSimilarityJoin measures the prefix-filtering similarity
// join on the paper dataset's title columns.
func BenchmarkSimilarityJoin(b *testing.B) {
	d := dataset.GenPaper(dataset.Config{Seed: 7, Scale: 0.3})
	pap, _ := d.Catalog.Get("Paper")
	cit, _ := d.Catalog.Get("Citation")
	tCol := pap.Schema.MustColIndex("title")
	cCol := cit.Schema.MustColIndex("title")
	var left, right []string
	for r := 0; r < pap.Len(); r++ {
		left = append(left, pap.Cell(r, tCol).S)
	}
	for r := 0; r < cit.Len(); r++ {
		right = append(right, cit.Cell(r, cCol).S)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Join(sim.Gram2Jaccard, left, right, 0.3)
	}
}

// BenchmarkEMInference measures EM truth inference over a realistic
// answer matrix (200 binary tasks × 5 answers).
func BenchmarkEMInference(b *testing.B) {
	rng := stats.NewRNG(3)
	pool := crowd.NewPool(25, 0.8, 0.1, rng)
	tasks := make([]quality.ChoiceTask, 200)
	for i := range tasks {
		tasks[i].Choices = 2
		truth := rng.Intn(2)
		for _, w := range pool.DistinctArrivals(5) {
			tasks[i].Answers = append(tasks[i].Answers,
				quality.ChoiceAnswer{Worker: w.ID, Choice: w.AnswerChoice(truth, 2)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := quality.NewWorkerModel()
		m.InferEM(tasks, 50)
	}
}

// BenchmarkEndToEnd2J measures a complete CDB execution (plan + run)
// of the 2J query with a perfect crowd.
func BenchmarkEndToEnd2J(b *testing.B) {
	d := dataset.GenPaper(dataset.Config{Seed: 42, Scale: 0.08})
	st, _ := cql.Parse(dataset.Queries("paper")["2J"])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := exec.BuildPlan(st.(*cql.Select), d.Catalog, d.Oracle, exec.DefaultPlanConfig())
		if err != nil {
			b.Fatal(err)
		}
		_, err = exec.Run(context.Background(), p, exec.Options{
			Strategy:   &cost.Expectation{},
			Redundancy: 1,
			Pool:       crowd.NewPerfectPool(20, stats.NewRNG(uint64(i))),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSamplerSize contrasts the MinCut sampling greedy at
// different sample counts against the expectation method (DESIGN.md's
// sampler-size ablation).
func BenchmarkAblationSamplerSize(b *testing.B) {
	for _, samples := range []int{5, 20, 50} {
		b.Run("samples="+itoa(samples), func(b *testing.B) {
			d := dataset.GenPaper(dataset.Config{Seed: 42, Scale: 0.06})
			st, _ := cql.Parse(dataset.Queries("paper")["2J"])
			for i := 0; i < b.N; i++ {
				p, err := exec.BuildPlan(st.(*cql.Select), d.Catalog, d.Oracle, exec.DefaultPlanConfig())
				if err != nil {
					b.Fatal(err)
				}
				_, err = exec.Run(context.Background(), p, exec.Options{
					Strategy:   cost.NewMinCutSampling(samples, stats.NewRNG(uint64(i))),
					Redundancy: 1,
					Pool:       crowd.NewPerfectPool(20, stats.NewRNG(uint64(i))),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPrefixFilter contrasts the prefix-filtering join
// with the brute-force scan.
func BenchmarkAblationPrefixFilter(b *testing.B) {
	d := dataset.GenPaper(dataset.Config{Seed: 7, Scale: 0.2})
	res, _ := d.Catalog.Get("Researcher")
	uni, _ := d.Catalog.Get("University")
	aCol := res.Schema.MustColIndex("affiliation")
	nCol := uni.Schema.MustColIndex("name")
	var left, right []string
	for r := 0; r < res.Len(); r++ {
		left = append(left, res.Cell(r, aCol).S)
	}
	for r := 0; r < uni.Len(); r++ {
		right = append(right, uni.Cell(r, nCol).S)
	}
	b.Run("prefix-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Join(sim.Gram2Jaccard, left, right, 0.3)
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.BruteForceJoin(sim.Gram2Jaccard, left, right, 0.3)
		}
	})
}

// BenchmarkAblationEpsilon measures how the pruning threshold shapes
// graph size and cost.
func BenchmarkAblationEpsilon(b *testing.B) {
	d := dataset.GenPaper(dataset.Config{Seed: 42, Scale: 0.06})
	st, _ := cql.Parse(dataset.Queries("paper")["2J"])
	for _, eps := range []float64{0.2, 0.3, 0.4} {
		b.Run("eps="+ftoa(eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := exec.BuildPlan(st.(*cql.Select), d.Catalog, d.Oracle,
					exec.PlanConfig{Sim: sim.Gram2Jaccard, Epsilon: eps})
				if err != nil {
					b.Fatal(err)
				}
				_, err = exec.Run(context.Background(), p, exec.Options{
					Strategy:   &cost.Expectation{},
					Redundancy: 1,
					Pool:       crowd.NewPerfectPool(20, stats.NewRNG(uint64(i))),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func ftoa(f float64) string {
	return itoa(int(f*10)) + "e-1"
}

// BenchmarkAblationScheduler contrasts the three latency-control
// modes: the default score-aware packing, the paper's literal
// longest-prefix rule, and fully serial asking.
func BenchmarkAblationScheduler(b *testing.B) {
	d := dataset.GenPaper(dataset.Config{Seed: 42, Scale: 0.08})
	st, _ := cql.Parse(dataset.Queries("paper")["2J"])
	for _, mode := range []string{"packed", "serial"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := exec.BuildPlan(st.(*cql.Select), d.Catalog, d.Oracle, exec.DefaultPlanConfig())
				if err != nil {
					b.Fatal(err)
				}
				strat := &cost.Expectation{Serial: mode == "serial"}
				rep, err := exec.Run(context.Background(), p, exec.Options{
					Strategy:   strat,
					Redundancy: 1,
					Pool:       crowd.NewPerfectPool(20, stats.NewRNG(uint64(i))),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Metrics.Tasks), "tasks")
				b.ReportMetric(float64(rep.Metrics.Rounds), "rounds")
			}
		})
	}
}

// BenchmarkAblationCalibration measures the adaptive
// similarity→probability calibration (§4.1) against raw similarity
// weights.
func BenchmarkAblationCalibration(b *testing.B) {
	d := dataset.GenPaper(dataset.Config{Seed: 42, Scale: 0.08})
	st, _ := cql.Parse(dataset.Queries("paper")["2J"])
	for _, calibrate := range []bool{false, true} {
		name := "raw-similarity"
		if calibrate {
			name = "calibrated"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := exec.BuildPlan(st.(*cql.Select), d.Catalog, d.Oracle, exec.DefaultPlanConfig())
				if err != nil {
					b.Fatal(err)
				}
				rep, err := exec.Run(context.Background(), p, exec.Options{
					Strategy:   &cost.Expectation{},
					Redundancy: 1,
					Pool:       crowd.NewPerfectPool(20, stats.NewRNG(uint64(i))),
					Calibrate:  calibrate,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Metrics.Tasks), "tasks")
			}
		})
	}
}

// BenchmarkGroupSort measures the crowd GROUP BY / ORDER BY extension.
func BenchmarkGroupSort(b *testing.B) {
	db := cdb.Open(cdb.WithDataset("example", 0, 1), cdb.WithPerfectWorkers(30), cdb.WithSeed(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db2 := cdb.Open(cdb.WithDataset("example", 0, 1), cdb.WithPerfectWorkers(30), cdb.WithSeed(uint64(i+1)))
		_, err := db2.Exec(`SELECT Paper.conference FROM Paper, Citation
			WHERE Paper.title CROWDJOIN Citation.title
			GROUP BY Paper.conference;`)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = db
}
