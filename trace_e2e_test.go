package cdb_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"cdb"
)

// TestTraceSpanTree executes a CROWDJOIN query end to end with tracing
// on and checks the structural invariants of the resulting span tree:
// exactly one root query span with parse/plan children, one round span
// per crowd round, and per-round task counts that reconcile exactly
// with the query's cost metric.
func TestTraceSpanTree(t *testing.T) {
	db := cdb.Open(
		cdb.WithDataset("example", 0, 1),
		cdb.WithPerfectWorkers(30),
		cdb.WithSeed(3),
		cdb.WithTracing(true),
	)
	res, err := db.Exec(`SELECT * FROM Paper, Researcher, Citation, University
	    WHERE Paper.author CROWDJOIN Researcher.name AND
	          Paper.title CROWDJOIN Citation.title AND
	          Researcher.affiliation CROWDJOIN University.name;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("WithTracing(true) produced no Result.Trace")
	}
	spans := res.Trace.Spans

	byID := map[int]cdb.Span{}
	for _, s := range spans {
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Parent == -1 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %d (%s) has unknown parent %d", s.ID, s.Name, s.Parent)
		}
		if p.ID >= s.ID {
			t.Fatalf("span %d (%s) begins before its parent %d (%s)", s.ID, s.Name, p.ID, p.Name)
		}
		if s.Start < p.Start {
			t.Fatalf("span %d (%s) starts at %dµs before parent %d at %dµs", s.ID, s.Name, s.Start, p.ID, p.Start)
		}
	}

	roots := res.Trace.ByName(cdb.SpanQuery)
	if len(roots) != 1 {
		t.Fatalf("got %d query spans, want 1", len(roots))
	}
	root := roots[0]
	if root.Parent != -1 {
		t.Fatalf("query span has parent %d, want -1", root.Parent)
	}
	if root.Query == "" {
		t.Fatal("query span is missing the statement text")
	}
	if n := len(res.Trace.ByName(cdb.SpanParse)); n != 1 {
		t.Fatalf("got %d parse spans, want 1", n)
	}
	plans := res.Trace.ByName(cdb.SpanPlan)
	if len(plans) != 1 {
		t.Fatalf("got %d plan spans, want 1", len(plans))
	}
	if plans[0].Parent != root.ID {
		t.Fatalf("plan span parented by %d, want query %d", plans[0].Parent, root.ID)
	}
	if plans[0].Edges == 0 {
		t.Fatal("plan span reports zero candidate edges")
	}

	rounds := res.Trace.ByName(cdb.SpanRound)
	if len(rounds) != res.Stats.Rounds {
		t.Fatalf("got %d round spans, want Stats.Rounds=%d", len(rounds), res.Stats.Rounds)
	}
	tasks, asks := 0, 0
	for i, r := range rounds {
		if r.Parent != root.ID {
			t.Fatalf("round span %d parented by %d, want query %d", r.ID, r.Parent, root.ID)
		}
		if r.Round != i+1 {
			t.Fatalf("round spans out of order: got round=%d at position %d", r.Round, i)
		}
		if r.Blue+r.Red != r.Tasks {
			t.Fatalf("round %d: blue(%d)+red(%d) != tasks(%d)", r.Round, r.Blue, r.Red, r.Tasks)
		}
		tasks += r.Tasks
		asks += r.Asks
	}
	if tasks != res.Stats.Tasks {
		t.Fatalf("round task counts sum to %d, want Stats.Tasks=%d", tasks, res.Stats.Tasks)
	}
	if asks != res.Stats.Assignments {
		t.Fatalf("round ask counts sum to %d, want Stats.Assignments=%d", asks, res.Stats.Assignments)
	}
	for _, name := range []string{cdb.SpanIssue, cdb.SpanColor} {
		got := res.Trace.ByName(name)
		if len(got) != len(rounds) {
			t.Fatalf("got %d %s spans, want one per round (%d)", len(got), name, len(rounds))
		}
		for _, s := range got {
			if byID[s.Parent].Name != cdb.SpanRound {
				t.Fatalf("%s span %d parented by %q, want a round span", name, s.ID, byID[s.Parent].Name)
			}
		}
	}

	// The JSONL rendering must round-trip: one valid JSON object per
	// span, in begin order.
	var buf bytes.Buffer
	if err := res.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != len(spans) {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), len(spans))
	}
	for i, line := range lines {
		var s cdb.Span
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if s.ID != spans[i].ID || s.Name != spans[i].Name {
			t.Fatalf("line %d decodes to span %d/%s, want %d/%s", i, s.ID, s.Name, spans[i].ID, spans[i].Name)
		}
	}
}

// TestTracingOffByDefault pins the zero-overhead contract at the API
// boundary: without WithObserver/WithTracing the Result carries no
// trace.
func TestTracingOffByDefault(t *testing.T) {
	db := cdb.Open(
		cdb.WithDataset("example", 0, 1),
		cdb.WithPerfectWorkers(30),
	)
	res, err := db.Exec(`SELECT * FROM Paper, Researcher
	    WHERE Paper.author CROWDJOIN Researcher.name;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("tracing off, but Result.Trace is set")
	}
}
