package cdb

import (
	"context"
	"errors"
	"testing"
)

// TestEngineServesConcurrentQueries runs overlapping queries through
// the public Engine API and checks results, sharing telemetry, and
// replay determinism across equally-seeded DBs.
func TestEngineServesConcurrentQueries(t *testing.T) {
	open := func() *DB {
		return Open(WithSeed(11), WithDataset("example", 0, 1), WithWorkers(40, 0.85, 0.05))
	}
	queries := []string{
		`SELECT Paper.title, Researcher.affiliation FROM Paper, Researcher
		   WHERE Paper.author CROWDJOIN Researcher.name;`,
		`SELECT Paper.title, Researcher.affiliation FROM Paper, Researcher
		   WHERE Paper.author CROWDJOIN Researcher.name;`,
		`SELECT Paper.title FROM Paper, Citation
		   WHERE Paper.title CROWDJOIN Citation.title;`,
	}

	run := func(db *DB) ([][][]string, EngineStats) {
		e, err := db.NewEngine(WithMaxInFlight(4))
		if err != nil {
			t.Fatal(err)
		}
		futs := make([]*Future, len(queries))
		for i, q := range queries {
			f, err := e.Submit(context.Background(), q)
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			futs[i] = f
		}
		rows := make([][][]string, len(queries))
		for i, f := range futs {
			res, err := f.Result(context.Background())
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			rows[i] = res.Rows
		}
		st := e.Stats()
		e.Close()
		return rows, st
	}

	db1, db2 := open(), open()
	rows1, st := run(db1)
	rows2, _ := run(db2)

	if st.AssignmentsSaved == 0 {
		t.Fatalf("no assignments saved: %+v", st)
	}
	// Two of the queries are identical: whichever lost the race to own
	// the execution must have shared the whole answer.
	if st.QueriesCached+st.QueriesAttached == 0 {
		t.Fatalf("identical queries shared no answers: %+v", st)
	}
	if st.Completed != int64(len(queries)) {
		t.Fatalf("completed %d queries, want %d", st.Completed, len(queries))
	}
	for i := range rows1 {
		if len(rows1[i]) != len(rows2[i]) {
			t.Fatalf("query %d: replay row count %d != %d", i, len(rows1[i]), len(rows2[i]))
		}
		for r := range rows1[i] {
			for c := range rows1[i][r] {
				if rows1[i][r][c] != rows2[i][r][c] {
					t.Fatalf("query %d row %d: replay mismatch %v vs %v", i, r, rows1[i][r], rows2[i][r])
				}
			}
		}
	}

	// The exclusive paths still refuse cleanly.
	e, err := db1.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(context.Background(), "COLLECT University.name;"); !errors.Is(err, ErrEngineUnsupported) {
		t.Fatalf("COLLECT: want ErrEngineUnsupported, got %v", err)
	}
	e.Close()
	if _, err := e.Submit(context.Background(), queries[0]); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed, got %v", err)
	}
}
