package cdb_test

import (
	"bytes"
	"fmt"

	"cdb"
)

// ExampleWithObserver traces a crowd join: the observer streams every
// finished span as JSONL while the Result carries the full span tree.
// The per-round task counts in the trace reconcile exactly with the
// query's cost metric.
func ExampleWithObserver() {
	var buf bytes.Buffer
	db := cdb.Open(
		cdb.WithDataset("example", 0, 1),
		cdb.WithPerfectWorkers(30),
		cdb.WithSeed(7),
		cdb.WithObserver(cdb.NewJSONLWriter(&buf)),
	)
	res := db.MustExec(`SELECT * FROM Paper, Researcher
	    WHERE Paper.author CROWDJOIN Researcher.name;`)

	tasks := 0
	for _, s := range res.Trace.ByName(cdb.SpanRound) {
		tasks += s.Tasks
	}
	fmt.Println("round tasks == Stats.Tasks:", tasks == res.Stats.Tasks)
	fmt.Println("jsonl lines == spans:",
		bytes.Count(buf.Bytes(), []byte("\n")) == len(res.Trace.Spans))
	// Output:
	// round tasks == Stats.Tasks: true
	// jsonl lines == spans: true
}

// ExampleOpen runs the paper's running example (Table 1 / Figure 4)
// end to end with an infallible crowd and prints the three answers.
func ExampleOpen() {
	db := cdb.Open(
		cdb.WithDataset("example", 0, 1),
		cdb.WithPerfectWorkers(30),
		cdb.WithSeed(7),
	)
	res, err := db.Exec(`SELECT Researcher.name
		FROM Paper, Researcher, Citation, University
		WHERE Paper.author CROWDJOIN Researcher.name AND
		      Paper.title CROWDJOIN Citation.title AND
		      Researcher.affiliation CROWDJOIN University.name;`)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// Bruce W Croft
	// H. Jagadish
	// S. Chaudhuri
}

// ExampleDB_Exec_budget shows the BUDGET keyword capping crowd spend.
func ExampleDB_Exec_budget() {
	db := cdb.Open(
		cdb.WithDataset("example", 0, 1),
		cdb.WithPerfectWorkers(30),
		cdb.WithSeed(5),
	)
	res, err := db.Exec(`SELECT * FROM Paper, Researcher, Citation, University
		WHERE Paper.author CROWDJOIN Researcher.name AND
		      Paper.title CROWDJOIN Citation.title AND
		      Researcher.affiliation CROWDJOIN University.name
		BUDGET 6;`)
	if err != nil {
		panic(err)
	}
	fmt.Println("tasks within budget:", res.Stats.Tasks <= 6)
	// Output:
	// tasks within budget: true
}

// ExampleDB_Exec_fill crowd-fills a CROWD column with early-stopping
// redundancy.
func ExampleDB_Exec_fill() {
	db := cdb.Open(
		cdb.WithPerfectWorkers(20),
		cdb.WithSeed(13),
		cdb.WithFillTruth(func(tbl string, row int, col string) string {
			return "Massachusetts"
		}),
	)
	db.MustExec(`CREATE TABLE Uni (name varchar(64), state CROWD varchar(32));`)
	if err := db.Insert("Uni", "MIT", "CNULL"); err != nil {
		panic(err)
	}
	res := db.MustExec(`FILL Uni.state;`)
	fmt.Println(res.Message)
	rows, _ := db.Dump("Uni")
	fmt.Println(rows[1][1])
	// Output:
	// filled 1 cells of Uni.state
	// Massachusetts
}
