package cdb_test

import (
	"fmt"

	"cdb"
)

// ExampleOpen runs the paper's running example (Table 1 / Figure 4)
// end to end with an infallible crowd and prints the three answers.
func ExampleOpen() {
	db := cdb.Open(
		cdb.WithDataset("example", 0, 1),
		cdb.WithPerfectWorkers(30),
		cdb.WithSeed(7),
	)
	res, err := db.Exec(`SELECT Researcher.name
		FROM Paper, Researcher, Citation, University
		WHERE Paper.author CROWDJOIN Researcher.name AND
		      Paper.title CROWDJOIN Citation.title AND
		      Researcher.affiliation CROWDJOIN University.name;`)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// Bruce W Croft
	// H. Jagadish
	// S. Chaudhuri
}

// ExampleDB_Exec_budget shows the BUDGET keyword capping crowd spend.
func ExampleDB_Exec_budget() {
	db := cdb.Open(
		cdb.WithDataset("example", 0, 1),
		cdb.WithPerfectWorkers(30),
		cdb.WithSeed(5),
	)
	res, err := db.Exec(`SELECT * FROM Paper, Researcher, Citation, University
		WHERE Paper.author CROWDJOIN Researcher.name AND
		      Paper.title CROWDJOIN Citation.title AND
		      Researcher.affiliation CROWDJOIN University.name
		BUDGET 6;`)
	if err != nil {
		panic(err)
	}
	fmt.Println("tasks within budget:", res.Stats.Tasks <= 6)
	// Output:
	// tasks within budget: true
}

// ExampleDB_Exec_fill crowd-fills a CROWD column with early-stopping
// redundancy.
func ExampleDB_Exec_fill() {
	db := cdb.Open(
		cdb.WithPerfectWorkers(20),
		cdb.WithSeed(13),
		cdb.WithFillTruth(func(tbl string, row int, col string) string {
			return "Massachusetts"
		}),
	)
	db.MustExec(`CREATE TABLE Uni (name varchar(64), state CROWD varchar(32));`)
	if err := db.Insert("Uni", "MIT", "CNULL"); err != nil {
		panic(err)
	}
	res := db.MustExec(`FILL Uni.state;`)
	fmt.Println(res.Message)
	rows, _ := db.Dump("Uni")
	fmt.Println(rows[1][1])
	// Output:
	// filled 1 cells of Uni.state
	// Massachusetts
}
