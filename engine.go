package cdb

import (
	"context"
	"fmt"

	"cdb/internal/engine"
	"cdb/internal/exec"
	"cdb/internal/ledger"
	"cdb/internal/plan"
)

// Engine serves concurrent CQL queries over one DB's catalog and
// crowd. Where DB.Exec runs one query at a time, an Engine admits up
// to MaxInFlight queries simultaneously and makes their overlap pay:
// identical crowd tasks are dispatched once and fanned out (HIT
// coalescing), verdicts persist in a bounded cache across queries, and
// similarity joins over the same table pairs are planned once.
//
// Sharing never changes answers. Every verdict is a pure function of
// the engine seed and the task's content, so a query returns
// bit-identical rows — and identical per-query Stats — whether it ran
// alone or raced the whole fleet; Stats.Coalesced / Stats.CachedTasks
// and EngineStats report how much crowd work the sharing saved.
//
// Only SELECT without GROUP BY / ORDER BY is served (those need the
// exclusive DB.Exec path), aggregation is majority voting, and the
// catalog must not be mutated while the engine serves.
type Engine struct {
	inner *engine.Engine
}

type engineOptions struct {
	maxInFlight int
	maxQueue    int
	cacheSize   int
	resultCache int
	tracing     bool
	transitive  bool
	ledgerDir   string
	ledgerFsync string
}

// EngineOption configures NewEngine.
type EngineOption func(*engineOptions)

// WithMaxInFlight bounds concurrently executing queries (default 8).
func WithMaxInFlight(n int) EngineOption {
	return func(o *engineOptions) { o.maxInFlight = n }
}

// WithMaxQueue bounds queries queued behind the in-flight set; a full
// queue makes Submit fail fast with ErrOverloaded (default 64).
func WithMaxQueue(n int) EngineOption {
	return func(o *engineOptions) { o.maxQueue = n }
}

// WithVerdictCache bounds the shared verdict cache in entries
// (default 4096).
func WithVerdictCache(n int) EngineOption {
	return func(o *engineOptions) { o.cacheSize = n }
}

// WithResultCache bounds the query-level answer cache (default 256
// entries; negative disables). Identical statements are served whole
// from a completed execution — safe because answers are deterministic
// in the engine seed and the canonical statement. Shared results
// carry no Trace.
func WithResultCache(n int) EngineOption {
	return func(o *engineOptions) { o.resultCache = n }
}

// WithEngineTracing attaches a per-query span tree to every Result.
func WithEngineTracing(on bool) EngineOption {
	return func(o *engineOptions) { o.tracing = on }
}

// WithEngineTransitivity toggles transitive join inference for every
// served query (see WithTransitivity). The engine inherits the DB's
// setting by default; inferred verdicts additionally enter the shared
// cache, so one query's deductions answer other queries' tasks —
// EngineStats reports the traffic.
func WithEngineTransitivity(on bool) EngineOption {
	return func(o *engineOptions) { o.transitive = on }
}

// WithLedgerDir makes paid crowd work durable: every resolved verdict,
// executed statement and completed answer is appended to a CRC-framed
// write-ahead log in dir, and NewEngine replays the directory (torn
// tail truncated, never fatal) to pre-warm the verdict, sim-join and
// answer caches — so a restarted engine never re-asks the crowd for
// work it already paid for. The directory is bound to the engine seed:
// reopening it under a different seed fails, because verdicts are pure
// functions of the seed. Empty (the default) disables the ledger.
func WithLedgerDir(dir string) EngineOption {
	return func(o *engineOptions) { o.ledgerDir = dir }
}

// WithLedgerFsync selects the ledger durability policy: "always" (sync
// every append — zero accepted-verdict loss on kill -9), "interval"
// (background sync every 100ms, the default), or "never" (the OS page
// cache decides; Close still syncs). Only meaningful with
// WithLedgerDir.
func WithLedgerFsync(policy string) EngineOption {
	return func(o *engineOptions) { o.ledgerFsync = policy }
}

// Errors surfaced by Engine.Submit (re-exported from the serving
// layer so callers can errors.Is against them).
var (
	ErrEngineClosed      = engine.ErrClosed
	ErrEngineOverloaded  = engine.ErrOverloaded
	ErrEngineUnsupported = engine.ErrUnsupported
)

// NewEngine builds a serving engine over the DB's catalog, oracle,
// crowd pool and optimizer configuration. The engine draws one seed
// from the DB's RNG at construction, so a DB opened with the same
// WithSeed yields an engine that replays identical verdicts.
func (db *DB) NewEngine(opts ...EngineOption) (*Engine, error) {
	o := engineOptions{tracing: db.tracing, transitive: db.transitive}
	for _, opt := range opts {
		opt(&o)
	}
	seed := db.rng.Split().Uint64()
	var journal engine.Journal
	if o.ledgerDir != "" {
		policy, err := ledger.ParsePolicy(o.ledgerFsync)
		if err != nil {
			return nil, fmt.Errorf("cdb: %w", err)
		}
		lg, err := ledger.Open(o.ledgerDir, ledger.Options{Seed: seed, Fsync: policy})
		if err != nil {
			return nil, fmt.Errorf("cdb: %w", err)
		}
		journal = lg
	}
	inner, err := engine.New(engine.Config{
		Catalog:         db.catalog,
		Oracle:          db.oracle,
		Pool:            db.pool,
		Sim:             db.simFunc,
		Epsilon:         db.epsilon,
		Redundancy:      db.redundancy,
		Seed:            seed,
		MaxInFlight:     o.maxInFlight,
		MaxQueue:        o.maxQueue,
		CacheSize:       o.cacheSize,
		ResultCacheSize: o.resultCache,
		Tracing:         o.tracing,
		Transitive:      o.transitive,
		Planner:         plan.Config{Greedy: db.planner.Greedy, Bins: db.planner.Bins},
		Journal:         journal,
	})
	if err != nil {
		if journal != nil {
			_ = journal.Close()
		}
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Future is the pending result of one submitted query.
type Future struct {
	h *engine.Handle
}

// Query returns the submitted CQL text.
func (f *Future) Query() string { return f.h.Query }

// Done exposes the completion signal for select loops.
func (f *Future) Done() <-chan struct{} { return f.h.Done() }

// Result blocks until the query completes (or ctx expires) and
// returns its Result. Waiting with an expired context does not cancel
// the query itself — cancel the Submit context for that.
func (f *Future) Result(ctx context.Context) (*Result, error) {
	ans, err := f.h.Wait(ctx)
	if err != nil {
		return nil, err
	}
	rep := ans.Report
	res := &Result{
		Columns: ans.Columns,
		Rows:    ans.Rows,
		Stats: Stats{
			Tasks:       rep.Metrics.Tasks,
			Rounds:      rep.Metrics.Rounds,
			Assignments: rep.Assignments,
			HITs:        rep.HITs,
			Dollars:     rep.Dollars,
			Precision:   rep.Metrics.Precision,
			Recall:      rep.Metrics.Recall,
			F1:          rep.Metrics.F1(),

			Partial: rep.Reliability.Partial,
			Reason:  rep.Reliability.Reason,

			Coalesced:   rep.Coalesced,
			CachedTasks: rep.CachedTasks,
		},
		Confidence: rep.Confidence,
	}
	res.Trace = ans.Trace
	res.RequestID = ans.RequestID
	res.Plan = ans.Plan
	res.Message = fmt.Sprintf("%d answers, %d tasks, %d rounds", len(res.Rows), res.Stats.Tasks, res.Stats.Rounds)
	if res.Stats.Coalesced+res.Stats.CachedTasks > 0 {
		res.Message += fmt.Sprintf(" (%d shared)", res.Stats.Coalesced+res.Stats.CachedTasks)
	}
	return res, nil
}

// Submit admits one CQL SELECT for concurrent execution and returns a
// Future immediately. ctx cancels the query at crowd-round
// boundaries; a full queue returns ErrEngineOverloaded without
// blocking.
func (e *Engine) Submit(ctx context.Context, query string) (*Future, error) {
	h, err := e.inner.Submit(ctx, query)
	if err != nil {
		return nil, err
	}
	return &Future{h: h}, nil
}

// RoundUpdate is the per-round progress snapshot delivered to
// SubmitWithProgress observers: what the round asked the crowd, how it
// ruled, and how much of the query graph remains open. Crowd queries
// are long-lived by nature — answers trickle in over rounds — and this
// is the unit a serving layer streams to remote clients while the
// query runs.
type RoundUpdate = exec.RoundUpdate

// SubmitWithProgress is Submit with a streaming hook: onRound is
// invoked at the end of every completed crowd round. The number of
// invocations always equals the final Stats.Rounds (rounds discarded
// by cancellation never report). A progress query bypasses the
// whole-answer cache — it must execute rounds to have any to report —
// but still shares HITs through the engine, so its rows and Stats are
// bit-identical to an unobserved Submit. onRound runs on the query's
// goroutine; hand off to a channel if the consumer can stall.
func (e *Engine) SubmitWithProgress(ctx context.Context, query string, onRound func(RoundUpdate)) (*Future, error) {
	h, err := e.inner.SubmitProgress(ctx, query, onRound)
	if err != nil {
		return nil, err
	}
	return &Future{h: h}, nil
}

// Close stops admission and waits for in-flight queries to finish.
func (e *Engine) Close() { e.inner.Close() }

// PlannerEnabled reports whether served SELECTs execute the greedy
// planned order (set by opening the DB with WithPlanner /
// Config.Planner before NewEngine).
func (e *Engine) PlannerEnabled() bool { return e.inner.PlannerEnabled() }

// Explain plans query without executing it — zero crowd assignments —
// and returns the Plan: join order, per-step predicted candidate
// edges, and early-exit points. query may be a SELECT or an EXPLAIN
// SELECT; any other statement fails with ErrEngineUnsupported.
func (e *Engine) Explain(query string) (*Plan, error) {
	return e.inner.Explain(query)
}

// ShardInfo is the scatter-gather sidecar of a shard-scoped execution:
// per-row merge keys plus the owned slice of the ground-truth counts a
// coordinator needs to recompute precision and recall exactly.
type ShardInfo = exec.ShardInfo

// ShardRun scopes a submission to the tuple-graph components a cluster
// shard owns; see Engine.SubmitShard.
type ShardRun = engine.ShardRun

// CacheEntry is one replicated verdict on the cluster wire.
type CacheEntry = engine.CacheEntry

// SubmitShard is Submit restricted to the components run.Owned
// accepts: every other component of the statement's tuple graph is
// colored red before execution, so this node does exactly its slice of
// the crowd work while task keys and answer identities stay globally
// consistent with the rest of the fleet. The Future's ShardInfo
// carries the merge sidecar. This is the executor half of the cluster
// layer (internal/cluster owns routing and merging).
func (e *Engine) SubmitShard(ctx context.Context, query string, run *ShardRun, onRound func(RoundUpdate)) (*Future, error) {
	h, err := e.inner.SubmitShard(ctx, query, run, onRound)
	if err != nil {
		return nil, err
	}
	return &Future{h: h}, nil
}

// ShardInfo blocks like Result and returns the shard sidecar of a
// SubmitShard execution (nil for whole-statement submissions).
func (f *Future) ShardInfo(ctx context.Context) (*ShardInfo, error) {
	ans, err := f.h.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return ans.Shard, nil
}

// ComponentKeys plans the statement and returns the canonical key of
// every tuple-graph component, sorted — the routing key space a
// cluster coordinator assigns to shards.
func (e *Engine) ComponentKeys(query string) ([]string, error) {
	return e.inner.ComponentKeys(query)
}

// CacheDelta returns every replicable verdict recorded after sequence
// number since, plus the sequence to resume from. Verdicts are pure
// functions of (seed, task content, redundancy), so the replication
// stream needs no invalidation and entries never conflict.
func (e *Engine) CacheDelta(since int64) ([]CacheEntry, int64) {
	return e.inner.CacheDelta(since)
}

// ImportVerdicts merges a peer shard's cache delta into this engine's
// verdict cache and returns how many entries were new here.
func (e *Engine) ImportVerdicts(entries []CacheEntry) int {
	return e.inner.ImportVerdicts(entries)
}

// CacheSeq is the engine's current replication sequence number.
func (e *Engine) CacheSeq() int64 { return e.inner.CacheSeq() }

// Fingerprint hashes every verdict-determining input (seed,
// redundancy, epsilon, worker pool). Cluster nodes refuse to replicate
// caches or merge results across differing fingerprints.
func (e *Engine) Fingerprint() string { return e.inner.Fingerprint() }

// QueueDepth reports admission pressure (executing and queued
// queries); coordinators use it for least-loaded shard selection.
func (e *Engine) QueueDepth() (executing, queued int) { return e.inner.QueueDepth() }

// QueryStatus is one query's live (or recently completed) introspection
// record; see the engine State* constants for the lifecycle. This is
// the unit cdbd serves on GET /v1/queries and cdbtop renders.
type QueryStatus = engine.QueryStatus

// QuerySnapshot is a point-in-time view of the engine's query registry:
// everything in flight (admission order) plus a bounded ring of
// recently completed queries (most recent first).
type QuerySnapshot = engine.IntrospectSnapshot

// Query lifecycle states as they appear in QueryStatus.State.
const (
	QueryQueued   = engine.StateQueued
	QueryRunning  = engine.StateRunning
	QueryDraining = engine.StateDraining
	QueryDone     = engine.StateDone
	QueryShared   = engine.StateShared
	QueryFailed   = engine.StateFailed
)

// Queries snapshots the engine's query registry without disturbing it —
// safe to poll while queries run, and during drain (running queries
// repaint as draining).
func (e *Engine) Queries() QuerySnapshot { return e.inner.Introspect() }

// LedgerStats is the engine's durability snapshot: what the crowd-work
// ledger holds, what it replayed at boot, and how much of this
// session's traffic the replayed work served. Enabled is false (and
// everything zero) without WithLedgerDir.
type LedgerStats = engine.LedgerStats

// LedgerStats snapshots the engine's ledger counters.
func (e *Engine) LedgerStats() LedgerStats { return e.inner.LedgerStats() }

// EngineStats snapshots the engine's sharing economics: what the
// fleet asked for, what actually went to the crowd, and what sharing
// saved.
type EngineStats struct {
	Submitted int64 // queries admitted
	Completed int64 // queries finished successfully
	Rejected  int64 // queries shed by backpressure

	QueriesCached   int64 // whole queries served from the answer cache
	QueriesAttached int64 // whole queries attached to an identical in-flight one

	TasksResolved int64 // crowd tasks served
	Coalesced     int64 // tasks attached to an in-flight HIT
	Cached        int64 // tasks served from the verdict cache
	LedgerHits    int64 // tasks served from the durable ledger (paid before a restart)

	AssignmentsIssued int64 // worker answers actually simulated
	AssignmentsSaved  int64 // answers avoided by sharing
	HITsIssued        int   // priced HITs actually issued
	HITsSaved         int   // priced HITs avoided by sharing

	JoinsComputed int64 // similarity joins executed
	JoinsShared   int64 // similarity joins reused from the cache

	InferredPublished int64 // transitively inferred verdicts entered into the shared cache
	InferredHits      int64 // tasks answered by another query's inferred verdict
	InferredRejected  int64 // inferred labels that disagreed with the crowd verdict and were dropped

	RemoteImported int64 // verdicts replicated in from peer shards
	RemoteHits     int64 // tasks answered by a replicated remote verdict

	CacheEntries int // live verdict-cache entries
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() EngineStats {
	s := e.inner.Stats()
	return EngineStats{
		Submitted: s.Submitted,
		Completed: s.Completed,
		Rejected:  s.Rejected,

		QueriesCached:   s.QueriesCached,
		QueriesAttached: s.QueriesAttached,

		TasksResolved: s.TasksResolved,
		Coalesced:     s.Coalesced,
		Cached:        s.Cached,
		LedgerHits:    s.LedgerHits,

		AssignmentsIssued: s.AssignmentsIssued,
		AssignmentsSaved:  s.AssignmentsSaved,
		HITsIssued:        s.HITsIssued,
		HITsSaved:         s.HITsSaved,

		JoinsComputed: s.JoinsComputed,
		JoinsShared:   s.JoinsShared,

		InferredPublished: s.InferredPublished,
		InferredHits:      s.InferredHits,
		InferredRejected:  s.InferredRejected,

		RemoteImported: s.RemoteImported,
		RemoteHits:     s.RemoteHits,

		CacheEntries: s.CacheEntries,
	}
}
