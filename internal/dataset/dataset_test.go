package dataset

import (
	"strings"
	"testing"

	"cdb/internal/sim"
	"cdb/internal/stats"
)

func TestDatasetShapesPaper(t *testing.T) {
	// Table 2 cardinalities at scale 1.
	d := GenPaper(Config{Seed: 1, Scale: 1})
	want := map[string]int{"Paper": 676, "Citation": 1239, "Researcher": 911, "University": 830}
	for name, n := range want {
		tb, ok := d.Catalog.Get(name)
		if !ok {
			t.Fatalf("missing table %s", name)
		}
		if tb.Len() != n {
			t.Fatalf("%s has %d rows, want %d", name, tb.Len(), n)
		}
	}
}

func TestDatasetShapesAward(t *testing.T) {
	// Table 3 cardinalities at scale 1.
	d := GenAward(Config{Seed: 1, Scale: 1})
	want := map[string]int{"Celebrity": 1498, "City": 3220, "Winner": 2669, "Award": 1192}
	for name, n := range want {
		tb, ok := d.Catalog.Get(name)
		if !ok {
			t.Fatalf("missing table %s", name)
		}
		if tb.Len() != n {
			t.Fatalf("%s has %d rows, want %d", name, tb.Len(), n)
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	a := GenPaper(Config{Seed: 7, Scale: 0.05})
	b := GenPaper(Config{Seed: 7, Scale: 0.05})
	ta, _ := a.Catalog.Get("Paper")
	tb, _ := b.Catalog.Get("Paper")
	if ta.Len() != tb.Len() {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := range ta.Rows {
		for j := range ta.Rows[i] {
			if !ta.Rows[i][j].Equal(tb.Rows[i][j]) {
				t.Fatalf("cell (%d,%d) differs across identical seeds", i, j)
			}
		}
	}
	c := GenPaper(Config{Seed: 8, Scale: 0.05})
	tc, _ := c.Catalog.Get("Paper")
	same := 0
	for i := range ta.Rows {
		if ta.Rows[i][0].Equal(tc.Rows[i][0]) {
			same++
		}
	}
	if same == ta.Len() {
		t.Fatal("different seeds produced identical authors")
	}
}

func TestOracleSelfConsistency(t *testing.T) {
	d := GenPaper(Config{Seed: 3, Scale: 0.1})
	res, _ := d.Catalog.Get("Researcher")
	uni, _ := d.Catalog.Get("University")
	// Every affiliation/university value must be registered in the
	// oracle's univ domain.
	affCol := res.Schema.MustColIndex("affiliation")
	for r := 0; r < res.Len(); r++ {
		v := res.Cell(r, affCol).S
		if d.Oracle.EntityOf("univ", v) < 0 {
			t.Fatalf("unregistered affiliation %q", v)
		}
	}
	nameCol := uni.Schema.MustColIndex("name")
	for r := 0; r < uni.Len(); r++ {
		v := uni.Cell(r, nameCol).S
		if d.Oracle.EntityOf("univ", v) < 0 {
			t.Fatalf("unregistered university %q", v)
		}
	}
}

func TestOracleJoinMatchSemantics(t *testing.T) {
	orc := NewOracle()
	orc.BindColumn("A", "x", "d1")
	orc.BindColumn("B", "y", "d1")
	orc.BindColumn("C", "z", "d2")
	orc.Register("d1", "foo", 1)
	orc.Register("d1", "f00", 1)
	orc.Register("d1", "bar", 2)
	orc.Register("d2", "foo", 9)
	if !orc.JoinMatch("A", "x", "B", "y", "foo", "f00") {
		t.Fatal("same-entity variants should match")
	}
	if orc.JoinMatch("A", "x", "B", "y", "foo", "bar") {
		t.Fatal("different entities should not match")
	}
	if orc.JoinMatch("A", "x", "C", "z", "foo", "foo") {
		t.Fatal("cross-domain values should not match")
	}
	if orc.JoinMatch("A", "x", "B", "y", "foo", "unknown") {
		t.Fatal("unregistered values should not match")
	}
	if orc.JoinMatch("A", "nope", "B", "y", "foo", "foo") {
		t.Fatal("unbound columns should not match")
	}
}

func TestOracleSelMatch(t *testing.T) {
	orc := NewOracle()
	orc.BindColumn("University", "country", "country")
	orc.Register("country", "USA", 1)
	orc.Register("country", "US", 1)
	orc.Register("country", "UK", 2)
	if !orc.SelMatch("University", "country", "US", "USA") {
		t.Fatal("US should satisfy CROWDEQUAL 'USA'")
	}
	if orc.SelMatch("University", "country", "UK", "USA") {
		t.Fatal("UK should not satisfy CROWDEQUAL 'USA'")
	}
}

func TestOracleRegisterCollision(t *testing.T) {
	orc := NewOracle()
	if !orc.Register("d", "v", 1) {
		t.Fatal("first registration must succeed")
	}
	if !orc.Register("d", "v", 1) {
		t.Fatal("re-registration to the same entity must succeed")
	}
	if orc.Register("d", "v", 2) {
		t.Fatal("registration to a different entity must fail")
	}
}

func TestDirtierProducesRecognizableVariants(t *testing.T) {
	rng := stats.NewRNG(11)
	d := &Dirtier{R: rng}
	canon := "University of California"
	above := 0
	const n = 300
	for i := 0; i < n; i++ {
		v := d.Variant(canon, 2)
		if v == "" {
			t.Fatal("empty variant")
		}
		if sim.Jaccard2Gram(canon, v) >= 0.3 {
			above++
		}
	}
	// Most variants must stay similar enough to survive the ε=0.3
	// pruning, or crowd joins would have nothing to verify.
	if above < n*80/100 {
		t.Fatalf("only %d/%d variants above the similarity threshold", above, n)
	}
}

func TestDirtierZeroOps(t *testing.T) {
	d := &Dirtier{R: stats.NewRNG(1)}
	if v := d.Variant("hello world", 0); v != "hello world" {
		t.Fatalf("zero-op variant changed the string: %q", v)
	}
}

func TestQueriesParseable(t *testing.T) {
	for _, ds := range []string{"paper", "award"} {
		qs := Queries(ds)
		if len(qs) != 5 {
			t.Fatalf("%s has %d queries", ds, len(qs))
		}
		for _, label := range QueryLabels() {
			if _, ok := qs[label]; !ok {
				t.Fatalf("%s missing query %s", ds, label)
			}
		}
	}
}

func TestRunningExample(t *testing.T) {
	d := RunningExample()
	if d.Catalog.Len() != 4 {
		t.Fatalf("running example has %d tables", d.Catalog.Len())
	}
	pap, _ := d.Catalog.Get("Paper")
	if pap.Len() != 8 {
		t.Fatalf("Paper has %d rows, want 8", pap.Len())
	}
	res, _ := d.Catalog.Get("Researcher")
	if res.Len() != 12 {
		t.Fatalf("Researcher has %d rows, want 12", res.Len())
	}
	// The paper's three answers.
	if !d.Oracle.JoinMatch("Paper", "author", "Researcher", "name", "W. Bruce Croft", "Bruce W Croft") {
		t.Fatal("Croft pair should match")
	}
	if !d.Oracle.JoinMatch("Paper", "title", "Citation", "title",
		"Optimization strategies for complex queries", "Optimal strategy for complex queries") {
		t.Fatal("complex-queries titles should match")
	}
	// The refuted near-miss (p1, c1).
	if d.Oracle.JoinMatch("Paper", "title", "Citation", "title",
		"APrivateClean: Data Cleaning and Differential Privacy.",
		"Towards a Unified Framework for Data Cleaning and Data Privacy.") {
		t.Fatal("p1/c1 titles must NOT match")
	}
	if !d.Oracle.SelMatch("Paper", "conference", "sigmod16", "sigmod") {
		t.Fatal("sigmod16 should satisfy CROWDEQUAL 'sigmod'")
	}
}

func TestCountryVariantsRegistered(t *testing.T) {
	d := GenPaper(Config{Seed: 5, Scale: 0.05})
	if d.Oracle.EntityOf("country", "USA") < 0 || d.Oracle.EntityOf("country", "US") < 0 {
		t.Fatal("country variants missing")
	}
	if d.Oracle.EntityOf("country", "USA") != d.Oracle.EntityOf("country", "United States") {
		t.Fatal("USA variants should share an entity")
	}
}

func TestPaperOverlapProducesAnswers(t *testing.T) {
	// The generator must create genuine cross-table matches, otherwise
	// every query would be answerless.
	d := GenPaper(Config{Seed: 9, Scale: 0.2})
	pap, _ := d.Catalog.Get("Paper")
	res, _ := d.Catalog.Get("Researcher")
	aCol := pap.Schema.MustColIndex("author")
	nCol := res.Schema.MustColIndex("name")
	matches := 0
	for i := 0; i < pap.Len(); i++ {
		for j := 0; j < res.Len(); j++ {
			if d.Oracle.JoinMatch("Paper", "author", "Researcher", "name",
				pap.Cell(i, aCol).S, res.Cell(j, nCol).S) {
				matches++
			}
		}
	}
	if matches == 0 {
		t.Fatal("no true author/name matches generated")
	}
}

func TestVariantsStayInDomain(t *testing.T) {
	// A variant must resolve to the entity it was derived from.
	rng := stats.NewRNG(21)
	orc := NewOracle()
	d := &Dirtier{R: rng.Split()}
	reg := newRegistry(orc, "test", d)
	id := reg.add("University of Wisconsin")
	for i := 0; i < 50; i++ {
		v := reg.variant(id, 2)
		if got := orc.EntityOf("test", v); got != id {
			t.Fatalf("variant %q resolves to %d, want %d", v, got, id)
		}
	}
}

func TestScaleBounds(t *testing.T) {
	d := GenPaper(Config{Seed: 1, Scale: 0.001})
	for _, name := range []string{"Paper", "Citation", "Researcher", "University"} {
		tb, _ := d.Catalog.Get(name)
		if tb.Len() < 1 {
			t.Fatalf("%s empty at tiny scale", name)
		}
	}
}

func TestAwardQueriesReferenceRealColumns(t *testing.T) {
	d := GenAward(Config{Seed: 2, Scale: 0.02})
	for name, cols := range map[string][]string{
		"Celebrity": {"name", "birthplace", "birthday"},
		"City":      {"birthplace", "country"},
		"Winner":    {"name", "award"},
		"Award":     {"name", "place"},
	} {
		tb, ok := d.Catalog.Get(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		for _, c := range cols {
			if tb.Schema.ColIndex(c) < 0 {
				t.Fatalf("%s missing column %s", name, c)
			}
		}
	}
	if !strings.Contains(Queries("award")["2J"], "CROWDJOIN") {
		t.Fatal("award queries malformed")
	}
}
