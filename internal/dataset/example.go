package dataset

import (
	"cdb/internal/table"
)

// RunningExample embeds Table 1 of the paper: the four mini relations
// (Paper, Researcher, Citation, University) behind Figure 4's graph,
// together with the ground-truth matches spelled out in the paper
// (answers (u12,r12,p8,c12), (u8,r8,p4,c6), (u9,r9,p5,c7), and the
// near-miss pairs like p1/c1 that the crowd must refute). It powers
// the quickstart example and the Figure-1/Figure-4 tests.
func RunningExample() *Data {
	orc := NewOracle()
	orc.BindColumn("Paper", "author", "person")
	orc.BindColumn("Researcher", "name", "person")
	orc.BindColumn("Paper", "title", "title")
	orc.BindColumn("Citation", "title", "title")
	orc.BindColumn("Researcher", "affiliation", "univ")
	orc.BindColumn("University", "name", "univ")
	orc.BindColumn("Paper", "conference", "conf")
	orc.BindColumn("University", "country", "country")

	// Person entities. Matching pairs per the paper: p4's author "W.
	// Bruce Croft" is r8 "Bruce W Croft"; p5's "H. V. Jagadish" is r9
	// "H. Jagadish"; p8's "Surajit Chaudhuri" is r12 "S. Chaudhuri".
	// Others are distinct people despite similar names (e.g. Michael J.
	// Franklin vs Michael I. Jordan / Michael Dahlin / Michael Franklin
	// — the paper colors (p1,r*) candidates by the outcome of (p1,c1)).
	reg := func(domain string, groups [][]string) {
		id := 0
		for _, group := range groups {
			for _, v := range group {
				orc.Register(domain, v, id)
			}
			id++
		}
	}
	reg("person", [][]string{
		{"Michael J. Franklin", "Michael Franklin"},
		{"Michael I. Jordan"},
		{"Michael Dahlin"},
		{"Samuel Madden"},
		{"David J. Madden"},
		{"David D. Thomas"},
		{"David J. DeWitt", "David DeWitt"},
		{"David J. Hunter"},
		{"W. Bruce Croft", "Bruce W Croft"},
		{"H. V. Jagadish", "H. Jagadish"},
		{"Hector Garcia-Molina"},
		{"Molina Hector"},
		{"Aditya G. Parameswaran"},
		{"Nandan Parameswaran"},
		{"Surajit Chaudhuri", "S. Chaudhuri"},
	})
	reg("title", [][]string{
		{"APrivateClean: Data Cleaning and Differential Privacy."},
		{"Towards a Unified Framework for Data Cleaning and Data Privacy."},
		{"Querying continuous functions in a database system.", "Query continuous functions in database system"},
		{"Query processing on smart SSDs: opportunities and challenges."},
		{"Adaptive Query Processing and the Grid: Opportunities and Challenges."},
		{"Optimization strategies for complex queries", "Optimal strategy for complex queries"},
		{"CrowdMatcher: crowd-assisted schema matching", "CrowdMatcher: crowd-assisted schema match"},
		{"Exploiting Correlations for Expensive Predicate Evaluation.", "Exploit Correlations for Expensive Predicate Evaluation"},
		{"DataSift: a crowd-powered search toolkit", "DataSift: An Expressive and Accurate Crowd-Powered Search Toolkit.", "A crowd powered search toolkit"},
		{"Dynamically generating portals for entity-oriented web queries.", "Query portals: dynamically generating portals for entity-oriented web queries."},
		{"ConQuer: A System for Efficient Querying Over Inconsistent Database."},
		{"Webfind: An Architecture and System for Querying Web Database."},
		{"A Crowd Powered System for Similarity Search"},
	})
	reg("univ", [][]string{
		{"University of California", "Univ. of California"},
		{"University of California Berkery", "Univ. of California Berkery"},
		{"University of Chicago", "Univ. of Chicago"},
		{"Duke Uni.", "Duke Univ."},
		{"University of Minnesota", "Univ. of Minnesota"},
		{"University of Wisconsin", "Univ. of Wisconsin"},
		{"Department of Nutrition", "Depart of Nutrition"},
		{"University of Massachusetts", "Univ. of Massachusetts"},
		{"University of Michigan", "Univ. of Michigan"},
		{"University of Stanford", "Univ. of Stanford"},
		{"University of Cambridge", "Univ. of Cambridge"},
		{"Microsoft Cambridge", "Microsoft"},
	})
	reg("conf", [][]string{
		{"sigmod16", "sigmod08", "acm sigmod", "sigmod14", "sigmod15", "sigmod10", "sigmod"},
		{"sigir"},
	})
	reg("country", [][]string{
		{"USA", "US"},
		{"UK"},
	})

	papSchema := table.Schema{Name: "Paper", Columns: []table.Column{
		{Name: "author", Kind: table.String},
		{Name: "title", Kind: table.String},
		{Name: "conference", Kind: table.String},
	}}
	pap := table.New(papSchema)
	for _, r := range [][3]string{
		{"Michael J. Franklin", "APrivateClean: Data Cleaning and Differential Privacy.", "sigmod16"},
		{"Samuel Madden", "Querying continuous functions in a database system.", "sigmod08"},
		{"David J. DeWitt", "Query processing on smart SSDs: opportunities and challenges.", "acm sigmod"},
		{"W. Bruce Croft", "Optimization strategies for complex queries", "sigir"},
		{"H. V. Jagadish", "CrowdMatcher: crowd-assisted schema matching", "sigmod14"},
		{"Hector Garcia-Molina", "Exploiting Correlations for Expensive Predicate Evaluation.", "sigmod15"},
		{"Aditya G. Parameswaran", "DataSift: a crowd-powered search toolkit", "sigmod14"},
		{"Surajit Chaudhuri", "Dynamically generating portals for entity-oriented web queries.", "sigmod10"},
	} {
		pap.MustAppend(table.Tuple{table.SV(r[0]), table.SV(r[1]), table.SV(r[2])})
	}

	resSchema := table.Schema{Name: "Researcher", Columns: []table.Column{
		{Name: "affiliation", Kind: table.String},
		{Name: "name", Kind: table.String},
		{Name: "gender", Kind: table.String, Crowd: true},
	}}
	res := table.New(resSchema)
	for _, r := range [][2]string{
		{"University of California", "Michael I. Jordan"},
		{"University of California Berkery", "Michael Dahlin"},
		{"University of Chicago", "Michael Franklin"},
		{"Duke Uni.", "David J. Madden"},
		{"University of Minnesota", "David D. Thomas"},
		{"University of Wisconsin", "David DeWitt"},
		{"Department of Nutrition", "David J. Hunter"},
		{"University of Massachusetts", "Bruce W Croft"},
		{"University of Michigan", "H. Jagadish"},
		{"University of Stanford", "Molina Hector"},
		{"University of Cambridge", "Nandan Parameswaran"},
		{"Microsoft Cambridge", "S. Chaudhuri"},
	} {
		res.MustAppend(table.Tuple{table.SV(r[0]), table.SV(r[1]), table.SV("male")})
	}

	citSchema := table.Schema{Name: "Citation", Columns: []table.Column{
		{Name: "title", Kind: table.String},
		{Name: "number", Kind: table.Int},
	}}
	cit := table.New(citSchema)
	for _, r := range []struct {
		t string
		n int64
	}{
		{"Towards a Unified Framework for Data Cleaning and Data Privacy.", 0},
		{"Query continuous functions in database system", 56},
		{"ConQuer: A System for Efficient Querying Over Inconsistent Database.", 13},
		{"Webfind: An Architecture and System for Querying Web Database.", 17},
		{"Adaptive Query Processing and the Grid: Opportunities and Challenges.", 27},
		{"Optimal strategy for complex queries", 94},
		{"CrowdMatcher: crowd-assisted schema match", 9},
		{"Exploit Correlations for Expensive Predicate Evaluation", 0},
		{"DataSift: An Expressive and Accurate Crowd-Powered Search Toolkit.", 16},
		{"A crowd powered search toolkit", 4},
		{"A Crowd Powered System for Similarity Search", 0},
		{"Query portals: dynamically generating portals for entity-oriented web queries.", 1},
	} {
		cit.MustAppend(table.Tuple{table.SV(r.t), table.IV(r.n)})
	}

	uniSchema := table.Schema{Name: "University", Columns: []table.Column{
		{Name: "name", Kind: table.String},
		{Name: "city", Kind: table.String},
		{Name: "country", Kind: table.String},
	}}
	uni := table.New(uniSchema)
	for _, r := range [][2]string{
		{"Univ. of California", "USA"},
		{"Univ. of California Berkery", "USA"},
		{"Univ. of Chicago", "USA"},
		{"Duke Univ.", "USA"},
		{"Univ. of Minnesota", "US"},
		{"Univ. of Wisconsin", "US"},
		{"Depart of Nutrition", "US"},
		{"Univ. of Massachusetts", "US"},
		{"Univ. of Michigan", "US"},
		{"Univ. of Stanford", "USA"},
		{"Univ. of Cambridge", "UK"},
		{"Microsoft", "US"},
	} {
		uni.MustAppend(table.Tuple{table.SV(r[0]), table.SV(""), table.SV(r[1])})
	}

	cat := table.NewCatalog()
	cat.Register(pap)
	cat.Register(res)
	cat.Register(cit)
	cat.Register(uni)
	return &Data{Catalog: cat, Oracle: orc, Name: "running-example"}
}

// RunningExampleQuery is the 3-join query of Figure 4 over the
// running example.
const RunningExampleQuery = `SELECT *
FROM Paper, Researcher, Citation, University
WHERE Paper.author CROWDJOIN Researcher.name AND
      Paper.title CROWDJOIN Citation.title AND
      Researcher.affiliation CROWDJOIN University.name;`
