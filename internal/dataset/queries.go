package dataset

// Queries returns the five representative CQL queries of Table 4 for a
// dataset ("paper" or "award"), keyed by the paper's labels
// (2J, 2J1S, 3J, 3J1S, 3J2S). The paper-side queries are verbatim from
// Table 4; the award-side queries follow the same shapes over the
// award schema (the paper's table is partially typeset, so the
// selection constants are chosen to be selective on our generator).
func Queries(dataset string) map[string]string {
	if dataset == "award" {
		return map[string]string{
			"2J": `SELECT Winner.award, City.country
				FROM Winner, City, Celebrity
				WHERE Celebrity.name CROWDJOIN Winner.name AND
				      Celebrity.birthplace CROWDJOIN City.birthplace;`,
			"2J1S": `SELECT Winner.award, City.country
				FROM Winner, City, Celebrity
				WHERE Celebrity.name CROWDJOIN Winner.name AND
				      Celebrity.birthplace CROWDJOIN City.birthplace AND
				      City.country CROWDEQUAL "USA";`,
			"3J": `SELECT Winner.name, Award.place, City.country
				FROM Winner, City, Celebrity, Award
				WHERE Celebrity.name CROWDJOIN Winner.name AND
				      Celebrity.birthplace CROWDJOIN City.birthplace AND
				      Winner.award CROWDJOIN Award.name;`,
			"3J1S": `SELECT Winner.name, City.country
				FROM Winner, City, Celebrity, Award
				WHERE Celebrity.name CROWDJOIN Winner.name AND
				      Celebrity.birthplace CROWDJOIN City.birthplace AND
				      Winner.award CROWDJOIN Award.name AND
				      City.country CROWDEQUAL "USA";`,
			"3J2S": `SELECT Winner.name, City.country
				FROM Winner, City, Celebrity, Award
				WHERE Celebrity.name CROWDJOIN Winner.name AND
				      Celebrity.birthplace CROWDJOIN City.birthplace AND
				      Winner.award CROWDJOIN Award.name AND
				      City.country CROWDEQUAL "USA" AND
				      Award.place CROWDEQUAL "Los Angeles";`,
		}
	}
	return map[string]string{
		"2J": `SELECT Paper.title, Researcher.affiliation, Citation.number
			FROM Paper, Citation, Researcher
			WHERE Paper.title CROWDJOIN Citation.title AND
			      Paper.author CROWDJOIN Researcher.name;`,
		"2J1S": `SELECT Paper.title, Researcher.affiliation, Citation.number
			FROM Paper, Citation, Researcher
			WHERE Paper.title CROWDJOIN Citation.title AND
			      Paper.author CROWDJOIN Researcher.name AND
			      Paper.conference CROWDEQUAL "sigmod";`,
		"3J": `SELECT Paper.title, Citation.number, University.country
			FROM Paper, Citation, Researcher, University
			WHERE Paper.title CROWDJOIN Citation.title AND
			      Paper.author CROWDJOIN Researcher.name AND
			      University.name CROWDJOIN Researcher.affiliation;`,
		"3J1S": `SELECT Paper.title, Citation.number
			FROM Paper, Citation, Researcher, University
			WHERE Paper.title CROWDJOIN Citation.title AND
			      Paper.author CROWDJOIN Researcher.name AND
			      University.name CROWDJOIN Researcher.affiliation AND
			      University.country CROWDEQUAL "USA";`,
		"3J2S": `SELECT Paper.title, Citation.number
			FROM Paper, Citation, Researcher, University
			WHERE Paper.title CROWDJOIN Citation.title AND
			      Paper.author CROWDJOIN Researcher.name AND
			      University.name CROWDJOIN Researcher.affiliation AND
			      Paper.conference CROWDEQUAL "sigmod" AND
			      University.country CROWDEQUAL "USA";`,
	}
}

// QueryLabels returns the canonical experiment order.
func QueryLabels() []string { return []string{"2J", "2J1S", "3J", "3J1S", "3J2S"} }
