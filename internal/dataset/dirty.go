// Package dataset synthesizes the paper's two evaluation datasets
// (Table 2: paper, crawled from ACM/DBLP; Table 3: award, crawled from
// DBpedia/Yago) with the same cardinalities, join topology and
// dirty-string characteristics, plus a ground-truth oracle. The
// crawled originals are not redistributable, so we generate entities
// from vocabularies and derive "dirty" variants with the perturbations
// that make crowd joins necessary in the first place: abbreviations
// ("University" → "Univ."), initials ("Michael" → "M."), typos, token
// drops and reorderings. Every produced string is registered with the
// oracle, so simulated workers and the evaluation metrics know the
// true matches. The package also embeds the running example of
// Table 1 / Figure 4 used in tests and the quickstart.
package dataset

import (
	"strings"

	"cdb/internal/stats"
)

// Vocabulary pools. Sizes are chosen so that distinct entities share
// enough tokens/grams to create plausible-but-wrong candidate pairs
// (the RED edges of the paper's graphs).
var firstNames = []string{
	"Michael", "David", "James", "John", "Robert", "William", "Richard", "Joseph",
	"Thomas", "Charles", "Mary", "Patricia", "Jennifer", "Linda", "Elizabeth",
	"Susan", "Jessica", "Sarah", "Karen", "Nancy", "Daniel", "Matthew", "Anthony",
	"Mark", "Donald", "Steven", "Paul", "Andrew", "Joshua", "Kenneth", "Kevin",
	"Brian", "George", "Edward", "Ronald", "Timothy", "Jason", "Jeffrey", "Ryan",
	"Jacob", "Gary", "Nicholas", "Eric", "Jonathan", "Stephen", "Larry", "Justin",
	"Scott", "Brandon", "Benjamin", "Samuel", "Gregory", "Frank", "Alexander",
	"Raymond", "Patrick", "Jack", "Dennis", "Jerry", "Tyler", "Aaron", "Jose",
	"Hector", "Samuel2", "Wei", "Jian", "Guoliang", "Ju", "Yudian", "Xiang",
	"Haitao", "Lei", "Ming", "Hong", "Ying", "Feng", "Surajit", "Aditya",
	"Hector2", "Bruce", "Victor", "Divesh", "Rajeev", "Hank", "Laura", "Magda",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
	"Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson",
	"Thomas", "Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson",
	"White", "Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker",
	"Young", "Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill",
	"Flores", "Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell",
	"Mitchell", "Carter", "Roberts", "Franklin", "Madden", "DeWitt", "Croft",
	"Jagadish", "Molina", "Parameswaran", "Chaudhuri", "Kraska", "Widom", "Dahlin",
	"Jordan", "Hunter", "Stonebraker", "Abadi", "Bernstein", "Gray", "Ullman",
	"Naughton", "Ioannidis", "Hellerstein", "Agrawal", "Srikant", "Fagin", "Vardi",
	"Halevy", "Doan", "Getoor", "Suciu", "Tan", "Ooi", "Li", "Chen", "Wang",
	"Zhang", "Feng", "Cheng", "Zhou", "Gao", "Han", "Fan",
}

var placeNames = []string{
	"California", "Chicago", "Michigan", "Minnesota", "Wisconsin", "Massachusetts",
	"Washington", "Texas", "Toronto", "Waterloo", "Cambridge", "Oxford", "Edinburgh",
	"Stanford", "Princeton", "Columbia", "Cornell", "Berkeley", "Maryland",
	"Virginia", "Arizona", "Utah", "Oregon", "Illinois", "Indiana", "Iowa",
	"Kansas", "Kentucky", "Florida", "Georgia", "Alberta", "Melbourne", "Sydney",
	"Queensland", "Tokyo", "Kyoto", "Beijing", "Tsinghua", "Peking", "Fudan",
	"Zhejiang", "Nanjing", "Singapore", "Munich", "Zurich", "Vienna", "Amsterdam",
	"Leuven", "Dortmund", "Helsinki", "Uppsala", "Trento", "Milan", "Pennsylvania",
	"Pittsburgh", "Houston", "Dallas", "Denver", "Colorado", "Carolina",
}

var titleWords = []string{
	"query", "processing", "optimization", "crowdsourced", "crowd", "powered",
	"database", "systems", "efficient", "scalable", "adaptive", "entity",
	"resolution", "similarity", "joins", "search", "indexing", "learning",
	"inference", "truth", "discovery", "task", "assignment", "selection",
	"aggregation", "streaming", "distributed", "parallel", "transactional",
	"analytical", "graph", "relational", "schema", "matching", "cleaning",
	"integration", "privacy", "differential", "secure", "approximate",
	"sampling", "estimation", "cardinality", "cost", "latency", "quality",
	"control", "human", "machine", "hybrid", "interactive", "declarative",
	"framework", "benchmark", "evaluation", "algorithms", "models", "data",
}

var cityNames = []string{
	"New York", "Los Angeles", "London", "Paris", "Berlin", "Rome", "Madrid",
	"Vienna", "Dublin", "Glasgow", "Liverpool", "Manchester", "Birmingham",
	"Boston", "Philadelphia", "San Francisco", "Seattle", "Portland", "Austin",
	"Nashville", "Memphis", "Atlanta", "Miami", "Detroit", "Cleveland",
	"Baltimore", "Milwaukee", "Montreal", "Vancouver", "Ottawa", "Brisbane",
	"Auckland", "Wellington", "Stockholm", "Oslo", "Copenhagen", "Brussels",
	"Lisbon", "Athens", "Budapest", "Prague", "Warsaw", "Moscow", "Kiev",
	"Shanghai", "Shenzhen", "Guangzhou", "Hangzhou", "Chengdu", "Osaka",
	"Seoul", "Mumbai", "Delhi", "Chennai", "Lagos", "Cairo", "Nairobi",
	"Buenos Aires", "Santiago", "Lima", "Bogota", "Havana", "Mexico City",
}

var awardWords = []string{
	"Academy", "Award", "Prize", "Medal", "Honor", "Golden", "Globe", "Best",
	"Actor", "Actress", "Director", "Screenplay", "Picture", "Achievement",
	"Lifetime", "National", "International", "Grand", "Jury", "Critics",
	"Choice", "Emmy", "Grammy", "Tony", "Pulitzer", "Booker", "Nobel",
	"Fields", "Turing", "Distinguished", "Excellence", "Outstanding",
	"Supporting", "Original", "Score", "Song", "Documentary", "Animated",
	"Foreign", "Film", "Television", "Drama", "Comedy", "Musical",
}

// Dirtier perturbs canonical strings into realistic crowd-hard
// variants, deterministically from its RNG.
type Dirtier struct {
	R *stats.RNG
}

// syllables compose invented, phonetically plausible words. Distinct
// entities use them so that unrelated values stay BELOW the similarity
// threshold (their 2-gram sets barely overlap), which is what creates
// the "dead side" tuples whose candidate edges tuple-level
// optimization prunes without asking.
var syllables = []string{
	"ra", "ven", "kor", "zim", "bel", "tar", "mon", "qui", "fex", "lor",
	"dan", "sku", "pra", "wix", "hul", "gre", "nov", "tys", "jor", "mak",
	"cer", "vol", "dri", "pel", "sor", "gan", "lup", "rie", "tho", "bax",
}

// InventWord builds a pseudo-word of 2–4 syllables.
func InventWord(r *stats.RNG) string {
	n := 2 + r.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[r.Intn(len(syllables))])
	}
	return b.String()
}

// InventName builds a capitalized pseudo-name.
func InventName(r *stats.RNG) string {
	w := InventWord(r)
	return strings.ToUpper(w[:1]) + w[1:]
}

// Abbrev returns common abbreviations of well-known tokens.
var abbrevs = map[string]string{
	"university":    "univ.",
	"department":    "depart",
	"institute":     "inst.",
	"technology":    "tech",
	"california":    "calif.",
	"and":           "&",
	"national":      "natl",
	"international": "intl",
}

// Variant produces a dirty variant of s using up to maxOps random
// perturbations (possibly zero: clean duplicates exist in real data
// too).
func (d *Dirtier) Variant(s string, maxOps int) string {
	out := s
	ops := d.R.Intn(maxOps + 1)
	for i := 0; i < ops; i++ {
		switch d.R.Intn(5) {
		case 0:
			out = d.abbreviate(out)
		case 1:
			out = d.typo(out)
		case 2:
			out = d.dropToken(out)
		case 3:
			out = d.initialize(out)
		case 4:
			out = d.caseNoise(out)
		}
	}
	if strings.TrimSpace(out) == "" {
		return s
	}
	return out
}

func (d *Dirtier) abbreviate(s string) string {
	toks := strings.Fields(s)
	for i, t := range toks {
		if ab, ok := abbrevs[strings.ToLower(t)]; ok {
			toks[i] = matchCase(t, ab)
			return strings.Join(toks, " ")
		}
	}
	return s
}

func matchCase(model, s string) string {
	if len(model) > 0 && model[0] >= 'A' && model[0] <= 'Z' && len(s) > 0 {
		return strings.ToUpper(s[:1]) + s[1:]
	}
	return s
}

func (d *Dirtier) typo(s string) string {
	runes := []rune(s)
	if len(runes) < 3 {
		return s
	}
	i := 1 + d.R.Intn(len(runes)-2)
	switch d.R.Intn(3) {
	case 0: // deletion
		return string(runes[:i]) + string(runes[i+1:])
	case 1: // duplication
		return string(runes[:i]) + string(runes[i]) + string(runes[i:])
	default: // adjacent swap
		runes[i], runes[i-1] = runes[i-1], runes[i]
		return string(runes)
	}
}

func (d *Dirtier) dropToken(s string) string {
	toks := strings.Fields(s)
	if len(toks) < 3 {
		return s
	}
	i := d.R.Intn(len(toks))
	return strings.Join(append(toks[:i:i], toks[i+1:]...), " ")
}

// initialize turns one token into an initial: "Michael" -> "M.".
func (d *Dirtier) initialize(s string) string {
	toks := strings.Fields(s)
	if len(toks) < 2 {
		return s
	}
	i := d.R.Intn(len(toks))
	t := toks[i]
	if len(t) < 3 || !isUpper(t[0]) {
		return s
	}
	toks[i] = string(t[0]) + "."
	return strings.Join(toks, " ")
}

func isUpper(b byte) bool { return b >= 'A' && b <= 'Z' }

func (d *Dirtier) caseNoise(s string) string {
	if d.R.Bool(0.5) {
		return strings.ToLower(s)
	}
	return strings.TrimSuffix(s, ".")
}
