package dataset

import (
	"fmt"
	"strings"

	"cdb/internal/stats"
	"cdb/internal/table"
)

// Oracle is the ground-truth store: every generated string maps to an
// entity id within its semantic domain, so the simulator knows which
// cell-value pairs truly join. It implements exec.Oracle.
type Oracle struct {
	domainOf map[string]string         // "table.col" (lower) -> domain
	entity   map[string]map[string]int // domain -> value -> entity id
}

// NewOracle creates an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{domainOf: map[string]string{}, entity: map[string]map[string]int{}}
}

// BindColumn declares that table.col draws its values from domain.
func (o *Oracle) BindColumn(tbl, col, domain string) {
	o.domainOf[strings.ToLower(tbl+"."+col)] = domain
}

// Register maps value to entity id within domain; it reports false on
// a collision with a different entity (the caller should retry with a
// different variant).
func (o *Oracle) Register(domain, value string, id int) bool {
	m := o.entity[domain]
	if m == nil {
		m = map[string]int{}
		o.entity[domain] = m
	}
	if prev, ok := m[value]; ok {
		return prev == id
	}
	m[value] = id
	return true
}

// EntityOf resolves a value in a domain (-1 when unknown).
func (o *Oracle) EntityOf(domain, value string) int {
	if id, ok := o.entity[domain][value]; ok {
		return id
	}
	return -1
}

// JoinMatch implements exec.Oracle.
func (o *Oracle) JoinMatch(lt, lc, rt, rc, lv, rv string) bool {
	dl := o.domainOf[strings.ToLower(lt+"."+lc)]
	dr := o.domainOf[strings.ToLower(rt+"."+rc)]
	if dl == "" || dl != dr {
		return false
	}
	il, ir := o.EntityOf(dl, lv), o.EntityOf(dr, rv)
	return il >= 0 && il == ir
}

// SelMatch implements exec.Oracle.
func (o *Oracle) SelMatch(tbl, col, val, constant string) bool {
	d := o.domainOf[strings.ToLower(tbl+"."+col)]
	if d == "" {
		return false
	}
	iv, ic := o.EntityOf(d, val), o.EntityOf(d, constant)
	return iv >= 0 && iv == ic
}

// registry manufactures entities and registered dirty variants for one
// domain.
type registry struct {
	orc    *Oracle
	domain string
	d      *Dirtier
	canon  []string
	hot    []bool // confusable entities (drawn from small sub-pools)
}

func newRegistry(orc *Oracle, domain string, d *Dirtier) *registry {
	return &registry{orc: orc, domain: domain, d: d}
}

// add creates an entity with the given canonical string; returns its
// id, or -1 if the canonical collides with an existing entity.
func (r *registry) add(canonical string) int {
	id := len(r.canon)
	if !r.orc.Register(r.domain, canonical, id) {
		return -1
	}
	r.canon = append(r.canon, canonical)
	r.hot = append(r.hot, false)
	return id
}

// markHot flags an entity as confusable.
func (r *registry) markHot(id int) { r.hot[id] = true }

// distinctIDs returns the ids of non-hot entities.
func (r *registry) distinctIDs() []int {
	var out []int
	for id, h := range r.hot {
		if !h {
			out = append(out, id)
		}
	}
	return out
}

// size reports the number of entities.
func (r *registry) size() int { return len(r.canon) }

// variant returns a registered dirty variant of entity id; on
// persistent collisions it falls back to the canonical form.
func (r *registry) variant(id, maxOps int) string {
	for try := 0; try < 6; try++ {
		v := r.d.Variant(r.canon[id], maxOps)
		if r.orc.Register(r.domain, v, id) {
			return v
		}
	}
	return r.canon[id]
}

// Data bundles a generated dataset.
type Data struct {
	Catalog *table.Catalog
	Oracle  *Oracle
	Name    string
}

// Config controls generation.
type Config struct {
	Seed  uint64
	Scale float64 // 1.0 reproduces the paper's Table 2/3 cardinalities
}

func (c Config) scale(n int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n)*s + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// countryEntities registers the fixed country entities with their
// real-world spelling variants (the University.country column of the
// running example: "USA" vs "US").
func countryEntities(reg *registry) map[string][]string {
	sets := map[string][]string{
		"USA":     {"USA", "US", "United States", "U.S.", "America"},
		"UK":      {"UK", "United Kingdom", "Great Britain", "England"},
		"China":   {"China", "P.R. China", "PRC"},
		"Germany": {"Germany", "Deutschland"},
		"Canada":  {"Canada"},
		"Japan":   {"Japan"},
	}
	out := map[string][]string{}
	for canon, variants := range sets {
		id := reg.add(canon)
		if id < 0 {
			continue
		}
		for _, v := range variants {
			reg.orc.Register(reg.domain, v, id)
		}
		out[canon] = variants
	}
	return out
}

// conferenceEntities registers conference series with year/format
// variants ("sigmod16", "acm sigmod", …).
func conferenceEntities(reg *registry) []string {
	series := []string{"sigmod", "vldb", "icde", "sigir", "kdd", "www", "cikm", "edbt"}
	for _, s := range series {
		id := reg.add(s)
		if id < 0 {
			continue
		}
		for _, year := range []string{"08", "10", "12", "14", "15", "16"} {
			reg.orc.Register(reg.domain, s+year, id)
		}
		reg.orc.Register(reg.domain, "acm "+s, id)
		reg.orc.Register(reg.domain, s+" conference", id)
	}
	return series
}

// GenPaper synthesizes the paper dataset (Table 2): Paper(676),
// Citation(1239), Researcher(911), University(830) joined through
// person names, paper titles and university names.
func GenPaper(cfg Config) *Data {
	rng := stats.NewRNG(cfg.Seed ^ 0x9a9e7c)
	d := &Dirtier{R: rng.Split()}
	orc := NewOracle()

	persons := newRegistry(orc, "person", d)
	univs := newRegistry(orc, "univ", d)
	titles := newRegistry(orc, "title", d)
	confs := newRegistry(orc, "conf", d)
	countries := newRegistry(orc, "country", d)

	orc.BindColumn("Paper", "author", "person")
	orc.BindColumn("Researcher", "name", "person")
	orc.BindColumn("Paper", "title", "title")
	orc.BindColumn("Citation", "title", "title")
	orc.BindColumn("Researcher", "affiliation", "univ")
	orc.BindColumn("University", "name", "univ")
	orc.BindColumn("Paper", "conference", "conf")
	orc.BindColumn("University", "country", "country")

	countrySets := countryEntities(countries)
	confSeries := conferenceEntities(confs)
	countryList := make([]string, 0, len(countrySets))
	for c := range countrySets {
		countryList = append(countryList, c)
	}
	// Deterministic order for reproducibility (map iteration is random).
	sortStrings(countryList)

	// Entities.
	nPersons := cfg.scale(1100)
	fillPersons(persons, rng, nPersons)
	nUnivs := cfg.scale(620)
	for attempts := 0; univs.size() < nUnivs; attempts++ {
		// Hot universities share the "University of <place>" pattern and
		// the place pool (dense mutual similarity); distinct ones carry
		// invented places that match nothing else.
		hot := rng.Bool(0.45)
		place := stats.Pick(rng, placeNames)
		if !hot {
			place = InventName(rng)
		}
		var canon string
		switch rng.Intn(6) {
		case 0:
			canon = "University of " + place
		case 1:
			canon = place + " University"
		case 2:
			canon = place + " Institute of Technology"
		case 3:
			canon = place + " State University"
		case 4:
			canon = "Technical University of " + place
		default:
			canon = place + " College"
		}
		if attempts > 4*nUnivs {
			canon = "University of " + InventName(rng) + " " + InventName(rng)
			hot = false
		}
		if id := univs.add(canon); id >= 0 && hot {
			univs.markHot(id)
		}
	}
	univCountry := make([]string, univs.size())
	for i := range univCountry {
		if rng.Bool(0.5) {
			univCountry[i] = "USA"
		} else {
			univCountry[i] = stats.Pick(rng, countryList)
		}
	}
	nTitles := cfg.scale(1150)
	fillTitles(titles, rng, nTitles)

	// University table (830 rows).
	uniSchema := table.Schema{Name: "University", Columns: []table.Column{
		{Name: "name", Kind: table.String},
		{Name: "city", Kind: table.String},
		{Name: "country", Kind: table.String},
	}}
	uni := table.New(uniSchema)
	uniEntities := rng.Perm(univs.size())
	for i := 0; i < cfg.scale(830); i++ {
		ent := uniEntities[i%len(uniEntities)]
		c := univCountry[ent]
		uni.MustAppend(table.Tuple{
			table.SV(univs.variant(ent, 2)),
			table.SV(stats.Pick(rng, cityNames)),
			table.SV(stats.Pick(rng, countrySets[c])),
		})
	}

	// Researcher table (911 rows).
	resSchema := table.Schema{Name: "Researcher", Columns: []table.Column{
		{Name: "affiliation", Kind: table.String},
		{Name: "name", Kind: table.String},
		{Name: "gender", Kind: table.String, Crowd: true},
	}}
	res := table.New(resSchema)
	resPersons := rng.Perm(persons.size())
	nRes := cfg.scale(911)
	researcherEnts := make([]int, 0, nRes)
	for i := 0; i < nRes; i++ {
		ent := resPersons[i%len(resPersons)]
		researcherEnts = append(researcherEnts, ent)
		affil := uniEntities[rng.Intn(len(uniEntities))]
		gender := "male"
		if rng.Bool(0.3) {
			gender = "female"
		}
		res.MustAppend(table.Tuple{
			table.SV(univs.variant(affil, 2)),
			table.SV(persons.variant(ent, 2)),
			table.SV(gender),
		})
	}

	// Paper table (676 rows): true author matches are drawn from the
	// DISTINCTIVE researcher entities only — answer chains live on
	// low-fan-out tuples while confusable entities supply the red
	// candidate mass the optimizers must refute (the Figure-1 regime).
	papSchema := table.Schema{Name: "Paper", Columns: []table.Column{
		{Name: "author", Kind: table.String},
		{Name: "title", Kind: table.String},
		{Name: "conference", Kind: table.String},
	}}
	pap := table.New(papSchema)
	nPap := cfg.scale(676)
	titlePerm := rng.Perm(titles.size())
	paperTitleEnt := make([]int, nPap)
	distinctResearchers := make([]int, 0, len(researcherEnts))
	for _, ent := range researcherEnts {
		if !persons.hot[ent] {
			distinctResearchers = append(distinctResearchers, ent)
		}
	}
	for i := 0; i < nPap; i++ {
		var author int
		if rng.Bool(0.35) && len(distinctResearchers) > 0 {
			author = stats.Pick(rng, distinctResearchers)
		} else {
			author = rng.Intn(persons.size())
		}
		tEnt := titlePerm[i%len(titlePerm)]
		paperTitleEnt[i] = tEnt
		pap.MustAppend(table.Tuple{
			table.SV(persons.variant(author, 2)),
			table.SV(titles.variant(tEnt, 2)),
			table.SV(confs.variant(orcEntity(orc, "conf", pickConf(rng, confSeries)), 1)),
		})
	}

	// Citation table (1239 rows): ~50% cite existing paper titles.
	citSchema := table.Schema{Name: "Citation", Columns: []table.Column{
		{Name: "title", Kind: table.String},
		{Name: "number", Kind: table.Int},
	}}
	cit := table.New(citSchema)
	var distinctTitledPapers []int
	for i := 0; i < nPap; i++ {
		if !titles.hot[paperTitleEnt[i]] {
			distinctTitledPapers = append(distinctTitledPapers, i)
		}
	}
	for i := 0; i < cfg.scale(1239); i++ {
		var tEnt int
		if rng.Bool(0.35) && len(distinctTitledPapers) > 0 {
			tEnt = paperTitleEnt[stats.Pick(rng, distinctTitledPapers)]
		} else {
			tEnt = rng.Intn(titles.size())
		}
		cit.MustAppend(table.Tuple{
			table.SV(titles.variant(tEnt, 2)),
			table.IV(int64(rng.Intn(120))),
		})
	}

	cat := table.NewCatalog()
	cat.Register(uni)
	cat.Register(res)
	cat.Register(pap)
	cat.Register(cit)
	return &Data{Catalog: cat, Oracle: orc, Name: "paper"}
}

// GenAward synthesizes the award dataset (Table 3): Celebrity(1498),
// City(3220), Winner(2669), Award(1192).
func GenAward(cfg Config) *Data {
	rng := stats.NewRNG(cfg.Seed ^ 0x4a3bd1)
	d := &Dirtier{R: rng.Split()}
	orc := NewOracle()

	persons := newRegistry(orc, "person", d)
	cities := newRegistry(orc, "city", d)
	awards := newRegistry(orc, "award", d)
	countries := newRegistry(orc, "country", d)

	orc.BindColumn("Celebrity", "name", "person")
	orc.BindColumn("Winner", "name", "person")
	orc.BindColumn("Celebrity", "birthplace", "city")
	orc.BindColumn("City", "birthplace", "city")
	orc.BindColumn("Winner", "award", "award")
	orc.BindColumn("Award", "name", "award")
	orc.BindColumn("Award", "place", "city")
	orc.BindColumn("City", "country", "country")

	countrySets := countryEntities(countries)
	countryList := make([]string, 0, len(countrySets))
	for c := range countrySets {
		countryList = append(countryList, c)
	}
	sortStrings(countryList)

	nPersons := cfg.scale(1800)
	fillPersons(persons, rng, nPersons)
	nCities := cfg.scale(1400)
	for attempts := 0; cities.size() < nCities; attempts++ {
		var base string
		hot := rng.Bool(0.45)
		if hot {
			base = stats.Pick(rng, cityNames)
			if rng.Bool(0.4) {
				base = base + " " + stats.Pick(rng, placeNames)
			}
		} else {
			base = InventName(rng)
			if rng.Bool(0.3) {
				base = base + " " + InventName(rng)
			}
		}
		if attempts > 4*nCities {
			base = InventName(rng) + " " + InventName(rng)
			hot = false
		}
		if id := cities.add(base); id >= 0 && hot {
			cities.markHot(id)
		}
	}
	nAwards := cfg.scale(900)
	for awards.size() < nAwards {
		var canon string
		hot := rng.Bool(0.4)
		if hot {
			canon = stats.Pick(rng, awardWords) + " " + stats.Pick(rng, awardWords) +
				" for Best " + stats.Pick(rng, awardWords)
		} else {
			canon = InventName(rng) + " " + stats.Pick(rng, awardWords) + " for " + InventName(rng)
		}
		if id := awards.add(canon); id >= 0 && hot {
			awards.markHot(id)
		}
	}

	celSchema := table.Schema{Name: "Celebrity", Columns: []table.Column{
		{Name: "name", Kind: table.String},
		{Name: "birthplace", Kind: table.String},
		{Name: "birthday", Kind: table.String},
	}}
	cel := table.New(celSchema)
	celebEnts := make([]int, 0, cfg.scale(1498))
	personPerm := rng.Perm(persons.size())
	for i := 0; i < cfg.scale(1498); i++ {
		ent := personPerm[i%len(personPerm)]
		celebEnts = append(celebEnts, ent)
		cel.MustAppend(table.Tuple{
			table.SV(persons.variant(ent, 2)),
			table.SV(cities.variant(rng.Intn(cities.size()), 2)),
			table.SV(fmt.Sprintf("%d-%02d-%02d", 1920+rng.Intn(85), 1+rng.Intn(12), 1+rng.Intn(28))),
		})
	}

	citySchema := table.Schema{Name: "City", Columns: []table.Column{
		{Name: "birthplace", Kind: table.String},
		{Name: "country", Kind: table.String},
	}}
	cty := table.New(citySchema)
	cityPerm := rng.Perm(cities.size())
	for i := 0; i < cfg.scale(3220); i++ {
		ent := cityPerm[i%len(cityPerm)]
		c := stats.Pick(rng, countryList)
		if rng.Bool(0.4) {
			c = "USA"
		}
		cty.MustAppend(table.Tuple{
			table.SV(cities.variant(ent, 2)),
			table.SV(stats.Pick(rng, countrySets[c])),
		})
	}

	winSchema := table.Schema{Name: "Winner", Columns: []table.Column{
		{Name: "name", Kind: table.String},
		{Name: "award", Kind: table.String},
	}}
	win := table.New(winSchema)
	winnerAwardEnt := make([]int, 0, cfg.scale(2669))
	for i := 0; i < cfg.scale(2669); i++ {
		var ent int
		if rng.Bool(0.35) && len(celebEnts) > 0 {
			ent = stats.Pick(rng, celebEnts)
		} else {
			ent = rng.Intn(persons.size())
		}
		aEnt := rng.Intn(awards.size())
		winnerAwardEnt = append(winnerAwardEnt, aEnt)
		win.MustAppend(table.Tuple{
			table.SV(persons.variant(ent, 2)),
			table.SV(awards.variant(aEnt, 2)),
		})
	}

	awSchema := table.Schema{Name: "Award", Columns: []table.Column{
		{Name: "name", Kind: table.String},
		{Name: "place", Kind: table.String},
	}}
	aw := table.New(awSchema)
	for i := 0; i < cfg.scale(1192); i++ {
		var aEnt int
		if rng.Bool(0.45) && len(winnerAwardEnt) > 0 {
			aEnt = stats.Pick(rng, winnerAwardEnt)
		} else {
			aEnt = rng.Intn(awards.size())
		}
		aw.MustAppend(table.Tuple{
			table.SV(awards.variant(aEnt, 2)),
			table.SV(cities.variant(rng.Intn(cities.size()), 1)),
		})
	}

	cat := table.NewCatalog()
	cat.Register(cel)
	cat.Register(cty)
	cat.Register(win)
	cat.Register(aw)
	return &Data{Catalog: cat, Oracle: orc, Name: "award"}
}

func orcEntity(o *Oracle, domain, value string) int {
	id := o.EntityOf(domain, value)
	if id < 0 {
		panic(fmt.Sprintf("dataset: unregistered %s value %q", domain, value))
	}
	return id
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// pickConf skews the conference distribution (SIGMOD papers dominate,
// so selection predicates keep a healthy answer set).
func pickConf(rng *stats.RNG, series []string) string {
	if rng.Bool(0.35) {
		return "sigmod"
	}
	return stats.Pick(rng, series)
}

// fillPersons populates a person registry with a mix of highly
// confusable names (drawn from small sub-pools, so cross-entity
// similarity is frequent) and distinctive ones — the per-tuple
// heterogeneity that makes tuple-level optimization shine (Figure 1:
// different tuples want different join directions).
func fillPersons(persons *registry, rng *stats.RNG, n int) {
	hotFirst := firstNames[:14]

	hotLast := lastNames[:18]
	for attempts := 0; persons.size() < n; attempts++ {
		var name string
		hot := rng.Bool(0.45)
		if hot {
			name = stats.Pick(rng, hotFirst) + " " + stats.Pick(rng, hotLast)
		} else {
			// Distinctive: invented surname (and often an invented given
			// name) keeps unrelated people below the similarity
			// threshold.
			if rng.Bool(0.5) {
				name = stats.Pick(rng, firstNames) + " " + InventName(rng)
			} else {
				name = InventName(rng) + " " + InventName(rng)
			}
		}
		if attempts > 4*n {
			name = InventName(rng) + " " + InventName(rng) + " " + InventName(rng)
			hot = false
		}
		if id := persons.add(name); id >= 0 && hot {
			persons.markHot(id)
		}
	}
}

// fillTitles mixes short generic titles (many cross-entity similarity
// hits) with long distinctive ones.
func fillTitles(titles *registry, rng *stats.RNG, n int) {
	hotPool := titleWords[:16]
	for titles.size() < n {
		var words []string
		hot := rng.Bool(0.3)
		if hot {
			k := 3 + rng.Intn(2)
			for i := 0; i < k; i++ {
				words = append(words, stats.Pick(rng, hotPool))
			}
		} else {
			k := 5 + rng.Intn(3)
			for i := 0; i < k; i++ {
				// Mostly invented vocabulary: distinct titles share few
				// 2-grams with anything else.
				if rng.Bool(0.7) {
					words = append(words, InventWord(rng))
				} else {
					words = append(words, stats.Pick(rng, titleWords))
				}
			}
		}
		if id := titles.add(strings.Join(words, " ")); id >= 0 && hot {
			titles.markHot(id)
		}
	}
}
