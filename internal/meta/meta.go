// Package meta implements CDB's metadata store (§2.1): relational
// tables recording every crowdsourced task, every worker the system
// has seen, and every task-to-worker assignment with its answer. The
// paper keeps these in the same relational engine as user data; we do
// the same, building the three tables on the internal/table substrate
// so they can be inspected with Dump, exported as CSV, or joined in
// analyses. The store also derives the statistics CDB feeds back into
// optimization (per-worker accuracy, per-predicate selectivity).
package meta

import (
	"fmt"
	"io"
	"sort"

	"cdb/internal/table"
)

// Store holds the three metadata relations.
type Store struct {
	tasks       *table.Table
	workers     *table.Table
	assignments *table.Table

	workerSeen map[int]int // worker id -> row in workers table
	nextTask   int
}

// TaskKind labels what a recorded task asked.
type TaskKind string

// Task kinds.
const (
	TaskJoin      TaskKind = "join"
	TaskSelection TaskKind = "selection"
	TaskFill      TaskKind = "fill"
	TaskCollect   TaskKind = "collect"
)

// NewStore creates an empty metadata store.
func NewStore() *Store {
	s := &Store{workerSeen: map[int]int{}}
	s.tasks = table.New(table.Schema{Name: "cdb_tasks", Columns: []table.Column{
		{Name: "task_id", Kind: table.Int},
		{Name: "kind", Kind: table.String},
		{Name: "predicate", Kind: table.String},
		{Name: "left_value", Kind: table.String},
		{Name: "right_value", Kind: table.String},
		{Name: "verdict", Kind: table.String}, // "", "match", "nonmatch"
		{Name: "round", Kind: table.Int},
	}})
	s.workers = table.New(table.Schema{Name: "cdb_workers", Columns: []table.Column{
		{Name: "worker_id", Kind: table.Int},
		{Name: "answered", Kind: table.Int},
		{Name: "estimated_quality", Kind: table.Float},
	}})
	s.assignments = table.New(table.Schema{Name: "cdb_assignments", Columns: []table.Column{
		{Name: "task_id", Kind: table.Int},
		{Name: "worker_id", Kind: table.Int},
		{Name: "answer", Kind: table.String},
	}})
	return s
}

// RecordTask registers a crowdsourced task and returns its id.
func (s *Store) RecordTask(kind TaskKind, predicate, left, right string, round int) int {
	id := s.nextTask
	s.nextTask++
	s.tasks.MustAppend(table.Tuple{
		table.IV(int64(id)), table.SV(string(kind)), table.SV(predicate),
		table.SV(left), table.SV(right), table.SV(""), table.IV(int64(round)),
	})
	return id
}

// RecordAssignment registers one worker answer for a task.
func (s *Store) RecordAssignment(taskID, workerID int, answer string) {
	s.assignments.MustAppend(table.Tuple{
		table.IV(int64(taskID)), table.IV(int64(workerID)), table.SV(answer),
	})
	row, seen := s.workerSeen[workerID]
	if !seen {
		row = s.workers.Len()
		s.workerSeen[workerID] = row
		s.workers.MustAppend(table.Tuple{
			table.IV(int64(workerID)), table.IV(0), table.FV(0.7),
		})
	}
	cnt := s.workers.Rows[row][1].I
	s.workers.Rows[row][1] = table.IV(cnt + 1)
}

// RecordVerdict stores the inferred truth of a task.
func (s *Store) RecordVerdict(taskID int, match bool) error {
	if taskID < 0 || taskID >= s.tasks.Len() {
		return fmt.Errorf("meta: unknown task %d", taskID)
	}
	v := "nonmatch"
	if match {
		v = "match"
	}
	s.tasks.Rows[taskID][5] = table.SV(v)
	return nil
}

// UpdateWorkerQuality stores the latest EM estimate for a worker.
func (s *Store) UpdateWorkerQuality(workerID int, quality float64) {
	row, seen := s.workerSeen[workerID]
	if !seen {
		row = s.workers.Len()
		s.workerSeen[workerID] = row
		s.workers.MustAppend(table.Tuple{
			table.IV(int64(workerID)), table.IV(0), table.FV(quality),
		})
		return
	}
	s.workers.Rows[row][2] = table.FV(quality)
}

// Tasks returns the task relation (live reference).
func (s *Store) Tasks() *table.Table { return s.tasks }

// Workers returns the worker relation (live reference).
func (s *Store) Workers() *table.Table { return s.workers }

// Assignments returns the assignment relation (live reference).
func (s *Store) Assignments() *table.Table { return s.assignments }

// Stats aggregates the statistics §2.1 says CDB maintains for the
// optimizer.
type Stats struct {
	Tasks         int
	Assignments   int
	Workers       int
	MatchRate     float64            // fraction of decided tasks that matched
	PerPredicate  map[string]int     // tasks per predicate label
	PerKind       map[TaskKind]int   // tasks per task kind
	WorkerAnswers map[int]int        // answers per worker
	Selectivity   map[string]float64 // per-predicate match rate
}

// ComputeStats derives the summary statistics from the relations.
func (s *Store) ComputeStats() Stats {
	st := Stats{
		Tasks:         s.tasks.Len(),
		Assignments:   s.assignments.Len(),
		Workers:       s.workers.Len(),
		PerPredicate:  map[string]int{},
		PerKind:       map[TaskKind]int{},
		WorkerAnswers: map[int]int{},
		Selectivity:   map[string]float64{},
	}
	decided, matched := 0, 0
	predMatch := map[string]int{}
	predDecided := map[string]int{}
	for _, row := range s.tasks.Rows {
		pred := row[2].S
		st.PerPredicate[pred]++
		st.PerKind[TaskKind(row[1].S)]++
		switch row[5].S {
		case "match":
			decided++
			matched++
			predMatch[pred]++
			predDecided[pred]++
		case "nonmatch":
			decided++
			predDecided[pred]++
		}
	}
	if decided > 0 {
		st.MatchRate = float64(matched) / float64(decided)
	}
	for pred, d := range predDecided {
		if d > 0 {
			st.Selectivity[pred] = float64(predMatch[pred]) / float64(d)
		}
	}
	for _, row := range s.workers.Rows {
		st.WorkerAnswers[int(row[0].I)] = int(row[1].I)
	}
	return st
}

// WriteReport renders a human-readable summary.
func (s *Store) WriteReport(w io.Writer) {
	st := s.ComputeStats()
	fmt.Fprintf(w, "metadata: %d tasks, %d assignments, %d workers, match rate %.2f\n",
		st.Tasks, st.Assignments, st.Workers, st.MatchRate)
	preds := make([]string, 0, len(st.Selectivity))
	for p := range st.Selectivity {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, p := range preds {
		fmt.Fprintf(w, "  %-50s tasks=%-5d selectivity=%.3f\n", p, st.PerPredicate[p], st.Selectivity[p])
	}
}
