package meta

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecordLifecycle(t *testing.T) {
	s := NewStore()
	t1 := s.RecordTask(TaskJoin, "P.title~C.title", "a title", "another title", 0)
	t2 := s.RecordTask(TaskSelection, "P.conf~sigmod", "sigmod16", "sigmod", 1)
	if t1 != 0 || t2 != 1 {
		t.Fatalf("ids = %d, %d", t1, t2)
	}
	s.RecordAssignment(t1, 7, "match")
	s.RecordAssignment(t1, 8, "nonmatch")
	s.RecordAssignment(t2, 7, "match")
	if err := s.RecordVerdict(t1, true); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordVerdict(t2, false); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordVerdict(99, true); err == nil {
		t.Fatal("unknown task accepted")
	}

	if s.Tasks().Len() != 2 || s.Assignments().Len() != 3 || s.Workers().Len() != 2 {
		t.Fatalf("relation sizes: %d/%d/%d", s.Tasks().Len(), s.Assignments().Len(), s.Workers().Len())
	}
	// Worker 7 answered twice.
	st := s.ComputeStats()
	if st.WorkerAnswers[7] != 2 || st.WorkerAnswers[8] != 1 {
		t.Fatalf("worker answers = %v", st.WorkerAnswers)
	}
	if st.MatchRate != 0.5 {
		t.Fatalf("match rate = %v", st.MatchRate)
	}
	if st.PerKind[TaskJoin] != 1 || st.PerKind[TaskSelection] != 1 {
		t.Fatalf("per kind = %v", st.PerKind)
	}
	if st.Selectivity["P.title~C.title"] != 1 || st.Selectivity["P.conf~sigmod"] != 0 {
		t.Fatalf("selectivity = %v", st.Selectivity)
	}
}

func TestUpdateWorkerQuality(t *testing.T) {
	s := NewStore()
	s.UpdateWorkerQuality(3, 0.91) // unseen worker: creates the row
	s.RecordAssignment(0, 3, "match")
	s.UpdateWorkerQuality(3, 0.88)
	rows := s.Workers().Rows
	if len(rows) != 1 || rows[0][2].F != 0.88 {
		t.Fatalf("worker rows = %v", rows)
	}
}

func TestEmptyStats(t *testing.T) {
	st := NewStore().ComputeStats()
	if st.Tasks != 0 || st.MatchRate != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestWriteReport(t *testing.T) {
	s := NewStore()
	id := s.RecordTask(TaskJoin, "pred", "l", "r", 0)
	_ = s.RecordVerdict(id, true)
	var buf bytes.Buffer
	s.WriteReport(&buf)
	out := buf.String()
	if !strings.Contains(out, "1 tasks") || !strings.Contains(out, "selectivity=1.000") {
		t.Fatalf("report:\n%s", out)
	}
}
