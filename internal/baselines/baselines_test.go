package baselines

import (
	"testing"

	"cdb/internal/graph"
	"cdb/internal/stats"
)

// chainGraph builds a 3-table chain with controllable edges; returns
// the graph and a truth slice.
func chainGraph(edges [][4]interface{}) (*graph.Graph, []bool) {
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, []int{4, 4, 4})
	var truth []bool
	for _, e := range edges {
		g.AddEdge(e[0].(int), e[1].(int), e[2].(int), 0.5)
		truth = append(truth, e[3].(bool))
	}
	return g, truth
}

func TestCrowdDBAndQurkOrders(t *testing.T) {
	s := &graph.Structure{
		Tables: []string{"P", "C", "$const:sigmod"},
		Preds: []graph.QPred{
			{A: 0, B: 1, Name: "join"},
			{A: 0, B: 2, Name: "sel"},
		},
	}
	cdbOrder := CrowdDBOrder(s)
	if cdbOrder[0] != 1 || cdbOrder[1] != 0 {
		t.Fatalf("CrowdDB should push the selection first: %v", cdbOrder)
	}
	qurk := QurkOrder(s)
	if qurk[0] != 0 || qurk[1] != 1 {
		t.Fatalf("Qurk should run joins first: %v", qurk)
	}
}

func TestSimulateOrderCostMatchesTreeSemantics(t *testing.T) {
	// A(a0,a1) - B(b0,b1) - C(c0): a0-b0 blue, a1-b1 red; b0-c0 blue.
	g, truth := chainGraph([][4]interface{}{
		{0, 0, 0, true},  // a0-b0 blue
		{0, 1, 1, false}, // a1-b1 red
		{1, 0, 0, true},  // b0-c0 blue
		{1, 1, 0, false}, // b1-c0 red
	})
	// Order [0,1]: round 1 asks both pred-0 edges (2); survivors: b0;
	// round 2 asks b0-c0 only (1). Total 3.
	if c := SimulateOrderCost(g, truth, []int{0, 1}); c != 3 {
		t.Fatalf("order [0,1] cost = %d, want 3", c)
	}
	// Order [1,0]: round 1 asks both pred-1 edges (2); survivors b0;
	// round 2 asks a-b edges touching alive b (a0-b0 only). Total 3.
	if c := SimulateOrderCost(g, truth, []int{1, 0}); c != 3 {
		t.Fatalf("order [1,0] cost = %d, want 3", c)
	}
}

func TestOptTreePicksCheaperOrder(t *testing.T) {
	// Asymmetric: pred 0 has 6 edges, pred 1 has 1 red edge that kills
	// everything. Order [1,0] costs 1; order [0,1] costs 6.
	g, truth := chainGraph([][4]interface{}{
		{0, 0, 0, true}, {0, 0, 1, true}, {0, 1, 0, true},
		{0, 1, 1, true}, {0, 2, 0, true}, {0, 2, 1, true},
		{1, 0, 0, false}, {1, 1, 0, false},
	})
	order := OptTreeOrder(g, truth)
	if order[0] != 1 {
		t.Fatalf("OptTree should start with the cheap killing predicate: %v", order)
	}
	if c := SimulateOrderCost(g, truth, order); c != 2 {
		t.Fatalf("optimal order cost = %d, want 2", c)
	}
}

func TestEstimateOrderCostSanity(t *testing.T) {
	g, _ := chainGraph([][4]interface{}{
		{0, 0, 0, true}, {0, 1, 1, true},
		{1, 0, 0, true},
	})
	c01 := EstimateOrderCost(g, []int{0, 1})
	c10 := EstimateOrderCost(g, []int{1, 0})
	if c01 <= 0 || c10 <= 0 {
		t.Fatalf("estimates must be positive: %v %v", c01, c10)
	}
	// Starting with the single-edge predicate should not be estimated
	// as more expensive than starting with the two-edge one.
	if c10 > c01+1e-9 {
		t.Fatalf("estimate prefers the wrong order: [1,0]=%v > [0,1]=%v", c10, c01)
	}
}

func TestTreeModelRunsStageByStage(t *testing.T) {
	g, truth := chainGraph([][4]interface{}{
		{0, 0, 0, true}, {0, 1, 1, false},
		{1, 0, 0, true}, {1, 1, 1, true},
	})
	tm := NewTreeModel("test", []int{0, 1})
	if tm.Name() != "test" {
		t.Fatal("name lost")
	}
	b1 := tm.NextRound(g)
	if len(b1) != 2 {
		t.Fatalf("round 1 = %v, want both pred-0 edges", b1)
	}
	for _, e := range b1 {
		if truth[e] {
			g.SetColor(e, graph.Blue)
		} else {
			g.SetColor(e, graph.Red)
		}
	}
	b2 := tm.NextRound(g)
	// Only b0 survived; b1-c1 edge (id 3) must not be asked.
	if len(b2) != 1 || b2[0] != 2 {
		t.Fatalf("round 2 = %v, want just the b0-c0 edge", b2)
	}
	for _, e := range b2 {
		g.SetColor(e, graph.Blue)
	}
	if b3 := tm.NextRound(g); b3 != nil {
		t.Fatalf("round 3 = %v, want nil", b3)
	}
}

func TestTreeModelFlush(t *testing.T) {
	g, _ := chainGraph([][4]interface{}{
		{0, 0, 0, true}, {1, 0, 0, true}, {1, 1, 1, true},
	})
	tm := NewTreeModel("t", []int{0, 1})
	flush := tm.Flush(g)
	// Everything reachable under tree semantics: pred-0 edge, then
	// pred-1 edges of alive tuples. b1 is alive for pred 1? b1 has no
	// blue pred-0 edge yet (nothing asked), so alive = all vertices of
	// untouched tables at stage 0, then restricted.
	if len(flush) == 0 {
		t.Fatal("flush returned nothing")
	}
	seen := map[int]bool{}
	for _, e := range flush {
		if seen[e] {
			t.Fatal("flush contains duplicates")
		}
		seen[e] = true
	}
}

func TestERDeductions(t *testing.T) {
	// One join; b0 appears in two edges from a0 and a1. With side
	// dedup revealing a0~a1, Trans deduces (a1,b0) from (a0,b0).
	s := &graph.Structure{
		Tables: []string{"A", "B"},
		Preds:  []graph.QPred{{A: 0, B: 1}},
	}
	g := graph.MustNewGraph(s, []int{2, 1})
	e0 := g.AddEdge(0, 0, 0, 0.9) // a0-b0, truth blue
	e1 := g.AddEdge(0, 1, 0, 0.8) // a1-b0, truth blue (same entity)
	tr := NewTrans()
	tr.Side = func(pred int, alive map[int]bool) []SidePair {
		return []SidePair{{U: g.VertexID(0, 0), V: g.VertexID(0, 1), Match: true}}
	}
	b1 := tr.NextRound(g)
	if len(b1) != 1 || b1[0] != e0 {
		t.Fatalf("round 1 = %v, want just the heaviest pair", b1)
	}
	g.SetColor(e0, graph.Blue)
	b2 := tr.NextRound(g)
	if b2 != nil {
		t.Fatalf("round 2 = %v, want nil (e1 deduced via transitivity)", b2)
	}
	if g.Edge(e1).Color != graph.Blue {
		t.Fatal("e1 should be deduced blue")
	}
	if tr.ExtraTasks() != 1 {
		t.Fatalf("extra tasks = %d, want 1 side pair", tr.ExtraTasks())
	}
}

func TestACDDoesNotTrustPositive(t *testing.T) {
	s := &graph.Structure{
		Tables: []string{"A", "B"},
		Preds:  []graph.QPred{{A: 0, B: 1}},
	}
	g := graph.MustNewGraph(s, []int{2, 1})
	e0 := g.AddEdge(0, 0, 0, 0.9)
	e1 := g.AddEdge(0, 1, 0, 0.8)
	acd := NewACD()
	acd.Side = func(int, map[int]bool) []SidePair {
		return []SidePair{{U: g.VertexID(0, 0), V: g.VertexID(0, 1), Match: true}}
	}
	b1 := acd.NextRound(g)
	g.SetColor(b1[0], graph.Blue)
	b2 := acd.NextRound(g)
	if len(b2) != 1 || b2[0] != e1 {
		t.Fatalf("ACD must re-verify positive deductions, got %v", b2)
	}
	_ = e0
}

func TestERNegativeDeduction(t *testing.T) {
	// b0 and b1 are the same entity (side dedup says so); a0-b0 red
	// implies a0-b1 red for BOTH Trans and ACD.
	s := &graph.Structure{
		Tables: []string{"A", "B"},
		Preds:  []graph.QPred{{A: 0, B: 1}},
	}
	for _, mk := range []func() *ER{NewTrans, NewACD} {
		g := graph.MustNewGraph(s, []int{1, 2})
		e0 := g.AddEdge(0, 0, 0, 0.9)
		e1 := g.AddEdge(0, 0, 1, 0.8)
		er := mk()
		er.Side = func(int, map[int]bool) []SidePair {
			return []SidePair{{U: g.VertexID(1, 0), V: g.VertexID(1, 1), Match: true}}
		}
		b1 := er.NextRound(g)
		if len(b1) != 1 || b1[0] != e0 {
			t.Fatalf("%s round 1 = %v", er.Name(), b1)
		}
		g.SetColor(e0, graph.Red)
		if b2 := er.NextRound(g); b2 != nil {
			t.Fatalf("%s round 2 = %v, want nil (negative deduction)", er.Name(), b2)
		}
		if g.Edge(e1).Color != graph.Red {
			t.Fatalf("%s: e1 should be deduced red", er.Name())
		}
	}
}

func TestERWavesAreClusterDisjoint(t *testing.T) {
	// Two pairs sharing cluster b0 must go in different waves.
	s := &graph.Structure{
		Tables: []string{"A", "B"},
		Preds:  []graph.QPred{{A: 0, B: 1}},
	}
	g := graph.MustNewGraph(s, []int{2, 1})
	g.AddEdge(0, 0, 0, 0.9)
	g.AddEdge(0, 1, 0, 0.8)
	tr := NewTrans()
	b1 := tr.NextRound(g)
	if len(b1) != 1 {
		t.Fatalf("wave 1 = %v, want a single pair (shared endpoint)", b1)
	}
}

func TestGreedyBudgetStopsAtBudget(t *testing.T) {
	rng := stats.NewRNG(5)
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, []int{3, 3, 3})
	for p := 0; p < 2; p++ {
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				g.AddEdge(p, a, b, 0.2+0.6*rng.Float64())
			}
		}
	}
	gb := NewGreedyBudget(5)
	asked := 0
	for {
		batch := gb.NextRound(g)
		if len(batch) == 0 {
			break
		}
		asked += len(batch)
		for _, e := range batch {
			if rng.Bool(0.5) {
				g.SetColor(e, graph.Blue)
			} else {
				g.SetColor(e, graph.Red)
			}
		}
		if asked > 100 {
			t.Fatal("budget not honoured")
		}
	}
	if asked != 5 || gb.Spent() != 5 {
		t.Fatalf("asked %d (spent %d), want 5", asked, gb.Spent())
	}
}

func TestGreedyBudgetPicksHeaviestFirst(t *testing.T) {
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, []int{2, 2, 2})
	g.AddEdge(0, 0, 0, 0.3)
	g.AddEdge(0, 1, 1, 0.9)
	g.AddEdge(1, 0, 0, 0.5)
	g.AddEdge(1, 1, 1, 0.6)
	gb := NewGreedyBudget(10)
	b := gb.NextRound(g)
	if len(b) != 1 {
		t.Fatalf("first pick = %v", b)
	}
	// Whatever predicate the cost model chose to start with, the pick
	// must be that predicate's heaviest edge.
	ed := g.Edge(b[0])
	for e := 0; e < g.NumEdges(); e++ {
		if o := g.Edge(e); o.Pred == ed.Pred && o.W > ed.W {
			t.Fatalf("picked %d (w=%v) but %d (w=%v) is heavier on the same predicate", b[0], ed.W, e, o.W)
		}
	}
}

func TestGreedyBudgetFollowsBlueForFree(t *testing.T) {
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, []int{1, 1, 2})
	e0 := g.AddEdge(0, 0, 0, 0.9)
	e1 := g.AddEdge(1, 0, 0, 0.8)
	e2 := g.AddEdge(1, 0, 1, 0.7)
	gb := NewGreedyBudget(10)
	b := gb.NextRound(g)
	if b[0] != e0 {
		t.Fatalf("first = %v", b)
	}
	g.SetColor(e0, graph.Blue)
	b = gb.NextRound(g)
	if b[0] != e1 {
		t.Fatalf("second = %v, want heaviest extension %d", b, e1)
	}
	g.SetColor(e1, graph.Blue) // chain complete; next walk re-uses e0 free
	b = gb.NextRound(g)
	if len(b) != 1 || b[0] != e2 {
		t.Fatalf("third = %v, want %d via the free blue prefix", b, e2)
	}
}

func TestConnectedGroups(t *testing.T) {
	s := &graph.Structure{
		Tables: []string{"A", "B", "C", "D"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 2, B: 3}, {A: 1, B: 2}},
	}
	groups := connectedGroups(s, []int{0, 1})
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 disconnected groups", groups)
	}
	groups = connectedGroups(s, []int{0, 1, 2})
	if len(groups) != 1 {
		t.Fatalf("groups = %v, want 1 connected group", groups)
	}
}

func TestERFlushDrainsEverything(t *testing.T) {
	g, _ := chainGraph([][4]interface{}{
		{0, 0, 0, true}, {0, 1, 1, true},
		{1, 0, 0, true}, {1, 1, 1, true},
	})
	tr := NewTrans()
	if tr.Name() != "Trans" || NewACD().Name() != "ACD" {
		t.Fatal("names broken")
	}
	b1 := tr.NextRound(g)
	for _, e := range b1 {
		g.SetColor(e, graph.Blue)
	}
	flush := tr.Flush(g)
	// Every remaining uncolored edge reachable under tree semantics must
	// be in the flush, with no duplicates.
	seen := map[int]bool{}
	for _, e := range flush {
		if seen[e] {
			t.Fatal("duplicate in flush")
		}
		if g.Edge(e).Color != graph.Unknown {
			t.Fatal("flush returned a colored edge")
		}
		seen[e] = true
	}
	if tr.NextRound(g) != nil && len(flush) == 0 {
		t.Fatal("flush drained nothing but rounds continue")
	}
}

func TestERFlushBeforeAnyRound(t *testing.T) {
	g, _ := chainGraph([][4]interface{}{
		{0, 0, 0, true}, {1, 0, 0, true},
	})
	tr := NewTrans()
	flush := tr.Flush(g)
	if len(flush) != 2 {
		t.Fatalf("cold flush = %v, want both edges", flush)
	}
}

func TestGreedyBudgetFlush(t *testing.T) {
	g, _ := chainGraph([][4]interface{}{
		{0, 0, 0, true}, {0, 1, 1, true}, {1, 0, 0, true},
	})
	gb := NewGreedyBudget(2)
	flush := gb.Flush(g)
	if len(flush) != 2 {
		t.Fatalf("flush = %v, want budget-capped first-pred edges", flush)
	}
	if gb.Spent() != 2 {
		t.Fatalf("spent = %d", gb.Spent())
	}
}

func TestERUnionMergesNonMatchConstraints(t *testing.T) {
	// a0-b0 red (nonmatch between clusters), then side dedup merges
	// b0~b1: the constraint must survive the merge so a0-b1 is deduced.
	s := &graph.Structure{
		Tables: []string{"A", "B"},
		Preds:  []graph.QPred{{A: 0, B: 1}},
	}
	g := graph.MustNewGraph(s, []int{1, 2})
	e0 := g.AddEdge(0, 0, 0, 0.9)
	e1 := g.AddEdge(0, 0, 1, 0.8)
	tr := NewTrans()
	b1 := tr.NextRound(g) // asks e0 (no side info yet)
	if len(b1) != 1 || b1[0] != e0 {
		t.Fatalf("round 1 = %v", b1)
	}
	g.SetColor(e0, graph.Red)
	// Directly exercise the union-with-constraints path.
	tr.absorb(g)
	tr.union(g.VertexID(1, 0), g.VertexID(1, 1))
	if !tr.nonMatch[normPair(tr.find(g.VertexID(0, 0)), tr.find(g.VertexID(1, 1)))] {
		t.Fatal("nonmatch constraint lost across union")
	}
	_ = e1
}

func TestGreedyBudgetNothingLeft(t *testing.T) {
	g, _ := chainGraph([][4]interface{}{{0, 0, 0, true}, {1, 0, 0, true}})
	g.SetColor(0, graph.Red)
	g.SetColor(1, graph.Red)
	gb := NewGreedyBudget(5)
	if gb.Name() != "Baseline" {
		t.Fatal("name broken")
	}
	if b := gb.NextRound(g); b != nil {
		t.Fatalf("nothing should be askable, got %v", b)
	}
}
