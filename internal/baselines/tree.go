// Package baselines implements every competitor system evaluated in
// §6: the tree-model optimizers (CrowdDB's rule-based plan, Qurk's
// rule-based plan, Deco's cost-model plan, and the oracle OptTree that
// enumerates all join orders against known colors), the crowdsourced
// entity-resolution methods Trans (transitivity-based) and ACD
// (adaptive correlation-clustering-style dedup), and the weight-greedy
// depth-first budget baseline of §6.3.3. All of them implement the
// same Strategy contract as CDB's own selectors, so the executor and
// the quality/latency machinery treat every system identically.
package baselines

import (
	"sort"

	"cdb/internal/graph"
)

// TreeModel executes a fixed table-level predicate order: round k asks
// every edge of predicate order[k] whose already-joined endpoints
// survive in some all-blue partial embedding — the classical
// tree-model semantics the paper contrasts with tuple-level
// optimization. It never exploits cross-predicate pruning.
type TreeModel struct {
	Label string
	Order []int
	stage int
}

// NewTreeModel wraps a predicate order as a strategy.
func NewTreeModel(label string, order []int) *TreeModel {
	return &TreeModel{Label: label, Order: order}
}

// Name implements the Strategy contract.
func (t *TreeModel) Name() string { return t.Label }

// NextRound implements the Strategy contract.
func (t *TreeModel) NextRound(g *graph.Graph) []int {
	for t.stage < len(t.Order) {
		p := t.Order[t.stage]
		alive := aliveVertices(g, t.Order[:t.stage], liveColor(g))
		t.stage++
		batch := frontierEdges(g, p, alive)
		if len(batch) > 0 {
			return batch
		}
	}
	return nil
}

// Flush implements the Strategy contract: all edges of the remaining
// predicates restricted to currently-alive tuples, in one flood.
func (t *TreeModel) Flush(g *graph.Graph) []int {
	var all []int
	seen := map[int]bool{}
	for t.stage < len(t.Order) {
		p := t.Order[t.stage]
		// Optimistic aliveness: unanswered edges might turn blue, so
		// their tuples' downstream tasks are still "remaining".
		alive := aliveVertices(g, t.Order[:t.stage], optimisticColor(g))
		t.stage++
		for _, e := range frontierEdges(g, p, alive) {
			if !seen[e] {
				seen[e] = true
				all = append(all, e)
			}
		}
	}
	return all
}

// liveColor adapts the graph's current colors for alive computation.
func liveColor(g *graph.Graph) func(int) bool {
	return func(e int) bool { return g.Edge(e).Color == graph.Blue }
}

// optimisticColor treats uncolored edges as potentially blue — used by
// Flush, which must enumerate every task that COULD still matter.
func optimisticColor(g *graph.Graph) func(int) bool {
	return func(e int) bool { return g.Edge(e).Color != graph.Red }
}

// frontierEdges returns the uncolored edges of predicate p whose
// endpoints are alive.
func frontierEdges(g *graph.Graph, p int, alive map[int]bool) []int {
	var out []int
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(e)
		if ed.Pred != p || ed.Color != graph.Unknown {
			continue
		}
		if alive[ed.U] && alive[ed.V] {
			out = append(out, e)
		}
	}
	sort.Ints(out)
	return out
}

// aliveVertices computes which vertices survive the processed
// predicates: a vertex of a touched table is alive iff it appears in
// an all-blue embedding of its connected group of processed
// predicates; vertices of untouched tables are all alive. isBlue
// supplies edge colors (current graph colors during execution, ground
// truth during OptTree's oracle simulation).
func aliveVertices(g *graph.Graph, processed []int, isBlue func(edgeID int) bool) map[int]bool {
	alive := map[int]bool{}
	touched := map[int]bool{}
	for _, p := range processed {
		touched[g.S.Preds[p].A] = true
		touched[g.S.Preds[p].B] = true
	}
	for tab := 0; tab < g.NumTables(); tab++ {
		if touched[tab] {
			continue
		}
		for row := 0; row < g.TupleCount(tab); row++ {
			alive[g.VertexID(tab, row)] = true
		}
	}
	for _, group := range connectedGroups(g.S, processed) {
		markAlive(g, group, isBlue, alive)
	}
	return alive
}

// connectedGroups partitions a predicate subset into groups connected
// through shared tables.
func connectedGroups(s *graph.Structure, preds []int) [][]int {
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	tableOwner := map[int]int{} // table -> representative pred
	for _, p := range preds {
		parent[p] = p
	}
	for _, p := range preds {
		for _, tab := range []int{s.Preds[p].A, s.Preds[p].B} {
			if o, ok := tableOwner[tab]; ok {
				union(o, p)
			} else {
				tableOwner[tab] = p
			}
		}
	}
	byRoot := map[int][]int{}
	for _, p := range preds {
		byRoot[find(p)] = append(byRoot[find(p)], p)
	}
	out := make([][]int, 0, len(byRoot))
	for _, g := range byRoot {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// markAlive enumerates all-blue embeddings of one connected predicate
// group by backtracking and marks their vertices alive.
func markAlive(g *graph.Graph, group []int, isBlue func(int) bool, alive map[int]bool) {
	// Order the group's predicates connectedly.
	order := make([]int, 0, len(group))
	used := map[int]bool{}
	tabs := map[int]bool{}
	order = append(order, group[0])
	used[group[0]] = true
	tabs[g.S.Preds[group[0]].A] = true
	tabs[g.S.Preds[group[0]].B] = true
	for len(order) < len(group) {
		for _, p := range group {
			if used[p] {
				continue
			}
			if tabs[g.S.Preds[p].A] || tabs[g.S.Preds[p].B] {
				used[p] = true
				tabs[g.S.Preds[p].A] = true
				tabs[g.S.Preds[p].B] = true
				order = append(order, p)
			}
		}
	}

	assign := map[int]int{} // table -> vertex
	var rec func(k int)
	rec = func(k int) {
		if k == len(order) {
			for _, v := range assign {
				alive[v] = true
			}
			return
		}
		p := order[k]
		pd := g.S.Preds[p]
		try := func(eID int) {
			if !isBlue(eID) {
				return
			}
			e := g.Edge(eID)
			savedA, okA := assign[pd.A]
			savedB, okB := assign[pd.B]
			if okA && savedA != e.U {
				return
			}
			if okB && savedB != e.V {
				return
			}
			assign[pd.A], assign[pd.B] = e.U, e.V
			rec(k + 1)
			if okA {
				assign[pd.A] = savedA
			} else {
				delete(assign, pd.A)
			}
			if okB {
				assign[pd.B] = savedB
			} else {
				delete(assign, pd.B)
			}
		}
		if v, ok := assign[pd.A]; ok {
			for _, eID := range g.EdgesAt(v, p) {
				try(eID)
			}
			return
		}
		if v, ok := assign[pd.B]; ok {
			for _, eID := range g.EdgesAt(v, p) {
				try(eID)
			}
			return
		}
		for eID := 0; eID < g.NumEdges(); eID++ {
			if g.Edge(eID).Pred == p {
				try(eID)
			}
		}
	}
	rec(0)
}
