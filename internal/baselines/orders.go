package baselines

import (
	"sort"
	"strings"

	"cdb/internal/graph"
)

// isSelectionPred reports whether predicate p binds a selection
// constant pseudo-table (planner names them "$const:…").
func isSelectionPred(s *graph.Structure, p int) bool {
	return strings.HasPrefix(s.Tables[s.Preds[p].A], "$const:") ||
		strings.HasPrefix(s.Tables[s.Preds[p].B], "$const:")
}

// CrowdDBOrder is the rule-based plan of CrowdDB: push selections down
// (evaluate them first), then process joins in the order written.
func CrowdDBOrder(s *graph.Structure) []int {
	var sels, joins []int
	for p := range s.Preds {
		if isSelectionPred(s, p) {
			sels = append(sels, p)
		} else {
			joins = append(joins, p)
		}
	}
	return append(sels, joins...)
}

// QurkOrder is Qurk's rule-based plan: joins in the order written,
// selections afterwards (Qurk optimizes individual joins but does not
// reorder around selections).
func QurkOrder(s *graph.Structure) []int {
	var sels, joins []int
	for p := range s.Preds {
		if isSelectionPred(s, p) {
			sels = append(sels, p)
		} else {
			joins = append(joins, p)
		}
	}
	return append(joins, sels...)
}

// permutations enumerates all predicate orders (n ≤ ~6 in practice).
func permutations(n int) [][]int {
	cur := make([]int, 0, n)
	used := make([]bool, n)
	var out [][]int
	var rec func()
	rec = func() {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, i)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// EstimateOrderCost predicts the number of tasks a tree-model
// execution of the given order would ask, from edge weights alone (no
// ground truth): per-vertex survival probabilities are propagated
// predicate by predicate — Deco-style cost modelling.
func EstimateOrderCost(g *graph.Graph, order []int) float64 {
	aliveProb := make([]float64, g.NumVertices())
	for i := range aliveProb {
		aliveProb[i] = 1
	}
	total := 0.0
	for _, p := range order {
		// Expected frontier size.
		type upd struct {
			v    int
			keep float64
		}
		noBlue := map[int]float64{}
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(e)
			if ed.Pred != p {
				continue
			}
			pa, pb := aliveProb[ed.U], aliveProb[ed.V]
			if ed.Color == graph.Unknown {
				// Pre-colored (traditional) edges cost nothing; only
				// crowd edges contribute expected tasks.
				total += pa * pb
			}
			// Track P(no blue edge survives) per endpoint.
			if _, ok := noBlue[ed.U]; !ok {
				noBlue[ed.U] = 1
			}
			if _, ok := noBlue[ed.V]; !ok {
				noBlue[ed.V] = 1
			}
			noBlue[ed.U] *= 1 - pb*ed.W
			noBlue[ed.V] *= 1 - pa*ed.W
		}
		var updates []upd
		pd := g.S.Preds[p]
		for _, tab := range []int{pd.A, pd.B} {
			for row := 0; row < g.TupleCount(tab); row++ {
				v := g.VertexID(tab, row)
				if nb, ok := noBlue[v]; ok {
					updates = append(updates, upd{v: v, keep: 1 - nb})
				} else {
					updates = append(updates, upd{v: v, keep: 0}) // no edges on p: dead
				}
			}
		}
		for _, u := range updates {
			aliveProb[u.v] *= u.keep
		}
	}
	return total
}

// DecoOrder is Deco's cost-based plan: enumerate all orders, pick the
// one with the minimum ESTIMATED cost (weights only — no oracle).
func DecoOrder(g *graph.Graph) []int {
	best, bestCost := 0, 0.0
	perms := permutations(len(g.S.Preds))
	for i, ord := range perms {
		c := EstimateOrderCost(g, ord)
		if i == 0 || c < bestCost {
			best, bestCost = i, c
		}
	}
	return perms[best]
}

// SimulateOrderCost computes the EXACT number of tasks a tree-model
// execution of order would ask, given the true edge colors.
func SimulateOrderCost(g *graph.Graph, truth []bool, order []int) int {
	isBlue := func(e int) bool { return truth[e] }
	cost := 0
	for stage, p := range order {
		alive := aliveVertices(g, order[:stage], isBlue)
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(e)
			if ed.Pred == p && ed.Color == graph.Unknown && alive[ed.U] && alive[ed.V] {
				cost++
			}
		}
	}
	return cost
}

// OptTreeOrder is the paper's oracle tree baseline: enumerate all join
// orders against the TRUE colors and return the cheapest. It reports
// the best any tree-model system could possibly do.
func OptTreeOrder(g *graph.Graph, truth []bool) []int {
	perms := permutations(len(g.S.Preds))
	type scored struct {
		idx, cost int
	}
	best := scored{idx: 0, cost: 1 << 60}
	for i, ord := range perms {
		if c := SimulateOrderCost(g, truth, ord); c < best.cost {
			best = scored{idx: i, cost: c}
		}
	}
	return perms[best.idx]
}

// sortedEdgeIDs returns all edges of predicate p by descending weight
// (ties by id), used by ER baselines.
func sortedEdgeIDs(g *graph.Graph, p int) []int {
	var out []int
	for e := 0; e < g.NumEdges(); e++ {
		if g.Edge(e).Pred == p {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		wi, wj := g.Edge(out[i]).W, g.Edge(out[j]).W
		if wi != wj {
			return wi > wj
		}
		return out[i] < out[j]
	})
	return out
}
