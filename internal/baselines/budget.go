package baselines

import (
	"cdb/internal/graph"
)

// GreedyBudget is the budget baseline of §6.3.3: fix the best table
// order, pick the highest-weight unasked edge of the first predicate,
// and extend the partial chain depth-first along the order, always
// taking the heaviest compatible edge. When an extension comes back
// red (or a dead end is reached) the walk restarts. One task per
// round, until the budget is exhausted — the paper shows its recall
// grows far more slowly than CDB's candidate-driven selection.
type GreedyBudget struct {
	B int

	order       []int
	initialized bool
	spent       int
	depth       int   // next predicate index in order to extend
	tabAssign   []int // table index -> chosen vertex, -1 unset
	lastEdge    int   // edge asked in the previous round, -1 none
}

// NewGreedyBudget builds the baseline with budget b.
func NewGreedyBudget(b int) *GreedyBudget { return &GreedyBudget{B: b, lastEdge: -1} }

// Name implements the Strategy contract.
func (s *GreedyBudget) Name() string { return "Baseline" }

// Spent reports issued tasks.
func (s *GreedyBudget) Spent() int { return s.spent }

func (s *GreedyBudget) init(g *graph.Graph) {
	s.order = DecoOrder(g)
	s.reset(g)
	s.initialized = true
}

func (s *GreedyBudget) reset(g *graph.Graph) {
	s.depth = 0
	s.lastEdge = -1
	s.tabAssign = make([]int, g.NumTables())
	for i := range s.tabAssign {
		s.tabAssign[i] = -1
	}
}

// NextRound implements the Strategy contract: one greedy task.
func (s *GreedyBudget) NextRound(g *graph.Graph) []int {
	if !s.initialized {
		s.init(g)
	}
	if s.spent >= s.B {
		return nil
	}
	// If the previous extension failed (red), restart the walk; if the
	// chain is complete, start hunting for the next answer.
	if s.lastEdge >= 0 && g.Edge(s.lastEdge).Color != graph.Blue {
		s.reset(g)
	} else if s.depth >= len(s.order) {
		s.reset(g)
	}
	// Guard against walking confirmed-blue cycles without ever finding
	// a new question.
	for iter := 0; iter <= g.NumEdges()+len(s.order); iter++ {
		// Ask the heaviest unresolved extension (the paper's "select the
		// edge with large probability … then depth-first").
		if e := s.bestEdge(g, s.order[s.depth]); e >= 0 {
			ed := g.Edge(e)
			s.tabAssign[g.TableOf(ed.U)] = ed.U
			s.tabAssign[g.TableOf(ed.V)] = ed.V
			s.depth++
			s.lastEdge = e
			s.spent++
			return []int{e}
		}
		// No unresolved extension here: traverse a confirmed blue edge
		// for free, hoping for unresolved edges deeper in the chain.
		if b := s.knownBlueEdge(g, s.order[s.depth]); b >= 0 {
			ed := g.Edge(b)
			s.tabAssign[g.TableOf(ed.U)] = ed.U
			s.tabAssign[g.TableOf(ed.V)] = ed.V
			s.depth++
			s.lastEdge = b
			if s.depth >= len(s.order) {
				s.reset(g)
			}
			continue
		}
		// Dead end: restart unless already at the root with nothing
		// left anywhere.
		if s.depth == 0 && s.lastEdge < 0 {
			return nil
		}
		s.reset(g)
		s.lastEdge = -2 // mark that we already restarted once this call
	}
	return nil
}

// knownBlueEdge returns a blue edge of predicate p compatible with the
// current partial chain (any blue edge of p for a fresh walk), or -1.
func (s *GreedyBudget) knownBlueEdge(g *graph.Graph, p int) int {
	pd := g.S.Preds[p]
	au, av := s.tabAssign[pd.A], s.tabAssign[pd.B]
	if au < 0 && av < 0 {
		// Fresh walk: re-enter through any confirmed blue edge so budget
		// can extend partially-resolved chains.
		for e := 0; e < g.NumEdges(); e++ {
			if ed := g.Edge(e); ed.Pred == p && ed.Color == graph.Blue {
				return e
			}
		}
		return -1
	}
	anchor := au
	if anchor < 0 {
		anchor = av
	}
	for _, e := range g.EdgesAt(anchor, p) {
		ed := g.Edge(e)
		if ed.Color != graph.Blue {
			continue
		}
		if au >= 0 && ed.U != au && ed.V != au {
			continue
		}
		if av >= 0 && ed.U != av && ed.V != av {
			continue
		}
		return e
	}
	return -1
}

// bestEdge returns the heaviest uncolored edge of predicate p
// compatible with the current partial chain, or -1.
func (s *GreedyBudget) bestEdge(g *graph.Graph, p int) int {
	pd := g.S.Preds[p]
	au, av := s.tabAssign[pd.A], s.tabAssign[pd.B]
	var candidates []int
	switch {
	case au >= 0:
		candidates = g.EdgesAt(au, p)
	case av >= 0:
		candidates = g.EdgesAt(av, p)
	default:
		candidates = sortedEdgeIDs(g, p)
	}
	best, bestW := -1, -1.0
	for _, e := range candidates {
		ed := g.Edge(e)
		if ed.Color != graph.Unknown {
			continue
		}
		if au >= 0 && ed.U != au && ed.V != au {
			continue
		}
		if av >= 0 && ed.U != av && ed.V != av {
			continue
		}
		if ed.W > bestW {
			best, bestW = e, ed.W
		}
	}
	return best
}

// Flush implements the Strategy contract: spend the remaining budget
// in one round. Without fresh answers between picks the walk cannot
// extend reliably, so the flush drains edges heaviest-first along the
// predicate order.
func (s *GreedyBudget) Flush(g *graph.Graph) []int {
	if !s.initialized {
		s.init(g)
	}
	var all []int
	for _, p := range s.order {
		for _, e := range sortedEdgeIDs(g, p) {
			if s.spent >= s.B {
				return all
			}
			if g.Edge(e).Color != graph.Unknown {
				continue
			}
			all = append(all, e)
			s.spent++
		}
	}
	return all
}
