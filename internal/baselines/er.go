package baselines

import (
	"cdb/internal/graph"
)

// ER is the crowdsourced entity-resolution family of baselines:
// processes join predicates one by one (best estimated order); within
// a join, candidate pairs are asked in descending similarity order
// across multiple waves, and transitivity over the answers deduces
// colors of later pairs for free.
//
//   - Trans (Wang et al., SIGMOD'13 style) trusts both positive and
//     negative transitivity: fewer questions, more rounds, and answer
//     errors propagate through deductions (the ~50% quality drops the
//     paper reports).
//   - ACD (correlation-clustering adaptive dedup approximation) trusts
//     only negative deductions and re-verifies positive ones with the
//     crowd: costs more than Trans, less than tree models, with better
//     quality.
type ER struct {
	Label string
	// TrustPositive enables positive-transitivity deductions (Trans).
	TrustPositive bool
	// Side supplies the within-side dedup comparisons transitivity
	// depends on; the ER method pays one task per pair. Nil disables
	// side dedup (transitivity then only connects through answered
	// cross pairs).
	Side SideOracle

	order       []int
	stage       int
	pending     []int // pairs of the current join, weight-descending
	asked       []int // pairs asked in the previous wave
	uf          map[int]int
	nonMatch    map[[2]int]bool
	initialized bool
	extra       int
}

// SidePair is one within-table dedup comparison (two values of the
// same column) that an entity-resolution method crowdsources so that
// transitivity can propagate across the cross-table pairs. Match is
// the simulated crowd outcome.
type SidePair struct {
	U, V  int // vertex ids
	Match bool
}

// SideOracle returns the within-side similar pairs of a predicate
// restricted to the currently-alive vertices.
type SideOracle func(pred int, alive map[int]bool) []SidePair

// ExtraTasks reports tasks issued outside the query graph (side
// dedup); the executor adds them to the cost metric.
func (t *ER) ExtraTasks() int { return t.extra }

// NewTrans builds the transitivity ER baseline.
func NewTrans() *ER { return &ER{Label: "Trans", TrustPositive: true} }

// NewACD builds the adaptive correlation-clustering ER baseline.
func NewACD() *ER { return &ER{Label: "ACD"} }

// Name implements the Strategy contract.
func (t *ER) Name() string { return t.Label }

func (t *ER) find(x int) int {
	if _, ok := t.uf[x]; !ok {
		t.uf[x] = x
		return x
	}
	if t.uf[x] != x {
		t.uf[x] = t.find(t.uf[x])
	}
	return t.uf[x]
}

func (t *ER) union(a, b int) {
	ra, rb := t.find(a), t.find(b)
	if ra == rb {
		return
	}
	t.uf[ra] = rb
	// Merge non-match constraints onto the surviving root.
	for key := range t.nonMatch {
		if key[0] == ra || key[1] == ra {
			x, y := key[0], key[1]
			if x == ra {
				x = rb
			}
			if y == ra {
				y = rb
			}
			delete(t.nonMatch, key)
			t.nonMatch[normPair(x, y)] = true
		}
	}
}

func normPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// absorb folds the previous wave's crowd answers into the clustering.
func (t *ER) absorb(g *graph.Graph) {
	for _, e := range t.asked {
		ed := g.Edge(e)
		switch ed.Color {
		case graph.Blue:
			t.union(ed.U, ed.V)
		case graph.Red:
			t.nonMatch[normPair(t.find(ed.U), t.find(ed.V))] = true
		}
	}
	t.asked = nil
}

// startJoin initializes the pending pair list for the predicate,
// restricted to tuples alive after the previously processed joins.
func (t *ER) startJoin(g *graph.Graph, p int) {
	t.uf = map[int]int{}
	t.nonMatch = map[[2]int]bool{}
	alive := aliveVertices(g, t.order[:t.stage], liveColor(g))
	t.pending = nil
	for _, e := range sortedEdgeIDs(g, p) {
		ed := g.Edge(e)
		if ed.Color != graph.Unknown || !alive[ed.U] || !alive[ed.V] {
			continue
		}
		t.pending = append(t.pending, e)
		t.uf[ed.U] = ed.U
		t.uf[ed.V] = ed.V
	}
	// Pay for and absorb within-side dedup: its answers seed the
	// clusters (matches) and constraints (non-matches) that transitive
	// deduction works from.
	if t.Side != nil && len(t.pending) > 0 {
		for _, sp := range t.Side(p, alive) {
			t.extra++
			if sp.Match {
				t.union(sp.U, sp.V)
			} else {
				t.nonMatch[normPair(t.find(sp.U), t.find(sp.V))] = true
			}
		}
	}
}

// NextRound implements the Strategy contract: one wave of mutually
// endpoint-disjoint, non-deducible pairs of the current join.
func (t *ER) NextRound(g *graph.Graph) []int {
	if !t.initialized {
		t.order = DecoOrder(g)
		t.initialized = true
		t.startJoin(g, t.order[t.stage])
	}
	for {
		t.absorb(g)
		// Deduce what transitivity already knows, then build a wave of
		// endpoint-cluster-disjoint pairs (pairs sharing a cluster must
		// wait: their outcome may become deducible).
		var wave []int
		busy := map[int]bool{}
		remaining := t.pending[:0]
		for _, e := range t.pending {
			ed := g.Edge(e)
			if ed.Color != graph.Unknown {
				continue
			}
			ra, rb := t.find(ed.U), t.find(ed.V)
			if ra == rb {
				if t.TrustPositive {
					g.SetColor(e, graph.Blue) // deduced, free
					continue
				}
			} else if t.nonMatch[normPair(ra, rb)] {
				g.SetColor(e, graph.Red) // deduced, free
				continue
			}
			if busy[ra] || busy[rb] {
				remaining = append(remaining, e)
				continue
			}
			busy[ra], busy[rb] = true, true
			wave = append(wave, e)
			remaining = append(remaining, e)
		}
		t.pending = append([]int(nil), remaining...)
		if len(wave) > 0 {
			t.asked = wave
			return wave
		}
		// Current join finished; advance.
		t.stage++
		if t.stage >= len(t.order) {
			return nil
		}
		t.startJoin(g, t.order[t.stage])
	}
}

// Flush implements the Strategy contract: everything still pending on
// this and later joins, without further deduction opportunities.
func (t *ER) Flush(g *graph.Graph) []int {
	if !t.initialized {
		t.order = DecoOrder(g)
		t.initialized = true
		t.startJoin(g, t.order[t.stage])
	}
	t.absorb(g)
	var all []int
	seen := map[int]bool{}
	add := func(e int) {
		if !seen[e] && g.Edge(e).Color == graph.Unknown {
			seen[e] = true
			all = append(all, e)
		}
	}
	for _, e := range t.pending {
		add(e)
	}
	for s := t.stage + 1; s < len(t.order); s++ {
		alive := aliveVertices(g, t.order[:s], optimisticColor(g))
		for _, e := range frontierEdges(g, t.order[s], alive) {
			add(e)
		}
	}
	t.stage = len(t.order)
	t.pending = nil
	return all
}
