package maxflow

import (
	"sort"
	"testing"
	"testing/quick"

	"cdb/internal/stats"
)

func TestSimplePath(t *testing.T) {
	// s -> a -> t with caps 3, 2 => flow 2, cut = edge 1.
	g := New(3)
	g.AddEdge(0, 1, 3, 0)
	g.AddEdge(1, 2, 2, 1)
	flow, cut := g.MinCut(0, 2)
	if flow != 2 {
		t.Fatalf("flow = %d, want 2", flow)
	}
	if len(cut) != 1 || cut[0] != 1 {
		t.Fatalf("cut = %v, want [1]", cut)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5, 0)
	g.AddEdge(2, 3, 5, 1)
	flow, cut := g.MinCut(0, 3)
	if flow != 0 || len(cut) != 0 {
		t.Fatalf("flow=%d cut=%v, want 0/empty", flow, cut)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example; known max flow 23.
	g := New(6)
	type e struct{ u, v, c int }
	edges := []e{
		{0, 1, 16}, {0, 2, 13}, {1, 2, 10}, {2, 1, 4},
		{1, 3, 12}, {3, 2, 9}, {2, 4, 14}, {4, 3, 7},
		{3, 5, 20}, {4, 5, 4},
	}
	for i, ed := range edges {
		g.AddEdge(ed.u, ed.v, int64(ed.c), i)
	}
	if flow := g.MaxFlow(0, 5); flow != 23 {
		t.Fatalf("flow = %d, want 23", flow)
	}
}

func TestInfEdgesNeverCut(t *testing.T) {
	// s -inf-> a -1-> b -inf-> t : the only finite cut is the middle edge.
	g := New(4)
	g.AddEdge(0, 1, Inf, 0)
	g.AddEdge(1, 2, 1, 1)
	g.AddEdge(2, 3, Inf, 2)
	flow, cut := g.MinCut(0, 3)
	if flow != 1 {
		t.Fatalf("flow = %d", flow)
	}
	if len(cut) != 1 || cut[0] != 1 {
		t.Fatalf("cut = %v, want the capacity-1 edge", cut)
	}
}

func TestParallelPathsCut(t *testing.T) {
	// Two disjoint s-t paths of RED (cap 1) edges: min cut has 2 edges,
	// one per path.
	g := New(6)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 5, 1, 11)
	g.AddEdge(0, 2, 1, 20)
	g.AddEdge(2, 5, 1, 21)
	flow, cut := g.MinCut(0, 5)
	if flow != 2 {
		t.Fatalf("flow = %d", flow)
	}
	if len(cut) != 2 {
		t.Fatalf("cut = %v", cut)
	}
	sort.Ints(cut)
	if cut[0] >= 20 || cut[1] < 20 {
		t.Fatalf("cut should take one edge from each path, got %v", cut)
	}
}

func TestSourceEqualsSink(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1, 0)
	if f := g.MaxFlow(0, 0); f != 0 {
		t.Fatalf("flow s==t = %d", f)
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []func(){
		func() { New(2).AddEdge(0, 5, 1, 0) },
		func() { New(2).AddEdge(-1, 0, 1, 0) },
		func() { New(2).AddEdge(0, 1, -5, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// cutSeparates verifies that removing the cut edges disconnects s from t.
func cutSeparates(n int, edges [][3]int64, cut []int, s, t int) bool {
	cutSet := map[int]bool{}
	for _, id := range cut {
		cutSet[id] = true
	}
	adj := make([][]int, n)
	for id, e := range edges {
		if cutSet[id] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], int(e[1]))
	}
	seen := make([]bool, n)
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == t {
			return false
		}
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return true
}

// TestRandomCutProperty: on random unit-capacity DAG-ish graphs, the
// returned cut always disconnects s from t and its size equals the
// max-flow value (all caps are 1).
func TestRandomCutProperty(t *testing.T) {
	rng := stats.NewRNG(99)
	err := quick.Check(func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		n := 4 + r.Intn(8)
		g := New(n)
		var edges [][3]int64
		// Layered random edges to keep s-t structure plausible.
		for i := 0; i < 3*n; i++ {
			u := r.Intn(n - 1)
			v := u + 1 + r.Intn(n-u-1)
			id := len(edges)
			g.AddEdge(u, v, 1, id)
			edges = append(edges, [3]int64{int64(u), int64(v), 1})
		}
		flow, cut := g.MinCut(0, n-1)
		if int64(len(cut)) != flow {
			return false
		}
		return cutSeparates(n, edges, cut, 0, n-1)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCutMinimality: brute-force verify on tiny graphs that no smaller
// edge subset disconnects s from t.
func TestCutMinimality(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(3)
		g := New(n)
		var edges [][3]int64
		m := 5 + rng.Intn(4)
		for i := 0; i < m; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			g.AddEdge(u, v, 1, len(edges))
			edges = append(edges, [3]int64{int64(u), int64(v), 1})
		}
		flow, cut := g.MinCut(0, n-1)
		if !cutSeparates(n, edges, cut, 0, n-1) {
			t.Fatalf("trial %d: cut does not separate", trial)
		}
		// Every subset smaller than |cut| must fail to separate.
		k := len(cut)
		if k == 0 {
			continue
		}
		// Enumerate all subsets of edges of size k-1.
		idx := make([]int, len(edges))
		for i := range idx {
			idx[i] = i
		}
		var rec func(start int, chosen []int) bool
		rec = func(start int, chosen []int) bool {
			if len(chosen) == k-1 {
				return cutSeparates(n, edges, chosen, 0, n-1)
			}
			for i := start; i < len(edges); i++ {
				if rec(i+1, append(chosen, i)) {
					return true
				}
			}
			return false
		}
		if rec(0, nil) {
			t.Fatalf("trial %d: found a separating set smaller than min cut (%d, flow %d)", trial, k, flow)
		}
	}
}
