// Package maxflow implements a max-flow / min-cut solver (Dinic's
// algorithm) over small integer-capacity graphs. CDB's cost control
// (Lemma 1, §5.1.1) reduces "which RED edges must be asked" to a
// minimum s-t cut where RED edges have capacity 1 and BLUE edges are
// uncuttable (capacity ∞); this package provides that primitive plus
// extraction of the cut edge set.
package maxflow

import (
	"fmt"
)

// Inf is the capacity used for uncuttable edges. It is large enough
// that any finite cut avoids it, yet small enough that many infinite
// augmenting paths sum without overflowing int64.
const Inf int64 = 1 << 40

// edge is one directed arc in the residual network.
type edge struct {
	to   int
	cap  int64
	flow int64
	id   int // caller-supplied identifier, -1 for reverse arcs
}

// Graph is a flow network under construction. Vertices are dense ints
// [0, n).
type Graph struct {
	n     int
	edges []edge
	adj   [][]int // vertex -> indices into edges
	level []int
	iter  []int
}

// New creates a flow network with n vertices.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.n }

// AddEdge adds a directed edge u->v with the given capacity and a
// caller identifier used when extracting the min cut. It panics on an
// out-of-range vertex — flow graphs here are always built from trusted
// internal indices, so a violation is a programming error.
func (g *Graph) AddEdge(u, v int, capacity int64, id int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	g.adj[u] = append(g.adj[u], len(g.edges))
	g.edges = append(g.edges, edge{to: v, cap: capacity, id: id})
	g.adj[v] = append(g.adj[v], len(g.edges))
	g.edges = append(g.edges, edge{to: u, cap: 0, id: -1})
}

// bfs builds the level graph; returns false when t is unreachable.
func (g *Graph) bfs(s, t int) bool {
	g.level = make([]int, g.n)
	for i := range g.level {
		g.level[i] = -1
	}
	queue := []int{s}
	g.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ei := range g.adj[u] {
			e := g.edges[ei]
			if e.cap-e.flow > 0 && g.level[e.to] < 0 {
				g.level[e.to] = g.level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

// dfs sends blocking flow along the level graph.
func (g *Graph) dfs(u, t int, f int64) int64 {
	if u == t {
		return f
	}
	for ; g.iter[u] < len(g.adj[u]); g.iter[u]++ {
		ei := g.adj[u][g.iter[u]]
		e := &g.edges[ei]
		if e.cap-e.flow <= 0 || g.level[e.to] != g.level[u]+1 {
			continue
		}
		d := g.dfs(e.to, t, min64(f, e.cap-e.flow))
		if d > 0 {
			e.flow += d
			g.edges[ei^1].flow -= d
			return d
		}
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxFlow computes the maximum s-t flow. It may be called once per
// graph; capacities are consumed.
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var flow int64
	for g.bfs(s, t) {
		g.iter = make([]int, g.n)
		for {
			f := g.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

// MinCut computes the max flow and returns (flowValue, cutEdgeIDs):
// the caller IDs of the forward edges crossing from the s-side to the
// t-side of the residual reachability partition. IDs of -1 (reverse
// arcs) never appear. Edges with capacity Inf never appear in a finite
// cut.
func (g *Graph) MinCut(s, t int) (int64, []int) {
	flow := g.MaxFlow(s, t)
	// Vertices reachable from s in the residual graph form the s-side.
	reach := make([]bool, g.n)
	stack := []int{s}
	reach[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range g.adj[u] {
			e := g.edges[ei]
			if e.cap-e.flow > 0 && !reach[e.to] {
				reach[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	var cut []int
	for ei := 0; ei < len(g.edges); ei += 2 { // forward arcs only
		e := g.edges[ei]
		from := g.edges[ei^1].to
		if reach[from] && !reach[e.to] && e.id >= 0 {
			cut = append(cut, e.id)
		}
	}
	return flow, cut
}
