// Package crowd simulates the crowdsourcing platforms CDB deploys to
// (AMT, CrowdFlower, ChinaCrowd). The paper's simulated experiments
// (§6.2) model each worker as a latent accuracy drawn from a Gaussian
// N(q, 0.01); a worker answers a single-choice task correctly with
// that probability and uniformly wrong otherwise. This package
// implements those workers, arrival pools, per-market properties
// (whether the requester controls task assignment, as in AMT's
// developer model), HIT batching/pricing, and a cross-market router.
//
// Algorithms never read a worker's latent accuracy — they only see
// answers, exactly like a real platform.
package crowd

import (
	"fmt"

	"cdb/internal/obs"
	"cdb/internal/stats"
)

// Platform-side metrics: worker arrivals drawn from pools and answers
// produced by simulated workers. The answers:arrivals ratio exposes
// how often CDB+ assignment rejects an arriving worker.
var (
	mArrivals = obs.Default.Counter("cdb_crowd_arrivals_total")
	mAnswers  = obs.Default.Counter("cdb_crowd_answers_total")
)

// TaskType enumerates CDB's four crowd UI templates (§2.1).
type TaskType int

// Task types.
const (
	// SingleChoice asks for one of ℓ options (join/selection tasks are
	// the 2-option "do these match?" case).
	SingleChoice TaskType = iota
	// MultiChoice asks for any subset of ℓ options.
	MultiChoice
	// FillBlank asks for free text (FILL).
	FillBlank
	// Collect asks for new tuples (COLLECT).
	Collect
)

// String implements fmt.Stringer.
func (t TaskType) String() string {
	switch t {
	case SingleChoice:
		return "single-choice"
	case MultiChoice:
		return "multi-choice"
	case FillBlank:
		return "fill-in-blank"
	case Collect:
		return "collection"
	default:
		return fmt.Sprintf("TaskType(%d)", int(t))
	}
}

// Worker is one simulated crowd worker with a latent accuracy.
type Worker struct {
	ID  int
	acc float64
	rng *stats.RNG
}

// LatentAccuracy exposes the hidden accuracy for experiment evaluation
// only; inference algorithms must never call it.
func (w *Worker) LatentAccuracy() float64 { return w.acc }

// AnswerChoice answers a single-choice task with truth ∈ [0, choices):
// correct with probability acc, otherwise uniform over wrong options.
func (w *Worker) AnswerChoice(truth, choices int) int {
	if choices < 2 {
		// A degenerate task with one option is not a crowd answer; it
		// must not inflate cdb_crowd_answers_total.
		return truth
	}
	mAnswers.Inc()
	if w.rng.Bool(w.acc) {
		return truth
	}
	wrong := w.rng.Intn(choices - 1)
	if wrong >= truth {
		wrong++
	}
	return wrong
}

// AnswerBool answers a yes/no task (the join-edge case).
func (w *Worker) AnswerBool(truth bool) bool {
	t := 0
	if truth {
		t = 1
	}
	return w.AnswerChoice(t, 2) == 1
}

// AnswerMulti answers a multi-choice task: each option judged
// independently with the worker's accuracy.
func (w *Worker) AnswerMulti(truth []bool) []bool {
	out := make([]bool, len(truth))
	for i, tv := range truth {
		if w.rng.Bool(w.acc) {
			out[i] = tv
		} else {
			out[i] = !tv
		}
	}
	return out
}

// AnswerFill answers a fill-in-blank task: the truth with probability
// acc, otherwise either a distractor from wrongPool or (if empty) a
// corrupted copy of the truth.
func (w *Worker) AnswerFill(truth string, wrongPool []string) string {
	if w.rng.Bool(w.acc) {
		return truth
	}
	if len(wrongPool) > 0 {
		return stats.Pick(w.rng, wrongPool)
	}
	return corrupt(truth, w.rng)
}

// corrupt applies a crude typo to s so that even pool-less wrong
// answers disagree with the truth.
func corrupt(s string, r *stats.RNG) string {
	if len(s) == 0 {
		return "?"
	}
	b := []byte(s)
	i := r.Intn(len(b))
	b[i] = byte('a' + r.Intn(26))
	return string(b) + "~"
}

// Pool is a population of workers with random arrivals.
type Pool struct {
	workers []*Worker
	rng     *stats.RNG
}

// NewPool creates n workers with latent accuracies drawn from
// N(mean, stddev²) clamped to [0.05, 0.99], the paper's §6.2 protocol
// (stddev 0.1 corresponds to the paper's variance 0.01).
func NewPool(n int, mean, stddev float64, rng *stats.RNG) *Pool {
	p := &Pool{rng: rng}
	for i := 0; i < n; i++ {
		p.workers = append(p.workers, &Worker{
			ID:  i,
			acc: rng.NormClamped(mean, stddev, 0.05, 0.99),
			rng: rng.Split(),
		})
	}
	return p
}

// NewPerfectPool creates n infallible workers (latent accuracy 1).
// Useful as an oracle crowd in tests and cost-only experiments where
// answer noise would obscure the quantity being measured.
func NewPerfectPool(n int, rng *stats.RNG) *Pool {
	p := &Pool{rng: rng}
	for i := 0; i < n; i++ {
		p.workers = append(p.workers, &Worker{ID: i, acc: 1, rng: rng.Split()})
	}
	return p
}

// Size returns the worker count.
func (p *Pool) Size() int { return len(p.workers) }

// Workers returns the worker list (shared; do not mutate).
func (p *Pool) Workers() []*Worker { return p.workers }

// Arrive simulates a worker arriving at the platform: uniformly random
// among the pool.
func (p *Pool) Arrive() *Worker {
	mArrivals.Inc()
	return stats.Pick(p.rng, p.workers)
}

// DistinctArrivals draws k distinct workers (k ≤ Size), modelling a
// HIT that forbids repeat judgements by the same worker.
func (p *Pool) DistinctArrivals(k int) []*Worker {
	if k > len(p.workers) {
		k = len(p.workers)
	}
	perm := p.rng.Perm(len(p.workers))
	out := make([]*Worker, k)
	for i := 0; i < k; i++ {
		out[i] = p.workers[perm[i]]
	}
	mArrivals.Add(int64(k))
	return out
}

// Pricing models HIT batching: the paper packs 10 tasks per HIT at
// $0.1 (§6.3).
type Pricing struct {
	TasksPerHIT int
	PricePerHIT float64
}

// DefaultPricing is the paper's AMT configuration.
var DefaultPricing = Pricing{TasksPerHIT: 10, PricePerHIT: 0.1}

// HITs returns the number of HITs needed for the given number of
// task-assignments.
func (p Pricing) HITs(assignments int) int {
	if p.TasksPerHIT <= 0 || assignments <= 0 {
		return 0
	}
	return (assignments + p.TasksPerHIT - 1) / p.TasksPerHIT
}

// Cost returns the dollar cost for the given number of assignments.
func (p Pricing) Cost(assignments int) float64 {
	return float64(p.HITs(assignments)) * p.PricePerHIT
}

// Market is one crowdsourcing platform instance. AssignControl mirrors
// the AMT developer model (the requester picks which task each
// arriving worker gets); CrowdFlower-style markets route tasks
// round-robin regardless of the requester's wishes (§2.1).
type Market struct {
	Name          string
	AssignControl bool
	Pool          *Pool
	Pricing       Pricing
}

// NewMarket builds a market with the given worker pool.
func NewMarket(name string, assignControl bool, pool *Pool) *Market {
	return &Market{Name: name, AssignControl: assignControl, Pool: pool, Pricing: DefaultPricing}
}

// Router spreads HITs across several markets (the cross-market
// deployment CDB adds over prior systems). Tasks are dealt
// round-robin, weighted by each market's pool size.
type Router struct {
	Markets []*Market
	next    int
}

// NewRouter builds a router over the given markets.
func NewRouter(markets ...*Market) *Router { return &Router{Markets: markets} }

// Route picks the market for the next HIT (simple balanced rotation).
func (r *Router) Route() *Market {
	if len(r.Markets) == 0 {
		return nil
	}
	m := r.Markets[r.next%len(r.Markets)]
	r.next++
	return m
}
