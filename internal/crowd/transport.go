package crowd

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"cdb/internal/faults"
	"cdb/internal/obs"
	"cdb/internal/stats"
)

// Transport metrics: assignments issued to markets and answers actually
// delivered back. issued − delivered ≈ in-flight + injected drops.
var (
	mIssued    = obs.Default.Counter("cdb_transport_assignments_issued_total")
	mDelivered = obs.Default.Counter("cdb_transport_answers_delivered_total")
)

// Tick is the transport's virtual time unit. All deadlines, latencies
// and blackout windows are expressed in ticks; the clock advances only
// when the collector asks for it (Collect), so simulated hours replay
// in microseconds and every timeout decision is deterministic.
type Tick = int64

// TaskSpec is one task handed to the transport for crowdsourcing.
type TaskSpec struct {
	// ID is the caller's task key (the executor uses graph edge ids).
	ID int
	// Attempt distinguishes reissues of the same task; fates and
	// latencies are drawn per (task, attempt, worker).
	Attempt int
	// Truth drives the simulated workers, exactly as in the sync path.
	Truth bool
	// K is the number of worker assignments requested.
	K int
	// Deadline is the absolute tick after which this HIT's answers
	// count as late.
	Deadline Tick
	// IssuedAt is stamped by Issue; callers leave it zero.
	IssuedAt Tick
}

// Answer is one worker answer delivered by the transport.
type Answer struct {
	Task     int
	Attempt  int
	Worker   int
	Market   string
	Value    bool
	Tick     Tick // virtual arrival time
	Late     bool // arrived after its HIT's deadline
	Injected bool // a fault-injected duplicate delivery
}

// TransportConfig configures an async transport.
type TransportConfig struct {
	// Markets are the platforms tasks round-robin across. Required
	// (wrap a single Pool with NewMarket for the one-platform case).
	Markets []*Market
	// Faults optionally injects chaos; nil runs a clean platform.
	Faults *faults.Injector
	// LatencyBase/LatencyJitter model per-assignment completion time:
	// Base + U[0, Jitter) ticks. Defaults 8 + U[0, 16).
	LatencyBase, LatencyJitter int64
	// Seed drives latency draws (hash-keyed per assignment, so draws
	// are scheduling-independent). Defaults to 1.
	Seed uint64
}

// delivery is an answer scheduled for a future tick.
type delivery struct {
	ans Answer
	seq uint64 // issue order, tie-breaks equal ticks deterministically
}

type marketMsg struct {
	// exactly one of specs / advance is meaningful
	specs   []TaskSpec
	advance Tick
	done    chan struct{}
}

type marketState struct {
	m       *Market
	ch      chan marketMsg
	pending []delivery // sorted lazily at advance time
	seq     uint64
}

// Transport is the fault-tolerant asynchronous path between the
// executor and the simulated crowd platforms: tasks go out with Issue,
// answers come back with Collect as virtual time advances. One
// goroutine per market owns that market's pool and pending answers;
// content is deterministic for a fixed seed because fates and
// latencies are hash-keyed per assignment and Collect sorts deliveries
// into virtual-time order before returning them.
//
// Close must be called exactly once; it stops the market goroutines
// (the transport tests assert zero goroutine leaks).
type Transport struct {
	cfg     TransportConfig
	markets []*marketState
	out     chan Answer
	stop    chan struct{}
	wg      sync.WaitGroup
	now     atomic.Int64
	rr      int // round-robin routing cursor (Issue is single-caller)

	closeOnce sync.Once
}

// NewTransport starts the market goroutines. Callers must Close.
func NewTransport(cfg TransportConfig) *Transport {
	if cfg.LatencyBase <= 0 {
		cfg.LatencyBase = 8
	}
	if cfg.LatencyJitter <= 0 {
		cfg.LatencyJitter = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	t := &Transport{
		cfg:  cfg,
		out:  make(chan Answer, 1024),
		stop: make(chan struct{}),
	}
	for _, m := range cfg.Markets {
		ms := &marketState{m: m, ch: make(chan marketMsg)}
		t.markets = append(t.markets, ms)
		t.wg.Add(1)
		go t.marketLoop(ms)
	}
	return t
}

// Now returns the transport's virtual clock.
func (t *Transport) Now() Tick { return t.now.Load() }

// Markets returns the market count.
func (t *Transport) MarketCount() int { return len(t.markets) }

// Issue hands tasks to the platforms, dealing them round-robin across
// markets. It stamps IssuedAt with the current virtual time and returns
// the market name each task went to, aligned with specs. Issue and
// Collect must be called from one goroutine (the executor's).
func (t *Transport) Issue(specs []TaskSpec) []string {
	if len(t.markets) == 0 || len(specs) == 0 {
		return nil
	}
	now := t.Now()
	routed := make([]string, len(specs))
	perMarket := make([][]TaskSpec, len(t.markets))
	for i, s := range specs {
		s.IssuedAt = now
		mi := t.rr % len(t.markets)
		t.rr++
		perMarket[mi] = append(perMarket[mi], s)
		routed[i] = t.markets[mi].m.Name
		mIssued.Add(int64(s.K))
	}
	for mi, batch := range perMarket {
		if len(batch) == 0 {
			continue
		}
		select {
		case t.markets[mi].ch <- marketMsg{specs: batch}:
		case <-t.stop:
			return routed
		}
	}
	return routed
}

// Collect advances virtual time to `until` and returns every answer
// that arrives by then, sorted into deterministic virtual-time order.
// It returns early with ctx.Err() when the context is cancelled; the
// clock still advances, and undelivered answers stay queued for a
// later Collect (or are discarded by Close).
func (t *Transport) Collect(ctx context.Context, until Tick) ([]Answer, error) {
	if until < t.Now() {
		until = t.Now()
	}
	t.now.Store(until)
	done := make(chan struct{}, len(t.markets))
	var got []Answer
	acks := 0
	// Hand the advance order to every market, staying receptive to
	// deliveries so a market blocked on a full out-channel cannot
	// deadlock the handshake.
	for mi := 0; mi < len(t.markets); {
		select {
		case t.markets[mi].ch <- marketMsg{advance: until, done: done}:
			mi++
		case a := <-t.out:
			got = append(got, a)
		case <-done:
			acks++
		case <-ctx.Done():
			return sortAnswers(got), ctx.Err()
		case <-t.stop:
			return sortAnswers(got), nil
		}
	}
	// A market sends all its due deliveries before acking, so once all
	// acks are in, the remaining answers sit in the out buffer.
	for acks < len(t.markets) {
		select {
		case a := <-t.out:
			got = append(got, a)
		case <-done:
			acks++
		case <-ctx.Done():
			return sortAnswers(got), ctx.Err()
		case <-t.stop:
			return sortAnswers(got), nil
		}
	}
	for {
		select {
		case a := <-t.out:
			got = append(got, a)
		default:
			return sortAnswers(got), nil
		}
	}
}

// sortAnswers orders deliveries by virtual arrival, then by stable task
// identity, erasing any cross-market channel interleaving so a chaos
// run's observable answer stream is deterministic.
func sortAnswers(got []Answer) []Answer {
	sort.Slice(got, func(i, j int) bool {
		a, b := got[i], got[j]
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		if a.Market != b.Market {
			return a.Market < b.Market
		}
		return !a.Injected && b.Injected
	})
	return got
}

// Close stops the market goroutines and waits for them; pending
// undelivered answers are discarded. Safe to call more than once.
func (t *Transport) Close() {
	t.closeOnce.Do(func() {
		close(t.stop)
	})
	t.wg.Wait()
}

func (t *Transport) marketLoop(ms *marketState) {
	defer t.wg.Done()
	for {
		select {
		case <-t.stop:
			return
		case msg := <-ms.ch:
			if msg.specs != nil {
				for _, s := range msg.specs {
					t.work(ms, s)
				}
				continue
			}
			if !t.deliverDue(ms, msg.advance) {
				return // stopped mid-delivery
			}
			select {
			case msg.done <- struct{}{}:
			case <-t.stop:
				return
			}
		}
	}
}

// work simulates one HIT on this market: draw K distinct workers, have
// each answer, apply the fault injector's ruling, and schedule the
// deliveries. Runs on the market goroutine, which exclusively owns the
// market's pool (and therefore its RNG streams).
func (t *Transport) work(ms *marketState, s TaskSpec) {
	inj := t.cfg.Faults
	workers := ms.m.Pool.DistinctArrivals(s.K)
	for _, w := range workers {
		fate := inj.Judge(ms.m.Name, s.ID, s.Attempt, w.ID)
		value := w.AnswerBool(s.Truth)
		if fate.Drop {
			continue // the worker abandoned the HIT; the draw is still paid for realism of streams
		}
		if fate.Corrupt {
			value = fate.CorruptValue
		}
		lr := stats.HashRNG(t.cfg.Seed, stats.HashString(ms.m.Name),
			uint64(s.ID), uint64(s.Attempt), uint64(w.ID))
		tick := s.IssuedAt + t.cfg.LatencyBase + int64(lr.Intn(int(t.cfg.LatencyJitter)))
		if fate.Straggle {
			// Stragglers land strictly past the HIT deadline, by up to
			// another full latency window.
			tick = s.Deadline + 1 + int64(lr.Intn(int(t.cfg.LatencyBase+t.cfg.LatencyJitter)))
		}
		tick = inj.DelayForBlackout(ms.m.Name, tick)
		ans := Answer{
			Task:    s.ID,
			Attempt: s.Attempt,
			Worker:  w.ID,
			Market:  ms.m.Name,
			Value:   value,
			Tick:    tick,
			Late:    tick > s.Deadline,
		}
		ms.seq++
		ms.pending = append(ms.pending, delivery{ans: ans, seq: ms.seq})
		if fate.Duplicate {
			dup := ans
			dup.Tick = inj.DelayForBlackout(ms.m.Name, tick+1+int64(lr.Intn(int(t.cfg.LatencyJitter))))
			dup.Late = dup.Tick > s.Deadline
			dup.Injected = true
			ms.seq++
			ms.pending = append(ms.pending, delivery{ans: dup, seq: ms.seq})
		}
	}
}

// deliverDue sends every pending answer with tick ≤ until on the out
// channel, in (tick, seq) order. Returns false if the transport stopped.
func (t *Transport) deliverDue(ms *marketState, until Tick) bool {
	sort.Slice(ms.pending, func(i, j int) bool {
		if ms.pending[i].ans.Tick != ms.pending[j].ans.Tick {
			return ms.pending[i].ans.Tick < ms.pending[j].ans.Tick
		}
		return ms.pending[i].seq < ms.pending[j].seq
	})
	n := 0
	for n < len(ms.pending) && ms.pending[n].ans.Tick <= until {
		n++
	}
	for i := 0; i < n; i++ {
		select {
		case t.out <- ms.pending[i].ans:
			mDelivered.Inc()
		case <-t.stop:
			return false
		}
	}
	ms.pending = append(ms.pending[:0], ms.pending[n:]...)
	return true
}
