package crowd

import "cdb/internal/stats"

// PureVerdict computes the deterministic crowd verdict for one task as
// a pure function of (seed, key, k) over the pool's latent worker
// accuracies: which k distinct workers answer and whether each answers
// correctly are drawn from a hash-seeded RNG, so the same task asked by
// any caller — in any order, interleaved with any other work — yields
// the same verdict. This is what makes task-level sharing and join
// reordering answer-preserving: the serving engine's coalescer and the
// planner's pure resolver both route through it.
//
// k is the requested redundancy (it keys the RNG even when clamped to
// the pool size). Returns the majority value, its confidence (the
// agreeing fraction), and the assignments actually drawn. A pool with
// no workers falls back to the optimizer's prior at confidence 0.5
// with zero assignments.
func PureVerdict(seed uint64, pool *Pool, key string, truth bool, prior float64, k int) (value bool, conf float64, assignments int) {
	workers := pool.Workers()
	n := k
	if n > len(workers) {
		n = len(workers)
	}
	if n <= 0 {
		return prior >= 0.5, 0.5, 0
	}
	r := stats.HashRNG(seed, stats.HashString(key), uint64(k))
	idx := make([]int, len(workers))
	for i := range idx {
		idx[i] = i
	}
	yes := 0
	for i := 0; i < n; i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		w := workers[idx[i]]
		ans := truth
		if r.Float64() >= w.LatentAccuracy() {
			ans = !ans
		}
		if ans {
			yes++
		}
	}
	value = 2*yes > n
	conf = float64(yes) / float64(n)
	if !value {
		conf = 1 - conf
	}
	return value, conf, n
}
