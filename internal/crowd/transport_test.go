package crowd

import (
	"context"
	"testing"

	"cdb/internal/faults"
	"cdb/internal/stats"
	"cdb/internal/testutil"
)

func testTransport(seed uint64, inj *faults.Injector, nMarkets int) *Transport {
	rng := stats.NewRNG(seed)
	var markets []*Market
	names := []string{"amt", "crowdflower", "chinacrowd"}
	for i := 0; i < nMarkets; i++ {
		markets = append(markets, NewMarket(names[i], true, NewPool(20, 0.85, 0.1, rng.Split())))
	}
	return NewTransport(TransportConfig{Markets: markets, Faults: inj, Seed: seed})
}

func issueRound(t *Transport, n, k int, deadline Tick) []TaskSpec {
	specs := make([]TaskSpec, n)
	for i := range specs {
		specs[i] = TaskSpec{ID: i, Truth: i%2 == 0, K: k, Deadline: deadline}
	}
	t.Issue(specs)
	return specs
}

// TestTransportCleanDelivery: with no faults every assignment arrives
// before a deadline larger than the worst-case latency, none late.
func TestTransportCleanDelivery(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	tp := testTransport(1, nil, 2)
	defer tp.Close()

	issueRound(tp, 10, 5, 100)
	ans, err := tp.Collect(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 50 {
		t.Fatalf("delivered %d answers, want 50", len(ans))
	}
	perTask := map[int]int{}
	for _, a := range ans {
		if a.Late {
			t.Fatalf("clean transport delivered late answer %+v", a)
		}
		perTask[a.Task]++
	}
	for task, n := range perTask {
		if n != 5 {
			t.Fatalf("task %d got %d answers, want 5", task, n)
		}
	}
	if tp.Now() != 100 {
		t.Fatalf("clock = %d, want 100", tp.Now())
	}
}

// TestTransportDeterministic: two transports with identical seeds and
// fault configs produce identical answer streams, even across repeated
// runs with different goroutine interleavings.
func TestTransportDeterministic(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	run := func() []Answer {
		inj := faults.New(faults.Config{Seed: 5, DropRate: 0.1, StragglerRate: 0.2, DuplicateRate: 0.1, CorruptRate: 0.05})
		tp := testTransport(3, inj, 3)
		defer tp.Close()
		issueRound(tp, 20, 5, 40)
		a1, err := tp.Collect(context.Background(), 40)
		if err != nil {
			t.Fatal(err)
		}
		// A second window catches the stragglers.
		a2, err := tp.Collect(context.Background(), 400)
		if err != nil {
			t.Fatal(err)
		}
		return append(a1, a2...)
	}
	want := run()
	for trial := 0; trial < 3; trial++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d answers vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: answer %d differs: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestTransportFaults: drops reduce delivery count, stragglers arrive
// late in a later window, duplicates repeat (task, worker) pairs.
func TestTransportFaults(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	inj := faults.New(faults.Config{Seed: 11, DropRate: 0.3, StragglerRate: 0.3, DuplicateRate: 0.2})
	tp := testTransport(2, inj, 2)
	defer tp.Close()

	issueRound(tp, 40, 5, 40)
	onTime, err := tp.Collect(context.Background(), 40)
	if err != nil {
		t.Fatal(err)
	}
	late, err := tp.Collect(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	s := inj.Stats()
	if s.Dropped == 0 || s.Straggled == 0 || s.Duplicated == 0 {
		t.Fatalf("expected all fault kinds injected, got %v", s)
	}
	total := len(onTime) + len(late)
	want := 40*5 - int(s.Dropped) + int(s.Duplicated)
	if total != want {
		t.Fatalf("delivered %d answers, want %d (200 - %d dropped + %d duplicated)",
			total, want, s.Dropped, s.Duplicated)
	}
	if len(late) == 0 {
		t.Fatal("no stragglers delivered in the late window")
	}
	for _, a := range late {
		if !a.Late {
			t.Fatalf("answer in late window not marked late: %+v", a)
		}
	}
	dups := 0
	for _, a := range append(onTime, late...) {
		if a.Injected {
			dups++
		}
	}
	if dups != int(s.Duplicated) {
		t.Fatalf("marked duplicates %d, injected %d", dups, s.Duplicated)
	}
}

// TestTransportBlackout: a market-wide outage holds that market's
// answers until the window ends; the other market is unaffected.
func TestTransportBlackout(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	inj := faults.New(faults.Config{Blackouts: []faults.Blackout{{Market: "amt", From: 0, Until: 500}}})
	tp := testTransport(2, inj, 2)
	defer tp.Close()

	issueRound(tp, 20, 3, 100)
	during, err := tp.Collect(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range during {
		if a.Market == "amt" {
			t.Fatalf("blacked-out market delivered during outage: %+v", a)
		}
	}
	after, err := tp.Collect(context.Background(), 600)
	if err != nil {
		t.Fatal(err)
	}
	amt := 0
	for _, a := range after {
		if a.Market == "amt" {
			amt++
			if a.Tick < 500 {
				t.Fatalf("amt answer before blackout end: %+v", a)
			}
		}
	}
	if amt == 0 {
		t.Fatal("blacked-out market never recovered")
	}
	if len(during)+len(after) != 60 {
		t.Fatalf("total delivered %d, want 60", len(during)+len(after))
	}
}

// TestTransportCancellation: a cancelled context aborts Collect
// promptly, and Close still tears every goroutine down.
func TestTransportCancellation(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	tp := testTransport(7, nil, 3)
	defer tp.Close()

	issueRound(tp, 10, 5, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tp.Collect(ctx, 100); err != context.Canceled {
		t.Fatalf("Collect err = %v, want context.Canceled", err)
	}
	// The transport survives a cancelled collect: a fresh context
	// drains the queued answers.
	ans, err := tp.Collect(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) == 0 {
		t.Fatal("no answers after re-collect")
	}
}

// TestTransportCloseWithPending: Close with undelivered answers must
// not deadlock or leak (market goroutines may be blocked mid-send).
func TestTransportCloseWithPending(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	for trial := 0; trial < 5; trial++ {
		tp := testTransport(uint64(trial+1), nil, 3)
		issueRound(tp, 300, 5, 100) // >1024 answers: out buffer will fill
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		tp.Collect(ctx, 100)
		tp.Close()
	}
}

// TestAnswerChoiceDegenerateNotCounted pins the metric fix: a task
// with fewer than two options is an auto-answer, not a crowd answer.
func TestAnswerChoiceDegenerateNotCounted(t *testing.T) {
	pool := NewPool(1, 0.9, 0.05, stats.NewRNG(1))
	w := pool.Workers()[0]
	before := mAnswers.Value()
	if got := w.AnswerChoice(0, 1); got != 0 {
		t.Fatalf("degenerate AnswerChoice = %d, want 0", got)
	}
	if mAnswers.Value() != before {
		t.Fatal("degenerate AnswerChoice incremented cdb_crowd_answers_total")
	}
	w.AnswerChoice(0, 2)
	if mAnswers.Value() != before+1 {
		t.Fatal("real AnswerChoice did not increment cdb_crowd_answers_total")
	}
}
