package crowd

import (
	"math"
	"testing"

	"cdb/internal/stats"
)

func TestPoolAccuracyDistribution(t *testing.T) {
	rng := stats.NewRNG(1)
	p := NewPool(5000, 0.8, 0.1, rng)
	if p.Size() != 5000 {
		t.Fatalf("size = %d", p.Size())
	}
	var sum float64
	for _, w := range p.Workers() {
		a := w.LatentAccuracy()
		if a < 0.05 || a > 0.99 {
			t.Fatalf("accuracy out of clamp: %v", a)
		}
		sum += a
	}
	mean := sum / 5000
	if math.Abs(mean-0.8) > 0.01 {
		t.Fatalf("mean accuracy = %v, want ~0.8", mean)
	}
}

func TestWorkerAnswerChoiceAccuracy(t *testing.T) {
	rng := stats.NewRNG(2)
	p := NewPool(1, 0.8, 0, rng)
	w := p.Workers()[0]
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if w.AnswerChoice(1, 2) == 1 {
			correct++
		}
	}
	rate := float64(correct) / n
	if math.Abs(rate-w.LatentAccuracy()) > 0.02 {
		t.Fatalf("empirical accuracy %v vs latent %v", rate, w.LatentAccuracy())
	}
}

func TestWorkerAnswerChoiceWrongAnswersUniform(t *testing.T) {
	rng := stats.NewRNG(3)
	p := NewPool(1, 0.5, 0, rng)
	w := p.Workers()[0]
	counts := map[int]int{}
	for i := 0; i < 30000; i++ {
		counts[w.AnswerChoice(0, 4)]++
	}
	// Wrong options 1..3 should be roughly equally likely.
	for c := 1; c <= 3; c++ {
		if counts[c] < 3500 || counts[c] > 6500 {
			t.Fatalf("wrong option %d chosen %d times: not uniform (%v)", c, counts[c], counts)
		}
	}
	// Degenerate: single choice always returns truth.
	if w.AnswerChoice(0, 1) != 0 {
		t.Fatal("single-option task must return the truth")
	}
}

func TestWorkerAnswerBool(t *testing.T) {
	rng := stats.NewRNG(4)
	p := NewPool(1, 0.99, 0, rng)
	w := p.Workers()[0]
	agree := 0
	for i := 0; i < 1000; i++ {
		if w.AnswerBool(true) {
			agree++
		}
	}
	if agree < 950 {
		t.Fatalf("high-accuracy worker agreed only %d/1000", agree)
	}
}

func TestWorkerAnswerMulti(t *testing.T) {
	rng := stats.NewRNG(5)
	p := NewPool(1, 0.95, 0, rng)
	w := p.Workers()[0]
	truth := []bool{true, false, true, false}
	correctBits := 0
	for i := 0; i < 1000; i++ {
		got := w.AnswerMulti(truth)
		for j := range truth {
			if got[j] == truth[j] {
				correctBits++
			}
		}
	}
	if rate := float64(correctBits) / 4000; rate < 0.9 {
		t.Fatalf("multi-choice per-bit accuracy = %v", rate)
	}
}

func TestWorkerAnswerFill(t *testing.T) {
	rng := stats.NewRNG(6)
	p := NewPool(1, 0.7, 0, rng)
	w := p.Workers()[0]
	truthCount := 0
	for i := 0; i < 2000; i++ {
		got := w.AnswerFill("boston", []string{"austin", "denver"})
		switch got {
		case "boston":
			truthCount++
		case "austin", "denver":
		default:
			t.Fatalf("unexpected fill answer %q", got)
		}
	}
	if rate := float64(truthCount) / 2000; math.Abs(rate-0.7) > 0.05 {
		t.Fatalf("truth rate = %v", rate)
	}
	// Empty wrong pool: corrupted truth, never equal to truth.
	sawCorrupt := false
	for i := 0; i < 200; i++ {
		if got := w.AnswerFill("xy", nil); got != "xy" {
			sawCorrupt = true
			if got == "" {
				t.Fatal("corrupted answer should be non-empty")
			}
		}
	}
	if !sawCorrupt {
		t.Fatal("worker with 0.7 accuracy never corrupted in 200 tries")
	}
}

func TestDistinctArrivals(t *testing.T) {
	rng := stats.NewRNG(7)
	p := NewPool(10, 0.8, 0.1, rng)
	ws := p.DistinctArrivals(5)
	if len(ws) != 5 {
		t.Fatalf("got %d workers", len(ws))
	}
	seen := map[int]bool{}
	for _, w := range ws {
		if seen[w.ID] {
			t.Fatal("duplicate worker in distinct arrivals")
		}
		seen[w.ID] = true
	}
	// Requesting more than the pool size caps at the pool.
	if got := p.DistinctArrivals(99); len(got) != 10 {
		t.Fatalf("capped arrivals = %d", len(got))
	}
}

func TestArrive(t *testing.T) {
	rng := stats.NewRNG(8)
	p := NewPool(3, 0.8, 0.1, rng)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[p.Arrive().ID] = true
	}
	if len(seen) != 3 {
		t.Fatalf("arrivals covered %d/3 workers", len(seen))
	}
}

func TestPricing(t *testing.T) {
	pr := DefaultPricing
	if pr.HITs(0) != 0 || pr.HITs(-5) != 0 {
		t.Fatal("non-positive assignments should cost nothing")
	}
	if pr.HITs(10) != 1 || pr.HITs(11) != 2 || pr.HITs(25) != 3 {
		t.Fatal("HIT rounding broken")
	}
	if math.Abs(pr.Cost(25)-0.3) > 1e-12 {
		t.Fatalf("cost = %v", pr.Cost(25))
	}
	zero := Pricing{}
	if zero.HITs(100) != 0 {
		t.Fatal("zero pricing should yield zero HITs")
	}
}

func TestRouter(t *testing.T) {
	rng := stats.NewRNG(9)
	amt := NewMarket("AMT", true, NewPool(5, 0.9, 0.05, rng))
	cf := NewMarket("CrowdFlower", false, NewPool(5, 0.8, 0.1, rng))
	r := NewRouter(amt, cf)
	first := r.Route()
	second := r.Route()
	third := r.Route()
	if first != amt || second != cf || third != amt {
		t.Fatal("router rotation broken")
	}
	if !amt.AssignControl || cf.AssignControl {
		t.Fatal("assignment-control flags wrong")
	}
	empty := NewRouter()
	if empty.Route() != nil {
		t.Fatal("empty router should return nil")
	}
}

func TestTaskTypeString(t *testing.T) {
	want := map[TaskType]string{
		SingleChoice: "single-choice",
		MultiChoice:  "multi-choice",
		FillBlank:    "fill-in-blank",
		Collect:      "collection",
		TaskType(9):  "TaskType(9)",
	}
	for k, v := range want {
		if k.String() != v {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), v)
		}
	}
}

func TestDeterministicPools(t *testing.T) {
	a := NewPool(20, 0.8, 0.1, stats.NewRNG(42))
	b := NewPool(20, 0.8, 0.1, stats.NewRNG(42))
	for i := range a.Workers() {
		if a.Workers()[i].LatentAccuracy() != b.Workers()[i].LatentAccuracy() {
			t.Fatal("pools from equal seeds differ")
		}
	}
}
