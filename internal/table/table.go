// Package table implements the relational substrate underneath CDB:
// schemas with crowd-annotated columns, typed values (including the
// CNULL marker for cells the crowd must fill), in-memory relations,
// CSV import/export, and a catalog that CQL statements resolve
// against. The paper's graph query model addresses tuples as
// (table, row index) pairs; TupleRef captures that.
package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the value types CQL columns can carry.
type Kind int

const (
	// String is a varchar column.
	String Kind = iota
	// Int is a 64-bit integer column.
	Int
	// Float is a 64-bit float column.
	Float
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single cell. Null distinguishes the paper's CNULL (an
// attribute value that must be crowdsourced via FILL) from an actual
// value.
type Value struct {
	Kind Kind
	Null bool // CNULL: to be filled by the crowd
	S    string
	I    int64
	F    float64
}

// S returns a string Value.
func SV(s string) Value { return Value{Kind: String, S: s} }

// IV returns an integer Value.
func IV(i int64) Value { return Value{Kind: Int, I: i} }

// FV returns a float Value.
func FV(f float64) Value { return Value{Kind: Float, F: f} }

// CNull returns the crowd-null marker for a column of the given kind.
func CNull(k Kind) Value { return Value{Kind: k, Null: true} }

// String renders the value; CNULL renders as the paper's keyword.
func (v Value) String() string {
	if v.Null {
		return "CNULL"
	}
	switch v.Kind {
	case String:
		return v.S
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return "?"
	}
}

// Equal reports deep equality of two values (CNULL equals CNULL of the
// same kind).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind || v.Null != o.Null {
		return false
	}
	if v.Null {
		return true
	}
	switch v.Kind {
	case String:
		return v.S == o.S
	case Int:
		return v.I == o.I
	default:
		return v.F == o.F
	}
}

// Column describes one attribute of a table. Crowd marks columns
// declared with the CROWD keyword whose missing values may be FILLed.
type Column struct {
	Name  string
	Kind  Kind
	Crowd bool
}

// Schema is an ordered list of columns plus the table name. CrowdTable
// marks tables declared CREATE CROWD TABLE, whose rows may be
// COLLECTed under the open-world assumption.
type Schema struct {
	Name       string
	Columns    []Column
	CrowdTable bool
}

// ColIndex returns the position of the named column (case-insensitive)
// or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex that panics on a missing column; for use in
// generators and tests where the schema is static.
func (s *Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("table %s: no column %q", s.Name, name))
	}
	return i
}

// Tuple is one row; len(Tuple) always equals len(Schema.Columns).
type Tuple []Value

// Table is an in-memory relation.
type Table struct {
	Schema Schema
	Rows   []Tuple
}

// New creates an empty table with the given schema.
func New(schema Schema) *Table { return &Table{Schema: schema} }

// Append validates and adds a row.
func (t *Table) Append(row Tuple) error {
	if len(row) != len(t.Schema.Columns) {
		return fmt.Errorf("table %s: row arity %d, want %d", t.Schema.Name, len(row), len(t.Schema.Columns))
	}
	for i, v := range row {
		if v.Kind != t.Schema.Columns[i].Kind {
			return fmt.Errorf("table %s: column %s: kind %v, want %v",
				t.Schema.Name, t.Schema.Columns[i].Name, v.Kind, t.Schema.Columns[i].Kind)
		}
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// MustAppend is Append that panics; for static data in tests and the
// embedded running example.
func (t *Table) MustAppend(row Tuple) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Cell returns the value at (row, col).
func (t *Table) Cell(row, col int) Value { return t.Rows[row][col] }

// TupleRef addresses one tuple of one table — the vertex identity of
// the paper's graph query model.
type TupleRef struct {
	Table string
	Row   int
}

// String renders e.g. "Paper#3".
func (r TupleRef) String() string { return fmt.Sprintf("%s#%d", r.Table, r.Row) }

// ErrUnknownTable marks a reference to a table the catalog does not
// hold. Every layer that resolves table names wraps it — catalog
// lookups in the public API, FROM-clause binding in the planner — so
// callers can errors.Is instead of string-matching, and an HTTP
// front-end can map it to a status code.
var ErrUnknownTable = errors.New("unknown table")

// Catalog maps table names (case-insensitive) to tables. It is the
// metadata store that CQL resolves against.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: map[string]*Table{}} }

// Register adds or replaces a table. The name key is the schema name
// lower-cased.
func (c *Catalog) Register(t *Table) {
	c.tables[strings.ToLower(t.Schema.Name)] = t
}

// Get looks a table up by name (case-insensitive).
func (c *Catalog) Get(name string) (*Table, bool) {
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// MustGet is Get that panics on a missing table.
func (c *Catalog) MustGet(name string) *Table {
	t, ok := c.Get(name)
	if !ok {
		panic(fmt.Sprintf("catalog: no table %q", name))
	}
	return t
}

// Names returns the registered table names, sorted, in their original
// schema casing.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Schema.Name)
	}
	sort.Strings(out)
	return out
}

// Len reports how many tables are registered.
func (c *Catalog) Len() int { return len(c.tables) }

// WriteCSV writes the table (header row first) to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Schema.Columns))
	for i, c := range t.Schema.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	rec := make([]string, len(header))
	for _, row := range t.Rows {
		for i, v := range row {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads rows (header first) into a table with the given
// schema; values are parsed per column kind and "CNULL" becomes the
// crowd-null marker.
func ReadCSV(schema Schema, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("read csv: missing header")
	}
	if len(records[0]) != len(schema.Columns) {
		return nil, fmt.Errorf("read csv: header arity %d, want %d", len(records[0]), len(schema.Columns))
	}
	t := New(schema)
	for rowIdx, rec := range records[1:] {
		row := make(Tuple, len(rec))
		for i, field := range rec {
			v, err := ParseValue(schema.Columns[i].Kind, field)
			if err != nil {
				return nil, fmt.Errorf("row %d col %s: %w", rowIdx+1, schema.Columns[i].Name, err)
			}
			row[i] = v
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ParseValue parses a textual field into a Value of the given kind.
func ParseValue(k Kind, field string) (Value, error) {
	if field == "CNULL" {
		return CNull(k), nil
	}
	switch k {
	case String:
		return SV(field), nil
	case Int:
		i, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse int %q: %w", field, err)
		}
		return IV(i), nil
	case Float:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse float %q: %w", field, err)
		}
		return FV(f), nil
	default:
		return Value{}, fmt.Errorf("unknown kind %v", k)
	}
}
