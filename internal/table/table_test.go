package table

import (
	"bytes"
	"strings"
	"testing"
)

func demoSchema() Schema {
	return Schema{
		Name: "Paper",
		Columns: []Column{
			{Name: "author", Kind: String},
			{Name: "title", Kind: String},
			{Name: "year", Kind: Int},
			{Name: "score", Kind: Float, Crowd: true},
		},
	}
}

func TestAppendAndCell(t *testing.T) {
	tb := New(demoSchema())
	tb.MustAppend(Tuple{SV("a"), SV("t"), IV(2017), FV(0.5)})
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	if got := tb.Cell(0, 2); got.I != 2017 {
		t.Fatalf("cell = %v", got)
	}
}

func TestAppendArityError(t *testing.T) {
	tb := New(demoSchema())
	if err := tb.Append(Tuple{SV("a")}); err == nil {
		t.Fatal("want arity error")
	}
}

func TestAppendKindError(t *testing.T) {
	tb := New(demoSchema())
	if err := tb.Append(Tuple{SV("a"), SV("t"), SV("not-int"), FV(1)}); err == nil {
		t.Fatal("want kind error")
	}
}

func TestColIndexCaseInsensitive(t *testing.T) {
	s := demoSchema()
	if s.ColIndex("TITLE") != 1 {
		t.Fatal("ColIndex should be case-insensitive")
	}
	if s.ColIndex("nope") != -1 {
		t.Fatal("missing column should be -1")
	}
}

func TestMustColIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := demoSchema()
	s.MustColIndex("ghost")
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{SV("x"), "x"},
		{IV(-3), "-3"},
		{FV(2.5), "2.5"},
		{CNull(String), "CNULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !SV("a").Equal(SV("a")) || SV("a").Equal(SV("b")) {
		t.Fatal("string equality broken")
	}
	if !CNull(String).Equal(CNull(String)) {
		t.Fatal("CNULL should equal CNULL of same kind")
	}
	if CNull(String).Equal(CNull(Int)) {
		t.Fatal("CNULL of different kinds should differ")
	}
	if SV("a").Equal(IV(1)) {
		t.Fatal("cross-kind equality")
	}
	if !IV(5).Equal(IV(5)) || IV(5).Equal(IV(6)) {
		t.Fatal("int equality broken")
	}
	if !FV(1.5).Equal(FV(1.5)) || FV(1.5).Equal(FV(2.5)) {
		t.Fatal("float equality broken")
	}
	if SV("a").Equal(Value{Kind: String, Null: true, S: "a"}) {
		t.Fatal("null flag should participate in equality")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tb := New(demoSchema())
	c.Register(tb)
	if got, ok := c.Get("paper"); !ok || got != tb {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := c.Get("ghost"); ok {
		t.Fatal("ghost table found")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "Paper" {
		t.Fatalf("names = %v", names)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCatalog().MustGet("ghost")
}

func TestCSVRoundTrip(t *testing.T) {
	tb := New(demoSchema())
	tb.MustAppend(Tuple{SV("alice"), SV("Title, with comma"), IV(2017), FV(0.25)})
	tb.MustAppend(Tuple{SV("bob"), SV("x"), IV(2018), CNull(Float)})
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(demoSchema(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip len = %d", got.Len())
	}
	for i := range tb.Rows {
		for j := range tb.Rows[i] {
			if !tb.Rows[i][j].Equal(got.Rows[i][j]) {
				t.Fatalf("cell (%d,%d) mismatch: %v vs %v", i, j, tb.Rows[i][j], got.Rows[i][j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(demoSchema(), strings.NewReader("")); err == nil {
		t.Fatal("want missing-header error")
	}
	if _, err := ReadCSV(demoSchema(), strings.NewReader("a,b\n")); err == nil {
		t.Fatal("want header-arity error")
	}
	bad := "author,title,year,score\na,t,notanint,0.5\n"
	if _, err := ReadCSV(demoSchema(), strings.NewReader(bad)); err == nil {
		t.Fatal("want int parse error")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(Int, "42")
	if err != nil || v.I != 42 {
		t.Fatalf("ParseValue int: %v %v", v, err)
	}
	v, err = ParseValue(Float, "1.5")
	if err != nil || v.F != 1.5 {
		t.Fatalf("ParseValue float: %v %v", v, err)
	}
	v, err = ParseValue(String, "CNULL")
	if err != nil || !v.Null {
		t.Fatalf("ParseValue CNULL: %v %v", v, err)
	}
	if _, err := ParseValue(Float, "zzz"); err == nil {
		t.Fatal("want float parse error")
	}
}

func TestTupleRefString(t *testing.T) {
	r := TupleRef{Table: "Paper", Row: 3}
	if r.String() != "Paper#3" {
		t.Fatalf("got %q", r.String())
	}
}

func TestKindString(t *testing.T) {
	if String.String() != "string" || Int.String() != "int" || Float.String() != "float" {
		t.Fatal("Kind.String broken")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind rendering broken")
	}
}
