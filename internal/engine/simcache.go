package engine

import (
	"sync"
	"sync/atomic"

	"cdb/internal/obs"
	"cdb/internal/sim"
	"cdb/internal/stats"
)

// Similarity-cache metrics (process-wide, across all engines).
var (
	mJoinComputed = obs.Default.Counter("cdb_engine_joins_computed_total")
	mJoinShared   = obs.Default.Counter("cdb_engine_joins_shared_total")
)

// joinCache shares similarity-join work across concurrent queries.
// Planning a CROWDJOIN runs a prefix-filtered similarity join over the
// two column extents — by far the most expensive CPU step of admission
// — and overlapping queries over the same tables repeat it verbatim.
// The cache keys joins by (sim func, epsilon, column contents) with
// single-flight semantics: the first query computes, concurrent
// duplicates wait for that result, later ones reuse it directly.
//
// All joins intern their tokens into one session-level sim.Dict, so
// even distinct joins over overlapping vocabularies skip re-hashing
// common tokens. Join output is invariant to dictionary contents (the
// prefix filter is correct under any consistent token order), so a
// shared dict cannot change results.
//
// Entries hold the result pairs plus the key columns (for collision
// verification) for the engine's lifetime; the universe of table
// pairs is small, so no eviction is needed.
type joinCache struct {
	dict *sim.Dict

	mu      sync.Mutex
	entries map[joinKey]*joinEntry

	computed atomic.Int64 // joins actually executed
	shared   atomic.Int64 // joins served from the cache
}

type joinKey struct {
	f         sim.Func
	eps       float64
	leftHash  uint64
	rightHash uint64
	leftN     int
	rightN    int
}

type joinEntry struct {
	done        chan struct{}
	left, right []string // retained to verify against hash collisions
	pairs       []sim.Pair
}

func newJoinCache() *joinCache {
	return &joinCache{dict: sim.NewDict(), entries: make(map[joinKey]*joinEntry)}
}

// Join matches exec.PlanConfig.Joiner. The returned slice is shared
// between queries; BuildPlan only iterates it.
func (c *joinCache) Join(f sim.Func, left, right []string, eps float64) []sim.Pair {
	key := joinKey{
		f: f, eps: eps,
		leftHash: hashColumn(left), rightHash: hashColumn(right),
		leftN: len(left), rightN: len(right),
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		if sameStrings(e.left, left) && sameStrings(e.right, right) {
			c.shared.Add(1)
			mJoinShared.Inc()
			return e.pairs
		}
		// Hash collision (distinct contents, equal key): compute
		// privately rather than poison the cache.
		return sim.JoinDict(f, left, right, eps, c.dict)
	}
	e := &joinEntry{done: make(chan struct{}), left: left, right: right}
	c.entries[key] = e
	c.mu.Unlock()

	e.pairs = sim.JoinDict(f, left, right, eps, c.dict)
	c.computed.Add(1)
	mJoinComputed.Inc()
	close(e.done)
	return e.pairs
}

// hashColumn folds a column's values into one order-sensitive 64-bit
// hash (FNV-style combine of per-value FNV-1a hashes).
func hashColumn(vals []string) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vals {
		h ^= stats.HashString(v)
		h *= 1099511628211
	}
	return h
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
