package engine

import (
	"context"
	"errors"
	"sync"
	"testing"

	"cdb/internal/crowd"
	"cdb/internal/dataset"
	"cdb/internal/exec"
	"cdb/internal/stats"
	"cdb/internal/testutil"
)

func testConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	d := dataset.GenPaper(dataset.Config{Seed: 7, Scale: 0.08})
	return Config{
		Catalog: d.Catalog,
		Oracle:  d.Oracle,
		Pool:    crowd.NewPool(50, 0.8, 0.1, stats.NewRNG(3)),
		Seed:    seed,
	}
}

// workload is the paper's five query shapes, each submitted three
// times — the overlap a serving layer exists to exploit.
func workload() []string {
	qs := dataset.Queries("paper")
	var out []string
	for rep := 0; rep < 3; rep++ {
		for _, label := range dataset.QueryLabels() {
			out = append(out, qs[label])
		}
	}
	return out
}

type outcome struct {
	cols []string
	rows [][]string
	rep  *exec.Report
}

// runSequential executes the workload one query at a time on a fresh
// engine (concurrency 1, queue sized to hold the rest).
func runSequential(t *testing.T, seed uint64, queries []string, transitive bool) []outcome {
	t.Helper()
	cfg := testConfig(t, seed)
	cfg.MaxInFlight = 1
	cfg.MaxQueue = len(queries)
	cfg.Transitive = transitive
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	out := make([]outcome, len(queries))
	for i, q := range queries {
		h, err := e.Submit(context.Background(), q)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ans, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out[i] = outcome{cols: ans.Columns, rows: ans.Rows, rep: ans.Report}
	}
	return out
}

// TestConcurrentMatchesSequential is the engine's core property: with
// the same seed, a query returns bit-identical columns, rows and
// per-query cost whether it runs alone or races an 8-deep fleet whose
// tasks coalesce. Run under -race this also exercises the coalescer,
// join cache and dict for data races.
func TestConcurrentMatchesSequential(t *testing.T) {
	checkConcurrentMatchesSequential(t, false)
}

// TestConcurrentMatchesSequentialTransitive re-runs the bit-identity
// property with transitive inference on: inferred labels and their
// cross-query publication must not let scheduling leak into results.
func TestConcurrentMatchesSequentialTransitive(t *testing.T) {
	checkConcurrentMatchesSequential(t, true)
}

func checkConcurrentMatchesSequential(t *testing.T, transitive bool) {
	defer testutil.VerifyNoLeaks(t)()
	const seed = 99
	queries := workload()
	want := runSequential(t, seed, queries, transitive)

	cfg := testConfig(t, seed)
	cfg.MaxInFlight = 8
	cfg.MaxQueue = len(queries)
	cfg.Transitive = transitive
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle, len(queries))
	for i, q := range queries {
		h, err := e.Submit(context.Background(), q)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		ans, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		w := want[i]
		if !sameStrings(ans.Columns, w.cols) {
			t.Fatalf("query %d: columns %v != %v", i, ans.Columns, w.cols)
		}
		if len(ans.Rows) != len(w.rows) {
			t.Fatalf("query %d: %d rows, sequential got %d", i, len(ans.Rows), len(w.rows))
		}
		for r := range ans.Rows {
			if !sameStrings(ans.Rows[r], w.rows[r]) {
				t.Fatalf("query %d row %d: %v != %v", i, r, ans.Rows[r], w.rows[r])
			}
		}
		// Virtual chargeback: per-query cost must not depend on how
		// much of the work was shared.
		if ans.Report.Assignments != w.rep.Assignments {
			t.Fatalf("query %d: %d assignments, sequential charged %d",
				i, ans.Report.Assignments, w.rep.Assignments)
		}
		if ans.Report.Metrics.Tasks != w.rep.Metrics.Tasks || ans.Report.Metrics.Rounds != w.rep.Metrics.Rounds {
			t.Fatalf("query %d: tasks/rounds %d/%d vs sequential %d/%d", i,
				ans.Report.Metrics.Tasks, ans.Report.Metrics.Rounds,
				w.rep.Metrics.Tasks, w.rep.Metrics.Rounds)
		}
	}
	st := e.Stats()
	e.Close()
	if st.Completed != int64(len(queries)) {
		t.Fatalf("completed %d of %d", st.Completed, len(queries))
	}
	if st.Coalesced+st.Cached == 0 {
		t.Fatalf("no tasks shared across %d overlapping queries", len(queries))
	}
	if st.AssignmentsSaved <= 0 || st.HITsSaved <= 0 {
		t.Fatalf("no crowd work saved: %+v", st)
	}
	if st.JoinsShared == 0 {
		t.Fatalf("no similarity joins shared: %+v", st)
	}
	if st.AssignmentsIssued+st.AssignmentsSaved == 0 {
		t.Fatalf("engine did no work at all")
	}
	if transitive && st.InferredPublished == 0 {
		t.Fatalf("transitive engine published no inferred verdicts: %+v", st)
	}
	if !transitive && st.InferredPublished+st.InferredHits+st.InferredRejected != 0 {
		t.Fatalf("baseline engine leaked inference counters: %+v", st)
	}
}

// TestSubmitConcurrently hammers Submit itself from many goroutines to
// catch admission races under -race.
func TestSubmitConcurrently(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	cfg := testConfig(t, 5)
	cfg.MaxInFlight = 8
	cfg.MaxQueue = 64
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	queries := workload()
	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			h, err := e.Submit(context.Background(), q)
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = h.Wait(context.Background())
		}(i, q)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

// TestBackpressureAndCancellation pins the execution slot (white-box)
// and checks that the queue bounds admission with ErrOverloaded and
// that a cancelled query leaves the queue with the context's error.
func TestBackpressureAndCancellation(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	cfg := testConfig(t, 5)
	cfg.MaxInFlight = 1
	cfg.MaxQueue = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.Queries("paper")["2J"]

	e.slots <- struct{}{} // occupy the only execution slot
	ctx, cancel := context.WithCancel(context.Background())
	h1, err := e.Submit(ctx, q) // admitted, waiting on the slot
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(context.Background(), q) // fills the queue
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(context.Background(), q); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded with a full queue, got %v", err)
	}
	if e.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", e.Stats().Rejected)
	}

	cancel() // h1 gives up while queued
	if _, err := h1.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query returned %v", err)
	}

	<-e.slots // release the pinned slot; h2 runs
	if ans, err := h2.Wait(context.Background()); err != nil || len(ans.Rows) == 0 {
		t.Fatalf("queued query after release: rows=%v err=%v", ans, err)
	}
	e.Close()
}

// TestRejectsUnsupported checks the statements the shared path must
// refuse, and that a closed engine refuses everything.
func TestRejectsUnsupported(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	cfg := testConfig(t, 5)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"CREATE TABLE t (a varchar(8));",
		`SELECT Paper.title FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title GROUP BY Paper.title;`,
		`SELECT Paper.title FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title ORDER BY Paper.title;`,
	} {
		if _, err := e.Submit(context.Background(), q); !errors.Is(err, ErrUnsupported) {
			t.Fatalf("%s: want ErrUnsupported, got %v", q, err)
		}
	}
	if _, err := e.Submit(context.Background(), "SELECT FROM;"); err == nil {
		t.Fatal("parse error not surfaced")
	}
	e.Close()
	if _, err := e.Submit(context.Background(), dataset.Queries("paper")["2J"]); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after Close, got %v", err)
	}
}

// TestPublishInferredAgreementFilter unit-tests the coalescer's
// publication rules: an inferred label agreeing with the deterministic
// crowd verdict enters the cache (and later resolves hit it, flagged
// Inferred, with no assignments issued); a disagreeing label is
// rejected; an already-resolved task is never overwritten.
func TestPublishInferredAgreementFilter(t *testing.T) {
	pool := crowd.NewPool(50, 0.95, 0.01, stats.NewRNG(3))
	c := newCoalescer(7, pool, 0, nil)

	req := exec.TaskRequest{Edge: 1, Key: "join\x1ftest\x1fa\x1fb", Truth: true, Prior: 0.9, K: 3}
	truth := c.answer(req) // the deterministic crowd verdict

	// Agreement: published, then served from cache without crowd work.
	c.PublishInferred([]exec.InferredTask{{Req: req, Value: truth.Value}})
	if got := c.inferredPub.Load(); got != 1 {
		t.Fatalf("published = %d, want 1", got)
	}
	v, err := c.resolve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Inferred || !v.Cached {
		t.Fatalf("verdict %+v not served as inferred cache hit", v)
	}
	if v.Value != truth.Value || v.Confidence != truth.Confidence || v.Assignments != truth.Assignments {
		t.Fatalf("inferred verdict %+v differs from crowd verdict %+v", v, truth)
	}
	if c.issued.Load() != 0 {
		t.Fatalf("inferred hit issued %d assignments", c.issued.Load())
	}
	if c.inferredHit.Load() != 1 {
		t.Fatalf("inferredHit = %d, want 1", c.inferredHit.Load())
	}

	// Disagreement: rejected, nothing cached.
	req2 := exec.TaskRequest{Edge: 2, Key: "join\x1ftest\x1fa\x1fc", Truth: true, Prior: 0.9, K: 3}
	wrong := !c.answer(req2).Value
	c.PublishInferred([]exec.InferredTask{{Req: req2, Value: wrong}})
	if c.inferredRej.Load() != 1 {
		t.Fatalf("rejected = %d, want 1", c.inferredRej.Load())
	}
	v2, err := c.resolve(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Inferred || v2.Cached {
		t.Fatalf("rejected publication still served a cache hit: %+v", v2)
	}

	// Already resolved: publication must not overwrite or recount.
	c.PublishInferred([]exec.InferredTask{{Req: req2, Value: v2.Value}})
	v3, err := c.resolve(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if v3.Inferred {
		t.Fatalf("crowd-resolved entry was overwritten by a publication: %+v", v3)
	}
	if c.inferredPub.Load() != 1 {
		t.Fatalf("published = %d after no-op publication, want 1", c.inferredPub.Load())
	}
}

// TestInferredVerdictsCrossQueries is the cross-query payoff: a
// transitive 2J query publishes the labels it inferred, and a later 3J
// query — a different statement over a superset of the same joins, so
// the answer cache cannot serve it — picks some of them up as inferred
// cache hits.
func TestInferredVerdictsCrossQueries(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	cfg := testConfig(t, 42)
	cfg.Transitive = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	qs := dataset.Queries("paper")
	for _, label := range []string{"2J", "3J"} {
		h, err := e.Submit(context.Background(), qs[label])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.InferredPublished == 0 {
		t.Fatalf("2J published no inferred verdicts: %+v", st)
	}
	if st.InferredHits == 0 {
		t.Fatalf("3J saw no inferred-verdict cache hits: %+v", st)
	}
}

// TestVerdictLRU checks bound, eviction order and refresh-on-get.
func TestVerdictLRU(t *testing.T) {
	l := newVerdictLRU(2)
	l.put("a", exec.TaskVerdict{Assignments: 1})
	l.put("b", exec.TaskVerdict{Assignments: 2})
	if _, ok := l.get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	l.put("c", exec.TaskVerdict{Assignments: 3}) // evicts b
	if _, ok := l.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := l.get("a"); !ok {
		t.Fatal("a evicted despite refresh")
	}
	if v, ok := l.get("c"); !ok || v.Assignments != 3 {
		t.Fatalf("c = %+v, %v", v, ok)
	}
	if l.len() != 2 {
		t.Fatalf("len = %d, want 2", l.len())
	}
}

// TestTracingIsolated checks per-query span trees exist and carry the
// query text when tracing is on.
func TestTracingIsolated(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	cfg := testConfig(t, 5)
	cfg.Tracing = true
	cfg.MaxInFlight = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	qs := dataset.Queries("paper")
	h1, _ := e.Submit(context.Background(), qs["2J"])
	h2, _ := e.Submit(context.Background(), qs["2J1S"])
	a1, err1 := h1.Wait(context.Background())
	a2, err2 := h2.Wait(context.Background())
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if a1.Trace == nil || a2.Trace == nil {
		t.Fatal("tracing on but no trace attached")
	}
	if a1.Trace.Spans[0].Query != qs["2J"] || a2.Trace.Spans[0].Query != qs["2J1S"] {
		t.Fatal("trace root does not carry its own query")
	}
}
