package engine

import (
	"sync"
	"time"

	"cdb/internal/obs"
)

// Serving-tier gauges: what the engine is doing right now. Process-
// wide like every obs metric; engines add and subtract symmetrically,
// so with N engines the gauges read fleet totals.
var (
	mInFlightG = obs.Default.Gauge("cdb_engine_inflight")
	mQueuedG   = obs.Default.Gauge("cdb_engine_queued")
)

// Query lifecycle states reported by Engine.Introspect. In-flight
// queries are queued, running or draining; completed ones are done,
// shared or failed.
const (
	// StateQueued: admitted, waiting for an execution slot.
	StateQueued = "queued"
	// StateRunning: holding a slot, executing crowd rounds.
	StateRunning = "running"
	// StateDraining: still running, but the engine is closing — the
	// query will finish, no new ones will be admitted after it.
	StateDraining = "draining"
	// StateDone: completed with an answer.
	StateDone = "done"
	// StateShared: served whole from an identical execution (answer
	// cache or in-flight attach) without running any rounds itself.
	StateShared = "shared"
	// StateFailed: ended with an error (cancellation, planning or
	// execution failure).
	StateFailed = "failed"
)

// QueryStatus is one query's introspection snapshot — the unit GET
// /v1/queries serves. For in-flight queries ElapsedMs counts from
// admission and the counters reflect completed rounds; for recent
// (completed) queries ElapsedMs is the total admission-to-finish time
// and the counters are final.
type QueryStatus struct {
	// ID is the engine-local dense submission sequence number.
	ID int64
	// RequestID is the serving tier's correlation ID (empty when the
	// query was submitted without one).
	RequestID string
	// Statement is the submitted CQL text.
	Statement string
	// State is one of the State* constants.
	State     string
	ElapsedMs int64
	// Rounds, Tasks and Assignments count completed crowd rounds and
	// the work they issued. Open is the valid uncolored edges still in
	// play after the last completed round (0 before the first).
	Rounds      int
	Tasks       int
	Assignments int
	Open        int
	// HITs, Coalesced and Cached are final sharing economics, set when
	// the query completes: priced HITs charged, tasks attached to
	// another query's in-flight HIT, tasks served from the verdict
	// cache.
	HITs      int
	Coalesced int
	Cached    int
	// Ledger counts tasks served from the durable crowd-work ledger —
	// paid before a restart, re-issued zero times (completed queries
	// only; always 0 without a ledger).
	Ledger int
	// Plan is the planned join order ("p2→p0→p1", "→∅" marking an
	// early exit) and PlanEarlyExits its early-exit count; empty/zero
	// when the query ran without the greedy planner.
	Plan           string
	PlanEarlyExits int
	// Err is the failure message (StateFailed only).
	Err string
}

// IntrospectSnapshot is a point-in-time view of the engine's query
// registry: everything in flight (admission order) plus a bounded ring
// of recently completed queries (most recent first).
type IntrospectSnapshot struct {
	InFlight []QueryStatus
	Recent   []QueryStatus
}

// queryEntry is one admitted query's live registry record. The entry
// is written by its own serve goroutine and read by Introspect; the
// mutex covers the mutable tail.
type queryEntry struct {
	id       int64
	req      string
	stmt     string
	enqueued time.Time

	mu          sync.Mutex
	state       string
	started     time.Time
	rounds      int
	tasks       int
	assignments int
	open        int
	plan        string
	planExits   int
}

// introspection is the engine's in-flight query registry plus the
// completed-query ring buffer.
type introspection struct {
	mu       sync.Mutex
	seq      int64
	inflight map[int64]*queryEntry
	recent   []QueryStatus // ring, write position next
	next     int
	capacity int
}

func newIntrospection(capacity int) *introspection {
	if capacity <= 0 {
		capacity = 64
	}
	return &introspection{
		inflight: make(map[int64]*queryEntry),
		capacity: capacity,
	}
}

// admit registers a freshly admitted query in state queued.
func (in *introspection) admit(req, stmt string) *queryEntry {
	e := &queryEntry{
		req:      req,
		stmt:     stmt,
		enqueued: time.Now(),
		state:    StateQueued,
	}
	in.mu.Lock()
	in.seq++
	e.id = in.seq
	in.inflight[e.id] = e
	in.mu.Unlock()
	mQueuedG.Add(1)
	return e
}

// start marks the entry running (it acquired an execution slot).
func (in *introspection) start(e *queryEntry) {
	e.mu.Lock()
	e.state = StateRunning
	e.started = time.Now()
	e.mu.Unlock()
	mQueuedG.Add(-1)
	mInFlightG.Add(1)
}

// setPlan stamps the planned join order on the live entry as soon as
// planning completes, so /v1/queries shows the order while the rounds
// are still running.
func (in *introspection) setPlan(e *queryEntry, order string, exits int) {
	e.mu.Lock()
	e.plan = order
	e.planExits = exits
	e.mu.Unlock()
}

// roundDone folds one completed crowd round into the live entry.
func (in *introspection) roundDone(e *queryEntry, rounds, tasksTotal, asksTotal, open int) {
	e.mu.Lock()
	e.rounds = rounds
	e.tasks = tasksTotal
	e.assignments = asksTotal
	e.open = open
	e.mu.Unlock()
}

// finish retires the entry into the recent ring with its final state.
// fill (nil-safe) stamps the completion-only fields (HITs, sharing
// splits, error) onto the retired status.
func (in *introspection) finish(e *queryEntry, state string, fill func(*QueryStatus)) {
	now := time.Now()
	e.mu.Lock()
	wasRunning := e.state == StateRunning
	st := QueryStatus{
		ID:          e.id,
		RequestID:   e.req,
		Statement:   e.stmt,
		State:       state,
		ElapsedMs:   now.Sub(e.enqueued).Milliseconds(),
		Rounds:      e.rounds,
		Tasks:       e.tasks,
		Assignments: e.assignments,

		Plan:           e.plan,
		PlanEarlyExits: e.planExits,
	}
	e.mu.Unlock()
	if wasRunning {
		mInFlightG.Add(-1)
	} else {
		mQueuedG.Add(-1)
	}
	if fill != nil {
		fill(&st)
	}
	in.mu.Lock()
	delete(in.inflight, e.id)
	if len(in.recent) < in.capacity {
		in.recent = append(in.recent, st)
		in.next = len(in.recent) % in.capacity
	} else {
		in.recent[in.next] = st
		in.next = (in.next + 1) % in.capacity
	}
	in.mu.Unlock()
}

// snapshot captures the registry. draining repaints running queries as
// draining — the engine sets it once Close has begun, so an operator
// watching /v1/queries sees the drain progress.
func (in *introspection) snapshot(draining bool) IntrospectSnapshot {
	now := time.Now()
	in.mu.Lock()
	entries := make([]*queryEntry, 0, len(in.inflight))
	for _, e := range in.inflight {
		entries = append(entries, e)
	}
	recent := make([]QueryStatus, 0, len(in.recent))
	// Ring order: next-1 is the most recently retired.
	for i := 0; i < len(in.recent); i++ {
		idx := (in.next - 1 - i + in.capacity) % in.capacity
		if idx < len(in.recent) {
			recent = append(recent, in.recent[idx])
		}
	}
	in.mu.Unlock()

	snap := IntrospectSnapshot{Recent: recent}
	for _, e := range entries {
		e.mu.Lock()
		st := QueryStatus{
			ID:          e.id,
			RequestID:   e.req,
			Statement:   e.stmt,
			State:       e.state,
			ElapsedMs:   now.Sub(e.enqueued).Milliseconds(),
			Rounds:      e.rounds,
			Tasks:       e.tasks,
			Assignments: e.assignments,
			Open:        e.open,

			Plan:           e.plan,
			PlanEarlyExits: e.planExits,
		}
		e.mu.Unlock()
		if draining && st.State == StateRunning {
			st.State = StateDraining
		}
		snap.InFlight = append(snap.InFlight, st)
	}
	sortStatuses(snap.InFlight)
	return snap
}

// sortStatuses orders by submission sequence (oldest first) — a
// deterministic, operator-friendly order for the live table.
func sortStatuses(s []QueryStatus) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
