package engine

import (
	"encoding/json"

	"cdb/internal/cql"
	"cdb/internal/exec"
	"cdb/internal/ledger"
	"cdb/internal/obs"
)

// mLedgerHits counts tasks served from verdicts replayed out of the
// durable ledger — crowd work paid for before the last restart.
var mLedgerHits = obs.Default.Counter("cdb_engine_ledger_hits_total")

// Journal is the engine's durability hook: an append-only record of
// the crowd work the engine has paid for, replayed on the next boot so
// a restart never re-asks the crowd. *ledger.Log implements it; the
// engine owns the journal it is configured with and closes it (after
// the last in-flight query drains) in Close.
//
// Everything logged is a pure function of the engine seed plus content
// keys, which is the invariant that makes replay safe: a verdict
// served from the journal is byte-identical to the one a fresh resolve
// would produce.
type Journal interface {
	// AppendVerdict records one resolved task verdict (crowd or
	// agreement-filtered inferred), keyed by the coalescer's
	// redundancy-qualified task key. Must be idempotent on key.
	AppendVerdict(ledger.Verdict)
	// Verdict looks a logged verdict back up at resolve time.
	Verdict(key string) (ledger.Verdict, bool)
	// AppendStatement records a canonical statement that reached
	// execution, so boot-time replay replans it and re-primes the
	// similarity-join cache.
	AppendStatement(stmt string)
	// AppendAnswer records one completed query's whole answer.
	AppendAnswer(ledger.Answer)

	// Verdicts, Statements and Answers return the replayed state in
	// first-logged order; the engine warms its caches from them before
	// admitting the first query.
	Verdicts() []ledger.Verdict
	Statements() []string
	Answers() []ledger.Answer

	// Stats snapshots the journal's durability counters.
	Stats() ledger.Stats
	// Close flushes, syncs and releases the journal. Idempotent.
	Close() error
}

// LedgerStats is the engine's view of its journal: the durable
// contents plus how much of the current session's traffic the replayed
// crowd work served.
type LedgerStats struct {
	// Enabled reports whether the engine runs with a journal at all.
	Enabled bool
	// Hits counts tasks served from replayed verdicts since boot —
	// each one a task whose crowd work was paid before the restart and
	// re-issued zero times.
	Hits int64
	ledger.Stats
}

// LedgerStats snapshots the journal counters; the zero value when the
// engine runs without one.
func (e *Engine) LedgerStats() LedgerStats {
	j := e.cfg.Journal
	if j == nil {
		return LedgerStats{}
	}
	return LedgerStats{
		Enabled: true,
		Hits:    e.coal.ledgerHit.Load(),
		Stats:   j.Stats(),
	}
}

// warmFromJournal pre-warms the engine's caches from the replayed
// journal before the first query is admitted: verdicts enter the
// shared verdict cache flagged Ledger (zero HIT charge on hit),
// statements are replanned to re-prime the similarity-join cache, and
// completed answers enter the whole-answer cache so a re-submitted
// statement is served without executing at all. Runs on the New
// goroutine — nothing else holds the caches yet.
func (e *Engine) warmFromJournal() {
	j := e.cfg.Journal

	// Replay order is first-logged order, so the LRU ends up with the
	// most recently logged verdicts as the most recently used — the
	// right entries survive when the journal outgrew the cache.
	//
	// Settled verdicts — ones whose owner query completed (an answer was
	// logged after them) — warm as ordinary cache entries: in the
	// uninterrupted timeline every later ask on them was a plain cache
	// hit, and the owner's own accounting replays whole from the answer
	// log. Only the unsettled tail (the query a crash cut mid-flight)
	// carries the Ledger flag, whose first use mirrors the owner resolve
	// it replaces.
	for _, v := range j.Verdicts() {
		tv := exec.TaskVerdict{
			Value:       v.Value,
			Confidence:  v.Confidence,
			Assignments: v.Assignments,
			Inferred:    v.Inferred,
			Ledger:      !v.Settled,
		}
		e.coal.mu.Lock()
		e.coal.cache.put(v.Key, tv)
		e.coal.mu.Unlock()
	}

	// Replanning a logged statement tokenizes and indexes its
	// similarity joins into the shared join cache; the plan itself is
	// discarded (serve builds a fresh one per execution anyway). A
	// statement that no longer parses or plans — the catalog changed
	// under the ledger — is skipped, not fatal.
	for _, stmt := range j.Statements() {
		st, err := cql.Parse(stmt)
		if err != nil {
			continue
		}
		s, ok := st.(*cql.Select)
		if !ok {
			continue
		}
		_, _ = exec.BuildPlan(s, e.cfg.Catalog, e.cfg.Oracle, exec.PlanConfig{
			Sim:     e.cfg.Sim,
			Epsilon: e.cfg.Epsilon,
			Joiner:  e.joins.Join,
		})
	}

	if e.results == nil {
		return
	}
	for _, a := range j.Answers() {
		var rep exec.Report
		if err := json.Unmarshal(a.Report, &rep); err != nil {
			continue
		}
		ans := &Answer{Columns: a.Columns, Rows: a.Rows, Report: &rep}
		e.resMu.Lock()
		e.results.put(a.Stmt, ans)
		e.resMu.Unlock()
	}
}

// journalAnswer logs a completed query's answer: the canonical
// statement, the projected rows, and the executor report with the raw
// embeddings stripped (the rows already carry the projection; the
// report's numbers are what a warm serve needs to rebuild an identical
// wire Result).
func (e *Engine) journalAnswer(key string, ans *Answer) {
	rep := *ans.Report
	rep.Answers = nil
	raw, err := json.Marshal(&rep)
	if err != nil {
		return
	}
	e.cfg.Journal.AppendAnswer(ledger.Answer{
		Stmt:    key,
		Columns: ans.Columns,
		Rows:    ans.Rows,
		Report:  raw,
	})
}
