// Package engine serves concurrent CQL queries over one shared crowd.
//
// A CDB instance executes one query at a time; a crowd platform serves
// many requesters at once, and concurrent queries over the same tables
// keep asking the crowd the same questions. The engine admits N
// queries in flight and makes the overlap pay for itself three ways:
//
//   - HIT coalescing: crowd tasks are identified by canonical content
//     (predicate + cell pair, sides ordered), identical tasks from
//     concurrent queries are dispatched once and the verdict fanned
//     out to every subscriber (coalesce.go).
//   - A bounded LRU verdict cache that survives across queries, so a
//     task asked again minutes later costs nothing (coalesce.go).
//   - A shared similarity-join cache plus session-level interned token
//     dictionary, so planning repeated table pairs tokenizes and
//     indexes once (simcache.go).
//
// Sharing never changes answers: every verdict is a pure function of
// (engine seed, task content, redundancy), so a query's rows are
// bit-identical whether it ran alone or raced the whole fleet, and
// per-query Stats charge the full redundancy either way (the engine's
// own counters report the savings). Admission control bounds in-flight
// work and queue depth; each query keeps its own context, tracer and
// Report.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cdb/internal/cost"
	"cdb/internal/cql"
	"cdb/internal/crowd"
	"cdb/internal/exec"
	"cdb/internal/obs"
	"cdb/internal/plan"
	"cdb/internal/reqid"
	"cdb/internal/sim"
	"cdb/internal/table"
)

// Engine-level metrics (process-wide, across all engines).
var (
	mSubmitted   = obs.Default.Counter("cdb_engine_queries_submitted_total")
	mCompleted   = obs.Default.Counter("cdb_engine_queries_completed_total")
	mRejected    = obs.Default.Counter("cdb_engine_queries_rejected_total")
	mQueryShared = obs.Default.Counter("cdb_engine_queries_shared_total")
	// Phase-duration histograms for the engine-owned phases; the
	// executor owns the round/issue ones (cdb_exec_phase_*).
	mPhaseParse = obs.Default.Histogram("cdb_engine_phase_parse_seconds", obs.DurationBuckets)
	mPhasePlan  = obs.Default.Histogram("cdb_engine_phase_plan_seconds", obs.DurationBuckets)
)

// Sentinel errors returned by Submit.
var (
	// ErrClosed means the engine was shut down.
	ErrClosed = errors.New("engine: closed")
	// ErrOverloaded is backpressure: in-flight and queued slots are all
	// taken. The caller should retry later (or shed the query).
	ErrOverloaded = errors.New("engine: overloaded")
	// ErrUnsupported marks statements the shared serving path cannot
	// isolate; run those through DB.Exec instead.
	ErrUnsupported = errors.New("engine: unsupported statement")
)

// Config assembles an engine. Catalog, Oracle and Pool are required
// and must not be mutated while the engine serves (the catalog is read
// by concurrent planners).
type Config struct {
	Catalog *table.Catalog
	Oracle  exec.Oracle
	Pool    *crowd.Pool

	// Sim and Epsilon configure planning (similarity estimator and
	// pruning threshold); zero values mean Gram2Jaccard and 0.3.
	Sim     sim.Func
	Epsilon float64
	// Redundancy is the answers collected per task (default 5).
	Redundancy int
	// Seed drives every simulated verdict; equal seeds replay equal
	// answers regardless of concurrency or submission order.
	Seed uint64

	// MaxInFlight bounds concurrently executing queries (default 8).
	MaxInFlight int
	// MaxQueue bounds queries queued behind the in-flight set; a full
	// queue makes Submit fail fast with ErrOverloaded (default 64).
	MaxQueue int
	// CacheSize bounds the shared verdict cache in entries
	// (default 4096).
	CacheSize int
	// ResultCacheSize bounds the query-level answer cache in entries
	// (default 256; negative disables). Determinism makes whole-answer
	// sharing safe: a query's rows are a pure function of (engine
	// seed, canonical statement), so a cached answer is bit-identical
	// to a fresh execution. In-flight identical statements coalesce
	// onto one execution the same way individual HITs do.
	ResultCacheSize int
	// Tracing attaches a per-query obs.Tracer; each Answer then
	// carries its own span tree.
	Tracing bool
	// Transitive turns on transitive join inference (exec.Options.
	// Transitive) for every served query, and publishes the inferred
	// verdicts into the shared cache for cross-query reuse.
	Transitive bool
	// Planner configures the greedy multi-join planner. With
	// Planner.Greedy set, unbudgeted whole-statement SELECTs execute in
	// the planner's cheapest-first predicate order (answers stay
	// bit-identical — verdicts are content-pure) and each Answer
	// carries its executed Plan. Explain works either way.
	Planner plan.Config
	// RecentQueries bounds the completed-query ring buffer served by
	// Introspect (default 64).
	RecentQueries int
	// Journal, when set, makes paid crowd work durable: every resolved
	// verdict, executed statement and completed answer is appended, and
	// New replays the journal into the verdict, sim-join and answer
	// caches before the first query is admitted. The engine owns the
	// journal and closes it in Close, after the last query drains. The
	// journal must have been opened under this same Seed (ledger.Open
	// validates).
	Journal Journal
}

// Engine is a concurrent query-serving layer over one CDB catalog and
// crowd. Safe for concurrent use; create with New, shut down with
// Close.
type Engine struct {
	cfg   Config
	coal  *coalescer
	joins *joinCache
	intr  *introspection

	slots chan struct{} // executing queries
	admit chan struct{} // executing + queued (admission tickets)

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// Query-level sharing: completed answers by canonical statement,
	// plus in-flight executions identical submissions attach to.
	resMu       sync.Mutex
	results     *lruCache[*Answer]
	resInflight map[string]*queryFlight

	submitted atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	qCached   atomic.Int64 // queries served from the answer cache
	qAttached atomic.Int64 // queries attached to an identical in-flight one
}

// queryFlight is one executing statement identical submissions wait
// on; ans stays nil when the owner failed (waiters then run
// themselves).
type queryFlight struct {
	done chan struct{}
	ans  *Answer
}

// New builds an engine from the config.
func New(cfg Config) (*Engine, error) {
	if cfg.Catalog == nil || cfg.Oracle == nil || cfg.Pool == nil {
		return nil, fmt.Errorf("engine: Config.Catalog, Oracle and Pool are required")
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.3
	}
	if cfg.Redundancy <= 0 {
		cfg.Redundancy = 5
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	e := &Engine{
		cfg:         cfg,
		coal:        newCoalescer(cfg.Seed, cfg.Pool, cfg.CacheSize, cfg.Journal),
		joins:       newJoinCache(),
		intr:        newIntrospection(cfg.RecentQueries),
		slots:       make(chan struct{}, cfg.MaxInFlight),
		admit:       make(chan struct{}, cfg.MaxInFlight+cfg.MaxQueue),
		resInflight: make(map[string]*queryFlight),
	}
	if cfg.ResultCacheSize >= 0 {
		size := cfg.ResultCacheSize
		if size == 0 {
			size = 256
		}
		e.results = newLRU[*Answer](size)
	}
	if cfg.Journal != nil {
		// Warm before the first Submit can run: replayed crowd work
		// must be visible to the very first query, or it re-pays.
		e.warmFromJournal()
	}
	return e, nil
}

// Answer is one served query's outcome.
type Answer struct {
	Columns []string
	Rows    [][]string
	Report  *exec.Report
	// Trace is the query's span tree when Config.Tracing is on.
	Trace *obs.Trace
	// RequestID is the serving tier's correlation ID the query ran
	// under (empty without one); per handle even when the Answer rows
	// are shared.
	RequestID string
	// Shard is the scatter-gather sidecar of a SubmitShard execution
	// (nil for whole-statement runs): merge keys per row plus the owned
	// slice of the ground-truth accounting.
	Shard *exec.ShardInfo
	// Plan is the executed plan when the greedy planner drove this
	// query (Config.Planner.Greedy); nil otherwise.
	Plan *plan.Explained
}

// Handle is the future for one submitted query.
type Handle struct {
	// Query is the submitted CQL text.
	Query string

	done chan struct{}
	ans  *Answer
	err  error
}

// Wait blocks until the query completes (or ctx expires) and returns
// its answer. Waiting with an expired context does not cancel the
// query itself — cancel the Submit context for that.
func (h *Handle) Wait(ctx context.Context) (*Answer, error) {
	select {
	case <-h.done:
		return h.ans, h.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Done exposes the completion signal for select loops.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Submit admits one CQL SELECT for concurrent execution and returns
// immediately with a Handle. ctx cancels the query (honored at crowd
// round boundaries, like DB.ExecContext). Submit itself never blocks:
// a full queue returns ErrOverloaded.
//
// Only SELECT without GROUP BY / ORDER BY is served — DDL and
// collection statements mutate the catalog, and crowd-powered
// group/sort runs its tasks outside the per-query graph; both belong
// on the exclusive DB.Exec path.
func (e *Engine) Submit(ctx context.Context, query string) (*Handle, error) {
	return e.SubmitProgress(ctx, query, nil)
}

// SubmitProgress is Submit with a per-round progress hook: progress is
// invoked at the end of every completed crowd round with the
// executor's RoundUpdate snapshot (see exec.Options.Progress). A
// progress query always executes for real — it bypasses the
// whole-answer cache and in-flight attach, which would complete
// without any rounds to report — but still shares HITs and verdicts
// through the coalescer, so its answers remain bit-identical to an
// unobserved run. progress runs on the query's goroutine; hand off to
// a channel if the consumer can stall.
func (e *Engine) SubmitProgress(ctx context.Context, query string, progress func(exec.RoundUpdate)) (*Handle, error) {
	return e.submit(ctx, query, progress, nil)
}

// submit is the shared admission path behind Submit, SubmitProgress
// and SubmitShard; sr (nil for whole-statement runs) scopes execution
// to a shard's owned components.
func (e *Engine) submit(ctx context.Context, query string, progress func(exec.RoundUpdate), sr *ShardRun) (*Handle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	parseStart := time.Now()
	st, err := cql.Parse(query)
	mPhaseParse.Observe(time.Since(parseStart).Seconds())
	if err != nil {
		return nil, err
	}
	s, ok := st.(*cql.Select)
	if !ok {
		return nil, fmt.Errorf("%w: %T is not served concurrently; use DB.Exec", ErrUnsupported, st)
	}
	if s.GroupBy != nil || s.OrderBy != nil {
		return nil, fmt.Errorf("%w: GROUP BY / ORDER BY need the exclusive DB.Exec path", ErrUnsupported)
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case e.admit <- struct{}{}:
	default:
		e.mu.Unlock()
		e.rejected.Add(1)
		mRejected.Inc()
		return nil, ErrOverloaded
	}
	e.wg.Add(1)
	e.mu.Unlock()

	e.submitted.Add(1)
	mSubmitted.Inc()
	h := &Handle{Query: query, done: make(chan struct{})}
	entry := e.intr.admit(reqid.From(ctx).RequestID, query)
	go e.serve(ctx, s, h, progress, entry, sr)
	return h, nil
}

// serve runs one admitted query: wait for an execution slot, share
// whole answers with identical statements (cache or in-flight
// attach), otherwise plan with the shared join cache, execute with
// the coalescer as resolver, and project the answers.
func (e *Engine) serve(ctx context.Context, s *cql.Select, h *Handle, progress func(exec.RoundUpdate), entry *queryEntry, sr *ShardRun) {
	defer e.wg.Done()
	defer func() { <-e.admit }()
	defer close(h.done)

	// Retire the registry entry with whatever final state the paths
	// below chose; deferred last so it runs before h.done closes and a
	// waiter can observe the query as still in flight.
	finState := StateFailed
	var finFill func(*QueryStatus)
	defer func() {
		if finState == StateFailed && finFill == nil && h.err != nil {
			msg := h.err.Error()
			finFill = func(st *QueryStatus) { st.Err = msg }
		}
		e.intr.finish(entry, finState, finFill)
	}()

	select {
	case e.slots <- struct{}{}:
	case <-ctx.Done():
		h.err = ctx.Err()
		return
	}
	defer func() { <-e.slots }()
	e.intr.start(entry)

	// Query-level sharing. Safe only because answers are deterministic
	// in the canonical statement: the cached Answer is bit-identical
	// to what this execution would produce. An owner always holds an
	// execution slot before registering, so waiting cannot deadlock.
	var fl *queryFlight
	key := s.String()
	// Shard-scoped executions answer a different question than the whole
	// statement (and than any other ownership split), so they share whole
	// answers only within their exact fleet layout and target.
	cacheKey := key
	if sr != nil {
		cacheKey = key + "\x1f#shard\x1f" + sr.Fleet + "\x1f" + sr.Target
	}
	if e.results != nil && progress == nil {
		for {
			e.resMu.Lock()
			if ans, ok := e.results.get(cacheKey); ok {
				e.resMu.Unlock()
				e.shareAnswer(h, ans, entry.req)
				e.qCached.Add(1)
				mQueryShared.Inc()
				finState = StateShared
				return
			}
			owner, ok := e.resInflight[cacheKey]
			if !ok {
				fl = &queryFlight{done: make(chan struct{})}
				e.resInflight[cacheKey] = fl
				e.resMu.Unlock()
				break
			}
			e.resMu.Unlock()
			select {
			case <-owner.done:
			case <-ctx.Done():
				h.err = ctx.Err()
				return
			}
			if owner.ans != nil {
				e.shareAnswer(h, owner.ans, entry.req)
				e.qAttached.Add(1)
				mQueryShared.Inc()
				finState = StateShared
				return
			}
			// The owner failed (its context died, or a planning
			// error): take over and execute ourselves.
		}
		defer func() {
			e.resMu.Lock()
			if fl.ans != nil {
				e.results.put(cacheKey, fl.ans)
			}
			delete(e.resInflight, cacheKey)
			e.resMu.Unlock()
			close(fl.done)
		}()
	}

	var tr *obs.Tracer
	if e.cfg.Tracing {
		tr = obs.NewTracer(nil)
		tr.SetRequestID(entry.req)
		root := tr.Begin(obs.SpanQuery)
		tr.Mutate(root, func(sp *obs.Span) { sp.Query = h.Query })
		defer func() {
			tr.End(root)
			if h.ans != nil {
				h.ans.Trace = tr.Finish()
			}
		}()
	}

	planStart := time.Now()
	planSpan := tr.Begin(obs.SpanPlan)
	p, err := exec.BuildPlan(s, e.cfg.Catalog, e.cfg.Oracle, exec.PlanConfig{
		Sim:     e.cfg.Sim,
		Epsilon: e.cfg.Epsilon,
		Joiner:  e.joins.Join,
	})
	tr.End(planSpan)
	mPhasePlan.Observe(time.Since(planStart).Seconds())
	if err != nil {
		h.err = err
		return
	}
	var scope *exec.ShardScope
	if sr != nil && sr.Owned != nil {
		scope = exec.RestrictToOwned(p, sr.Owned)
	}
	if e.cfg.Journal != nil {
		// The statement is planable against the live catalog: log it so
		// the next boot replans it and re-primes the sim-join cache.
		e.cfg.Journal.AppendStatement(key)
	}

	var strategy cost.Strategy = &cost.Expectation{}
	var decision *plan.Decision
	switch {
	case s.Budget > 0:
		strategy = cost.NewBudget(s.Budget)
	case e.cfg.Planner.Greedy && sr == nil:
		// Reordering is answer-preserving because the coalescer's
		// verdicts are content-pure; shard-scoped runs keep the default
		// strategy so their round structure matches the rest of the
		// fleet.
		decision = plan.Greedy(p, e.cfg.Planner.Bins)
		strategy = &plan.Ordered{Order: decision.Order}
		e.intr.setPlan(entry, decision.JoinOrder(), decision.EarlyExits())
	}
	// The registry sees every completed round regardless of whether the
	// submitter asked for progress; the caller's hook (if any) still
	// runs on the query goroutine afterwards.
	rep, err := exec.Run(ctx, p, exec.Options{
		Strategy:   strategy,
		Redundancy: e.cfg.Redundancy,
		Quality:    exec.MajorityVoting,
		Pool:       e.cfg.Pool,
		Resolver:   e.coal,
		Transitive: e.cfg.Transitive,
		Trace:      tr,
		Progress: func(u exec.RoundUpdate) {
			e.intr.roundDone(entry, u.Round, u.TasksTotal, u.AssignmentsTotal, u.Open)
			if progress != nil {
				progress(u)
			}
		},
	})
	if err != nil {
		h.err = err
		return
	}

	ans := &Answer{Columns: p.ProjectionColumns(), Report: rep, RequestID: entry.req}
	for _, a := range rep.Answers {
		row, perr := p.ProjectAnswer(a)
		if perr != nil {
			h.err = perr
			return
		}
		ans.Rows = append(ans.Rows, row)
	}
	if scope != nil {
		tt, tc := scope.TruthCounts(p)
		ans.Shard = &exec.ShardInfo{
			Components:      scope.OwnedComponents,
			TotalComponents: scope.TotalComponents,
			MergeKeys:       exec.MergeKeys(p, rep.Answers),
			TruthTotal:      tt,
			TruthCorrect:    tc,
		}
	}
	if decision != nil {
		ans.Plan = plan.Describe(p, decision, true)
	}
	h.ans = ans
	if fl != nil {
		fl.ans = ans
	}
	if e.cfg.Journal != nil && sr == nil {
		// Shard-scoped answers never enter the durable answer cache: the
		// journal keys answers by bare statement, and a replayed partial
		// answer would poison the whole-statement cache after a restart.
		e.journalAnswer(key, ans)
	}
	e.completed.Add(1)
	mCompleted.Inc()
	finState = StateDone
	finFill = func(st *QueryStatus) {
		st.Rounds = rep.Metrics.Rounds
		st.Tasks = rep.Metrics.Tasks
		st.Assignments = rep.Assignments
		st.HITs = rep.HITs
		st.Coalesced = rep.Coalesced
		st.Cached = rep.CachedTasks
		st.Ledger = rep.LedgerTasks
	}
}

// shareAnswer serves h from a completed identical execution. The
// Answer is copied shallowly so per-handle fields stay isolated
// (shared answers carry no trace — nothing executed); rows and the
// Report are shared read-only. The owning query's Report already
// charges the full redundancy, so subscribers reusing it keep the
// virtual-chargeback invariant, and the engine's savings counters
// absorb the crowd work the share avoided.
func (e *Engine) shareAnswer(h *Handle, ans *Answer, req string) {
	cp := *ans
	cp.Trace = nil
	cp.RequestID = req
	h.ans = &cp
	e.completed.Add(1)
	mCompleted.Inc()
	if rep := ans.Report; rep != nil {
		e.coal.saved.Add(int64(rep.Assignments))
		mCoalSaved.Add(int64(rep.Assignments))
	}
}

// PlannerEnabled reports whether served SELECTs execute the greedy
// planned order (and therefore whether streams carry a plan event).
func (e *Engine) PlannerEnabled() bool { return e.cfg.Planner.Greedy }

// Explain plans query without executing it and returns the wire-ready
// plan. It issues zero crowd assignments: planning reads the
// instantiated query graph (built through the shared sim-join cache,
// so repeated table pairs are free) and never touches the coalescer.
// query may be a SELECT or an EXPLAIN SELECT; anything else fails with
// ErrUnsupported — the typed 400 of POST /v1/explain.
func (e *Engine) Explain(query string) (*plan.Explained, error) {
	st, err := cql.Parse(query)
	if err != nil {
		return nil, err
	}
	if ex, ok := st.(*cql.Explain); ok {
		st = ex.Target
	}
	s, ok := st.(*cql.Select)
	if !ok {
		return nil, fmt.Errorf("%w: %T is not plannable; EXPLAIN takes a SELECT", ErrUnsupported, st)
	}
	p, err := exec.BuildPlan(s, e.cfg.Catalog, e.cfg.Oracle, exec.PlanConfig{
		Sim:     e.cfg.Sim,
		Epsilon: e.cfg.Epsilon,
		Joiner:  e.joins.Join,
	})
	if err != nil {
		return nil, err
	}
	d := plan.Greedy(p, e.cfg.Planner.Bins)
	return plan.Describe(p, d, e.cfg.Planner.Greedy), nil
}

// Introspect snapshots the engine's query registry: every in-flight
// query (admission order) with its live state, elapsed time and
// completed-round counters, plus the bounded ring of recently
// completed queries (most recent first). Once Close has begun, running
// queries report as draining.
func (e *Engine) Introspect() IntrospectSnapshot {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	return e.intr.snapshot(closed)
}

// Close stops admission, waits for every in-flight query to finish,
// then flushes, syncs and closes the journal (when configured) — so
// the last verdicts of the drain are durable before the process can
// exit. Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.wg.Wait()
	if e.cfg.Journal != nil {
		_ = e.cfg.Journal.Close()
	}
}

// Stats is a snapshot of the engine's sharing economics.
type Stats struct {
	Submitted int64 // queries admitted
	Completed int64 // queries finished successfully
	Rejected  int64 // queries shed by backpressure

	QueriesCached   int64 // whole queries served from the answer cache
	QueriesAttached int64 // whole queries attached to an identical in-flight one

	TasksResolved int64 // crowd tasks served
	Coalesced     int64 // tasks attached to an in-flight HIT
	Cached        int64 // tasks served from the verdict cache
	LedgerHits    int64 // tasks served from replayed ledger verdicts

	AssignmentsIssued int64 // worker answers actually simulated
	AssignmentsSaved  int64 // answers avoided by sharing
	HITsIssued        int   // priced HITs actually issued
	HITsSaved         int   // priced HITs avoided by sharing

	JoinsComputed int64 // similarity joins executed
	JoinsShared   int64 // similarity joins reused from the cache

	// Transitive-inference sharing: labels one query derived entering
	// the verdict cache, later queries served by them, and inferred
	// labels dropped because they disagreed with the deterministic
	// crowd verdict.
	InferredPublished int64
	InferredHits      int64
	InferredRejected  int64

	// Cluster replication: verdicts imported from peer shards and
	// cache hits those imports served.
	RemoteImported int64
	RemoteHits     int64

	CacheEntries int // live verdict-cache entries
}

// Stats snapshots the engine counters. HITs are priced with the
// default batching (10 tasks per HIT).
func (e *Engine) Stats() Stats {
	issued := e.coal.issued.Load()
	saved := e.coal.saved.Load()
	e.coal.mu.Lock()
	entries := e.coal.cache.len()
	e.coal.mu.Unlock()
	return Stats{
		Submitted: e.submitted.Load(),
		Completed: e.completed.Load(),
		Rejected:  e.rejected.Load(),

		QueriesCached:   e.qCached.Load(),
		QueriesAttached: e.qAttached.Load(),

		TasksResolved: e.coal.resolved.Load(),
		Coalesced:     e.coal.coalesced.Load(),
		Cached:        e.coal.cached.Load(),
		LedgerHits:    e.coal.ledgerHit.Load(),

		AssignmentsIssued: issued,
		AssignmentsSaved:  saved,
		HITsIssued:        crowd.DefaultPricing.HITs(int(issued)),
		HITsSaved:         crowd.DefaultPricing.HITs(int(saved)),

		JoinsComputed: e.joins.computed.Load(),
		JoinsShared:   e.joins.shared.Load(),

		InferredPublished: e.coal.inferredPub.Load(),
		InferredHits:      e.coal.inferredHit.Load(),
		InferredRejected:  e.coal.inferredRej.Load(),

		RemoteImported: e.coal.imported.Load(),
		RemoteHits:     e.coal.remoteHit.Load(),

		CacheEntries: entries,
	}
}
