package engine

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"cdb/internal/crowd"
	"cdb/internal/dataset"
	"cdb/internal/stats"
)

// clusterConfig generates a slightly larger catalog than testConfig:
// every paper query shape needs at least two tuple-graph components
// for a partition test to be non-vacuous.
func clusterConfig(d *dataset.Data, seed uint64) Config {
	return Config{
		Catalog: d.Catalog,
		Oracle:  d.Oracle,
		Pool:    crowd.NewPool(50, 0.8, 0.1, stats.NewRNG(3)),
		Seed:    seed,
	}
}

// mergeShardAnswers reassembles per-shard answers into single-node row
// order by sorting the union on the merge keys each Answer carries.
func mergeShardAnswers(t *testing.T, answers []*Answer) (rows [][]string, conf []float64) {
	t.Helper()
	type row struct {
		key  []int
		cols []string
		conf float64
	}
	var merged []row
	for _, a := range answers {
		if a.Shard == nil {
			t.Fatal("shard answer missing sidecar")
		}
		if len(a.Shard.MergeKeys) != len(a.Rows) {
			t.Fatalf("sidecar has %d merge keys for %d rows", len(a.Shard.MergeKeys), len(a.Rows))
		}
		for i, r := range a.Rows {
			c := 1.0
			if a.Report.Confidence != nil {
				c = a.Report.Confidence[i]
			}
			merged = append(merged, row{key: a.Shard.MergeKeys[i], cols: r, conf: c})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i].key, merged[j].key
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	for _, m := range merged {
		rows = append(rows, m.cols)
		conf = append(conf, m.conf)
	}
	return rows, conf
}

// TestSubmitShardMergesBitIdentical runs every paper query whole on
// one engine and component-sharded across two fresh engines, and
// requires the merged shards to reproduce the whole run exactly: rows
// in order, confidences, summed task/assignment counts, maxed rounds,
// summed truth counts.
func TestSubmitShardMergesBitIdentical(t *testing.T) {
	d := dataset.GenPaper(dataset.Config{Seed: 7, Scale: 0.1})
	qs := dataset.Queries("paper")
	for _, label := range dataset.QueryLabels() {
		query := qs[label]

		whole, err := New(clusterConfig(d, 42))
		if err != nil {
			t.Fatal(err)
		}
		h, err := whole.Submit(context.Background(), query)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}

		keys, err := whole.ComponentKeys(query)
		if err != nil {
			t.Fatal(err)
		}
		whole.Close()
		if len(keys) < 2 {
			t.Fatalf("%s: only %d components", label, len(keys))
		}
		owner := map[string]int{}
		for i, k := range keys {
			owner[k] = i % 2
		}

		var answers []*Answer
		tasks, asks, rounds := 0, 0, 0
		truthTotal, truthCorrect := 0, 0
		for s := 0; s < 2; s++ {
			s := s
			eng, err := New(clusterConfig(d, 42))
			if err != nil {
				t.Fatal(err)
			}
			run := &ShardRun{Fleet: "test", Target: "s" + string(rune('0'+s)),
				Owned: func(k string) bool { return owner[k] == s }}
			h, err := eng.SubmitShard(context.Background(), query, run, nil)
			if err != nil {
				t.Fatal(err)
			}
			ans, err := h.Wait(context.Background())
			if err != nil {
				t.Fatalf("%s shard %d: %v", label, s, err)
			}
			answers = append(answers, ans)
			tasks += ans.Report.Metrics.Tasks
			asks += ans.Report.Assignments
			if ans.Report.Metrics.Rounds > rounds {
				rounds = ans.Report.Metrics.Rounds
			}
			truthTotal += ans.Shard.TruthTotal
			truthCorrect += ans.Shard.TruthCorrect
			eng.Close()
		}

		rows, conf := mergeShardAnswers(t, answers)
		if !reflect.DeepEqual(rows, ref.Rows) {
			t.Fatalf("%s: merged rows %v, whole %v", label, rows, ref.Rows)
		}
		for i := range conf {
			want := 1.0
			if ref.Report.Confidence != nil {
				want = ref.Report.Confidence[i]
			}
			if conf[i] != want {
				t.Fatalf("%s: row %d confidence %v, whole %v", label, i, conf[i], want)
			}
		}
		if tasks != ref.Report.Metrics.Tasks || asks != ref.Report.Assignments {
			t.Fatalf("%s: merged tasks/assignments %d/%d, whole %d/%d",
				label, tasks, asks, ref.Report.Metrics.Tasks, ref.Report.Assignments)
		}
		if rounds != ref.Report.Metrics.Rounds {
			t.Fatalf("%s: merged rounds %d, whole %d", label, rounds, ref.Report.Metrics.Rounds)
		}
		p, r := ref.Report.Metrics.Precision, ref.Report.Metrics.Recall
		var mp, mr float64
		switch {
		case len(rows) == 0 && truthTotal == 0:
			mp, mr = 1, 1
		case len(rows) == 0:
			mp, mr = 0, 0
		case truthTotal == 0:
			mp, mr = float64(truthCorrect)/float64(len(rows)), 1
		default:
			mp = float64(truthCorrect) / float64(len(rows))
			mr = float64(truthCorrect) / float64(truthTotal)
		}
		if mp != p || mr != r {
			t.Fatalf("%s: merged precision/recall %v/%v, whole %v/%v", label, mp, mr, p, r)
		}
	}
}

// TestCacheDeltaReplication checks the replication loop end to end in
// process: an engine that paid for verdicts exports them, a peer
// imports them, and the peer's next identical query is served entirely
// from remote verdicts — cache hits with zero fresh crowd work.
func TestCacheDeltaReplication(t *testing.T) {
	query := dataset.Queries("paper")["2J"]

	a, err := New(testConfig(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(testConfig(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same config, different fingerprints: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	c, err := New(testConfig(t, 43))
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different seeds, same fingerprint")
	}
	c.Close()

	h, err := a.Submit(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	entries, seq := a.CacheDelta(0)
	if len(entries) == 0 {
		t.Fatal("no delta after a paid run")
	}
	if seq != a.CacheSeq() {
		t.Fatalf("delta seq %d, CacheSeq %d", seq, a.CacheSeq())
	}
	if tail, _ := a.CacheDelta(seq); len(tail) != 0 {
		t.Fatalf("delta past the head returned %d entries", len(tail))
	}

	if n := b.ImportVerdicts(entries); n != len(entries) {
		t.Fatalf("imported %d of %d", n, len(entries))
	}
	if n := b.ImportVerdicts(entries); n != 0 {
		t.Fatalf("re-import accepted %d entries", n)
	}

	h, err = b.Submit(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, ref.Rows) {
		t.Fatalf("imported-verdict run diverged: %v vs %v", got.Rows, ref.Rows)
	}
	st := b.Stats()
	if st.AssignmentsIssued != 0 {
		t.Fatalf("peer issued %d assignments despite full import", st.AssignmentsIssued)
	}
	if st.RemoteHits == 0 || st.RemoteImported == 0 {
		t.Fatalf("remote counters not moving: hits=%d imported=%d", st.RemoteHits, st.RemoteImported)
	}
	if got.Report.CachedTasks != got.Report.Metrics.Tasks {
		t.Fatalf("remote-served tasks not reported as cache hits: %d of %d",
			got.Report.CachedTasks, got.Report.Metrics.Tasks)
	}

	// A peer behind the truncation horizon gets the full-dump fallback
	// (from the payer: remote-flagged entries never re-export).
	full, _ := a.CacheDelta(-1)
	if len(full) == 0 {
		t.Fatal("full-dump fallback returned nothing")
	}
	for _, en := range full {
		if en.Key == "" {
			t.Fatal("full dump produced an empty key")
		}
	}
}
