package engine

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"

	"cdb/internal/crowd"
	"cdb/internal/exec"
	"cdb/internal/ledger"
	"cdb/internal/obs"
)

// Coalescer metrics (process-wide, across all engines).
var (
	mCoalTasks   = obs.Default.Counter("cdb_engine_tasks_total")
	mCoalShared  = obs.Default.Counter("cdb_engine_tasks_shared_total")
	mCoalSaved   = obs.Default.Counter("cdb_engine_assignments_saved_total")
	mInferredPub = obs.Default.Counter("cdb_engine_inferred_published_total")
	mInferredHit = obs.Default.Counter("cdb_engine_inferred_hits_total")
	mInferredRej = obs.Default.Counter("cdb_engine_inferred_rejected_total")
)

// coalescer is the engine's shared serving layer for crowd tasks: it
// implements exec.TaskResolver for every query the engine admits.
// Identical tasks — same canonical content key, same redundancy — are
// dispatched to the (simulated) platform once: the first query to ask
// owns the HIT, concurrent askers attach to it, and later askers are
// served from a bounded LRU verdict cache that survives across
// queries.
//
// Determinism is the load-bearing property. A task's answers are a
// pure function of (engine seed, task key, redundancy): workers are
// drawn and judged from a hash-derived RNG stream, never from the
// pool's stateful arrival RNG. Scheduling therefore cannot leak into
// verdicts — a query returns bit-identical rows whether it ran alone,
// raced seven others, or hit the cache, which is what makes coalescing
// safe to switch on.
//
// Each verdict charges the full redundancy k to every subscribing
// query (virtual chargeback): per-query Stats are what they would have
// been without sharing, and the engine's own counters report the real
// platform work and the savings.
type coalescer struct {
	seed    uint64
	pool    *crowd.Pool
	journal Journal // nil without a ledger

	mu       sync.Mutex
	inflight map[string]*flight
	cache    *lruCache[exec.TaskVerdict]

	resolved    atomic.Int64 // tasks resolved
	issued      atomic.Int64 // assignments actually drawn from the crowd
	saved       atomic.Int64 // assignments avoided by sharing
	coalesced   atomic.Int64 // tasks attached to an in-flight HIT
	cached      atomic.Int64 // tasks served from the verdict cache
	ledgerHit   atomic.Int64 // tasks served from replayed ledger verdicts
	inferredPub atomic.Int64 // inferred verdicts accepted into the cache
	inferredHit atomic.Int64 // cache hits served by an inferred verdict
	inferredRej atomic.Int64 // inferred verdicts rejected by the agreement check
	remoteHit   atomic.Int64 // cache hits served by a replicated remote verdict
	imported    atomic.Int64 // remote verdicts accepted by ImportVerdicts

	// Replication delta log: every verdict this node added to its cache
	// by paying (owner resolve), deriving (accepted inference) or
	// replaying (ledger), in order, under its own lock so readers never
	// contend with the resolve path. deltaBase is the sequence number of
	// deltaLog[0]; base+len(log) is the next sequence.
	deltaMu   sync.Mutex
	deltaBase int64
	deltaLog  []CacheEntry
}

// flight is one in-flight HIT: the owner fills verdict and closes
// done; subscribers wait and copy.
type flight struct {
	done    chan struct{}
	verdict exec.TaskVerdict
}

func newCoalescer(seed uint64, pool *crowd.Pool, cacheSize int, journal Journal) *coalescer {
	return &coalescer{
		seed:     seed,
		pool:     pool,
		journal:  journal,
		inflight: make(map[string]*flight),
		cache:    newVerdictLRU(cacheSize),
	}
}

// Resolve implements exec.TaskResolver. Safe for concurrent use by
// many queries; returns a verdict for every requested edge.
func (c *coalescer) Resolve(ctx context.Context, reqs []exec.TaskRequest) (map[int]exec.TaskVerdict, error) {
	out := make(map[int]exec.TaskVerdict, len(reqs))
	for _, req := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := c.resolve(ctx, req)
		if err != nil {
			return nil, err
		}
		out[req.Edge] = v
		mCoalTasks.Inc()
		c.resolved.Add(1)
	}
	return out, nil
}

func (c *coalescer) resolve(ctx context.Context, req exec.TaskRequest) (exec.TaskVerdict, error) {
	// Redundancy is part of the sharing identity: a k=3 verdict must
	// not answer a k=5 question.
	key := strconv.Itoa(req.K) + "\x1f" + req.Key

	c.mu.Lock()
	if v, ok := c.cache.get(key); ok {
		// A replayed ledger verdict answers its first use with the flag
		// set, then downgrades to an ordinary cache entry. That keeps the
		// wire-visible Stats of a warm resume bit-identical to an
		// uninterrupted run: a replayed crowd verdict's first use mirrors
		// the owner resolve (Cached=false), later uses mirror cache hits;
		// a replayed inferred verdict mirrors a publish that preceded
		// every resolve, so even its first use counts Cached. Ledger
		// provenance is reported out of band (Report.LedgerTasks, engine
		// counters), never through the sharing telemetry.
		if v.Ledger {
			used := v
			used.Ledger = false
			c.cache.put(key, used)
		}
		c.mu.Unlock()
		if v.Ledger {
			c.ledgerHit.Add(1)
			mLedgerHits.Inc()
			if v.Inferred {
				v.Cached = true
				c.cached.Add(1)
			}
			// The first use settles the verdict; only settled verdicts
			// replicate (an unsettled one must answer its first use on
			// the shard that paid for it, or wire Stats diverge from the
			// single-node warm resume).
			used := v
			used.Ledger = false
			c.appendDelta(key, used)
		} else {
			v.Cached = true
			c.cached.Add(1)
			if v.Remote {
				c.remoteHit.Add(1)
				mRemoteHit.Inc()
			}
		}
		c.saved.Add(int64(v.Assignments))
		mCoalShared.Inc()
		mCoalSaved.Add(int64(v.Assignments))
		if v.Inferred {
			c.inferredHit.Add(1)
			mInferredHit.Inc()
		}
		return v, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return exec.TaskVerdict{}, ctx.Err()
		}
		v := fl.verdict
		v.Coalesced = true
		c.coalesced.Add(1)
		c.saved.Add(int64(v.Assignments))
		mCoalShared.Inc()
		mCoalSaved.Add(int64(v.Assignments))
		return v, nil
	}
	// Second-level lookup: the durable ledger may hold a verdict the
	// LRU evicted (or never admitted). Serving it re-caches it and
	// charges the crowd nothing — the work was paid before a restart.
	if c.journal != nil {
		if rec, ok := c.journal.Verdict(key); ok {
			v := exec.TaskVerdict{
				Value:       rec.Value,
				Confidence:  rec.Confidence,
				Assignments: rec.Assignments,
				Inferred:    rec.Inferred,
				Ledger:      true,
			}
			// Re-cache already downgraded: this lookup IS the first use.
			used := v
			used.Ledger = false
			c.cache.put(key, used)
			c.mu.Unlock()
			c.appendDelta(key, used)
			c.ledgerHit.Add(1)
			mLedgerHits.Inc()
			if v.Inferred {
				v.Cached = true
				c.cached.Add(1)
			}
			c.saved.Add(int64(v.Assignments))
			mCoalShared.Inc()
			mCoalSaved.Add(int64(v.Assignments))
			if v.Inferred {
				c.inferredHit.Add(1)
				mInferredHit.Inc()
			}
			return v, nil
		}
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	fl.verdict = c.answer(req)
	c.issued.Add(int64(fl.verdict.Assignments))
	// Write-ahead: the verdict becomes durable before any subscriber
	// can observe it, so under -fsync always an acknowledged verdict
	// survives even kill -9.
	if c.journal != nil {
		c.journal.AppendVerdict(ledger.Verdict{
			Key:         key,
			Value:       fl.verdict.Value,
			Confidence:  fl.verdict.Confidence,
			Assignments: fl.verdict.Assignments,
		})
	}

	c.mu.Lock()
	c.cache.put(key, fl.verdict)
	delete(c.inflight, key)
	c.mu.Unlock()
	close(fl.done)
	c.appendDelta(key, fl.verdict)
	return fl.verdict, nil
}

// answer simulates one HIT deterministically through the shared
// content-pure verdict function (crowd.PureVerdict): k distinct
// workers drawn by a partial Fisher–Yates over the pool, each judging
// correctly with its latent accuracy, all randomness from a
// content-keyed hash RNG. The pool's own RNG streams are never
// touched, so engine queries do not perturb (and are not perturbed by)
// DB.Exec traffic.
func (c *coalescer) answer(req exec.TaskRequest) exec.TaskVerdict {
	value, conf, asks := crowd.PureVerdict(c.seed, c.pool, req.Key, req.Truth, req.Prior, req.K)
	return exec.TaskVerdict{Value: value, Confidence: conf, Assignments: asks}
}

// PublishInferred implements exec.InferredPublisher: a transitive
// query pushes the labels its closure derived into the shared verdict
// cache, so later queries asking the same task are served without
// crowd work.
//
// Bit-identity is preserved by an agreement filter: the deterministic
// crowd verdict for the task is computed (a pure function of seed, key
// and redundancy — no assignments are issued), and the inferred label
// is published only when the two agree. The cached entry is then
// byte-identical to what a real resolve would have produced, merely
// flagged Inferred, so a query observes the same answers whether it
// hit this entry, the crowd, or ran before the publisher. A
// disagreeing label — inference chained through wrong answers, or the
// crowd itself would err — is dropped and counted, never cached.
// Entries already resolved or in flight are left untouched.
func (c *coalescer) PublishInferred(tasks []exec.InferredTask) {
	for _, t := range tasks {
		v := c.answer(t.Req)
		if v.Value != t.Value {
			c.inferredRej.Add(1)
			mInferredRej.Inc()
			continue
		}
		v.Inferred = true
		key := strconv.Itoa(t.Req.K) + "\x1f" + t.Req.Key
		c.mu.Lock()
		_, have := c.cache.items[key]
		_, flying := c.inflight[key]
		if !have && !flying {
			c.cache.put(key, v)
		}
		c.mu.Unlock()
		if have || flying {
			continue
		}
		// Accepted inferred verdicts are durable too: after a restart
		// they answer their task from the ledger exactly as they would
		// have from the cache.
		if c.journal != nil {
			c.journal.AppendVerdict(ledger.Verdict{
				Key:         key,
				Value:       v.Value,
				Confidence:  v.Confidence,
				Assignments: v.Assignments,
				Inferred:    true,
			})
		}
		c.inferredPub.Add(1)
		mInferredPub.Inc()
		c.appendDelta(key, v)
	}
}

// lruCache is a bounded string-keyed map with least-recently-used
// eviction. Not synchronized — callers hold their own lock.
type lruCache[V any] struct {
	cap   int
	items map[string]*lruNode[V]
	head  *lruNode[V] // most recently used
	tail  *lruNode[V] // least recently used
}

type lruNode[V any] struct {
	key        string
	val        V
	prev, next *lruNode[V]
}

// newVerdictLRU sizes the shared task-verdict cache (default 4096).
func newVerdictLRU(capacity int) *lruCache[exec.TaskVerdict] {
	if capacity <= 0 {
		capacity = 4096
	}
	return newLRU[exec.TaskVerdict](capacity)
}

func newLRU[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{cap: capacity, items: make(map[string]*lruNode[V], capacity)}
}

func (l *lruCache[V]) get(key string) (V, bool) {
	n, ok := l.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	l.moveToFront(n)
	return n.val, true
}

func (l *lruCache[V]) put(key string, v V) {
	if n, ok := l.items[key]; ok {
		n.val = v
		l.moveToFront(n)
		return
	}
	n := &lruNode[V]{key: key, val: v}
	l.items[key] = n
	l.pushFront(n)
	if len(l.items) > l.cap {
		evict := l.tail
		l.unlink(evict)
		delete(l.items, evict.key)
	}
}

func (l *lruCache[V]) pushFront(n *lruNode[V]) {
	n.prev, n.next = nil, l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *lruCache[V]) unlink(n *lruNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *lruCache[V]) moveToFront(n *lruNode[V]) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}

func (l *lruCache[V]) len() int { return len(l.items) }
