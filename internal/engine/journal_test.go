package engine

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cdb/internal/ledger"
	"cdb/internal/testutil"
)

// runWithJournal executes queries one at a time on an engine backed by
// a ledger in dir, returns the outcomes and the engine's final stats.
// The engine owns (and closes) the journal.
func runWithJournal(t *testing.T, dir string, seed uint64, queries []string) ([]outcome, Stats) {
	t.Helper()
	jl, err := ledger.Open(dir, ledger.Options{Seed: seed, Fsync: ledger.FsyncNever})
	if err != nil {
		t.Fatalf("ledger.Open: %v", err)
	}
	cfg := testConfig(t, seed)
	cfg.MaxInFlight = 1
	cfg.MaxQueue = len(queries) + 1
	cfg.Journal = jl
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]outcome, len(queries))
	for i, q := range queries {
		h, err := e.Submit(context.Background(), q)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ans, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out[i] = outcome{cols: ans.Columns, rows: ans.Rows, rep: ans.Report}
	}
	st := e.Stats()
	e.Close()
	return out, st
}

// wireView is the slice of a Report that reaches the HTTP wire (plus
// row data): the fields a resumed query must reproduce bit-identically.
// Report.Answers (stripped from replayed answers) and LedgerTasks
// (provenance, deliberately off the wire) are excluded by design.
type wireView struct {
	cols                   []string
	rows                   [][]string
	tasks, rounds          int
	precision, recall      float64
	assignments, hits      int
	dollars                float64
	confidence             []float64
	cachedTasks, coalesced int
	inferred               int
	partial                bool
	partialReason          string
}

func toWire(o outcome) wireView {
	r := o.rep
	return wireView{
		cols: o.cols, rows: o.rows,
		tasks: r.Metrics.Tasks, rounds: r.Metrics.Rounds,
		precision: r.Metrics.Precision, recall: r.Metrics.Recall,
		assignments: r.Assignments, hits: r.HITs, dollars: r.Dollars,
		confidence:  r.Confidence,
		cachedTasks: r.CachedTasks, coalesced: r.Coalesced, inferred: r.Inferred,
		partial: r.Reliability.Partial, partialReason: r.Reliability.Reason,
	}
}

func sameOutcomes(t *testing.T, label string, got, want []outcome) {
	t.Helper()
	for i := range want {
		g, w := toWire(got[i]), toWire(want[i])
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: query %d wire view diverged:\ngot  %+v\nwant %+v", label, i, g, w)
		}
	}
}

// TestJournalDoesNotPerturbResults: an engine with a ledger attached
// must produce bit-identical answers and per-query reports to one
// without — logging is pure observation.
func TestJournalDoesNotPerturbResults(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	queries := workload()[:5]
	ref := runSequential(t, 42, queries, false)
	got, st := runWithJournal(t, t.TempDir(), 42, queries)
	sameOutcomes(t, "with-journal vs without", got, ref)
	if st.LedgerHits != 0 {
		t.Fatalf("fresh ledger produced %d replay hits", st.LedgerHits)
	}
}

// TestWarmRestartBitIdentical is the tentpole property at engine level:
// close an engine, reopen its ledger under the same seed, resubmit —
// answers and reports are bit-identical to a cold run, and the crowd
// is charged nothing (every completed answer replays whole).
func TestWarmRestartBitIdentical(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	dir := t.TempDir()
	queries := workload()[:5]
	ref := runSequential(t, 42, queries, false)

	first, _ := runWithJournal(t, dir, 42, queries)
	sameOutcomes(t, "first ledger run", first, ref)

	second, st := runWithJournal(t, dir, 42, queries)
	sameOutcomes(t, "warm restart", second, ref)
	if st.AssignmentsIssued != 0 {
		t.Fatalf("warm restart issued %d assignments; completed work must replay free", st.AssignmentsIssued)
	}
	if st.QueriesCached != int64(len(queries)) {
		t.Fatalf("QueriesCached = %d, want %d (answers replay whole)", st.QueriesCached, len(queries))
	}
	ls := (&Engine{}).LedgerStats()
	if ls.Enabled {
		t.Fatalf("journal-less engine reports an enabled ledger")
	}
}

// TestTruncatedLedgerResumes cuts the WAL at arbitrary byte offsets —
// the kill -9 shapes — and resubmits: every prefix must reopen without
// error and produce bit-identical answers, paying only for what the
// truncated ledger no longer holds.
func TestTruncatedLedgerResumes(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	master := t.TempDir()
	queries := workload()[:3]
	ref := runSequential(t, 42, queries, false)
	if _, st := runWithJournal(t, master, 42, queries); st.AssignmentsIssued == 0 {
		t.Fatalf("seeding run issued no assignments")
	}
	wal, err := os.ReadFile(filepath.Join(master, "wal.ldg"))
	if err != nil {
		t.Fatal(err)
	}

	// A spread of cut points: empty, mid-header, 1/4, mid, 3/4, one
	// byte short (guaranteed mid-frame), full.
	cuts := []int{0, 5, len(wal) / 4, len(wal) / 2, 3 * len(wal) / 4, len(wal) - 1, len(wal)}
	for _, cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.ldg"), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, st := runWithJournal(t, dir, 42, queries)
		sameOutcomes(t, "resume after cut", got, ref)
		if cut == len(wal) && st.AssignmentsIssued != 0 {
			t.Fatalf("cut=%d: full ledger still issued %d assignments", cut, st.AssignmentsIssued)
		}
		if cut == 0 && st.LedgerHits != 0 {
			t.Fatalf("cut=0: empty ledger produced replay hits")
		}
	}
}

// TestLedgerSeedMismatchRejected: an engine must refuse a ledger
// recorded under another seed — replaying those verdicts would serve
// answers this engine could never produce.
func TestLedgerSeedMismatchRejected(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	dir := t.TempDir()
	jl, err := ledger.Open(dir, ledger.Options{Seed: 1, Fsync: ledger.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	jl.AppendVerdict(ledger.Verdict{Key: "5\x1fk", Value: true, Confidence: 0.8, Assignments: 5})
	jl.Close()
	if _, err := ledger.Open(dir, ledger.Options{Seed: 2, Fsync: ledger.FsyncNever}); err == nil {
		t.Fatal("Open under a different seed succeeded")
	}
}

// TestLedgerStatsSurface: the engine surfaces ledger provenance out of
// band — enabled flag, replay hits, durable record counts.
func TestLedgerStatsSurface(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	dir := t.TempDir()
	queries := workload()[:2]
	runWithJournal(t, dir, 42, queries)

	jl, err := ledger.Open(dir, ledger.Options{Seed: 42, Fsync: ledger.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 42)
	cfg.MaxInFlight = 1
	cfg.MaxQueue = 4
	cfg.Journal = jl
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ls := e.LedgerStats()
	if !ls.Enabled {
		t.Fatal("LedgerStats().Enabled = false with a journal attached")
	}
	if ls.Verdicts == 0 || ls.Statements == 0 || ls.Answers == 0 {
		t.Fatalf("replayed ledger holds no records: %+v", ls)
	}
	if ls.Replayed == 0 {
		t.Fatalf("Replayed = 0 after a warm boot: %+v", ls)
	}
}
