package engine

import (
	"context"
	"testing"
	"time"
)

// TestIntrospectionLifecycle walks one entry through
// admit → start → roundDone → finish and checks the registry's view at
// each step.
func TestIntrospectionLifecycle(t *testing.T) {
	in := newIntrospection(4)
	e := in.admit("req-1", "SELECT 1")

	snap := in.snapshot(false)
	if len(snap.InFlight) != 1 || len(snap.Recent) != 0 {
		t.Fatalf("after admit: %d in-flight, %d recent; want 1, 0", len(snap.InFlight), len(snap.Recent))
	}
	st := snap.InFlight[0]
	if st.State != StateQueued || st.RequestID != "req-1" || st.Statement != "SELECT 1" {
		t.Errorf("queued status = %+v", st)
	}

	in.start(e)
	in.roundDone(e, 2, 10, 50, 3)
	st = in.snapshot(false).InFlight[0]
	if st.State != StateRunning || st.Rounds != 2 || st.Tasks != 10 || st.Assignments != 50 || st.Open != 3 {
		t.Errorf("running status = %+v", st)
	}

	// Draining repaints running entries only at snapshot time.
	if got := in.snapshot(true).InFlight[0].State; got != StateDraining {
		t.Errorf("draining snapshot state = %q, want %q", got, StateDraining)
	}

	in.finish(e, StateDone, func(st *QueryStatus) { st.HITs = 7 })
	snap = in.snapshot(false)
	if len(snap.InFlight) != 0 || len(snap.Recent) != 1 {
		t.Fatalf("after finish: %d in-flight, %d recent; want 0, 1", len(snap.InFlight), len(snap.Recent))
	}
	fin := snap.Recent[0]
	if fin.State != StateDone || fin.HITs != 7 || fin.Rounds != 2 {
		t.Errorf("finished status = %+v", fin)
	}
	if fin.ElapsedMs < 0 {
		t.Errorf("negative elapsed: %d", fin.ElapsedMs)
	}
}

// TestIntrospectionRing pins the recent ring: bounded capacity, most
// recent first, oldest evicted.
func TestIntrospectionRing(t *testing.T) {
	in := newIntrospection(2)
	for i := 0; i < 3; i++ {
		e := in.admit("", "q")
		in.start(e)
		in.finish(e, StateDone, nil)
	}
	snap := in.snapshot(false)
	if len(snap.Recent) != 2 {
		t.Fatalf("recent len = %d, want capacity 2", len(snap.Recent))
	}
	if snap.Recent[0].ID != 3 || snap.Recent[1].ID != 2 {
		t.Errorf("recent order = [%d %d], want [3 2] (most recent first)", snap.Recent[0].ID, snap.Recent[1].ID)
	}
}

// TestIntrospectionInFlightOrder pins the deterministic admission-order
// sort of the live table.
func TestIntrospectionInFlightOrder(t *testing.T) {
	in := newIntrospection(0) // 0 → default capacity
	var entries []*queryEntry
	for i := 0; i < 5; i++ {
		entries = append(entries, in.admit("", "q"))
	}
	snap := in.snapshot(false)
	for i, st := range snap.InFlight {
		if st.ID != int64(i+1) {
			t.Fatalf("in-flight[%d].ID = %d, want %d", i, st.ID, i+1)
		}
	}
	for _, e := range entries {
		in.finish(e, StateFailed, nil)
	}
}

// TestEngineIntrospectE2E runs a real query through the engine and
// checks it lands in the recent ring with final economics.
func TestEngineIntrospectE2E(t *testing.T) {
	e, err := New(testConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()

	h, err := e.Submit(ctx, workload()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// finish() runs on the serve goroutine after the handle completes;
	// poll briefly for the retirement.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := e.Introspect()
		if len(snap.Recent) == 1 {
			fin := snap.Recent[0]
			if fin.State != StateDone {
				t.Errorf("state = %q, want done", fin.State)
			}
			if fin.Rounds < 1 || fin.Tasks < 1 || fin.HITs < 1 {
				t.Errorf("economics = %+v, want rounds/tasks/hits >= 1", fin)
			}
			if len(snap.InFlight) != 0 {
				t.Errorf("completed query still in-flight: %+v", snap.InFlight)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never retired into the recent ring: %+v", snap)
		}
		time.Sleep(time.Millisecond)
	}
}
