package engine

// Cluster support: everything a component-sharded cdbd fleet needs
// from the engine, with zero knowledge of rings, transports or peers
// (that lives in internal/cluster).
//
//   - SubmitShard executes a statement restricted to an owned subset of
//     its tuple-graph components; the Answer carries an exec.ShardInfo
//     sidecar (merge keys, owned truth counts) a coordinator merges.
//   - ComponentKeys derives the canonical component partition of a
//     statement, the routing key space.
//   - CacheDelta / ImportVerdicts replicate the verdict cache: the
//     coalescer logs every settled verdict it adds, peers pull (or are
//     pushed) the suffix since their last sequence number and insert
//     the entries Remote-flagged. Verdicts are a pure function of
//     (seed, key, redundancy), so replication needs no invalidation
//     and imports can never disagree with local resolution.
//   - Fingerprint detects misconfigured fleets: two engines replicate
//     or merge only when every verdict-determining input matches.

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"cdb/internal/cql"
	"cdb/internal/exec"
	"cdb/internal/obs"
)

var (
	mRemoteHit = obs.Default.Counter("cdb_engine_remote_hits_total")
	mImported  = obs.Default.Counter("cdb_engine_remote_imported_total")
)

// CacheEntry is one replicated verdict: the composite cache key
// (redundancy + canonical task key) and the full verdict it maps to.
type CacheEntry struct {
	Key         string  `json:"key"`
	Value       bool    `json:"value"`
	Confidence  float64 `json:"confidence"`
	Assignments int     `json:"assignments"`
	Inferred    bool    `json:"inferred,omitempty"`
}

// deltaLogCap bounds the replication log; peers further behind than
// this fall back to a full cache dump.
const deltaLogCap = 65536

// appendDelta records one settled verdict in the replication log.
// Never called for imports (re-exporting would ping-pong entries
// between shards) or for boot replays (unsettled until first use).
func (c *coalescer) appendDelta(key string, v exec.TaskVerdict) {
	c.deltaMu.Lock()
	c.deltaLog = append(c.deltaLog, CacheEntry{
		Key:         key,
		Value:       v.Value,
		Confidence:  v.Confidence,
		Assignments: v.Assignments,
		Inferred:    v.Inferred,
	})
	if over := len(c.deltaLog) - deltaLogCap; over > 0 {
		c.deltaBase += int64(over)
		n := copy(c.deltaLog, c.deltaLog[over:])
		c.deltaLog = c.deltaLog[:n]
	}
	c.deltaMu.Unlock()
}

// delta returns the log suffix after sequence number since, plus the
// sequence a caller should resume from. A peer behind the truncation
// horizon gets a full dump of the settled cache instead (sorted by key
// for determinism); entries added during the dump reappear in the next
// delta, and duplicate imports are no-ops.
func (c *coalescer) delta(since int64) ([]CacheEntry, int64) {
	c.deltaMu.Lock()
	seq := c.deltaBase + int64(len(c.deltaLog))
	if since >= c.deltaBase {
		start := since - c.deltaBase
		if start > int64(len(c.deltaLog)) {
			start = int64(len(c.deltaLog))
		}
		out := append([]CacheEntry(nil), c.deltaLog[start:]...)
		c.deltaMu.Unlock()
		return out, seq
	}
	c.deltaMu.Unlock()

	c.mu.Lock()
	out := make([]CacheEntry, 0, len(c.cache.items))
	for key, n := range c.cache.items {
		v := n.val
		// Ledger replays stay local until their first use settles them
		// (see resolve); remote entries already live on their origin.
		if v.Ledger || v.Remote {
			continue
		}
		out = append(out, CacheEntry{
			Key:         key,
			Value:       v.Value,
			Confidence:  v.Confidence,
			Assignments: v.Assignments,
			Inferred:    v.Inferred,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, seq
}

// importVerdicts inserts replicated verdicts, Remote-flagged, skipping
// keys already cached or in flight (local provenance wins — it carries
// the sharing telemetry the stats paths expect). Returns the number
// accepted.
func (c *coalescer) importVerdicts(entries []CacheEntry) int {
	n := 0
	for _, en := range entries {
		v := exec.TaskVerdict{
			Value:       en.Value,
			Confidence:  en.Confidence,
			Assignments: en.Assignments,
			Inferred:    en.Inferred,
			Remote:      true,
		}
		c.mu.Lock()
		_, have := c.cache.items[en.Key]
		_, flying := c.inflight[en.Key]
		if !have && !flying {
			c.cache.put(en.Key, v)
			n++
		}
		c.mu.Unlock()
	}
	if n > 0 {
		c.imported.Add(int64(n))
		mImported.Add(int64(n))
	}
	return n
}

// CacheDelta returns every replicable verdict added after sequence
// number since (0 = from the beginning) and the next sequence number.
func (e *Engine) CacheDelta(since int64) ([]CacheEntry, int64) {
	return e.coal.delta(since)
}

// ImportVerdicts merges a peer's cache delta into the verdict cache
// and returns how many entries were new here. Safe against concurrent
// queries; an entry that loses the race to a local resolve is simply
// dropped (both would carry the identical verdict).
func (e *Engine) ImportVerdicts(entries []CacheEntry) int {
	return e.coal.importVerdicts(entries)
}

// CacheSeq is the current replication sequence number (entries ever
// logged); surfaced on the cluster health endpoint so peers and
// monitors can see replication lag.
func (e *Engine) CacheSeq() int64 {
	e.coal.deltaMu.Lock()
	seq := e.coal.deltaBase + int64(len(e.coal.deltaLog))
	e.coal.deltaMu.Unlock()
	return seq
}

// Fingerprint hashes every input that determines a verdict or an
// answer: seed, redundancy, epsilon and the worker pool's latent
// accuracies. Two engines may replicate caches or merge shard results
// only when their fingerprints match — anything else would break the
// bit-identity contract, so the cluster layer refuses.
func (e *Engine) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	wr := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wr(e.cfg.Seed)
	wr(uint64(e.cfg.Redundancy))
	wr(math.Float64bits(e.cfg.Epsilon))
	workers := e.cfg.Pool.Workers()
	wr(uint64(len(workers)))
	for _, w := range workers {
		wr(math.Float64bits(w.LatentAccuracy()))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// QueueDepth reports admission pressure: queries holding execution
// slots and queries queued behind them. The coordinator prefers less
// loaded shards when several could execute a scatter part.
func (e *Engine) QueueDepth() (executing, queued int) {
	executing = len(e.slots)
	queued = len(e.admit) - executing
	if queued < 0 {
		queued = 0
	}
	return executing, queued
}

// ShardRun scopes one submission to the components a shard owns.
type ShardRun struct {
	// Fleet and Target name the partition for result-cache isolation:
	// the same statement under a different fleet layout or ownership
	// must not share whole answers.
	Fleet  string
	Target string
	// Owned decides component ownership by canonical component key.
	Owned func(componentKey string) bool
}

// SubmitShard is SubmitProgress restricted to the components run.Owned
// accepts: every other component is colored red before execution, so
// the query does exactly the owned slice of the work while task keys,
// edge ids and verdicts stay globally consistent with the other
// shards. The Answer's Shard sidecar carries what a coordinator needs
// to merge shard results bit-identically to a single-node run.
// Shard-scoped answers are never journaled (a replayed partial answer
// would poison the unfiltered answer cache).
func (e *Engine) SubmitShard(ctx context.Context, query string, run *ShardRun, progress func(exec.RoundUpdate)) (*Handle, error) {
	return e.submit(ctx, query, progress, run)
}

// ComponentKeys plans the statement (through the shared similarity
// cache — repeated routing plans cost one tokenization) and returns
// the canonical key of every tuple-graph component, sorted. This is
// the coordinator's routing key space: a key's ring owner executes
// that component.
func (e *Engine) ComponentKeys(query string) ([]string, error) {
	st, err := cql.Parse(query)
	if err != nil {
		return nil, err
	}
	s, ok := st.(*cql.Select)
	if !ok {
		return nil, fmt.Errorf("%w: %T is not served concurrently; use DB.Exec", ErrUnsupported, st)
	}
	if s.GroupBy != nil || s.OrderBy != nil {
		return nil, fmt.Errorf("%w: GROUP BY / ORDER BY need the exclusive DB.Exec path", ErrUnsupported)
	}
	p, err := exec.BuildPlan(s, e.cfg.Catalog, e.cfg.Oracle, exec.PlanConfig{
		Sim:     e.cfg.Sim,
		Epsilon: e.cfg.Epsilon,
		Joiner:  e.joins.Join,
	})
	if err != nil {
		return nil, err
	}
	return exec.ComponentKeys(p), nil
}
