package plan

import (
	"fmt"
	"strings"

	"cdb/internal/stats"
	"cdb/internal/table"
)

// Case is one randomized multi-way CROWDJOIN scenario: a catalog of
// 3–6 tables and a SELECT joining them in a chain or star. The
// property tests and the plan benchmark (cdbench -exp plan) share this
// generator so they exercise identical workloads.
type Case struct {
	Catalog *table.Catalog
	Query   string
	Tables  int
	// Star reports the shape (false = chain).
	Star bool
	// EmptyPred is the predicate index generated with disjoint
	// vocabularies — a provably empty join the planner must early-exit
	// on — or -1.
	EmptyPred int
}

// RandomCase generates one scenario from the rng: table sizes and
// per-predicate vocabulary sizes are skewed so candidate-edge counts
// differ visibly between predicates (what greedy ordering exploits),
// and a fraction of cases plant one predicate with zero similarity
// overlap (what early termination exploits). Values inside one
// vocabulary share most of their 2-grams, so the prefix-filter sim
// join produces dense candidates while exact equality drives ground
// truth.
func RandomCase(rng *stats.RNG, nTables int) Case {
	if nTables < 2 {
		nTables = 2
	}
	nPreds := nTables - 1
	c := Case{Tables: nTables, EmptyPred: -1}
	c.Star = nTables >= 3 && rng.Bool(0.35)
	if rng.Bool(0.3) {
		c.EmptyPred = rng.Intn(nPreds)
	}

	// One vocabulary per predicate, deliberately uneven in size: a
	// small vocabulary over many rows yields a dense candidate set, a
	// large one a sparse set. Distinct prefix letters keep predicates'
	// vocabularies dissimilar under 2-gram Jaccard.
	vocab := make([][]string, nPreds)
	right := make([][]string, nPreds)
	for i := range vocab {
		size := 2 + rng.Intn(10)
		words := make([]string, size)
		for k := range words {
			words[k] = fmt.Sprintf("v%c%02d", 'a'+byte(i%26), k)
		}
		vocab[i] = words
		right[i] = words
		if i == c.EmptyPred {
			// Zero 2-gram overlap with the left side: the sim join
			// yields no candidate edges at all.
			disjoint := make([]string, size)
			for k := range disjoint {
				disjoint[k] = fmt.Sprintf("zq%02dx", 50+k)
			}
			right[i] = disjoint
		}
	}

	pick := func(words []string) string { return words[rng.Intn(len(words))] }
	cat := table.NewCatalog()
	newTable := func(idx int, aVals, bVals func(row int) string, rows int) {
		tb := table.New(table.Schema{
			Name: fmt.Sprintf("T%d", idx),
			Columns: []table.Column{
				{Name: "a", Kind: table.String},
				{Name: "b", Kind: table.String},
			},
		})
		for r := 0; r < rows; r++ {
			tb.MustAppend(table.Tuple{table.SV(aVals(r)), table.SV(bVals(r))})
		}
		cat.Register(tb)
	}

	rows := func() int { return 3 + rng.Intn(10) }
	unused := func(r int) string { return fmt.Sprintf("u%d", r) }
	if c.Star {
		// Pred i joins T0.b with T(i+1).a: every spoke compares against
		// the same center column, so the spokes must share one
		// vocabulary or no embedding can satisfy all predicates at once.
		// Each spoke draws from a random-size subset of it, which skews
		// candidate-edge counts between predicates; the planted empty
		// predicate keeps its disjoint words.
		base := vocab[0]
		newTable(0, unused, func(int) string { return pick(base) }, rows())
		for i := 0; i < nPreds; i++ {
			words := base[:1+rng.Intn(len(base))]
			if i == c.EmptyPred {
				words = right[i]
			}
			newTable(i+1, func(int) string { return pick(words) }, unused, rows())
		}
	} else {
		// Chain: pred i joins Ti.b with T(i+1).a.
		newTable(0, unused, func(int) string { return pick(vocab[0]) }, rows())
		for i := 1; i < nTables; i++ {
			aWords := right[i-1]
			bWords := []string(nil)
			if i < nPreds {
				bWords = vocab[i]
			}
			newTable(i,
				func(int) string { return pick(aWords) },
				func(r int) string {
					if bWords == nil {
						return unused(r)
					}
					return pick(bWords)
				},
				rows())
		}
	}
	c.Catalog = cat

	var preds []string
	for i := 0; i < nPreds; i++ {
		if c.Star {
			preds = append(preds, fmt.Sprintf("T0.b CROWDJOIN T%d.a", i+1))
		} else {
			preds = append(preds, fmt.Sprintf("T%d.b CROWDJOIN T%d.a", i, i+1))
		}
	}
	var from []string
	for i := 0; i < nTables; i++ {
		from = append(from, fmt.Sprintf("T%d", i))
	}
	c.Query = fmt.Sprintf("SELECT * FROM %s WHERE %s;",
		strings.Join(from, ", "), strings.Join(preds, " AND "))
	return c
}
