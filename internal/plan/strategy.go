package plan

import (
	"context"

	"cdb/internal/crowd"
	"cdb/internal/exec"
	"cdb/internal/graph"
)

// Ordered executes a planned predicate order: each round asks every
// valid uncolored edge of the current predicate, advancing once the
// predicate has none left. Run-time validity pruning composes with the
// plan — red answers on an early predicate invalidate edges of later
// ones before they are ever asked, and when validity empties the graph
// the strategy finishes without touching the remaining predicates.
// Like every cost.Strategy it drives one execution at a time.
type Ordered struct {
	// Order is the predicate execution order (Decision.Order).
	Order []int

	idx int
	all []int
	buf []int
}

// Name implements cost.Strategy.
func (o *Ordered) Name() string { return "Planned" }

// NextRound implements cost.Strategy: the valid uncolored edges of the
// first predicate in the order that still has any.
func (o *Ordered) NextRound(g *graph.Graph) []int {
	for o.idx < len(o.Order) {
		batch := o.collect(g, o.Order[o.idx])
		if len(batch) > 0 {
			return batch
		}
		o.idx++
	}
	return nil
}

// Flush implements cost.Strategy: everything the plan still intends to
// ask, flattened across the remaining predicates in order.
func (o *Ordered) Flush(g *graph.Graph) []int {
	var out []int
	for i := o.idx; i < len(o.Order); i++ {
		out = append(out, o.collect(g, o.Order[i])...)
	}
	return out
}

func (o *Ordered) collect(g *graph.Graph, pred int) []int {
	o.all = g.ValidUncoloredInto(o.all)
	batch := o.buf[:0]
	for _, id := range o.all {
		if g.Edge(id).Pred == pred {
			batch = append(batch, id)
		}
	}
	o.buf = batch
	return batch
}

// PureResolver resolves every task through crowd.PureVerdict, making
// verdicts a pure function of (seed, task key, redundancy) — the same
// content-pure discipline the serving engine's coalescer follows, minus
// the sharing machinery. It is what lets DB.Exec compare a greedy plan
// against the fixed order bit-identically: asking the same question in
// a different round, or never needing to ask it at all, cannot perturb
// any other verdict. Stateless and safe for concurrent use.
type PureResolver struct {
	Seed uint64
	Pool *crowd.Pool
}

// Resolve implements exec.TaskResolver.
func (r *PureResolver) Resolve(_ context.Context, reqs []exec.TaskRequest) (map[int]exec.TaskVerdict, error) {
	out := make(map[int]exec.TaskVerdict, len(reqs))
	for _, req := range reqs {
		value, conf, asks := crowd.PureVerdict(r.Seed, r.Pool, req.Key, req.Truth, req.Prior, req.K)
		out[req.Edge] = exec.TaskVerdict{Value: value, Confidence: conf, Assignments: asks}
	}
	return out, nil
}
