package plan_test

import (
	"strings"
	"testing"

	"cdb/internal/cql"
	"cdb/internal/exec"
	"cdb/internal/graph"
	"cdb/internal/plan"
	"cdb/internal/table"
)

// buildPlan parses q and instantiates its query graph over cat with
// the default similarity settings and exact-match ground truth.
func buildPlan(t *testing.T, cat *table.Catalog, q string) *exec.Plan {
	t.Helper()
	st, err := cql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	p, err := exec.BuildPlan(st.(*cql.Select), cat, exec.ExactOracle{}, exec.PlanConfig{})
	if err != nil {
		t.Fatalf("build plan: %v", err)
	}
	return p
}

// chainCatalog builds T0(b) ~ T1(a,b) ~ T2(a) where predicate 0 is
// dense (every T0.b is similar to every T1.a) and predicate 1 is
// sparse (two candidate pairs).
func chainCatalog(t *testing.T) *table.Catalog {
	t.Helper()
	cat := table.NewCatalog()
	mk := func(name string, cols []string, rows [][]string) {
		var sc table.Schema
		sc.Name = name
		for _, c := range cols {
			sc.Columns = append(sc.Columns, table.Column{Name: c, Kind: table.String})
		}
		tb := table.New(sc)
		for _, r := range rows {
			tp := make(table.Tuple, len(r))
			for i, v := range r {
				tp[i] = table.SV(v)
			}
			tb.MustAppend(tp)
		}
		cat.Register(tb)
	}
	mk("T0", []string{"b"}, [][]string{{"xa01"}, {"xa02"}, {"xa03"}, {"xa04"}})
	mk("T1", []string{"a", "b"}, [][]string{{"xa01", "qq11"}, {"xa02", "qq12"}, {"xa03", "mm77"}})
	mk("T2", []string{"a"}, [][]string{{"qq11"}, {"zz99"}})
	return cat
}

const chainQuery = "SELECT * FROM T0, T1, T2 WHERE T0.b CROWDJOIN T1.a AND T1.b CROWDJOIN T2.a;"

func TestGreedyOrdersCheapestPredicateFirst(t *testing.T) {
	p := buildPlan(t, chainCatalog(t), chainQuery)
	d := plan.Greedy(p, 0)
	if len(d.Order) != 2 {
		t.Fatalf("order = %v, want 2 steps", d.Order)
	}
	if d.Order[0] != 1 {
		t.Errorf("greedy picked p%d first, want the sparse p1 (order %v)", d.Order[0], d.Order)
	}
	if d.EarlyExit {
		t.Errorf("unexpected early exit: %+v", d)
	}
	if d.PredictedTasks <= 0 || d.FixedTasks < d.PredictedTasks {
		t.Errorf("predicted=%d fixed=%d, want 0 < predicted <= fixed", d.PredictedTasks, d.FixedTasks)
	}
	for i, st := range d.Steps {
		if st.Pred != d.Order[i] {
			t.Errorf("step %d pred %d != order %d", i, st.Pred, d.Order[i])
		}
		sum := 0
		for _, n := range st.Histogram {
			sum += n
		}
		if sum == 0 {
			t.Errorf("step %d: empty histogram for a predicate with candidates", i)
		}
	}
}

func TestFixedKeepsStatementOrder(t *testing.T) {
	p := buildPlan(t, chainCatalog(t), chainQuery)
	d := plan.Fixed(p, 0)
	if d.Order[0] != 0 || d.Order[1] != 1 {
		t.Fatalf("fixed order = %v, want [0 1]", d.Order)
	}
	if d.FixedTasks != d.PredictedTasks {
		t.Errorf("fixed decision predicts %d but FixedTasks %d", d.PredictedTasks, d.FixedTasks)
	}
}

func TestGreedyEarlyExitOnEmptyPredicate(t *testing.T) {
	cat := chainCatalog(t)
	// T3 joins T2.a-side values that share no 2-grams with anything.
	sc := table.Schema{Name: "T3", Columns: []table.Column{{Name: "a", Kind: table.String}}}
	tb := table.New(sc)
	tb.MustAppend(table.Tuple{table.SV("##!!##")})
	cat.Register(tb)
	q := "SELECT * FROM T0, T1, T2, T3 WHERE T0.b CROWDJOIN T1.a AND T1.b CROWDJOIN T2.a AND T1.b CROWDJOIN T3.a;"
	p := buildPlan(t, cat, q)
	d := plan.Greedy(p, 0)
	if !d.EarlyExit {
		t.Fatalf("no early exit: %+v", d)
	}
	if d.PredictedTasks != 0 {
		t.Errorf("early-exit plan predicts %d tasks, want 0", d.PredictedTasks)
	}
	if d.EarlyExitStep != len(d.Steps)-1 {
		t.Errorf("EarlyExitStep = %d, want last step %d", d.EarlyExitStep, len(d.Steps)-1)
	}
	if !strings.HasSuffix(d.JoinOrder(), "→∅") {
		t.Errorf("JoinOrder %q lacks the early-exit marker", d.JoinOrder())
	}
	if d.EarlyExits() != 1 {
		t.Errorf("EarlyExits = %d, want 1", d.EarlyExits())
	}
	// The empty predicate must be the one greedy exits on, and its step
	// must be flagged.
	last := d.Steps[len(d.Steps)-1]
	if last.Pred != 2 || !last.EarlyExit {
		t.Errorf("exit step = %+v, want pred 2 flagged", last)
	}
}

func TestDescribeWireFields(t *testing.T) {
	p := buildPlan(t, chainCatalog(t), chainQuery)
	d := plan.Greedy(p, 4)
	ex := plan.Describe(p, d, true)
	if ex.Statement != p.Stmt.String() {
		t.Errorf("statement %q", ex.Statement)
	}
	if ex.Structure != "chain" {
		t.Errorf("structure %q, want chain", ex.Structure)
	}
	if len(ex.Tables) != 3 {
		t.Errorf("tables %v, want the 3 FROM tables", ex.Tables)
	}
	if !ex.Greedy || ex.JoinOrder != d.JoinOrder() {
		t.Errorf("greedy=%v order=%q", ex.Greedy, ex.JoinOrder)
	}
	for _, st := range ex.Steps {
		if len(st.Histogram) > 4 {
			t.Errorf("histogram %v exceeds 4 bins", st.Histogram)
		}
	}
}

func TestOrderedStrategyFollowsPlan(t *testing.T) {
	p := buildPlan(t, chainCatalog(t), chainQuery)
	o := &plan.Ordered{Order: []int{1, 0}}
	batch := o.NextRound(p.G)
	if len(batch) == 0 {
		t.Fatal("empty first round")
	}
	for _, e := range batch {
		if p.G.Edge(e).Pred != 1 {
			t.Fatalf("first round asked pred %d, want 1", p.G.Edge(e).Pred)
		}
	}
	// Color the first predicate's edges blue; the next round must move
	// on to pred 0.
	for _, e := range batch {
		p.G.SetColor(e, graph.Blue)
	}
	batch = o.NextRound(p.G)
	if len(batch) == 0 {
		t.Fatal("empty second round")
	}
	for _, e := range batch {
		if p.G.Edge(e).Pred != 0 {
			t.Fatalf("second round asked pred %d, want 0", p.G.Edge(e).Pred)
		}
	}
}
