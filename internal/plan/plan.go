// Package plan implements CDB's statistics-free greedy multi-join
// planner. The executor already materializes, per CROWDJOIN predicate,
// the candidate edges the prefix-filter similarity join survives —
// that visible selectivity (candidate-edge counts plus similarity-mass
// histograms) is the only statistic the planner consults. Joins are
// ordered greedily by expected crowd cost (fewest live candidate edges
// first); after each pick a semijoin-style survivor propagation shrinks
// the plan's view of the remaining tables, and a predicate left with
// zero candidates proves the answer set empty, so the plan terminates
// early with zero further HITs.
//
// Planning never issues crowd work: it reads the instantiated graph,
// nothing else. In a crowd database planning cost is dwarfed by HIT
// cost by many orders of magnitude, so the planner optimizes — and the
// plan benchmark measures — HITs avoided, not CPU.
//
// The chosen order is handed to the existing graph executor through
// the Ordered strategy, whose answers are bit-identical to any other
// complete strategy under a content-pure resolver (crowd.PureVerdict):
// an embedding is an answer iff all its edges would-verdict blue,
// independent of the order they are asked in.
package plan

import (
	"fmt"
	"strings"
	"time"

	"cdb/internal/exec"
	"cdb/internal/graph"
)

// DefaultBins is the similarity-histogram resolution used when a
// Config leaves Bins zero.
const DefaultBins = 8

// Config groups the planner knobs threaded through engine.Config and
// the public cdb.PlannerConfig.
type Config struct {
	// Greedy enables greedy join ordering; off, execution keeps the
	// statement's predicate order.
	Greedy bool
	// Bins is the similarity-histogram resolution (0 = DefaultBins).
	Bins int
}

// Step is one planned join step: a predicate, where it landed in the
// order, and what the planner predicted it would cost.
type Step struct {
	// Pred indexes the predicate in the query structure (statement
	// order of the WHERE clause).
	Pred int `json:"pred"`
	// Predicate is the diagnostic label, e.g.
	// "Paper.author CROWDJOIN Researcher.name".
	Predicate string `json:"predicate"`
	// CandidateEdges counts the raw candidates the prefix-filter sim
	// join produced for this predicate (pre-colored equi-join matches
	// included).
	CandidateEdges int `json:"candidate_edges"`
	// PredictedEdges is the crowd tasks this step is expected to issue:
	// uncolored candidates whose both endpoints still survive the
	// earlier steps' semijoin propagation.
	PredictedEdges int `json:"predicted_edges"`
	// Histogram is the similarity-mass histogram of the predicate's
	// uncolored candidates over [0,1] in equal-width bins.
	Histogram []int `json:"histogram,omitempty"`
	// EarlyExit marks the step at which the plan proved the answer set
	// empty: zero surviving candidates, zero further HITs.
	EarlyExit bool `json:"early_exit,omitempty"`
}

// Decision is the planner's output: the predicate execution order with
// per-step predictions, plus the same prediction replayed over the
// statement's fixed order for comparison.
type Decision struct {
	// Order lists predicate indices in execution order. When the plan
	// exits early the order ends at the proving step; later predicates
	// are never asked.
	Order []int
	// Steps aligns with Order.
	Steps []Step
	// EarlyExit reports a plan-time proof of zero answers;
	// EarlyExitStep indexes the proving step (-1 when none).
	EarlyExit     bool
	EarlyExitStep int
	// PredictedTasks is the total crowd tasks the plan expects to
	// issue; FixedTasks is the same prediction for statement order.
	PredictedTasks int
	FixedTasks     int
	// PlanningMicros is the wall-clock planning time.
	PlanningMicros int64
}

// JoinOrder renders the order compactly for introspection columns,
// e.g. "p2→p0→p1" ("p2→∅" when step p2 proved the plan empty).
func (d *Decision) JoinOrder() string {
	var b strings.Builder
	for i, p := range d.Order {
		if i > 0 {
			b.WriteString("→")
		}
		fmt.Fprintf(&b, "p%d", p)
	}
	if d.EarlyExit {
		b.WriteString("→∅")
	}
	return b.String()
}

// EarlyExits counts plan-time early-exit points (0 or 1).
func (d *Decision) EarlyExits() int {
	if d.EarlyExit {
		return 1
	}
	return 0
}

// Greedy plans p greedily and prices the statement-order alternative
// with the same model, so the decision carries its own predicted
// savings. The graph is only read, never mutated, and no crowd work is
// issued.
func Greedy(p *exec.Plan, bins int) *Decision {
	start := time.Now()
	d := simulate(p, bins, true)
	d.FixedTasks = simulate(p, bins, false).PredictedTasks
	d.PlanningMicros = time.Since(start).Microseconds()
	return d
}

// Fixed plans p in statement order under the same cost model — the
// baseline the greedy planner is measured against.
func Fixed(p *exec.Plan, bins int) *Decision {
	start := time.Now()
	d := simulate(p, bins, false)
	d.FixedTasks = d.PredictedTasks
	d.PlanningMicros = time.Since(start).Microseconds()
	return d
}

// simulate runs the shared planning loop: pick the next predicate
// (cheapest-first when greedy, statement order otherwise), record its
// predicted cost, stop on a zero-candidate proof, and semijoin-narrow
// the survivors for the following picks.
func simulate(p *exec.Plan, bins int, greedy bool) *Decision {
	if bins <= 0 {
		bins = DefaultBins
	}
	g := p.G
	nPreds := len(p.S.Preds)
	byPred := make([][]int, nPreds)
	for e := 0; e < g.NumEdges(); e++ {
		byPred[g.Edge(e).Pred] = append(byPred[g.Edge(e).Pred], e)
	}

	surviving := make([]bool, g.NumVertices())
	for i := range surviving {
		surviving[i] = true
	}
	keep := make([]bool, g.NumVertices())

	d := &Decision{EarlyExitStep: -1}
	done := make([]bool, nPreds)
	for len(d.Order) < nPreds {
		pick := -1
		pickCost := 0
		if greedy {
			for q := 0; q < nPreds; q++ {
				if done[q] {
					continue
				}
				_, cost := effective(g, byPred[q], surviving)
				if pick < 0 || cost < pickCost {
					pick, pickCost = q, cost
				}
			}
		} else {
			pick = len(d.Order)
			_, pickCost = effective(g, byPred[pick], surviving)
		}
		done[pick] = true
		support, _ := effective(g, byPred[pick], surviving)
		st := Step{
			Pred:           pick,
			Predicate:      p.S.Preds[pick].Name,
			CandidateEdges: len(byPred[pick]),
			PredictedEdges: pickCost,
			Histogram:      histogram(g, byPred[pick], bins),
		}
		d.Order = append(d.Order, pick)
		if support == 0 {
			// No candidate pair survives this predicate: every answer
			// embedding needs one, so the answer set is provably empty
			// and nothing after this step may issue crowd work.
			st.EarlyExit = true
			d.EarlyExit = true
			d.EarlyExitStep = len(d.Steps)
			d.Steps = append(d.Steps, st)
			break
		}
		d.PredictedTasks += pickCost
		d.Steps = append(d.Steps, st)

		// Semijoin survivor propagation: on both sides of the picked
		// predicate, a tuple stays alive only while it has a non-red
		// candidate to a surviving partner. This over-approximates the
		// answer-participating tuples (validity is stricter), which is
		// exactly what makes the zero-candidate early exit sound.
		qp := p.S.Preds[pick]
		for _, e := range byPred[pick] {
			ed := g.Edge(e)
			if ed.Color == graph.Red {
				continue
			}
			if surviving[ed.U] && surviving[ed.V] {
				keep[ed.U] = true
				keep[ed.V] = true
			}
		}
		for _, t := range []int{qp.A, qp.B} {
			for row := 0; row < g.TupleCount(t); row++ {
				v := g.VertexID(t, row)
				surviving[v] = surviving[v] && keep[v]
				keep[v] = false
			}
		}
	}
	return d
}

// effective counts predicate candidates among the surviving tuples:
// support is every non-red candidate (blue pre-colored matches keep an
// answer alive at zero cost), cost the uncolored subset — the crowd
// tasks executing the predicate now would issue.
func effective(g *graph.Graph, edges []int, surviving []bool) (support, cost int) {
	for _, e := range edges {
		ed := g.Edge(e)
		if ed.Color == graph.Red || !surviving[ed.U] || !surviving[ed.V] {
			continue
		}
		support++
		if ed.Color == graph.Unknown {
			cost++
		}
	}
	return support, cost
}

// histogram bins the similarity mass of the uncolored candidates over
// [0,1] in equal-width bins.
func histogram(g *graph.Graph, edges []int, bins int) []int {
	h := make([]int, bins)
	for _, e := range edges {
		ed := g.Edge(e)
		if ed.Color != graph.Unknown {
			continue
		}
		b := int(ed.W * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		h[b]++
	}
	return h
}

// Explained is the wire-ready plan description; the public cdb.Plan is
// an alias of it, and POST /v1/explain serves it verbatim. Its JSON
// schema is pinned by a golden file in client/wire_test.go.
type Explained struct {
	// Statement is the canonical rendering of the planned SELECT.
	Statement string `json:"statement"`
	// Structure classifies the query shape: single-table, chain, star,
	// tree or cyclic.
	Structure string `json:"structure"`
	// Tables lists the FROM tables (selection pseudo-tables excluded).
	Tables []string `json:"tables"`
	// Greedy reports whether execution will follow this greedy order or
	// fall back to statement order.
	Greedy bool `json:"greedy"`
	// JoinOrder is the compact order string, e.g. "p2→p0→p1".
	JoinOrder string `json:"join_order"`
	// Steps is the planned order with per-step predictions.
	Steps []Step `json:"steps"`
	// EarlyExit/EarlyExitStep report a plan-time zero-answer proof
	// (step index, -1 when none): the query completes with zero crowd
	// spend past that step.
	EarlyExit     bool `json:"early_exit,omitempty"`
	EarlyExitStep int  `json:"early_exit_step"`
	// PredictedTasks vs FixedTasks is the planner's own estimate of the
	// crowd tasks this order saves over statement order.
	PredictedTasks int `json:"predicted_tasks"`
	FixedTasks     int `json:"fixed_tasks"`
	// PlanningMicros is the wall-clock planning time; EXPLAIN itself
	// issues zero crowd assignments.
	PlanningMicros int64 `json:"planning_us"`
}

// Describe renders a decision for the wire. greedy reports whether the
// executor will actually follow the decision's order.
func Describe(p *exec.Plan, d *Decision, greedy bool) *Explained {
	ex := &Explained{
		Statement:      p.Stmt.String(),
		Structure:      p.S.Kind().String(),
		Greedy:         greedy,
		JoinOrder:      d.JoinOrder(),
		Steps:          d.Steps,
		EarlyExit:      d.EarlyExit,
		EarlyExitStep:  d.EarlyExitStep,
		PredictedTasks: d.PredictedTasks,
		FixedTasks:     d.FixedTasks,
		PlanningMicros: d.PlanningMicros,
	}
	for i, name := range p.S.Tables {
		if p.Tables[i] != nil {
			ex.Tables = append(ex.Tables, name)
		}
	}
	return ex
}
