package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"cdb/internal/cost"
	"cdb/internal/crowd"
	"cdb/internal/dataset"
	"cdb/internal/engine"
	"cdb/internal/exec"
	"cdb/internal/stats"
)

// ServeModeResult is one serving mode's aggregate outcome over the
// workload.
type ServeModeResult struct {
	Mode        string  `json:"mode"` // "sequential" or "engine"
	Concurrency int     `json:"concurrency"`
	Queries     int     `json:"queries"`
	WallMs      float64 `json:"wall_ms"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	HITsIssued  int     `json:"hits_issued"`
	HITsSaved   int     `json:"hits_saved"`
	Coalesced   int64   `json:"tasks_coalesced"`
	Cached      int64   `json:"tasks_cached"`
	JoinsShared int64   `json:"joins_shared"`
}

// ServeBenchReport is the schema of BENCH_engine.json: sequential
// no-sharing replay vs the concurrent engine on the same workload.
type ServeBenchReport struct {
	Date       string          `json:"date"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Dataset    string          `json:"dataset"`
	Scale      float64         `json:"scale"`
	Sequential ServeModeResult `json:"sequential"`
	Engine     ServeModeResult `json:"engine"`
	Speedup    float64         `json:"speedup"` // engine QPS / sequential QPS
}

// serveWorkload interleaves the paper's five query shapes into an
// n-query arrival sequence — the template overlap a serving layer
// exists to exploit.
func serveWorkload(ds string, n int) []string {
	qs := dataset.Queries(ds)
	labels := dataset.QueryLabels()
	out := make([]string, n)
	for i := range out {
		out[i] = qs[labels[i%len(labels)]]
	}
	return out
}

func latencyStats(lat []float64) (p50, p95 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	return s[len(s)/2], s[(len(s)*95)/100]
}

// serveSequential replays the workload one query at a time through
// the standalone path — fresh plan, private similarity join, private
// crowdsourcing — i.e. what N independent DB.Exec callers would pay.
func serveSequential(d *dataset.Data, queries []string, cfg Config, rng *stats.RNG) (ServeModeResult, error) {
	pool := crowd.NewPool(cfg.PoolSize, cfg.WorkerQ, cfg.WorkerSD, rng.Split())
	planCfg := exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3}
	lat := make([]float64, len(queries))
	assignments := 0
	start := time.Now()
	for i, q := range queries {
		t0 := time.Now()
		p, err := buildPlan(d, q, planCfg)
		if err != nil {
			return ServeModeResult{}, err
		}
		rep, err := exec.Run(context.Background(), p, exec.Options{
			Strategy:   &cost.Expectation{},
			Redundancy: cfg.Redundancy,
			Pool:       pool,
		})
		if err != nil {
			return ServeModeResult{}, err
		}
		assignments += rep.Assignments
		lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e6
	}
	wall := time.Since(start)
	p50, p95 := latencyStats(lat)
	return ServeModeResult{
		Mode:        "sequential",
		Concurrency: 1,
		Queries:     len(queries),
		WallMs:      float64(wall.Nanoseconds()) / 1e6,
		QPS:         float64(len(queries)) / wall.Seconds(),
		P50Ms:       p50,
		P95Ms:       p95,
		HITsIssued:  crowd.DefaultPricing.HITs(assignments),
	}, nil
}

// serveEngine pushes the whole workload through one engine at the
// given concurrency and measures per-query submit→done latency.
func serveEngine(d *dataset.Data, queries []string, cfg Config, rng *stats.RNG, clients int) (ServeModeResult, error) {
	e, err := engine.New(engine.Config{
		Catalog:     d.Catalog,
		Oracle:      d.Oracle,
		Pool:        crowd.NewPool(cfg.PoolSize, cfg.WorkerQ, cfg.WorkerSD, rng.Split()),
		Sim:         defaultSim,
		Epsilon:     0.3,
		Redundancy:  cfg.Redundancy,
		Seed:        rng.Uint64(),
		MaxInFlight: clients,
		MaxQueue:    len(queries),
	})
	if err != nil {
		return ServeModeResult{}, err
	}
	lat := make([]float64, len(queries))
	var wg sync.WaitGroup
	var submitErr error
	start := time.Now()
	for i, q := range queries {
		t0 := time.Now()
		h, err := e.Submit(context.Background(), q)
		if err != nil {
			submitErr = err
			break
		}
		wg.Add(1)
		go func(i int, h *engine.Handle, t0 time.Time) {
			defer wg.Done()
			<-h.Done()
			lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e6
		}(i, h, t0)
	}
	wg.Wait()
	wall := time.Since(start)
	st := e.Stats()
	e.Close()
	if submitErr != nil {
		return ServeModeResult{}, submitErr
	}
	if st.Completed != int64(len(queries)) {
		return ServeModeResult{}, fmt.Errorf("bench: engine completed %d of %d queries", st.Completed, len(queries))
	}
	p50, p95 := latencyStats(lat)
	return ServeModeResult{
		Mode:        "engine",
		Concurrency: clients,
		Queries:     len(queries),
		WallMs:      float64(wall.Nanoseconds()) / 1e6,
		QPS:         float64(len(queries)) / wall.Seconds(),
		P50Ms:       p50,
		P95Ms:       p95,
		HITsIssued:  st.HITsIssued,
		HITsSaved:   st.HITsSaved,
		Coalesced:   st.Coalesced,
		Cached:      st.Cached,
		JoinsShared: st.JoinsShared,
	}, nil
}

// Serve is the "serve" experiment: the same arrival sequence replayed
// standalone (no sharing, one at a time) and through the concurrent
// engine, reporting throughput, tail latency and crowd work saved.
// Writes BENCH_engine.json (cfg.ServeOut) as the committed artifact.
func Serve(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed)
	d := genData(cfg, rng.Uint64())
	queries := serveWorkload(cfg.Dataset, cfg.ServeQueries)

	seq, err := serveSequential(d, queries, cfg, rng.Split())
	if err != nil {
		return nil, err
	}
	eng, err := serveEngine(d, queries, cfg, rng.Split(), cfg.ServeClients)
	if err != nil {
		return nil, err
	}

	report := ServeBenchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Dataset:    cfg.Dataset,
		Scale:      cfg.Scale,
		Sequential: seq,
		Engine:     eng,
		Speedup:    eng.QPS / seq.QPS,
	}
	if cfg.ServeOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.ServeOut, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID:         "serve",
		Title:      fmt.Sprintf("concurrent serving, %d queries (engine @%d vs sequential): %.2fx throughput", len(queries), eng.Concurrency, report.Speedup),
		LabelNames: []string{"mode"},
		ValueNames: []string{"qps", "p50_ms", "p95_ms", "hits", "hits_saved", "speedup"},
		Rows: []Row{
			{Labels: []string{"sequential"}, Values: []float64{seq.QPS, seq.P50Ms, seq.P95Ms, float64(seq.HITsIssued), 0, 1}},
			{Labels: []string{fmt.Sprintf("engine@%d", eng.Concurrency)}, Values: []float64{eng.QPS, eng.P50Ms, eng.P95Ms, float64(eng.HITsIssued), float64(eng.HITsSaved), report.Speedup}},
		},
	}
	return []*Table{t}, nil
}
