package bench

import (
	"context"
	"fmt"
	"time"

	"cdb/internal/baselines"
	"cdb/internal/cost"
	"cdb/internal/crowd"
	"cdb/internal/dataset"
	"cdb/internal/exec"
	"cdb/internal/graph"
	"cdb/internal/latency"
	"cdb/internal/sim"
	"cdb/internal/stats"
)

// Fig1 regenerates the motivating example of Figure 1: a three-table
// instance whose tuples want different join directions, so every
// table-level order is expensive while the tuple-level optimum asks
// only the gate edges. It reports the cost of each tree order, the
// best tree order, and CDB's graph-based cost.
func Fig1(cfg Config) ([]*Table, error) {
	// Instance: T2 holds 2 "a-type" tuples (4 blue T1 edges, 1 red T3
	// edge) and 2 "b-type" tuples (1 red T1 edge, 4 blue T3 edges). No
	// complete blue chain exists: every candidate dies at a gate.
	s := &graph.Structure{
		Tables: []string{"T1", "T2", "T3"},
		Preds:  []graph.QPred{{A: 0, B: 1, Name: "T1~T2"}, {A: 1, B: 2, Name: "T2~T3"}},
	}
	g := graph.MustNewGraph(s, []int{8, 4, 8})
	truth := map[int]bool{}
	add := func(pred, a, b int, blue bool) {
		w := 0.4
		if blue {
			w = 0.8
		}
		id := g.AddEdge(pred, a, b, w)
		truth[id] = blue
	}
	for t2 := 0; t2 < 2; t2++ { // a-type
		for k := 0; k < 4; k++ {
			add(0, t2*4+k, t2, true) // blue T1 edges
		}
		add(1, t2, t2, false) // single red T3 gate
	}
	for t2 := 2; t2 < 4; t2++ { // b-type
		add(0, t2*2-3, t2, false) // single red T1 gate
		for k := 0; k < 4; k++ {
			add(1, t2, (t2-2)*4+k, true) // blue T3 edges
		}
	}
	truthSlice := make([]bool, g.NumEdges())
	for e, b := range truth {
		truthSlice[e] = b
	}

	table := &Table{
		ID:         "fig1",
		Title:      "Motivating example: tuple-level vs table-level optimization (#tasks)",
		LabelNames: []string{"plan"},
		ValueNames: []string{"tasks"},
	}
	orders := [][]int{{0, 1}, {1, 0}}
	best := 1 << 30
	for _, ord := range orders {
		c := baselines.SimulateOrderCost(g, truthSlice, ord)
		if c < best {
			best = c
		}
		table.Rows = append(table.Rows, Row{
			Labels: []string{fmt.Sprintf("tree-order-%v", ord)},
			Values: []float64{float64(c)},
		})
	}
	// CDB execution with a perfect crowd (cost isolation).
	strat := &cost.Expectation{}
	tasks := 0
	for {
		batch := strat.NextRound(g)
		if len(batch) == 0 {
			break
		}
		tasks += len(batch)
		for _, e := range batch {
			if truthSlice[e] {
				g.SetColor(e, graph.Blue)
			} else {
				g.SetColor(e, graph.Red)
			}
		}
	}
	table.Rows = append(table.Rows, Row{Labels: []string{"tree-best"}, Values: []float64{float64(best)}})
	table.Rows = append(table.Rows, Row{Labels: []string{"CDB-graph"}, Values: []float64{float64(tasks)}})
	return []*Table{table}, nil
}

// Fig8to10 regenerates the simulated-experiment grid: cost (#tasks,
// Fig. 8), quality (F-measure, Fig. 9) and latency (#rounds, Fig. 10)
// for the nine methods on the five representative queries.
func Fig8to10(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed)
	d := genData(cfg, rng.Uint64())
	planCfg := exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3}

	cost8 := &Table{ID: "fig8", Title: "Cost (#tasks), simulated workers N(q,0.01)",
		LabelNames: []string{"query", "method"}, ValueNames: []string{"tasks"}}
	qual9 := &Table{ID: "fig9", Title: "Quality (F-measure)",
		LabelNames: []string{"query", "method"}, ValueNames: []string{"f1"}}
	lat10 := &Table{ID: "fig10", Title: "Latency (#rounds)",
		LabelNames: []string{"query", "method"}, ValueNames: []string{"rounds"}}

	for _, q := range dataset.QueryLabels() {
		query := dataset.Queries(d.Name)[q]
		for _, method := range Methods {
			agg, err := averageCell(d, query, method, cfg, rng, planCfg, 0)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s/%s: %w", q, method, err)
			}
			tasks, rounds, _, _, f1 := agg.Mean()
			ciT, ciR, _, _, ciF := agg.CI95()
			cost8.Rows = append(cost8.Rows, Row{Labels: []string{q, method}, Values: []float64{tasks}, CI: []float64{ciT}})
			qual9.Rows = append(qual9.Rows, Row{Labels: []string{q, method}, Values: []float64{f1}, CI: []float64{ciF}})
			lat10.Rows = append(lat10.Rows, Row{Labels: []string{q, method}, Values: []float64{rounds}, CI: []float64{ciR}})
		}
	}
	return []*Table{cost8, qual9, lat10}, nil
}

// Fig11 sweeps the simulated worker quality q ∈ {0.7, 0.8, 0.9} and
// reports mean cost, F-measure and rounds per method (averaged over
// the five queries, as the paper's per-dataset panels do).
func Fig11(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed + 11)
	d := genData(cfg, rng.Uint64())
	planCfg := exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3}
	out := &Table{ID: "fig11", Title: "Varying worker quality",
		LabelNames: []string{"workerQ", "method"}, ValueNames: []string{"tasks", "f1", "rounds"}}
	for _, q := range []float64{0.7, 0.8, 0.9} {
		c := cfg
		c.WorkerQ = q
		for _, method := range Methods {
			var agg stats.Agg
			for _, ql := range dataset.QueryLabels() {
				a, err := averageCell(d, dataset.Queries(d.Name)[ql], method, c, rng, planCfg, 0)
				if err != nil {
					return nil, fmt.Errorf("fig11: %w", err)
				}
				t, r, p, rec, f := a.Mean()
				agg.Add(stats.Metrics{Tasks: int(t + 0.5), Rounds: int(r + 0.5), Precision: p, Recall: rec})
				_ = f
			}
			tasks, rounds, _, _, f1 := agg.Mean()
			out.Rows = append(out.Rows, Row{
				Labels: []string{fmt.Sprintf("%.1f", q), method},
				Values: []float64{tasks, f1, rounds},
			})
		}
	}
	return []*Table{out}, nil
}

// Fig14to16 regenerates the "real experiment" panels: the same grid
// with an AMT-like high-quality crowd (the paper observes workers on
// real platforms answer these tasks well) and HIT pricing (10 tasks
// per $0.1 HIT).
func Fig14to16(cfg Config) ([]*Table, error) {
	c := cfg
	c.WorkerQ = 0.92
	c.WorkerSD = 0.05
	rng := stats.NewRNG(cfg.Seed + 14)
	d := genData(c, rng.Uint64())
	planCfg := exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3}

	cost14 := &Table{ID: "fig14", Title: "Real-crowd cost (#tasks and $)",
		LabelNames: []string{"query", "method"}, ValueNames: []string{"tasks", "dollars"}}
	qual15 := &Table{ID: "fig15", Title: "Real-crowd quality (F-measure)",
		LabelNames: []string{"query", "method"}, ValueNames: []string{"f1"}}
	lat16 := &Table{ID: "fig16", Title: "Real-crowd latency (#rounds)",
		LabelNames: []string{"query", "method"}, ValueNames: []string{"rounds"}}

	for _, q := range dataset.QueryLabels() {
		query := dataset.Queries(d.Name)[q]
		for _, method := range Methods {
			var agg stats.Agg
			dollars := 0.0
			for rep := 0; rep < c.Reps; rep++ {
				p, err := buildPlan(d, query, planCfg)
				if err != nil {
					return nil, err
				}
				qm := exec.MajorityVoting
				if method == "CDB+" {
					qm = exec.CDBPlus
				}
				r, err := exec.Run(context.Background(), p, exec.Options{
					Strategy:   strategyFor(method, p, c, rng),
					Redundancy: c.Redundancy,
					Quality:    qm,
					Pool:       crowd.NewPool(c.PoolSize, c.WorkerQ, c.WorkerSD, rng.Split()),
				})
				if err != nil {
					return nil, err
				}
				agg.Add(r.Metrics)
				dollars += r.Dollars
			}
			tasks, rounds, _, _, f1 := agg.Mean()
			cost14.Rows = append(cost14.Rows, Row{Labels: []string{q, method}, Values: []float64{tasks, dollars / float64(c.Reps)}})
			qual15.Rows = append(qual15.Rows, Row{Labels: []string{q, method}, Values: []float64{f1}})
			lat16.Rows = append(lat16.Rows, Row{Labels: []string{q, method}, Values: []float64{rounds}})
		}
	}
	return []*Table{cost14, qual15, lat16}, nil
}

// Fig18 regenerates the budget experiment (Figs. 18–19): recall and
// precision of Baseline, CDB and CDB+ as the task budget grows.
func Fig18(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed + 18)
	d := genData(cfg, rng.Uint64())
	planCfg := exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3}
	query := dataset.Queries(d.Name)["2J"]

	out := &Table{ID: "fig18", Title: "Budget-aware selection: recall/precision vs budget",
		LabelNames: []string{"budget", "method"}, ValueNames: []string{"recall", "precision"}}
	budgets := []int{50, 100, 200, 400, 600, 800}
	for _, b := range budgets {
		for _, method := range []string{"Baseline", "CDB", "CDB+"} {
			var agg stats.Agg
			for rep := 0; rep < cfg.Reps; rep++ {
				p, err := buildPlan(d, query, planCfg)
				if err != nil {
					return nil, err
				}
				var strat cost.Strategy
				if method == "Baseline" {
					strat = baselines.NewGreedyBudget(b)
				} else {
					strat = cost.NewBudget(b)
				}
				qm := exec.MajorityVoting
				if method == "CDB+" {
					qm = exec.CDBPlus
				}
				r, err := exec.Run(context.Background(), p, exec.Options{
					Strategy:   strat,
					Redundancy: cfg.Redundancy,
					Quality:    qm,
					Pool:       crowd.NewPool(cfg.PoolSize, cfg.WorkerQ, cfg.WorkerSD, rng.Split()),
				})
				if err != nil {
					return nil, err
				}
				agg.Add(r.Metrics)
			}
			_, _, prec, rec, _ := agg.Mean()
			out.Rows = append(out.Rows, Row{
				Labels: []string{fmt.Sprintf("%04d", b), method},
				Values: []float64{rec, prec},
			})
		}
	}
	return []*Table{out}, nil
}

// Fig20 regenerates the redundancy tradeoff: F-measure of CDB+ vs
// majority voting on the most complex query (3J2S) as the number of
// assignments per task grows.
func Fig20(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed + 20)
	c := cfg
	// 3J2S has few answers at small scales; a larger instance and more
	// repetitions keep the F-measure estimates stable.
	if c.Scale < 0.3 {
		c.Scale = 0.3
	}
	if c.Reps < 6 {
		c.Reps = 6
	}
	c.WorkerQ = 0.75 // the regime where inference matters most
	d := genData(c, rng.Uint64())
	planCfg := exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3}
	query := dataset.Queries(d.Name)["3J2S"]
	out := &Table{ID: "fig20", Title: "Quality vs redundancy on 3J2S (CDB+ vs majority voting)",
		LabelNames: []string{"redundancy", "method"}, ValueNames: []string{"f1"}}
	for _, k := range []int{1, 3, 5, 7} {
		c.Redundancy = k
		for _, method := range []string{"CDB", "CDB+"} {
			agg, err := averageCell(d, query, method, c, rng, planCfg, 0)
			if err != nil {
				return nil, err
			}
			_, _, _, _, f1 := agg.Mean()
			label := "MajorityVote"
			if method == "CDB+" {
				label = "CDB+"
			}
			out.Rows = append(out.Rows, Row{
				Labels: []string{fmt.Sprintf("%d", k), label},
				Values: []float64{f1},
			})
		}
	}
	return []*Table{out}, nil
}

// Fig21 regenerates quality vs cost: F-measure as the question budget
// grows, redundancy fixed at 5, CDB+ vs majority voting.
func Fig21(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed + 21)
	c := cfg
	if c.Scale < 0.3 {
		c.Scale = 0.3
	}
	if c.Reps < 6 {
		c.Reps = 6
	}
	c.WorkerQ = 0.75
	d := genData(c, rng.Uint64())
	planCfg := exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3}
	query := dataset.Queries(d.Name)["3J2S"]
	out := &Table{ID: "fig21", Title: "Quality vs #questions on 3J2S (redundancy 5)",
		LabelNames: []string{"budget", "method"}, ValueNames: []string{"f1"}}
	for _, b := range []int{40, 80, 120, 160, 200} {
		for _, method := range []string{"CDB", "CDB+"} {
			var agg stats.Agg
			for rep := 0; rep < c.Reps; rep++ {
				p, err := buildPlan(d, query, planCfg)
				if err != nil {
					return nil, err
				}
				qm := exec.MajorityVoting
				label := "MajorityVote"
				if method == "CDB+" {
					qm = exec.CDBPlus
					label = "CDB+"
				}
				_ = label
				r, err := exec.Run(context.Background(), p, exec.Options{
					Strategy:   cost.NewBudget(b),
					Redundancy: c.Redundancy,
					Quality:    qm,
					Pool:       crowd.NewPool(c.PoolSize, c.WorkerQ, c.WorkerSD, rng.Split()),
				})
				if err != nil {
					return nil, err
				}
				agg.Add(r.Metrics)
			}
			_, _, _, _, f1 := agg.Mean()
			label := "MajorityVote"
			if method == "CDB+" {
				label = "CDB+"
			}
			out.Rows = append(out.Rows, Row{
				Labels: []string{fmt.Sprintf("%04d", b), label},
				Values: []float64{f1},
			})
		}
	}
	return []*Table{out}, nil
}

// Fig22 regenerates the cost/latency tradeoff: each method optimizes
// for the first r−1 rounds and floods the rest in round r.
func Fig22(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed + 22)
	d := genData(cfg, rng.Uint64())
	planCfg := exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3}
	query := dataset.Queries(d.Name)["3J"]
	out := &Table{ID: "fig22", Title: "Cost vs latency constraint (rounds) on 3J",
		LabelNames: []string{"rounds", "method"}, ValueNames: []string{"tasks"}}
	for _, r := range []int{1, 2, 3, 4, 5, 6} {
		for _, method := range Methods {
			agg, err := averageCell(d, query, method, cfg, rng, planCfg, r)
			if err != nil {
				return nil, err
			}
			tasks, _, _, _, _ := agg.Mean()
			out.Rows = append(out.Rows, Row{
				Labels: []string{fmt.Sprintf("%d", r), method},
				Values: []float64{tasks},
			})
		}
	}
	return []*Table{out}, nil
}

// Fig23to24 regenerates the similarity-function ablation: cost and
// F-measure of the expectation-based method under NoSim, edit
// distance, token Jaccard and 2-gram Jaccard probabilities.
func Fig23to24(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed + 23)
	d := genData(cfg, rng.Uint64())
	funcs := []struct {
		label string
		f     sim.Func
	}{
		{"NoSim", sim.NoSim},
		{"ED", sim.EditDistance},
		{"JAC", sim.TokenJaccard},
		{"CDB", sim.Gram2Jaccard},
	}
	costT := &Table{ID: "fig23", Title: "Similarity functions: cost (#tasks)",
		LabelNames: []string{"query", "simfunc"}, ValueNames: []string{"tasks"}}
	qualT := &Table{ID: "fig24", Title: "Similarity functions: F-measure",
		LabelNames: []string{"query", "simfunc"}, ValueNames: []string{"f1"}}
	for _, q := range []string{"2J", "3J"} {
		query := dataset.Queries(d.Name)[q]
		for _, fn := range funcs {
			planCfg := exec.PlanConfig{Sim: fn.f, Epsilon: 0.3}
			agg, err := averageCell(d, query, "CDB", cfg, rng, planCfg, 0)
			if err != nil {
				return nil, err
			}
			tasks, _, _, _, f1 := agg.Mean()
			costT.Rows = append(costT.Rows, Row{Labels: []string{q, fn.label}, Values: []float64{tasks}})
			qualT.Rows = append(qualT.Rows, Row{Labels: []string{q, fn.label}, Values: []float64{f1}})
		}
	}
	return []*Table{costT, qualT}, nil
}

// Table5 regenerates the optimizer-efficiency table: milliseconds to
// select the next parallel batch of tasks per query.
func Table5(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed + 5)
	out := &Table{ID: "table5", Title: "Task-selection efficiency (ms, first round)",
		LabelNames: []string{"dataset", "query"}, ValueNames: []string{"millis"}}
	for _, ds := range []string{"paper", "award"} {
		c := cfg
		c.Dataset = ds
		d := genData(c, rng.Uint64())
		for _, q := range dataset.QueryLabels() {
			p, err := buildPlan(d, dataset.Queries(ds)[q], exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3})
			if err != nil {
				return nil, err
			}
			strat := &cost.Expectation{}
			start := time.Now()
			order := strat.Order(p.G)
			latency.ParallelBatch(p.G, order)
			ms := float64(time.Since(start).Microseconds()) / 1000.0
			out.Rows = append(out.Rows, Row{Labels: []string{ds, q}, Values: []float64{ms}})
		}
	}
	return []*Table{out}, nil
}
