package bench

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"cdb/internal/crowd"
	"cdb/internal/dataset"
	"cdb/internal/exec"
	"cdb/internal/faults"
	"cdb/internal/stats"
)

// chaosDropGrid is the fault intensities the chaos experiment sweeps
// when no explicit -fault-drop is given: from a clean baseline to a
// platform losing a fifth of its assignments.
var chaosDropGrid = []float64{0, 0.05, 0.1, 0.2}

// SetChaosDropGrid overrides the sweep (cdbench -fault-drop pins it to
// one intensity).
func SetChaosDropGrid(grid []float64) {
	if len(grid) > 0 {
		chaosDropGrid = grid
	}
}

// ParseBlackout parses a "market:from:until" outage spec ("" market
// means every platform, e.g. ":100:400").
func ParseBlackout(s string) (faults.Blackout, error) {
	if s == "" {
		return faults.Blackout{}, fmt.Errorf("empty blackout spec")
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return faults.Blackout{}, fmt.Errorf("blackout spec %q: want market:from:until", s)
	}
	from, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return faults.Blackout{}, fmt.Errorf("blackout spec %q: from: %w", s, err)
	}
	until, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return faults.Blackout{}, fmt.Errorf("blackout spec %q: until: %w", s, err)
	}
	return faults.Blackout{Market: parts[0], From: from, Until: until}, nil
}

// injectorFor builds the chaos engine for one drop rate, inheriting
// the other fault dimensions from the config.
func injectorFor(cfg Config, drop float64) (*faults.Injector, error) {
	fc := faults.Config{
		Seed:          cfg.FaultSeed,
		DropRate:      drop,
		StragglerRate: cfg.FaultStraggler,
		DuplicateRate: cfg.FaultDup,
		CorruptRate:   cfg.FaultCorrupt,
	}
	if cfg.FaultBlackout != "" {
		b, err := ParseBlackout(cfg.FaultBlackout)
		if err != nil {
			return nil, err
		}
		fc.Blackouts = append(fc.Blackouts, b)
	}
	return faults.New(fc), nil
}

// chaosCell runs one (method, fault-rate) cell over the asynchronous
// transport and reports both the paper's quality metrics and the
// reliability policy's telemetry.
func chaosCell(d *dataset.Data, query, method string, cfg Config, rng *stats.RNG,
	inj *faults.Injector) (stats.Metrics, exec.ReliabilityStats, error) {

	p, err := buildPlan(d, query, exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3})
	if err != nil {
		return stats.Metrics{}, exec.ReliabilityStats{}, err
	}
	qm := exec.MajorityVoting
	if method == "CDB+" {
		qm = exec.CDBPlus
	}
	pool := crowd.NewPool(cfg.PoolSize, cfg.WorkerQ, cfg.WorkerSD, rng.Split())
	tp := crowd.NewTransport(crowd.TransportConfig{
		Markets: []*crowd.Market{
			crowd.NewMarket("amt", true, pool),
			crowd.NewMarket("crowdflower", true, crowd.NewPool(cfg.PoolSize, cfg.WorkerQ, cfg.WorkerSD, rng.Split())),
		},
		Faults: inj,
		Seed:   rng.Split().Uint64(),
	})
	defer tp.Close()
	rep, err := exec.Run(context.Background(), p, exec.Options{
		Strategy:   strategyFor(method, p, cfg, rng),
		Redundancy: cfg.Redundancy,
		Quality:    qm,
		Pool:       pool,
		Transport:  tp,
		Reliability: exec.Reliability{
			TaskDeadline: cfg.TaskDeadline,
			MaxRetries:   cfg.MaxRetries,
			HedgeFrac:    cfg.HedgeFrac,
		},
	})
	if err != nil {
		return stats.Metrics{}, exec.ReliabilityStats{}, err
	}
	return rep.Metrics, rep.Reliability, nil
}

// Chaos sweeps fault intensity over the fault-tolerant transport and
// reports how gracefully quality and cost degrade: the robustness
// counterpart of the paper's clean-crowd evaluation. Every cell runs
// the 2-join query with CDB and CDB+ under drop rates of
// chaosDropGrid (straggler/duplicate/corrupt rates and a blackout
// window ride along from the config).
func Chaos(cfg Config) ([]*Table, error) {
	d := genData(cfg, cfg.Seed)
	query := dataset.Queries(d.Name)["2J"]
	rng := stats.NewRNG(cfg.Seed + 77)

	t := &Table{
		ID:         "chaos",
		Title:      "graceful degradation under injected faults (2J query)",
		LabelNames: []string{"method", "drop"},
		ValueNames: []string{"f1", "tasks", "lost", "retried", "hedged", "late", "dups", "partial"},
	}
	for _, method := range []string{"CDB", "CDB+"} {
		for _, drop := range chaosDropGrid {
			var agg stats.Agg
			var lost, retried, hedged, late, dups, partial float64
			for rep := 0; rep < cfg.Reps; rep++ {
				inj, err := injectorFor(cfg, drop)
				if err != nil {
					return nil, err
				}
				m, rel, err := chaosCell(d, query, method, cfg, rng, inj)
				if err != nil {
					return nil, err
				}
				agg.Add(m)
				lost += float64(rel.Lost)
				retried += float64(rel.Retried)
				hedged += float64(rel.Hedged)
				late += float64(rel.Late)
				dups += float64(rel.Duplicates)
				if rel.Partial {
					partial++
				}
			}
			n := float64(cfg.Reps)
			tasks, _, _, _, f1 := agg.Mean()
			t.Rows = append(t.Rows, Row{
				Labels: []string{method, fmt.Sprintf("%.2f", drop)},
				Values: []float64{
					f1, tasks,
					lost / n, retried / n, hedged / n, late / n, dups / n,
					partial / n,
				},
			})
		}
	}
	return []*Table{t}, nil
}
