package bench

import (
	"bytes"
	"strings"
	"testing"
)

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.04
	cfg.Reps = 1
	cfg.Samples = 5
	return cfg
}

func rowsByLabel(t *Table, idx int) map[string][]float64 {
	out := map[string][]float64{}
	for _, r := range t.Rows {
		out[strings.Join(r.Labels, "|")] = r.Values
	}
	_ = idx
	return out
}

func TestFig1ShowsTupleLevelWin(t *testing.T) {
	tables, err := Fig1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := rowsByLabel(tables[0], 0)
	treeBest := rows["tree-best"][0]
	cdbGraph := rows["CDB-graph"][0]
	if cdbGraph >= treeBest {
		t.Fatalf("graph (%v) should beat the best tree order (%v)", cdbGraph, treeBest)
	}
	if treeBest/cdbGraph < 2 {
		t.Fatalf("motivating gap too small: tree %v vs graph %v", treeBest, cdbGraph)
	}
}

func TestFig8GridComplete(t *testing.T) {
	cfg := tinyConfig()
	tables, err := Fig8to10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("want cost/quality/latency tables, got %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 5*len(Methods) {
			t.Fatalf("%s has %d rows, want %d", tb.ID, len(tb.Rows), 5*len(Methods))
		}
	}
	// The headline comparison on at least the plain join queries:
	// CDB's cost should not exceed the rule-based tree systems'.
	cost := rowsByLabel(tables[0], 0)
	for _, q := range []string{"2J", "3J"} {
		cdbTasks := cost[q+"|CDB"][0]
		crowddb := cost[q+"|CrowdDB"][0]
		if cdbTasks > crowddb*1.05 {
			t.Fatalf("%s: CDB %v tasks vs CrowdDB %v", q, cdbTasks, crowddb)
		}
	}
	// ER methods dominate the round counts.
	rounds := rowsByLabel(tables[2], 0)
	for _, q := range []string{"2J", "3J"} {
		if rounds[q+"|Trans"][0] <= rounds[q+"|CDB"][0] {
			t.Fatalf("%s: Trans rounds %v should exceed CDB %v", q, rounds[q+"|Trans"][0], rounds[q+"|CDB"][0])
		}
	}
}

func TestFig17Shapes(t *testing.T) {
	tables, err := Fig17(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	collect := rowsByLabel(tables[0], 0)
	if collect["100|CDB"][0] >= collect["100|Deco"][0] {
		t.Fatalf("autocompletion should need fewer questions: CDB %v vs Deco %v",
			collect["100|CDB"][0], collect["100|Deco"][0])
	}
	// The improvement grows with the number of results (the paper's
	// observation).
	gapSmall := collect["020|Deco"][0] - collect["020|CDB"][0]
	gapBig := collect["100|Deco"][0] - collect["100|CDB"][0]
	if gapBig <= gapSmall {
		t.Fatalf("duplicate waste should grow: gap@20=%v gap@100=%v", gapSmall, gapBig)
	}
	fill := rowsByLabel(tables[1], 0)
	if fill["100|CDB"][0] >= fill["100|Deco"][0] {
		t.Fatalf("early stop should save assignments: CDB %v vs Deco %v",
			fill["100|CDB"][0], fill["100|Deco"][0])
	}
}

func TestFig18BudgetShapes(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.08
	tables, err := Fig18(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowsByLabel(tables[0], 0)
	// At a mid budget CDB's recall beats the baseline's.
	if rows["0200|CDB"][0] <= rows["0200|Baseline"][0] {
		t.Fatalf("budgeted CDB recall %v should beat baseline %v",
			rows["0200|CDB"][0], rows["0200|Baseline"][0])
	}
	// Recall grows with budget for CDB.
	if rows["0800|CDB"][0] < rows["0100|CDB"][0] {
		t.Fatalf("recall should grow with budget: %v -> %v", rows["0100|CDB"][0], rows["0800|CDB"][0])
	}
}

func TestFig22Tradeoff(t *testing.T) {
	cfg := tinyConfig()
	tables, err := Fig22(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowsByLabel(tables[0], 0)
	// Looser latency constraint never increases CDB's cost (much).
	if rows["6|CDB"][0] > rows["1|CDB"][0]*1.02+1 {
		t.Fatalf("cost should fall as rounds relax: r=1 %v, r=6 %v", rows["1|CDB"][0], rows["6|CDB"][0])
	}
}

func TestTable5Runs(t *testing.T) {
	cfg := tinyConfig()
	tables, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 10 {
		t.Fatalf("rows = %d, want 2 datasets x 5 queries", len(tables[0].Rows))
	}
	for _, r := range tables[0].Rows {
		if r.Values[0] < 0 {
			t.Fatalf("negative timing: %+v", r)
		}
	}
}

func TestRenderProducesAlignedText(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "demo",
		LabelNames: []string{"k"},
		ValueNames: []string{"v"},
		Rows:       []Row{{Labels: []string{"a"}, Values: []float64{1.5}}},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== x: demo ==") || !strings.Contains(out, "1.500") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, id := range ExperimentIDs() {
		if Registry[id] == nil {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
}

func TestGenDataDatasets(t *testing.T) {
	cfg := tinyConfig()
	if d := genData(cfg, 1); d.Name != "paper" {
		t.Fatalf("default dataset = %s", d.Name)
	}
	cfg.Dataset = "award"
	if d := genData(cfg, 1); d.Name != "award" {
		t.Fatalf("award dataset = %s", d.Name)
	}
}

func TestServeBeatsSequential(t *testing.T) {
	cfg := tinyConfig()
	cfg.ServeQueries = 15
	cfg.ServeClients = 8
	cfg.ServeOut = "" // no artifact from tests
	tables, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowsByLabel(tables[0], 0)
	seq, ok := rows["sequential"]
	if !ok {
		t.Fatal("no sequential row")
	}
	eng, ok := rows["engine@8"]
	if !ok {
		t.Fatal("no engine row")
	}
	// values: qps, p50_ms, p95_ms, hits, hits_saved, speedup
	if eng[0] <= seq[0] {
		t.Fatalf("engine QPS %v not above sequential %v", eng[0], seq[0])
	}
	if eng[4] <= 0 {
		t.Fatalf("engine saved no HITs: %v", eng)
	}
}
