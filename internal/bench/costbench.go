package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cdb/internal/cost"
	"cdb/internal/graph"
	"cdb/internal/sim"
	"cdb/internal/stats"
)

// RoundBenchResult compares steady-state NextRound cost (after the
// priming first round, coloring a handful of edges per round) between
// the incremental engine and the naive full-rescan reference.
type RoundBenchResult struct {
	Edges              int     `json:"edges"`
	Components         int     `json:"components"`
	IncrementalNsRound float64 `json:"incremental_ns_per_round"`
	NaiveNsRound       float64 `json:"naive_ns_per_round"`
	Speedup            float64 `json:"speedup"`
}

// JoinBenchResult times sim.Join's sharded probe at one scale and
// worker count.
type JoinBenchResult struct {
	N       int     `json:"n"`
	Workers int     `json:"workers"`
	NsJoin  float64 `json:"ns_per_join"`
}

// CostBenchReport is the schema of BENCH_cost.json — the perf
// trajectory record for the incremental cost-control engine.
type CostBenchReport struct {
	Date       string             `json:"date"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Rounds     []RoundBenchResult `json:"rounds"`
	Joins      []JoinBenchResult  `json:"joins"`
}

// costBenchGraph builds the disjoint-block chain graph the round
// benchmarks run on: 6 edges per predicate-pair block, every block its
// own connected component.
func costBenchGraph(blocks int, r *stats.RNG) *graph.Graph {
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	n := 2 * blocks
	g := graph.MustNewGraph(s, []int{n, n, n})
	for b := 0; b < blocks; b++ {
		for p := range s.Preds {
			g.AddEdge(p, 2*b, 2*b, 0.1+0.8*r.Float64())
			g.AddEdge(p, 2*b, 2*b+1, 0.1+0.8*r.Float64())
			g.AddEdge(p, 2*b+1, 2*b+1, 0.1+0.8*r.Float64())
		}
	}
	return g
}

// measureRounds times `rounds` steady-state scheduling rounds: color 16
// edges of the pending batch, recompute the next batch. Graph rebuilds
// (on exhaustion) happen outside the timer.
func measureRounds(blocks, rounds int, strat cost.Strategy, reset func()) (nsPerRound float64, edges int) {
	r := stats.NewRNG(9)
	g := costBenchGraph(blocks, r)
	edges = g.NumEdges()
	reset()
	batch := strat.NextRound(g) // priming first round: full rescore
	var total time.Duration
	for i := 0; i < rounds; i++ {
		if len(batch) == 0 {
			g = costBenchGraph(blocks, r)
			reset()
			batch = strat.NextRound(g)
		}
		k := 16
		if k > len(batch) {
			k = len(batch)
		}
		for _, id := range batch[:k] {
			if r.Bool(g.Edge(id).W) {
				g.SetColor(id, graph.Blue)
			} else {
				g.SetColor(id, graph.Red)
			}
		}
		start := time.Now()
		batch = strat.NextRound(g)
		total += time.Since(start)
	}
	return float64(total.Nanoseconds()) / float64(rounds), edges
}

func benchRoundScale(blocks, rounds int) RoundBenchResult {
	e := &cost.Expectation{}
	incNs, edges := measureRounds(blocks, rounds, e, func() { *e = cost.Expectation{} })
	naiveNs, _ := measureRounds(blocks, rounds, &cost.NaiveExpectation{}, func() {})
	return RoundBenchResult{
		Edges:              edges,
		Components:         blocks,
		IncrementalNsRound: incNs,
		NaiveNsRound:       naiveNs,
		Speedup:            naiveNs / incNs,
	}
}

func benchJoinScale(n, workers, reps int) JoinBenchResult {
	old := sim.JoinWorkers
	defer func() { sim.JoinWorkers = old }()
	sim.JoinWorkers = workers

	r := stats.NewRNG(11)
	words := []string{"univ", "of", "california", "chicago", "duke",
		"dept", "nutrition", "cambridge", "microsoft", "lab", "inst"}
	mk := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			k := 1 + r.Intn(4)
			s := ""
			for w := 0; w < k; w++ {
				if w > 0 {
					s += " "
				}
				s += words[r.Intn(len(words))]
			}
			out[i] = s
		}
		return out
	}
	left, right := mk(n), mk(n)
	sim.Join(sim.Gram2Jaccard, left, right, 0.5) // warm up
	start := time.Now()
	for i := 0; i < reps; i++ {
		sim.Join(sim.Gram2Jaccard, left, right, 0.5)
	}
	effective := workers
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	return JoinBenchResult{
		N:       n,
		Workers: effective,
		NsJoin:  float64(time.Since(start).Nanoseconds()) / float64(reps),
	}
}

// RunCostBench executes the incremental-engine benchmarks and writes
// the report to path (BENCH_cost.json), echoing a summary to w.
// procs > 0 pins GOMAXPROCS for the run (restored on return) so the
// worker sweep measures scheduling, not whatever the host happened to
// expose; the effective value is recorded in the report either way.
func RunCostBench(path string, procs int, w io.Writer) error {
	if procs > 0 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
	}
	report := CostBenchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	fmt.Fprintf(w, "GOMAXPROCS=%d\n", report.GoMaxProcs)
	for _, blocks := range []int{400, 1700} { // ~2.4k and ~10.2k edges
		res := benchRoundScale(blocks, 80)
		report.Rounds = append(report.Rounds, res)
		fmt.Fprintf(w, "round scoring %6d edges: incremental %.2fms  naive %.2fms  speedup %.2fx\n",
			res.Edges, res.IncrementalNsRound/1e6, res.NaiveNsRound/1e6, res.Speedup)
	}
	for _, n := range []int{300, 1000} {
		for _, workers := range []int{1, 2, 4, 8} {
			res := benchJoinScale(n, workers, 3)
			report.Joins = append(report.Joins, res)
			fmt.Fprintf(w, "sim.Join n=%d workers=%d: %.2fms\n", n, res.Workers, res.NsJoin/1e6)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
