package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cdb/internal/cost"
	"cdb/internal/crowd"
	"cdb/internal/dataset"
	"cdb/internal/exec"
	"cdb/internal/stats"
)

// TransModeResult is one execution mode's totals over the transitive-
// inference workload.
type TransModeResult struct {
	Mode        string  `json:"mode"` // "baseline" or "transitive"
	Tasks       int     `json:"tasks"`
	Rounds      int     `json:"rounds"`
	Assignments int     `json:"assignments"`
	HITs        int     `json:"hits"`
	Inferred    int     `json:"inferred,omitempty"`
	F1          float64 `json:"f1"` // mean per-query F1
}

// TransBenchReport is the schema of BENCH_trans.json: the paper join
// workload with transitive inference off vs on, same crowd seeds.
type TransBenchReport struct {
	Date       string          `json:"date"`
	Dataset    string          `json:"dataset"`
	Scale      float64         `json:"scale"`
	Redundancy int             `json:"redundancy"`
	Reps       int             `json:"reps"`
	Baseline   TransModeResult `json:"baseline"`
	Transitive TransModeResult `json:"transitive"`
	TasksSaved int             `json:"tasks_saved"`
	HITsSaved  int             `json:"hits_saved"`
	F1Delta    float64         `json:"f1_delta"` // transitive − baseline
}

// transCell runs one (query, mode) cell. Both modes of a cell get a
// pool built from the same seed, so the comparison differs only in the
// inference overlay, never in worker-quality draws.
func transCell(d *dataset.Data, query string, transitive bool, cfg Config, poolSeed uint64) (*exec.Report, error) {
	p, err := buildPlan(d, query, exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3})
	if err != nil {
		return nil, err
	}
	return exec.Run(context.Background(), p, exec.Options{
		Strategy:   &cost.Expectation{},
		Redundancy: cfg.Redundancy,
		Pool:       crowd.NewPool(cfg.PoolSize, cfg.WorkerQ, cfg.WorkerSD, stats.NewRNG(poolSeed)),
		Transitive: transitive,
	})
}

// Trans is the "trans" experiment: every paper benchmark query
// replayed with transitive inference off and on, equal crowd seeds,
// reporting the crowd work inference saves and the (bounded) quality
// movement. Writes BENCH_trans.json (cfg.TransOut) as the committed
// artifact.
func Trans(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed)
	base := TransModeResult{Mode: "baseline"}
	trans := TransModeResult{Mode: "transitive"}
	var baseF1, transF1 stats.Agg
	cells := 0

	for rep := 0; rep < cfg.Reps; rep++ {
		d := genData(cfg, rng.Uint64())
		qs := dataset.Queries(cfg.Dataset)
		for _, label := range dataset.QueryLabels() {
			poolSeed := rng.Uint64()
			rb, err := transCell(d, qs[label], false, cfg, poolSeed)
			if err != nil {
				return nil, err
			}
			rt, err := transCell(d, qs[label], true, cfg, poolSeed)
			if err != nil {
				return nil, err
			}
			base.Tasks += rb.Metrics.Tasks
			base.Rounds += rb.Metrics.Rounds
			base.Assignments += rb.Assignments
			base.HITs += rb.HITs
			baseF1.Add(rb.Metrics)
			trans.Tasks += rt.Metrics.Tasks
			trans.Rounds += rt.Metrics.Rounds
			trans.Assignments += rt.Assignments
			trans.HITs += rt.HITs
			trans.Inferred += rt.Inferred
			transF1.Add(rt.Metrics)
			cells++
		}
	}
	_, _, _, _, base.F1 = baseF1.Mean()
	_, _, _, _, trans.F1 = transF1.Mean()

	report := TransBenchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Dataset:    cfg.Dataset,
		Scale:      cfg.Scale,
		Redundancy: cfg.Redundancy,
		Reps:       cfg.Reps,
		Baseline:   base,
		Transitive: trans,
		TasksSaved: base.Tasks - trans.Tasks,
		HITsSaved:  base.HITs - trans.HITs,
		F1Delta:    trans.F1 - base.F1,
	}
	if cfg.TransOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.TransOut, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID: "trans",
		Title: fmt.Sprintf("transitive join inference over %d query runs: %d tasks saved (%d HITs), %d labels inferred, F1 %+0.4f",
			cells, report.TasksSaved, report.HITsSaved, trans.Inferred, report.F1Delta),
		LabelNames: []string{"mode"},
		ValueNames: []string{"tasks", "hits", "assignments", "rounds", "inferred", "f1"},
		Rows: []Row{
			{Labels: []string{"baseline"}, Values: []float64{float64(base.Tasks), float64(base.HITs), float64(base.Assignments), float64(base.Rounds), 0, base.F1}},
			{Labels: []string{"transitive"}, Values: []float64{float64(trans.Tasks), float64(trans.HITs), float64(trans.Assignments), float64(trans.Rounds), float64(trans.Inferred), trans.F1}},
		},
	}
	return []*Table{t}, nil
}
