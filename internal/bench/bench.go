// Package bench regenerates every table and figure of the paper's
// evaluation (§6 and Appendix D) on the synthetic datasets: the
// cost/quality/latency grids of Figs. 8–10 and 14–16, the
// worker-quality sweep of Fig. 11, the collection experiments of
// Fig. 17, the budget curves of Figs. 18–19, the quality/redundancy
// tradeoffs of Figs. 20–21, the cost-latency tradeoff of Fig. 22, the
// similarity-function ablation of Figs. 23–24, and the optimizer
// efficiency numbers of Table 5. Absolute values differ from the paper
// (synthetic data, simulated crowd); the comparisons — who wins, by
// roughly what factor, where curves cross — are the reproduction
// target (see EXPERIMENTS.md).
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"

	"cdb/internal/baselines"
	"cdb/internal/cost"
	"cdb/internal/cql"
	"cdb/internal/crowd"
	"cdb/internal/dataset"
	"cdb/internal/exec"
	"cdb/internal/obs"
	"cdb/internal/quality"
	"cdb/internal/sim"
	"cdb/internal/stats"
)

// Config controls an experiment run. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	Dataset    string  // "paper" or "award"
	Scale      float64 // dataset scale; 1.0 = the paper's Table 2/3 sizes
	Seed       uint64
	Reps       int     // repetitions averaged per cell (paper: 1000)
	Redundancy int     // answers per task (paper: 5)
	WorkerQ    float64 // mean worker accuracy (paper: 0.8)
	WorkerSD   float64 // accuracy stddev (paper: 0.1, i.e. variance 0.01)
	PoolSize   int     // simulated workers available
	Samples    int     // MinCut sampling count (paper real exp: 100)
	// Observer, when set, receives the lifecycle spans of every query
	// execution the harness performs (one trace per runCell).
	Observer obs.Observer

	// Chaos knobs (the "chaos" experiment and cdbench -fault-* flags):
	// fault rates injected into the asynchronous transport, plus the
	// executor's reliability policy. All zero means a clean transport.
	FaultSeed      uint64
	FaultDrop      float64
	FaultStraggler float64
	FaultDup       float64
	FaultCorrupt   float64
	FaultBlackout  string  // "market:from:until" (empty market = all)
	TaskDeadline   int64   // per-HIT deadline in virtual ticks (0 = default)
	MaxRetries     int     // reissue waves per round (0 = default)
	HedgeFrac      float64 // slowest fraction hedged (0 = default)

	// Serving knobs (the "serve" experiment and cdbench -serve-* flags).
	ServeClients int    // engine concurrency (in-flight queries)
	ServeQueries int    // workload size (arrivals over the 5 templates)
	ServeOut     string // BENCH_engine.json path ("" skips the artifact)

	// Transitive-inference knobs (the "trans" experiment).
	TransOut string // BENCH_trans.json path ("" skips the artifact)

	// Greedy-planner knobs (the "plan" experiment).
	PlanOut string // BENCH_plan.json path ("" skips the artifact)

	// Scale-out knobs (the "shard" experiment and cdbench -shard-* flags).
	ShardClients int    // concurrent clients driving the coordinator
	ShardQueries int    // workload size (arrivals over the 5 templates)
	ShardDelayMs int    // simulated crowd round-trip per completed round
	ShardOut     string // BENCH_shard.json path ("" skips the artifact)
}

// DefaultConfig returns settings sized for minutes-scale regeneration.
// Raise Scale/Reps toward 1.0/1000 to approach the paper's protocol.
func DefaultConfig() Config {
	return Config{
		Dataset:    "paper",
		Scale:      0.12,
		Seed:       1,
		Reps:       3,
		Redundancy: 5,
		WorkerQ:    0.8,
		WorkerSD:   0.1,
		PoolSize:   50,
		Samples:    20,

		ServeClients: 8,
		ServeQueries: 24,
		ServeOut:     "BENCH_engine.json",

		TransOut: "BENCH_trans.json",

		PlanOut: "BENCH_plan.json",

		ShardClients: 8,
		ShardQueries: 40,
		ShardDelayMs: 60,
		ShardOut:     "BENCH_shard.json",
	}
}

// Methods lists the nine systems of Fig. 8 in the paper's order.
var Methods = []string{"Trans", "ACD", "CrowdDB", "Qurk", "Deco", "OptTree", "MinCut", "CDB", "CDB+"}

// Row is one data point of an experiment output.
type Row struct {
	Labels []string  // dimension values, aligned with Table.LabelNames
	Values []float64 // metric values, aligned with Table.ValueNames
	// CI optionally holds the 95% confidence half-width of each value
	// (aligned with Values); rendered as "v±ci". nil or zero entries
	// render as the bare value.
	CI []float64
}

// Table is one regenerated figure/table.
type Table struct {
	ID         string
	Title      string
	LabelNames []string
	ValueNames []string
	Rows       []Row
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	header := append(append([]string{}, t.LabelNames...), t.ValueNames...)
	fmt.Fprintln(w, strings.Join(pad(header), "  "))
	for _, r := range t.Rows {
		cells := append([]string{}, r.Labels...)
		for i, v := range r.Values {
			if i < len(r.CI) && r.CI[i] > 0 {
				cells = append(cells, fmt.Sprintf("%.3f±%.3f", v, r.CI[i]))
			} else {
				cells = append(cells, fmt.Sprintf("%.3f", v))
			}
		}
		fmt.Fprintln(w, strings.Join(pad(cells), "  "))
	}
	fmt.Fprintln(w)
}

func pad(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = fmt.Sprintf("%-12s", c)
	}
	return out
}

// genData builds the configured dataset.
func genData(cfg Config, seed uint64) *dataset.Data {
	dcfg := dataset.Config{Seed: seed, Scale: cfg.Scale}
	if cfg.Dataset == "award" {
		return dataset.GenAward(dcfg)
	}
	return dataset.GenPaper(dcfg)
}

// buildPlan parses and binds one of the benchmark queries.
func buildPlan(d *dataset.Data, query string, planCfg exec.PlanConfig) (*exec.Plan, error) {
	st, err := cql.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	sel, ok := st.(*cql.Select)
	if !ok {
		return nil, fmt.Errorf("bench: query is not a SELECT")
	}
	return exec.BuildPlan(sel, d.Catalog, d.Oracle, planCfg)
}

// strategyFor instantiates the named method over a fresh plan.
func strategyFor(method string, p *exec.Plan, cfg Config, rng *stats.RNG) cost.Strategy {
	switch method {
	case "CrowdDB":
		return baselines.NewTreeModel(method, baselines.CrowdDBOrder(p.S))
	case "Qurk":
		return baselines.NewTreeModel(method, baselines.QurkOrder(p.S))
	case "Deco":
		return baselines.NewTreeModel(method, baselines.DecoOrder(p.G))
	case "OptTree":
		return baselines.NewTreeModel(method, baselines.OptTreeOrder(p.G, p.Truth))
	case "Trans":
		s := baselines.NewTrans()
		s.Side = p.ERSideOracle(0.35)
		return s
	case "ACD":
		s := baselines.NewACD()
		s.Side = p.ERSideOracle(0.35)
		return s
	case "MinCut":
		return cost.NewMinCutSampling(cfg.Samples, rng.Split())
	default: // CDB, CDB+
		return &cost.Expectation{}
	}
}

// runCell executes one (query, method) cell once and returns metrics.
func runCell(d *dataset.Data, query, method string, cfg Config, rng *stats.RNG,
	planCfg exec.PlanConfig, maxRounds int, workers *quality.WorkerModel) (stats.Metrics, error) {

	p, err := buildPlan(d, query, planCfg)
	if err != nil {
		return stats.Metrics{}, err
	}
	qm := exec.MajorityVoting
	if method == "CDB+" {
		qm = exec.CDBPlus
	}
	var tr *obs.Tracer
	var root obs.SpanID
	if cfg.Observer != nil {
		tr = obs.NewTracer(cfg.Observer)
		root = tr.Begin(obs.SpanQuery)
		tr.Mutate(root, func(s *obs.Span) { s.Query = query; s.Label = method })
	}
	rep, err := exec.Run(context.Background(), p, exec.Options{
		Strategy:   strategyFor(method, p, cfg, rng),
		Redundancy: cfg.Redundancy,
		Quality:    qm,
		MaxRounds:  maxRounds,
		Pool:       crowd.NewPool(cfg.PoolSize, cfg.WorkerQ, cfg.WorkerSD, rng.Split()),
		Workers:    workers,
		Trace:      tr,
	})
	if tr != nil {
		tr.End(root)
		tr.Finish()
	}
	if err != nil {
		return stats.Metrics{}, err
	}
	return rep.Metrics, nil
}

// averageCell repeats runCell cfg.Reps times with split RNGs.
func averageCell(d *dataset.Data, query, method string, cfg Config, rng *stats.RNG,
	planCfg exec.PlanConfig, maxRounds int) (stats.Agg, error) {

	var agg stats.Agg
	for rep := 0; rep < cfg.Reps; rep++ {
		m, err := runCell(d, query, method, cfg, rng, planCfg, maxRounds, nil)
		if err != nil {
			return agg, err
		}
		agg.Add(m)
	}
	return agg, nil
}

// Registry maps experiment ids to runners; cmd/cdbench iterates it.
var Registry = map[string]func(Config) ([]*Table, error){
	"fig1":   Fig1,
	"fig8":   Fig8to10,
	"fig11":  Fig11,
	"fig14":  Fig14to16,
	"fig17":  Fig17,
	"fig18":  Fig18,
	"fig20":  Fig20,
	"fig21":  Fig21,
	"fig22":  Fig22,
	"fig23":  Fig23to24,
	"table5": Table5,
	"chaos":  Chaos,
	"serve":  Serve,
	"trans":  Trans,
	"shard":  Shard,
	"plan":   PlanBench,
}

// ExperimentIDs returns the registry keys in canonical order.
func ExperimentIDs() []string {
	return []string{"fig1", "fig8", "fig11", "fig14", "fig17", "fig18", "fig20", "fig21", "fig22", "fig23", "table5", "chaos", "serve", "trans", "shard", "plan"}
}

// aliases used by several experiments.
var defaultSim = sim.Gram2Jaccard
