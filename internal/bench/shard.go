package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cdb"
	"cdb/internal/cluster"
)

// ShardFleetResult is one fleet size's outcome over the workload.
type ShardFleetResult struct {
	Shards           int     `json:"shards"`
	Clients          int     `json:"clients"`
	Queries          int     `json:"queries"`
	WallMs           float64 `json:"wall_ms"`
	QPS              float64 `json:"qps"`
	Scaling          float64 `json:"scaling_vs_one"` // QPS / one-shard QPS
	P50Ms            float64 `json:"p50_ms"`
	P95Ms            float64 `json:"p95_ms"`
	Retries          int64   `json:"client_retries"` // 429s absorbed by client backoff
	HITsIssued       int     `json:"hits_issued"`
	HITsSaved        int     `json:"hits_saved"`
	RemoteImported   int64   `json:"remote_imported"`
	RemoteHits       int64   `json:"remote_hits"`
	ProbeRemoteHits  int64   `json:"probe_remote_hits"`
	ProbeAssignments int64   `json:"probe_assignments"` // fresh crowd work during the off-owner probe (0 = fully replicated)
}

// ShardBenchReport is the schema of BENCH_shard.json: the same
// workload pushed through 1-, 2- and 4-shard fleets.
type ShardBenchReport struct {
	Date           string             `json:"date"`
	GoMaxProcs     int                `json:"gomaxprocs"`
	Dataset        string             `json:"dataset"`
	Scale          float64            `json:"scale"`
	RoundDelayMs   int                `json:"round_delay_ms"`
	Fleets         []ShardFleetResult `json:"fleets"`
	Scaling2x      float64            `json:"scaling_2x"`
	Scaling4x      float64            `json:"scaling_4x"`
	CrossShardHits int64              `json:"cross_shard_hits"` // tasks served by replicated verdicts, fleet-wide
}

// shardEngine opens one shard's engine. Every shard gets an identical
// DB (seed, dataset, worker pool) — the fleet fingerprint contract —
// and a deliberately small admission window (2 executing, 2 queued) so
// throughput is slot-bound the way a deployed node is, and overflow
// exercises the coordinator's spill path instead of an infinite queue.
func shardEngine(cfg Config) (*cdb.Engine, error) {
	db := cdb.Open(
		cdb.WithSeed(cfg.Seed),
		cdb.WithDataset(cfg.Dataset, cfg.Scale, cfg.Seed),
		cdb.WithWorkers(cfg.PoolSize, cfg.WorkerQ, cfg.WorkerSD),
	)
	if err := db.Err(); err != nil {
		return nil, err
	}
	return db.NewEngine(
		cdb.WithMaxInFlight(2),
		cdb.WithMaxQueue(2),
		cdb.WithVerdictCache(1<<20),
	)
}

// shardFleetRun measures one fleet size: cfg.ShardClients concurrent
// clients drain the workload through a coordinator over n shards, with
// client-side retry on 429 (the distributed admission contract). After
// the timed run, a probe executes each template whole on a non-owner
// shard: replicated verdicts must answer it without issuing any fresh
// crowd work.
func shardFleetRun(cfg Config, n int) (ShardFleetResult, error) {
	engines := make([]*cdb.Engine, n)
	backends := make([]cluster.Backend, n)
	locals := make([]*cluster.LocalBackend, n)
	for i := range engines {
		e, err := shardEngine(cfg)
		if err != nil {
			return ShardFleetResult{}, err
		}
		defer e.Close()
		engines[i] = e
		lb := cluster.NewLocalBackend(fmt.Sprintf("s%d", i), e)
		locals[i] = lb
		backends[i] = lb
	}
	planner, err := shardEngine(cfg)
	if err != nil {
		return ShardFleetResult{}, err
	}
	defer planner.Close()
	fleet, err := cluster.New(cluster.Config{Planner: planner, Backends: backends, SpillQueue: 1})
	if err != nil {
		return ShardFleetResult{}, err
	}

	// Warm the fleet sequentially first: each template pays its crowd
	// work exactly once on its owning shard, and synchronous piggyback
	// replication spreads the verdicts before the next statement. The
	// timed phase then measures serving capacity — concurrent clients
	// against slot-bound shards — rather than racing first-payers
	// duplicating crowd spend.
	delay := time.Duration(cfg.ShardDelayMs) * time.Millisecond
	for _, lb := range locals {
		lb.RoundDelay = 0
	}
	for _, q := range serveWorkload(cfg.Dataset, 5) {
		if _, err := fleet.Exec(context.Background(), q, 0); err != nil {
			return ShardFleetResult{}, fmt.Errorf("warmup: %w", err)
		}
	}
	for _, lb := range locals {
		lb.RoundDelay = delay
	}

	queries := serveWorkload(cfg.Dataset, cfg.ShardQueries)
	lat := make([]float64, len(queries))
	var retries atomic.Int64
	var firstErr atomic.Value
	next := make(chan int, len(queries))
	for i := range queries {
		next <- i
	}
	close(next)

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.ShardClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				for {
					_, err := fleet.Exec(context.Background(), queries[i], 0)
					if err == nil {
						break
					}
					if errors.Is(err, cdb.ErrOverloaded) {
						retries.Add(1)
						time.Sleep(10 * time.Millisecond)
						continue
					}
					firstErr.CompareAndSwap(nil, err)
					return
				}
				lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e6
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return ShardFleetResult{}, err
	}

	res := ShardFleetResult{
		Shards:  n,
		Clients: cfg.ShardClients,
		Queries: len(queries),
		WallMs:  float64(wall.Nanoseconds()) / 1e6,
		QPS:     float64(len(queries)) / wall.Seconds(),
		Retries: retries.Load(),
	}
	res.P50Ms, res.P95Ms = latencyStats(lat)
	var assignments int64
	for _, e := range engines {
		st := e.Stats()
		res.HITsIssued += st.HITsIssued
		res.HITsSaved += st.HITsSaved
		res.RemoteImported += st.RemoteImported
		res.RemoteHits += st.RemoteHits
		assignments += st.AssignmentsIssued
	}

	// Off-owner probe: rotate each template onto the next shard over
	// and execute it whole, bypassing the coordinator's ownership
	// routing. Every verdict it needs was paid for elsewhere and
	// replicated in, so the probe must finish on cache alone.
	if n > 1 {
		for _, lb := range locals {
			lb.RoundDelay = 0
		}
		templates := serveWorkload(cfg.Dataset, 5)
		for i, q := range templates {
			b := locals[(i+1)%n]
			if _, err := b.Exec(context.Background(), cluster.ExecRequest{Query: q}); err != nil {
				return ShardFleetResult{}, fmt.Errorf("off-owner probe on %s: %w", b.ID(), err)
			}
		}
		var hits, issued int64
		for _, e := range engines {
			st := e.Stats()
			hits += st.RemoteHits
			issued += st.AssignmentsIssued
		}
		res.ProbeRemoteHits = hits - res.RemoteHits
		res.ProbeAssignments = issued - assignments
	}
	return res, nil
}

// Shard is the "shard" experiment: horizontal scale-out. The same
// arrival sequence runs against coordinators over 1, 2 and 4 shards
// whose per-node capacity is fixed, reporting aggregate throughput,
// scaling ratios, and the cross-shard verdict-cache economy. Writes
// BENCH_shard.json (cfg.ShardOut) as the committed artifact.
func Shard(cfg Config) ([]*Table, error) {
	sizes := []int{1, 2, 4}
	report := ShardBenchReport{
		Date:         time.Now().UTC().Format("2006-01-02"),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Dataset:      cfg.Dataset,
		Scale:        cfg.Scale,
		RoundDelayMs: cfg.ShardDelayMs,
	}
	for _, n := range sizes {
		r, err := shardFleetRun(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("fleet of %d: %w", n, err)
		}
		if base := report.Fleets; len(base) > 0 {
			r.Scaling = r.QPS / base[0].QPS
		} else {
			r.Scaling = 1
		}
		report.Fleets = append(report.Fleets, r)
		report.CrossShardHits += r.RemoteHits + r.ProbeRemoteHits
	}
	report.Scaling2x = report.Fleets[1].Scaling
	report.Scaling4x = report.Fleets[2].Scaling

	if cfg.ShardOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.ShardOut, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID:         "shard",
		Title:      fmt.Sprintf("horizontal scale-out, %d queries @%d clients: %.2fx at 2 shards, %.2fx at 4", cfg.ShardQueries, cfg.ShardClients, report.Scaling2x, report.Scaling4x),
		LabelNames: []string{"shards"},
		ValueNames: []string{"qps", "scaling", "p95_ms", "retries", "hits", "remote_hits", "probe_hits"},
	}
	for _, r := range report.Fleets {
		t.Rows = append(t.Rows, Row{
			Labels: []string{fmt.Sprintf("%d", r.Shards)},
			Values: []float64{r.QPS, r.Scaling, r.P95Ms, float64(r.Retries), float64(r.HITsIssued), float64(r.RemoteHits), float64(r.ProbeRemoteHits)},
		})
	}
	return []*Table{t}, nil
}
