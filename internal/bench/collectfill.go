package bench

import (
	"fmt"

	"cdb/internal/dataset"
	"cdb/internal/quality"
	"cdb/internal/sim"
	"cdb/internal/stats"
)

// Fig17 regenerates the collection-semantics experiments:
//
//	(a) COLLECT the top-100 universities: CDB's autocompletion lets
//	    workers see (and avoid) what is already collected, so the
//	    number of questions grows near-linearly in the number of
//	    distinct results, while Deco pays the coupon-collector price
//	    for uncontrolled duplicates.
//	(b) FILL the state of 100 universities with 5 assignments each:
//	    CDB stops early once the first three answers agree, saving
//	    about a third of the assignments.
func Fig17(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed + 17)

	collect := &Table{ID: "fig17a", Title: "COLLECT top-100 universities: #questions vs #results",
		LabelNames: []string{"results", "method"}, ValueNames: []string{"questions"}}
	fill := &Table{ID: "fig17b", Title: "FILL university states: #assignments vs #results",
		LabelNames: []string{"results", "method"}, ValueNames: []string{"assignments"}}

	const universe = 100
	targets := []int{20, 40, 60, 80, 100}

	// Per-method repetition averages.
	type curve map[int]float64
	runCollect := func(autocomplete bool, r *stats.RNG) curve {
		out := curve{}
		collected := map[int]bool{}
		questions := 0
		next := 0
		for len(collected) < universe && questions < 100000 {
			questions++
			var item int
			if autocomplete && r.Bool(0.9) && len(collected) > 0 && len(collected) < universe {
				// The worker scans the suggestions and contributes
				// something not yet present.
				item = r.Intn(universe - len(collected))
				idx := 0
				for cand := 0; cand < universe; cand++ {
					if collected[cand] {
						continue
					}
					if idx == item {
						item = cand
						break
					}
					idx++
				}
			} else {
				item = r.Intn(universe)
			}
			collected[item] = true
			if next < len(targets) && len(collected) >= targets[next] {
				out[targets[next]] = float64(questions)
				next++
			}
		}
		return out
	}

	var cdbAgg, decoAgg []curve
	for rep := 0; rep < cfg.Reps; rep++ {
		cdbAgg = append(cdbAgg, runCollect(true, rng.Split()))
		decoAgg = append(decoAgg, runCollect(false, rng.Split()))
	}
	avg := func(curves []curve, m int) float64 {
		var s float64
		for _, c := range curves {
			s += c[m]
		}
		return s / float64(len(curves))
	}
	for _, m := range targets {
		collect.Rows = append(collect.Rows, Row{
			Labels: []string{fmt.Sprintf("%03d", m), "CDB"},
			Values: []float64{avg(cdbAgg, m)},
		})
		collect.Rows = append(collect.Rows, Row{
			Labels: []string{fmt.Sprintf("%03d", m), "Deco"},
			Values: []float64{avg(decoAgg, m)},
		})
	}

	// FILL: 100 universities, each with a true state drawn from 50;
	// worker answers the truth with probability WorkerQ.
	states := make([]string, 50)
	dirty := &dataset.Dirtier{R: rng.Split()}
	for i := range states {
		states[i] = dataset.InventName(dirty.R)
	}
	simFn := func(a, b string) float64 { return sim.Jaccard2Gram(a, b) }

	runFill := func(earlyStop bool, r *stats.RNG) []float64 {
		// cumulative assignments after each item
		cum := make([]float64, universe+1)
		workerAcc := make([]float64, 25)
		for i := range workerAcc {
			workerAcc[i] = r.NormClamped(cfg.WorkerQ, cfg.WorkerSD, 0.05, 0.99)
		}
		total := 0.0
		for item := 1; item <= universe; item++ {
			truth := states[r.Intn(len(states))]
			var answers []quality.FillAnswer
			asked := 0
			for asked < 5 {
				w := r.Intn(len(workerAcc))
				text := truth
				if !r.Bool(workerAcc[w]) {
					text = states[r.Intn(len(states))]
				}
				answers = append(answers, quality.FillAnswer{Worker: w, Text: text})
				asked++
				// CDB stops once the first 3 answers are mutually similar.
				if earlyStop && asked >= 3 && quality.FillConsistency(answers, simFn) > 0.9 {
					break
				}
			}
			total += float64(asked)
			cum[item] = total
		}
		return cum
	}

	var cdbFill, decoFill []float64
	for rep := 0; rep < cfg.Reps; rep++ {
		c := runFill(true, rng.Split())
		d := runFill(false, rng.Split())
		if cdbFill == nil {
			cdbFill = make([]float64, len(c))
			decoFill = make([]float64, len(d))
		}
		for i := range c {
			cdbFill[i] += c[i] / float64(cfg.Reps)
			decoFill[i] += d[i] / float64(cfg.Reps)
		}
	}
	for _, m := range targets {
		fill.Rows = append(fill.Rows, Row{
			Labels: []string{fmt.Sprintf("%03d", m), "CDB"},
			Values: []float64{cdbFill[m]},
		})
		fill.Rows = append(fill.Rows, Row{
			Labels: []string{fmt.Sprintf("%03d", m), "Deco"},
			Values: []float64{decoFill[m]},
		})
	}
	return []*Table{collect, fill}, nil
}
