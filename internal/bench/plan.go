package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"cdb/internal/cql"
	"cdb/internal/crowd"
	"cdb/internal/exec"
	"cdb/internal/graph"
	"cdb/internal/plan"
	"cdb/internal/stats"
)

// PlanBenchReport is the schema of BENCH_plan.json: randomized 3–6-table
// multi-join workloads executed in greedy versus statement order with
// equal crowd seeds. Early-termination wins are reported separately:
// both executors spend zero HITs on a provably empty join (graph
// validity prunes every edge), so EarlyExitHITsSaved counts the
// fixed-model cost a planner-less executor would have paid.
type PlanBenchReport struct {
	Date    string `json:"date"`
	Queries int    `json:"queries"`
	Cells   int    `json:"cells"` // executed (query, mode) cells

	FixedHITs  int `json:"fixed_hits"`
	GreedyHITs int `json:"greedy_hits"`
	HITsSaved  int `json:"hits_saved"`

	EarlyExitQueries   int `json:"early_exit_queries"`
	EarlyExitHITsSaved int `json:"early_exit_hits_saved"`

	// Planning-time percentiles over every greedy planning call.
	PlanP50Micros int64 `json:"plan_p50_us"`
	PlanP95Micros int64 `json:"plan_p95_us"`

	// ExplainAssignments counts crowd work observed during EXPLAIN-only
	// planning (edges colored on the plan's graph); the gate requires 0.
	ExplainAssignments int `json:"explain_assignments"`
}

// planCell executes one generated query under the given join order with
// content-pure verdicts, so answers depend only on (seed, edge content)
// and both orders of a pair are directly comparable.
func planCell(c plan.Case, order []int, cfg Config, verdictSeed, poolSeed uint64) (*exec.Report, *exec.Plan, error) {
	p, err := buildCasePlan(c)
	if err != nil {
		return nil, nil, err
	}
	pool := crowd.NewPool(cfg.PoolSize, cfg.WorkerQ, cfg.WorkerSD, stats.NewRNG(poolSeed))
	rep, err := exec.Run(context.Background(), p, exec.Options{
		Strategy:   &plan.Ordered{Order: order},
		Redundancy: cfg.Redundancy,
		Pool:       pool,
		Resolver:   &plan.PureResolver{Seed: verdictSeed, Pool: pool},
	})
	return rep, p, err
}

func buildCasePlan(c plan.Case) (*exec.Plan, error) {
	st, err := cql.Parse(c.Query)
	if err != nil {
		return nil, err
	}
	return exec.BuildPlan(st.(*cql.Select), c.Catalog, exec.ExactOracle{}, exec.PlanConfig{Sim: defaultSim, Epsilon: 0.3})
}

// coloredEdges counts edges no longer Unknown — crowd work that touched
// the graph. EXPLAIN-only planning must leave it at zero.
func coloredEdges(g *graph.Graph) int {
	n := 0
	for id := 0; id < g.NumEdges(); id++ {
		if g.Edge(id).Color != graph.Unknown {
			n++
		}
	}
	return n
}

// PlanBench is the "plan" experiment: the greedy planner against
// statement order over randomized chain/star schemas (the same
// generator the property tests run). Writes BENCH_plan.json
// (cfg.PlanOut) as the committed artifact benchguard gates on.
func PlanBench(cfg Config) ([]*Table, error) {
	rng := stats.NewRNG(cfg.Seed)
	queries := 12 * cfg.Reps
	if queries < 24 {
		queries = 24
	}

	var report PlanBenchReport
	report.Queries = queries
	var planTimes []int64

	for q := 0; q < queries; q++ {
		c := plan.RandomCase(rng, 3+rng.Intn(4))
		verdictSeed := rng.Uint64()
		poolSeed := rng.Uint64()

		// EXPLAIN first, against a workerless pool: planning that tried
		// to crowdsource anything would have nobody to ask, and any
		// coloring it caused is counted against the zero-spend gate.
		ep, err := buildCasePlan(c)
		if err != nil {
			return nil, err
		}
		decision := plan.Greedy(ep, 0)
		plan.Describe(ep, decision, true)
		report.ExplainAssignments += coloredEdges(ep.G)
		planTimes = append(planTimes, decision.PlanningMicros)
		if decision.EarlyExit {
			report.EarlyExitQueries++
			report.EarlyExitHITsSaved += decision.FixedTasks
		}

		rg, pg, err := planCell(c, decision.Order, cfg, verdictSeed, poolSeed)
		if err != nil {
			return nil, err
		}
		fixed := plan.Fixed(ep, 0)
		rf, pf, err := planCell(c, fixed.Order, cfg, verdictSeed, poolSeed)
		if err != nil {
			return nil, err
		}
		report.Cells += 2
		report.GreedyHITs += rg.HITs
		report.FixedHITs += rf.HITs

		// Bit-identity is the planner's correctness contract; a diverging
		// cell means the content-pure verdict layer broke.
		gk, fk := pg.AnswerKeys(), pf.AnswerKeys()
		if len(gk) != len(fk) {
			return nil, fmt.Errorf("plan bench query %d: %d greedy answers vs %d fixed", q, len(gk), len(fk))
		}
		for k := range gk {
			if !fk[k] {
				return nil, fmt.Errorf("plan bench query %d: greedy answer %q missing from fixed order", q, k)
			}
		}
	}

	report.HITsSaved = report.FixedHITs - report.GreedyHITs
	sort.Slice(planTimes, func(i, j int) bool { return planTimes[i] < planTimes[j] })
	report.PlanP50Micros = planTimes[len(planTimes)/2]
	report.PlanP95Micros = planTimes[len(planTimes)*95/100]
	report.Date = time.Now().UTC().Format("2006-01-02")

	if cfg.PlanOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.PlanOut, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID: "plan",
		Title: fmt.Sprintf("greedy multi-join planning over %d queries: %d HITs saved vs statement order, %d early exits worth %d predicted HITs, planning p95 %dµs",
			queries, report.HITsSaved, report.EarlyExitQueries, report.EarlyExitHITsSaved, report.PlanP95Micros),
		LabelNames: []string{"mode"},
		ValueNames: []string{"hits", "early_exits", "plan_p95_us"},
		Rows: []Row{
			{Labels: []string{"fixed"}, Values: []float64{float64(report.FixedHITs), 0, 0}},
			{Labels: []string{"greedy"}, Values: []float64{float64(report.GreedyHITs), float64(report.EarlyExitQueries), float64(report.PlanP95Micros)}},
		},
	}
	return []*Table{t}, nil
}
