// Package cost implements CDB's cost control (§5.1): selecting the
// cheapest set of crowd tasks that still determines every query
// answer. It provides
//
//   - the optimal known-color selection of Lemma 1 (blue chains +
//     min-cut over a flow network; star-join special rule),
//   - the sampling greedy ("MinCut" method in the paper's
//     experiments): sample colorings from edge probabilities, solve
//     each sample optimally, rank edges by how often samples need
//     them,
//   - the expectation-based method (Eq. 1), CDB's default, and
//   - budget-aware selection (§5.1.3): spend exactly B tasks to
//     maximize found answers.
//
// Each method is exposed as a Strategy: the executor repeatedly calls
// NextRound, crowdsources the returned batch, colors the graph with
// the inferred answers, and calls again until the strategy is done.
package cost

import (
	"sort"

	"cdb/internal/graph"
	"cdb/internal/latency"
)

// Strategy produces, round by round, the tasks to crowdsource. A nil
// or empty batch signals completion. Flush returns everything the
// strategy still considers necessary, for latency-constrained
// execution (Fig. 22) where the last permitted round floods all
// remaining tasks.
type Strategy interface {
	Name() string
	NextRound(g *graph.Graph) []int
	Flush(g *graph.Graph) []int
}

// Expectation is CDB's default task-selection strategy: rank every
// valid uncolored edge by its pruning expectation (Eq. 1) and ask the
// largest conflict-free prefix in parallel each round.
type Expectation struct {
	// Serial disables the latency scheduler (one task per round); used
	// only by ablations.
	Serial bool
}

// Name implements Strategy.
func (e *Expectation) Name() string { return "CDB" }

// Order ranks valid uncolored edges by pruning expectation,
// descending; ties broken by smaller weight first (cheaper to refute),
// then id for determinism.
func (e *Expectation) Order(g *graph.Graph) []int {
	order, _ := e.OrderScored(g)
	return order
}

// OrderScored additionally returns each edge's pruning expectation,
// which the latency scheduler uses to decide which tasks may share a
// round.
func (e *Expectation) OrderScored(g *graph.Graph) ([]int, map[int]float64) {
	edges := g.ValidUncolored()
	exp := make(map[int]float64, len(edges))
	for _, id := range edges {
		exp[id] = PruningExpectation(g, id)
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if exp[a] != exp[b] {
			return exp[a] > exp[b]
		}
		if wa, wb := g.Edge(a).W, g.Edge(b).W; wa != wb {
			return wa < wb
		}
		return a < b
	})
	return edges, exp
}

// NextRound implements Strategy.
func (e *Expectation) NextRound(g *graph.Graph) []int {
	order, score := e.OrderScored(g)
	if len(order) == 0 {
		return nil
	}
	if e.Serial {
		return latency.SerialBatch(g, order)
	}
	return latency.ParallelBatchScored(g, order, score)
}

// Flush implements Strategy: everything valid and uncolored.
func (e *Expectation) Flush(g *graph.Graph) []int { return g.ValidUncolored() }

// PruningExpectation computes Eq. 1 for edge id: the expected number
// of tasks saved by asking it, from both endpoint bundles. A bundle
// containing a blue edge can never fully disconnect, so its term is
// zero.
func PruningExpectation(g *graph.Graph, id int) float64 {
	e := g.Edge(id)
	return bundleTerm(g, e.U, e.Pred) + bundleTerm(g, e.V, e.Pred)
}

func bundleTerm(g *graph.Graph, v, pred int) float64 {
	prod := 1.0
	x := 0
	for _, eid := range g.EdgesAt(v, pred) {
		switch ed := g.Edge(eid); ed.Color {
		case graph.Blue:
			return 0 // bundle cannot be fully cut
		case graph.Unknown:
			prod *= 1 - ed.W
			x++
		}
	}
	if x == 0 {
		return 0
	}
	loss, _ := g.CutLoss(v, pred)
	return prod / float64(x) * float64(loss)
}
