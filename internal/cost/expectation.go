// Package cost implements CDB's cost control (§5.1): selecting the
// cheapest set of crowd tasks that still determines every query
// answer. It provides
//
//   - the optimal known-color selection of Lemma 1 (blue chains +
//     min-cut over a flow network; star-join special rule),
//   - the sampling greedy ("MinCut" method in the paper's
//     experiments): sample colorings from edge probabilities, solve
//     each sample optimally, rank edges by how often samples need
//     them,
//   - the expectation-based method (Eq. 1), CDB's default, and
//   - budget-aware selection (§5.1.3): spend exactly B tasks to
//     maximize found answers.
//
// Each method is exposed as a Strategy: the executor repeatedly calls
// NextRound, crowdsources the returned batch, colors the graph with
// the inferred answers, and calls again until the strategy is done.
//
// The default Expectation strategy scores incrementally: it caches
// every edge's pruning expectation and, after each round, rescores
// only the edges whose connected component the round's answers
// touched, repairing the ordering with a partial re-sort and merge.
// Untouched components keep their cached scores, so a round over a
// large graph costs O(dirty region), not O(E). Scoring fans out over
// a GOMAXPROCS-sized worker pool when the dirty region is large. The
// result is bit-identical to NaiveExpectation's full rescan — the
// equivalence is enforced by property tests in this package.
package cost

import (
	"runtime"
	"sort"
	"sync"

	"cdb/internal/graph"
	"cdb/internal/latency"
	"cdb/internal/obs"
)

// Strategy produces, round by round, the tasks to crowdsource. A nil
// or empty batch signals completion. Flush returns everything the
// strategy still considers necessary, for latency-constrained
// execution (Fig. 22) where the last permitted round floods all
// remaining tasks.
type Strategy interface {
	Name() string
	NextRound(g *graph.Graph) []int
	Flush(g *graph.Graph) []int
}

// Incremental score-cache health metrics (once-per-round updates, not
// per-edge): a "full" rescore is the naive O(E) path, a "delta"
// rescore repaired only dirtied components, and a "hit" served the
// cached ordering untouched.
var (
	mRescoreFull  = obs.Default.Counter("cdb_cost_rescore_full_total")
	mRescoreDelta = obs.Default.Counter("cdb_cost_rescore_delta_total")
	mOrderHit     = obs.Default.Counter("cdb_cost_order_cache_hit_total")
	mScoredEdges  = obs.Default.Histogram("cdb_cost_scored_edges_per_rescore", obs.SizeBuckets)
)

// parallelScoreThreshold is the dirty-region size below which scoring
// stays on the calling goroutine (a CutEvaluator snapshot costs O(V),
// so tiny regions are cheaper sequentially). A variable so tests can
// force the parallel path.
var parallelScoreThreshold = 256

// Expectation is CDB's default task-selection strategy: rank every
// valid uncolored edge by its pruning expectation (Eq. 1) and ask the
// largest conflict-free prefix in parallel each round.
//
// The struct carries the incremental score cache, so it must not be
// shared between goroutines; one strategy value drives one execution
// at a time (it may be reused across graphs — the cache resets itself
// when the graph changes identity or shape).
type Expectation struct {
	// Serial disables the latency scheduler (one task per round); used
	// only by ablations.
	Serial bool
	// Workers caps the scoring worker pool; 0 means GOMAXPROCS.
	Workers int

	// Incremental score cache.
	cacheUID     uint64 // graph identity the cache belongs to
	cacheEdges   int
	cacheWeightV int
	cursor       int // ColorEvents consumed so far
	haveCache    bool
	score        []float64 // dense, by edge id
	order        []int     // cached ordering (valid uncolored at last scoring)

	// Reusable scratch.
	cleanBuf, dirtyBuf, mergeBuf []int
	dirtyComp                    []bool

	// Cache activity totals (see CacheStats) and the per-query tracer
	// the executor may install; both are inert by default.
	statFull, statDelta, statHit uint64
	tracer                       *obs.Tracer
}

// Name implements Strategy.
func (e *Expectation) Name() string { return "CDB" }

// Order ranks valid uncolored edges by pruning expectation,
// descending; ties broken by smaller weight first (cheaper to refute),
// then id for determinism. The returned slice is the caller's to keep.
func (e *Expectation) Order(g *graph.Graph) []int {
	order, _ := e.orderScored(g)
	return append([]int(nil), order...)
}

// OrderScored additionally returns each edge's pruning expectation as
// a dense slice indexed by edge id, which the latency scheduler uses
// to decide which tasks may share a round. Both returned slices are
// the caller's to keep.
func (e *Expectation) OrderScored(g *graph.Graph) ([]int, []float64) {
	order, score := e.orderScored(g)
	return append([]int(nil), order...), append([]float64(nil), score...)
}

// NextRound implements Strategy.
func (e *Expectation) NextRound(g *graph.Graph) []int {
	sc := e.tracer.Begin(obs.SpanScore)
	order, score := e.orderScored(g)
	e.tracer.Mutate(sc, func(s *obs.Span) { s.Edges = len(order) })
	e.tracer.End(sc)
	if len(order) == 0 {
		return nil
	}
	bt := e.tracer.Begin(obs.SpanBatch)
	var batch []int
	if e.Serial {
		batch = latency.SerialBatch(g, order)
	} else {
		batch = latency.ParallelBatchScored(g, order, score)
	}
	e.tracer.Mutate(bt, func(s *obs.Span) { s.Tasks = len(batch) })
	e.tracer.End(bt)
	return batch
}

// SetTracer implements obs.TraceCarrier: the executor attributes the
// strategy's scoring and batching phases to the current query's round
// spans. A nil tracer (the default) keeps both phases span-free.
func (e *Expectation) SetTracer(t *obs.Tracer) { e.tracer = t }

// CacheStats implements obs.CacheStatser with monotone totals of the
// incremental cache's full rescans, delta rescans and pure hits.
func (e *Expectation) CacheStats() (full, delta, hit uint64) {
	return e.statFull, e.statDelta, e.statHit
}

// Flush implements Strategy: everything valid and uncolored.
func (e *Expectation) Flush(g *graph.Graph) []int { return g.ValidUncolored() }

// orderScored returns the current ordering and dense scores, serving
// from the cache when possible. The returned slices are owned by the
// strategy and valid until the next call.
func (e *Expectation) orderScored(g *graph.Graph) ([]int, []float64) {
	g.Revalidate()
	events := g.ColorEvents()
	reset := !e.haveCache || e.cacheUID != g.UID() || e.cacheEdges != g.NumEdges() ||
		e.cacheWeightV != g.WeightVersion() || e.cursor > len(events)
	if !reset {
		// Validity and the valid-uncolored set shrink monotonically
		// under Unknown→{Blue,Red}; a reverse transition can grow them,
		// which the delta path cannot represent — rescore from scratch.
		for _, ev := range events[e.cursor:] {
			if ev.New == graph.Unknown || ev.Old == graph.Red {
				reset = true
				break
			}
		}
	}
	switch {
	case reset:
		e.statFull++
		mRescoreFull.Inc()
		e.rescoreAll(g)
	case e.cursor < len(events):
		e.statDelta++
		mRescoreDelta.Inc()
		e.rescoreDirty(g, events[e.cursor:])
	default:
		e.statHit++
		mOrderHit.Inc()
	}
	e.cursor = len(events)
	e.haveCache = true
	e.cacheUID = g.UID()
	e.cacheEdges = g.NumEdges()
	e.cacheWeightV = g.WeightVersion()
	return e.order, e.score
}

// rescoreAll scores and sorts every valid uncolored edge.
func (e *Expectation) rescoreAll(g *graph.Graph) {
	e.order = g.ValidUncoloredInto(e.order)
	if len(e.score) != g.NumEdges() {
		e.score = make([]float64, g.NumEdges())
	}
	e.scoreEdges(g, e.order)
	sortEdgesByScore(g, e.order, e.score)
}

// rescoreDirty repairs the cached ordering after the given color
// transitions: every component currently containing an edge incident
// to a changed edge's endpoint is rescored; everything else keeps its
// cached score (a pruning expectation only depends on state inside
// its component, and every fragment of a split component still holds
// an edge adjacent to one of the transition endpoints).
func (e *Expectation) rescoreDirty(g *graph.Graph, events []graph.ColorEvent) {
	compOf, nComp := g.ComponentIndex()
	if cap(e.dirtyComp) < nComp {
		e.dirtyComp = make([]bool, nComp)
	} else {
		e.dirtyComp = e.dirtyComp[:nComp]
		for i := range e.dirtyComp {
			e.dirtyComp[i] = false
		}
	}
	for _, ev := range events {
		ed := g.Edge(ev.Edge)
		for _, v := range [2]int{ed.U, ed.V} {
			for _, pred := range g.TablePreds(g.TableOf(v)) {
				for _, f := range g.EdgesAt(v, pred) {
					if ci := compOf[f]; ci >= 0 {
						e.dirtyComp[ci] = true
					}
				}
			}
		}
	}

	// Split the surviving ordering into clean (scores unchanged, still
	// sorted among themselves) and dirty (rescore + re-sort) runs.
	clean, dirty := e.cleanBuf[:0], e.dirtyBuf[:0]
	for _, id := range e.order {
		if g.Edge(id).Color != graph.Unknown || !g.IsValid(id) {
			continue
		}
		if ci := compOf[id]; ci >= 0 && e.dirtyComp[ci] {
			dirty = append(dirty, id)
		} else {
			clean = append(clean, id)
		}
	}
	e.scoreEdges(g, dirty)
	sortEdgesByScore(g, dirty, e.score)

	// Merge the two sorted runs. The comparator is a strict total
	// order (ties fall through to the edge id), so the merge equals
	// the full sort of the naive path.
	merged := e.mergeBuf[:0]
	i, j := 0, 0
	for i < len(clean) && j < len(dirty) {
		if scoredLess(g, e.score, clean[i], dirty[j]) {
			merged = append(merged, clean[i])
			i++
		} else {
			merged = append(merged, dirty[j])
			j++
		}
	}
	merged = append(merged, clean[i:]...)
	merged = append(merged, dirty[j:]...)
	e.cleanBuf, e.dirtyBuf = clean, dirty
	e.mergeBuf, e.order = e.order, merged
}

// scoreEdges fills e.score for the given edges, fanning out over a
// worker pool when the batch is large. Each worker snapshots the
// graph's validity state into a private CutEvaluator, so the workers
// never contend; scores land in disjoint slots of the dense slice, and
// each score is a pure function of (frozen) graph state, making the
// result independent of scheduling.
func (e *Expectation) scoreEdges(g *graph.Graph, edges []int) {
	mScoredEdges.Observe(float64(len(edges)))
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(edges) {
		workers = len(edges)
	}
	if !g.TreeShaped() || workers <= 1 || len(edges) < parallelScoreThreshold {
		for _, id := range edges {
			e.score[id] = PruningExpectation(g, id)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(edges) {
			break
		}
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(part []int) {
			defer wg.Done()
			ev := g.NewCutEvaluator()
			for _, id := range part {
				e.score[id] = PruningExpectationOn(ev, id)
			}
		}(edges[lo:hi])
	}
	wg.Wait()
}

// scoredLess is the expectation ordering: score descending, then
// weight ascending (cheaper to refute), then id — a strict total
// order, which both the sort and the incremental merge rely on.
func scoredLess(g *graph.Graph, score []float64, a, b int) bool {
	if score[a] != score[b] {
		return score[a] > score[b]
	}
	if wa, wb := g.Edge(a).W, g.Edge(b).W; wa != wb {
		return wa < wb
	}
	return a < b
}

func sortEdgesByScore(g *graph.Graph, edges []int, score []float64) {
	sort.Slice(edges, func(i, j int) bool {
		return scoredLess(g, score, edges[i], edges[j])
	})
}

// cutLosser abstracts where a hypothetical cut is evaluated: the graph
// itself (single-threaded) or a private CutEvaluator (worker pools).
type cutLosser interface {
	CutLoss(v, pred int) (loss, bundle int)
}

// PruningExpectation computes Eq. 1 for edge id: the expected number
// of tasks saved by asking it, from both endpoint bundles. A bundle
// containing a blue edge can never fully disconnect, so its term is
// zero.
func PruningExpectation(g *graph.Graph, id int) float64 {
	e := g.Edge(id)
	return bundleTerm(g, g, e.U, e.Pred) + bundleTerm(g, g, e.V, e.Pred)
}

// PruningExpectationOn is PruningExpectation with the cut losses
// evaluated on a private CutEvaluator, safe to call from concurrent
// workers as long as the graph itself is not mutated meanwhile.
func PruningExpectationOn(ev *graph.CutEvaluator, id int) float64 {
	g := ev.Graph()
	e := g.Edge(id)
	return bundleTerm(g, ev, e.U, e.Pred) + bundleTerm(g, ev, e.V, e.Pred)
}

func bundleTerm(g *graph.Graph, cl cutLosser, v, pred int) float64 {
	prod := 1.0
	x := 0
	for _, eid := range g.EdgesAt(v, pred) {
		switch ed := g.Edge(eid); ed.Color {
		case graph.Blue:
			return 0 // bundle cannot be fully cut
		case graph.Unknown:
			prod *= 1 - ed.W
			x++
		}
	}
	if x == 0 {
		return 0
	}
	loss, _ := cl.CutLoss(v, pred)
	return prod / float64(x) * float64(loss)
}
