// Package cost implements CDB's cost control (§5.1): selecting the
// cheapest set of crowd tasks that still determines every query
// answer. It provides
//
//   - the optimal known-color selection of Lemma 1 (blue chains +
//     min-cut over a flow network; star-join special rule),
//   - the sampling greedy ("MinCut" method in the paper's
//     experiments): sample colorings from edge probabilities, solve
//     each sample optimally, rank edges by how often samples need
//     them,
//   - the expectation-based method (Eq. 1), CDB's default, and
//   - budget-aware selection (§5.1.3): spend exactly B tasks to
//     maximize found answers.
//
// Each method is exposed as a Strategy: the executor repeatedly calls
// NextRound, crowdsources the returned batch, colors the graph with
// the inferred answers, and calls again until the strategy is done.
//
// The default Expectation strategy scores incrementally: it caches
// every edge's pruning expectation and, after each round, rescores
// only the edges whose connected component the round's answers
// touched, repairing the ordering with a partial re-sort and merge.
// Untouched components keep their cached scores, so a round over a
// large graph costs O(dirty region), not O(E). Scoring fans out over
// a GOMAXPROCS-sized worker pool when the dirty region is large. The
// result is bit-identical to NaiveExpectation's full rescan — the
// equivalence is enforced by property tests in this package.
package cost

import (
	"runtime"
	"sort"
	"sync"

	"cdb/internal/graph"
	"cdb/internal/latency"
	"cdb/internal/obs"
)

// Strategy produces, round by round, the tasks to crowdsource. A nil
// or empty batch signals completion. Flush returns everything the
// strategy still considers necessary, for latency-constrained
// execution (Fig. 22) where the last permitted round floods all
// remaining tasks.
type Strategy interface {
	Name() string
	NextRound(g *graph.Graph) []int
	Flush(g *graph.Graph) []int
}

// Incremental score-cache health metrics (once-per-round updates, not
// per-edge): a "full" rescore is the naive O(E) path, a "delta"
// rescore repaired only dirtied components, and a "hit" served the
// cached ordering untouched.
var (
	mRescoreFull  = obs.Default.Counter("cdb_cost_rescore_full_total")
	mRescoreDelta = obs.Default.Counter("cdb_cost_rescore_delta_total")
	mOrderHit     = obs.Default.Counter("cdb_cost_order_cache_hit_total")
	mScoredEdges  = obs.Default.Histogram("cdb_cost_scored_edges_per_rescore", obs.SizeBuckets)
)

// parallelScoreThreshold is the dirty-region size below which scoring
// stays on the calling goroutine (a CutEvaluator snapshot costs O(V),
// so tiny regions are cheaper sequentially). A variable so tests can
// force the parallel path.
var parallelScoreThreshold = 256

// Expectation is CDB's default task-selection strategy: rank every
// valid uncolored edge by its pruning expectation (Eq. 1) and ask the
// largest conflict-free prefix in parallel each round.
//
// The struct carries the incremental score cache, so it must not be
// shared between goroutines; one strategy value drives one execution
// at a time (it may be reused across graphs — the cache resets itself
// when the graph changes identity or shape).
type Expectation struct {
	// Serial disables the latency scheduler (one task per round); used
	// only by ablations.
	Serial bool
	// Workers caps the scoring worker pool; 0 means GOMAXPROCS.
	Workers int

	// closure, when set via SetClosure, is the transitive-inference
	// overlay: edges whose label it already entails are excluded from
	// the ordering (they cost a HIT but reveal nothing), and the
	// ordering becomes expected-optimal for inference — candidates are
	// ranked first by expected inference yield (matching probability ×
	// endpoint cluster sizes: a likely-Blue answer inside large clusters
	// entails the most labels for free), with the pruning expectation of
	// Eq. 1 breaking ties.
	closure *graph.Closure

	// Incremental score cache.
	cacheUID     uint64 // graph identity the cache belongs to
	cacheEdges   int
	cacheWeightV int
	cacheClosure *graph.Closure // overlay the cached ordering was filtered by
	cursor       int            // ColorEvents consumed so far
	haveCache    bool
	score        []float64 // dense, by edge id
	order        []int     // cached ordering (valid uncolored at last scoring)
	yield        []float64 // dense inference-yield cache (closure mode only)

	// Reusable scratch.
	cleanBuf, dirtyBuf, mergeBuf []int
	dirtyComp                    []bool

	// Cache activity totals (see CacheStats) and the per-query tracer
	// the executor may install; both are inert by default.
	statFull, statDelta, statHit uint64
	tracer                       *obs.Tracer
}

// Name implements Strategy.
func (e *Expectation) Name() string { return "CDB" }

// Order ranks valid uncolored edges by pruning expectation,
// descending; ties broken by smaller weight first (cheaper to refute),
// then id for determinism. The returned slice is the caller's to keep.
func (e *Expectation) Order(g *graph.Graph) []int {
	order, _ := e.orderScored(g)
	return append([]int(nil), order...)
}

// OrderScored additionally returns each edge's pruning expectation as
// a dense slice indexed by edge id, which the latency scheduler uses
// to decide which tasks may share a round. Both returned slices are
// the caller's to keep.
func (e *Expectation) OrderScored(g *graph.Graph) ([]int, []float64) {
	order, score := e.orderScored(g)
	return append([]int(nil), order...), append([]float64(nil), score...)
}

// NextRound implements Strategy.
func (e *Expectation) NextRound(g *graph.Graph) []int {
	sc := e.tracer.Begin(obs.SpanScore)
	order, score := e.orderScored(g)
	e.tracer.Mutate(sc, func(s *obs.Span) { s.Edges = len(order) })
	e.tracer.End(sc)
	if len(order) == 0 {
		return nil
	}
	bt := e.tracer.Begin(obs.SpanBatch)
	var batch []int
	if e.Serial {
		batch = latency.SerialBatch(g, order)
	} else {
		batch = TransBatch(g, e.closure, latency.ParallelBatchScored(g, order, score))
	}
	e.tracer.Mutate(bt, func(s *obs.Span) { s.Tasks = len(batch) })
	e.tracer.End(bt)
	return batch
}

// SetTracer implements obs.TraceCarrier: the executor attributes the
// strategy's scoring and batching phases to the current query's round
// spans. A nil tracer (the default) keeps both phases span-free.
func (e *Expectation) SetTracer(t *obs.Tracer) { e.tracer = t }

// SetClosure installs (or, with nil, removes) a transitive-inference
// overlay. The executor calls this when Options.Transitive is on; the
// overlay must belong to the same graph the strategy is driving. The
// score cache detects the change and rescores.
func (e *Expectation) SetClosure(c *graph.Closure) { e.closure = c }

// CacheStats implements obs.CacheStatser with monotone totals of the
// incremental cache's full rescans, delta rescans and pure hits.
func (e *Expectation) CacheStats() (full, delta, hit uint64) {
	return e.statFull, e.statDelta, e.statHit
}

// Flush implements Strategy: everything valid and uncolored, minus
// edges whose label the overlay already entails — a flush round must
// not spend HITs on answers inference provides for free.
func (e *Expectation) Flush(g *graph.Graph) []int {
	return closureFilter(g.ValidUncolored(), e.closure)
}

// TransBatch drops every batch edge whose label the round's other
// answers could entail, so inference gets a chance to answer it for
// free: per predicate, the edges asked together must connect the
// closure's current clusters as a forest. A cycle-closing edge is
// determined by the rest of its cycle whenever those answers chain
// (all Blue, or a Blue path plus one Red), so asking it in the same
// round can only waste HITs — deferring it costs at most a round of
// latency, never a task. The batch arrives in priority order, so the
// most valuable edges of each would-be cycle survive; the scan is a
// pure function of (batch order, closure state), keeping rounds
// deterministic. Filters in place. A nil closure passes through.
func TransBatch(g *graph.Graph, c *graph.Closure, batch []int) []int {
	if c == nil || len(batch) == 0 {
		return batch
	}
	// Batch-local union-find over closure cluster roots. Roots embed
	// the predicate, so clusters of different predicates never meet.
	parent := make(map[int]int, 2*len(batch))
	var find func(x int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	kept := batch[:0]
	for _, id := range batch {
		ed := g.Edge(id)
		ra := find(c.ClusterRoot(ed.Pred, ed.U))
		rb := find(c.ClusterRoot(ed.Pred, ed.V))
		if ra == rb {
			continue // would close a cluster cycle: entailable, defer
		}
		parent[ra] = rb
		kept = append(kept, id)
	}
	return kept
}

// closureFilter drops entailed edges from a batch in place. A nil
// closure passes the batch through; otherwise the closure is brought
// up to date first.
func closureFilter(edges []int, c *graph.Closure) []int {
	if c == nil {
		return edges
	}
	c.Update()
	kept := edges[:0]
	for _, id := range edges {
		if _, _, ok := c.Entails(id); !ok {
			kept = append(kept, id)
		}
	}
	return kept
}

// orderScored returns the current ordering and dense scores, serving
// from the cache when possible. The returned slices are owned by the
// strategy and valid until the next call.
func (e *Expectation) orderScored(g *graph.Graph) ([]int, []float64) {
	g.Revalidate()
	if e.closure != nil {
		// Keep the overlay current before filtering or yield-ranking; the
		// overlay journals nothing itself, so this cannot dirty the cache.
		e.closure.Update()
	}
	events := g.ColorEvents()
	reset := !e.haveCache || e.cacheUID != g.UID() || e.cacheEdges != g.NumEdges() ||
		e.cacheWeightV != g.WeightVersion() || e.cacheClosure != e.closure ||
		e.cursor > len(events)
	if !reset {
		// Validity and the valid-uncolored set shrink monotonically
		// under Unknown→{Blue,Red}; a reverse transition can grow them,
		// which the delta path cannot represent — rescore from scratch.
		for _, ev := range events[e.cursor:] {
			if ev.New == graph.Unknown || ev.Old == graph.Red {
				reset = true
				break
			}
		}
	}
	switch {
	case reset:
		e.statFull++
		mRescoreFull.Inc()
		e.rescoreAll(g)
	case e.cursor < len(events):
		e.statDelta++
		mRescoreDelta.Inc()
		e.rescoreDirty(g, events[e.cursor:])
	default:
		e.statHit++
		mOrderHit.Inc()
	}
	e.cursor = len(events)
	e.haveCache = true
	e.cacheUID = g.UID()
	e.cacheEdges = g.NumEdges()
	e.cacheWeightV = g.WeightVersion()
	e.cacheClosure = e.closure
	return e.order, e.score
}

// rescoreAll scores and sorts every valid uncolored edge (minus
// entailed ones in closure mode).
func (e *Expectation) rescoreAll(g *graph.Graph) {
	e.order = closureFilter(g.ValidUncoloredInto(e.order), e.closure)
	if len(e.score) != g.NumEdges() {
		e.score = make([]float64, g.NumEdges())
	}
	e.scoreEdges(g, e.order)
	e.computeYields(g, e.order)
	e.sortEdges(g, e.order)
}

// computeYields fills the dense yield cache for the given edges in
// closure mode: W · (|cluster(U)|·|cluster(V)| − 1), the expected
// number of *other* labels an answer to this edge would entail (every
// cluster-pair combination beyond the asked edge itself), weighted by
// the matching probability because Blue answers merge clusters and
// compound future inference. Between two singletons the yield is zero,
// so the ordering degrades exactly to the Eq. 1 pruning expectation
// until clusters form. Runs on the calling goroutine — cluster lookups
// path-compress the union-find, so they must not race the parallel
// Eq. 1 scoring workers.
func (e *Expectation) computeYields(g *graph.Graph, edges []int) {
	if e.closure == nil {
		return
	}
	if len(e.yield) != g.NumEdges() {
		e.yield = make([]float64, g.NumEdges())
	}
	for _, id := range edges {
		e.yield[id] = inferenceYield(g, e.closure, id)
	}
}

// inferenceYield is the expected-optimal labeling key of one edge.
func inferenceYield(g *graph.Graph, c *graph.Closure, id int) float64 {
	ed := g.Edge(id)
	pairs := float64(c.ClusterSize(ed.Pred, ed.U)) * float64(c.ClusterSize(ed.Pred, ed.V))
	return ed.W * (pairs - 1)
}

// sortEdges orders a run under the active comparator: plain Eq. 1
// ordering, or yield-first in closure mode.
func (e *Expectation) sortEdges(g *graph.Graph, edges []int) {
	if e.closure == nil {
		sortEdgesByScore(g, edges, e.score)
		return
	}
	sort.Slice(edges, func(i, j int) bool {
		return yieldLess(g, e.score, e.yield, edges[i], edges[j])
	})
}

// less is the active strict total order on two edge ids.
func (e *Expectation) less(g *graph.Graph, a, b int) bool {
	if e.closure == nil {
		return scoredLess(g, e.score, a, b)
	}
	return yieldLess(g, e.score, e.yield, a, b)
}

// rescoreDirty repairs the cached ordering after the given color
// transitions: every component currently containing an edge incident
// to a changed edge's endpoint is rescored; everything else keeps its
// cached score (a pruning expectation only depends on state inside
// its component, and every fragment of a split component still holds
// an edge adjacent to one of the transition endpoints).
func (e *Expectation) rescoreDirty(g *graph.Graph, events []graph.ColorEvent) {
	compOf, nComp := g.ComponentIndex()
	if cap(e.dirtyComp) < nComp {
		e.dirtyComp = make([]bool, nComp)
	} else {
		e.dirtyComp = e.dirtyComp[:nComp]
		for i := range e.dirtyComp {
			e.dirtyComp[i] = false
		}
	}
	for _, ev := range events {
		ed := g.Edge(ev.Edge)
		for _, v := range [2]int{ed.U, ed.V} {
			for _, pred := range g.TablePreds(g.TableOf(v)) {
				for _, f := range g.EdgesAt(v, pred) {
					if ci := compOf[f]; ci >= 0 {
						e.dirtyComp[ci] = true
					}
				}
			}
		}
	}

	// Split the surviving ordering into clean (scores unchanged, still
	// sorted among themselves) and dirty (rescore + re-sort) runs. The
	// closure's entailments and cluster sizes for an edge can only
	// change through a colored edge of the same predicate connected to
	// it by Blue paths — all inside the event edge's component — so
	// clean entries also keep their cached yield and non-entailed
	// status; newly entailed edges are always in a dirty component and
	// are dropped here.
	clean, dirty := e.cleanBuf[:0], e.dirtyBuf[:0]
	for _, id := range e.order {
		if g.Edge(id).Color != graph.Unknown || !g.IsValid(id) {
			continue
		}
		if ci := compOf[id]; ci >= 0 && e.dirtyComp[ci] {
			if e.closure != nil {
				if _, _, ok := e.closure.Entails(id); ok {
					continue
				}
			}
			dirty = append(dirty, id)
		} else {
			clean = append(clean, id)
		}
	}
	e.scoreEdges(g, dirty)
	e.computeYields(g, dirty)
	e.sortEdges(g, dirty)

	// Merge the two sorted runs. The comparator is a strict total
	// order (ties fall through to the edge id), so the merge equals
	// the full sort of the naive path.
	merged := e.mergeBuf[:0]
	i, j := 0, 0
	for i < len(clean) && j < len(dirty) {
		if e.less(g, clean[i], dirty[j]) {
			merged = append(merged, clean[i])
			i++
		} else {
			merged = append(merged, dirty[j])
			j++
		}
	}
	merged = append(merged, clean[i:]...)
	merged = append(merged, dirty[j:]...)
	e.cleanBuf, e.dirtyBuf = clean, dirty
	e.mergeBuf, e.order = e.order, merged
}

// scoreEdges fills e.score for the given edges, fanning out over a
// worker pool when the batch is large. Each worker snapshots the
// graph's validity state into a private CutEvaluator, so the workers
// never contend; scores land in disjoint slots of the dense slice, and
// each score is a pure function of (frozen) graph state, making the
// result independent of scheduling.
func (e *Expectation) scoreEdges(g *graph.Graph, edges []int) {
	mScoredEdges.Observe(float64(len(edges)))
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(edges) {
		workers = len(edges)
	}
	if !g.TreeShaped() || workers <= 1 || len(edges) < parallelScoreThreshold {
		for _, id := range edges {
			e.score[id] = PruningExpectation(g, id)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(edges) {
			break
		}
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(part []int) {
			defer wg.Done()
			ev := g.NewCutEvaluator()
			for _, id := range part {
				e.score[id] = PruningExpectationOn(ev, id)
			}
		}(edges[lo:hi])
	}
	wg.Wait()
}

// scoredLess is the expectation ordering: score descending, then
// weight ascending (cheaper to refute), then id — a strict total
// order, which both the sort and the incremental merge rely on.
func scoredLess(g *graph.Graph, score []float64, a, b int) bool {
	if score[a] != score[b] {
		return score[a] > score[b]
	}
	if wa, wb := g.Edge(a).W, g.Edge(b).W; wa != wb {
		return wa < wb
	}
	return a < b
}

func sortEdgesByScore(g *graph.Graph, edges []int, score []float64) {
	sort.Slice(edges, func(i, j int) bool {
		return scoredLess(g, score, edges[i], edges[j])
	})
}

// yieldLess is the expected-optimal labeling order used in closure
// mode: expected inference yield descending (ask the likely-Blue pair
// whose answer entails the most other labels first), with the plain
// expectation order breaking ties — still a strict total order.
func yieldLess(g *graph.Graph, score, yield []float64, a, b int) bool {
	if yield[a] != yield[b] {
		return yield[a] > yield[b]
	}
	return scoredLess(g, score, a, b)
}

// cutLosser abstracts where a hypothetical cut is evaluated: the graph
// itself (single-threaded) or a private CutEvaluator (worker pools).
type cutLosser interface {
	CutLoss(v, pred int) (loss, bundle int)
}

// PruningExpectation computes Eq. 1 for edge id: the expected number
// of tasks saved by asking it, from both endpoint bundles. A bundle
// containing a blue edge can never fully disconnect, so its term is
// zero.
func PruningExpectation(g *graph.Graph, id int) float64 {
	e := g.Edge(id)
	return bundleTerm(g, g, e.U, e.Pred) + bundleTerm(g, g, e.V, e.Pred)
}

// PruningExpectationOn is PruningExpectation with the cut losses
// evaluated on a private CutEvaluator, safe to call from concurrent
// workers as long as the graph itself is not mutated meanwhile.
func PruningExpectationOn(ev *graph.CutEvaluator, id int) float64 {
	g := ev.Graph()
	e := g.Edge(id)
	return bundleTerm(g, ev, e.U, e.Pred) + bundleTerm(g, ev, e.V, e.Pred)
}

func bundleTerm(g *graph.Graph, cl cutLosser, v, pred int) float64 {
	prod := 1.0
	x := 0
	for _, eid := range g.EdgesAt(v, pred) {
		switch ed := g.Edge(eid); ed.Color {
		case graph.Blue:
			return 0 // bundle cannot be fully cut
		case graph.Unknown:
			prod *= 1 - ed.W
			x++
		}
	}
	if x == 0 {
		return 0
	}
	loss, _ := cl.CutLoss(v, pred)
	return prod / float64(x) * float64(loss)
}
