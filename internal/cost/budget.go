package cost

import (
	"sort"

	"cdb/internal/graph"
)

// Budget implements budget-aware task selection (§5.1.3): maximize the
// number of answers found with at most B tasks. Each round it picks
// the candidate with the highest answer expectation — the product of
// its unresolved edge probabilities (blue edges count 1) — and asks
// that candidate's unknown edges, heaviest first, until the budget is
// exhausted.
type Budget struct {
	B int
	// CandidateCap bounds candidate enumeration per round; 0 means the
	// package default (100000).
	CandidateCap int

	// closure, when set via SetClosure, excludes entailed edges from
	// the budget: an edge whose label transitivity already determines
	// is treated as resolved, so no budgeted task is spent on it.
	closure *graph.Closure

	spent int
}

// NewBudget builds a budget strategy for B tasks.
func NewBudget(b int) *Budget { return &Budget{B: b} }

// Name implements Strategy.
func (b *Budget) Name() string { return "CDB-Budget" }

// SetClosure installs (or removes) the transitive-inference overlay.
func (b *Budget) SetClosure(c *graph.Closure) { b.closure = c }

// Spent reports how many tasks the strategy has issued so far.
func (b *Budget) Spent() int { return b.spent }

// unresolved reports whether an edge still needs crowd work: uncolored
// and not entailed by the overlay.
func (b *Budget) unresolved(g *graph.Graph, e int) bool {
	if g.Edge(e).Color != graph.Unknown {
		return false
	}
	if b.closure != nil {
		if _, _, ok := b.closure.Entails(e); ok {
			return false
		}
	}
	return true
}

// NextRound implements Strategy.
func (b *Budget) NextRound(g *graph.Graph) []int {
	if b.spent >= b.B {
		return nil
	}
	if b.closure != nil {
		b.closure.Update()
	}
	cap := b.CandidateCap
	if cap <= 0 {
		cap = 100000
	}
	cands := g.Candidates(cap)
	var pick *graph.Embedding
	for i := range cands {
		for _, e := range cands[i].Edges {
			if b.unresolved(g, e) {
				pick = &cands[i]
				break
			}
		}
		if pick != nil {
			break
		}
	}
	if pick == nil {
		return nil // everything resolvable is resolved or entailed
	}
	var ask []int
	for _, e := range pick.Edges {
		if b.unresolved(g, e) {
			ask = append(ask, e)
		}
	}
	// Heaviest first (§5.1.3's stated order).
	sort.Slice(ask, func(i, j int) bool {
		wi, wj := g.Edge(ask[i]).W, g.Edge(ask[j]).W
		if wi != wj {
			return wi > wj
		}
		return ask[i] < ask[j]
	})
	if remain := b.B - b.spent; len(ask) > remain {
		ask = ask[:remain]
	}
	b.spent += len(ask)
	return ask
}

// Flush implements Strategy: one more best-candidate batch within the
// remaining budget (repeating without fresh colors would re-pick the
// same candidate, so a single batch is all a final round can use).
func (b *Budget) Flush(g *graph.Graph) []int { return b.NextRound(g) }
