package cost

import (
	"math"
	"testing"

	"cdb/internal/graph"
	"cdb/internal/stats"
)

// resolves checks the Lemma-1 sufficiency condition: asking exactly
// the edges in ask determines every answer. Every all-blue embedding
// must have all its edges asked (blue cannot be deduced), and every
// other embedding must contain at least one asked red edge (the only
// way to refute it).
func resolves(g *graph.Graph, color func(int) graph.Color, ask map[int]bool) bool {
	ok := true
	g.EnumerateEmbeddings(nil, func(graph.Edge) bool { return true }, func(_, edges []int) bool {
		blue := true
		for _, e := range edges {
			if color(e) != graph.Blue {
				blue = false
				break
			}
		}
		if blue {
			for _, e := range edges {
				if !ask[e] {
					ok = false
					return false
				}
			}
			return true
		}
		refuted := false
		for _, e := range edges {
			if color(e) == graph.Red && ask[e] {
				refuted = true
				break
			}
		}
		if !refuted {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// bruteMinimal finds the size of the smallest sufficient ask set by
// subset enumeration. Only usable on tiny graphs.
func bruteMinimal(g *graph.Graph, color func(int) graph.Color) int {
	n := g.NumEdges()
	best := n + 1
	for mask := 0; mask < 1<<n; mask++ {
		if popcount(mask) >= best {
			continue
		}
		ask := map[int]bool{}
		for e := 0; e < n; e++ {
			if mask&(1<<e) != 0 {
				ask[e] = true
			}
		}
		if resolves(g, color, ask) {
			best = popcount(mask)
		}
	}
	return best
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func toSet(ids []int) map[int]bool {
	m := map[int]bool{}
	for _, e := range ids {
		m[e] = true
	}
	return m
}

// randomChainGraph builds a random 3-table chain instance with random
// colors, small enough for brute-force comparison.
func randomChainGraph(r *stats.RNG) (*graph.Graph, []graph.Color) {
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	counts := []int{1 + r.Intn(2), 1 + r.Intn(3), 1 + r.Intn(2)}
	g := graph.MustNewGraph(s, counts)
	for a := 0; a < counts[0]; a++ {
		for b := 0; b < counts[1]; b++ {
			if r.Bool(0.8) {
				g.AddEdge(0, a, b, 0.5)
			}
		}
	}
	for b := 0; b < counts[1]; b++ {
		for c := 0; c < counts[2]; c++ {
			if r.Bool(0.8) {
				g.AddEdge(1, b, c, 0.5)
			}
		}
	}
	colors := make([]graph.Color, g.NumEdges())
	for e := range colors {
		if r.Bool(0.5) {
			colors[e] = graph.Blue
		} else {
			colors[e] = graph.Red
		}
	}
	return g, colors
}

func TestKnownColorSelectSufficientAndOptimalOnChains(t *testing.T) {
	r := stats.NewRNG(31)
	for trial := 0; trial < 150; trial++ {
		g, colors := randomChainGraph(r)
		if g.NumEdges() == 0 || g.NumEdges() > 12 {
			continue
		}
		color := func(e int) graph.Color { return colors[e] }
		sel := KnownColorSelect(g, color)
		if !resolves(g, color, toSet(sel)) {
			t.Fatalf("trial %d: selection %v does not resolve the graph", trial, sel)
		}
		if want := bruteMinimal(g, color); len(sel) != want {
			t.Fatalf("trial %d: selected %d edges, optimum is %d (sel=%v)", trial, len(sel), want, sel)
		}
	}
}

func TestKnownColorSelectTreeSufficient(t *testing.T) {
	// Trees: min-cut over the linearized chain remains sufficient
	// (optimality is only guaranteed for chains; we assert sufficiency).
	r := stats.NewRNG(77)
	s := &graph.Structure{
		Tables: []string{"A", "B", "C", "D"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 1, B: 3}},
	}
	for trial := 0; trial < 100; trial++ {
		counts := []int{1 + r.Intn(2), 1 + r.Intn(2), 1 + r.Intn(2), 1 + r.Intn(2)}
		g := graph.MustNewGraph(s, counts)
		for p, pd := range s.Preds {
			for a := 0; a < counts[pd.A]; a++ {
				for b := 0; b < counts[pd.B]; b++ {
					if r.Bool(0.8) {
						g.AddEdge(p, a, b, 0.5)
					}
				}
			}
		}
		colors := make([]graph.Color, g.NumEdges())
		for e := range colors {
			if r.Bool(0.5) {
				colors[e] = graph.Blue
			} else {
				colors[e] = graph.Red
			}
		}
		color := func(e int) graph.Color { return colors[e] }
		sel := KnownColorSelect(g, color)
		if !resolves(g, color, toSet(sel)) {
			t.Fatalf("trial %d: tree selection %v insufficient", trial, sel)
		}
	}
}

func TestKnownColorSelectStar(t *testing.T) {
	// Star: center P with three leaves; p0 covered (blue everywhere),
	// p1 starved on one predicate.
	s := &graph.Structure{
		Tables: []string{"P", "R", "C", "S"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}},
	}
	g := graph.MustNewGraph(s, []int{2, 2, 2, 1})
	colors := map[int]graph.Color{}
	add := func(p, a, b int, c graph.Color) int {
		id := g.AddEdge(p, a, b, 0.5)
		colors[id] = c
		return id
	}
	// p0: blue to r0, blue to c0, blue to s0 -> covered; plus a red to r1.
	e0 := add(0, 0, 0, graph.Blue)
	eRed := add(0, 0, 1, graph.Red)
	e1 := add(1, 0, 0, graph.Blue)
	e2 := add(2, 0, 0, graph.Blue)
	// p1: red to r0 and r1 (starved, 2 reds); blue to c1; blue to s0.
	r0 := add(0, 1, 0, graph.Red)
	r1 := add(0, 1, 1, graph.Red)
	add(1, 1, 1, graph.Blue)
	add(2, 1, 0, graph.Blue)

	color := func(e int) graph.Color { return colors[e] }
	sel := toSet(KnownColorSelect(g, color))
	// Covered p0: all four of its edges asked.
	for _, e := range []int{e0, eRed, e1, e2} {
		if !sel[e] {
			t.Fatalf("covered center tuple edge %d not selected", e)
		}
	}
	// Starved p1: the two red R edges asked, its blue edges pruned.
	if !sel[r0] || !sel[r1] {
		t.Fatal("starved tuple's red edges must be asked")
	}
	if len(sel) != 6 {
		t.Fatalf("selected %d edges, want 6", len(sel))
	}
	if !resolves(g, color, sel) {
		t.Fatal("star selection insufficient")
	}
}

func TestKnownColorSelectAllRed(t *testing.T) {
	// Single chain a-b-c with both edges red: asking one suffices.
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, []int{1, 1, 1})
	g.AddEdge(0, 0, 0, 0.5)
	g.AddEdge(1, 0, 0, 0.5)
	sel := KnownColorSelect(g, func(int) graph.Color { return graph.Red })
	if len(sel) != 1 {
		t.Fatalf("selected %v, want exactly one red edge", sel)
	}
}

func TestKnownColorSelectAllBlue(t *testing.T) {
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, []int{1, 1, 1})
	g.AddEdge(0, 0, 0, 0.5)
	g.AddEdge(1, 0, 0, 0.5)
	sel := KnownColorSelect(g, func(int) graph.Color { return graph.Blue })
	if len(sel) != 2 {
		t.Fatalf("selected %v, want both blue edges", sel)
	}
}

func TestPruningExpectationPaperValue(t *testing.T) {
	// Reproduces E(p1,r1) = 1.27 from §5.1.2.
	s := &graph.Structure{
		Tables: []string{"University", "Researcher", "Paper", "Citation"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}},
	}
	g := graph.MustNewGraph(s, []int{3, 3, 1, 1})
	g.AddEdge(0, 0, 0, 0.5)
	g.AddEdge(0, 0, 1, 0.5)
	g.AddEdge(0, 1, 0, 0.5)
	g.AddEdge(0, 1, 1, 0.5)
	g.AddEdge(0, 2, 2, 0.5)
	target := g.AddEdge(1, 0, 0, 0.42) // r1-p1
	g.AddEdge(1, 1, 0, 0.41)           // r2-p1
	g.AddEdge(1, 2, 0, 0.83)           // r3-p1
	g.AddEdge(2, 0, 0, 0.5)            // p1-c1

	got := PruningExpectation(g, target)
	want := (1-0.42)*2 + (1-0.42)*(1-0.41)*(1-0.83)*6/3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("E(r1,p1) = %v, want %v", got, want)
	}
	if math.Abs(want-1.27) > 0.01 {
		t.Fatalf("paper value drifted: %v", want)
	}
}

func TestPruningExpectationBlueBundleIsZeroTerm(t *testing.T) {
	s := &graph.Structure{
		Tables: []string{"A", "B"},
		Preds:  []graph.QPred{{A: 0, B: 1}},
	}
	g := graph.MustNewGraph(s, []int{1, 2})
	e0 := g.AddEdge(0, 0, 0, 0.3)
	e1 := g.AddEdge(0, 0, 1, 0.3)
	g.SetColor(e1, graph.Blue)
	// a0's bundle to B contains a blue edge: the a0-side term is zero;
	// b0's bundle is just e0 (uncolored) but cutting it invalidates
	// nothing else.
	if got := PruningExpectation(g, e0); got != 0 {
		t.Fatalf("expectation = %v, want 0", got)
	}
}

func TestExpectationOrderDeterministic(t *testing.T) {
	build := func() *graph.Graph {
		s := &graph.Structure{
			Tables: []string{"A", "B", "C"},
			Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
		}
		g := graph.MustNewGraph(s, []int{2, 2, 2})
		w := []float64{0.9, 0.3, 0.5, 0.7}
		k := 0
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				g.AddEdge(0, a, b, w[k])
				k++
			}
		}
		k = 0
		for b := 0; b < 2; b++ {
			for c := 0; c < 2; c++ {
				g.AddEdge(1, b, c, w[k])
				k++
			}
		}
		return g
	}
	e := &Expectation{}
	o1 := e.Order(build())
	o2 := e.Order(build())
	if len(o1) != len(o2) || len(o1) == 0 {
		t.Fatalf("orders differ in length: %v vs %v", o1, o2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("non-deterministic order: %v vs %v", o1, o2)
		}
	}
}

func TestKnownColorSelectCyclicStructure(t *testing.T) {
	// Triangle query structure A-B, B-C, C-A: §5.1.1 breaks the cycle
	// by duplicating a table; the selection must stay sufficient.
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 0}},
	}
	r := stats.NewRNG(91)
	for trial := 0; trial < 40; trial++ {
		g := graph.MustNewGraph(s, []int{2, 2, 2})
		for p, pd := range s.Preds {
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					_ = pd
					if r.Bool(0.8) {
						g.AddEdge(p, a, b, 0.5)
					}
				}
			}
		}
		colors := make([]graph.Color, g.NumEdges())
		for e := range colors {
			if r.Bool(0.5) {
				colors[e] = graph.Blue
			} else {
				colors[e] = graph.Red
			}
		}
		color := func(e int) graph.Color { return colors[e] }
		sel := KnownColorSelect(g, color) // must not panic
		if !resolves(g, color, toSet(sel)) {
			t.Fatalf("trial %d: cyclic selection %v insufficient", trial, sel)
		}
	}
}

func TestMinCutSamplingCyclicQuery(t *testing.T) {
	// The sampling strategy exercises KnownColorSelect on every sample;
	// a cyclic structure must run end to end.
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 0}},
	}
	g := graph.MustNewGraph(s, []int{2, 2, 2})
	r := stats.NewRNG(93)
	truth := map[int]bool{}
	for p := range s.Preds {
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				id := g.AddEdge(p, a, b, 0.3+0.5*r.Float64())
				truth[id] = r.Bool(0.5)
			}
		}
	}
	strat := NewMinCutSampling(10, stats.NewRNG(7))
	rounds := 0
	for {
		batch := strat.NextRound(g)
		if len(batch) == 0 {
			break
		}
		rounds++
		if rounds > 200 {
			t.Fatal("no termination")
		}
		for _, e := range batch {
			if truth[e] {
				g.SetColor(e, graph.Blue)
			} else {
				g.SetColor(e, graph.Red)
			}
		}
	}
	// All true answers (cyclic embeddings with every edge truth-blue)
	// must be confirmed blue.
	ok := true
	g.EnumerateEmbeddings(nil, func(e graph.Edge) bool { return truth[e.ID] }, func(_, edges []int) bool {
		for _, e := range edges {
			if g.Edge(e).Color != graph.Blue {
				ok = false
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("cyclic execution missed answers")
	}
}
