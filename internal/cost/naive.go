package cost

import (
	"cdb/internal/graph"
	"cdb/internal/latency"
)

// NaiveExpectation is the full-rescan implementation of the
// expectation strategy (Eq. 1): every round it recomputes the pruning
// expectation of every valid uncolored edge and re-sorts from scratch.
// It is retained as the equivalence reference for the incremental
// engine — the property tests run both side by side and require
// bit-identical orderings and batches — and as the baseline for the
// round-scoring benchmarks. Production code should use Expectation.
type NaiveExpectation struct {
	// Serial disables the latency scheduler (one task per round).
	Serial bool
}

// Name implements Strategy.
func (e *NaiveExpectation) Name() string { return "CDB-naive" }

// Order ranks valid uncolored edges by pruning expectation.
func (e *NaiveExpectation) Order(g *graph.Graph) []int {
	order, _ := NaiveOrderScored(g)
	return order
}

// OrderScored returns the full-rescan ordering and dense scores.
func (e *NaiveExpectation) OrderScored(g *graph.Graph) ([]int, []float64) {
	return NaiveOrderScored(g)
}

// NextRound implements Strategy.
func (e *NaiveExpectation) NextRound(g *graph.Graph) []int {
	order, score := NaiveOrderScored(g)
	if len(order) == 0 {
		return nil
	}
	if e.Serial {
		return latency.SerialBatch(g, order)
	}
	return latency.ParallelBatchScored(g, order, score)
}

// Flush implements Strategy: everything valid and uncolored.
func (e *NaiveExpectation) Flush(g *graph.Graph) []int { return g.ValidUncolored() }

// NaiveOrderScored computes the expectation ordering by rescoring and
// re-sorting every valid uncolored edge — O(E) CutLoss evaluations and
// a full sort per call. The returned score slice is dense, indexed by
// edge id.
func NaiveOrderScored(g *graph.Graph) ([]int, []float64) {
	edges := g.ValidUncolored()
	score := make([]float64, g.NumEdges())
	for _, id := range edges {
		score[id] = PruningExpectation(g, id)
	}
	sortEdgesByScore(g, edges, score)
	return edges, score
}
