package cost

import (
	"sort"

	"cdb/internal/graph"
	"cdb/internal/latency"
)

// NaiveExpectation is the full-rescan implementation of the
// expectation strategy (Eq. 1): every round it recomputes the pruning
// expectation of every valid uncolored edge and re-sorts from scratch.
// It is retained as the equivalence reference for the incremental
// engine — the property tests run both side by side and require
// bit-identical orderings and batches — and as the baseline for the
// round-scoring benchmarks. Production code should use Expectation.
type NaiveExpectation struct {
	// Serial disables the latency scheduler (one task per round).
	Serial bool

	// closure mirrors Expectation's transitive-inference mode with a
	// from-scratch filter and yield ranking per call.
	closure *graph.Closure
}

// Name implements Strategy.
func (e *NaiveExpectation) Name() string { return "CDB-naive" }

// SetClosure installs (or removes) the transitive-inference overlay,
// mirroring Expectation.SetClosure.
func (e *NaiveExpectation) SetClosure(c *graph.Closure) { e.closure = c }

// Order ranks valid uncolored edges by pruning expectation.
func (e *NaiveExpectation) Order(g *graph.Graph) []int {
	order, _ := e.OrderScored(g)
	return order
}

// OrderScored returns the full-rescan ordering and dense scores.
func (e *NaiveExpectation) OrderScored(g *graph.Graph) ([]int, []float64) {
	return NaiveOrderScoredClosure(g, e.closure)
}

// NextRound implements Strategy.
func (e *NaiveExpectation) NextRound(g *graph.Graph) []int {
	order, score := e.OrderScored(g)
	if len(order) == 0 {
		return nil
	}
	if e.Serial {
		return latency.SerialBatch(g, order)
	}
	return TransBatch(g, e.closure, latency.ParallelBatchScored(g, order, score))
}

// Flush implements Strategy: everything valid, uncolored and not
// entailed.
func (e *NaiveExpectation) Flush(g *graph.Graph) []int {
	return closureFilter(g.ValidUncolored(), e.closure)
}

// NaiveOrderScored computes the expectation ordering by rescoring and
// re-sorting every valid uncolored edge — O(E) CutLoss evaluations and
// a full sort per call. The returned score slice is dense, indexed by
// edge id.
func NaiveOrderScored(g *graph.Graph) ([]int, []float64) {
	return NaiveOrderScoredClosure(g, nil)
}

// NaiveOrderScoredClosure is NaiveOrderScored under transitive
// inference: entailed edges are dropped and the ordering is yield-
// first, all recomputed from scratch per call. It is the equivalence
// reference for Expectation's incremental closure mode.
func NaiveOrderScoredClosure(g *graph.Graph, c *graph.Closure) ([]int, []float64) {
	edges := closureFilter(g.ValidUncolored(), c)
	score := make([]float64, g.NumEdges())
	for _, id := range edges {
		score[id] = PruningExpectation(g, id)
	}
	if c == nil {
		sortEdgesByScore(g, edges, score)
		return edges, score
	}
	yield := make([]float64, g.NumEdges())
	for _, id := range edges {
		yield[id] = inferenceYield(g, c, id)
	}
	sort.Slice(edges, func(i, j int) bool {
		return yieldLess(g, score, yield, edges[i], edges[j])
	})
	return edges, score
}
