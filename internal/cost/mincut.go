package cost

import (
	"sort"

	"cdb/internal/graph"
	"cdb/internal/latency"
	"cdb/internal/stats"
)

// MinCutSampling is the paper's "MinCut" greedy (§5.1.2): draw S
// sample colorings from the edge probabilities, solve each sample
// optimally with KnownColorSelect, and rank edges by how many samples
// require them. Edges never required by a sample are appended last,
// lightest first, so execution still terminates when sampling was
// unlucky.
type MinCutSampling struct {
	Samples int
	RNG     *stats.RNG
	// Serial disables the latency scheduler (ablation only).
	Serial bool
}

// NewMinCutSampling builds the strategy with the given sample count
// (the paper's real experiments use 100) and RNG.
func NewMinCutSampling(samples int, rng *stats.RNG) *MinCutSampling {
	if samples <= 0 {
		samples = 100
	}
	return &MinCutSampling{Samples: samples, RNG: rng}
}

// Name implements Strategy.
func (m *MinCutSampling) Name() string { return "MinCut" }

// Order ranks the valid uncolored edges by sample-occurrence count.
func (m *MinCutSampling) Order(g *graph.Graph) []int {
	order, _ := m.OrderScored(g)
	return order
}

// OrderScored additionally returns the occurrence counts as dense
// scores (indexed by edge id) for the latency scheduler.
func (m *MinCutSampling) OrderScored(g *graph.Graph) ([]int, []float64) {
	g.Revalidate()
	count := make([]int, g.NumEdges())
	sampled := make([]graph.Color, g.NumEdges())
	colorOf := func(e int) graph.Color { return sampled[e] }
	for s := 0; s < m.Samples; s++ {
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(e)
			if ed.Color != graph.Unknown {
				sampled[e] = ed.Color
			} else if m.RNG.Bool(ed.W) {
				sampled[e] = graph.Blue
			} else {
				sampled[e] = graph.Red
			}
		}
		for _, e := range KnownColorSelect(g, colorOf) {
			if g.Edge(e).Color == graph.Unknown {
				count[e]++
			}
		}
	}
	edges := g.ValidUncolored()
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if count[a] != count[b] {
			return count[a] > count[b]
		}
		if wa, wb := g.Edge(a).W, g.Edge(b).W; wa != wb {
			return wa < wb
		}
		return a < b
	})
	score := make([]float64, g.NumEdges())
	for _, e := range edges {
		score[e] = float64(count[e])
	}
	return edges, score
}

// NextRound implements Strategy.
func (m *MinCutSampling) NextRound(g *graph.Graph) []int {
	order, score := m.OrderScored(g)
	if len(order) == 0 {
		return nil
	}
	if m.Serial {
		return latency.SerialBatch(g, order)
	}
	return latency.ParallelBatchScored(g, order, score)
}

// Flush implements Strategy.
func (m *MinCutSampling) Flush(g *graph.Graph) []int { return g.ValidUncolored() }
