package cost

import (
	"testing"

	"cdb/internal/graph"
	"cdb/internal/latency"
	"cdb/internal/stats"
)

// randomShapedGraph builds a random chain, star, or tree structure with
// random tuple counts and edge density — the space the incremental
// engine must agree with the naive rescan on.
func randomShapedGraph(r *stats.RNG) *graph.Graph {
	var s *graph.Structure
	switch r.Intn(3) {
	case 0: // chain A-B-C-D
		s = &graph.Structure{
			Tables: []string{"A", "B", "C", "D"},
			Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}},
		}
	case 1: // star centred on A
		s = &graph.Structure{
			Tables: []string{"A", "B", "C", "D"},
			Preds:  []graph.QPred{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}},
		}
	default: // tree: B is an internal node
		s = &graph.Structure{
			Tables: []string{"A", "B", "C", "D"},
			Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 1, B: 3}},
		}
	}
	counts := make([]int, len(s.Tables))
	for i := range counts {
		counts[i] = 1 + r.Intn(3)
	}
	g := graph.MustNewGraph(s, counts)
	for p, pd := range s.Preds {
		for a := 0; a < counts[pd.A]; a++ {
			for b := 0; b < counts[pd.B]; b++ {
				if r.Bool(0.7) {
					g.AddEdge(p, a, b, 0.1+0.8*r.Float64())
				}
			}
		}
	}
	return g
}

// checkRound asserts the incremental engine's ordering, scores, and
// scheduled batch are bit-identical to the naive full rescan's, then
// colors the batch randomly. Returns false when the run is complete.
func checkRound(t *testing.T, trial, round int, g *graph.Graph, e *Expectation, r *stats.RNG) bool {
	t.Helper()
	naiveOrder, naiveScore := NaiveOrderScored(g)
	order, score := e.OrderScored(g)
	if len(order) != len(naiveOrder) {
		t.Fatalf("trial %d round %d: incremental %d edges, naive %d",
			trial, round, len(order), len(naiveOrder))
	}
	for i := range order {
		if order[i] != naiveOrder[i] {
			t.Fatalf("trial %d round %d pos %d: incremental edge %d, naive %d\ninc=%v\nnaive=%v",
				trial, round, i, order[i], naiveOrder[i], order, naiveOrder)
		}
		if score[order[i]] != naiveScore[order[i]] {
			t.Fatalf("trial %d round %d edge %d: incremental score %v, naive %v",
				trial, round, order[i], score[order[i]], naiveScore[order[i]])
		}
	}
	batch := e.NextRound(g)
	naiveBatch := latency.ParallelBatchScored(g, naiveOrder, naiveScore)
	if len(naiveOrder) == 0 {
		naiveBatch = nil
	}
	if len(batch) != len(naiveBatch) {
		t.Fatalf("trial %d round %d: batch %v vs naive %v", trial, round, batch, naiveBatch)
	}
	for i := range batch {
		if batch[i] != naiveBatch[i] {
			t.Fatalf("trial %d round %d: batch %v vs naive %v", trial, round, batch, naiveBatch)
		}
	}
	if len(batch) == 0 {
		return false
	}
	for _, id := range batch {
		if r.Bool(g.Edge(id).W) {
			g.SetColor(id, graph.Blue)
		} else {
			g.SetColor(id, graph.Red)
		}
	}
	return true
}

// TestIncrementalMatchesNaive is the engine's core property test: over
// randomized chain/star/tree graphs and random coloring sequences, the
// cached delta-rescored ordering must equal the naive full rescan
// exactly — same edges, same order, same float bits — every round until
// the run completes.
func TestIncrementalMatchesNaive(t *testing.T) {
	r := stats.NewRNG(42)
	for trial := 0; trial < 220; trial++ {
		g := randomShapedGraph(r)
		e := &Expectation{}
		for round := 0; ; round++ {
			if round > 200 {
				t.Fatalf("trial %d: does not terminate", trial)
			}
			if !checkRound(t, trial, round, g, e, r) {
				break
			}
		}
	}
}

// TestIncrementalMatchesNaiveParallel forces the worker-pool scoring
// path (threshold 1, several workers) so the race detector sees the
// concurrent CutEvaluator use and equivalence still holds.
func TestIncrementalMatchesNaiveParallel(t *testing.T) {
	old := parallelScoreThreshold
	parallelScoreThreshold = 1
	defer func() { parallelScoreThreshold = old }()

	r := stats.NewRNG(1234)
	for trial := 0; trial < 60; trial++ {
		g := randomShapedGraph(r)
		e := &Expectation{Workers: 4}
		for round := 0; ; round++ {
			if round > 200 {
				t.Fatalf("trial %d: does not terminate", trial)
			}
			if !checkRound(t, trial, round, g, e, r) {
				break
			}
		}
	}
}

// TestIncrementalCacheResets exercises the cache-invalidation guards:
// graph swap, edge addition, weight change, and un-coloring must all
// force a full rescore rather than serving stale state.
func TestIncrementalCacheResets(t *testing.T) {
	r := stats.NewRNG(77)
	e := &Expectation{}

	g1 := randomShapedGraph(r)
	e.OrderScored(g1)

	// New graph identity.
	g2 := randomShapedGraph(r)
	order, score := e.OrderScored(g2)
	naiveOrder, naiveScore := NaiveOrderScored(g2)
	for i := range order {
		if order[i] != naiveOrder[i] || score[order[i]] != naiveScore[order[i]] {
			t.Fatal("stale cache served after graph swap")
		}
	}

	// Weight change on the same graph.
	if g2.NumEdges() > 0 {
		g2.SetWeight(0, 0.123)
		order, score = e.OrderScored(g2)
		naiveOrder, naiveScore = NaiveOrderScored(g2)
		for i := range order {
			if order[i] != naiveOrder[i] || score[order[i]] != naiveScore[order[i]] {
				t.Fatal("stale cache served after SetWeight")
			}
		}
	}

	// Un-coloring (Red -> Unknown) can grow the valid set again.
	if g2.NumEdges() > 1 {
		g2.SetColor(1, graph.Red)
		e.OrderScored(g2)
		g2.SetColor(1, graph.Unknown)
		order, score = e.OrderScored(g2)
		naiveOrder, naiveScore = NaiveOrderScored(g2)
		if len(order) != len(naiveOrder) {
			t.Fatal("stale cache served after un-coloring")
		}
		for i := range order {
			if order[i] != naiveOrder[i] || score[order[i]] != naiveScore[order[i]] {
				t.Fatal("stale cache served after un-coloring")
			}
		}
	}
}

// TestNaiveExpectationStrategy keeps the retained reference strategy
// usable end to end (it backs the equivalence benchmarks).
func TestNaiveExpectationStrategy(t *testing.T) {
	r := stats.NewRNG(5)
	g := buildRandomChain(r, []int{2, 3, 3, 2}, 0.8)
	o := newOracle(g, r, 0.5)
	tasks, _ := drive(t, g, &NaiveExpectation{}, o)
	if tasks == 0 {
		t.Fatal("naive strategy asked nothing")
	}
	if !answersMatch(g, o) {
		t.Fatal("naive strategy missed answers")
	}
}
