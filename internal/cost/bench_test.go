package cost

import (
	"testing"

	"cdb/internal/graph"
	"cdb/internal/obs"
	"cdb/internal/stats"
)

// benchGraph builds a chain-query graph of disjoint 2-tuple blocks:
// every block contributes 3 edges per predicate and forms its own
// connected component, the regime the incremental engine targets (a
// round's answers touch a few components out of thousands).
func benchGraph(blocks int, r *stats.RNG) *graph.Graph {
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	n := 2 * blocks
	g := graph.MustNewGraph(s, []int{n, n, n})
	for b := 0; b < blocks; b++ {
		for p := range s.Preds {
			g.AddEdge(p, 2*b, 2*b, 0.1+0.8*r.Float64())
			g.AddEdge(p, 2*b, 2*b+1, 0.1+0.8*r.Float64())
			g.AddEdge(p, 2*b+1, 2*b+1, 0.1+0.8*r.Float64())
		}
	}
	return g
}

// colorSome colors the first k edges of batch from their weights,
// simulating a round where answers arrived for a handful of tasks.
func colorSome(g *graph.Graph, batch []int, k int, r *stats.RNG) {
	if k > len(batch) {
		k = len(batch)
	}
	for _, id := range batch[:k] {
		if r.Bool(g.Edge(id).W) {
			g.SetColor(id, graph.Blue)
		} else {
			g.SetColor(id, graph.Red)
		}
	}
}

// benchNextRound measures steady-state NextRound cost: after a priming
// first round, each iteration colors a few edges of the pending batch
// and reorders. The graph is rebuilt (outside the timer) when a run
// exhausts it.
func benchNextRound(b *testing.B, blocks int, strat Strategy, prime func()) {
	r := stats.NewRNG(9)
	g := benchGraph(blocks, r)
	prime()
	batch := strat.NextRound(g) // first round: full rescore for both paths
	b.ReportMetric(float64(g.NumEdges()), "edges")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(batch) == 0 {
			b.StopTimer()
			g = benchGraph(blocks, r)
			prime()
			batch = strat.NextRound(g)
			b.StartTimer()
		}
		colorSome(g, batch, 16, r)
		batch = strat.NextRound(g)
	}
}

func BenchmarkNextRoundIncremental2k(b *testing.B) {
	e := &Expectation{}
	benchNextRound(b, 400, e, func() { *e = Expectation{} })
}

func BenchmarkNextRoundNaive2k(b *testing.B) {
	benchNextRound(b, 400, &NaiveExpectation{}, func() {})
}

func BenchmarkNextRoundIncremental10k(b *testing.B) {
	e := &Expectation{}
	benchNextRound(b, 1700, e, func() { *e = Expectation{} })
}

func BenchmarkNextRoundNaive10k(b *testing.B) {
	benchNextRound(b, 1700, &NaiveExpectation{}, func() {})
}

// BenchmarkObsOverhead quantifies the observability probes in the
// round-scoring hot path. "disabled" is the production default — nil
// tracer, so every probe is one branch and zero allocation — and runs
// the exact configuration of BenchmarkNextRoundIncremental2k; compare
// the two to bound the instrumentation regression (<2% is the
// contract). "traced" attaches a live collecting tracer, the cost a
// query pays when tracing is actually on.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		e := &Expectation{}
		benchNextRound(b, 400, e, func() { *e = Expectation{} })
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		r := stats.NewRNG(9)
		e := &Expectation{}
		g := benchGraph(400, r)
		e.SetTracer(obs.NewTracer(nil))
		batch := e.NextRound(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(batch) == 0 {
				b.StopTimer()
				g = benchGraph(400, r)
				*e = Expectation{}
				b.StartTimer()
			}
			// A fresh tracer per iteration, as the executor hands each
			// query its own: span storage stays bounded and the tracer
			// setup cost is charged to the traced path where it belongs.
			e.SetTracer(obs.NewTracer(nil))
			colorSome(g, batch, 16, r)
			batch = e.NextRound(g)
		}
	})
}

// BenchmarkOrderScoredFirstRound isolates the cold full-rescore cost
// shared by both paths (the incremental engine's overhead floor).
func BenchmarkOrderScoredFirstRound(b *testing.B) {
	r := stats.NewRNG(9)
	g := benchGraph(1700, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &Expectation{}
		e.orderScored(g)
	}
}
