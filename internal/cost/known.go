package cost

import (
	"sort"

	"cdb/internal/graph"
	"cdb/internal/maxflow"
)

// KnownColorSelect implements the optimal task selection of §5.1.1 for
// a fully known coloring: the returned edge ids are exactly the tasks
// that must be asked — edges on all-blue embeddings (they are answers
// and cannot be deduced) plus a minimum set of red edges whose
// refutation disconnects every other potential answer (Lemma 1,
// min-cut on the chain-linearized flow network; the star-join rule for
// star structures). color supplies the hypothetical color of every
// edge (sampled colorings keep real colors where known).
//
// The result is sorted and duplicate-free.
func KnownColorSelect(g *graph.Graph, color func(edgeID int) graph.Color) []int {
	need := map[int]bool{}

	// Edges on all-blue embeddings must be asked.
	keepBlue := func(e graph.Edge) bool { return color(e.ID) == graph.Blue }
	blueNode := map[[2]int]bool{} // (table, vertex) on some blue embedding
	bEdge := map[int]bool{}
	g.EnumerateEmbeddings(nil, keepBlue, func(assign, edges []int) bool {
		for tbl, v := range assign {
			blueNode[[2]int{tbl, v}] = true
		}
		for _, e := range edges {
			bEdge[e] = true
			need[e] = true
		}
		return true
	})

	if g.S.Kind() == graph.Star && len(g.S.Preds) >= 3 {
		starSelect(g, color, need)
	} else {
		chainCutSelect(g, color, blueNode, bEdge, need)
	}

	// Completion sweep: the chain linearization of trees and broken
	// cycles can leave candidates unrefuted (the paper's "invalid join
	// tuples" caveat) — enumerate the candidates not yet refuted by a
	// needed red edge and pin one red edge of each. Refuted candidates
	// are pruned from the walk by excluding their cut edges, so this
	// pass only visits the (few) leftovers.
	keepUnrefuted := func(e graph.Edge) bool {
		return !(color(e.ID) == graph.Red && need[e.ID])
	}
	for {
		added := false
		g.EnumerateEmbeddings(nil, keepUnrefuted, func(_, edges []int) bool {
			for _, e := range edges {
				if color(e) == graph.Red {
					need[e] = true
					added = true
					return false // restart: the new cut prunes others
				}
			}
			return true // all blue: already in need via bEdge
		})
		if !added {
			break
		}
	}

	out := make([]int, 0, len(need))
	for e := range need {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// starSelect applies the paper's star rule: per center tuple, if it
// has a blue edge toward every other table, all of its edges must be
// asked (every candidate through it is decided edge-by-edge);
// otherwise it suffices to ask the red edges of the bluest-starved
// table with the fewest red edges.
func starSelect(g *graph.Graph, color func(int) graph.Color, need map[int]bool) {
	// The center is the table with maximal degree.
	deg := make([]int, g.NumTables())
	for _, p := range g.S.Preds {
		deg[p.A]++
		deg[p.B]++
	}
	center := 0
	for t, d := range deg {
		if d > deg[center] {
			center = t
		}
	}
	for row := 0; row < g.TupleCount(center); row++ {
		v := g.VertexID(center, row)
		starved := -1 // predicate with zero blue edges and fewest reds
		starvedReds := 0
		covered := true
		for _, p := range g.S.PredsOf(center) {
			blue, red := 0, 0
			for _, e := range g.EdgesAt(v, p) {
				switch color(e) {
				case graph.Blue:
					blue++
				case graph.Red:
					red++
				}
			}
			if blue == 0 {
				covered = false
				if starved < 0 || red < starvedReds {
					starved, starvedReds = p, red
				}
			}
		}
		if covered {
			for _, e := range g.AllEdgesAt(v) {
				need[e] = true
			}
			continue
		}
		for _, e := range g.EdgesAt(v, starved) {
			if color(e) == graph.Red {
				need[e] = true
			}
		}
	}
}

// chainCutSelect builds the Lemma-1 flow network over the chain
// linearization of the query tree and adds the min-cut red edges to
// need. The network is undirected (each arc added in both directions):
// every non-blue chain segment between blue-path vertices (or the
// terminals) forms an s–s* path that a red cut edge must sever.
func chainCutSelect(g *graph.Graph, color func(int) graph.Color,
	blueNode map[[2]int]bool, bEdge map[int]bool, need map[int]bool) {

	// Cyclic join structures are first rewritten by duplicating the
	// far side of each non-tree predicate (§5.1.1); origin maps the
	// rewritten table indices back to the data tables. Acyclic
	// structures pass through with an identity mapping.
	sWalk, origin := g.S.BreakCycles()
	walk := sWalk.TreeToChain()
	if len(walk) < 2 {
		return
	}
	dataTable := func(pos int) int { return origin[walk[pos].Table] }
	// Node numbering: base and dup per (position, row); s and s* last.
	nodeID := map[[3]int]int{} // (pos, row, 0=base 1=dup)
	next := 0
	idOf := func(pos, row, kind int) int {
		key := [3]int{pos, row, kind}
		if id, ok := nodeID[key]; ok {
			return id
		}
		nodeID[key] = next
		next++
		return nodeID[key]
	}
	isBlue := func(pos, row int) bool {
		tbl := dataTable(pos)
		return blueNode[[2]int{tbl, g.VertexID(tbl, row)}]
	}
	base := func(pos, row int) int { return idOf(pos, row, 0) }
	out := func(pos, row int) int {
		if isBlue(pos, row) {
			return idOf(pos, row, 1)
		}
		return idOf(pos, row, 0)
	}
	// First pass to allocate all node ids deterministically.
	for pos := range walk {
		for row := 0; row < g.TupleCount(dataTable(pos)); row++ {
			base(pos, row)
			out(pos, row)
		}
	}
	s := next
	t := next + 1
	next += 2

	fg := maxflow.New(next)
	undirected := func(a, b int, cap int64, id int) {
		fg.AddEdge(a, b, cap, id)
		fg.AddEdge(b, a, cap, id)
	}

	last := len(walk) - 1
	for row := 0; row < g.TupleCount(dataTable(0)); row++ {
		undirected(s, base(0, row), maxflow.Inf, -1)
	}
	for row := 0; row < g.TupleCount(dataTable(last)); row++ {
		undirected(out(last, row), t, maxflow.Inf, -1)
	}
	// Shortcuts for blue-path vertices: a deviation that LEAVES the
	// blue chain at t starts at t's duplicate (right-edge side), so the
	// duplicate must be s-reachable; a non-blue prefix ARRIVING at t
	// ends at t's base (left-edge side), so the base must reach s*.
	// Terminal positions omit the side that would join the existing
	// terminal link into an uncuttable s–s* path.
	for pos := range walk {
		for row := 0; row < g.TupleCount(dataTable(pos)); row++ {
			if !isBlue(pos, row) {
				continue
			}
			if pos < last {
				undirected(s, out(pos, row), maxflow.Inf, -1)
			}
			if pos > 0 {
				undirected(base(pos, row), t, maxflow.Inf, -1)
			}
		}
	}
	// Data edges between consecutive positions. Orientation follows
	// the REWRITTEN structure (sWalk) whose predicate endpoints match
	// the walk's table indices; rows come from the data graph, whose
	// A-side endpoint is always Edge.U.
	for pos := 1; pos < len(walk); pos++ {
		pred := walk[pos].Pred
		pdW := sWalk.Preds[pred]
		prevTbl := dataTable(pos - 1)
		for row := 0; row < g.TupleCount(prevTbl); row++ {
			v := g.VertexID(prevTbl, row)
			for _, eid := range g.EdgesAt(v, pred) {
				if bEdge[eid] {
					continue // removed: replaced by the s/t shortcuts
				}
				e := g.Edge(eid)
				var rPrev, rCur int
				if walk[pos-1].Table == pdW.A {
					rPrev, rCur = g.RowOf(e.U), g.RowOf(e.V)
				} else {
					rPrev, rCur = g.RowOf(e.V), g.RowOf(e.U)
				}
				var cap int64
				switch color(eid) {
				case graph.Red:
					cap = 1
				default: // blue (non-B) edges cannot be cut
					cap = maxflow.Inf
				}
				undirected(out(pos-1, rPrev), base(pos, rCur), cap, eid)
			}
		}
	}
	_, cut := fg.MinCut(s, t)
	for _, eid := range cut {
		need[eid] = true
	}
}
