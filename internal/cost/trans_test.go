package cost

import (
	"testing"

	"cdb/internal/graph"
	"cdb/internal/latency"
	"cdb/internal/stats"
)

// checkTransRound mirrors checkRound for closure mode: the incremental
// strategy (one overlay, updated round by round) must order and score
// bit-identically to the naive path driven by a *fresh* overlay
// rebuilt from the journal each round — which simultaneously checks
// the incremental cache and the closure's replay determinism. The
// round's verdicts are colored AND the closure's entailed labels are
// applied, mimicking exec's inference step.
func checkTransRound(t *testing.T, trial, round int, g *graph.Graph, e *Expectation, r *stats.RNG) bool {
	t.Helper()
	ncl := graph.NewClosure(g)
	naiveOrder, naiveScore := NaiveOrderScoredClosure(g, ncl)
	order, score := e.OrderScored(g)
	if len(order) != len(naiveOrder) {
		t.Fatalf("trial %d round %d: incremental %d edges, naive %d\ninc=%v\nnaive=%v",
			trial, round, len(order), len(naiveOrder), order, naiveOrder)
	}
	for i := range order {
		if order[i] != naiveOrder[i] {
			t.Fatalf("trial %d round %d pos %d: incremental edge %d, naive %d\ninc=%v\nnaive=%v",
				trial, round, i, order[i], naiveOrder[i], order, naiveOrder)
		}
		if score[order[i]] != naiveScore[order[i]] {
			t.Fatalf("trial %d round %d edge %d: incremental score %v, naive %v",
				trial, round, order[i], score[order[i]], naiveScore[order[i]])
		}
	}
	batch := e.NextRound(g)
	naiveBatch := TransBatch(g, ncl, latency.ParallelBatchScored(g, naiveOrder, naiveScore))
	if len(naiveOrder) == 0 {
		naiveBatch = nil
	}
	if len(batch) != len(naiveBatch) {
		t.Fatalf("trial %d round %d: batch %v vs naive %v", trial, round, batch, naiveBatch)
	}
	for i := range batch {
		if batch[i] != naiveBatch[i] {
			t.Fatalf("trial %d round %d: batch %v vs naive %v", trial, round, batch, naiveBatch)
		}
	}
	if len(batch) == 0 {
		return false
	}
	for _, id := range batch {
		if r.Bool(g.Edge(id).W) {
			g.SetColor(id, graph.Blue)
		} else {
			g.SetColor(id, graph.Red)
		}
	}
	// Apply inference exactly like the executor: one pass over the
	// snapshot of valid uncolored edges.
	cl := e.closure
	cl.Update()
	for _, id := range g.ValidUncolored() {
		if col, _, ok := cl.Entails(id); ok {
			g.SetColor(id, col)
		}
	}
	return true
}

// TestTransIncrementalMatchesNaive extends the core equivalence
// property to transitive-inference mode: entailed-edge filtering and
// the yield-first ordering must come out bit-identical between the
// incremental cache and a naive full rescan with a freshly replayed
// closure, every round.
func TestTransIncrementalMatchesNaive(t *testing.T) {
	r := stats.NewRNG(99)
	for trial := 0; trial < 220; trial++ {
		g := randomShapedGraph(r)
		e := &Expectation{}
		e.SetClosure(graph.NewClosure(g))
		for round := 0; ; round++ {
			if round > 200 {
				t.Fatalf("trial %d: does not terminate", trial)
			}
			if !checkTransRound(t, trial, round, g, e, r) {
				break
			}
		}
		e.SetClosure(nil)
	}
}

// TestTransIncrementalMatchesNaiveParallel forces the worker-pool
// scoring path so the race detector checks that yield computation
// (which path-compresses the shared union-find) stays off the
// concurrent scoring workers.
func TestTransIncrementalMatchesNaiveParallel(t *testing.T) {
	old := parallelScoreThreshold
	parallelScoreThreshold = 1
	defer func() { parallelScoreThreshold = old }()

	r := stats.NewRNG(4321)
	for trial := 0; trial < 60; trial++ {
		g := randomShapedGraph(r)
		e := &Expectation{Workers: 4}
		e.SetClosure(graph.NewClosure(g))
		for round := 0; ; round++ {
			if round > 200 {
				t.Fatalf("trial %d: does not terminate", trial)
			}
			if !checkTransRound(t, trial, round, g, e, r) {
				break
			}
		}
	}
}

// TestFlushSkipsEntailed pins the satellite fix directly: neither
// Expectation.Flush, NaiveExpectation.Flush nor Budget.NextRound may
// return an edge whose label the overlay entails.
func TestFlushSkipsEntailed(t *testing.T) {
	s := &graph.Structure{Tables: []string{"L", "R"}, Preds: []graph.QPred{{A: 0, B: 1}}}
	g := graph.MustNewGraph(s, []int{2, 2})
	e00 := g.AddEdge(0, 0, 0, 0.9)
	e01 := g.AddEdge(0, 0, 1, 0.9)
	e10 := g.AddEdge(0, 1, 0, 0.9)
	e11 := g.AddEdge(0, 1, 1, 0.9)
	g.SetColor(e00, graph.Blue)
	g.SetColor(e01, graph.Blue)
	g.SetColor(e10, graph.Blue) // cluster {a0, a1, b0, b1} → e11 entailed Blue

	cl := graph.NewClosure(g)
	exp := &Expectation{}
	exp.SetClosure(cl)
	for _, id := range exp.Flush(g) {
		if id == e11 {
			t.Fatal("Expectation.Flush returned an entailed edge")
		}
	}
	nv := &NaiveExpectation{}
	nv.SetClosure(cl)
	for _, id := range nv.Flush(g) {
		if id == e11 {
			t.Fatal("NaiveExpectation.Flush returned an entailed edge")
		}
	}
	bd := NewBudget(10)
	bd.SetClosure(cl)
	for _, id := range bd.NextRound(g) {
		if id == e11 {
			t.Fatal("Budget.NextRound spent budget on an entailed edge")
		}
	}
}
