package cost

import (
	"testing"

	"cdb/internal/graph"
	"cdb/internal/stats"
)

// oracle colors edges on demand and remembers assignments.
type oracle struct {
	truth map[int]graph.Color
}

func newOracle(g *graph.Graph, r *stats.RNG, blueProb float64) *oracle {
	o := &oracle{truth: map[int]graph.Color{}}
	for e := 0; e < g.NumEdges(); e++ {
		if r.Bool(blueProb) {
			o.truth[e] = graph.Blue
		} else {
			o.truth[e] = graph.Red
		}
	}
	return o
}

// drive runs a strategy to completion against a perfect crowd,
// returning total tasks and rounds.
func drive(t *testing.T, g *graph.Graph, s Strategy, o *oracle) (tasks, rounds int) {
	t.Helper()
	for {
		batch := s.NextRound(g)
		if len(batch) == 0 {
			return
		}
		rounds++
		tasks += len(batch)
		if rounds > 1000 {
			t.Fatalf("%s: did not terminate", s.Name())
		}
		for _, e := range batch {
			g.SetColor(e, o.truth[e])
		}
	}
}

func buildRandomChain(r *stats.RNG, counts []int, density float64) *graph.Graph {
	s := &graph.Structure{
		Tables: []string{"A", "B", "C", "D"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}},
	}
	g := graph.MustNewGraph(s, counts)
	for p, pd := range s.Preds {
		for a := 0; a < counts[pd.A]; a++ {
			for b := 0; b < counts[pd.B]; b++ {
				if r.Bool(density) {
					g.AddEdge(p, a, b, 0.1+0.8*r.Float64())
				}
			}
		}
	}
	return g
}

// answersMatch verifies the strategy discovered every true answer: an
// embedding all of whose edges are truth-blue must be all marked blue
// in the executed graph.
func answersMatch(g *graph.Graph, o *oracle) bool {
	ok := true
	g.EnumerateEmbeddings(nil, func(e graph.Edge) bool { return o.truth[e.ID] == graph.Blue },
		func(_, edges []int) bool {
			for _, e := range edges {
				if g.Edge(e).Color != graph.Blue {
					ok = false
					return false
				}
			}
			return true
		})
	return ok
}

func TestExpectationFindsAllAnswers(t *testing.T) {
	r := stats.NewRNG(101)
	for trial := 0; trial < 25; trial++ {
		g := buildRandomChain(r, []int{3, 3, 3, 3}, 0.6)
		o := newOracle(g, r, 0.5)
		tasks, _ := drive(t, g, &Expectation{}, o)
		if !answersMatch(g, o) {
			t.Fatalf("trial %d: expectation strategy missed answers", trial)
		}
		if tasks > g.NumEdges() {
			t.Fatalf("trial %d: asked %d tasks for %d edges", trial, tasks, g.NumEdges())
		}
	}
}

func TestExpectationSavesTasks(t *testing.T) {
	// On a graph with a clear bottleneck, expectation-based selection
	// must ask fewer tasks than the total edge count.
	r := stats.NewRNG(202)
	var saved int
	for trial := 0; trial < 20; trial++ {
		g := buildRandomChain(r, []int{4, 4, 4, 4}, 0.5)
		o := newOracle(g, r, 0.3) // mostly red: heavy pruning available
		tasks, _ := drive(t, g, &Expectation{}, o)
		if tasks < g.NumEdges() {
			saved++
		}
	}
	if saved < 15 {
		t.Fatalf("expectation saved tasks in only %d/20 trials", saved)
	}
}

func TestMinCutSamplingFindsAllAnswers(t *testing.T) {
	r := stats.NewRNG(303)
	for trial := 0; trial < 10; trial++ {
		g := buildRandomChain(r, []int{3, 3, 3, 3}, 0.6)
		o := newOracle(g, r, 0.5)
		s := NewMinCutSampling(20, stats.NewRNG(uint64(trial)))
		drive(t, g, s, o)
		if !answersMatch(g, o) {
			t.Fatalf("trial %d: mincut sampling missed answers", trial)
		}
	}
}

func TestMinCutSamplingDefaultSamples(t *testing.T) {
	s := NewMinCutSampling(0, stats.NewRNG(1))
	if s.Samples != 100 {
		t.Fatalf("default samples = %d, want 100", s.Samples)
	}
	if s.Name() != "MinCut" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestBudgetRespectsLimit(t *testing.T) {
	r := stats.NewRNG(404)
	for _, budget := range []int{0, 1, 3, 7, 1000} {
		g := buildRandomChain(r, []int{3, 3, 3, 3}, 0.6)
		o := newOracle(g, r, 0.5)
		b := NewBudget(budget)
		tasks, _ := drive(t, g, b, o)
		if tasks > budget {
			t.Fatalf("budget %d: asked %d tasks", budget, tasks)
		}
		if b.Spent() != tasks {
			t.Fatalf("Spent() = %d, tasks = %d", b.Spent(), tasks)
		}
	}
}

func TestBudgetPrefersLikelyCandidates(t *testing.T) {
	// Two disjoint chains: one with weight 0.9 edges, one with 0.2.
	// With budget 2 the strategy must spend on the likely chain.
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, []int{2, 2, 2})
	hi1 := g.AddEdge(0, 0, 0, 0.9)
	hi2 := g.AddEdge(1, 0, 0, 0.9)
	g.AddEdge(0, 1, 1, 0.2)
	g.AddEdge(1, 1, 1, 0.2)
	b := NewBudget(2)
	batch := b.NextRound(g)
	if len(batch) != 2 {
		t.Fatalf("batch = %v", batch)
	}
	got := map[int]bool{batch[0]: true, batch[1]: true}
	if !got[hi1] || !got[hi2] {
		t.Fatalf("budget picked %v, want the high-probability chain %d,%d", batch, hi1, hi2)
	}
}

func TestBudgetFindsAnswersEfficiently(t *testing.T) {
	// All edges truth-blue on the likely chain; budget exactly covers it.
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, []int{2, 2, 2})
	e0 := g.AddEdge(0, 0, 0, 0.9)
	e1 := g.AddEdge(1, 0, 0, 0.9)
	g.AddEdge(0, 1, 1, 0.3)
	g.AddEdge(1, 1, 1, 0.3)
	o := &oracle{truth: map[int]graph.Color{e0: graph.Blue, e1: graph.Blue, 2: graph.Red, 3: graph.Red}}
	b := NewBudget(2)
	drive(t, g, b, o)
	if len(g.Answers()) != 1 {
		t.Fatalf("answers = %d, want 1 within budget 2", len(g.Answers()))
	}
}

func TestStrategyFlush(t *testing.T) {
	r := stats.NewRNG(505)
	g := buildRandomChain(r, []int{3, 3, 3, 3}, 0.7)
	e := &Expectation{}
	flush := e.Flush(g)
	if len(flush) != len(g.ValidUncolored()) {
		t.Fatalf("flush = %d edges, want all %d valid uncolored", len(flush), len(g.ValidUncolored()))
	}
	m := NewMinCutSampling(5, stats.NewRNG(1))
	if len(m.Flush(g)) != len(flush) {
		t.Fatal("mincut flush should also return all valid uncolored edges")
	}
}

func TestExpectationSerialMode(t *testing.T) {
	r := stats.NewRNG(606)
	g := buildRandomChain(r, []int{2, 2, 2, 2}, 0.8)
	s := &Expectation{Serial: true}
	batch := s.NextRound(g)
	if len(batch) != 1 {
		t.Fatalf("serial batch = %v", batch)
	}
}
