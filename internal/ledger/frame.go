package ledger

import (
	"encoding/binary"
	"hash/crc32"
)

// On-disk frame layout (pinned by ledger_wire_test.go):
//
//	offset  size  field
//	0       4     payload length, uint32 little-endian
//	4       4     CRC32 (IEEE) of the payload
//	8       n     payload = 1 record-type byte + JSON body
//
// The CRC covers the whole payload including the type byte, so a
// bit-flip in either is detected. A record is the unit of atomicity:
// replay applies whole valid frames and stops at the first frame that
// is short, fails its CRC, or carries an absurd length — the torn-tail
// truncation rule. Nothing in a frame is positional beyond the first
// header, so duplicate records from a crash between snapshot and WAL
// truncation replay idempotently.
const (
	frameOverhead = 8
	// maxFramePayload bounds a single record. Real records are a few
	// hundred bytes (verdicts) to a few hundred KB (answers of a large
	// query); anything larger in the length field is garbage from a
	// torn write, not data.
	maxFramePayload = 16 << 20
)

// Record-type bytes, the first byte of every frame payload.
const (
	frameHeader    byte = 'H' // file header: version, kind, engine seed
	frameStatement byte = 'S' // canonical statement that reached execution
	frameVerdict   byte = 'V' // one resolved task verdict
	frameAnswer    byte = 'A' // one completed query's full answer
)

// appendFrame appends one framed record to dst and returns the
// extended slice.
func appendFrame(dst []byte, typ byte, body []byte) []byte {
	payload := len(body) + 1
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload))
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(body)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())
	dst = append(dst, hdr[:]...)
	dst = append(dst, typ)
	dst = append(dst, body...)
	return dst
}

// scanFrames walks buf frame by frame, invoking fn for each valid one,
// and returns the byte offset just past the last valid frame — the
// truncation point for a torn tail. A short frame, CRC mismatch or
// implausible length ends the scan (they are indistinguishable from a
// write cut mid-frame); an error from fn aborts it and is returned
// with the offset of the frame that caused it.
func scanFrames(buf []byte, fn func(typ byte, body []byte) error) (int64, error) {
	off := 0
	for {
		if len(buf)-off < frameOverhead {
			return int64(off), nil
		}
		payload := int(binary.LittleEndian.Uint32(buf[off : off+4]))
		if payload < 1 || payload > maxFramePayload {
			return int64(off), nil
		}
		want := binary.LittleEndian.Uint32(buf[off+4 : off+8])
		start := off + frameOverhead
		if len(buf)-start < payload {
			return int64(off), nil
		}
		p := buf[start : start+payload]
		if crc32.ChecksumIEEE(p) != want {
			return int64(off), nil
		}
		if err := fn(p[0], p[1:]); err != nil {
			return int64(off), err
		}
		off = start + payload
	}
}
