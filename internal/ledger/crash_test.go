package ledger

import (
	"os"
	"path/filepath"
	"testing"

	"cdb/internal/testutil"
)

// writeSession produces a ledger directory with a known record sequence
// and returns the WAL bytes. Fsync policy never: the test mutates the
// file directly, durability is irrelevant.
func writeSession(t *testing.T, dir string, n int) []byte {
	t.Helper()
	l := openT(t, dir, Options{Seed: 11, Fsync: FsyncNever, SnapshotBytes: -1})
	for i := 0; i < n; i++ {
		l.AppendVerdict(testVerdict(i))
		if i%4 == 0 {
			l.AppendStatement("SELECT " + testVerdict(i).Key + ";")
		}
	}
	l.AppendAnswer(Answer{Stmt: "SELECT done;", Columns: []string{"x"}, Rows: [][]string{{"1"}}})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestCrashRecoveryAtEveryOffset is the torn-tail property test: a WAL
// cut at ANY byte offset — frame boundary, mid-header, mid-payload —
// must open without error, replay a prefix of the logged records, and
// leave a truncated file that reopens with identical state. A crash can
// stop a write anywhere; no offset may be fatal.
func TestCrashRecoveryAtEveryOffset(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	master := t.TempDir()
	wal := writeSession(t, master, 12)

	full := openT(t, master, Options{Seed: 11, Fsync: FsyncNever})
	fullVerdicts := full.Verdicts()
	fullStmts := full.Statements()
	full.Close()

	for cut := 0; cut <= len(wal); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Seed: 11, Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		st := l.Stats()
		got := l.Verdicts()
		gotStmts := l.Statements()
		if err := l.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}

		// Replayed state must be a prefix of the full session, in order.
		// Settledness is position-relative: the full session's final
		// answer settles every verdict, but a cut that lost the answer
		// legitimately leaves its verdicts unsettled.
		if len(got) > len(fullVerdicts) {
			t.Fatalf("cut=%d: %d verdicts from a %d-verdict log", cut, len(got), len(fullVerdicts))
		}
		for i, v := range got {
			if v.Settled != (st.Answers > 0) {
				t.Fatalf("cut=%d: verdict[%d].Settled = %v with %d answers replayed", cut, i, v.Settled, st.Answers)
			}
			want := fullVerdicts[i]
			want.Settled = v.Settled
			if v != want {
				t.Fatalf("cut=%d: verdict[%d] = %+v, want %+v", cut, i, v, want)
			}
		}
		if len(gotStmts) > len(fullStmts) {
			t.Fatalf("cut=%d: %d statements from a %d-statement log", cut, len(gotStmts), len(fullStmts))
		}
		for i, s := range gotStmts {
			if s != fullStmts[i] {
				t.Fatalf("cut=%d: statement[%d] = %q, want %q", cut, i, s, fullStmts[i])
			}
		}

		// The torn file was truncated to whole frames: reopening must
		// see the same state with no further truncation.
		fi, err := os.Stat(filepath.Join(dir, walName))
		if err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{Seed: 11, Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("cut=%d: reopen failed: %v", cut, err)
		}
		st2 := l2.Stats()
		l2.Close()
		if st2.TornTruncations != 0 {
			t.Fatalf("cut=%d: reopen still saw a torn tail (file %d bytes)", cut, fi.Size())
		}
		if st2.Verdicts != st.Verdicts || st2.Statements != st.Statements || st2.Answers != st.Answers {
			t.Fatalf("cut=%d: reopen state %+v != first-open state %+v", cut, st2, st)
		}

		// A cut strictly inside the file must have been recorded as a
		// torn truncation unless it landed exactly on a frame boundary.
		if cut == len(wal) && st.TornTruncations != 0 {
			t.Fatalf("uncut log reported a torn tail: %+v", st)
		}
	}
}

// TestCrashRecoveryBitFlip corrupts one byte inside a frame body: the
// CRC must catch it and the replay must stop at the previous frame.
func TestCrashRecoveryBitFlip(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	master := t.TempDir()
	wal := writeSession(t, master, 6)

	// Flip a byte well inside the final frame's payload.
	dir := t.TempDir()
	mut := append([]byte(nil), wal...)
	mut[len(mut)-3] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, walName), mut, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{Seed: 11, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("Open with bit-flip: %v", err)
	}
	defer l.Close()
	st := l.Stats()
	if st.TornTruncations != 1 {
		t.Fatalf("TornTruncations = %d, want 1", st.TornTruncations)
	}
	// The damaged record was the answer (last appended); everything
	// before it survives.
	if st.Answers != 0 {
		t.Fatalf("damaged final record replayed anyway: %+v", st)
	}
	if st.Verdicts == 0 {
		t.Fatalf("records before the damage were lost: %+v", st)
	}
}

// TestCrashBetweenSnapshotAndTruncate simulates the compaction crash
// window: the snapshot is durable but the WAL still holds the full
// pre-compaction history. Replay must apply both idempotently.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	dir := t.TempDir()
	l := openT(t, dir, Options{Seed: 5, Fsync: FsyncNever, SnapshotBytes: -1})
	for i := 0; i < 8; i++ {
		l.AppendVerdict(testVerdict(i))
	}
	l.Close()

	// Fabricate the crash: snapshot written, WAL untouched.
	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir, Options{Seed: 5, Fsync: FsyncNever, SnapshotBytes: -1})
	l2.Compact()
	l2.Close()
	if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	l3 := openT(t, dir, Options{Seed: 5, Fsync: FsyncNever})
	defer l3.Close()
	st := l3.Stats()
	if st.Verdicts != 8 {
		t.Fatalf("duplicate replay broke idempotence: %+v", st)
	}
	// Snapshot already applied all 8; WAL replays the same 8 again.
	if st.Replayed != 16 {
		t.Fatalf("Replayed = %d, want 16 (8 snapshot + 8 duplicate WAL)", st.Replayed)
	}
}
