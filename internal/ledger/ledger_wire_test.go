package ledger

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestLedgerWireFormat pins the on-disk ledger format — frame layout
// and record JSON — to a golden file, mirroring the HTTP wire pin in
// the root wire_test.go. A ledger directory outlives any single binary:
// an engine must replay logs written by earlier builds, so a change
// here must be deliberate (run `go test ./internal/ledger -run
// TestLedgerWireFormat -update`, bump formatVersion if the change is
// incompatible, and update DESIGN.md §15), not discovered by a
// failed warm restart in production.
func TestLedgerWireFormat(t *testing.T) {
	var buf []byte
	hdr, _ := json.Marshal(header{Version: formatVersion, Kind: "wal", Seed: 7})
	buf = appendFrame(buf, frameHeader, hdr)
	stmt, _ := json.Marshal(statementRecord{Stmt: "SELECT * FROM Paper;"})
	buf = appendFrame(buf, frameStatement, stmt)
	v, _ := json.Marshal(Verdict{
		Key:         "15\x1fjoin:a|b",
		Value:       true,
		Confidence:  0.875,
		Assignments: 15,
		Inferred:    true,
	})
	buf = appendFrame(buf, frameVerdict, v)
	a, _ := json.Marshal(Answer{
		Stmt:    "SELECT * FROM Paper;",
		Columns: []string{"title"},
		Rows:    [][]string{{"x"}, {"y"}},
		Report:  json.RawMessage(`{"tasks":2,"rounds":1}`),
	})
	buf = appendFrame(buf, frameAnswer, a)

	got := hexDump(buf)

	path := filepath.Join("testdata", "ledger_wire.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test ./internal/ledger -run TestLedgerWireFormat -update` after a deliberate format change)", err)
	}
	if got != string(want) {
		t.Errorf("on-disk ledger format drifted from %s.\nThis breaks replay of ledgers written by earlier builds.\ngot:\n%s\nwant:\n%s", path, got, want)
	}

	// The golden bytes must also still replay: the pin is only useful
	// if the current reader accepts the current writer's output.
	l := &Log{
		opts:     Options{Seed: 7},
		verdicts: make(map[string]Verdict),
		stmts:    make(map[string]bool),
		answers:  make(map[string]Answer),
		vseq:     make(map[string]int64),
		sseq:     make(map[string]int64),
		aseq:     make(map[string]int64),
	}
	valid, err := l.replay(buf)
	if err != nil {
		t.Fatalf("replay of pinned bytes: %v", err)
	}
	if valid != int64(len(buf)) {
		t.Fatalf("replay stopped at %d of %d bytes", valid, len(buf))
	}
	if len(l.verdicts) != 1 || len(l.stmts) != 1 || len(l.answers) != 1 {
		t.Fatalf("pinned bytes replayed to %d/%d/%d records", len(l.verdicts), len(l.stmts), len(l.answers))
	}
}

// TestRecordJSONFieldOrder pins each record kind's exact JSON: replay
// tolerates unknown fields, but renames or re-typings of existing
// fields would silently drop data from old ledgers.
func TestRecordJSONFieldOrder(t *testing.T) {
	cases := []struct {
		name string
		rec  any
		want string
	}{
		{
			"header",
			header{Version: 1, Kind: "wal", Seed: 7},
			`{"version":1,"kind":"wal","seed":7}`,
		},
		{
			"statement",
			statementRecord{Stmt: "SELECT 1;"},
			`{"stmt":"SELECT 1;"}`,
		},
		{
			"verdict",
			Verdict{Key: "5\x1fk", Value: true, Confidence: 0.8, Assignments: 5, Inferred: true},
			`{"key":"5\u001fk","value":true,"conf":0.8,"asks":5,"inferred":true}`,
		},
		{
			"verdict-minimal",
			Verdict{Key: "5\x1fk", Confidence: 0.6, Assignments: 5},
			`{"key":"5\u001fk","value":false,"conf":0.6,"asks":5}`,
		},
		{
			"answer",
			Answer{Stmt: "SELECT 1;", Columns: []string{"a"}, Rows: [][]string{{"1"}}, Report: json.RawMessage(`{}`)},
			`{"stmt":"SELECT 1;","columns":["a"],"rows":[["1"]],"report":{}}`,
		},
	}
	for _, c := range cases {
		got, err := json.Marshal(c.rec)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if string(got) != c.want {
			t.Errorf("%s record JSON drifted:\ngot  %s\nwant %s", c.name, got, c.want)
		}
	}
}

// TestFrameLayout pins the 8-byte frame header: little-endian payload
// length, then CRC32-IEEE over type byte + body.
func TestFrameLayout(t *testing.T) {
	frame := appendFrame(nil, 'V', []byte("abc"))
	want := []byte{
		0x04, 0x00, 0x00, 0x00, // payload length 4, LE
		0xb2, 0x17, 0x47, 0x05, // CRC32-IEEE("Vabc"), LE
		'V', 'a', 'b', 'c',
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("frame bytes drifted:\ngot  % x\nwant % x", frame, want)
	}
}

// hexDump renders buf as a stable offset/hex/ASCII listing.
func hexDump(buf []byte) string {
	var b bytes.Buffer
	for off := 0; off < len(buf); off += 16 {
		end := off + 16
		if end > len(buf) {
			end = len(buf)
		}
		line := buf[off:end]
		fmt.Fprintf(&b, "%08x  ", off)
		for i := 0; i < 16; i++ {
			if i < len(line) {
				fmt.Fprintf(&b, "%02x ", line[i])
			} else {
				b.WriteString("   ")
			}
			if i == 7 {
				b.WriteByte(' ')
			}
		}
		b.WriteString(" |")
		for _, c := range line {
			if c < 0x20 || c > 0x7e {
				c = '.'
			}
			b.WriteByte(c)
		}
		b.WriteString("|\n")
	}
	return b.String()
}
