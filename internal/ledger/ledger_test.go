package ledger

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cdb/internal/testutil"
)

func testVerdict(i int) Verdict {
	return Verdict{
		Key:         "15\x1fjoin:paper:" + strings.Repeat("k", i+1),
		Value:       i%2 == 0,
		Confidence:  0.8,
		Assignments: 15,
		Inferred:    i%3 == 0,
	}
}

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func TestRoundTrip(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	dir := t.TempDir()
	l := openT(t, dir, Options{Seed: 7, Fsync: FsyncNever})
	for i := 0; i < 10; i++ {
		l.AppendVerdict(testVerdict(i))
	}
	l.AppendStatement("SELECT * FROM A;")
	l.AppendStatement("SELECT * FROM B;")
	l.AppendAnswer(Answer{
		Stmt:    "SELECT * FROM A;",
		Columns: []string{"x"},
		Rows:    [][]string{{"1"}, {"2"}},
		Report:  json.RawMessage(`{"tasks":3}`),
	})
	st := l.Stats()
	if st.Verdicts != 10 || st.Statements != 2 || st.Answers != 1 {
		t.Fatalf("pre-close stats = %+v", st)
	}
	if st.Appended != 13 {
		t.Fatalf("Appended = %d, want 13", st.Appended)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openT(t, dir, Options{Seed: 7, Fsync: FsyncNever})
	defer l2.Close()
	st = l2.Stats()
	if st.Verdicts != 10 || st.Statements != 2 || st.Answers != 1 {
		t.Fatalf("post-reopen stats = %+v", st)
	}
	// 13 records; the header frame is validated, not counted.
	if st.Replayed != 13 {
		t.Fatalf("Replayed = %d, want 13", st.Replayed)
	}
	if st.TornTruncations != 0 {
		t.Fatalf("TornTruncations = %d, want 0", st.TornTruncations)
	}
	for i := 0; i < 10; i++ {
		want := testVerdict(i)
		// The answer was logged after every verdict, so all are settled.
		want.Settled = true
		got, ok := l2.Verdict(want.Key)
		if !ok || got != want {
			t.Fatalf("Verdict(%q) = %+v, %v; want %+v", want.Key, got, ok, want)
		}
	}
	if got := l2.Statements(); len(got) != 2 || got[0] != "SELECT * FROM A;" || got[1] != "SELECT * FROM B;" {
		t.Fatalf("Statements() = %q", got)
	}
	ans := l2.Answers()
	if len(ans) != 1 || ans[0].Stmt != "SELECT * FROM A;" || len(ans[0].Rows) != 2 {
		t.Fatalf("Answers() = %+v", ans)
	}
	if string(ans[0].Report) != `{"tasks":3}` {
		t.Fatalf("Report round-trip = %s", ans[0].Report)
	}
}

func TestFirstLoggedOrderSurvivesReplay(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	dir := t.TempDir()
	l := openT(t, dir, Options{Seed: 1, Fsync: FsyncNever})
	var wantKeys []string
	for i := 9; i >= 0; i-- {
		v := testVerdict(i)
		l.AppendVerdict(v)
		wantKeys = append(wantKeys, v.Key)
	}
	l.Close()

	l2 := openT(t, dir, Options{Seed: 1, Fsync: FsyncNever})
	defer l2.Close()
	got := l2.Verdicts()
	if len(got) != len(wantKeys) {
		t.Fatalf("replayed %d verdicts, want %d", len(got), len(wantKeys))
	}
	for i, v := range got {
		if v.Key != wantKeys[i] {
			t.Fatalf("replay order[%d] = %q, want %q", i, v.Key, wantKeys[i])
		}
	}
}

func TestDuplicateAppendsAreDropped(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	l := openT(t, t.TempDir(), Options{Seed: 1, Fsync: FsyncNever})
	defer l.Close()
	v := testVerdict(0)
	for i := 0; i < 5; i++ {
		l.AppendVerdict(v)
		l.AppendStatement("SELECT 1;")
		l.AppendAnswer(Answer{Stmt: "SELECT 1;"})
	}
	st := l.Stats()
	if st.Verdicts != 1 || st.Statements != 1 || st.Answers != 1 {
		t.Fatalf("stats = %+v, want one of each", st)
	}
	if st.Appended != 3 {
		t.Fatalf("Appended = %d, want 3 (duplicates must not hit the WAL)", st.Appended)
	}
}

func TestSeedMismatchRefusesOpen(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	dir := t.TempDir()
	l := openT(t, dir, Options{Seed: 7, Fsync: FsyncNever})
	l.AppendVerdict(testVerdict(0))
	l.Close()

	if _, err := Open(dir, Options{Seed: 8, Fsync: FsyncNever}); !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("Open with wrong seed: err = %v, want ErrSeedMismatch", err)
	}
	// The right seed still works after the refused attempt.
	l2 := openT(t, dir, Options{Seed: 7, Fsync: FsyncNever})
	defer l2.Close()
	if st := l2.Stats(); st.Verdicts != 1 {
		t.Fatalf("stats after refused open = %+v", st)
	}
}

func TestCompactionPreservesStateAndShrinksWAL(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	dir := t.TempDir()
	l := openT(t, dir, Options{Seed: 3, Fsync: FsyncNever, SnapshotBytes: -1})
	for i := 0; i < 50; i++ {
		l.AppendVerdict(testVerdict(i))
	}
	l.AppendStatement("SELECT * FROM A;")
	l.AppendAnswer(Answer{Stmt: "SELECT * FROM A;", Columns: []string{"x"}, Rows: [][]string{{"1"}}})
	before := l.Stats().WALBytes
	l.Compact()
	st := l.Stats()
	if st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	if st.WALBytes >= before {
		t.Fatalf("WAL did not shrink: %d -> %d", before, st.WALBytes)
	}
	if st.Verdicts != 50 || st.Statements != 1 || st.Answers != 1 {
		t.Fatalf("in-memory state lost by compaction: %+v", st)
	}
	// Appends keep working after compaction, and reopen sees snapshot +
	// post-compaction WAL.
	l.AppendVerdict(testVerdict(50))
	l.Close()

	l2 := openT(t, dir, Options{Seed: 3, Fsync: FsyncNever})
	defer l2.Close()
	st = l2.Stats()
	if st.Verdicts != 51 || st.Statements != 1 || st.Answers != 1 {
		t.Fatalf("post-reopen state = %+v", st)
	}
	if st.TornTruncations != 0 {
		t.Fatalf("compaction produced a torn tail: %+v", st)
	}
}

func TestAutomaticCompactionTrigger(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	l := openT(t, t.TempDir(), Options{Seed: 3, Fsync: FsyncNever, SnapshotBytes: 2048})
	defer l.Close()
	for i := 0; i < 200; i++ {
		l.AppendVerdict(testVerdict(i))
	}
	st := l.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no automatic compaction after %d bytes of appends", st.WALBytes)
	}
	if st.Verdicts != 200 {
		t.Fatalf("verdicts lost across compactions: %+v", st)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			defer testutil.VerifyNoLeaks(t)()
			dir := t.TempDir()
			l := openT(t, dir, Options{Seed: 9, Fsync: pol, FsyncEvery: 5 * time.Millisecond})
			for i := 0; i < 20; i++ {
				l.AppendVerdict(testVerdict(i))
			}
			if pol == FsyncInterval {
				// Give the background writer at least one tick.
				time.Sleep(20 * time.Millisecond)
			}
			l.Sync()
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l2 := openT(t, dir, Options{Seed: 9, Fsync: pol, FsyncEvery: 5 * time.Millisecond})
			if st := l2.Stats(); st.Verdicts != 20 {
				t.Fatalf("policy %s: reopen sees %d verdicts, want 20", pol, st.Verdicts)
			}
			l2.Close()
		})
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want FsyncPolicy
		err  bool
	}{
		{"always", FsyncAlways, false},
		{"interval", FsyncInterval, false},
		{"", FsyncInterval, false},
		{"never", FsyncNever, false},
		{"sometimes", 0, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	if FsyncAlways.String() != "always" || FsyncInterval.String() != "interval" || FsyncNever.String() != "never" {
		t.Errorf("String round-trip broken: %q %q %q", FsyncAlways, FsyncInterval, FsyncNever)
	}
}

func TestCloseIsIdempotentAndStopsAppends(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	dir := t.TempDir()
	l := openT(t, dir, Options{Seed: 2})
	l.AppendVerdict(testVerdict(0))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Post-close appends stay in memory, never touch the closed file.
	l.AppendVerdict(testVerdict(1))
	l.Sync()
	if st := l.Stats(); st.Verdicts != 2 || st.AppendErrors != 0 {
		t.Fatalf("post-close stats = %+v", st)
	}
	l2 := openT(t, dir, Options{Seed: 2})
	defer l2.Close()
	if st := l2.Stats(); st.Verdicts != 1 {
		t.Fatalf("reopen sees %d verdicts, want only the pre-close one", st.Verdicts)
	}
}

func TestUnknownFrameTypeIsSkipped(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	dir := t.TempDir()
	l := openT(t, dir, Options{Seed: 4, Fsync: FsyncNever})
	l.AppendVerdict(testVerdict(0))
	l.Close()

	// Append a valid frame of an unknown future type, then another
	// verdict: replay must skip the stranger and keep going.
	path := filepath.Join(dir, walName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf = appendFrame(buf, 'Z', []byte(`{"future":"record"}`))
	v1 := testVerdict(1)
	body, _ := json.Marshal(v1)
	buf = appendFrame(buf, frameVerdict, body)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, Options{Seed: 4, Fsync: FsyncNever})
	defer l2.Close()
	st := l2.Stats()
	if st.Verdicts != 2 {
		t.Fatalf("verdicts after unknown frame = %d, want 2", st.Verdicts)
	}
	if st.TornTruncations != 0 {
		t.Fatalf("unknown frame type treated as torn tail: %+v", st)
	}
	if _, ok := l2.Verdict(v1.Key); !ok {
		t.Fatalf("record after the unknown frame was not replayed")
	}
}

func TestBadJSONInValidFrameIsSkipped(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	dir := t.TempDir()
	l := openT(t, dir, Options{Seed: 4, Fsync: FsyncNever})
	l.Close()

	path := filepath.Join(dir, walName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf = appendFrame(buf, frameVerdict, []byte(`{"key": not json`))
	v := testVerdict(0)
	body, _ := json.Marshal(v)
	buf = appendFrame(buf, frameVerdict, body)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, Options{Seed: 4, Fsync: FsyncNever})
	defer l2.Close()
	if st := l2.Stats(); st.Verdicts != 1 || st.TornTruncations != 0 {
		t.Fatalf("stats = %+v, want the good verdict replayed and no torn tail", st)
	}
}
