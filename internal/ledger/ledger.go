// Package ledger is CDB's durability substrate: an append-only,
// CRC-framed write-ahead log of the crowd work a serving engine has
// already paid for, plus periodic compacted snapshots. Crowd answers
// are the one thing in the system that costs real money, and they are
// pure functions of (engine seed, task key, redundancy) — which makes
// them safe to persist and replay: a verdict served from the ledger is
// byte-identical to the one a fresh resolve would produce, it just
// charges the crowd nothing.
//
// Three record kinds are logged: every resolved task verdict (keyed by
// the redundancy-qualified canonical task key the engine's coalescer
// already shares on), every canonical statement that reached execution
// (so a warm boot can rebuild plans and re-prime the similarity-join
// cache), and every completed query's full answer (so a re-submitted
// statement after a restart is served whole). On Open the snapshot is
// replayed first, then the WAL; a torn tail — a frame cut mid-write by
// a crash — is truncated at the last valid CRC frame, never fatal.
// Replay is idempotent (records are content-keyed values), which is
// what makes compaction crash-safe: a crash between the snapshot
// rename and the WAL truncation merely replays duplicates.
//
// Durability is tunable per Options.Fsync: every append, a background
// interval, or never (the OS decides). Close always flushes and syncs
// whatever policy is active.
package ledger

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cdb/internal/obs"
)

// Ledger metrics (process-wide, across all ledgers).
var (
	mAppends    = obs.Default.Counter("cdb_ledger_appends_total")
	mAppendErrs = obs.Default.Counter("cdb_ledger_append_errors_total")
	mReplayed   = obs.Default.Counter("cdb_ledger_replayed_total")
	mCompact    = obs.Default.Counter("cdb_ledger_compactions_total")
	mTorn       = obs.Default.Counter("cdb_ledger_torn_truncations_total")
	mFsyncs     = obs.Default.Counter("cdb_ledger_fsyncs_total")
)

// File names inside a ledger directory.
const (
	walName  = "wal.ldg"
	snapName = "snapshot.ldg"
)

// ErrSeedMismatch means the directory holds a ledger written under a
// different engine seed. Verdicts are pure functions of the seed, so
// replaying them into an engine with another seed would serve answers
// that engine could never have produced; Open refuses.
var ErrSeedMismatch = errors.New("ledger: engine seed does not match")

// FsyncPolicy selects when appended records are forced to stable
// storage.
type FsyncPolicy int

const (
	// FsyncInterval syncs dirty data on a background ticker
	// (Options.FsyncEvery, default 100ms): bounded loss window, near-
	// zero per-append cost. The default.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every append: zero accepted-verdict loss
	// even on kill -9, at one fsync per record.
	FsyncAlways
	// FsyncNever leaves syncing to the OS page cache (Close still
	// syncs). For tests and throwaway runs.
	FsyncNever
)

// ParsePolicy maps the -fsync flag spelling onto a policy.
func ParsePolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("ledger: unknown fsync policy %q (want always, interval or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "interval"
}

// Options configures Open.
type Options struct {
	// Seed is the engine seed the logged verdicts were (or will be)
	// produced under; part of the file header, validated on reopen.
	Seed uint64
	// Fsync is the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the interval policy's tick (default 100ms).
	FsyncEvery time.Duration
	// SnapshotBytes triggers compaction once the WAL grows past it
	// (default 4MB; negative disables automatic compaction).
	SnapshotBytes int64
}

// header is the first record of every ledger file.
type header struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"` // "wal" or "snap"
	Seed    uint64 `json:"seed"`
}

const formatVersion = 1

// Verdict is one logged task ruling. Key is the redundancy-qualified
// canonical task key (strconv.Itoa(k) + "\x1f" + Plan.TaskKey) — the
// exact sharing identity of the engine's verdict cache.
type Verdict struct {
	Key         string  `json:"key"`
	Value       bool    `json:"value"`
	Confidence  float64 `json:"conf"`
	Assignments int     `json:"asks"`
	Inferred    bool    `json:"inferred,omitempty"`

	// Settled is derived, never stored: true when some completed
	// answer was logged after this verdict, i.e. the query that owned
	// its resolve finished. A settled verdict warms the cache as an
	// ordinary entry (its owner's work is replayed whole from the
	// answer log, so any later resolver ask is a plain cache hit in
	// the uninterrupted timeline); only unsettled verdicts — the tail
	// a kill -9 cut mid-query — replay with first-use-mirrors-owner
	// accounting.
	Settled bool `json:"-"`
}

// Answer is one logged completed query: the canonical statement, its
// projected rows, and the raw executor report (Answers stripped — the
// rows already carry the projection).
type Answer struct {
	Stmt    string          `json:"stmt"`
	Columns []string        `json:"columns"`
	Rows    [][]string      `json:"rows"`
	Report  json.RawMessage `json:"report"`
}

type statementRecord struct {
	Stmt string `json:"stmt"`
}

// Stats is a point-in-time snapshot of one ledger's counters and
// durable contents.
type Stats struct {
	Verdicts   int // distinct verdicts held
	Statements int // distinct canonical statements held
	Answers    int // distinct completed answers held

	Replayed        int64 // records applied from disk at Open
	Appended        int64 // records appended since Open
	AppendErrors    int64 // appends or syncs that failed (state kept in memory)
	Compactions     int64 // snapshot compactions since Open
	TornTruncations int64 // torn WAL tails truncated at Open
	WALBytes        int64 // current WAL size
}

// Log is an open ledger directory. All methods are safe for concurrent
// use. Append methods never fail the caller: an I/O error is counted
// (Stats.AppendErrors) and the record is kept in memory, so a sick
// disk degrades durability, not query serving.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	closed bool
	dirty  bool

	verdicts map[string]Verdict
	vorder   []string
	stmts    map[string]bool
	sorder   []string
	answers  map[string]Answer
	aorder   []string

	// Global first-logged sequence, the basis of Verdict.Settled.
	// Compaction emits records in this interleaved order so the
	// settled/unsettled split survives snapshot replay.
	seq     int64
	vseq    map[string]int64
	sseq    map[string]int64
	aseq    map[string]int64
	lastAns int64 // seq of the most recent answer, 0 if none

	walBytes int64
	stats    Stats

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if needed) the ledger in dir, replays snapshot
// then WAL into memory, truncates any torn WAL tail at the last valid
// CRC frame, and starts the background sync loop if the policy is
// FsyncInterval. The directory must not be shared between live Logs.
func Open(dir string, opts Options) (*Log, error) {
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 100 * time.Millisecond
	}
	if opts.SnapshotBytes == 0 {
		opts.SnapshotBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := &Log{
		dir:      dir,
		opts:     opts,
		verdicts: make(map[string]Verdict),
		stmts:    make(map[string]bool),
		answers:  make(map[string]Answer),
		vseq:     make(map[string]int64),
		sseq:     make(map[string]int64),
		aseq:     make(map[string]int64),
	}

	// Snapshot first: it is the compacted prefix of the log. A torn or
	// corrupt tail inside it just ends its replay early — the records
	// past the damage are gone, but the WAL (and idempotent appends
	// from the resumed workload) heal forward.
	snap, err := os.ReadFile(filepath.Join(dir, snapName))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	if len(snap) > 0 {
		if _, err := l.replay(snap); err != nil {
			return nil, err
		}
	}

	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	wal, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	valid, err := l.replay(wal)
	if err != nil {
		f.Close()
		return nil, err
	}
	if valid < int64(len(wal)) {
		// Torn tail: a crash cut the last write mid-frame. Truncate to
		// the last valid frame and carry on — the lost suffix was never
		// acknowledged as durable.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		l.stats.TornTruncations++
		mTorn.Inc()
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l.f = f
	l.walBytes = valid
	if valid == 0 {
		// Fresh (or fully torn) WAL: stamp the header so reopen can
		// validate the seed.
		hdr, _ := json.Marshal(header{Version: formatVersion, Kind: "wal", Seed: opts.Seed})
		if err := l.writeLocked(frameHeader, hdr); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: write header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		l.dirty = false
	}

	if opts.Fsync == FsyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// replay applies one file's frames to the in-memory state and returns
// the offset past the last valid frame. Only a header seed mismatch is
// an error; structurally bad frames end the scan (torn-tail rule), and
// records are applied idempotently (first occurrence wins — every
// occurrence is byte-identical by construction).
func (l *Log) replay(buf []byte) (int64, error) {
	return scanFrames(buf, func(typ byte, body []byte) error {
		switch typ {
		case frameHeader:
			var h header
			if err := json.Unmarshal(body, &h); err != nil {
				return nil
			}
			if h.Seed != l.opts.Seed {
				return fmt.Errorf("%w: ledger %s holds seed %d, engine runs seed %d",
					ErrSeedMismatch, l.dir, h.Seed, l.opts.Seed)
			}
			return nil
		case frameVerdict:
			var v Verdict
			if err := json.Unmarshal(body, &v); err != nil {
				return nil
			}
			if _, ok := l.verdicts[v.Key]; !ok {
				l.verdicts[v.Key] = v
				l.vorder = append(l.vorder, v.Key)
				l.seq++
				l.vseq[v.Key] = l.seq
			}
		case frameStatement:
			var s statementRecord
			if err := json.Unmarshal(body, &s); err != nil {
				return nil
			}
			if !l.stmts[s.Stmt] {
				l.stmts[s.Stmt] = true
				l.sorder = append(l.sorder, s.Stmt)
				l.seq++
				l.sseq[s.Stmt] = l.seq
			}
		case frameAnswer:
			var a Answer
			if err := json.Unmarshal(body, &a); err != nil {
				return nil
			}
			if _, ok := l.answers[a.Stmt]; !ok {
				l.answers[a.Stmt] = a
				l.aorder = append(l.aorder, a.Stmt)
				l.seq++
				l.aseq[a.Stmt] = l.seq
				l.lastAns = l.seq
			}
		default:
			// Unknown record type from a future version: skip, keep
			// replaying — forward compatibility for rolling restarts.
			return nil
		}
		l.stats.Replayed++
		mReplayed.Inc()
		return nil
	})
}

// writeLocked frames and writes one record; the caller holds l.mu.
func (l *Log) writeLocked(typ byte, body []byte) error {
	frame := appendFrame(make([]byte, 0, frameOverhead+1+len(body)), typ, body)
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.walBytes += int64(len(frame))
	l.dirty = true
	return nil
}

// appendLocked logs one record under the active fsync policy and runs
// the compaction trigger. I/O failures are absorbed into
// Stats.AppendErrors — in-memory state already holds the record.
func (l *Log) appendLocked(typ byte, rec any) {
	if l.closed || l.f == nil {
		return
	}
	body, err := json.Marshal(rec)
	if err == nil {
		err = l.writeLocked(typ, body)
	}
	if err != nil {
		l.stats.AppendErrors++
		mAppendErrs.Inc()
		return
	}
	l.stats.Appended++
	mAppends.Inc()
	if l.opts.Fsync == FsyncAlways {
		l.syncLocked()
	}
	if l.opts.SnapshotBytes > 0 && l.walBytes >= l.opts.SnapshotBytes {
		l.compactLocked()
	}
}

// AppendVerdict logs one resolved verdict. Duplicate keys are dropped:
// verdicts are pure functions of their key, so the first record is
// already the whole truth.
func (l *Log) AppendVerdict(v Verdict) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.verdicts[v.Key]; ok {
		return
	}
	v.Settled = false
	l.verdicts[v.Key] = v
	l.vorder = append(l.vorder, v.Key)
	l.seq++
	l.vseq[v.Key] = l.seq
	l.appendLocked(frameVerdict, v)
}

// AppendStatement logs one canonical statement that reached execution,
// so a warm boot replans it (re-priming the similarity-join cache).
func (l *Log) AppendStatement(stmt string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.stmts[stmt] {
		return
	}
	l.stmts[stmt] = true
	l.sorder = append(l.sorder, stmt)
	l.seq++
	l.sseq[stmt] = l.seq
	l.appendLocked(frameStatement, statementRecord{Stmt: stmt})
}

// AppendAnswer logs one completed query's whole answer, keyed by its
// canonical statement.
func (l *Log) AppendAnswer(a Answer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.answers[a.Stmt]; ok {
		return
	}
	l.answers[a.Stmt] = a
	l.aorder = append(l.aorder, a.Stmt)
	l.seq++
	l.aseq[a.Stmt] = l.seq
	l.lastAns = l.seq
	l.appendLocked(frameAnswer, a)
}

// Verdict looks up a logged verdict by its redundancy-qualified key.
func (l *Log) Verdict(key string) (Verdict, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.verdicts[key]
	if ok {
		v.Settled = l.vseq[key] < l.lastAns
	}
	return v, ok
}

// Verdicts returns every held verdict in first-logged order, Settled
// filled in.
func (l *Log) Verdicts() []Verdict {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Verdict, len(l.vorder))
	for i, k := range l.vorder {
		v := l.verdicts[k]
		v.Settled = l.vseq[k] < l.lastAns
		out[i] = v
	}
	return out
}

// Statements returns every held statement in first-logged order.
func (l *Log) Statements() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.sorder))
	copy(out, l.sorder)
	return out
}

// Answers returns every held answer in first-logged order.
func (l *Log) Answers() []Answer {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Answer, len(l.aorder))
	for i, k := range l.aorder {
		out[i] = l.answers[k]
	}
	return out
}

// Stats snapshots the ledger's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Verdicts = len(l.verdicts)
	st.Statements = len(l.stmts)
	st.Answers = len(l.answers)
	st.WALBytes = l.walBytes
	return st
}

func (l *Log) syncLocked() {
	if l.f == nil {
		return
	}
	if err := l.f.Sync(); err != nil {
		l.stats.AppendErrors++
		mAppendErrs.Inc()
		return
	}
	l.dirty = false
	mFsyncs.Inc()
}

// Sync forces buffered appends to stable storage regardless of policy.
func (l *Log) Sync() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed && l.dirty {
		l.syncLocked()
	}
}

// syncLoop is the FsyncInterval writer: it syncs dirty appends on a
// ticker until Close stops it.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Compact writes the entire in-memory state as a fresh snapshot (temp
// file + atomic rename) and resets the WAL to just its header. Safe at
// any point: a crash before the rename leaves the old snapshot, a
// crash after it but before the WAL truncation replays duplicates
// idempotently.
func (l *Log) Compact() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.f == nil {
		return
	}
	l.compactLocked()
}

func (l *Log) compactLocked() {
	var buf []byte
	hdr, _ := json.Marshal(header{Version: formatVersion, Kind: "snap", Seed: l.opts.Seed})
	buf = appendFrame(buf, frameHeader, hdr)
	// Emit records merged by global first-logged sequence, not grouped
	// by kind: Verdict.Settled is "an answer was logged after me", and a
	// kind-grouped snapshot (answers last) would mark a killed query's
	// tail verdicts settled on the next boot.
	type rec struct {
		seq  int64
		typ  byte
		body any
	}
	recs := make([]rec, 0, len(l.sorder)+len(l.vorder)+len(l.aorder))
	for _, s := range l.sorder {
		recs = append(recs, rec{l.sseq[s], frameStatement, statementRecord{Stmt: s}})
	}
	for _, k := range l.vorder {
		recs = append(recs, rec{l.vseq[k], frameVerdict, l.verdicts[k]})
	}
	for _, k := range l.aorder {
		recs = append(recs, rec{l.aseq[k], frameAnswer, l.answers[k]})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	for _, r := range recs {
		body, err := json.Marshal(r.body)
		if err != nil {
			continue
		}
		buf = appendFrame(buf, r.typ, body)
	}

	fail := func() {
		l.stats.AppendErrors++
		mAppendErrs.Inc()
	}
	tmp, err := os.CreateTemp(l.dir, snapName+".tmp-*")
	if err != nil {
		fail()
		return
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		fail()
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		fail()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		fail()
		return
	}
	if err := os.Rename(tmpName, filepath.Join(l.dir, snapName)); err != nil {
		os.Remove(tmpName)
		fail()
		return
	}
	syncDir(l.dir)

	// The snapshot is durable; the WAL restarts from just a header.
	if err := l.f.Truncate(0); err != nil {
		fail()
		return
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		fail()
		return
	}
	l.walBytes = 0
	whdr, _ := json.Marshal(header{Version: formatVersion, Kind: "wal", Seed: l.opts.Seed})
	if err := l.writeLocked(frameHeader, whdr); err != nil {
		fail()
		return
	}
	l.syncLocked()
	l.stats.Compactions++
	mCompact.Inc()
}

// syncDir best-effort fsyncs a directory so a rename inside it is
// durable.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

// Close stops the background sync loop (if any), flushes and syncs all
// buffered appends, and closes the WAL. Idempotent; appends after
// Close are kept in memory only.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.dirty {
		if serr := l.f.Sync(); serr != nil {
			err = serr
		} else {
			l.dirty = false
			mFsyncs.Inc()
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
