package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cdb"
	"cdb/client"
)

// TestRequestIDRoundTrip pins the correlation contract end to end: a
// client-supplied X-CDB-Request-ID is echoed on the response header,
// lands on the wire Result, and — on the engine side, where traces
// live (they are json:"-" and never cross the wire) — stamps the root
// span of the query's trace. One key joins the wire artifacts to the
// execution artifacts.
func TestRequestIDRoundTrip(t *testing.T) {
	_, eng, hs := newTestServer(t, newTestDB(t), cdb.WithEngineTracing(true))
	defer eng.Close()
	c := client.New(hs.URL)

	const id = "test-correlation-0042"
	ctx := cdb.ContextWithRequestID(context.Background(), id)
	res, err := c.Query(ctx, testQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID != id {
		t.Errorf("Result.RequestID = %q, want %q", res.RequestID, id)
	}

	// Trace-span stamping, asserted where the trace is reachable: a
	// query submitted on the engine under the same correlation context.
	fut, err := eng.Submit(ctx, testQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	local, err := fut.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if local.RequestID != id {
		t.Errorf("engine Result.RequestID = %q, want %q", local.RequestID, id)
	}
	if local.Trace == nil || len(local.Trace.Spans) == 0 {
		t.Fatal("traced engine returned no trace")
	}
	if local.Trace.RequestID != id {
		t.Errorf("Trace.RequestID = %q, want %q", local.Trace.RequestID, id)
	}
	root := local.Trace.Spans[0]
	if root.Name != cdb.SpanQuery {
		t.Fatalf("first span = %q, want root %q", root.Name, cdb.SpanQuery)
	}
	if root.Req != id {
		t.Errorf("root span Req = %q, want %q", root.Req, id)
	}
	for _, sp := range local.Trace.Spans {
		if sp.Req != id {
			t.Errorf("span %s Req = %q, want %q", sp.Name, sp.Req, id)
		}
	}

	// Header echo, observed on the raw wire.
	body := bytes.NewBufferString(`{"query":"SELECT * FROM Paper, Researcher WHERE Paper.author CROWDJOIN Researcher.name;"}`)
	hreq, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/query", body)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set(client.HeaderRequestID, id)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(client.HeaderRequestID); got != id {
		t.Errorf("response %s = %q, want %q", client.HeaderRequestID, got, id)
	}
	if tp := resp.Header.Get(client.HeaderTraceParent); tp == "" {
		t.Errorf("response carries no traceparent")
	}
}

// TestMintedRequestIDsUnique hits the server concurrently without
// supplying IDs and requires every minted ID be distinct — the whole
// point of a correlation ID is that it names exactly one request.
func TestMintedRequestIDsUnique(t *testing.T) {
	_, eng, hs := newTestServer(t, newTestDB(t))
	defer eng.Close()

	const n = 32
	var mu sync.Mutex
	seen := make(map[string]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(hs.URL + "/v1/tables")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			id := resp.Header.Get(client.HeaderRequestID)
			mu.Lock()
			seen[id]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Errorf("%d requests produced %d distinct IDs: %v", n, len(seen), seen)
	}
	for id, count := range seen {
		if id == "" {
			t.Error("server responded without a minted request ID")
		}
		if count > 1 {
			t.Errorf("ID %q minted %d times", id, count)
		}
	}
}

// TestStatusClassCounters pins the by-class request accounting: a
// success bumps 2xx, a malformed body bumps 4xx, and an overload shed
// bumps 429 — each exclusively.
func TestStatusClassCounters(t *testing.T) {
	gate := &gateOracle{release: make(chan struct{})}
	db := newTestDB(t, cdb.WithOracle(gate))
	_, eng, hs := newTestServer(t, db,
		cdb.WithMaxInFlight(1), cdb.WithMaxQueue(1), cdb.WithResultCache(-1))
	defer eng.Close()
	c := client.New(hs.URL)
	ctx := context.Background()

	base2xx, base4xx, base429 := mReq2xx.Value(), mReq4xx.Value(), mReq429.Value()

	if _, err := c.Query(ctx, testQueries[0]); err != nil {
		t.Fatal(err)
	}
	if d := mReq2xx.Value() - base2xx; d != 1 {
		t.Errorf("2xx delta after success = %d, want 1", d)
	}

	resp, err := http.Post(hs.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := mReq4xx.Value() - base4xx; d != 1 {
		t.Errorf("4xx delta after bad body = %d, want 1", d)
	}

	// Fill the 1 in-flight + 1 queued slots with gate-wedged queries,
	// confirmed via introspection, then overflow deterministically.
	gate.hold.Store(true)
	wedged := make(chan error, 2)
	for i := 1; i <= 2; i++ {
		go func(i int) {
			_, err := c.Query(ctx, testQueries[i])
			wedged <- err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("wedged queries never filled the admission slots")
		}
		qr, err := c.Queries(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(qr.InFlight) >= 2 {
			break
		}
	}
	if _, err := c.Query(ctx, testQueries[3]); err == nil {
		t.Fatal("expected overload, query succeeded")
	}
	if d := mReq429.Value() - base429; d != 1 {
		t.Errorf("429 delta after shed = %d, want 1", d)
	}
	if d := mReq4xx.Value() - base4xx; d != 1 {
		t.Errorf("429 leaked into the 4xx class: delta = %d, want 1", d)
	}
	close(gate.release)
	for i := 0; i < 2; i++ {
		if err := <-wedged; err != nil {
			t.Errorf("wedged query failed after release: %v", err)
		}
	}
}

// TestQueriesEndpoint pins live introspection end to end: a wedged
// query is visible in /v1/queries as in-flight with its request ID and
// statement, and after completion it moves to the recent ring with
// final rounds and HIT economics.
func TestQueriesEndpoint(t *testing.T) {
	gate := &gateOracle{release: make(chan struct{})}
	db := newTestDB(t, cdb.WithOracle(gate))
	_, eng, hs := newTestServer(t, db, cdb.WithResultCache(-1))
	defer eng.Close()
	c := client.New(hs.URL)
	const id = "introspect-e2e-1"

	gate.hold.Store(true)
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(cdb.ContextWithRequestID(context.Background(), id), testQueries[0])
		done <- err
	}()

	// The query wedges on the gated oracle during planning: it must
	// appear in-flight as running.
	var inflight *client.QueryInfo
	deadline := time.Now().Add(5 * time.Second)
	for inflight == nil {
		if time.Now().After(deadline) {
			t.Fatal("wedged query never appeared in /v1/queries")
		}
		qr, err := c.Queries(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for i, qi := range qr.InFlight {
			if qi.RequestID == id {
				inflight = &qr.InFlight[i]
			}
		}
	}
	if inflight.State != "running" && inflight.State != "queued" {
		t.Errorf("in-flight state = %q, want running or queued", inflight.State)
	}
	if !strings.Contains(inflight.Query, "CROWDJOIN") {
		t.Errorf("in-flight statement = %q, want the submitted CQL", inflight.Query)
	}

	close(gate.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	qr, err := c.Queries(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var recent *client.QueryInfo
	for i, qi := range qr.Recent {
		if qi.RequestID == id {
			recent = &qr.Recent[i]
		}
	}
	if recent == nil {
		t.Fatalf("completed query missing from recent ring: %+v", qr.Recent)
	}
	if recent.State != "done" {
		t.Errorf("recent state = %q, want done", recent.State)
	}
	if recent.Rounds < 1 || recent.HITs < 1 {
		t.Errorf("recent economics rounds=%d hits=%d, want both >= 1", recent.Rounds, recent.HITs)
	}
	for _, qi := range qr.InFlight {
		if qi.RequestID == id {
			t.Error("completed query still listed in-flight")
		}
	}
}

// syncBuffer guards a bytes.Buffer for cross-goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestQueryLog pins the structured query log: one JSONL line per
// completed query carrying the request ID, statement, terminal status
// and crowd economics; failures log their mapped status and message;
// and the slowness threshold suppresses fast queries.
func TestQueryLog(t *testing.T) {
	db := newTestDB(t)
	eng, err := db.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var logbuf syncBuffer
	srv, err := New(Config{DB: db, Engine: eng, QueryLog: NewQueryLog(&logbuf, 0)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := client.New(hs.URL)

	const id = "qlog-test-7"
	ctx := cdb.ContextWithRequestID(context.Background(), id)
	if _, err := c.Query(ctx, testQueries[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "SELEKT nonsense"); err == nil {
		t.Fatal("malformed query succeeded")
	}

	var entries []QueryLogEntry
	sc := bufio.NewScanner(strings.NewReader(logbuf.String()))
	for sc.Scan() {
		var e QueryLogEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad query-log line %q: %v", sc.Text(), err)
		}
		entries = append(entries, e)
	}
	if len(entries) != 2 {
		t.Fatalf("query log has %d entries, want 2:\n%s", len(entries), logbuf.String())
	}

	ok, bad := entries[0], entries[1]
	if ok.RequestID != id || ok.Endpoint != "query" || ok.Status != 200 {
		t.Errorf("success entry = %+v, want request_id=%s endpoint=query status=200", ok, id)
	}
	if ok.Rounds < 1 || ok.HITs < 1 {
		t.Errorf("success entry economics rounds=%d hits=%d, want both >= 1", ok.Rounds, ok.HITs)
	}
	if ok.TS == "" {
		t.Error("success entry has no timestamp")
	}
	if bad.Status != 400 || bad.Error == "" {
		t.Errorf("failure entry = %+v, want status=400 with an error message", bad)
	}

	// A high slowness threshold suppresses everything.
	var quiet syncBuffer
	srv.qlog = NewQueryLog(&quiet, time.Hour)
	if _, err := c.Query(ctx, testQueries[1]); err != nil {
		t.Fatal(err)
	}
	if quiet.String() != "" {
		t.Errorf("sub-threshold query logged: %s", quiet.String())
	}
}
