package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"cdb"
	"cdb/client"
	"cdb/internal/cluster"
	"cdb/internal/dataset"
)

// newClusterDB opens the multi-component test universe: the paper
// dataset at a scale where every paper query spans several tuple-graph
// components, so scatter routing actually scatters.
func newClusterDB(t *testing.T) *cdb.DB {
	t.Helper()
	db := cdb.Open(cdb.WithDataset("paper", 0.1, 7), cdb.WithWorkers(50, 0.8, 0.1), cdb.WithSeed(7))
	if err := db.Err(); err != nil {
		t.Fatal(err)
	}
	return db
}

// newShard boots one cdbd shard over HTTP. The verdict cache is
// sized past the workload so eviction cannot skew the CachedTasks
// telemetry between one node and a fleet (a fleet holds strictly more
// aggregate cache; under eviction pressure only the sharing counters
// may differ — rows, assignments and economics never do).
func newShard(t *testing.T, id string) (*cdb.Engine, *httptest.Server) {
	t.Helper()
	db := newClusterDB(t)
	eng, err := db.NewEngine(cdb.WithVerdictCache(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv, err := New(Config{DB: db, Engine: eng, ShardID: id})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return eng, hs
}

// newCoordinator boots a coordinator over the given shard URLs.
func newCoordinator(t *testing.T, shards map[string]string) *httptest.Server {
	t.Helper()
	db := newClusterDB(t)
	planner, err := db.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(planner.Close)
	backends := make([]cluster.Backend, 0, len(shards))
	for id, url := range shards {
		backends = append(backends, cluster.NewHTTPBackend(id, url, nil))
	}
	fleet, err := cluster.New(cluster.Config{Planner: planner, Backends: backends})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{DB: db, Engine: planner, ShardID: "coord", Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// clusterWorkload is a slice of the paper mix: enough statements to
// exercise direct and scatter routes plus cache reuse, small enough to
// keep the test quick.
func clusterWorkload() []string {
	qs := dataset.Queries("paper")
	labels := dataset.QueryLabels()
	out := make([]string, 0, 3)
	for _, l := range labels[:3] {
		out = append(out, qs[l])
	}
	return out
}

// normalize strips the per-request correlation ID so two requests for
// the same statement compare equal.
func normalize(t *testing.T, res *cdb.Result) string {
	t.Helper()
	res.RequestID = ""
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterHTTPByteIdentical is the tentpole smoke at the HTTP
// layer: a coordinator scattering over two real cdbd shards answers
// /v1/query byte-identically to a standalone cdbd, for both the unary
// and the streaming endpoint.
func TestClusterHTTPByteIdentical(t *testing.T) {
	_, single := newShard(t, "single")
	sc := client.New(single.URL)

	// Record the single node's unary and stream responses separately:
	// a repeated unary statement is served whole from the result cache
	// (original sharing telemetry preserved), while a stream re-run
	// re-executes against the now-warm verdict cache — the cluster must
	// reproduce each behavior, not mix them.
	var want, wantStream []string
	var wantRounds [][]cdb.RoundUpdate
	for _, q := range clusterWorkload() {
		res, err := sc.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, normalize(t, res))
	}
	for _, q := range clusterWorkload() {
		var rounds []cdb.RoundUpdate
		res, err := sc.QueryStream(context.Background(), q, func(u cdb.RoundUpdate) {
			rounds = append(rounds, u)
		})
		if err != nil {
			t.Fatal(err)
		}
		wantRounds = append(wantRounds, rounds)
		wantStream = append(wantStream, normalize(t, res))
	}

	_, shardA := newShard(t, "a")
	_, shardB := newShard(t, "b")
	coord := newCoordinator(t, map[string]string{"a": shardA.URL, "b": shardB.URL})
	cc := client.New(coord.URL)

	for i, q := range clusterWorkload() {
		res, err := cc.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("statement %d via cluster: %v", i, err)
		}
		if got := normalize(t, res); got != want[i] {
			t.Fatalf("statement %d diverged over the cluster:\ncluster: %s\nsingle:  %s", i, got, want[i])
		}
	}
	for i, q := range clusterWorkload() {
		var rounds []cdb.RoundUpdate
		res, err := cc.QueryStream(context.Background(), q, func(u cdb.RoundUpdate) {
			rounds = append(rounds, u)
		})
		if err != nil {
			t.Fatalf("stream %d via cluster: %v", i, err)
		}
		if !reflect.DeepEqual(rounds, wantRounds[i]) {
			t.Fatalf("stream %d rounds diverged:\ncluster: %+v\nsingle:  %+v", i, rounds, wantRounds[i])
		}
		if got := normalize(t, res); got != wantStream[i] {
			t.Fatalf("stream %d result diverged:\ncluster: %s\nsingle:  %s", i, got, wantStream[i])
		}
	}
}

// TestClusterShardEndpoints exercises the shard protocol directly:
// health reports identity and fingerprint, deltas round-trip into a
// peer, and a fingerprint mismatch is refused with 409.
func TestClusterShardEndpoints(t *testing.T) {
	engA, shardA := newShard(t, "a")
	engB, shardB := newShard(t, "b")

	ba := cluster.NewHTTPBackend("a", shardA.URL, nil)
	bb := cluster.NewHTTPBackend("b", shardB.URL, nil)

	ha, err := ba.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ha.ID != "a" || ha.Fingerprint != engA.Fingerprint() || ha.Draining {
		t.Fatalf("shard a health = %+v", ha)
	}

	// Pay for crowd work on a, replicate to b over the wire.
	q := clusterWorkload()[0]
	if _, err := client.New(shardA.URL).Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	entries, seq, err := ba.CacheDelta(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || seq == 0 {
		t.Fatalf("no delta after a paid run: %d entries, seq %d", len(entries), seq)
	}
	n, err := bb.CacheApply(context.Background(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(entries) {
		t.Fatalf("imported %d of %d", n, len(entries))
	}
	if engB.Stats().RemoteImported == 0 {
		t.Fatal("import did not reach the engine")
	}

	// A caller with the wrong fingerprint must be refused loudly.
	body, _ := json.Marshal(cluster.ExecRequest{Query: q, Shards: []string{"a", "b"}, Fingerprint: "deadbeefdeadbeef"})
	resp, err := http.Post(shardA.URL+"/v1/cluster/exec", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("fingerprint mismatch returned %d, want 409", resp.StatusCode)
	}
}
