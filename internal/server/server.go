// Package server is cdbd's HTTP front-end over cdb.Engine: the layer
// that turns the in-process concurrent query engine into a deployable
// network service. It speaks the /v1 JSON wire protocol defined in
// package client (the structs are shared, so the two sides cannot
// drift), maps the engine's admission control onto HTTP semantics —
// ErrOverloaded becomes 429 with Retry-After, a draining server
// becomes 503 — and streams long-lived crowd queries round by round
// over NDJSON instead of blocking, because crowd answers trickle in
// over minutes and a remote caller deserves to watch them land.
//
// Graceful drain: Drain stops admission (every new /v1/query* request
// is shed with 503 + Retry-After) and waits for in-flight queries to
// finish, so every accepted query gets its response — including
// partial results of queries cut short by their own deadlines — before
// the process exits.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"cdb"
	"cdb/client"
	"cdb/internal/cluster"
	"cdb/internal/obs"
	"cdb/internal/reqid"
)

// Server metrics. Requests are counted overall and by status class
// (429 split out from the rest of 4xx because shed-by-backpressure and
// caller-error are different operational signals), and each endpoint
// gets its own end-to-end latency histogram — the RED triple an SLO is
// written against.
var (
	mRequests  = obs.Default.Counter("cdb_server_requests_total")
	mReq2xx    = obs.Default.Counter("cdb_server_requests_2xx_total")
	mReq4xx    = obs.Default.Counter("cdb_server_requests_4xx_total")
	mReq429    = obs.Default.Counter("cdb_server_requests_429_total")
	mReq5xx    = obs.Default.Counter("cdb_server_requests_5xx_total")
	mQueries   = obs.Default.Counter("cdb_server_queries_total")
	mStreams   = obs.Default.Counter("cdb_server_streams_total")
	mExplains  = obs.Default.Counter("cdb_server_explains_total")
	mShed      = obs.Default.Counter("cdb_server_shed_total")
	mDrainShed = obs.Default.Counter("cdb_server_drain_shed_total")

	mLatQuery   = obs.Default.Histogram("cdb_server_latency_query_seconds", obs.DurationBuckets)
	mLatStream  = obs.Default.Histogram("cdb_server_latency_stream_seconds", obs.DurationBuckets)
	mLatExplain = obs.Default.Histogram("cdb_server_latency_explain_seconds", obs.DurationBuckets)
	mLatTables  = obs.Default.Histogram("cdb_server_latency_tables_seconds", obs.DurationBuckets)
	mLatQueries = obs.Default.Histogram("cdb_server_latency_queries_seconds", obs.DurationBuckets)
	mLatOther   = obs.Default.Histogram("cdb_server_latency_other_seconds", obs.DurationBuckets)
)

func countStatus(code int) {
	switch {
	case code < 300:
		mReq2xx.Inc()
	case code == http.StatusTooManyRequests:
		mReq429.Inc()
	case code >= 400 && code < 500:
		mReq4xx.Inc()
	case code >= 500:
		mReq5xx.Inc()
	}
}

func latencyFor(path string) *obs.Histogram {
	switch path {
	case "/v1/query":
		return mLatQuery
	case "/v1/query/stream":
		return mLatStream
	case "/v1/explain":
		return mLatExplain
	case "/v1/tables":
		return mLatTables
	case "/v1/queries":
		return mLatQueries
	}
	return mLatOther
}

// Config assembles a Server.
type Config struct {
	// DB provides catalog introspection (/v1/tables). Required.
	DB *cdb.DB
	// Engine serves the queries. Required; the server owns neither its
	// construction nor (except via Drain) its shutdown ordering — but
	// Drain does call Engine.Close.
	Engine *cdb.Engine
	// Logger receives one line per request; nil discards.
	Logger *log.Logger
	// RetryAfter is the backoff hint attached to 429 and 503 responses
	// (header and payload). Zero means 1s.
	RetryAfter time.Duration
	// QueryLog receives one JSONL line per completed query at or above
	// its slowness threshold; nil disables.
	QueryLog *QueryLog
	// ShardID names this node in a cluster (reported by
	// /v1/cluster/health and used as the default coordinator label).
	// Empty means a standalone "cdbd".
	ShardID string
	// Fleet switches the server into coordinator mode: /v1/query and
	// /v1/query/stream route through it (scatter-gather across shards)
	// instead of the local engine, and /v1/cluster/shards exposes the
	// fleet view. The local engine still plans and serves the shard
	// endpoints. Nil means a standalone node.
	Fleet *cluster.Fleet
}

// Server is the HTTP serving layer. Create with New, expose with
// Handler, shut down with Drain.
type Server struct {
	db         *cdb.DB
	engine     *cdb.Engine
	log        *log.Logger
	retryAfter time.Duration
	qlog       *QueryLog
	mux        *http.ServeMux
	draining   atomic.Bool
	shardID    string
	fleet      *cluster.Fleet
	local      *cluster.LocalBackend
}

// New builds a server over an opened DB and its Engine.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil || cfg.Engine == nil {
		return nil, fmt.Errorf("server: Config.DB and Config.Engine are required")
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(nopWriter{}, "", 0)
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.ShardID == "" {
		cfg.ShardID = "cdbd"
	}
	s := &Server{
		db:         cfg.DB,
		engine:     cfg.Engine,
		log:        cfg.Logger,
		retryAfter: cfg.RetryAfter,
		qlog:       cfg.QueryLog,
		shardID:    cfg.ShardID,
		fleet:      cfg.Fleet,
	}
	s.local = cluster.NewLocalBackend(cfg.ShardID, cfg.Engine)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/query/stream", s.handleStream)
	s.mux.HandleFunc("/v1/explain", s.handleExplain)
	s.mux.HandleFunc("/v1/tables", s.handleTables)
	s.mux.HandleFunc("/v1/queries", s.handleQueries)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.registerCluster()
	debug := obs.NewServeMux(obs.Default)
	s.mux.Handle("/metrics", debug)
	s.mux.Handle("/debug/", debug)
	return s, nil
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// Handler returns the server's root handler. It wraps every route in
// the correlation middleware: the request's X-CDB-Request-ID is
// sanitized (or minted when absent), echoed on the response, and
// attached to the request context so it reaches the engine, every trace
// span, and the query log. An incoming W3C traceparent is continued
// (same trace ID, fresh parent span ID) or a new trace is started; the
// resulting traceparent is echoed too. The middleware also keeps the
// RED accounting: request counters by status class and per-endpoint
// end-to-end latency histograms.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mRequests.Inc()
		start := time.Now()
		cor := reqid.Correlation{RequestID: reqid.Sanitize(r.Header.Get(client.HeaderRequestID))}
		if cor.RequestID == "" {
			cor.RequestID = reqid.New()
		}
		if tp, ok := reqid.ParseTraceParent(r.Header.Get(client.HeaderTraceParent)); ok {
			cor.TraceParent = tp.Child().String()
		} else {
			cor.TraceParent = reqid.NewTraceParent().String()
		}
		w.Header().Set(client.HeaderRequestID, cor.RequestID)
		w.Header().Set(client.HeaderTraceParent, cor.TraceParent)
		r = r.WithContext(reqid.With(r.Context(), cor))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		countStatus(sw.status)
		latencyFor(r.URL.Path).Observe(elapsed.Seconds())
		s.log.Printf("%s %s %s -> %d (%s)", cor.RequestID, r.Method, r.URL.Path, sw.status, elapsed.Round(time.Millisecond))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming works through the
// logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the server's query side: new submissions are
// shed with 503 immediately, and Drain blocks until every in-flight
// and queued query has finished — their handlers then write complete
// (or deadline-partial) responses. Call before http.Server.Shutdown,
// which in turn waits for those final writes. Idempotent.
func (s *Server) Drain() {
	if s.draining.Swap(true) {
		return
	}
	s.log.Printf("drain: admission stopped, waiting for in-flight queries")
	s.engine.Close()
	s.log.Printf("drain: in-flight queries finished")
}

// readRequest decodes a QueryRequest, bounding the body.
func readRequest(r *http.Request) (client.QueryRequest, error) {
	var req client.QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %v", err)
	}
	if req.Query == "" {
		return req, fmt.Errorf("empty query")
	}
	return req, nil
}

// queryContext applies the request's server-side deadline.
func queryContext(r *http.Request, req client.QueryRequest) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		return context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
	}
	return ctx, func() {}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "POST only"})
		return
	}
	mQueries.Inc()
	if s.shedIfDraining(w) {
		return
	}
	req, err := readRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, &client.ErrorPayload{Code: client.CodeBadRequest, Message: err.Error()})
		return
	}
	if s.fleet != nil {
		s.queryFleet(w, r, req)
		return
	}
	ctx, cancel := queryContext(r, req)
	defer cancel()
	start := time.Now()
	fut, err := s.engine.Submit(ctx, req.Query)
	if err != nil {
		s.writeMappedError(w, err)
		s.logQuery("query", r, req.Query, nil, err, time.Since(start))
		return
	}
	// Wait on a background context: the Submit ctx still governs the
	// query (deadline → graceful partial result at a round boundary,
	// disconnect → cancellation), but waiting must survive the deadline
	// to collect that partial result instead of racing it.
	res, err := fut.Result(context.Background())
	if err != nil {
		s.writeMappedError(w, err)
		s.logQuery("query", r, req.Query, nil, err, time.Since(start))
		return
	}
	s.writeJSON(w, http.StatusOK, res)
	s.logQuery("query", r, req.Query, res, nil, time.Since(start))
}

// logQuery records one completed query into the structured query log,
// deriving the terminal status and economics from the result or error.
func (s *Server) logQuery(endpoint string, r *http.Request, query string, res *cdb.Result, err error, latency time.Duration) {
	entry := QueryLogEntry{
		RequestID: reqid.From(r.Context()).RequestID,
		Endpoint:  endpoint,
		Query:     query,
		Status:    http.StatusOK,
	}
	if err != nil {
		entry.Status, _ = mapError(err, s.retryAfter)
		entry.Error = err.Error()
	} else if res != nil {
		entry.Rounds = res.Stats.Rounds
		entry.Tasks = res.Stats.Tasks
		entry.Assignments = res.Stats.Assignments
		entry.HITs = res.Stats.HITs
		entry.Partial = res.Stats.Partial
		entry.Reason = res.Stats.Reason
	}
	s.qlog.Record(entry, latency)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "POST only"})
		return
	}
	mStreams.Inc()
	if s.shedIfDraining(w) {
		return
	}
	req, err := readRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, &client.ErrorPayload{Code: client.CodeBadRequest, Message: err.Error()})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, &client.ErrorPayload{Code: client.CodeInternal, Message: "response writer cannot stream"})
		return
	}
	if s.fleet != nil {
		s.streamFleet(w, r, req, flusher)
		return
	}
	ctx, cancel := queryContext(r, req)
	defer cancel()
	start := time.Now()

	// The progress hook runs on the query goroutine; hand updates to
	// the handler goroutine through a channel. Sends block rather than
	// drop — every completed round must reach the wire — and bail out
	// on ctx so an aborted request cannot wedge the query.
	updates := make(chan cdb.RoundUpdate, 16)
	fut, err := s.engine.SubmitWithProgress(ctx, req.Query, func(u cdb.RoundUpdate) {
		select {
		case updates <- u:
		case <-ctx.Done():
		}
	})
	if err != nil {
		s.writeMappedError(w, err)
		s.logQuery("stream", r, req.Query, nil, err, time.Since(start))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	emit := func(ev client.StreamEvent) {
		// Write errors mean the client went away; the ctx above
		// cancels the query, nothing to do here.
		_ = enc.Encode(ev)
		flusher.Flush()
	}

	// With the greedy planner on, the stream opens with the plan the
	// rounds will follow — before any round event, so a watching client
	// knows the join order and early-exit points up front. Old clients
	// skip the unknown event type. Best-effort: a plan that fails to
	// build will fail identically inside the query, which reports the
	// error in-band.
	if s.engine.PlannerEnabled() {
		if p, perr := s.engine.Explain(req.Query); perr == nil {
			emit(client.StreamEvent{Type: client.EventPlan, Plan: p})
		}
	}

	for {
		select {
		case u := <-updates:
			emit(client.StreamEvent{Type: client.EventRound, Round: &u})
		case <-fut.Done():
			// Every progress send happens before the future completes,
			// so once Done fires the remaining updates are buffered:
			// drain them in order, then emit the terminal event.
			for {
				select {
				case u := <-updates:
					emit(client.StreamEvent{Type: client.EventRound, Round: &u})
					continue
				default:
				}
				break
			}
			res, err := fut.Result(context.Background())
			if err != nil {
				status, p := mapError(err, s.retryAfter)
				_ = status // already streaming: the error travels in-band
				emit(client.StreamEvent{Type: client.EventError, Error: p})
			} else {
				emit(client.StreamEvent{Type: client.EventResult, Result: res})
			}
			s.logQuery("stream", r, req.Query, res, err, time.Since(start))
			return
		}
	}
}

// handleExplain serves POST /v1/explain: plan the query without
// executing it and return the wire-ready cdb.Plan. EXPLAIN issues zero
// crowd assignments, so — like /v1/queries — it stays available while
// the server drains. Non-SELECT targets map to a typed 400
// (CodeUnsupported) through the usual error mapping.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "POST only"})
		return
	}
	mExplains.Inc()
	req, err := readRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, &client.ErrorPayload{Code: client.CodeBadRequest, Message: err.Error()})
		return
	}
	start := time.Now()
	plan, err := s.engine.Explain(req.Query)
	if err != nil {
		s.writeMappedError(w, err)
		s.logQuery("explain", r, req.Query, nil, err, time.Since(start))
		return
	}
	s.writeJSON(w, http.StatusOK, plan)
	s.logQuery("explain", r, req.Query, nil, nil, time.Since(start))
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "GET only"})
		return
	}
	s.writeJSON(w, http.StatusOK, client.TablesResponse{Tables: s.db.TableNames()})
}

// handleQueries serves the live query table. It is deliberately not
// behind shedIfDraining: watching the drain progress is exactly when an
// operator needs it most.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "GET only"})
		return
	}
	snap := s.engine.Queries()
	resp := client.QueriesResponse{
		InFlight: make([]client.QueryInfo, 0, len(snap.InFlight)),
		Recent:   make([]client.QueryInfo, 0, len(snap.Recent)),
	}
	for _, st := range snap.InFlight {
		resp.InFlight = append(resp.InFlight, queryInfo(st))
	}
	for _, st := range snap.Recent {
		resp.Recent = append(resp.Recent, queryInfo(st))
	}
	if ls := s.engine.LedgerStats(); ls.Enabled {
		resp.Ledger = &client.LedgerInfo{
			Replayed:      ls.Replayed,
			TornTruncated: ls.TornTruncations,
			Appended:      ls.Appended,
			Compactions:   ls.Compactions,
			Hits:          ls.Hits,
			Verdicts:      ls.Verdicts,
			Statements:    ls.Statements,
			Answers:       ls.Answers,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// queryInfo maps the engine's introspection record onto the wire form.
func queryInfo(st cdb.QueryStatus) client.QueryInfo {
	return client.QueryInfo{
		ID:          st.ID,
		RequestID:   st.RequestID,
		Query:       st.Statement,
		State:       st.State,
		ElapsedMs:   st.ElapsedMs,
		Rounds:      st.Rounds,
		Tasks:       st.Tasks,
		Assignments: st.Assignments,
		Open:        st.Open,
		HITs:        st.HITs,
		Coalesced:   st.Coalesced,
		Cached:      st.Cached,
		Ledger:      st.Ledger,

		Plan:           st.Plan,
		PlanEarlyExits: st.PlanEarlyExits,

		Error: st.Err,
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]string{"status": status})
}

// shedIfDraining rejects the request with 503 when the server is
// draining; accepted queries keep running to completion.
func (s *Server) shedIfDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	mDrainShed.Inc()
	s.setRetryAfter(w)
	s.writeError(w, http.StatusServiceUnavailable, &client.ErrorPayload{
		Code:         client.CodeDraining,
		Message:      "server is draining; retry against another replica",
		RetryAfterMs: s.retryAfter.Milliseconds(),
	})
	return true
}

// mapError translates the library's typed errors into HTTP status +
// wire payload. This is why the satellite work of this layer insisted
// on sentinels: the mapping is errors.Is/As, not string matching.
func mapError(err error, retryAfter time.Duration) (int, *client.ErrorPayload) {
	var pe *cdb.ParseError
	switch {
	case errors.Is(err, cdb.ErrOverloaded):
		return http.StatusTooManyRequests, &client.ErrorPayload{
			Code:         client.CodeOverloaded,
			Message:      "engine overloaded; retry later",
			RetryAfterMs: retryAfter.Milliseconds(),
		}
	case errors.Is(err, cdb.ErrEngineClosed):
		return http.StatusServiceUnavailable, &client.ErrorPayload{
			Code:         client.CodeDraining,
			Message:      "engine closed",
			RetryAfterMs: retryAfter.Milliseconds(),
		}
	case errors.As(err, &pe):
		off := pe.Offset
		return http.StatusBadRequest, &client.ErrorPayload{
			Code:    client.CodeParse,
			Message: pe.Msg,
			Offset:  &off,
			Near:    pe.Near,
		}
	case errors.Is(err, cdb.ErrEngineUnsupported):
		return http.StatusBadRequest, &client.ErrorPayload{
			Code:    client.CodeUnsupported,
			Message: err.Error(),
		}
	case errors.Is(err, cdb.ErrUnknownTable):
		return http.StatusNotFound, &client.ErrorPayload{
			Code:    client.CodeUnknownTable,
			Message: err.Error(),
		}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, &client.ErrorPayload{
			Code:    client.CodeTimeout,
			Message: "deadline elapsed before the query completed",
		}
	case errors.Is(err, cluster.ErrFingerprint):
		// A mixed-seed fleet: refusing loudly beats returning rows that
		// depend on which shard ran them.
		return http.StatusConflict, &client.ErrorPayload{
			Code:    client.CodeBadRequest,
			Message: err.Error(),
		}
	case errors.Is(err, cluster.ErrDegraded):
		return http.StatusServiceUnavailable, &client.ErrorPayload{
			Code:         client.CodeInternal,
			Message:      err.Error(),
			RetryAfterMs: retryAfter.Milliseconds(),
		}
	default:
		return http.StatusInternalServerError, &client.ErrorPayload{
			Code:    client.CodeInternal,
			Message: err.Error(),
		}
	}
}

func (s *Server) writeMappedError(w http.ResponseWriter, err error) {
	status, p := mapError(err, s.retryAfter)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		mShed.Inc()
		s.setRetryAfter(w)
	}
	s.writeError(w, status, p)
}

func (s *Server) setRetryAfter(w http.ResponseWriter) {
	secs := int(s.retryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}

func (s *Server) writeError(w http.ResponseWriter, status int, p *client.ErrorPayload) {
	s.writeJSON(w, status, p)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
