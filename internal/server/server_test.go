package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cdb"
	"cdb/client"
)

// testQueries are textually distinct SELECTs over the running-example
// dataset, so no two share whole answers in the engine's result cache.
var testQueries = []string{
	`SELECT * FROM Paper, Researcher WHERE Paper.author CROWDJOIN Researcher.name;`,
	`SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title;`,
	`SELECT * FROM Researcher, University WHERE Researcher.affiliation CROWDJOIN University.name;`,
	`SELECT Paper.title, Researcher.name FROM Paper, Researcher, Citation
	   WHERE Paper.author CROWDJOIN Researcher.name AND Paper.title CROWDJOIN Citation.title;`,
}

// newTestDB opens the canonical test instance. Equal seeds must yield
// bit-identical verdicts no matter which side of the wire runs them.
func newTestDB(t *testing.T, opts ...cdb.Option) *cdb.DB {
	t.Helper()
	db := cdb.Open(append([]cdb.Option{
		cdb.WithDataset("example", 0, 1),
		cdb.WithWorkers(30, 0.9, 0.05),
		cdb.WithSeed(7),
	}, opts...)...)
	if err := db.Err(); err != nil {
		t.Fatal(err)
	}
	return db
}

func newTestServer(t *testing.T, db *cdb.DB, eopts ...cdb.EngineOption) (*Server, *cdb.Engine, *httptest.Server) {
	t.Helper()
	eng, err := db.NewEngine(eopts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{DB: db, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, eng, hs
}

// TestServerDeterminism is the wire-transparency guarantee: for the
// same engine seed, results fetched through cdbd over HTTP are
// bit-identical — rows, Stats, Confidence, Message — to in-process
// Engine.Submit.
func TestServerDeterminism(t *testing.T) {
	ctx := context.Background()

	// In-process reference: same DB options, its own engine.
	refDB := newTestDB(t)
	refEng, err := refDB.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	defer refEng.Close()
	var want []*cdb.Result
	for _, q := range testQueries {
		fut, err := refEng.Submit(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fut.Result(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	// Server-mediated: an identically-seeded DB behind HTTP.
	_, eng, hs := newTestServer(t, newTestDB(t))
	defer eng.Close()
	c := client.New(hs.URL)
	for i, q := range testQueries {
		got, err := c.Query(ctx, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		got.Trace, want[i].Trace = nil, nil
		// The server mints a fresh correlation ID per request; identity
		// lives outside the determinism contract.
		got.RequestID, want[i].RequestID = "", ""
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("query %d: server-mediated result differs from in-process\ngot  %+v\nwant %+v", i, got, want[i])
		}
	}
}

// TestServerStreamRounds runs 8 concurrent streaming clients and pins
// the core stream invariant: the number of round events delivered to
// each client equals its final Stats.Rounds, and rounds arrive in
// order with monotone totals.
func TestServerStreamRounds(t *testing.T) {
	_, eng, hs := newTestServer(t, newTestDB(t))
	defer eng.Close()
	ctx := context.Background()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client.New(hs.URL)
			q := testQueries[i%len(testQueries)]
			var rounds []cdb.RoundUpdate
			res, err := c.QueryStream(ctx, q, func(u cdb.RoundUpdate) { rounds = append(rounds, u) })
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			if len(rounds) != res.Stats.Rounds {
				errs <- fmt.Errorf("client %d: %d round events, final Stats.Rounds %d", i, len(rounds), res.Stats.Rounds)
				return
			}
			for j, u := range rounds {
				if u.Round != j+1 {
					errs <- fmt.Errorf("client %d: event %d has round %d", i, j, u.Round)
					return
				}
			}
			if n := len(rounds); n > 0 {
				last := rounds[n-1]
				if last.TasksTotal != res.Stats.Tasks {
					// The final strategy probe can add extra-task
					// accounting after the last round only for ER
					// baselines, which the engine does not run: totals
					// must agree.
					errs <- fmt.Errorf("client %d: last event TasksTotal %d, Stats.Tasks %d", i, last.TasksTotal, res.Stats.Tasks)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// slowOracle pins every ground-truth probe with a delay, stretching
// planning so tests can hold queries in flight deterministically.
type slowOracle struct{ delay time.Duration }

func (o slowOracle) JoinMatch(_, _, _, _, l, r string) bool {
	time.Sleep(o.delay)
	return strings.EqualFold(l, r)
}
func (o slowOracle) SelMatch(_, _, v, c string) bool {
	time.Sleep(o.delay)
	return strings.EqualFold(v, c)
}

// gateOracle blocks every ground-truth probe on release while hold is
// set, wedging admitted queries in planning so an overload test can
// count sheds without racing query completion.
type gateOracle struct {
	hold    atomic.Bool
	release chan struct{}
}

func (o *gateOracle) wait() {
	if o.hold.Load() {
		<-o.release
	}
}
func (o *gateOracle) JoinMatch(_, _, _, _, l, r string) bool {
	o.wait()
	return strings.EqualFold(l, r)
}
func (o *gateOracle) SelMatch(_, _, v, c string) bool {
	o.wait()
	return strings.EqualFold(v, c)
}

// TestServerOverload maps admission control onto HTTP: requests beyond
// MaxInFlight+MaxQueue shed with 429 + Retry-After (and unwrap to
// cdb.ErrOverloaded), while sequential submissions — never above the
// in-flight bound — must see no 429 at all. The gated oracle makes the
// count exact: the engine's admit token is held until a query
// finishes, and no admitted query can finish while the gate is down,
// so a burst of 8 against capacity 2 sheds exactly 6.
func TestServerOverload(t *testing.T) {
	gate := &gateOracle{release: make(chan struct{})}
	db := newTestDB(t, cdb.WithOracle(gate))
	// The result cache is disabled so admitted burst queries execute
	// (and wedge on the gate) instead of returning a shared answer.
	_, eng, hs := newTestServer(t, db,
		cdb.WithMaxInFlight(1), cdb.WithMaxQueue(1), cdb.WithResultCache(-1))
	defer eng.Close()
	ctx := context.Background()
	c := client.New(hs.URL)

	// Below capacity: sequential queries never overlap, no 429s.
	for i := 0; i < 3; i++ {
		if _, err := c.Query(ctx, testQueries[i]); err != nil {
			t.Fatalf("sequential query %d: %v", i, err)
		}
	}

	// Above capacity: 8 concurrent queries against 1 in-flight + 1
	// queued slots, with the slot holders wedged on the gate.
	gate.hold.Store(true)
	const burst = 8
	const capacity = 2
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		go func(i int) {
			_, err := c.Query(ctx, testQueries[i%len(testQueries)])
			errs <- err
		}(i)
	}

	// Exactly burst-capacity requests shed — and they must shed, since
	// both admitted queries are wedged until the gate opens.
	for i := 0; i < burst-capacity; i++ {
		err := <-errs
		if !errors.Is(err, cdb.ErrOverloaded) {
			t.Fatalf("over-capacity request %d = %v, want cdb.ErrOverloaded", i, err)
		}
		var ae *client.APIError
		if !errors.As(err, &ae) {
			t.Fatalf("shed error is not an *client.APIError: %v", err)
		}
		if ae.Status != 429 {
			t.Errorf("shed status = %d, want 429", ae.Status)
		}
		if ae.RetryAfter <= 0 {
			t.Errorf("429 without a Retry-After hint")
		}
	}

	// Open the gate: both admitted queries run to completion.
	close(gate.release)
	for i := 0; i < capacity; i++ {
		if err := <-errs; err != nil {
			t.Errorf("admitted query failed: %v", err)
		}
	}
}

// TestServerDrain pins graceful shutdown: every query accepted before
// the drain completes with a full result, and submissions during the
// drain shed with 503/draining.
func TestServerDrain(t *testing.T) {
	db := newTestDB(t, cdb.WithOracle(slowOracle{delay: 2 * time.Millisecond}))
	srv, eng, hs := newTestServer(t, db, cdb.WithMaxInFlight(2), cdb.WithMaxQueue(8))
	ctx := context.Background()
	c := client.New(hs.URL)

	const queries = 6
	results := make(chan error, queries)
	for i := 0; i < queries; i++ {
		go func(i int) {
			res, err := c.Query(ctx, testQueries[i%len(testQueries)])
			if err == nil && len(res.Columns) == 0 {
				err = fmt.Errorf("empty result")
			}
			results <- err
		}(i)
	}

	// Wait until the engine has admitted all six, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Stats().Submitted < queries {
		if time.Now().After(deadline) {
			t.Fatalf("engine admitted %d of %d queries before deadline", eng.Stats().Submitted, queries)
		}
		time.Sleep(time.Millisecond)
	}
	srv.Drain()

	// Zero accepted queries lost: all six must have completed.
	for i := 0; i < queries; i++ {
		if err := <-results; err != nil {
			t.Errorf("accepted query lost to drain: %v", err)
		}
	}

	// New work is shed with 503 + draining while the handler drains.
	_, err := c.Query(ctx, testQueries[0])
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 503 || ae.Code != client.CodeDraining {
		t.Fatalf("query during drain = %v, want 503/draining", err)
	}
	if !errors.Is(err, cdb.ErrEngineClosed) {
		t.Errorf("draining error does not unwrap to cdb.ErrEngineClosed: %v", err)
	}
	// Streaming endpoint sheds identically.
	_, err = c.QueryStream(ctx, testQueries[0], nil)
	if !errors.As(err, &ae) || ae.Status != 503 {
		t.Fatalf("stream during drain = %v, want 503", err)
	}
}

// TestServerErrorMapping pins the HTTP semantics of the library's
// typed errors across the wire: parse errors carry their offset, an
// unknown table is 404, and both unwrap back to the same typed values
// a local caller would see.
func TestServerErrorMapping(t *testing.T) {
	_, eng, hs := newTestServer(t, newTestDB(t))
	defer eng.Close()
	ctx := context.Background()
	c := client.New(hs.URL)

	// CQL syntax error → 400 + *cdb.ParseError with position.
	_, err := c.Query(ctx, "SELEC * FROM Paper;")
	var pe *cdb.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("parse failure = %v, want *cdb.ParseError", err)
	}
	if pe.Offset != 0 || pe.Near != "SELEC" {
		t.Errorf("ParseError = offset %d near %q, want offset 0 near \"SELEC\"", pe.Offset, pe.Near)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Errorf("parse failure status = %v, want 400", err)
	}

	// Unknown table → 404 + cdb.ErrUnknownTable.
	_, err = c.Query(ctx, "SELECT * FROM Nonesuch, Paper WHERE Nonesuch.a CROWDJOIN Paper.title;")
	if !errors.Is(err, cdb.ErrUnknownTable) {
		t.Fatalf("unknown table = %v, want cdb.ErrUnknownTable", err)
	}
	if !errors.As(err, &ae) || ae.Status != 404 {
		t.Errorf("unknown-table status = %v, want 404", err)
	}

	// Unsupported statement → 400 + cdb.ErrEngineUnsupported.
	_, err = c.Query(ctx, "FILL Researcher.gender;")
	if !errors.Is(err, cdb.ErrEngineUnsupported) {
		t.Fatalf("unsupported statement = %v, want cdb.ErrEngineUnsupported", err)
	}

	// Tables endpoint lists the catalog.
	tables, err := c.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Citation", "Paper", "Researcher", "University"}
	if !reflect.DeepEqual(tables, want) {
		t.Errorf("Tables() = %v, want %v", tables, want)
	}
}

// TestServerSharedIdentical submits the same statement twice and pins
// that the whole-answer share is served bit-identically (modulo the
// sharing message suffix the engine itself documents).
func TestServerSharedIdentical(t *testing.T) {
	_, eng, hs := newTestServer(t, newTestDB(t))
	defer eng.Close()
	ctx := context.Background()
	c := client.New(hs.URL)

	first, err := c.Query(ctx, testQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Query(ctx, testQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) || !reflect.DeepEqual(first.Columns, second.Columns) {
		t.Errorf("identical statement served different answers across the wire")
	}
	if eng.Stats().QueriesCached+eng.Stats().QueriesAttached == 0 {
		t.Errorf("second identical query did not share the whole answer")
	}
}

// TestServerExplain pins POST /v1/explain and the EXPLAIN-first query
// API over the wire: the plan round-trips (directly and via the
// EXPLAIN verb), spends zero crowd work, non-SELECT targets map to a
// typed 400, and planner-enabled streams lead with a "plan" event.
func TestServerExplain(t *testing.T) {
	ctx := context.Background()
	_, eng, hs := newTestServer(t, newTestDB(t, cdb.WithPlanner(cdb.PlannerConfig{Greedy: true})))
	defer eng.Close()
	c := client.New(hs.URL)

	p, err := c.Explain(ctx, testQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !p.Greedy || p.JoinOrder == "" || len(p.Steps) == 0 {
		t.Fatalf("explain plan = %+v, want a populated greedy plan", p)
	}
	if p.PredictedTasks <= 0 {
		t.Errorf("predicted tasks = %d, want > 0", p.PredictedTasks)
	}

	// The EXPLAIN verb unwraps to the same plan.
	pv, err := c.Explain(ctx, "EXPLAIN "+testQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if pv.JoinOrder != p.JoinOrder || pv.PredictedTasks != p.PredictedTasks {
		t.Errorf("EXPLAIN verb plan %q/%d differs from direct %q/%d",
			pv.JoinOrder, pv.PredictedTasks, p.JoinOrder, p.PredictedTasks)
	}

	// Zero crowd spend: explaining registers no query and issues no work.
	qs, err := c.Queries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.InFlight)+len(qs.Recent) != 0 {
		t.Errorf("explain registered queries: in-flight %d, recent %d", len(qs.InFlight), len(qs.Recent))
	}
	if st := eng.Stats(); st.AssignmentsIssued != 0 {
		t.Errorf("explain issued %d crowd assignments, want 0", st.AssignmentsIssued)
	}

	// Non-SELECT target → typed 400 unwrapping to ErrEngineUnsupported.
	_, err = c.Explain(ctx, "CREATE TABLE X (a varchar(8));")
	if !errors.Is(err, cdb.ErrEngineUnsupported) {
		t.Fatalf("explain DDL = %v, want cdb.ErrEngineUnsupported", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 400 || ae.Code != client.CodeUnsupported {
		t.Errorf("explain DDL error = %+v, want status 400 code %q", ae, client.CodeUnsupported)
	}

	// Planner-enabled streams emit the plan before any round, and the
	// executed query's Result carries the same plan.
	var sawPlan *cdb.Plan
	rounds := 0
	res, err := c.QueryStream(ctx, testQueries[0], func(cdb.RoundUpdate) { rounds++ })
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Plan.JoinOrder != p.JoinOrder {
		t.Fatalf("streamed result plan = %+v, want join order %q", res.Plan, p.JoinOrder)
	}
	sawPlan = streamPlanEvent(t, hs.URL, testQueries[0])
	if sawPlan == nil || sawPlan.JoinOrder != p.JoinOrder {
		t.Errorf("first stream event plan = %+v, want join order %q", sawPlan, p.JoinOrder)
	}
	_ = rounds
}

// streamPlanEvent posts one streaming query and returns the plan from
// its first event, failing if the first event is not a "plan".
func streamPlanEvent(t *testing.T, baseURL, query string) *cdb.Plan {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/query/stream", "application/json",
		strings.NewReader(fmt.Sprintf(`{"query":%q}`, query)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev client.StreamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type != client.EventPlan {
			t.Fatalf("first stream event type %q, want %q", ev.Type, client.EventPlan)
		}
		io.Copy(io.Discard, resp.Body)
		return ev.Plan
	}
	t.Fatal("stream ended without events")
	return nil
}
