// Cluster endpoints: the shard side of the scatter-gather protocol
// (execute a component slice, serve and accept verdict-cache deltas,
// report health) plus the coordinator's fleet routing and
// introspection. Every cdbd exposes the shard endpoints — any node
// can be drafted into a fleet — while /v1/query transparently routes
// through the Fleet when the server runs in coordinator mode.

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cdb"
	"cdb/client"
	"cdb/internal/cluster"
	"cdb/internal/obs"
)

var (
	mClusterExec    = obs.Default.Counter("cdb_server_cluster_exec_total")
	mClusterApplied = obs.Default.Counter("cdb_server_cluster_applied_total")
)

// registerCluster mounts the cluster routes; called from New.
func (s *Server) registerCluster() {
	s.mux.HandleFunc("/v1/cluster/exec", s.handleClusterExec)
	s.mux.HandleFunc("/v1/cluster/exec/stream", s.handleClusterExecStream)
	s.mux.HandleFunc("/v1/cache/delta", s.handleCacheDelta)
	s.mux.HandleFunc("/v1/cache/apply", s.handleCacheApply)
	s.mux.HandleFunc("/v1/cluster/health", s.handleClusterHealth)
	if s.fleet != nil {
		s.mux.HandleFunc("/v1/cluster/shards", s.handleClusterShards)
	}
}

// queryFleet serves /v1/query in coordinator mode: route through the
// fleet instead of the local engine. TimeoutMs travels to the shards,
// so deadline-partial results come back as results, not errors.
func (s *Server) queryFleet(w http.ResponseWriter, r *http.Request, req client.QueryRequest) {
	start := time.Now()
	res, err := s.fleet.Exec(r.Context(), req.Query, req.TimeoutMs)
	if err != nil {
		s.writeMappedError(w, err)
		s.logQuery("query", r, req.Query, nil, err, time.Since(start))
		return
	}
	s.writeJSON(w, http.StatusOK, res)
	s.logQuery("query", r, req.Query, res, nil, time.Since(start))
}

// streamFleet serves /v1/query/stream in coordinator mode: merged
// round events from the scattered slices, then the merged result. The
// statement is validated on the planner first so submission errors
// still map to their status codes instead of arriving in-band.
func (s *Server) streamFleet(w http.ResponseWriter, r *http.Request, req client.QueryRequest, flusher http.Flusher) {
	start := time.Now()
	if err := s.fleet.Plan(req.Query); err != nil {
		s.writeMappedError(w, err)
		s.logQuery("stream", r, req.Query, nil, err, time.Since(start))
		return
	}
	ctx := r.Context()
	updates := make(chan cdb.RoundUpdate, 16)
	type outcome struct {
		res *cdb.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := s.fleet.ExecStream(ctx, req.Query, req.TimeoutMs, func(u cdb.RoundUpdate) {
			select {
			case updates <- u:
			case <-ctx.Done():
			}
		})
		done <- outcome{res, err}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	emit := func(ev client.StreamEvent) {
		_ = enc.Encode(ev)
		flusher.Flush()
	}
	for {
		select {
		case u := <-updates:
			emit(client.StreamEvent{Type: client.EventRound, Round: &u})
		case out := <-done:
			// Merged round deliveries happen before ExecStream returns:
			// once done fires the rest are buffered, drain in order.
			for {
				select {
				case u := <-updates:
					emit(client.StreamEvent{Type: client.EventRound, Round: &u})
					continue
				default:
				}
				break
			}
			if out.err != nil {
				_, p := mapError(out.err, s.retryAfter)
				emit(client.StreamEvent{Type: client.EventError, Error: p})
			} else {
				emit(client.StreamEvent{Type: client.EventResult, Result: out.res})
			}
			s.logQuery("stream", r, req.Query, out.res, out.err, time.Since(start))
			return
		}
	}
}

// handleClusterExec executes one (possibly component-restricted)
// statement for a coordinator and returns the slice plus the verdict
// delta since the caller's cursor.
func (s *Server) handleClusterExec(w http.ResponseWriter, r *http.Request) {
	req, ok := s.readClusterExec(w, r)
	if !ok {
		return
	}
	resp, err := s.local.Exec(r.Context(), req)
	if err != nil {
		s.writeMappedError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleClusterExecStream is handleClusterExec over NDJSON frames:
// round events as they complete, then one final (or error) frame.
func (s *Server) handleClusterExecStream(w http.ResponseWriter, r *http.Request) {
	req, ok := s.readClusterExec(w, r)
	if !ok {
		return
	}
	flusher, fok := w.(http.Flusher)
	if !fok {
		s.writeError(w, http.StatusInternalServerError, &client.ErrorPayload{Code: client.CodeInternal, Message: "response writer cannot stream"})
		return
	}
	ctx := r.Context()
	updates := make(chan cdb.RoundUpdate, 16)
	type outcome struct {
		resp *cluster.ExecResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := s.local.ExecStream(ctx, req, func(u cdb.RoundUpdate) {
			select {
			case updates <- u:
			case <-ctx.Done():
			}
		})
		done <- outcome{resp, err}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	emit := func(fr cluster.StreamFrame) {
		_ = enc.Encode(fr)
		flusher.Flush()
	}
	for {
		select {
		case u := <-updates:
			emit(cluster.StreamFrame{Type: "round", Round: &u})
		case out := <-done:
			// Progress sends happen before completion: drain the
			// buffered tail in order, then terminate the stream.
			for {
				select {
				case u := <-updates:
					emit(cluster.StreamFrame{Type: "round", Round: &u})
					continue
				default:
				}
				break
			}
			if out.err != nil {
				_, p := mapError(out.err, s.retryAfter)
				emit(cluster.StreamFrame{Type: "error", Error: p})
			} else {
				emit(cluster.StreamFrame{Type: "final", Final: out.resp})
			}
			return
		}
	}
}

// readClusterExec decodes and admission-checks a cluster exec request.
func (s *Server) readClusterExec(w http.ResponseWriter, r *http.Request) (cluster.ExecRequest, bool) {
	var req cluster.ExecRequest
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "POST only"})
		return req, false
	}
	mClusterExec.Inc()
	if s.shedIfDraining(w) {
		return req, false
	}
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, &client.ErrorPayload{Code: client.CodeBadRequest, Message: fmt.Sprintf("bad request body: %v", err)})
		return req, false
	}
	if req.Query == "" {
		s.writeError(w, http.StatusBadRequest, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "empty query"})
		return req, false
	}
	return req, true
}

// handleCacheDelta serves the shard's settled verdicts after ?since=N
// (a full dump when N precedes the retained log).
func (s *Server) handleCacheDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "GET only"})
		return
	}
	var since int64
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "bad since parameter"})
			return
		}
		since = v
	}
	entries, seq := s.engine.CacheDelta(since)
	s.writeJSON(w, http.StatusOK, cluster.DeltaResponse{Entries: entries, Seq: seq})
}

// handleCacheApply imports verdicts replicated from a peer shard.
// Draining deliberately does not shed it: accepting replication while
// finishing in-flight queries only makes the eventual restart warmer.
func (s *Server) handleCacheApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "POST only"})
		return
	}
	var req cluster.ApplyRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 32<<20))
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, &client.ErrorPayload{Code: client.CodeBadRequest, Message: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	n := s.engine.ImportVerdicts(req.Entries)
	mClusterApplied.Add(int64(n))
	s.writeJSON(w, http.StatusOK, cluster.ApplyResponse{Imported: n})
}

// handleClusterHealth reports this node's shard identity, engine
// fingerprint and admission pressure — the inputs of a coordinator's
// routing decisions.
func (s *Server) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "GET only"})
		return
	}
	executing, queued := s.engine.QueueDepth()
	s.writeJSON(w, http.StatusOK, cluster.HealthResponse{
		ID:          s.shardID,
		Fingerprint: s.engine.Fingerprint(),
		Executing:   executing,
		Queued:      queued,
		CacheSeq:    s.engine.CacheSeq(),
		Draining:    s.draining.Load(),
	})
}

// handleClusterShards reports the coordinator's view of the fleet.
func (s *Server) handleClusterShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, &client.ErrorPayload{Code: client.CodeBadRequest, Message: "GET only"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"shards": s.fleet.Health(r.Context())})
}
