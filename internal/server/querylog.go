package server

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// QueryLogEntry is one line of the structured query log: everything an
// operator needs to find, explain and re-run one query after the fact.
// The RequestID is the join key against client logs, trace spans
// (Span.Req) and the access log.
type QueryLogEntry struct {
	// TS is the completion time, RFC3339 with nanoseconds, UTC.
	TS string `json:"ts"`
	// RequestID is the correlation ID the request ran under.
	RequestID string `json:"request_id,omitempty"`
	// Endpoint is "query" or "stream".
	Endpoint string `json:"endpoint"`
	// Query is the submitted CQL text.
	Query string `json:"query"`
	// Status is the HTTP status the request resolved to (for streams,
	// the status the terminal event maps to).
	Status int `json:"status"`
	// LatencyMs is submission-to-response time.
	LatencyMs int64 `json:"latency_ms"`
	// Rounds..HITs are the query's final crowd economics (success only).
	Rounds      int `json:"rounds,omitempty"`
	Tasks       int `json:"tasks,omitempty"`
	Assignments int `json:"assignments,omitempty"`
	HITs        int `json:"hits,omitempty"`
	// Partial and Reason mirror Stats.Partial: the query returned a
	// degraded answer and why (deadline, budget, ...).
	Partial bool   `json:"partial,omitempty"`
	Reason  string `json:"reason,omitempty"`
	// Error is the failure message for non-2xx outcomes.
	Error string `json:"error,omitempty"`
}

// QueryLog appends JSONL QueryLogEntry lines to a writer, keeping only
// queries at or above a slowness threshold. A nil *QueryLog discards
// everything, so handlers call Record unconditionally.
type QueryLog struct {
	mu   sync.Mutex
	w    io.Writer
	slow time.Duration
	err  error
}

// NewQueryLog logs queries whose latency is >= slow to w. A zero slow
// threshold logs every query — the "structured access log for queries"
// mode; a nil w (like a nil log) discards.
func NewQueryLog(w io.Writer, slow time.Duration) *QueryLog {
	return &QueryLog{w: w, slow: slow}
}

// Record appends entry if latency clears the slowness threshold. The
// entry's TS and LatencyMs are stamped here so call sites only fill the
// query-shaped fields. Nil-safe; write failures are retained (Err), not
// allowed to fail the request.
func (l *QueryLog) Record(entry QueryLogEntry, latency time.Duration) {
	if l == nil || l.w == nil || latency < l.slow {
		return
	}
	entry.TS = time.Now().UTC().Format(time.RFC3339Nano)
	entry.LatencyMs = latency.Milliseconds()
	line, err := json.Marshal(entry)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	if _, werr := l.w.Write(line); werr != nil && l.err == nil {
		l.err = werr
	}
	l.mu.Unlock()
}

// Err returns the first write failure, if any.
func (l *QueryLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
