// Package sim implements the string-similarity substrate CDB uses to
// estimate edge matching probabilities (§4.1): 2-gram Jaccard (the
// paper's default), token Jaccard, normalized edit distance, and
// cosine over 2-gram multisets, plus a prefix-filtering similarity
// join (Bayardo et al., WWW'07 style) so candidate edges with
// similarity >= epsilon are found without enumerating all tuple pairs.
package sim

import (
	"sort"
	"strings"
)

// Func identifies a similarity function. The ablation in Figs. 23–24
// compares these (NoSim fixes every probability at 0.5).
type Func int

const (
	// Gram2Jaccard is Jaccard over 2-gram sets: the paper's CDB default.
	Gram2Jaccard Func = iota
	// TokenJaccard is Jaccard over whitespace tokens (the paper's JAC).
	TokenJaccard
	// EditDistance is 1 - normalizedLevenshtein (the paper's ED).
	EditDistance
	// Cosine is cosine similarity over 2-gram frequency vectors.
	Cosine
	// NoSim returns 0.5 for every pair (the paper's no-estimation ablation).
	NoSim
)

// String implements fmt.Stringer.
func (f Func) String() string {
	switch f {
	case Gram2Jaccard:
		return "2gram-jaccard"
	case TokenJaccard:
		return "token-jaccard"
	case EditDistance:
		return "edit-distance"
	case Cosine:
		return "cosine"
	case NoSim:
		return "nosim"
	default:
		return "unknown"
	}
}

// normalize lower-cases and collapses whitespace so similarity is
// robust to trivial formatting noise, matching how the paper treats
// e.g. "Univ. of California" vs "University of California".
func normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// Grams2 returns the sorted, deduplicated 2-gram set of s (after
// normalization). Strings shorter than 2 runes yield the whole string
// as a single gram so they still participate in matching.
func Grams2(s string) []string {
	s = normalize(s)
	runes := []rune(s)
	if len(runes) == 0 {
		return nil
	}
	if len(runes) == 1 {
		return []string{string(runes)}
	}
	set := make(map[string]struct{}, len(runes))
	for i := 0; i+2 <= len(runes); i++ {
		set[string(runes[i:i+2])] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Tokens returns the sorted, deduplicated token set of s.
func Tokens(s string) []string {
	fields := strings.Fields(strings.ToLower(s))
	set := make(map[string]struct{}, len(fields))
	for _, f := range fields {
		set[f] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// jaccardSorted computes |a∩b| / |a∪b| for two sorted string sets.
func jaccardSorted(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// jaccardSortedIDs computes |a∩b| / |a∪b| for two ascending interned
// token-id sets; identical to jaccardSorted over the same sets since
// interning is a bijection on the vocabulary.
func jaccardSortedIDs(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Jaccard2Gram computes 2-gram Jaccard similarity of two strings.
func Jaccard2Gram(a, b string) float64 { return jaccardSorted(Grams2(a), Grams2(b)) }

// JaccardTokens computes token Jaccard similarity of two strings.
func JaccardTokens(a, b string) float64 { return jaccardSorted(Tokens(a), Tokens(b)) }

// Levenshtein returns the edit distance between a and b (runes).
func Levenshtein(a, b string) int {
	ra, rb := []rune(normalize(a)), []rune(normalize(b))
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// NormalizedEditSim returns 1 - lev(a,b)/max(len(a),len(b)).
func NormalizedEditSim(a, b string) float64 {
	na, nb := len([]rune(normalize(a))), len([]rune(normalize(b)))
	maxLen := na
	if nb > maxLen {
		maxLen = nb
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// CosineSim computes cosine similarity over 2-gram frequency vectors.
func CosineSim(a, b string) float64 {
	va := gramCounts(a)
	vb := gramCounts(b)
	if len(va) == 0 && len(vb) == 0 {
		return 1
	}
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	var dot, na, nb float64
	for g, ca := range va {
		na += float64(ca) * float64(ca)
		if cb, ok := vb[g]; ok {
			dot += float64(ca) * float64(cb)
		}
	}
	for _, cb := range vb {
		nb += float64(cb) * float64(cb)
	}
	return dot / (sqrt(na) * sqrt(nb))
}

func gramCounts(s string) map[string]int {
	s = normalize(s)
	runes := []rune(s)
	m := map[string]int{}
	if len(runes) == 1 {
		m[string(runes)] = 1
		return m
	}
	for i := 0; i+2 <= len(runes); i++ {
		m[string(runes[i:i+2])]++
	}
	return m
}

func sqrt(x float64) float64 {
	// Newton iterations; avoids importing math for one call and is
	// exact enough for similarity scores.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Similarity evaluates the chosen function on a pair of strings.
func Similarity(f Func, a, b string) float64 {
	switch f {
	case Gram2Jaccard:
		return Jaccard2Gram(a, b)
	case TokenJaccard:
		return JaccardTokens(a, b)
	case EditDistance:
		return NormalizedEditSim(a, b)
	case Cosine:
		return CosineSim(a, b)
	case NoSim:
		return 0.5
	default:
		return 0
	}
}
