package sim

import (
	"testing"

	"cdb/internal/stats"
	"cdb/internal/testutil"
)

// randomStrings generates n strings over a small alphabet so that both
// near-duplicates and disjoint records occur, exercising the prefix
// filter's prune and verify paths.
func randomStrings(r *stats.RNG, n int) []string {
	words := []string{"univ", "of", "california", "chicago", "duke",
		"dept", "nutrition", "cambridge", "microsoft", "lab", "inst"}
	out := make([]string, n)
	for i := range out {
		k := 1 + r.Intn(4)
		s := ""
		for w := 0; w < k; w++ {
			if w > 0 {
				s += " "
			}
			s += words[r.Intn(len(words))]
		}
		out[i] = s
	}
	return out
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestJoinParallelMatchesSequential forces the sharded probe path and
// checks the output is bit-identical (same pairs, same order, same
// similarity bits) to the single-worker run, across functions,
// thresholds, and worker counts.
func TestJoinParallelMatchesSequential(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	oldW, oldT := JoinWorkers, joinParallelThreshold
	defer func() { JoinWorkers, joinParallelThreshold = oldW, oldT }()
	joinParallelThreshold = 1

	r := stats.NewRNG(99)
	left := randomStrings(r, 120)
	right := randomStrings(r, 90)
	for _, f := range []Func{Gram2Jaccard, TokenJaccard, EditDistance, Cosine} {
		for _, eps := range []float64{0.3, 0.6} {
			JoinWorkers = 1
			want := Join(f, left, right, eps)
			for _, w := range []int{2, 3, 8} {
				JoinWorkers = w
				got := Join(f, left, right, eps)
				if !pairsEqual(got, want) {
					t.Fatalf("%v eps=%v workers=%d: %d pairs vs %d sequential",
						f, eps, w, len(got), len(want))
				}
			}
		}
	}
}

// TestJoinSharedDictMatchesPrivate checks that a session-level shared
// dictionary — including one pre-polluted by joins over other inputs,
// so id assignments differ — never changes join output.
func TestJoinSharedDictMatchesPrivate(t *testing.T) {
	r := stats.NewRNG(42)
	left := randomStrings(r, 80)
	right := randomStrings(r, 60)
	other := randomStrings(r, 50)
	for _, f := range []Func{Gram2Jaccard, TokenJaccard} {
		for _, eps := range []float64{0.3, 0.6} {
			want := Join(f, left, right, eps)
			d := NewDict()
			JoinDict(f, other, right, eps, d) // pollute the dict
			got := JoinDict(f, left, right, eps, d)
			if !pairsEqual(got, want) {
				t.Fatalf("%v eps=%v: shared dict changed output (%d pairs vs %d)",
					f, eps, len(got), len(want))
			}
			if d.Len() == 0 {
				t.Fatalf("dict interned nothing")
			}
		}
	}
}

// TestJoinParallelMatchesBruteForce cross-checks the sharded join
// against the quadratic reference on random inputs.
func TestJoinParallelMatchesBruteForce(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	oldW, oldT := JoinWorkers, joinParallelThreshold
	defer func() { JoinWorkers, joinParallelThreshold = oldW, oldT }()
	JoinWorkers, joinParallelThreshold = 4, 1

	r := stats.NewRNG(7)
	for trial := 0; trial < 10; trial++ {
		left := randomStrings(r, 40)
		right := randomStrings(r, 30)
		eps := 0.3 + 0.4*r.Float64()
		fast := joinKeys(Join(Gram2Jaccard, left, right, eps))
		slow := joinKeys(BruteForceJoin(Gram2Jaccard, left, right, eps))
		if len(fast) != len(slow) {
			t.Fatalf("trial %d eps=%v: fast %d pairs, slow %d", trial, eps, len(fast), len(slow))
		}
		for k, v := range slow {
			if fv, ok := fast[k]; !ok || !almostEq(fv, v) {
				t.Fatalf("trial %d eps=%v: pair %s missing or wrong (%v vs %v)", trial, eps, k, fv, v)
			}
		}
	}
}
