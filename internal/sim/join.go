package sim

import (
	"runtime"
	"sort"
	"sync"

	"cdb/internal/obs"
)

// Similarity-join metrics: joins executed and candidate pairs emitted
// (the edge count of the instantiated query graph, before pruning).
var (
	mJoins     = obs.Default.Counter("cdb_sim_joins_total")
	mJoinPairs = obs.Default.Counter("cdb_sim_join_pairs_total")
)

// JoinWorkers caps the goroutines used by the similarity join's probe
// phase; 0 (the default) means GOMAXPROCS. Results are identical for
// any setting — shards produce independent candidate sets that are
// merged and sorted deterministically.
var JoinWorkers = 0

// joinParallelThreshold is the probe-side size below which sharding is
// not worth the goroutine overhead. A variable so tests can force the
// parallel path on small inputs.
var joinParallelThreshold = 128

// Pair is one candidate match produced by the similarity join: row
// indices into the left and right string slices plus the computed
// similarity (the edge weight of the graph query model).
type Pair struct {
	Left, Right int
	Sim         float64
}

// Join finds all (i, j) with Similarity(f, left[i], right[j]) >= eps.
//
// For the Jaccard-family functions it uses prefix filtering with a
// global token-frequency ordering [Bayardo et al.]: a pair can reach
// Jaccard >= eps only if the two records share at least one token in
// their length-dependent prefixes, so an inverted index over prefixes
// prunes almost all of the |L|x|R| space. For EditDistance, Cosine and
// NoSim it falls back to gram-overlap pre-filtering or a full scan
// (NoSim keeps every pair at weight 0.5, like the paper's ablation).
func Join(f Func, left, right []string, eps float64) []Pair {
	return JoinDict(f, left, right, eps, nil)
}

// JoinDict is Join with a caller-supplied token dictionary, so a
// serving session can intern tokens once across many joins. A nil dict
// uses a private per-call dictionary; the output is identical either
// way.
func JoinDict(f Func, left, right []string, eps float64, d *Dict) []Pair {
	pairs := joinPairs(f, left, right, eps, d)
	mJoins.Inc()
	mJoinPairs.Add(int64(len(pairs)))
	return pairs
}

func joinPairs(f Func, left, right []string, eps float64, d *Dict) []Pair {
	switch f {
	case Gram2Jaccard:
		return prefixFilterJoin(left, right, eps, Grams2, Jaccard2Gram, d)
	case TokenJaccard:
		return prefixFilterJoin(left, right, eps, Tokens, JaccardTokens, d)
	case EditDistance:
		// Overlap pre-filter: edit similarity >= eps implies the 2-gram
		// sets overlap somewhat; we use a generous Jaccard pre-threshold
		// and verify with the exact function. The pre-threshold below is
		// conservative (2-gram Jaccard of strings within edit distance d
		// of each other degrades roughly linearly in d).
		pre := eps/3 - 0.05
		if pre < 0.05 {
			pre = 0.05
		}
		cands := prefixFilterJoin(left, right, pre, Grams2, Jaccard2Gram, d)
		// Verify into a fresh slice: filtering in place over cands'
		// backing array would alias reads and writes, which silently
		// corrupts shard buffers once candidate generation is parallel.
		out := make([]Pair, 0, len(cands))
		for _, p := range cands {
			s := NormalizedEditSim(left[p.Left], right[p.Right])
			if s >= eps {
				out = append(out, Pair{Left: p.Left, Right: p.Right, Sim: s})
			}
		}
		return out
	case Cosine:
		pre := eps * eps / 2
		if pre < 0.05 {
			pre = 0.05
		}
		cands := prefixFilterJoin(left, right, pre, Grams2, Jaccard2Gram, d)
		out := make([]Pair, 0, len(cands))
		for _, p := range cands {
			s := CosineSim(left[p.Left], right[p.Right])
			if s >= eps {
				out = append(out, Pair{Left: p.Left, Right: p.Right, Sim: s})
			}
		}
		return out
	case NoSim:
		out := make([]Pair, 0, len(left)*len(right))
		for i := range left {
			for j := range right {
				out = append(out, Pair{Left: i, Right: j, Sim: 0.5})
			}
		}
		return out
	default:
		return nil
	}
}

// BruteForceJoin verifies every pair — the reference implementation
// used by tests and the prefix-filter ablation benchmark.
func BruteForceJoin(f Func, left, right []string, eps float64) []Pair {
	var out []Pair
	for i := range left {
		for j := range right {
			if s := Similarity(f, left[i], right[j]); s >= eps {
				out = append(out, Pair{Left: i, Right: j, Sim: s})
			}
		}
	}
	return out
}

// prefixFilterJoin implements the standard prefix-filtering algorithm
// for Jaccard threshold joins over set-valued records. Tokens are
// interned to dense int32 ids (via the shared dict when one is given),
// so the hot phases run on id-indexed slices instead of string-keyed
// maps: frequencies and the inverted index are arrays indexed by token
// id, per-probe candidate dedup is a visited-stamp array indexed by
// right row, and set intersection merges sorted id slices. The output
// is invariant to id assignment: the prefix-filter guarantee holds for
// any consistent total token order, and every surviving candidate is
// verified with the exact (set-identical) Jaccard.
func prefixFilterJoin(left, right []string, eps float64,
	tokenize func(string) []string, exact func(a, b string) float64, dict *Dict) []Pair {

	if eps <= 0 {
		// Prefix filtering degenerates; do the quadratic scan with the
		// exact verifier directly.
		var out []Pair
		for i := range left {
			for j := range right {
				if s := exact(left[i], right[j]); s >= eps {
					out = append(out, Pair{Left: i, Right: j, Sim: s})
				}
			}
		}
		return out
	}
	if dict == nil {
		dict = NewDict()
	}

	// Tokenize and intern. sortedIDs holds each record's token set as
	// ascending ids for O(|a|+|b|) merge verification.
	leftIDs := make([][]int32, len(left))
	rightIDs := make([][]int32, len(right))
	internSorted := func(s string) []int32 {
		ids := dict.InternAll(tokenize(s))
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		return ids
	}
	for i, s := range left {
		leftIDs[i] = internSorted(s)
	}
	for j, s := range right {
		rightIDs[j] = internSorted(s)
	}

	// Token frequencies, indexed by id. The dict may hold tokens from
	// earlier joins of the session; their zero counts are harmless.
	freq := make([]int32, dict.Len())
	for _, ids := range leftIDs {
		for _, id := range ids {
			freq[id]++
		}
	}
	for _, ids := range rightIDs {
		for _, id := range ids {
			freq[id]++
		}
	}

	// Order each record's tokens by ascending global frequency (rarest
	// first) so prefixes carry maximal pruning power. Ties broken by id
	// for determinism.
	order := func(ids []int32) []int32 {
		out := append([]int32(nil), ids...)
		sort.Slice(out, func(a, b int) bool {
			fa, fb := freq[out[a]], freq[out[b]]
			if fa != fb {
				return fa < fb
			}
			return out[a] < out[b]
		})
		return out
	}
	leftOrd := make([][]int32, len(left))
	rightOrd := make([][]int32, len(right))
	for i := range leftIDs {
		leftOrd[i] = order(leftIDs[i])
	}
	for j := range rightIDs {
		rightOrd[j] = order(rightIDs[j])
	}

	// Prefix length for Jaccard threshold t on a record of size n:
	// n - ceil(t*n) + 1. A matching pair must share a prefix token.
	prefixLen := func(n int) int {
		if n == 0 {
			return 0
		}
		k := n - int(ceil(eps*float64(n))) + 1
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		return k
	}

	// Inverted index over right-side prefixes, indexed by token id;
	// postings are ascending in j by construction.
	index := make([][]int32, dict.Len())
	for j, set := range rightOrd {
		for _, id := range set[:prefixLen(len(set))] {
			index[id] = append(index[id], int32(j))
		}
	}

	// Probe phase: each left record's prefix tokens are looked up in
	// the index and survivors verified exactly. Probes are independent
	// per left record, so the probe side is sharded across a worker
	// pool — per-shard candidate buffers and visited-stamp arrays,
	// merged in shard order. The final sort is by (Left, Right), a
	// strict total order over the deduplicated pairs, so the output is
	// bit-identical for any worker count.
	probe := func(lo, hi int, out []Pair) []Pair {
		visited := make([]int32, len(right))
		for j := range visited {
			visited[j] = -1
		}
		for i := lo; i < hi; i++ {
			set := leftOrd[i]
			pl := prefixLen(len(set))
			stamp := int32(i)
			la := len(leftIDs[i])
			for _, tok := range set[:pl] {
				for _, j := range index[tok] {
					if visited[j] == stamp {
						continue
					}
					visited[j] = stamp
					// Length filter: |a|/|b| must be within [eps, 1/eps].
					lb := len(rightIDs[j])
					if la == 0 || lb == 0 {
						continue
					}
					if float64(la) < eps*float64(lb) || float64(lb) < eps*float64(la) {
						continue
					}
					if s := jaccardSortedIDs(leftIDs[i], rightIDs[j]); s >= eps {
						out = append(out, Pair{Left: i, Right: int(j), Sim: s})
					}
				}
			}
		}
		return out
	}

	workers := JoinWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(left) {
		workers = len(left)
	}
	var out []Pair
	if workers <= 1 || len(left) < joinParallelThreshold {
		out = probe(0, len(left), nil)
	} else {
		shards := make([][]Pair, workers)
		chunk := (len(left) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(left) {
				break
			}
			hi := lo + chunk
			if hi > len(left) {
				hi = len(left)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				shards[w] = probe(lo, hi, nil)
			}(w, lo, hi)
		}
		wg.Wait()
		n := 0
		for _, s := range shards {
			n += len(s)
		}
		out = make([]Pair, 0, n)
		for _, s := range shards {
			out = append(out, s...)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Left != out[b].Left {
			return out[a].Left < out[b].Left
		}
		return out[a].Right < out[b].Right
	})
	return out
}

func ceil(x float64) float64 {
	i := float64(int64(x))
	if x > i {
		return i + 1
	}
	return i
}
