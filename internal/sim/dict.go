package sim

import "sync"

// Dict interns token strings to dense int32 ids. A Dict may be shared
// across many joins (the engine keeps one per serving session) so
// repeated joins over the same vocabulary re-use id assignments instead
// of rebuilding string-keyed maps; prefixFilterJoin's output is
// invariant to the id assignment (any consistent total token order
// preserves the prefix-filter guarantee and the verified similarities),
// so sharing a Dict never changes join results.
//
// All methods are safe for concurrent use.
type Dict struct {
	mu  sync.RWMutex
	ids map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int32)}
}

// Len returns the number of interned tokens.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ids)
}

// InternAll maps each token to its id, assigning fresh ids to unseen
// tokens. The read-locked fast path covers the common steady state
// where every token is already interned.
func (d *Dict) InternAll(toks []string) []int32 {
	out := make([]int32, len(toks))
	d.mu.RLock()
	miss := -1
	for i, t := range toks {
		id, ok := d.ids[t]
		if !ok {
			miss = i
			break
		}
		out[i] = id
	}
	d.mu.RUnlock()
	if miss < 0 {
		return out
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := miss; i < len(toks); i++ {
		id, ok := d.ids[toks[i]]
		if !ok {
			id = int32(len(d.ids))
			d.ids[toks[i]] = id
		}
		out[i] = id
	}
	return out
}
