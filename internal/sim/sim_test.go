package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGrams2(t *testing.T) {
	got := Grams2("abc")
	want := []string{"ab", "bc"}
	if len(got) != len(want) {
		t.Fatalf("grams = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grams = %v, want %v", got, want)
		}
	}
	if g := Grams2(""); g != nil {
		t.Fatalf("empty grams = %v", g)
	}
	if g := Grams2("x"); len(g) != 1 || g[0] != "x" {
		t.Fatalf("single-rune grams = %v", g)
	}
	// Dedup: "aaa" has only one distinct 2-gram.
	if g := Grams2("aaa"); len(g) != 1 || g[0] != "aa" {
		t.Fatalf("aaa grams = %v", g)
	}
}

func TestGrams2Normalizes(t *testing.T) {
	a := Grams2("  Hello   World ")
	b := Grams2("hello world")
	if len(a) != len(b) {
		t.Fatalf("normalization mismatch: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("normalization mismatch: %v vs %v", a, b)
		}
	}
}

func TestJaccard2GramIdentity(t *testing.T) {
	if !almostEq(Jaccard2Gram("sigmod", "SIGMOD"), 1) {
		t.Fatal("case-insensitive identity should be 1")
	}
	if !almostEq(Jaccard2Gram("", ""), 1) {
		t.Fatal("both empty should be 1")
	}
	if !almostEq(Jaccard2Gram("abc", ""), 0) {
		t.Fatal("one empty should be 0")
	}
}

func TestJaccard2GramKnown(t *testing.T) {
	// grams("abcd") = {ab,bc,cd}; grams("bcde") = {bc,cd,de};
	// intersection {bc,cd}=2, union 4 => 0.5
	if got := Jaccard2Gram("abcd", "bcde"); !almostEq(got, 0.5) {
		t.Fatalf("jaccard = %v, want 0.5", got)
	}
}

func TestJaccardTokens(t *testing.T) {
	if got := JaccardTokens("univ of california", "univ of chicago"); !almostEq(got, 0.5) {
		t.Fatalf("token jaccard = %v, want 0.5", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "ab", 2},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("lev(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetric(t *testing.T) {
	err := quick.Check(func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	strs := []string{"sigmod", "sigir", "vldb", "icde", "sigmod16", ""}
	for _, a := range strs {
		for _, b := range strs {
			for _, c := range strs {
				if Levenshtein(a, c) > Levenshtein(a, b)+Levenshtein(b, c) {
					t.Fatalf("triangle inequality violated on (%q,%q,%q)", a, b, c)
				}
			}
		}
	}
}

func TestNormalizedEditSim(t *testing.T) {
	if !almostEq(NormalizedEditSim("abc", "abc"), 1) {
		t.Fatal("identical should be 1")
	}
	if !almostEq(NormalizedEditSim("", ""), 1) {
		t.Fatal("empty/empty should be 1")
	}
	if !almostEq(NormalizedEditSim("abcd", "wxyz"), 0) {
		t.Fatal("completely different equal-length should be 0")
	}
}

func TestCosineSim(t *testing.T) {
	if !almostEq(CosineSim("abc", "abc"), 1) {
		t.Fatal("identity cosine should be 1")
	}
	if !almostEq(CosineSim("ab", "xy"), 0) {
		t.Fatal("disjoint grams cosine should be 0")
	}
	v := CosineSim("abcd", "bcde")
	if v <= 0 || v >= 1 {
		t.Fatalf("partial-overlap cosine = %v", v)
	}
}

func TestSimilarityRange(t *testing.T) {
	funcs := []Func{Gram2Jaccard, TokenJaccard, EditDistance, Cosine, NoSim}
	err := quick.Check(func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		for _, f := range funcs {
			s := Similarity(f, a, b)
			if s < -1e-9 || s > 1+1e-9 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimilaritySymmetry(t *testing.T) {
	funcs := []Func{Gram2Jaccard, TokenJaccard, EditDistance, Cosine}
	pairs := [][2]string{
		{"University of California", "Univ. of California"},
		{"MIT", "Massachusetts Institute of Technology"},
		{"sigmod", "sigir"},
	}
	for _, f := range funcs {
		for _, p := range pairs {
			if !almostEq(Similarity(f, p[0], p[1]), Similarity(f, p[1], p[0])) {
				t.Fatalf("%v not symmetric on %q/%q", f, p[0], p[1])
			}
		}
	}
}

func TestNoSim(t *testing.T) {
	if Similarity(NoSim, "anything", "else") != 0.5 {
		t.Fatal("NoSim should always return 0.5")
	}
}

func TestFuncString(t *testing.T) {
	for f, want := range map[Func]string{
		Gram2Jaccard: "2gram-jaccard",
		TokenJaccard: "token-jaccard",
		EditDistance: "edit-distance",
		Cosine:       "cosine",
		NoSim:        "nosim",
		Func(99):     "unknown",
	} {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(f), f.String(), want)
		}
	}
}

// --- join tests ---

func joinKeys(ps []Pair) map[string]float64 {
	m := map[string]float64{}
	for _, p := range ps {
		m[fmt.Sprintf("%d-%d", p.Left, p.Right)] = p.Sim
	}
	return m
}

var joinLeft = []string{
	"University of California",
	"University of Chicago",
	"Duke Uni.",
	"Microsoft Cambridge",
	"Department of Nutrition",
}

var joinRight = []string{
	"Univ. of California",
	"Univ. of Chicago",
	"Duke Univ.",
	"Microsoft",
	"Univ. of Cambridge",
	"Depart of Nutrition",
}

func TestPrefixFilterMatchesBruteForce(t *testing.T) {
	for _, f := range []Func{Gram2Jaccard, TokenJaccard, EditDistance, Cosine} {
		for _, eps := range []float64{0.3, 0.5, 0.7} {
			fast := joinKeys(Join(f, joinLeft, joinRight, eps))
			slow := joinKeys(BruteForceJoin(f, joinLeft, joinRight, eps))
			if len(fast) != len(slow) {
				t.Fatalf("%v eps=%v: fast %d pairs, slow %d pairs\nfast=%v\nslow=%v",
					f, eps, len(fast), len(slow), fast, slow)
			}
			for k, v := range slow {
				if fv, ok := fast[k]; !ok || !almostEq(fv, v) {
					t.Fatalf("%v eps=%v: pair %s missing or wrong (%v vs %v)", f, eps, k, fv, v)
				}
			}
		}
	}
}

func TestJoinNoSimIsCartesian(t *testing.T) {
	ps := Join(NoSim, joinLeft, joinRight, 0.3)
	if len(ps) != len(joinLeft)*len(joinRight) {
		t.Fatalf("NoSim join size = %d, want %d", len(ps), len(joinLeft)*len(joinRight))
	}
	for _, p := range ps {
		if p.Sim != 0.5 {
			t.Fatal("NoSim pair weight should be 0.5")
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	if ps := Join(Gram2Jaccard, nil, joinRight, 0.3); len(ps) != 0 {
		t.Fatalf("empty left join = %v", ps)
	}
	if ps := Join(Gram2Jaccard, joinLeft, nil, 0.3); len(ps) != 0 {
		t.Fatalf("empty right join = %v", ps)
	}
}

func TestJoinThresholdRespected(t *testing.T) {
	for _, eps := range []float64{0.3, 0.6, 0.9} {
		for _, p := range Join(Gram2Jaccard, joinLeft, joinRight, eps) {
			if p.Sim < eps {
				t.Fatalf("pair below threshold: %+v at eps=%v", p, eps)
			}
		}
	}
}

func TestJoinZeroEpsKeepsAll(t *testing.T) {
	ps := Join(Gram2Jaccard, []string{"aa", "bb"}, []string{"aa", "cc"}, 0)
	if len(ps) != 4 {
		t.Fatalf("eps=0 should keep every pair, got %d", len(ps))
	}
}

func TestPrefixFilterRandomized(t *testing.T) {
	// Randomized cross-check on generated dirty strings.
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	var left, right []string
	for i := 0; i < 40; i++ {
		a := words[i%len(words)] + " " + words[(i*3+1)%len(words)]
		left = append(left, a)
		b := words[(i*5+2)%len(words)] + " " + words[i%len(words)]
		right = append(right, b)
	}
	for _, eps := range []float64{0.2, 0.4, 0.6, 0.8} {
		fast := joinKeys(Join(Gram2Jaccard, left, right, eps))
		slow := joinKeys(BruteForceJoin(Gram2Jaccard, left, right, eps))
		if len(fast) != len(slow) {
			t.Fatalf("eps=%v: %d vs %d pairs", eps, len(fast), len(slow))
		}
	}
}
