package sim

import (
	"fmt"
	"testing"

	"cdb/internal/stats"
)

func benchJoin(b *testing.B, n, workers int) {
	oldW := JoinWorkers
	defer func() { JoinWorkers = oldW }()
	JoinWorkers = workers

	r := stats.NewRNG(11)
	left := randomStrings(r, n)
	right := randomStrings(r, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(Gram2Jaccard, left, right, 0.5)
	}
}

// BenchmarkJoin measures the prefix-filter similarity join at two
// probe-side scales, single-worker vs the full worker pool, to track
// multi-core scaling of plan construction.
func BenchmarkJoin(b *testing.B) {
	for _, n := range []int{300, 1500} {
		for _, w := range []int{1, 0} { // 0 = GOMAXPROCS
			name := fmt.Sprintf("n=%d/workers=%d", n, w)
			b.Run(name, func(b *testing.B) { benchJoin(b, n, w) })
		}
	}
}
