// Package groupsort implements the crowd-powered group and sort
// operations the paper's §4.2 Remark delegates to prior work: after
// the crowd-based selections and joins produce result rows, GROUP BY
// clusters a column's dirty values with crowdsourced entity resolution
// (pairwise match tasks plus transitivity, as in [57, 13]) and ORDER
// BY ranks values with crowdsourced pairwise comparisons (merge sort
// over a majority-voted crowd comparator, as in [42, 14]).
package groupsort

import (
	"sort"

	"cdb/internal/crowd"
	"cdb/internal/sim"
)

// Config bundles the crowd and similarity settings for both
// operations.
type Config struct {
	// Pool supplies workers. Required.
	Pool *crowd.Pool
	// Redundancy is the answers per task (default 5).
	Redundancy int
	// Sim estimates candidate-pair similarity for grouping (default
	// 2-gram Jaccard).
	Sim sim.Func
	// Epsilon prunes group-candidate pairs below this similarity
	// (default 0.3) — pairs under it are assumed distinct for free.
	Epsilon float64
}

func (c *Config) defaults() {
	if c.Redundancy <= 0 {
		c.Redundancy = 5
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.3
	}
}

// Result reports the crowd effort an operation consumed.
type Result struct {
	Tasks  int
	Rounds int
}

// GroupBy clusters values into groups of the same real-world entity.
// truthSame supplies the ground truth for the simulated workers.
// Returned groups hold indices into values; singleton groups included.
//
// The algorithm is transitivity-aware crowdsourced ER: candidate pairs
// (similarity >= epsilon) are asked in descending-similarity waves of
// cluster-disjoint pairs; answers merge clusters or record non-match
// constraints, and later pairs whose outcome is implied are never
// asked.
func GroupBy(values []string, truthSame func(a, b string) bool, cfg Config) ([][]int, Result) {
	cfg.defaults()
	n := len(values)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	nonMatch := map[[2]int]bool{}
	norm := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		parent[ra] = rb
		for key := range nonMatch {
			if key[0] == ra || key[1] == ra {
				x, y := key[0], key[1]
				if x == ra {
					x = rb
				}
				if y == ra {
					y = rb
				}
				delete(nonMatch, key)
				nonMatch[norm(x, y)] = true
			}
		}
	}

	type pair struct {
		a, b int
		s    float64
	}
	var pending []pair
	simF := cfg.Sim
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s := sim.Similarity(simF, values[i], values[j]); s >= cfg.Epsilon {
				pending = append(pending, pair{a: i, b: j, s: s})
			}
		}
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].s != pending[j].s {
			return pending[i].s > pending[j].s
		}
		if pending[i].a != pending[j].a {
			return pending[i].a < pending[j].a
		}
		return pending[i].b < pending[j].b
	})

	res := Result{}
	askMatch := func(a, b int) bool {
		res.Tasks++
		yes := 0
		workers := cfg.Pool.DistinctArrivals(cfg.Redundancy)
		for _, w := range workers {
			if w.AnswerBool(truthSame(values[a], values[b])) {
				yes++
			}
		}
		return 2*yes > len(workers)
	}

	for len(pending) > 0 {
		// One wave: cluster-disjoint, non-deducible pairs.
		busy := map[int]bool{}
		var wave []pair
		rest := pending[:0]
		for _, p := range pending {
			ra, rb := find(p.a), find(p.b)
			if ra == rb || nonMatch[norm(ra, rb)] {
				continue // deduced
			}
			if busy[ra] || busy[rb] {
				rest = append(rest, p)
				continue
			}
			busy[ra], busy[rb] = true, true
			wave = append(wave, p)
		}
		pending = append([]pair(nil), rest...)
		if len(wave) == 0 {
			break
		}
		res.Rounds++
		for _, p := range wave {
			if askMatch(p.a, p.b) {
				union(p.a, p.b)
			} else {
				nonMatch[norm(find(p.a), find(p.b))] = true
			}
		}
	}

	byRoot := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	groups := make([][]int, 0, len(byRoot))
	for _, g := range byRoot {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups, res
}

// SortBy ranks values with crowdsourced pairwise comparisons: a merge
// sort whose comparator asks Redundancy workers "is a before b?" and
// majority-votes. truthLess supplies the ground truth. It returns the
// permutation (indices into values, best first). Comparisons within
// one merge level are independent, so rounds ≈ ceil(log2 n) under the
// paper's round model.
func SortBy(values []string, truthLess func(a, b string) bool, cfg Config) ([]int, Result) {
	cfg.defaults()
	res := Result{}
	less := func(a, b int) bool {
		res.Tasks++
		yes := 0
		workers := cfg.Pool.DistinctArrivals(cfg.Redundancy)
		for _, w := range workers {
			if w.AnswerBool(truthLess(values[a], values[b])) {
				yes++
			}
		}
		return 2*yes > len(workers)
	}

	perm := make([]int, len(values))
	for i := range perm {
		perm[i] = i
	}
	// Bottom-up merge sort; each level is one crowd round.
	for width := 1; width < len(perm); width *= 2 {
		res.Rounds++
		next := make([]int, 0, len(perm))
		for lo := 0; lo < len(perm); lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > len(perm) {
				mid = len(perm)
			}
			if hi > len(perm) {
				hi = len(perm)
			}
			next = append(next, merge(perm[lo:mid], perm[mid:hi], less)...)
		}
		perm = next
	}
	return perm, res
}

func merge(a, b []int, less func(x, y int) bool) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(a[i], b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
