package groupsort

import (
	"strconv"
	"strings"
	"testing"

	"cdb/internal/crowd"
	"cdb/internal/sim"
	"cdb/internal/stats"
)

func perfect(n int, seed uint64) *crowd.Pool {
	return crowd.NewPerfectPool(n, stats.NewRNG(seed))
}

func TestGroupByClustersVariants(t *testing.T) {
	values := []string{
		"University of Wisconsin", "Univ. of Wisconsin", "university of wisconsin",
		"University of Michigan", "Univ. of Michigan",
		"Tsinghua University",
	}
	entity := func(v string) string {
		v = strings.ToLower(v)
		switch {
		case strings.Contains(v, "wisconsin"):
			return "wisc"
		case strings.Contains(v, "michigan"):
			return "mich"
		default:
			return "tsinghua"
		}
	}
	same := func(a, b string) bool { return entity(a) == entity(b) }
	groups, res := GroupBy(values, same, Config{Pool: perfect(10, 1), Sim: sim.Gram2Jaccard})
	if len(groups) != 3 {
		t.Fatalf("groups = %v, want 3 entities", groups)
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g)]++
		e := entity(values[g[0]])
		for _, idx := range g {
			if entity(values[idx]) != e {
				t.Fatalf("mixed group: %v", g)
			}
		}
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Fatalf("group sizes = %v", sizes)
	}
	if res.Tasks == 0 {
		t.Fatal("grouping asked no tasks")
	}
}

func TestGroupByTransitivitySaves(t *testing.T) {
	// Five variants of one entity: full pairwise would be 10 tasks;
	// transitivity needs at most 4 merges (plus unlucky waves).
	values := []string{"acme corp", "acme corp.", "Acme Corp", "ACME CORP", "acme  corp"}
	same := func(a, b string) bool { return true }
	groups, res := GroupBy(values, same, Config{Pool: perfect(10, 2), Sim: sim.Gram2Jaccard})
	if len(groups) != 1 {
		t.Fatalf("groups = %v, want one cluster", groups)
	}
	if res.Tasks >= 10 {
		t.Fatalf("transitivity saved nothing: %d tasks", res.Tasks)
	}
}

func TestGroupBySingletons(t *testing.T) {
	values := []string{"alpha", "beta", "gamma"}
	same := func(a, b string) bool { return a == b }
	groups, res := GroupBy(values, same, Config{Pool: perfect(5, 3), Sim: sim.Gram2Jaccard})
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	// All pairs are below epsilon: free.
	if res.Tasks != 0 {
		t.Fatalf("dissimilar values should not be asked: %d tasks", res.Tasks)
	}
}

func TestSortByPerfectWorkers(t *testing.T) {
	values := []string{"30", "5", "12", "7", "100", "1", "50"}
	lessNum := func(a, b string) bool {
		x, _ := strconv.Atoi(a)
		y, _ := strconv.Atoi(b)
		return x < y
	}
	perm, res := SortBy(values, lessNum, Config{Pool: perfect(10, 4)})
	got := make([]string, len(perm))
	for i, idx := range perm {
		got[i] = values[idx]
	}
	want := []string{"1", "5", "7", "12", "30", "50", "100"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", got, want)
		}
	}
	// Merge sort task bound.
	if res.Tasks > 20 {
		t.Fatalf("too many comparisons: %d", res.Tasks)
	}
	// ceil(log2 7) = 3 merge levels.
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
}

func TestSortByNoisyWorkersMostlyOrdered(t *testing.T) {
	rng := stats.NewRNG(7)
	pool := crowd.NewPool(30, 0.9, 0.05, rng)
	var values []string
	for i := 0; i < 16; i++ {
		values = append(values, strconv.Itoa(i))
	}
	lessNum := func(a, b string) bool {
		x, _ := strconv.Atoi(a)
		y, _ := strconv.Atoi(b)
		return x < y
	}
	perm, _ := SortBy(values, lessNum, Config{Pool: pool, Redundancy: 5})
	// Count pairwise inversions; noisy workers may cause a few, but the
	// order must be far better than random (random ≈ 60 of 120).
	inv := 0
	for i := 0; i < len(perm); i++ {
		for j := i + 1; j < len(perm); j++ {
			if perm[i] > perm[j] {
				inv++
			}
		}
	}
	if inv > 20 {
		t.Fatalf("too many inversions: %d", inv)
	}
}

func TestSortByEmptyAndSingle(t *testing.T) {
	perm, res := SortBy(nil, func(a, b string) bool { return a < b }, Config{Pool: perfect(3, 8)})
	if len(perm) != 0 || res.Tasks != 0 {
		t.Fatalf("empty sort = %v, %+v", perm, res)
	}
	perm, res = SortBy([]string{"x"}, func(a, b string) bool { return a < b }, Config{Pool: perfect(3, 9)})
	if len(perm) != 1 || res.Tasks != 0 {
		t.Fatalf("single sort = %v, %+v", perm, res)
	}
}
