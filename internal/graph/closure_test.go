package graph

import (
	"testing"

	"cdb/internal/stats"
)

// randomClosureGraph builds a random chain, star, or tree structure
// with random tuple counts and edge density — the space the overlay
// must agree with the brute-force transitive closure on.
func randomClosureGraph(r *stats.RNG) *Graph {
	var s *Structure
	switch r.Intn(3) {
	case 0: // chain A-B-C-D
		s = &Structure{
			Tables: []string{"A", "B", "C", "D"},
			Preds:  []QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}},
		}
	case 1: // star centred on A
		s = &Structure{
			Tables: []string{"A", "B", "C", "D"},
			Preds:  []QPred{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}},
		}
	default: // tree: B is an internal node
		s = &Structure{
			Tables: []string{"A", "B", "C", "D"},
			Preds:  []QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 1, B: 3}},
		}
	}
	counts := make([]int, len(s.Tables))
	for i := range counts {
		counts[i] = 1 + r.Intn(4)
	}
	g := MustNewGraph(s, counts)
	for p, pd := range s.Preds {
		for a := 0; a < counts[pd.A]; a++ {
			for b := 0; b < counts[pd.B]; b++ {
				if r.Bool(0.8) {
					g.AddEdge(p, a, b, 0.1+0.8*r.Float64())
				}
			}
		}
	}
	return g
}

// bluePartition computes, by brute force, each vertex's connected
// component under predicate pred's Blue edges.
func bluePartition(g *Graph, pred int) []int {
	parent := make([]int, g.NumVertices())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			x = parent[x]
		}
		return x
	}
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		if e.Pred != pred || e.Color != Blue {
			continue
		}
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
		}
	}
	comp := make([]int, g.NumVertices())
	for v := range comp {
		comp[v] = find(v)
	}
	return comp
}

// bruteEntails is the reference semantics: an uncolored edge is
// entailed Blue when its endpoints share a Blue component of its
// predicate, entailed Red when any Red edge of the predicate links the
// two components (A=B ∧ B≠C ⟹ A≠C).
func bruteEntails(g *Graph, comps map[int][]int, id int) (Color, bool) {
	e := g.Edge(id)
	if e.Color != Unknown {
		return Unknown, false
	}
	comp := comps[e.Pred]
	if comp[e.U] == comp[e.V] {
		return Blue, true
	}
	for f := 0; f < g.NumEdges(); f++ {
		fe := g.Edge(f)
		if fe.Pred != e.Pred || fe.Color != Red {
			continue
		}
		cu, cv := comp[fe.U], comp[fe.V]
		if (cu == comp[e.U] && cv == comp[e.V]) || (cu == comp[e.V] && cv == comp[e.U]) {
			return Red, true
		}
	}
	return Unknown, false
}

func checkClosure(t *testing.T, trial, step int, g *Graph, c *Closure) {
	t.Helper()
	comps := make(map[int][]int, len(g.S.Preds))
	for p := range g.S.Preds {
		comps[p] = bluePartition(g, p)
	}
	for id := 0; id < g.NumEdges(); id++ {
		wantCol, wantOK := bruteEntails(g, comps, id)
		col, conf, ok := c.Entails(id)
		if ok != wantOK || (ok && col != wantCol) {
			t.Fatalf("trial %d step %d edge %d: Entails = (%v, %v), brute force = (%v, %v)",
				trial, step, id, col, ok, wantCol, wantOK)
		}
		if ok && (conf <= 0 || conf > 1) {
			t.Fatalf("trial %d step %d edge %d: confidence %v out of (0, 1]", trial, step, id, conf)
		}
	}
	for p := range g.S.Preds {
		comp := comps[p]
		sizes := map[int]int{}
		for _, r := range comp {
			sizes[r]++
		}
		for v := 0; v < g.NumVertices(); v++ {
			if got, want := c.ClusterSize(p, v), sizes[comp[v]]; got != want {
				t.Fatalf("trial %d step %d: ClusterSize(%d, %d) = %d, brute force %d",
					trial, step, p, v, got, want)
			}
		}
	}
}

// TestClosureMatchesBruteForce colors random shaped graphs step by
// step and requires the incrementally-updated overlay to agree with a
// from-scratch transitive closure after every answer.
func TestClosureMatchesBruteForce(t *testing.T) {
	r := stats.NewRNG(42)
	for trial := 0; trial < 200; trial++ {
		g := randomClosureGraph(r)
		c := NewClosure(g)
		c.Update()
		checkClosure(t, trial, -1, g, c)
		var open []int
		for id := 0; id < g.NumEdges(); id++ {
			open = append(open, id)
		}
		step := 0
		for len(open) > 0 {
			i := r.Intn(len(open))
			id := open[i]
			open[i] = open[len(open)-1]
			open = open[:len(open)-1]
			if g.Edge(id).Color != Unknown {
				continue
			}
			col := Red
			if r.Bool(0.6) {
				col = Blue
			}
			g.SetColor(id, col)
			c.Update()
			checkClosure(t, trial, step, g, c)
			step++
		}
	}
}

// TestClosureReplayIdentical requires that an overlay updated after
// every answer and one built fresh from the same journal entail the
// same labels with the same confidences — the determinism property the
// engine's cross-query sharing relies on. Mid-run recolorings force
// the rebuild path on the live overlay, which must change nothing.
func TestClosureReplayIdentical(t *testing.T) {
	r := stats.NewRNG(7)
	for trial := 0; trial < 100; trial++ {
		g := randomClosureGraph(r)
		live := NewClosure(g)
		live.Update()
		for step := 0; step < g.NumEdges(); step++ {
			id := r.Intn(g.NumEdges())
			col := Red
			if r.Bool(0.6) {
				col = Blue
			}
			g.SetColor(id, col) // may recolor: exercises the rebuild path
			live.Update()
		}
		replay := NewClosure(g)
		replay.Update()
		for id := 0; id < g.NumEdges(); id++ {
			lc, lw, lok := live.Entails(id)
			rc, rw, rok := replay.Entails(id)
			if lc != rc || lw != rw || lok != rok {
				t.Fatalf("trial %d edge %d: live (%v, %v, %v) != replay (%v, %v, %v)",
					trial, id, lc, lw, lok, rc, rw, rok)
			}
		}
		for p := range g.S.Preds {
			for v := 0; v < g.NumVertices(); v++ {
				if live.ClusterSize(p, v) != replay.ClusterSize(p, v) {
					t.Fatalf("trial %d: cluster size diverges at pred %d vertex %d", trial, p, v)
				}
			}
		}
	}
}

// TestClosureNegativeRule pins the asymmetric inference rule directly:
// A=B ∧ B≠C entails A≠C, while A≠B ∧ B≠C entails nothing about A–C.
func TestClosureNegativeRule(t *testing.T) {
	build := func() (*Graph, [4]int) {
		s := &Structure{Tables: []string{"L", "R"}, Preds: []QPred{{A: 0, B: 1}}}
		g := MustNewGraph(s, []int{2, 2}) // a0,a1 | b0,b1
		e00 := g.AddEdge(0, 0, 0, 0.5)    // a0–b0
		e01 := g.AddEdge(0, 0, 1, 0.5)    // a0–b1
		e10 := g.AddEdge(0, 1, 0, 0.5)    // a1–b0
		e11 := g.AddEdge(0, 1, 1, 0.5)    // a1–b1
		return g, [4]int{e00, e01, e10, e11}
	}

	// Positive rule: a1=b0 ∧ b0=a0 ∧ a0=b1 ⟹ a1=b1.
	g, e := build()
	g.SetColor(e[0], Blue) // a0 = b0
	g.SetColor(e[1], Blue) // a0 = b1 → {a0, b0, b1}
	c := NewClosure(g)
	c.Update()
	if _, _, ok := c.Entails(e[3]); ok {
		t.Fatal("a1–b1 must not be entailed while a1 is unlinked")
	}
	g.SetColor(e[2], Blue) // a1 = b0 → one cluster
	c.Update()
	if col, _, ok := c.Entails(e[3]); !ok || col != Blue {
		t.Fatalf("a1–b1: want entailed Blue through the cluster, got (%v, %v)", col, ok)
	}

	// Negative rule: a0=b0 ∧ a1≠b1 alone entails nothing about a0–b1;
	// adding a1=b0 makes it A=B ∧ B≠C ⟹ A≠C.
	g2, e2 := build()
	g2.SetColor(e2[0], Blue) // a0 = b0
	g2.SetColor(e2[3], Red)  // a1 ≠ b1
	c2 := NewClosure(g2)
	c2.Update()
	if _, _, ok := c2.Entails(e2[1]); ok {
		t.Fatal("red evidence alone must not entail across unlinked clusters")
	}
	g2.SetColor(e2[2], Blue) // a1 = b0 → {a0, a1, b0} ≠ {b1}
	c2.Update()
	if col, _, ok := c2.Entails(e2[1]); !ok || col != Red {
		t.Fatalf("a0–b1: want entailed Red via a0=b0=a1 ∧ a1≠b1, got (%v, %v)", col, ok)
	}
}

// TestClosureConflictsAndFixpoint: contradictory answers are counted
// and survived, and applying every entailed label back onto the graph
// is a one-pass fixpoint (no new entailments appear).
func TestClosureConflictsAndFixpoint(t *testing.T) {
	s := &Structure{Tables: []string{"L", "R"}, Preds: []QPred{{A: 0, B: 1}}}
	g := MustNewGraph(s, []int{2, 2})
	ab := g.AddEdge(0, 0, 0, 0.5) // a0–b0
	cd := g.AddEdge(0, 1, 0, 0.5) // a1–b0
	ef := g.AddEdge(0, 1, 1, 0.5) // a1–b1
	gh := g.AddEdge(0, 0, 1, 0.5) // a0–b1

	g.SetColor(ab, Blue)
	g.SetColor(cd, Blue) // {a0, a1, b0}
	g.SetColor(ef, Red)  // b1 ≠ cluster
	c := NewClosure(g)
	c.Update()
	if col, _, ok := c.Entails(gh); !ok || col != Red {
		t.Fatalf("a0–b1: want entailed Red, got (%v, %v)", col, ok)
	}
	// The crowd contradicts the entailment: direct answer wins.
	g.SetColor(gh, Blue)
	c.Update()
	if c.Conflicts() != 1 {
		t.Fatalf("conflicts = %d, want 1", c.Conflicts())
	}

	// Fixpoint: apply every entailed label, then demand quiescence.
	r := stats.NewRNG(3)
	for trial := 0; trial < 50; trial++ {
		g := randomClosureGraph(r)
		for step := 0; step < g.NumEdges()/2; step++ {
			id := r.Intn(g.NumEdges())
			if g.Edge(id).Color != Unknown {
				continue
			}
			col := Red
			if r.Bool(0.6) {
				col = Blue
			}
			g.SetColor(id, col)
		}
		c := NewClosure(g)
		c.Update()
		applied := 0
		for id := 0; id < g.NumEdges(); id++ {
			if col, _, ok := c.Entails(id); ok {
				g.SetColor(id, col)
				applied++
			}
		}
		conflictsBefore := c.Conflicts()
		c.Update()
		if c.Conflicts() != conflictsBefore {
			t.Fatalf("trial %d: applying entailed labels created %d conflicts",
				trial, c.Conflicts()-conflictsBefore)
		}
		for id := 0; id < g.NumEdges(); id++ {
			if _, _, ok := c.Entails(id); ok {
				t.Fatalf("trial %d: edge %d newly entailed after applying the closure (not a fixpoint)",
					trial, id)
			}
		}
		if c.Rebuilds() != 0 {
			t.Fatalf("trial %d: crowdsourcing-only run forced %d rebuilds", trial, c.Rebuilds())
		}
	}
}
