package graph

import (
	"sort"
)

// Embedding is one candidate (Definition 2) or answer (Definition 4):
// an assignment of one tuple (vertex id) per table plus the edge used
// for each predicate. Prob is the product of edge weights, where blue
// edges contribute 1 (certain) and uncolored edges their matching
// probability; red edges never appear.
type Embedding struct {
	Assign []int // vertex id per table index
	Edges  []int // edge id per predicate index
	Prob   float64
}

// predOrder returns the predicates in a connected order: every
// predicate after the first shares a table with some earlier one.
// Structure.Validate guarantees such an order exists.
func (s *Structure) predOrder() []int {
	if len(s.Preds) == 0 {
		return nil
	}
	used := make([]bool, len(s.Preds))
	tableSeen := make([]bool, len(s.Tables))
	order := make([]int, 0, len(s.Preds))
	order = append(order, 0)
	used[0] = true
	tableSeen[s.Preds[0].A] = true
	tableSeen[s.Preds[0].B] = true
	for len(order) < len(s.Preds) {
		advanced := false
		for p := range s.Preds {
			if used[p] {
				continue
			}
			if tableSeen[s.Preds[p].A] || tableSeen[s.Preds[p].B] {
				used[p] = true
				tableSeen[s.Preds[p].A] = true
				tableSeen[s.Preds[p].B] = true
				order = append(order, p)
				advanced = true
			}
		}
		if !advanced {
			// Disconnected; Validate would have rejected this, but avoid
			// an infinite loop in pathological use.
			break
		}
	}
	return order
}

// PredOrder exposes the connected predicate order enumeration walks
// predicates in. Answer emission is lexicographic in the chosen-edge
// vector laid out along this order (each recursion level tries edges in
// ascending id order), which is what lets a scatter-gather merge
// re-establish the single-graph row order from per-shard answer sets.
func (s *Structure) PredOrder() []int { return s.predOrder() }

// enumerate walks all embeddings over edges accepted by keep,
// pre-pinning the given edges, and calls yield for each complete
// embedding. yield returning false stops the walk. keep must reject
// red edges for candidate semantics.
func (g *Graph) enumerate(pins []int, keep func(Edge) bool, yield func(assign, edges []int) bool) {
	order := g.S.predOrder()
	assign := make([]int, len(g.S.Tables))
	chosen := make([]int, len(g.S.Preds))
	for i := range assign {
		assign[i] = -1
	}
	for i := range chosen {
		chosen[i] = -1
	}
	pinned := make([]int, len(g.S.Preds))
	for i := range pinned {
		pinned[i] = -1
	}
	// Apply pins: fix assignments; bail on inconsistency.
	for _, eID := range pins {
		e := g.edges[eID]
		if !keep(e) {
			return
		}
		p := g.S.Preds[e.Pred]
		if pinned[e.Pred] >= 0 && pinned[e.Pred] != eID {
			return // two pins on one predicate
		}
		pinned[e.Pred] = eID
		if assign[p.A] >= 0 && assign[p.A] != e.U {
			return
		}
		if assign[p.B] >= 0 && assign[p.B] != e.V {
			return
		}
		assign[p.A], assign[p.B] = e.U, e.V
	}

	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			return yield(assign, chosen)
		}
		pIdx := order[k]
		p := g.S.Preds[pIdx]
		try := func(eID int) bool {
			e := g.edges[eID]
			if !keep(e) {
				return true
			}
			if pinned[pIdx] >= 0 && pinned[pIdx] != eID {
				return true
			}
			savedA, savedB := assign[p.A], assign[p.B]
			if savedA >= 0 && savedA != e.U {
				return true
			}
			if savedB >= 0 && savedB != e.V {
				return true
			}
			assign[p.A], assign[p.B] = e.U, e.V
			chosen[pIdx] = eID
			cont := rec(k + 1)
			assign[p.A], assign[p.B] = savedA, savedB
			chosen[pIdx] = -1
			return cont
		}
		switch {
		case pinned[pIdx] >= 0:
			return try(pinned[pIdx])
		case assign[p.A] >= 0:
			for _, eID := range g.EdgesAt(assign[p.A], pIdx) {
				if !try(eID) {
					return false
				}
			}
		case assign[p.B] >= 0:
			for _, eID := range g.EdgesAt(assign[p.B], pIdx) {
				if !try(eID) {
					return false
				}
			}
		default:
			// Only the first predicate in the order starts unanchored.
			for eID := range g.edges {
				if g.edges[eID].Pred != pIdx {
					continue
				}
				if !try(eID) {
					return false
				}
			}
		}
		return true
	}
	rec(0)
}

func nonRed(e Edge) bool  { return e.Color != Red }
func allBlue(e Edge) bool { return e.Color == Blue }

// EnumerateEmbeddings walks all embeddings built from edges accepted
// by keep, pre-pinning the given edge ids, and calls yield with the
// assignment (vertex per table) and chosen edge per predicate; yield
// returning false stops the walk. The slices passed to yield are
// reused between calls — copy them if retained. This is the hook the
// cost-control package uses to reason about hypothetical colorings
// (e.g. sampled graphs) without mutating the graph.
func (g *Graph) EnumerateEmbeddings(pins []int, keep func(Edge) bool, yield func(assign, edges []int) bool) {
	g.enumerate(pins, keep, yield)
}

// existsCandidateWithPins reports whether some candidate (embedding
// over non-red edges) contains every pinned edge.
func (g *Graph) existsCandidateWithPins(pins []int) bool {
	found := false
	g.enumerate(pins, nonRed, func(_, _ []int) bool {
		found = true
		return false
	})
	return found
}

// existsEmbeddingWith adapts existsCandidateWithPins for the
// backtracking validity fallback.
func (g *Graph) existsEmbeddingWith(pins map[int]int, _ []int) bool {
	list := make([]int, 0, len(pins))
	for _, e := range pins {
		list = append(list, e)
	}
	return g.existsCandidateWithPins(list)
}

// SameCandidate reports whether two edges co-occur in at least one
// candidate — the conflict test of the latency scheduler (§5.2). Two
// distinct edges on the same predicate never conflict, nor do edges
// containing different tuples of the same table; both cases are
// resolved without search.
func (g *Graph) SameCandidate(e1, e2 int) bool {
	if e1 == e2 {
		return true
	}
	a, b := g.edges[e1], g.edges[e2]
	if a.Pred == b.Pred {
		return false // a candidate holds exactly one edge per predicate
	}
	// Different tuples of the same table can't co-occur.
	for _, u := range [2]int{a.U, a.V} {
		for _, v := range [2]int{b.U, b.V} {
			if u != v && g.TableOf(u) == g.TableOf(v) {
				return false
			}
		}
	}
	return g.existsCandidateWithPins([]int{e1, e2})
}

// Answers enumerates all current answers: embeddings whose every edge
// is blue (Definition 4).
func (g *Graph) Answers() []Embedding {
	var out []Embedding
	g.enumerate(nil, allBlue, func(assign, edges []int) bool {
		out = append(out, Embedding{
			Assign: append([]int(nil), assign...),
			Edges:  append([]int(nil), edges...),
			Prob:   1,
		})
		return true
	})
	return out
}

// Candidates enumerates up to maxN candidates (embeddings over non-red
// edges), sorted by Prob descending (ties broken lexicographically on
// the assignment for determinism). maxN <= 0 means no cap.
func (g *Graph) Candidates(maxN int) []Embedding {
	var out []Embedding
	g.enumerate(nil, nonRed, func(assign, edges []int) bool {
		prob := 1.0
		for _, eID := range edges {
			if e := g.edges[eID]; e.Color == Unknown {
				prob *= e.W
			}
		}
		out = append(out, Embedding{
			Assign: append([]int(nil), assign...),
			Edges:  append([]int(nil), edges...),
			Prob:   prob,
		})
		return maxN <= 0 || len(out) < maxN
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		for k := range out[i].Assign {
			if out[i].Assign[k] != out[j].Assign[k] {
				return out[i].Assign[k] < out[j].Assign[k]
			}
		}
		return false
	})
	return out
}

// CountCandidatesThrough counts candidates containing the given edge,
// up to limit (0 = unlimited). Used by diagnostics and tests.
func (g *Graph) CountCandidatesThrough(edgeID, limit int) int {
	n := 0
	g.enumerate([]int{edgeID}, nonRed, func(_, _ []int) bool {
		n++
		return limit <= 0 || n < limit
	})
	return n
}
