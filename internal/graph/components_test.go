package graph

import (
	"sync"
	"testing"

	"cdb/internal/stats"
)

// naivePartition computes the edge-component partition from scratch
// with union-find — deliberately a different algorithm from the cached
// flood fill, so the property tests cross-check implementations.
func naivePartition(g *Graph) []int {
	parent := make([]int, g.NumEdges())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for v := 0; v < g.NumVertices(); v++ {
		first := -1
		for _, lst := range g.adj[v] {
			for _, e := range lst {
				if g.edges[e].Color == Red {
					continue
				}
				if first < 0 {
					first = e
				} else {
					union(first, e)
				}
			}
		}
	}
	out := make([]int, g.NumEdges())
	for i := range out {
		if g.edges[i].Color == Red {
			out[i] = -1
		} else {
			out[i] = find(i)
		}
	}
	return out
}

// samePartition checks that two component labelings induce the same
// equivalence classes (labels themselves may differ).
func samePartition(t *testing.T, got, want []int, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: labeling lengths %d vs %d", ctx, len(got), len(want))
	}
	remap := map[int]int{}
	seen := map[int]bool{}
	for i := range got {
		if (got[i] < 0) != (want[i] < 0) {
			t.Fatalf("%s: edge %d red-membership mismatch: got %d want %d", ctx, i, got[i], want[i])
		}
		if got[i] < 0 {
			continue
		}
		if m, ok := remap[got[i]]; ok {
			if m != want[i] {
				t.Fatalf("%s: edge %d: component %d maps to both %d and %d", ctx, i, got[i], m, want[i])
			}
		} else {
			if seen[want[i]] {
				t.Fatalf("%s: edge %d: naive component %d claimed by two cached components", ctx, i, want[i])
			}
			remap[got[i]] = want[i]
			seen[want[i]] = true
		}
	}
}

// TestComponentIndexIncremental colors random graphs edge by edge and
// checks after every transition that the incrementally maintained
// partition matches a from-scratch union-find.
func TestComponentIndexIncremental(t *testing.T) {
	r := stats.NewRNG(31337)
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(r)
		compOf, _ := g.ComponentIndex()
		samePartition(t, compOf, naivePartition(g), "initial")
		for step := 0; step < 2*g.NumEdges(); step++ {
			e := r.Intn(g.NumEdges())
			switch r.Intn(3) {
			case 0:
				g.SetColor(e, Red)
			case 1:
				g.SetColor(e, Blue)
			case 2:
				g.SetColor(e, Unknown) // forces the full-rebuild path when old was red
			}
			compOf, _ = g.ComponentIndex()
			samePartition(t, compOf, naivePartition(g), "after step")
		}
	}
}

// TestComponentMembersConsistent verifies member lists agree with the
// index and are sorted.
func TestComponentMembersConsistent(t *testing.T) {
	r := stats.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(r)
		// A few incremental splits first.
		for i := 0; i < g.NumEdges()/2; i++ {
			g.SetColor(r.Intn(g.NumEdges()), Red)
			g.ComponentIndex()
		}
		compOf, n := g.ComponentIndex()
		counted := 0
		for ci := 0; ci < n; ci++ {
			members := g.ComponentMembers(ci)
			for k, e := range members {
				if compOf[e] != ci {
					t.Fatalf("member %d of comp %d has compOf %d", e, ci, compOf[e])
				}
				if k > 0 && members[k-1] >= e {
					t.Fatalf("comp %d members not strictly sorted: %v", ci, members)
				}
			}
			counted += len(members)
		}
		nonRed := 0
		for e := 0; e < g.NumEdges(); e++ {
			if g.Edge(e).Color != Red {
				nonRed++
			}
		}
		if counted != nonRed {
			t.Fatalf("members cover %d edges, want %d non-red", counted, nonRed)
		}
	}
}

// TestColorEventsJournal checks the journal records exactly the
// effective transitions.
func TestColorEventsJournal(t *testing.T) {
	g := buildSmall()
	if len(g.ColorEvents()) != 0 {
		t.Fatal("fresh graph has events")
	}
	g.SetColor(0, Blue)
	g.SetColor(0, Blue) // no-op
	g.SetColor(3, Red)
	g.SetColor(0, Red)
	ev := g.ColorEvents()
	want := []ColorEvent{
		{Edge: 0, Old: Unknown, New: Blue},
		{Edge: 3, Old: Unknown, New: Red},
		{Edge: 0, Old: Blue, New: Red},
	}
	if len(ev) != len(want) {
		t.Fatalf("journal = %v, want %v", ev, want)
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Fatalf("journal[%d] = %v, want %v", i, ev[i], want[i])
		}
	}
}

// TestCutEvaluatorMatchesGraph runs concurrent evaluators over random
// graphs and checks every result against the graph's own CutLoss.
func TestCutEvaluatorMatchesGraph(t *testing.T) {
	r := stats.NewRNG(4242)
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(r)
		g.Revalidate()
		type q struct{ v, pred int }
		var queries []q
		for v := 0; v < g.NumVertices(); v++ {
			for _, pred := range g.predsByTable[g.TableOf(v)] {
				queries = append(queries, q{v, pred})
			}
		}
		wantLoss := make([]int, len(queries))
		wantBundle := make([]int, len(queries))
		for i, qq := range queries {
			wantLoss[i], wantBundle[i] = g.CutLoss(qq.v, qq.pred)
		}
		const workers = 4
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ev := g.NewCutEvaluator()
				for i := w; i < len(queries); i += workers {
					loss, bundle := ev.CutLoss(queries[i].v, queries[i].pred)
					if loss != wantLoss[i] || bundle != wantBundle[i] {
						t.Errorf("trial %d query %d: evaluator (%d,%d), graph (%d,%d)",
							trial, i, loss, bundle, wantLoss[i], wantBundle[i])
					}
				}
			}(w)
		}
		wg.Wait()
	}
}
