package graph

import "cdb/internal/obs"

// Transitive-inference overlay (ROADMAP item: transitivity-aware
// joins). Crowd answers about value equality are transitive within one
// predicate: once the crowd confirms A=B and B=C, A=C needs no HIT,
// and A=B with B≠C entails A≠C ("Leveraging Transitive Relations for
// Crowdsourced Joins", Wang et al.). The Closure maintains, per
// predicate, a union-find over the endpoints of Blue edges plus a
// cluster-pair Red relation, and answers "is this uncolored edge's
// label already entailed?" in near-constant time.
//
// Scope: inference never crosses predicates. Two predicates compare
// different column pairs, so a vertex (tuple) participates in one
// equivalence relation per incident predicate; the overlay keys its
// union-find nodes by (predicate, vertex).
//
// Consistency model: the overlay is fed by the graph's ColorEvent
// journal, exactly like the cost engine's incremental score cache. On
// the crowdsourcing path every transition is Unknown→{Blue,Red} and
// the overlay absorbs the suffix incrementally; any reverse transition
// (recoloring, Unknown-ing) cannot be expressed by a union-find, so
// Update falls back to a full rebuild from the current edge colors.
// Either way the resulting clusters are a pure function of the journal
// — replaying the same journal yields the same entailments in the same
// order, which is what keeps engine-level result sharing bit-identical
// (the property tests in closure_test.go enforce replay identity).
//
// Applying entailed labels via SetColor is a fixpoint in one pass: an
// entailed Blue edge connects vertices already in one cluster and an
// entailed Red edge connects a cluster pair already marked red, so
// observing those events changes nothing. The executor can therefore
// infer after each round without iterating.

// Closure health metrics: rebuilds are the O(E) slow path; conflicts
// count crowd answers that contradict the closure (a Red edge inside a
// Blue cluster, or a Blue edge across an entailed-Red cluster pair).
var (
	mClosureRebuild  = obs.Default.Counter("cdb_graph_closure_rebuild_total")
	mClosureConflict = obs.Default.Counter("cdb_graph_closure_conflict_total")
)

// Closure is the transitive-inference overlay over one graph's crowd
// colors. Not safe for concurrent use: methods mutate internal state
// (journal cursor, path compression). One Closure serves one
// execution.
type Closure struct {
	g *Graph

	// ConfFn optionally supplies the verdict confidence of a colored
	// edge (in (0, 1]); nil, or any out-of-range return, means full
	// confidence. The executor installs its per-edge confidence record
	// so inferred labels inherit the weakest evidence backing them.
	ConfFn func(edge int) float64

	cursor int // ColorEvents consumed so far

	// Union-find over (predicate, vertex) nodes, built lazily on first
	// Update. conf[root] is the minimum confidence over the cluster's
	// Blue edges (1 for singletons).
	parent []int
	size   []int
	conf   []float64

	// red[rootA][rootB] is the strongest Red-edge confidence observed
	// between the two clusters; symmetric.
	red map[int]map[int]float64

	conflicts int
	rebuilds  int
}

// NewClosure creates an empty overlay for g. Call Update to absorb the
// journal (including colors applied before creation, e.g. the exact
// equi-join edges pre-colored at plan build).
func NewClosure(g *Graph) *Closure {
	return &Closure{g: g, red: make(map[int]map[int]float64)}
}

// Update brings the overlay up to date with the graph's color journal:
// the unconsumed suffix is absorbed incrementally when every
// transition starts from Unknown, otherwise the overlay is rebuilt
// from the current edge colors. Idempotent; call before Entails or
// ClusterSize after any round of coloring.
func (c *Closure) Update() {
	events := c.g.ColorEvents()
	if c.parent == nil {
		// First use: build the identity partition, then absorb the whole
		// journal below (not counted as a rebuild — there is nothing to
		// re-do yet).
		c.resetNodes()
	} else if c.cursor > len(events) {
		c.rebuild(len(events))
		return
	}
	for _, ev := range events[c.cursor:] {
		if ev.Old != Unknown || ev.New == Unknown {
			c.rebuild(len(events))
			return
		}
	}
	for _, ev := range events[c.cursor:] {
		c.observe(ev.Edge, ev.New)
	}
	c.cursor = len(events)
}

// rebuild reconstructs the overlay from the current edge colors (which
// are themselves the fold of the journal, so the result is still a
// pure function of it).
func (c *Closure) rebuild(cursor int) {
	c.rebuilds++
	mClosureRebuild.Inc()
	c.resetNodes()
	for id := range c.g.edges {
		if col := c.g.edges[id].Color; col != Unknown {
			c.observe(id, col)
		}
	}
	c.cursor = cursor
}

// resetNodes restores the identity partition (every (pred, vertex)
// node its own singleton cluster, no red links).
func (c *Closure) resetNodes() {
	nodes := len(c.g.S.Preds) * c.g.nVerts
	if len(c.parent) != nodes {
		c.parent = make([]int, nodes)
		c.size = make([]int, nodes)
		c.conf = make([]float64, nodes)
	}
	for i := range c.parent {
		c.parent[i] = i
		c.size[i] = 1
		c.conf[i] = 1
	}
	c.red = make(map[int]map[int]float64)
	c.conflicts = 0
	c.cursor = 0
}

// observe folds one colored edge into the overlay.
func (c *Closure) observe(id int, col Color) {
	e := c.g.edges[id]
	a := c.node(e.Pred, e.U)
	b := c.node(e.Pred, e.V)
	switch col {
	case Blue:
		c.union(a, b, c.confOf(id))
	case Red:
		c.markRed(a, b, c.confOf(id))
	}
}

// Entails reports whether the (uncolored) edge's label is already
// determined by the closure: Blue when its endpoints share a cluster,
// Red when their clusters are linked by a Red edge. The confidence is
// the weakest evidence on the entailing path: the cluster's minimum
// Blue confidence, further capped by the Red link for Red entailments.
// Colored edges report no entailment.
func (c *Closure) Entails(id int) (Color, float64, bool) {
	e := c.g.edges[id]
	if e.Color != Unknown || c.parent == nil {
		return Unknown, 0, false
	}
	ra := c.find(c.node(e.Pred, e.U))
	rb := c.find(c.node(e.Pred, e.V))
	if ra == rb {
		return Blue, c.conf[ra], true
	}
	if w, ok := c.red[ra][rb]; ok {
		conf := min3(w, c.conf[ra], c.conf[rb])
		return Red, conf, true
	}
	return Unknown, 0, false
}

// ClusterSize returns the number of (pred, vertex) nodes in v's
// equivalence cluster under predicate pred — 1 until Blue evidence
// merges it with anything. The expected-optimal ordering weights
// candidate edges by the product of their endpoint cluster sizes.
func (c *Closure) ClusterSize(pred, v int) int {
	if c.parent == nil {
		return 1
	}
	return c.size[c.find(c.node(pred, v))]
}

// ClusterRoot returns a canonical id for v's equivalence cluster under
// pred: two vertices share a cluster iff their roots are equal. The
// lookup path-compresses the shared union-find, so callers must not
// race Update or concurrent lookups.
func (c *Closure) ClusterRoot(pred, v int) int {
	if c.parent == nil {
		return c.node(pred, v)
	}
	return c.find(c.node(pred, v))
}

// Conflicts counts crowd answers that contradicted the closure since
// the last rebuild (Red inside a cluster, Blue across a Red pair). The
// direct answer wins — the overlay drops the entailment — but a high
// count means worker error rates are undermining inference.
func (c *Closure) Conflicts() int { return c.conflicts }

// Rebuilds counts full reconstructions (the slow path; zero on a pure
// crowdsourcing run).
func (c *Closure) Rebuilds() int { return c.rebuilds }

func (c *Closure) node(pred, v int) int { return pred*c.g.nVerts + v }

func (c *Closure) confOf(id int) float64 {
	if c.ConfFn == nil {
		return 1
	}
	if w := c.ConfFn(id); w > 0 && w <= 1 {
		return w
	}
	return 1
}

func (c *Closure) find(x int) int {
	root := x
	for c.parent[root] != root {
		root = c.parent[root]
	}
	for c.parent[x] != root {
		c.parent[x], x = root, c.parent[x]
	}
	return root
}

// union merges the clusters of a and b on Blue evidence with
// confidence w. Union by size, ties to the smaller root id; the merged
// outcome (members, confidence, red links, conflict count) is
// independent of map iteration order because every combination is a
// commutative min/max.
func (c *Closure) union(a, b int, w float64) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		if w < c.conf[ra] {
			c.conf[ra] = w
		}
		return
	}
	// A Blue edge across an entailed-Red cluster pair: the direct
	// answer wins, the red link is dropped.
	if _, ok := c.red[ra][rb]; ok {
		c.noteConflict()
		c.unlinkRed(ra, rb)
	}
	if c.size[ra] < c.size[rb] || (c.size[ra] == c.size[rb] && rb < ra) {
		ra, rb = rb, ra
	}
	c.parent[rb] = ra
	c.size[ra] += c.size[rb]
	if c.conf[rb] < c.conf[ra] {
		c.conf[ra] = c.conf[rb]
	}
	if w < c.conf[ra] {
		c.conf[ra] = w
	}
	// Re-key the absorbed root's red links to the surviving root.
	if m := c.red[rb]; m != nil {
		delete(c.red, rb)
		for p, pw := range m {
			delete(c.red[p], rb)
			if len(c.red[p]) == 0 {
				delete(c.red, p)
			}
			if p == ra {
				// Cannot happen (the ra–rb link was unlinked above), but a
				// self red link would corrupt Entails; drop it defensively.
				c.noteConflict()
				continue
			}
			c.linkRed(ra, p, pw)
		}
	}
}

// markRed records Red evidence with confidence w between the clusters
// of a and b.
func (c *Closure) markRed(a, b int, w float64) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		// A Red edge inside a Blue cluster: the cluster stands (splitting
		// would discard confirmed answers), the contradiction is counted.
		c.noteConflict()
		return
	}
	c.linkRed(ra, rb, w)
}

// linkRed installs or strengthens the symmetric red link ra↔rb.
func (c *Closure) linkRed(ra, rb int, w float64) {
	for _, pair := range [2][2]int{{ra, rb}, {rb, ra}} {
		m := c.red[pair[0]]
		if m == nil {
			m = make(map[int]float64)
			c.red[pair[0]] = m
		}
		if old, ok := m[pair[1]]; !ok || w > old {
			m[pair[1]] = w
		}
	}
}

func (c *Closure) unlinkRed(ra, rb int) {
	delete(c.red[ra], rb)
	if len(c.red[ra]) == 0 {
		delete(c.red, ra)
	}
	delete(c.red[rb], ra)
	if len(c.red[rb]) == 0 {
		delete(c.red, rb)
	}
}

func (c *Closure) noteConflict() {
	c.conflicts++
	mClosureConflict.Inc()
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
