package graph

import (
	"testing"

	"cdb/internal/stats"
)

// chain4 builds the paper-style 4-table chain structure:
// University - Researcher - Paper - Citation.
func chain4() *Structure {
	return &Structure{
		Tables: []string{"University", "Researcher", "Paper", "Citation"},
		Preds: []QPred{
			{A: 0, B: 1, Name: "U.name~R.affiliation"},
			{A: 1, B: 2, Name: "R.name~P.author"},
			{A: 2, B: 3, Name: "P.title~C.title"},
		},
	}
}

func TestStructureValidate(t *testing.T) {
	if err := chain4().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Structure{Tables: []string{"A", "B"}, Preds: []QPred{{A: 0, B: 5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range predicate accepted")
	}
	self := &Structure{Tables: []string{"A", "B"}, Preds: []QPred{{A: 1, B: 1}}}
	if err := self.Validate(); err == nil {
		t.Fatal("self-join predicate accepted")
	}
	disc := &Structure{Tables: []string{"A", "B", "C"}, Preds: []QPred{{A: 0, B: 1}}}
	if err := disc.Validate(); err == nil {
		t.Fatal("disconnected structure accepted")
	}
	empty := &Structure{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty structure accepted")
	}
}

func TestStructureKind(t *testing.T) {
	if k := chain4().Kind(); k != Chain {
		t.Fatalf("chain4 kind = %v", k)
	}
	star := &Structure{
		Tables: []string{"C", "A", "B", "D"},
		Preds:  []QPred{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}},
	}
	if k := star.Kind(); k != Star {
		t.Fatalf("star kind = %v", k)
	}
	tree := &Structure{
		Tables: []string{"A", "B", "C", "D", "E"},
		Preds:  []QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 1, B: 3}, {A: 3, B: 4}},
	}
	if k := tree.Kind(); k != Tree {
		t.Fatalf("tree kind = %v", k)
	}
	cyc := &Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 0}},
	}
	if k := cyc.Kind(); k != Cyclic {
		t.Fatalf("cycle kind = %v", k)
	}
	multi := &Structure{
		Tables: []string{"A", "B"},
		Preds:  []QPred{{A: 0, B: 1}, {A: 0, B: 1}},
	}
	if k := multi.Kind(); k != Cyclic {
		t.Fatalf("multi-edge kind = %v", k)
	}
	single := &Structure{Tables: []string{"A"}}
	if k := single.Kind(); k != SingleTable {
		t.Fatalf("single kind = %v", k)
	}
	two := &Structure{Tables: []string{"A", "B"}, Preds: []QPred{{A: 0, B: 1}}}
	if k := two.Kind(); k != Chain {
		t.Fatalf("two-table kind = %v", k)
	}
}

func TestVertexMapping(t *testing.T) {
	g := MustNewGraph(chain4(), []int{2, 3, 4, 5})
	if g.NumVertices() != 14 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	for tab := 0; tab < 4; tab++ {
		for row := 0; row < g.TupleCount(tab); row++ {
			v := g.VertexID(tab, row)
			if g.TableOf(v) != tab || g.RowOf(v) != row {
				t.Fatalf("mapping broken for (%d,%d): v=%d table=%d row=%d",
					tab, row, v, g.TableOf(v), g.RowOf(v))
			}
		}
	}
}

func TestVertexIDPanics(t *testing.T) {
	g := MustNewGraph(chain4(), []int{2, 3, 4, 5})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.VertexID(0, 99)
}

// buildSmall builds a 3-table chain A(2)-B(2)-C(2) with a complete
// bipartite edge set at weight 0.5 on both predicates.
func buildSmall() *Graph {
	s := &Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := MustNewGraph(s, []int{2, 2, 2})
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			g.AddEdge(0, a, b, 0.5)
		}
	}
	for b := 0; b < 2; b++ {
		for c := 0; c < 2; c++ {
			g.AddEdge(1, b, c, 0.5)
		}
	}
	return g
}

func TestValidityAllUnknown(t *testing.T) {
	g := buildSmall()
	for e := 0; e < g.NumEdges(); e++ {
		if !g.IsValid(e) {
			t.Fatalf("edge %d should be valid in complete graph", e)
		}
	}
}

func TestValidityAfterRed(t *testing.T) {
	// Kill both B-C edges of b0: then A-b0 edges become invalid.
	g := buildSmall()
	// Edge ids: 0..3 are A-B (a0b0, a0b1, a1b0, a1b1); 4..7 are B-C
	// (b0c0, b0c1, b1c0, b1c1).
	g.SetColor(4, Red)
	g.SetColor(5, Red)
	if g.IsValid(0) || g.IsValid(2) {
		t.Fatal("A-b0 edges should be invalid once b0 is cut off from C")
	}
	if !g.IsValid(1) || !g.IsValid(3) {
		t.Fatal("A-b1 edges should remain valid")
	}
	if g.IsValid(4) || g.IsValid(5) {
		t.Fatal("red edges are never valid")
	}
	if !g.IsValid(6) || !g.IsValid(7) {
		t.Fatal("b1-C edges should remain valid")
	}
}

func TestValidUncolored(t *testing.T) {
	g := buildSmall()
	if got := len(g.ValidUncolored()); got != 8 {
		t.Fatalf("valid uncolored = %d, want 8", got)
	}
	g.SetColor(4, Red)
	g.SetColor(5, Red)
	// Invalid: 0,2 (pruned), 4,5 red. Remaining: 1,3,6,7.
	if got := len(g.ValidUncolored()); got != 4 {
		t.Fatalf("valid uncolored = %d, want 4", got)
	}
	g.SetColor(1, Blue)
	if got := len(g.ValidUncolored()); got != 3 {
		t.Fatalf("valid uncolored = %d, want 3", got)
	}
}

func TestAnswers(t *testing.T) {
	g := buildSmall()
	if len(g.Answers()) != 0 {
		t.Fatal("no answers before any blue edges")
	}
	// Make chain a0-b0-c0 all blue.
	g.SetColor(0, Blue)
	g.SetColor(4, Blue)
	ans := g.Answers()
	if len(ans) != 1 {
		t.Fatalf("answers = %d, want 1", len(ans))
	}
	if ans[0].Assign[0] != g.VertexID(0, 0) || ans[0].Assign[1] != g.VertexID(1, 0) || ans[0].Assign[2] != g.VertexID(2, 0) {
		t.Fatalf("answer assignment wrong: %v", ans[0].Assign)
	}
	// Adding blue a1-b0 creates a second answer a1-b0-c0.
	g.SetColor(2, Blue)
	if len(g.Answers()) != 2 {
		t.Fatal("expected 2 answers")
	}
}

func TestCandidates(t *testing.T) {
	g := buildSmall()
	cands := g.Candidates(0)
	if len(cands) != 8 {
		t.Fatalf("candidates = %d, want 2*2*2", len(cands))
	}
	for _, c := range cands {
		if c.Prob != 0.25 {
			t.Fatalf("candidate prob = %v, want 0.25", c.Prob)
		}
	}
	// Color one edge blue: its candidates double in probability.
	g.SetColor(0, Blue)
	cands = g.Candidates(0)
	if cands[0].Prob != 0.5 {
		t.Fatalf("top candidate prob = %v, want 0.5", cands[0].Prob)
	}
	// Red removes candidates.
	g.SetColor(4, Red)
	cands = g.Candidates(0)
	if len(cands) != 6 {
		t.Fatalf("candidates after red = %d, want 6", len(cands))
	}
	// Cap respected.
	if got := len(g.Candidates(3)); got != 3 {
		t.Fatalf("capped candidates = %d", got)
	}
}

func TestSameCandidate(t *testing.T) {
	g := buildSmall()
	// a0b0 (0) and b0c0 (4) share b0: same candidate.
	if !g.SameCandidate(0, 4) {
		t.Fatal("edges sharing b0 should conflict")
	}
	// a0b0 (0) and b1c0 (6): different B tuples, never same candidate.
	if g.SameCandidate(0, 6) {
		t.Fatal("edges with different B tuples cannot conflict")
	}
	// Same predicate edges never conflict.
	if g.SameCandidate(0, 1) || g.SameCandidate(4, 5) {
		t.Fatal("same-predicate edges cannot conflict")
	}
	if !g.SameCandidate(3, 3) {
		t.Fatal("an edge trivially co-occurs with itself")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := buildSmall()
	if comps := g.ConnectedComponents(); len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	// Separate b0's world from b1's: kill cross edges a0b1, a1b0... the
	// bipartite A layer keeps everything connected through A tuples.
	// Instead redden everything touching b1.
	for _, e := range []int{1, 3, 6, 7} {
		g.SetColor(e, Red)
	}
	comps := g.ConnectedComponents()
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1 (b0 world)", len(comps))
	}
	if len(comps[0]) != 4 {
		t.Fatalf("component size = %d, want 4", len(comps[0]))
	}
}

func TestConnectedComponentsSplit(t *testing.T) {
	// Two disjoint A-B pairs.
	s := &Structure{Tables: []string{"A", "B"}, Preds: []QPred{{A: 0, B: 1}}}
	g := MustNewGraph(s, []int{2, 2})
	g.AddEdge(0, 0, 0, 0.5)
	g.AddEdge(0, 1, 1, 0.5)
	if comps := g.ConnectedComponents(); len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
}

func TestCountColors(t *testing.T) {
	g := buildSmall()
	g.SetColor(0, Blue)
	g.SetColor(1, Red)
	u, b, r := g.CountColors()
	if u != 6 || b != 1 || r != 1 {
		t.Fatalf("colors = %d/%d/%d", u, b, r)
	}
}

func TestCutLossPaperExample(t *testing.T) {
	// Reconstruct the fragment of Figure 4 used in the paper's Eq. 1
	// walkthrough: u1,u2,u3 - r1,r2,r3 - p1 - c1.
	// Edges: (u1,r1),(u1,r2),(u2,r1),(u2,r2),(u3,r3) on pred 0;
	// (r1,p1) w=.42, (r2,p1) w=.41, (r3,p1) w=.83 on pred 1; (p1,c1) pred 2.
	s := chain4()
	g := MustNewGraph(s, []int{3, 3, 1, 1})
	g.AddEdge(0, 0, 0, 0.5) // u1-r1
	g.AddEdge(0, 0, 1, 0.5) // u1-r2
	g.AddEdge(0, 1, 0, 0.5) // u2-r1
	g.AddEdge(0, 1, 1, 0.5) // u2-r2
	g.AddEdge(0, 2, 2, 0.5) // u3-r3
	g.AddEdge(1, 0, 0, 0.42)
	g.AddEdge(1, 1, 0, 0.41)
	g.AddEdge(1, 2, 0, 0.83)
	g.AddEdge(2, 0, 0, 0.5) // p1-c1

	r1 := g.VertexID(1, 0)
	p1 := g.VertexID(2, 0)

	// Cutting r1's single edge to Paper invalidates (u1,r1),(u2,r1): α=2.
	loss, bundle := g.CutLoss(r1, 1)
	if bundle != 1 || loss != 2 {
		t.Fatalf("CutLoss(r1, pred1) = (%d,%d), want (2,1)", loss, bundle)
	}
	// Cutting p1's three edges to Researcher invalidates 6 edges.
	loss, bundle = g.CutLoss(p1, 1)
	if bundle != 3 || loss != 6 {
		t.Fatalf("CutLoss(p1, pred1) = (%d,%d), want (6,3)", loss, bundle)
	}
	// State unchanged afterwards.
	for e := 0; e < g.NumEdges(); e++ {
		if !g.IsValid(e) {
			t.Fatalf("edge %d no longer valid after hypothetical cuts", e)
		}
	}
}

func TestCutLossMissingPred(t *testing.T) {
	g := buildSmall()
	// Vertex in table A has no slot for predicate 1.
	loss, bundle := g.CutLoss(g.VertexID(0, 0), 1)
	if loss != 0 || bundle != 0 {
		t.Fatalf("CutLoss on absent predicate = (%d,%d)", loss, bundle)
	}
}

// randomGraph builds a random graph on a random tree structure for
// property tests.
func randomGraph(r *stats.RNG) *Graph {
	nTables := 2 + r.Intn(3)
	s := &Structure{}
	for i := 0; i < nTables; i++ {
		s.Tables = append(s.Tables, string(rune('A'+i)))
	}
	for i := 1; i < nTables; i++ {
		s.Preds = append(s.Preds, QPred{A: r.Intn(i), B: i})
	}
	counts := make([]int, nTables)
	for i := range counts {
		counts[i] = 1 + r.Intn(3)
	}
	g := MustNewGraph(s, counts)
	for p, pd := range s.Preds {
		for a := 0; a < counts[pd.A]; a++ {
			for b := 0; b < counts[pd.B]; b++ {
				if r.Bool(0.7) {
					g.AddEdge(p, a, b, 0.1+0.8*r.Float64())
				}
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		switch r.Intn(4) {
		case 0:
			g.SetColor(e, Red)
		case 1:
			g.SetColor(e, Blue)
		}
	}
	return g
}

// TestValidityMatchesBacktracking cross-checks the tree DP against the
// general backtracking definition of validity on random graphs.
func TestValidityMatchesBacktracking(t *testing.T) {
	r := stats.NewRNG(2024)
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(r)
		g.Revalidate()
		for e := 0; e < g.NumEdges(); e++ {
			want := g.edges[e].Color != Red && g.existsCandidateWithPins([]int{e})
			if got := g.IsValid(e); got != want {
				t.Fatalf("trial %d edge %d: DP validity %v, backtracking %v", trial, e, got, want)
			}
		}
	}
}

// TestCutLossMatchesBruteForce cross-checks the journaled hypothetical
// cut against full recomputation.
func TestCutLossMatchesBruteForce(t *testing.T) {
	r := stats.NewRNG(555)
	for trial := 0; trial < 100; trial++ {
		g := randomGraph(r)
		g.Revalidate()
		for v := 0; v < g.NumVertices(); v++ {
			for _, pred := range g.predsByTable[g.TableOf(v)] {
				gotLoss, gotBundle := g.CutLoss(v, pred)
				wantLoss, wantBundle := g.cutLossBrute(v, pred)
				if gotLoss != wantLoss || gotBundle != wantBundle {
					t.Fatalf("trial %d vertex %d pred %d: CutLoss (%d,%d), brute (%d,%d)",
						trial, v, pred, gotLoss, gotBundle, wantLoss, wantBundle)
				}
			}
		}
	}
}

// TestCutLossLeavesStateIntact: repeated hypothetical cuts never
// change observable validity.
func TestCutLossLeavesStateIntact(t *testing.T) {
	r := stats.NewRNG(777)
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(r)
		g.Revalidate()
		before := append([]bool(nil), g.valid...)
		for v := 0; v < g.NumVertices(); v++ {
			for _, pred := range g.predsByTable[g.TableOf(v)] {
				g.CutLoss(v, pred)
			}
		}
		g.Revalidate()
		for i := range before {
			if g.valid[i] != before[i] {
				t.Fatalf("trial %d: validity drifted at edge %d", trial, i)
			}
		}
	}
}

func TestTreeToChain(t *testing.T) {
	// Chain stays a chain.
	walk := chain4().TreeToChain()
	if len(walk) != 4 {
		t.Fatalf("chain walk length = %d, want 4", len(walk))
	}
	if walk[0].Pred != -1 {
		t.Fatal("first step must have no incoming predicate")
	}
	// Star: center with 3 leaves; walk must traverse each predicate.
	star := &Structure{
		Tables: []string{"C", "A", "B", "D"},
		Preds:  []QPred{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}},
	}
	walk = star.TreeToChain()
	seenPred := map[int]bool{}
	for i, st := range walk {
		if i == 0 {
			continue
		}
		seenPred[st.Pred] = true
		// Consecutive steps must be joined by the claimed predicate.
		p := star.Preds[st.Pred]
		prev := walk[i-1].Table
		if !(p.A == prev && p.B == st.Table) && !(p.B == prev && p.A == st.Table) {
			t.Fatalf("step %d: predicate %d does not join %d-%d", i, st.Pred, prev, st.Table)
		}
	}
	if len(seenPred) != 3 {
		t.Fatalf("walk covered %d predicates, want 3", len(seenPred))
	}
}

func TestTreeToChainPanicsOnCycle(t *testing.T) {
	cyc := &Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 0}},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cyc.TreeToChain()
}

func TestBreakCycles(t *testing.T) {
	cyc := &Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 0}},
	}
	tree, origin := cyc.BreakCycles()
	if tree.Kind() == Cyclic {
		t.Fatalf("still cyclic: %+v", tree)
	}
	if len(tree.Tables) != 4 {
		t.Fatalf("tables = %d, want 4 (one duplicate)", len(tree.Tables))
	}
	if origin[3] != 0 {
		t.Fatalf("duplicate should mirror table 0, got %d", origin[3])
	}
	// Acyclic input passes through unchanged.
	tr, org := chain4().BreakCycles()
	if len(tr.Tables) != 4 || len(org) != 4 {
		t.Fatal("acyclic structure should be unchanged")
	}
}

func TestCyclicValidityFallback(t *testing.T) {
	// Triangle structure: A-B-C-A, one tuple each, all edges present.
	s := &Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []QPred{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 0}},
	}
	g := MustNewGraph(s, []int{1, 1, 1})
	e0 := g.AddEdge(0, 0, 0, 0.5)
	e1 := g.AddEdge(1, 0, 0, 0.5)
	e2 := g.AddEdge(2, 0, 0, 0.5)
	if !g.IsValid(e0) || !g.IsValid(e1) || !g.IsValid(e2) {
		t.Fatal("triangle edges should all be valid")
	}
	g.SetColor(e2, Red)
	if g.IsValid(e0) || g.IsValid(e1) {
		t.Fatal("breaking the triangle invalidates the others")
	}
	// CutLoss brute path.
	g2 := MustNewGraph(s, []int{1, 1, 1})
	g2.AddEdge(0, 0, 0, 0.5)
	g2.AddEdge(1, 0, 0, 0.5)
	g2.AddEdge(2, 0, 0, 0.5)
	loss, bundle := g2.CutLoss(g2.VertexID(0, 0), 0)
	if bundle != 1 || loss != 2 {
		t.Fatalf("cyclic CutLoss = (%d,%d), want (2,1)", loss, bundle)
	}
}

func TestColorString(t *testing.T) {
	if Unknown.String() != "unknown" || Blue.String() != "blue" || Red.String() != "red" {
		t.Fatal("color strings broken")
	}
	if Color(9).String() != "Color(9)" {
		t.Fatal("unknown color rendering broken")
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{SingleTable: "single-table", Chain: "chain", Star: "star", Tree: "tree", Cyclic: "cyclic", Kind(42): "unknown"}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestCountCandidatesThrough(t *testing.T) {
	g := buildSmall()
	// Edge a0b0 participates in 2 candidates (c0 or c1).
	if n := g.CountCandidatesThrough(0, 0); n != 2 {
		t.Fatalf("candidates through a0b0 = %d, want 2", n)
	}
	if n := g.CountCandidatesThrough(0, 1); n != 1 {
		t.Fatalf("limited count = %d, want 1", n)
	}
}

func TestNewGraphErrors(t *testing.T) {
	s := chain4()
	if _, err := NewGraph(s, []int{1, 2}); err == nil {
		t.Fatal("count/table mismatch accepted")
	}
	if _, err := NewGraph(s, []int{1, 2, 3, -1}); err == nil {
		t.Fatal("negative count accepted")
	}
	bad := &Structure{Tables: []string{"A", "B", "C"}, Preds: []QPred{{A: 0, B: 1}}}
	if _, err := NewGraph(bad, []int{1, 1, 1}); err == nil {
		t.Fatal("disconnected structure accepted")
	}
}

func TestMustNewGraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewGraph(chain4(), []int{1})
}

func TestSetWeightAndAccessors(t *testing.T) {
	g := buildSmall()
	g.SetWeight(0, 0.75)
	if g.Edge(0).W != 0.75 {
		t.Fatal("SetWeight lost")
	}
	e := g.Edge(0)
	if g.Other(0, e.U) != e.V || g.Other(0, e.V) != e.U {
		t.Fatal("Other broken")
	}
	if got := g.EdgesAt(g.VertexID(0, 0), 1); got != nil {
		t.Fatalf("table A has no pred-1 slot, got %v", got)
	}
	all := g.AllEdgesAt(g.VertexID(1, 0)) // b0: 2 A-edges + 2 C-edges
	if len(all) != 4 {
		t.Fatalf("AllEdgesAt(b0) = %v", all)
	}
	if g.NumTables() != 3 || g.TupleCount(1) != 2 {
		t.Fatal("table accessors broken")
	}
}

func TestAddEdgePanicsOnBadPred(t *testing.T) {
	g := buildSmall()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddEdge(9, 0, 0, 0.5)
}

func TestSetColorIdempotent(t *testing.T) {
	g := buildSmall()
	g.Revalidate()
	g.SetColor(0, Blue)
	g.Revalidate()
	// Re-setting the same color must not dirty the graph (cheap check:
	// validity is still queryable and unchanged).
	g.SetColor(0, Blue)
	if !g.IsValid(1) {
		t.Fatal("validity lost after idempotent recolor")
	}
}

func TestCandidatesCapZero(t *testing.T) {
	g := buildSmall()
	if got := len(g.Candidates(-1)); got != 8 {
		t.Fatalf("negative cap should mean unlimited, got %d", got)
	}
}

func TestEnumerateEmbeddingsPins(t *testing.T) {
	g := buildSmall()
	count := 0
	g.EnumerateEmbeddings([]int{0}, func(e Edge) bool { return true }, func(_, edges []int) bool {
		if edges[0] != 0 {
			t.Fatal("pinned edge not honoured")
		}
		count++
		return true
	})
	if count != 2 {
		t.Fatalf("pinned enumeration found %d embeddings, want 2", count)
	}
	// Contradictory pins: no embeddings.
	count = 0
	g.EnumerateEmbeddings([]int{0, 1}, func(e Edge) bool { return true }, func(_, _ []int) bool {
		count++
		return true
	})
	if count != 0 {
		t.Fatal("contradictory pins should yield nothing")
	}
}
