package graph

// Validity maintenance (Definition 3). An edge is valid iff it appears
// in at least one candidate: an embedding that assigns one tuple per
// table such that every predicate's tuple pair is a non-red edge.
//
// For tree-shaped query structures we maintain directional cover
// facts: cover[v][slot] means "tuple v can be extended to satisfy the
// entire subtree of the query tree that hangs beyond the slot-th
// predicate of v's table". The fact dependency graph is acyclic (it
// follows directed query-tree edges), so an optimistic initialization
// followed by false-propagation computes the unique fixpoint. An edge
// e=(u,v) on predicate p is then valid iff it is non-red, u covers all
// its predicates except p, and v covers all its predicates except p.
//
// Cyclic structures fall back to per-edge backtracking (correct,
// slower); the planner normally rewrites cycles away first
// (BreakCycles), matching §5.1.1.
//
// The cover facts and the scratch used by hypothetical cuts live in a
// cutState so the cost engine can clone them into CutEvaluators and
// compute cut losses for disjoint edge sets concurrently.

// cutState bundles the cover-fact arrays consulted — and temporarily
// mutated, with rollback — by hypothetical cuts. The graph owns one
// primary instance (kept current by Revalidate); CutEvaluators carry
// private copies.
type cutState struct {
	cover      [][]bool // cover[v][slot]: v can cover the subtree beyond that pred
	support    [][]int  // supporting-edge counters for cover facts
	falseCount []int    // number of false cover facts per vertex

	epoch     int
	edgeEpoch []int // scratch for hypothetical-cut dedup
	journal   []journalEntry
	work      []fact
}

// copyFrom deep-copies src's cover facts into cs, reusing cs's
// allocations where sizes match.
func (cs *cutState) copyFrom(src *cutState) {
	if len(cs.cover) != len(src.cover) {
		cs.cover = make([][]bool, len(src.cover))
		cs.support = make([][]int, len(src.support))
	}
	for v := range src.cover {
		if len(cs.cover[v]) != len(src.cover[v]) {
			cs.cover[v] = make([]bool, len(src.cover[v]))
			cs.support[v] = make([]int, len(src.support[v]))
		}
		copy(cs.cover[v], src.cover[v])
		copy(cs.support[v], src.support[v])
	}
	if len(cs.falseCount) != len(src.falseCount) {
		cs.falseCount = make([]int, len(src.falseCount))
	}
	copy(cs.falseCount, src.falseCount)
	if len(cs.edgeEpoch) != len(src.edgeEpoch) {
		cs.edgeEpoch = make([]int, len(src.edgeEpoch))
	} else {
		for i := range cs.edgeEpoch {
			cs.edgeEpoch[i] = 0
		}
	}
	cs.epoch = 0
	cs.journal = cs.journal[:0]
	cs.work = cs.work[:0]
}

// coversAllExcept reports whether vertex v's cover facts hold for
// every incident predicate slot except skip (-1 means all slots).
func (cs *cutState) coversAllExcept(v, skipSlot int) bool {
	switch cs.falseCount[v] {
	case 0:
		return true
	case 1:
		return skipSlot >= 0 && !cs.cover[v][skipSlot]
	default:
		return false
	}
}

// Revalidate recomputes edge validity from the current colors. It is
// cheap to call repeatedly: a no-op while the graph is unchanged.
func (g *Graph) Revalidate() {
	if !g.dirty {
		return
	}
	g.dirty = false
	if g.treeShaped {
		g.revalidateTree()
	} else {
		g.revalidateBacktrack()
	}
}

// IsValid reports whether edge id is currently contained in some
// candidate. Red edges are never valid.
func (g *Graph) IsValid(id int) bool {
	g.Revalidate()
	return g.valid[id]
}

// ValidUncolored returns the ids of edges that still need to be asked:
// valid and not yet colored.
func (g *Graph) ValidUncolored() []int {
	return g.ValidUncoloredInto(nil)
}

// ValidUncoloredInto appends the valid uncolored edge ids to buf[:0]
// and returns it, letting hot paths reuse one buffer across rounds
// instead of allocating per call.
func (g *Graph) ValidUncoloredInto(buf []int) []int {
	g.Revalidate()
	buf = buf[:0]
	for i := range g.edges {
		if g.edges[i].Color == Unknown && g.valid[i] {
			buf = append(buf, i)
		}
	}
	return buf
}

// CountValidUncolored returns len(ValidUncolored()) without
// allocating; the tracer records it per round as the "edges remaining"
// gauge of query progress.
func (g *Graph) CountValidUncolored() int {
	g.Revalidate()
	n := 0
	for i := range g.edges {
		if g.edges[i].Color == Unknown && g.valid[i] {
			n++
		}
	}
	return n
}

// noteColorValidity routes a color transition to the validity state.
// On tree-shaped graphs with current cover facts the steady-state
// crowd transitions are absorbed in place — Unknown→Blue changes no
// fact (validity only distinguishes red from non-red), Unknown→Red
// removes a single edge's support and propagates — so a round that
// colored k edges costs O(affected region), not O(E). Every other
// transition (un-coloring, blue→red repairs, or any change while a
// full rebuild is already pending) falls back to the dirty flag.
func (g *Graph) noteColorValidity(id int, old, c Color) {
	if !g.dirty && g.treeShaped && old == Unknown &&
		len(g.valid) == len(g.edges) && len(g.cs.cover) == g.nVerts {
		if c == Blue {
			return
		}
		g.reddenEdgeTree(id)
		return
	}
	g.dirty = true
}

// reddenEdgeTree applies one Unknown→Red transition to the live cover
// facts: the removed edge stops supporting its endpoints' facts, and
// the same monotone false-propagation revalidateTree runs from scratch
// is seeded with just the affected facts, clearing edge validity along
// the way. False-fact propagation is confluent, so the state lands on
// the identical fixpoint the full rebuild would compute (enforced by
// TestIncrementalValidityMatchesRebuild).
func (g *Graph) reddenEdgeTree(id int) {
	cs := &g.cs
	e := g.edges[id]
	g.valid[id] = false
	uSlot := g.predSlot[g.TableOf(e.U)][e.Pred]
	vSlot := g.predSlot[g.TableOf(e.V)][e.Pred]
	work := g.factWork[:0]
	// The edge contributed to an endpoint's support only while the
	// other endpoint covered everything beyond it (the invariant the
	// propagation maintains), so only live contributions are removed.
	if cs.coversAllExcept(e.U, uSlot) {
		cs.support[e.V][vSlot]--
		if cs.support[e.V][vSlot] == 0 && cs.cover[e.V][vSlot] {
			work = append(work, fact{e.V, vSlot})
		}
	}
	if cs.coversAllExcept(e.V, vSlot) {
		cs.support[e.U][uSlot]--
		if cs.support[e.U][uSlot] == 0 && cs.cover[e.U][uSlot] {
			work = append(work, fact{e.U, uSlot})
		}
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if !cs.cover[f.v][f.slot] {
			continue
		}
		cs.cover[f.v][f.slot] = false
		cs.falseCount[f.v]++
		switch cs.falseCount[f.v] {
		case 1:
			for q := range cs.cover[f.v] {
				if q != f.slot {
					work = g.dropSupportInvalidate(cs, f.v, q, work)
				}
			}
		case 2:
			for q := range cs.cover[f.v] {
				if q != f.slot && !cs.cover[f.v][q] {
					work = g.dropSupportInvalidate(cs, f.v, q, work)
					break
				}
			}
		}
	}
	g.factWork = work[:0]
}

// dropSupportInvalidate is dropSupportSlot with permanent edge
// invalidation: coversAllExcept(v, q) just flipped false, so every
// non-red edge at v on slot q left its last candidate.
func (g *Graph) dropSupportInvalidate(cs *cutState, v, q int, work []fact) []fact {
	pred := g.predsByTable[g.TableOf(v)][q]
	for _, eID := range g.adj[v][q] {
		e := g.edges[eID]
		if e.Color == Red {
			continue
		}
		g.valid[eID] = false
		w := e.U
		if w == v {
			w = e.V
		}
		wSlot := g.predSlot[g.TableOf(w)][pred]
		cs.support[w][wSlot]--
		if cs.support[w][wSlot] == 0 && cs.cover[w][wSlot] {
			work = append(work, fact{w, wSlot})
		}
	}
	return work
}

func (g *Graph) revalidateTree() {
	n := g.nVerts
	cs := &g.cs
	if cs.cover == nil || len(cs.cover) != n {
		cs.cover = make([][]bool, n)
		cs.support = make([][]int, n)
		cs.falseCount = make([]int, n)
		for v := 0; v < n; v++ {
			slots := len(g.predsByTable[g.TableOf(v)])
			cs.cover[v] = make([]bool, slots)
			cs.support[v] = make([]int, slots)
		}
	}
	// Optimistic init: everything covers; supports count non-red
	// incident edges per slot.
	for v := 0; v < n; v++ {
		cs.falseCount[v] = 0
		for s := range cs.cover[v] {
			cs.cover[v][s] = true
			cnt := 0
			for _, eID := range g.adj[v][s] {
				if g.edges[eID].Color != Red {
					cnt++
				}
			}
			cs.support[v][s] = cnt
		}
	}
	// Worklist of facts that are false: zero support.
	work := g.factWork[:0]
	for v := 0; v < n; v++ {
		for s := range cs.cover[v] {
			if cs.support[v][s] == 0 {
				work = append(work, fact{v, s})
			}
		}
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if !cs.cover[f.v][f.slot] {
			continue
		}
		cs.cover[f.v][f.slot] = false
		cs.falseCount[f.v]++
		// f.v stops supporting neighbor facts through every slot q where
		// coversAllExcept(f.v, q) just flipped from true to false.
		switch cs.falseCount[f.v] {
		case 1:
			// Previously covered everything: coversAllExcept flipped for
			// every slot except the newly false one.
			for q := range cs.cover[f.v] {
				if q != f.slot {
					work = g.dropSupportSlot(cs, f.v, q, work)
				}
			}
		case 2:
			// Previously exactly one false slot f0: coversAllExcept was
			// true only for q==f0; it flips there now.
			for q := range cs.cover[f.v] {
				if q != f.slot && !cs.cover[f.v][q] {
					work = g.dropSupportSlot(cs, f.v, q, work)
					break
				}
			}
		default:
			// Already covered nothing; no supports to drop.
		}
	}
	g.factWork = work[:0]
	// Edge validity.
	if len(g.valid) != len(g.edges) {
		g.valid = make([]bool, len(g.edges))
	}
	for i := range g.edges {
		g.valid[i] = g.edgeValidNow(i)
	}
	if len(cs.edgeEpoch) != len(g.edges) {
		cs.edgeEpoch = make([]int, len(g.edges))
		cs.epoch = 0
	}
}

// fact identifies one directional cover fact: vertex v's coverage of
// the query subtree beyond its slot-th incident predicate.
type fact struct{ v, slot int }

// dropSupportSlot removes v's contribution from neighbor facts across
// predicate slot q of v (v no longer covers "away from q").
func (g *Graph) dropSupportSlot(cs *cutState, v, q int, work []fact) []fact {
	pred := g.predsByTable[g.TableOf(v)][q]
	for _, eID := range g.adj[v][q] {
		e := g.edges[eID]
		if e.Color == Red {
			continue
		}
		w := e.U
		if w == v {
			w = e.V
		}
		wSlot := g.predSlot[g.TableOf(w)][pred]
		cs.support[w][wSlot]--
		if cs.support[w][wSlot] == 0 && cs.cover[w][wSlot] {
			work = append(work, fact{w, wSlot})
		}
	}
	return work
}

// edgeValidNow evaluates validity from the current cover facts.
func (g *Graph) edgeValidNow(id int) bool {
	e := g.edges[id]
	if e.Color == Red {
		return false
	}
	uSlot := g.predSlot[g.TableOf(e.U)][e.Pred]
	vSlot := g.predSlot[g.TableOf(e.V)][e.Pred]
	return g.cs.coversAllExcept(e.U, uSlot) && g.cs.coversAllExcept(e.V, vSlot)
}

// revalidateBacktrack is the general fallback: per-edge existence
// check by backtracking embedding search.
func (g *Graph) revalidateBacktrack() {
	if len(g.valid) != len(g.edges) {
		g.valid = make([]bool, len(g.edges))
	}
	for i, e := range g.edges {
		if e.Color == Red {
			g.valid[i] = false
			continue
		}
		g.valid[i] = g.existsEmbeddingWith(map[int]int{i: i}, nil)
	}
	if len(g.cs.edgeEpoch) != len(g.edges) {
		g.cs.edgeEpoch = make([]int, len(g.edges))
		g.cs.epoch = 0
	}
}

// --- hypothetical cuts (Eq. 1 support) ---

// journalEntry records one state mutation for rollback.
type journalEntry struct {
	kind int // 0 support dec, 1 cover flip
	v    int
	slot int
}

// CutLoss computes how many currently-valid uncolored edges (excluding
// the cut bundle itself) would become invalid if all *uncolored* edges
// incident to vertex v on predicate pred were colored Red. This is the
// α / β quantity of the pruning expectation (Eq. 1). It also returns
// the bundle size x (number of uncolored edges in the bundle). Blue
// edges are left in place: if the bundle contains a blue edge the
// disconnection probability is zero anyway and the caller discounts
// the term. The graph state is unchanged on return.
func (g *Graph) CutLoss(v, pred int) (loss, bundle int) {
	g.Revalidate()
	if !g.treeShaped {
		return g.cutLossBrute(v, pred)
	}
	return g.cutLossTree(&g.cs, v, pred)
}

// CutEvaluator computes cut losses against a private copy of the
// graph's cover-fact state. Because CutLoss temporarily mutates that
// state, the graph's own CutLoss must not run concurrently with
// itself; evaluators carry their own copies, so any number of them may
// run in parallel — as long as nothing mutates the graph (colors,
// edges, weights) while they do. Only meaningful for tree-shaped
// structures; on cyclic graphs the evaluator falls back to the
// (non-concurrent) brute-force path.
type CutEvaluator struct {
	g  *Graph
	cs cutState
}

// NewCutEvaluator snapshots the current validity state into a fresh
// evaluator. It revalidates first, so create evaluators from a single
// goroutine before fanning out.
func (g *Graph) NewCutEvaluator() *CutEvaluator {
	g.Revalidate()
	ev := &CutEvaluator{g: g}
	if g.treeShaped {
		ev.cs.copyFrom(&g.cs)
	}
	return ev
}

// Graph returns the underlying graph (for read-only access).
func (ev *CutEvaluator) Graph() *Graph { return ev.g }

// CutLoss is Graph.CutLoss evaluated on the evaluator's private state.
func (ev *CutEvaluator) CutLoss(v, pred int) (loss, bundle int) {
	if !ev.g.treeShaped {
		return ev.g.CutLoss(v, pred)
	}
	return ev.g.cutLossTree(&ev.cs, v, pred)
}

// cutLossTree runs the journaled hypothetical cut on cs, which must
// mirror the graph's current cover facts. Only cs is mutated (and
// rolled back); everything read from the graph itself is immutable
// during the call, which is what makes concurrent evaluators safe.
func (g *Graph) cutLossTree(cs *cutState, v, pred int) (loss, bundle int) {
	t := g.TableOf(v)
	slot, ok := g.predSlot[t][pred]
	if !ok {
		return 0, 0
	}
	journal := cs.journal[:0]
	work := cs.work[:0]
	cs.epoch++

	// Virtually redden the bundle: each non-red edge (v,w) on pred
	// stops supporting cover facts on BOTH sides. Bundle members are
	// stamped with the epoch so the loss count can exclude them.
	epoch := cs.epoch
	for _, eID := range g.adj[v][slot] {
		e := g.edges[eID]
		if e.Color != Unknown {
			continue
		}
		bundle++
		cs.edgeEpoch[eID] = -epoch
		w := e.U
		if w == v {
			w = e.V
		}
		wSlot := g.predSlot[g.TableOf(w)][pred]
		// An edge contributes to support[w][wSlot] only while its other
		// endpoint covers-all-except the predicate (that is the
		// invariant the propagation maintains), so removing the edge
		// decrements only live contributions.
		if cs.coversAllExcept(v, slot) {
			cs.support[w][wSlot]--
			journal = append(journal, journalEntry{kind: 0, v: w, slot: wSlot})
			if cs.support[w][wSlot] == 0 && cs.cover[w][wSlot] {
				work = append(work, fact{w, wSlot})
			}
		}
		if cs.coversAllExcept(w, wSlot) {
			cs.support[v][slot]--
			journal = append(journal, journalEntry{kind: 0, v: v, slot: slot})
			if cs.support[v][slot] == 0 && cs.cover[v][slot] {
				work = append(work, fact{v, slot})
			}
		}
	}

	// Propagate false facts, counting newly-invalid edges.
	newlyInvalid := 0
	// Only uncolored edges count toward the loss: invalidating an
	// already-asked (blue) edge saves no task. Bundle members carry
	// -epoch, already-counted edges +epoch; both are excluded.
	markInvalid := func(eID int) {
		if cs.edgeEpoch[eID] == -epoch {
			return
		}
		if g.edges[eID].Color == Unknown && g.valid[eID] && cs.edgeEpoch[eID] != epoch {
			cs.edgeEpoch[eID] = epoch
			newlyInvalid++
		}
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if !cs.cover[f.v][f.slot] {
			continue
		}
		cs.cover[f.v][f.slot] = false
		cs.falseCount[f.v]++
		journal = append(journal, journalEntry{kind: 1, v: f.v, slot: f.slot})

		// Which coversAllExcept(f.v, q) facts flipped false?
		var affected []int
		switch cs.falseCount[f.v] {
		case 1:
			for q := range cs.cover[f.v] {
				if q != f.slot {
					affected = append(affected, q)
				}
			}
		case 2:
			for q := range cs.cover[f.v] {
				if q != f.slot && !cs.cover[f.v][q] {
					affected = append(affected, q)
					break
				}
			}
		}
		for _, q := range affected {
			predQ := g.predsByTable[g.TableOf(f.v)][q]
			for _, eID := range g.adj[f.v][q] {
				e := g.edges[eID]
				if e.Color == Red {
					continue
				}
				markInvalid(eID)
				w := e.U
				if w == f.v {
					w = e.V
				}
				wSlot := g.predSlot[g.TableOf(w)][predQ]
				cs.support[w][wSlot]--
				journal = append(journal, journalEntry{kind: 0, v: w, slot: wSlot})
				if cs.support[w][wSlot] == 0 && cs.cover[w][wSlot] {
					work = append(work, fact{w, wSlot})
				}
			}
		}
		// Edges on f.slot itself: cover[f.v][f.slot] false does not by
		// itself invalidate those edges (validity looks at
		// coversAllExcept of both endpoints w.r.t. their own pred), but
		// coversAllExcept(f.v, q) flips handled above cover that.
	}

	// Rollback in reverse order.
	for i := len(journal) - 1; i >= 0; i-- {
		j := journal[i]
		switch j.kind {
		case 0:
			cs.support[j.v][j.slot]++
		case 1:
			cs.cover[j.v][j.slot] = true
			cs.falseCount[j.v]--
		}
	}
	cs.journal = journal[:0]
	cs.work = work[:0]
	return newlyInvalid, bundle
}

// cutLossBrute recomputes validity on a temporarily mutated copy; used
// only for cyclic structures.
func (g *Graph) cutLossBrute(v, pred int) (loss, bundle int) {
	t := g.TableOf(v)
	slot, ok := g.predSlot[t][pred]
	if !ok {
		return 0, 0
	}
	var flipped []int
	for _, eID := range g.adj[v][slot] {
		if g.edges[eID].Color == Unknown {
			flipped = append(flipped, eID)
		}
	}
	bundle = len(flipped)
	if bundle == 0 {
		return 0, 0
	}
	before := append([]bool(nil), g.valid...)
	for _, eID := range flipped {
		g.edges[eID].Color = Red
	}
	g.dirty = true
	g.Revalidate()
	flippedSet := map[int]bool{}
	for _, eID := range flipped {
		flippedSet[eID] = true
	}
	for i := range g.valid {
		if before[i] && !g.valid[i] && !flippedSet[i] && g.edges[i].Color == Unknown {
			loss++
		}
	}
	for _, eID := range flipped {
		g.edges[eID].Color = Unknown
	}
	g.dirty = true
	g.Revalidate()
	return loss, bundle
}
