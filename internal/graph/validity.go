package graph

// Validity maintenance (Definition 3). An edge is valid iff it appears
// in at least one candidate: an embedding that assigns one tuple per
// table such that every predicate's tuple pair is a non-red edge.
//
// For tree-shaped query structures we maintain directional cover
// facts: cover[v][slot] means "tuple v can be extended to satisfy the
// entire subtree of the query tree that hangs beyond the slot-th
// predicate of v's table". The fact dependency graph is acyclic (it
// follows directed query-tree edges), so an optimistic initialization
// followed by false-propagation computes the unique fixpoint. An edge
// e=(u,v) on predicate p is then valid iff it is non-red, u covers all
// its predicates except p, and v covers all its predicates except p.
//
// Cyclic structures fall back to per-edge backtracking (correct,
// slower); the planner normally rewrites cycles away first
// (BreakCycles), matching §5.1.1.

// Revalidate recomputes edge validity from the current colors. It is
// cheap to call repeatedly: a no-op while the graph is unchanged.
func (g *Graph) Revalidate() {
	if !g.dirty {
		return
	}
	g.dirty = false
	if g.treeShaped {
		g.revalidateTree()
	} else {
		g.revalidateBacktrack()
	}
}

// IsValid reports whether edge id is currently contained in some
// candidate. Red edges are never valid.
func (g *Graph) IsValid(id int) bool {
	g.Revalidate()
	return g.valid[id]
}

// ValidUncolored returns the ids of edges that still need to be asked:
// valid and not yet colored.
func (g *Graph) ValidUncolored() []int {
	g.Revalidate()
	var out []int
	for i, e := range g.edges {
		if e.Color == Unknown && g.valid[i] {
			out = append(out, i)
		}
	}
	return out
}

// coversAllExcept reports whether vertex v's cover facts hold for
// every incident predicate slot except skip (-1 means all slots).
func (g *Graph) coversAllExcept(v, skipSlot int) bool {
	switch g.falseCount[v] {
	case 0:
		return true
	case 1:
		return skipSlot >= 0 && !g.cover[v][skipSlot]
	default:
		return false
	}
}

func (g *Graph) revalidateTree() {
	n := g.nVerts
	if g.cover == nil || len(g.cover) != n {
		g.cover = make([][]bool, n)
		g.support = make([][]int, n)
		g.falseCount = make([]int, n)
		for v := 0; v < n; v++ {
			slots := len(g.predsByTable[g.TableOf(v)])
			g.cover[v] = make([]bool, slots)
			g.support[v] = make([]int, slots)
		}
	}
	// Optimistic init: everything covers; supports count non-red
	// incident edges per slot.
	for v := 0; v < n; v++ {
		g.falseCount[v] = 0
		for s := range g.cover[v] {
			g.cover[v][s] = true
			cnt := 0
			for _, eID := range g.adj[v][s] {
				if g.edges[eID].Color != Red {
					cnt++
				}
			}
			g.support[v][s] = cnt
		}
	}
	// Worklist of facts that are false: zero support.
	var work []fact
	for v := 0; v < n; v++ {
		for s := range g.cover[v] {
			if g.support[v][s] == 0 {
				work = append(work, fact{v, s})
			}
		}
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if !g.cover[f.v][f.slot] {
			continue
		}
		g.cover[f.v][f.slot] = false
		g.falseCount[f.v]++
		// f.v stops supporting neighbor facts through every slot q where
		// coversAllExcept(f.v, q) just flipped from true to false.
		switch g.falseCount[f.v] {
		case 1:
			// Previously covered everything: coversAllExcept flipped for
			// every slot except the newly false one.
			for q := range g.cover[f.v] {
				if q != f.slot {
					work = g.dropSupportSlot(f.v, q, work)
				}
			}
		case 2:
			// Previously exactly one false slot f0: coversAllExcept was
			// true only for q==f0; it flips there now.
			for q := range g.cover[f.v] {
				if q != f.slot && !g.cover[f.v][q] {
					work = g.dropSupportSlot(f.v, q, work)
					break
				}
			}
		default:
			// Already covered nothing; no supports to drop.
		}
	}
	// Edge validity.
	if len(g.valid) != len(g.edges) {
		g.valid = make([]bool, len(g.edges))
	}
	for i := range g.edges {
		g.valid[i] = g.edgeValidNow(i)
	}
	if len(g.edgeEpoch) != len(g.edges) {
		g.edgeEpoch = make([]int, len(g.edges))
		g.epoch = 0
	}
}

// fact identifies one directional cover fact: vertex v's coverage of
// the query subtree beyond its slot-th incident predicate.
type fact struct{ v, slot int }

// dropSupportSlot removes v's contribution from neighbor facts across
// predicate slot q of v (v no longer covers "away from q").
func (g *Graph) dropSupportSlot(v, q int, work []fact) []fact {
	pred := g.predsByTable[g.TableOf(v)][q]
	for _, eID := range g.adj[v][q] {
		e := g.edges[eID]
		if e.Color == Red {
			continue
		}
		w := e.U
		if w == v {
			w = e.V
		}
		wSlot := g.predSlot[g.TableOf(w)][pred]
		g.support[w][wSlot]--
		if g.support[w][wSlot] == 0 && g.cover[w][wSlot] {
			work = append(work, fact{w, wSlot})
		}
	}
	return work
}

// edgeValidNow evaluates validity from the current cover facts.
func (g *Graph) edgeValidNow(id int) bool {
	e := g.edges[id]
	if e.Color == Red {
		return false
	}
	uSlot := g.predSlot[g.TableOf(e.U)][e.Pred]
	vSlot := g.predSlot[g.TableOf(e.V)][e.Pred]
	return g.coversAllExcept(e.U, uSlot) && g.coversAllExcept(e.V, vSlot)
}

// revalidateBacktrack is the general fallback: per-edge existence
// check by backtracking embedding search.
func (g *Graph) revalidateBacktrack() {
	if len(g.valid) != len(g.edges) {
		g.valid = make([]bool, len(g.edges))
	}
	for i, e := range g.edges {
		if e.Color == Red {
			g.valid[i] = false
			continue
		}
		g.valid[i] = g.existsEmbeddingWith(map[int]int{i: i}, nil)
	}
	if len(g.edgeEpoch) != len(g.edges) {
		g.edgeEpoch = make([]int, len(g.edges))
		g.epoch = 0
	}
}

// --- hypothetical cuts (Eq. 1 support) ---

// journalEntry records one state mutation for rollback.
type journalEntry struct {
	kind int // 0 support dec, 1 cover flip, 2 edge virtually reddened
	v    int
	slot int
	edge int
}

// CutLoss computes how many currently-valid uncolored edges (excluding
// the cut bundle itself) would become invalid if all *uncolored* edges
// incident to vertex v on predicate pred were colored Red. This is the
// α / β quantity of the pruning expectation (Eq. 1). It also returns
// the bundle size x (number of uncolored edges in the bundle). Blue
// edges are left in place: if the bundle contains a blue edge the
// disconnection probability is zero anyway and the caller discounts
// the term. The graph state is unchanged on return.
func (g *Graph) CutLoss(v, pred int) (loss, bundle int) {
	g.Revalidate()
	if !g.treeShaped {
		return g.cutLossBrute(v, pred)
	}
	t := g.TableOf(v)
	slot, ok := g.predSlot[t][pred]
	if !ok {
		return 0, 0
	}
	var journal []journalEntry
	var work []fact
	g.epoch++

	// Virtually redden the bundle: each non-red edge (v,w) on pred
	// stops supporting cover facts on BOTH sides.
	cutEdges := map[int]bool{}
	for _, eID := range g.adj[v][slot] {
		e := g.edges[eID]
		if e.Color != Unknown {
			continue
		}
		bundle++
		cutEdges[eID] = true
		w := e.U
		if w == v {
			w = e.V
		}
		wSlot := g.predSlot[g.TableOf(w)][pred]
		// An edge contributes to support[w][wSlot] only while its other
		// endpoint covers-all-except the predicate (that is the
		// invariant the propagation maintains), so removing the edge
		// decrements only live contributions.
		if g.coversAllExcept(v, slot) {
			g.support[w][wSlot]--
			journal = append(journal, journalEntry{kind: 0, v: w, slot: wSlot})
			if g.support[w][wSlot] == 0 && g.cover[w][wSlot] {
				work = append(work, fact{w, wSlot})
			}
		}
		if g.coversAllExcept(w, wSlot) {
			g.support[v][slot]--
			journal = append(journal, journalEntry{kind: 0, v: v, slot: slot})
			if g.support[v][slot] == 0 && g.cover[v][slot] {
				work = append(work, fact{v, slot})
			}
		}
	}

	// Propagate false facts, counting newly-invalid edges.
	newlyInvalid := 0
	// Only uncolored edges count toward the loss: invalidating an
	// already-asked (blue) edge saves no task.
	markInvalid := func(eID int) {
		if cutEdges[eID] {
			return
		}
		if g.edges[eID].Color == Unknown && g.valid[eID] && g.edgeEpoch[eID] != g.epoch {
			g.edgeEpoch[eID] = g.epoch
			newlyInvalid++
		}
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if !g.cover[f.v][f.slot] {
			continue
		}
		g.cover[f.v][f.slot] = false
		g.falseCount[f.v]++
		journal = append(journal, journalEntry{kind: 1, v: f.v, slot: f.slot})

		// Which coversAllExcept(f.v, q) facts flipped false?
		var affected []int
		switch g.falseCount[f.v] {
		case 1:
			for q := range g.cover[f.v] {
				if q != f.slot {
					affected = append(affected, q)
				}
			}
		case 2:
			for q := range g.cover[f.v] {
				if q != f.slot && !g.cover[f.v][q] {
					affected = append(affected, q)
					break
				}
			}
		}
		for _, q := range affected {
			predQ := g.predsByTable[g.TableOf(f.v)][q]
			for _, eID := range g.adj[f.v][q] {
				e := g.edges[eID]
				if e.Color == Red {
					continue
				}
				markInvalid(eID)
				w := e.U
				if w == f.v {
					w = e.V
				}
				wSlot := g.predSlot[g.TableOf(w)][predQ]
				g.support[w][wSlot]--
				journal = append(journal, journalEntry{kind: 0, v: w, slot: wSlot})
				if g.support[w][wSlot] == 0 && g.cover[w][wSlot] {
					work = append(work, fact{w, wSlot})
				}
			}
		}
		// Edges on f.slot itself: cover[f.v][f.slot] false does not by
		// itself invalidate those edges (validity looks at
		// coversAllExcept of both endpoints w.r.t. their own pred), but
		// coversAllExcept(f.v, q) flips handled above cover that.
	}

	// Rollback in reverse order.
	for i := len(journal) - 1; i >= 0; i-- {
		j := journal[i]
		switch j.kind {
		case 0:
			g.support[j.v][j.slot]++
		case 1:
			g.cover[j.v][j.slot] = true
			g.falseCount[j.v]--
		}
	}
	return newlyInvalid, bundle
}

// cutLossBrute recomputes validity on a temporarily mutated copy; used
// only for cyclic structures.
func (g *Graph) cutLossBrute(v, pred int) (loss, bundle int) {
	t := g.TableOf(v)
	slot, ok := g.predSlot[t][pred]
	if !ok {
		return 0, 0
	}
	var flipped []int
	for _, eID := range g.adj[v][slot] {
		if g.edges[eID].Color == Unknown {
			flipped = append(flipped, eID)
		}
	}
	bundle = len(flipped)
	if bundle == 0 {
		return 0, 0
	}
	before := append([]bool(nil), g.valid...)
	for _, eID := range flipped {
		g.edges[eID].Color = Red
	}
	g.dirty = true
	g.Revalidate()
	flippedSet := map[int]bool{}
	for _, eID := range flipped {
		flippedSet[eID] = true
	}
	for i := range g.valid {
		if before[i] && !g.valid[i] && !flippedSet[i] && g.edges[i].Color == Unknown {
			loss++
		}
	}
	for _, eID := range flipped {
		g.edges[eID].Color = Unknown
	}
	g.dirty = true
	g.Revalidate()
	return loss, bundle
}
