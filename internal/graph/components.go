package graph

import (
	"sort"
	"sync/atomic"

	"cdb/internal/obs"
)

// Cached edge-component partition. Components connect edges through
// non-red edges sharing a vertex; red edges belong to no component.
// The latency scheduler consults the partition every round (§5.2), and
// the incremental cost engine uses it to bound the region whose
// pruning expectations a round's answers can have changed — so instead
// of re-deriving the partition per round, the graph keeps it cached
// and refreshes only the components a color change touched.
//
// Invalidation rules per color transition:
//   - Unknown↔Blue: the partition is unchanged (both are non-red).
//   - →Red: the edge leaves the partition and may split its component;
//     only that component is re-derived.
//   - Red→ anything: the edge rejoins and may merge components; this
//     never happens on the crowdsourcing path, so it simply forces a
//     full rebuild.
//
// Adding an edge also forces a full rebuild.

var graphUIDCounter uint64

func nextGraphUID() uint64 { return atomic.AddUint64(&graphUIDCounter, 1) }

// Component-cache health metrics: a full rebuild is the O(E) slow
// path; an incremental refresh re-floods only dirtied components. A
// high rebuild:refresh ratio on the crowdsourcing path indicates the
// invalidation rules are being defeated.
var (
	mCompRebuildFull = obs.Default.Counter("cdb_graph_component_rebuild_full_total")
	mCompRefreshIncr = obs.Default.Counter("cdb_graph_component_refresh_incr_total")
	mCompDirtySize   = obs.Default.Histogram("cdb_graph_component_dirty_per_refresh", obs.SizeBuckets)
)

// noteColorChange maintains the component cache across one effective
// color transition. Called by SetColor after the edge is updated.
func (g *Graph) noteColorChange(id int, old, new Color) {
	if !g.compsValid {
		return
	}
	switch {
	case old == Red:
		// Rejoining edge may merge components: rebuild from scratch.
		g.compsValid = false
	case new == Red:
		g.markCompDirty(g.compOf[id])
	default:
		// Unknown↔Blue: partition unchanged.
	}
}

func (g *Graph) markCompDirty(ci int) {
	if ci < 0 || g.compDirtyMark[ci] {
		return
	}
	g.compDirtyMark[ci] = true
	g.compDirty = append(g.compDirty, ci)
}

// ComponentIndex returns the cached component id per edge (-1 for red
// edges) and an exclusive upper bound on component ids (retired ids —
// components split by answers — map to nil member lists). The slice is
// owned by the graph and valid until the next mutation; callers must
// not modify it.
func (g *Graph) ComponentIndex() (compOf []int, numCompIDs int) {
	g.refreshComponents()
	return g.compOf, len(g.compMembers)
}

// ComponentMembers returns the sorted member edge ids of component ci,
// nil when the id is retired. The slice is owned by the graph; callers
// must not modify it.
func (g *Graph) ComponentMembers(ci int) []int {
	g.refreshComponents()
	return g.compMembers[ci]
}

// ConnectedComponents partitions the *edges* into components connected
// through non-red edges sharing a vertex. Red edges are excluded
// entirely (they can no longer interact with any candidate). Used by
// the latency scheduler (§5.2): tasks in different components are
// always non-conflicting. Served from the component cache; members are
// sorted ascending and components ordered by smallest member id.
func (g *Graph) ConnectedComponents() [][]int {
	g.refreshComponents()
	out := make([][]int, 0, len(g.compMembers))
	for _, members := range g.compMembers {
		if members != nil {
			out = append(out, members)
		}
	}
	// Live member lists are sorted and disjoint, so ordering by first
	// member is a strict total order.
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// refreshComponents brings the cache up to date: a full rebuild when
// invalidated wholesale (new edges, rejoined red edges, first use),
// otherwise a re-derivation of just the dirtied components.
func (g *Graph) refreshComponents() {
	if !g.compsValid {
		g.buildComponents()
		return
	}
	if len(g.compDirty) == 0 {
		return
	}
	mCompRefreshIncr.Inc()
	mCompDirtySize.Observe(float64(len(g.compDirty)))
	for _, ci := range g.compDirty {
		members := g.compMembers[ci]
		g.compMembers[ci] = nil
		g.compDirtyMark[ci] = false
		// Unassign the old membership, then re-flood each remaining
		// non-red member. Floods stay inside the old component (two
		// non-red edges sharing a vertex were already connected), so the
		// unassigned sentinel confines them.
		for _, e := range members {
			if g.edges[e].Color == Red {
				g.compOf[e] = -1
			} else {
				g.compOf[e] = compUnassigned
			}
		}
		for _, e := range members {
			if g.compOf[e] == compUnassigned {
				g.floodComponent(e)
			}
		}
	}
	g.compDirty = g.compDirty[:0]
	// compDirtyMark may have grown stale entries for ids created above;
	// marks for fresh ids start false by construction.
	if len(g.compDirtyMark) < len(g.compMembers) {
		grown := make([]bool, len(g.compMembers))
		copy(grown, g.compDirtyMark)
		g.compDirtyMark = grown
	}
}

const compUnassigned = -2

// buildComponents recomputes the whole partition.
func (g *Graph) buildComponents() {
	mCompRebuildFull.Inc()
	if len(g.compOf) != len(g.edges) {
		g.compOf = make([]int, len(g.edges))
	}
	for i := range g.compOf {
		if g.edges[i].Color == Red {
			g.compOf[i] = -1
		} else {
			g.compOf[i] = compUnassigned
		}
	}
	g.compMembers = g.compMembers[:0]
	g.compDirty = g.compDirty[:0]
	for start := range g.edges {
		if g.compOf[start] == compUnassigned {
			g.floodComponent(start)
		}
	}
	if len(g.compDirtyMark) < len(g.compMembers) {
		g.compDirtyMark = make([]bool, len(g.compMembers))
	} else {
		for i := range g.compDirtyMark {
			g.compDirtyMark[i] = false
		}
	}
	g.compsValid = true
}

// floodComponent assigns a fresh component id to every unassigned
// non-red edge reachable from start and records the sorted member
// list.
func (g *Graph) floodComponent(start int) {
	id := len(g.compMembers)
	var members []int
	stack := []int{start}
	g.compOf[start] = id
	for len(stack) > 0 {
		eID := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		members = append(members, eID)
		e := g.edges[eID]
		for _, v := range [2]int{e.U, e.V} {
			for _, lst := range g.adj[v] {
				for _, nb := range lst {
					if g.compOf[nb] == compUnassigned {
						g.compOf[nb] = id
						stack = append(stack, nb)
					}
				}
			}
		}
	}
	sort.Ints(members)
	g.compMembers = append(g.compMembers, members)
	if len(g.compDirtyMark) < len(g.compMembers) {
		g.compDirtyMark = append(g.compDirtyMark, false)
	}
}
