package graph

// Query-structure classification and the join-structure transforms of
// §5.1.1 (tree → chain, cyclic graph → tree).

// Kind classifies the table-level join structure of a query.
type Kind int

// Join structure kinds.
const (
	// SingleTable means no join predicates at all.
	SingleTable Kind = iota
	// Chain: tables form a path (each joined with at most two others).
	Chain
	// Star: one center table joined with every other table.
	Star
	// Tree: acyclic but neither chain nor star.
	Tree
	// Cyclic: the join structure has a cycle (including multi-edges
	// between the same pair of tables).
	Cyclic
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SingleTable:
		return "single-table"
	case Chain:
		return "chain"
	case Star:
		return "star"
	case Tree:
		return "tree"
	case Cyclic:
		return "cyclic"
	default:
		return "unknown"
	}
}

// Kind classifies the structure. It assumes the structure is connected
// (Validate enforces that elsewhere).
func (s *Structure) Kind() Kind {
	if len(s.Preds) == 0 {
		return SingleTable
	}
	// Multi-edges between the same table pair form a cycle.
	seenPair := map[[2]int]bool{}
	deg := make([]int, len(s.Tables))
	for _, p := range s.Preds {
		a, b := p.A, p.B
		if a > b {
			a, b = b, a
		}
		if seenPair[[2]int{a, b}] {
			return Cyclic
		}
		seenPair[[2]int{a, b}] = true
		deg[p.A]++
		deg[p.B]++
	}
	if len(s.Preds) >= len(s.Tables) {
		return Cyclic
	}
	// Acyclic connected with |preds| = |tables|-1.
	maxDeg, leaves := 0, 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
		if d == 1 {
			leaves++
		}
	}
	if maxDeg <= 2 {
		return Chain
	}
	if maxDeg == len(s.Preds) && leaves == len(s.Tables)-1 {
		return Star
	}
	return Tree
}

// adjacency returns, per table, the (neighbor table, predicate index)
// pairs.
func (s *Structure) adjacency() [][][2]int {
	adj := make([][][2]int, len(s.Tables))
	for i, p := range s.Preds {
		adj[p.A] = append(adj[p.A], [2]int{p.B, i})
		adj[p.B] = append(adj[p.B], [2]int{p.A, i})
	}
	return adj
}

// longestPath returns the table indices of a longest path in an
// acyclic structure (double-BFS).
func (s *Structure) longestPath() []int {
	if len(s.Tables) == 1 {
		return []int{0}
	}
	adj := s.adjacency()
	far := func(start int) (int, map[int]int) {
		parent := map[int]int{start: -1}
		queue := []int{start}
		last := start
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			last = u
			for _, nb := range adj[u] {
				if _, seen := parent[nb[0]]; !seen {
					parent[nb[0]] = u
					queue = append(queue, nb[0])
				}
			}
		}
		return last, parent
	}
	a, _ := far(0)
	b, parent := far(a)
	var path []int
	for v := b; v != -1; v = parent[v] {
		path = append(path, v)
	}
	// path currently runs b..a; orientation is irrelevant.
	return path
}

// ChainStep is one hop of a chain walk: the table visited and the
// predicate used to arrive there (-1 for the first table).
type ChainStep struct {
	Table int
	Pred  int
}

// TreeToChain linearizes an acyclic query structure into a chain walk
// per §5.1.1: the longest path forms the spine, and each subtree
// hanging off a spine node is visited by an out-and-back detour,
// duplicating the tables involved. Consecutive steps are always joined
// by a predicate. Predicates on detours appear twice (out and back)
// but refer to the same underlying task.
//
// It panics on cyclic structures; call BreakCycles first.
func (s *Structure) TreeToChain() []ChainStep {
	if s.Kind() == Cyclic {
		panic("graph: TreeToChain on cyclic structure")
	}
	adj := s.adjacency()
	spine := s.longestPath()
	onSpine := make([]bool, len(s.Tables))
	for _, t := range spine {
		onSpine[t] = true
	}
	var walk []ChainStep
	visited := make([]bool, len(s.Tables))

	// detour emits an out-and-back DFS walk of the subtree rooted at
	// child (entered via pred), returning to the caller's table.
	var detour func(child, viaPred, from int)
	detour = func(child, viaPred, from int) {
		walk = append(walk, ChainStep{Table: child, Pred: viaPred})
		visited[child] = true
		for _, nb := range adj[child] {
			if nb[0] == from || visited[nb[0]] {
				continue
			}
			detour(nb[0], nb[1], child)
			walk = append(walk, ChainStep{Table: child, Pred: nb[1]})
		}
	}

	predBetween := func(a, b int) int {
		for _, nb := range adj[a] {
			if nb[0] == b {
				return nb[1]
			}
		}
		return -1
	}

	for i, t := range spine {
		if i == 0 {
			walk = append(walk, ChainStep{Table: t, Pred: -1})
		} else {
			walk = append(walk, ChainStep{Table: t, Pred: predBetween(spine[i-1], t)})
		}
		visited[t] = true
		prev := -1
		if i > 0 {
			prev = spine[i-1]
		}
		next := -1
		if i+1 < len(spine) {
			next = spine[i+1]
		}
		for _, nb := range adj[t] {
			if nb[0] == prev || nb[0] == next || visited[nb[0]] {
				continue
			}
			detour(nb[0], nb[1], t)
			walk = append(walk, ChainStep{Table: t, Pred: nb[1]})
		}
	}
	return walk
}

// BreakCycles rewrites a cyclic structure into an acyclic one by
// duplicating, for every non-spanning-tree predicate, the B-side
// table: the predicate is re-pointed at a fresh copy of that table
// (same data). Returns the new structure and, for each new table
// index, the original table index it mirrors (identity for the
// originals). Answer semantics require post-filtering embeddings where
// a duplicate holds a different tuple than its original — the paper's
// "invalid join tuples".
func (s *Structure) BreakCycles() (*Structure, []int) {
	origin := make([]int, len(s.Tables))
	for i := range origin {
		origin[i] = i
	}
	if s.Kind() != Cyclic {
		cp := &Structure{Tables: append([]string(nil), s.Tables...), Preds: append([]QPred(nil), s.Preds...)}
		return cp, origin
	}
	out := &Structure{Tables: append([]string(nil), s.Tables...)}
	// Union-find to detect tree edges.
	parent := make([]int, len(s.Tables))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range s.Preds {
		ra, rb := find(p.A), find(p.B)
		if ra != rb {
			parent[ra] = rb
			out.Preds = append(out.Preds, p)
			continue
		}
		// Non-tree edge: duplicate the B table.
		dup := len(out.Tables)
		out.Tables = append(out.Tables, s.Tables[p.B]+"'")
		origin = append(origin, p.B)
		out.Preds = append(out.Preds, QPred{A: p.A, B: dup, Name: p.Name})
	}
	return out, origin
}
