// Package graph implements CDB's core contribution: the tuple-level
// graph query model (§4). Vertices are tuples (selection constants are
// modelled as single-tuple pseudo-tables, §4.2), edges are crowd tasks
// weighted by matching probability, and query answers are embeddings
// of the query structure whose every edge the crowd confirmed BLUE.
//
// The package provides:
//   - graph construction and edge coloring,
//   - validity maintenance (Definition 3: an edge is invalid if it is
//     in no candidate) via an AND-OR fact propagation over the query
//     tree, with journaled hypothetical cuts that power the
//     expectation-based cost control (Eq. 1),
//   - candidate/answer enumeration and conflict tests used by the
//     latency scheduler, and
//   - query-structure classification and the tree→chain / graph→tree
//     transforms of §5.1.1.
package graph

import (
	"fmt"
)

// Color is the state of an edge: Unknown before crowdsourcing, Blue if
// the crowd confirmed the predicate holds, Red if refuted.
type Color uint8

// Edge colors.
const (
	Unknown Color = iota
	Blue
	Red
)

// String implements fmt.Stringer.
func (c Color) String() string {
	switch c {
	case Unknown:
		return "unknown"
	case Blue:
		return "blue"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("Color(%d)", int(c))
	}
}

// QPred is one predicate of the query structure, joining two tables
// identified by index into Structure.Tables. Selections appear as a
// predicate whose B side is a single-tuple constant pseudo-table.
type QPred struct {
	A, B int
	Name string // diagnostic label, e.g. "Paper.title~Citation.title"
}

// Structure is the table-level shape of a CQL query: tables are nodes,
// predicates are edges. The paper's queries are chains, stars and
// trees; cyclic structures are first rewritten by BreakCycles.
type Structure struct {
	Tables []string
	Preds  []QPred
}

// Validate checks table indices and connectivity (every table must be
// reachable through predicates; a single table with zero predicates is
// also valid).
func (s *Structure) Validate() error {
	if len(s.Tables) == 0 {
		return fmt.Errorf("graph: structure has no tables")
	}
	for i, p := range s.Preds {
		if p.A < 0 || p.A >= len(s.Tables) || p.B < 0 || p.B >= len(s.Tables) {
			return fmt.Errorf("graph: predicate %d references table out of range", i)
		}
		if p.A == p.B {
			return fmt.Errorf("graph: predicate %d is a self-join on one table instance; use separate instances", i)
		}
	}
	// Connectivity over tables.
	if len(s.Tables) > 1 {
		adj := make([][]int, len(s.Tables))
		for _, p := range s.Preds {
			adj[p.A] = append(adj[p.A], p.B)
			adj[p.B] = append(adj[p.B], p.A)
		}
		seen := make([]bool, len(s.Tables))
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					count++
					stack = append(stack, v)
				}
			}
		}
		if count != len(s.Tables) {
			return fmt.Errorf("graph: query structure is disconnected")
		}
	}
	return nil
}

// PredsOf returns the indices of predicates incident to table t.
func (s *Structure) PredsOf(t int) []int { return s.predsOf(t) }

// predsOf returns the indices of predicates incident to table t.
func (s *Structure) predsOf(t int) []int {
	var out []int
	for i, p := range s.Preds {
		if p.A == t || p.B == t {
			out = append(out, i)
		}
	}
	return out
}

// other returns the table on the far side of predicate p from table t.
func (s *Structure) other(p, t int) int {
	if s.Preds[p].A == t {
		return s.Preds[p].B
	}
	return s.Preds[p].A
}

// Edge is one crowd task: does the predicate hold between tuple U and
// tuple V? U always belongs to Preds[Pred].A's table, V to .B's.
type Edge struct {
	ID    int
	Pred  int
	U, V  int // vertex ids
	W     float64
	Color Color
}

// Graph is the instantiated query graph over concrete data.
type Graph struct {
	S       *Structure
	counts  []int // tuples per table
	base    []int // vertex id offset per table
	tableOf []int // table index per vertex id
	nVerts  int

	edges []Edge
	// adj[v][k] lists edge ids incident to v on the k-th predicate of
	// v's table (k indexes predsOf(table(v))).
	adj [][][]int
	// predsByTable caches predsOf per table; predSlot[t][p] maps a
	// predicate id to its slot in predsByTable[t].
	predsByTable [][]int
	predSlot     []map[int]int

	// Validity state (see validity.go).
	dirty      bool
	valid      []bool
	cs         cutState // cover facts + hypothetical-cut scratch
	treeShaped bool     // whether S is acyclic (enables the DP)
	factWork   []fact   // reusable worklist for revalidateTree

	// Color journal: every effective SetColor is appended, so
	// incremental consumers (the cost engine) can locate the dirty
	// region of a round instead of rescanning the whole graph.
	colorLog []ColorEvent

	// Cached edge-component partition (components.go).
	compOf        []int   // per edge: component id, -1 for red edges
	compMembers   [][]int // per component id: sorted member edge ids (nil = retired)
	compDirty     []int   // component ids pending an incremental refresh
	compDirtyMark []bool  // per component id: already queued in compDirty
	compsValid    bool    // false forces a full rebuild

	uid           uint64 // process-unique graph identity for external caches
	weightVersion int    // bumped by SetWeight; score caches reset on change
}

// ColorEvent is one journaled color transition.
type ColorEvent struct {
	Edge     int
	Old, New Color
}

// NewGraph creates an empty graph over the structure with the given
// per-table tuple counts (counts[i] rows in table S.Tables[i]).
func NewGraph(s *Structure, counts []int) (*Graph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(counts) != len(s.Tables) {
		return nil, fmt.Errorf("graph: %d counts for %d tables", len(counts), len(s.Tables))
	}
	g := &Graph{S: s, counts: append([]int(nil), counts...)}
	g.base = make([]int, len(counts))
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("graph: negative tuple count for table %d", i)
		}
		g.base[i] = g.nVerts
		g.nVerts += c
	}
	g.tableOf = make([]int, g.nVerts)
	for t, b := range g.base {
		for v := b; v < b+counts[t]; v++ {
			g.tableOf[v] = t
		}
	}
	g.predsByTable = make([][]int, len(s.Tables))
	g.predSlot = make([]map[int]int, len(s.Tables))
	for t := range s.Tables {
		g.predsByTable[t] = s.predsOf(t)
		g.predSlot[t] = make(map[int]int, len(g.predsByTable[t]))
		for slot, p := range g.predsByTable[t] {
			g.predSlot[t][p] = slot
		}
	}
	g.adj = make([][][]int, g.nVerts)
	for v := 0; v < g.nVerts; v++ {
		g.adj[v] = make([][]int, len(g.predsByTable[g.TableOf(v)]))
	}
	g.treeShaped = s.Kind() != Cyclic
	g.dirty = true
	g.uid = nextGraphUID()
	return g, nil
}

// MustNewGraph panics on error; for tests and static examples.
func MustNewGraph(s *Structure, counts []int) *Graph {
	g, err := NewGraph(s, counts)
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertices returns the total vertex count.
func (g *Graph) NumVertices() int { return g.nVerts }

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumTables returns the table count.
func (g *Graph) NumTables() int { return len(g.S.Tables) }

// TupleCount returns the number of tuples in table t.
func (g *Graph) TupleCount(t int) int { return g.counts[t] }

// VertexID maps (table, row) to a dense vertex id.
func (g *Graph) VertexID(tab, row int) int {
	if tab < 0 || tab >= len(g.counts) || row < 0 || row >= g.counts[tab] {
		panic(fmt.Sprintf("graph: vertex (%d,%d) out of range", tab, row))
	}
	return g.base[tab] + row
}

// TableOf returns the table index of vertex v.
func (g *Graph) TableOf(v int) int {
	if v < 0 || v >= len(g.tableOf) {
		panic(fmt.Sprintf("graph: vertex %d out of range", v))
	}
	return g.tableOf[v]
}

// RowOf returns the row index of vertex v within its table.
func (g *Graph) RowOf(v int) int { return v - g.base[g.TableOf(v)] }

// AddEdge adds a crowd edge on predicate pred between rowA (in the
// predicate's A table) and rowB (B table) with matching probability w.
// Returns the edge id.
func (g *Graph) AddEdge(pred, rowA, rowB int, w float64) int {
	if pred < 0 || pred >= len(g.S.Preds) {
		panic(fmt.Sprintf("graph: predicate %d out of range", pred))
	}
	p := g.S.Preds[pred]
	u := g.VertexID(p.A, rowA)
	v := g.VertexID(p.B, rowB)
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, Pred: pred, U: u, V: v, W: w})
	g.adj[u][g.predSlot[p.A][pred]] = append(g.adj[u][g.predSlot[p.A][pred]], id)
	g.adj[v][g.predSlot[p.B][pred]] = append(g.adj[v][g.predSlot[p.B][pred]], id)
	g.dirty = true
	g.compsValid = false
	return id
}

// Edge returns a copy of the edge with the given id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// SetColor records a crowd answer (or an inference) for an edge.
func (g *Graph) SetColor(id int, c Color) {
	old := g.edges[id].Color
	if old == c {
		return
	}
	g.edges[id].Color = c
	g.colorLog = append(g.colorLog, ColorEvent{Edge: id, Old: old, New: c})
	g.noteColorChange(id, old, c)
	g.noteColorValidity(id, old, c)
}

// ColorEvents returns the full journal of effective color transitions
// since graph creation, oldest first. Incremental consumers remember
// the length they last consumed and read only the suffix. The slice is
// owned by the graph; callers must not modify it.
func (g *Graph) ColorEvents() []ColorEvent { return g.colorLog }

// UID returns a process-unique identity for this graph, letting
// external caches detect that they are looking at a different graph
// even when pointer values are reused.
func (g *Graph) UID() uint64 { return g.uid }

// TreeShaped reports whether the query structure is acyclic, which
// enables the incremental cover-fact machinery (and with it concurrent
// CutEvaluators).
func (g *Graph) TreeShaped() bool { return g.treeShaped }

// SetWeight updates an edge's matching probability (used when a
// requester supplies a trained probability model).
func (g *Graph) SetWeight(id int, w float64) {
	if g.edges[id].W == w {
		return
	}
	g.edges[id].W = w
	g.weightVersion++
}

// WeightVersion counts effective SetWeight calls; external score
// caches reset when it changes, since every pruning expectation can
// depend on reweighted probabilities.
func (g *Graph) WeightVersion() int { return g.weightVersion }

// TablePreds returns the predicate ids incident to table t. Unlike
// Structure.PredsOf it serves the cached list without allocating; the
// slice is shared and must not be modified.
func (g *Graph) TablePreds(t int) []int { return g.predsByTable[t] }

// EdgesAt returns the edge ids incident to vertex v on predicate pred.
// The returned slice is shared; callers must not mutate it.
func (g *Graph) EdgesAt(v, pred int) []int {
	t := g.TableOf(v)
	slot, ok := g.predSlot[t][pred]
	if !ok {
		return nil
	}
	return g.adj[v][slot]
}

// AllEdgesAt returns all edge ids incident to v across predicates.
func (g *Graph) AllEdgesAt(v int) []int {
	var out []int
	for _, lst := range g.adj[v] {
		out = append(out, lst...)
	}
	return out
}

// Other returns the endpoint of edge id opposite to vertex v.
func (g *Graph) Other(id, v int) int {
	e := g.edges[id]
	if e.U == v {
		return e.V
	}
	return e.U
}

// CountColors tallies edges by color.
func (g *Graph) CountColors() (unknown, blue, red int) {
	for _, e := range g.edges {
		switch e.Color {
		case Unknown:
			unknown++
		case Blue:
			blue++
		default:
			red++
		}
	}
	return
}
