package graph

import (
	"testing"

	"cdb/internal/stats"
)

// TestIncrementalValidityMatchesRebuild drives random coloring
// sequences (including un-colorings) against the event-driven validity
// updates and compares every edge's validity to a replica graph that
// receives all colors before its first revalidation — forcing the
// from-scratch rebuild path. The two must agree exactly after every
// step.
func TestIncrementalValidityMatchesRebuild(t *testing.T) {
	for trial := 0; trial < 250; trial++ {
		seed := uint64(5000 + trial)
		g := randomGraph(stats.NewRNG(seed))
		g.Revalidate() // make the live state current so deltas engage
		r := stats.NewRNG(uint64(99 + trial))
		for step := 0; step < 25 && g.NumEdges() > 0; step++ {
			e := r.Intn(g.NumEdges())
			var c Color
			switch r.Intn(5) {
			case 0:
				c = Unknown // forces the full-rebuild fallback
			case 1, 2:
				c = Blue
			default:
				c = Red
			}
			g.SetColor(e, c)

			rep := randomGraph(stats.NewRNG(seed))
			for id := 0; id < g.NumEdges(); id++ {
				rep.SetColor(id, g.Edge(id).Color)
			}
			for id := 0; id < g.NumEdges(); id++ {
				if g.IsValid(id) != rep.IsValid(id) {
					t.Fatalf("trial %d step %d: edge %d incremental valid=%v, rebuild=%v",
						trial, step, id, g.IsValid(id), rep.IsValid(id))
				}
			}
		}
	}
}

// TestIncrementalValidityCutLossConsistent checks that cut losses
// evaluated on incrementally-maintained cover facts match a freshly
// rebuilt graph — CutLoss journals over the same state the deltas
// update in place.
func TestIncrementalValidityCutLossConsistent(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		seed := uint64(9000 + trial)
		g := randomGraph(stats.NewRNG(seed))
		g.Revalidate()
		r := stats.NewRNG(uint64(31 + trial))
		for step := 0; step < 8 && g.NumEdges() > 0; step++ {
			e := r.Intn(g.NumEdges())
			if g.Edge(e).Color == Unknown {
				if r.Bool(0.5) {
					g.SetColor(e, Blue)
				} else {
					g.SetColor(e, Red)
				}
			}
		}
		rep := randomGraph(stats.NewRNG(seed))
		for id := 0; id < g.NumEdges(); id++ {
			rep.SetColor(id, g.Edge(id).Color)
		}
		for id := 0; id < g.NumEdges(); id++ {
			ed := g.Edge(id)
			for _, v := range [2]int{ed.U, ed.V} {
				l1, b1 := g.CutLoss(v, ed.Pred)
				l2, b2 := rep.CutLoss(v, ed.Pred)
				if l1 != l2 || b1 != b2 {
					t.Fatalf("trial %d edge %d vertex %d: incremental CutLoss=(%d,%d), rebuild=(%d,%d)",
						trial, id, v, l1, b1, l2, b2)
				}
			}
		}
	}
}
