package latency

import (
	"testing"

	"cdb/internal/graph"
	"cdb/internal/stats"
)

func buildChain(counts []int, density float64, r *stats.RNG) *graph.Graph {
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, counts)
	for p, pd := range s.Preds {
		for a := 0; a < counts[pd.A]; a++ {
			for b := 0; b < counts[pd.B]; b++ {
				if r == nil || r.Bool(density) {
					g.AddEdge(p, a, b, 0.5)
				}
			}
		}
	}
	return g
}

func order(g *graph.Graph) []int {
	out := make([]int, g.NumEdges())
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelBatchNoConflicts(t *testing.T) {
	r := stats.NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		g := buildChain([]int{2, 3, 2}, 0.8, r)
		batch := ParallelBatch(g, order(g))
		for i := 0; i < len(batch); i++ {
			for j := i + 1; j < len(batch); j++ {
				if g.SameCandidate(batch[i], batch[j]) {
					t.Fatalf("trial %d: batch edges %d and %d conflict", trial, batch[i], batch[j])
				}
			}
		}
	}
}

func TestParallelBatchSkipsColoredAndInvalid(t *testing.T) {
	g := buildChain([]int{2, 2, 2}, 1, nil)
	g.SetColor(0, graph.Blue)
	g.SetColor(4, graph.Red)
	g.SetColor(5, graph.Red) // b0 cut off from C: edges 0,2 invalid
	batch := ParallelBatch(g, order(g))
	for _, e := range batch {
		if g.Edge(e).Color != graph.Unknown {
			t.Fatalf("batch contains colored edge %d", e)
		}
		if !g.IsValid(e) {
			t.Fatalf("batch contains invalid edge %d", e)
		}
	}
}

func TestParallelBatchSameTableRule(t *testing.T) {
	// Edges sharing only different tuples of the same table are
	// non-conflicting: a complete bipartite single-join layer can go
	// out entirely in one round.
	s := &graph.Structure{Tables: []string{"A", "B"}, Preds: []graph.QPred{{A: 0, B: 1}}}
	g := graph.MustNewGraph(s, []int{3, 3})
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			g.AddEdge(0, a, b, 0.5)
		}
	}
	batch := ParallelBatch(g, order(g))
	if len(batch) != 9 {
		t.Fatalf("single-predicate batch = %d, want all 9", len(batch))
	}
}

func TestParallelBatchStopsAtConflict(t *testing.T) {
	// Single component where edge 0 (a0-b0) conflicts with edge 4
	// (b0-c0): the prefix for that component must stop before 4 if 0
	// was accepted first.
	g := buildChain([]int{1, 1, 1}, 1, nil)
	// Edges: 0 = a0-b0, 1 = b0-c0; they conflict (same candidate).
	batch := ParallelBatch(g, []int{0, 1})
	if len(batch) != 1 || batch[0] != 0 {
		t.Fatalf("batch = %v, want [0]", batch)
	}
}

func TestParallelBatchComponentsIndependent(t *testing.T) {
	// Two disconnected single-chain components: both first edges can be
	// asked together even though each conflicts with its own successor.
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, []int{2, 2, 2})
	g.AddEdge(0, 0, 0, 0.5) // comp 1
	g.AddEdge(1, 0, 0, 0.5) // comp 1
	g.AddEdge(0, 1, 1, 0.5) // comp 2
	g.AddEdge(1, 1, 1, 0.5) // comp 2
	batch := ParallelBatch(g, []int{0, 1, 2, 3})
	if len(batch) != 2 {
		t.Fatalf("batch = %v, want one edge per component", batch)
	}
}

func TestParallelBatchRespectsOrderGreed(t *testing.T) {
	// Highest-priority edge must always be included.
	g := buildChain([]int{2, 2, 2}, 1, nil)
	batch := ParallelBatch(g, []int{7, 6, 5, 4, 3, 2, 1, 0})
	if len(batch) == 0 || batch[0] != 7 {
		t.Fatalf("batch = %v, want it to start with edge 7", batch)
	}
}

func TestSerialBatch(t *testing.T) {
	g := buildChain([]int{2, 2, 2}, 1, nil)
	b := SerialBatch(g, order(g))
	if len(b) != 1 || b[0] != 0 {
		t.Fatalf("serial batch = %v", b)
	}
	g.SetColor(0, graph.Blue)
	b = SerialBatch(g, order(g))
	if len(b) != 1 || b[0] != 1 {
		t.Fatalf("serial batch after coloring = %v", b)
	}
	for e := 0; e < g.NumEdges(); e++ {
		g.SetColor(e, graph.Red)
	}
	if b = SerialBatch(g, order(g)); b != nil {
		t.Fatalf("serial batch on finished graph = %v", b)
	}
}

func TestParallelBatchEmptyWhenDone(t *testing.T) {
	g := buildChain([]int{1, 1, 1}, 1, nil)
	g.SetColor(0, graph.Red)
	g.SetColor(1, graph.Red)
	if batch := ParallelBatch(g, order(g)); len(batch) != 0 {
		t.Fatalf("batch on finished graph = %v", batch)
	}
}

// TestRoundProgress: repeatedly scheduling and coloring terminates and
// colors every valid edge.
func TestRoundProgress(t *testing.T) {
	r := stats.NewRNG(17)
	for trial := 0; trial < 30; trial++ {
		g := buildChain([]int{2, 3, 2}, 0.9, r)
		rounds := 0
		for {
			batch := ParallelBatch(g, order(g))
			if len(batch) == 0 {
				break
			}
			rounds++
			if rounds > 100 {
				t.Fatal("scheduler does not terminate")
			}
			for _, e := range batch {
				if r.Bool(0.5) {
					g.SetColor(e, graph.Blue)
				} else {
					g.SetColor(e, graph.Red)
				}
			}
		}
		if left := g.ValidUncolored(); len(left) != 0 {
			t.Fatalf("trial %d: %d valid edges left unasked", trial, len(left))
		}
	}
}

func TestPrefixBatchStopsEarly(t *testing.T) {
	// Priority order interleaves conflicting edges: the strict prefix
	// rule stops at the first conflict while the greedy scan continues.
	g := buildChain([]int{1, 1, 1}, 1, nil) // edges 0 (A-B) and 1 (B-C) conflict
	prefix := PrefixBatch(g, []int{0, 1})
	if len(prefix) != 1 || prefix[0] != 0 {
		t.Fatalf("prefix batch = %v, want [0]", prefix)
	}
}

func TestParallelBatchScoredDefersVictims(t *testing.T) {
	// b0 has a cheap gate on pred 1 (high score) and expensive victims
	// on pred 0 (low score): the scored batch asks the gate first and
	// defers the victims to a later round.
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, []int{3, 1, 1})
	v0 := g.AddEdge(0, 0, 0, 0.5)
	v1 := g.AddEdge(0, 1, 0, 0.5)
	v2 := g.AddEdge(0, 2, 0, 0.5)
	gate := g.AddEdge(1, 0, 0, 0.3)
	order := []int{gate, v0, v1, v2}
	score := make([]float64, g.NumEdges())
	score[gate], score[v0], score[v1], score[v2] = 10, 1, 1, 1
	batch := ParallelBatchScored(g, order, score)
	if len(batch) != 1 || batch[0] != gate {
		t.Fatalf("scored batch = %v, want just the gate %d", batch, gate)
	}
	// Without scores the same-value gates/victims rule still defers the
	// victims because the gate ranks first at vertex b0.
	batch = ParallelBatch(g, order)
	if len(batch) != 1 || batch[0] != gate {
		t.Fatalf("unscored batch = %v, want just the gate", batch)
	}
}

func TestParallelBatchScoredPacksCoequalGates(t *testing.T) {
	// Two disjoint tuples with near-equal scores on different preds can
	// go out together.
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	g := graph.MustNewGraph(s, []int{2, 2, 2})
	e0 := g.AddEdge(0, 0, 0, 0.5)   // chain 1 gate (pred 0)
	mid0 := g.AddEdge(1, 0, 0, 0.5) // chain 1 victim
	mid1 := g.AddEdge(0, 1, 1, 0.5) // chain 2 victim
	e1 := g.AddEdge(1, 1, 1, 0.5)   // chain 2 gate (pred 1)
	order := []int{e0, e1, mid0, mid1}
	score := make([]float64, g.NumEdges())
	score[e0], score[e1], score[mid0], score[mid1] = 5, 4.5, 1, 1
	batch := ParallelBatchScored(g, order, score)
	if len(batch) != 2 || batch[0] != e0 || batch[1] != e1 {
		t.Fatalf("batch = %v, want both gates [%d %d]", batch, e0, e1)
	}
}
