// Package latency implements CDB's round-based latency control (§5.2).
// Two tasks conflict when they can appear in the same candidate — then
// answering one may prune the other, so asking both in one round can
// waste money. Each round the scheduler packs a maximal conflict-free
// set from the cost-ordered task list (deferring a task while a
// clearly more valuable pending task touches the same tuple on another
// predicate), using the paper's two cheap rules (different connected
// components; different tuples of the same table) before falling back
// to the exact same-candidate test. The literal longest-prefix rule of
// the paper's pseudo-code is available as PrefixBatch for ablations;
// see DESIGN.md §6 for why packing is the default.
package latency

import (
	"cdb/internal/graph"
)

// ParallelBatch selects the sub-sequence of order (task ids, most
// valuable first) that can be crowdsourced simultaneously: it scans
// the whole priority order and greedily packs every task that does not
// conflict with an already-packed one (a maximal conflict-free set
// honouring the cost ordering). Components never conflict with one
// another, and two edges conflict only when they can co-occur in a
// candidate (§5.2). Edges that are already colored or invalid are
// skipped. An empty result means order carried no askable edge.
//
// PrefixBatch implements the stricter longest-prefix rule the paper's
// pseudo-code describes; packing the full scan keeps the same
// correctness guarantee (no batch member can prune another directly)
// while matching the round counts the paper reports (≈ one round per
// predicate on the benchmark queries).
func ParallelBatch(g *graph.Graph, order []int) []int {
	return scanBatch(g, order, nil, false)
}

// ParallelBatchScored is ParallelBatch with the cost scores behind the
// order: an edge is deferred only behind a strictly more valuable
// pending edge at the same tuple (score more than double), so
// co-equal gates share a round and the round count stays near one per
// predicate while the cheap-gate-first inference is preserved.
func ParallelBatchScored(g *graph.Graph, order []int, score map[int]float64) []int {
	return scanBatch(g, order, score, false)
}

// PrefixBatch stops each component's batch at its first conflicting
// edge — §5.2's literal "longest prefix" rule. Exposed for the
// latency-control ablation.
func PrefixBatch(g *graph.Graph, order []int) []int {
	return scanBatch(g, order, nil, true)
}

func scanBatch(g *graph.Graph, order []int, score map[int]float64, prefixOnly bool) []int {
	g.Revalidate()
	comps := g.ConnectedComponents()
	compOf := make(map[int]int, g.NumEdges())
	for ci, members := range comps {
		for _, e := range members {
			compOf[e] = ci
		}
	}

	// Priority-aware deferral: an edge waits when a higher-priority
	// valid edge touches one of its endpoints on a DIFFERENT predicate
	// — that edge is this tuple's "gate", and its answer may prune this
	// one. Per-tuple gates of every predicate still go out together, so
	// rounds stay near one-per-predicate while preserving inference.
	// bestRank[v][slotKey] is the best (smallest) scan rank of a valid
	// uncolored edge at vertex v and predicate.
	type vp struct{ v, pred int }
	bestRank := map[vp]int{}
	rankOf := make(map[int]int, len(order))
	for rank, e := range order {
		ed := g.Edge(e)
		if ed.Color != graph.Unknown || !g.IsValid(e) {
			continue
		}
		if _, seen := rankOf[e]; seen {
			continue
		}
		rankOf[e] = rank
		for _, v := range [2]int{ed.U, ed.V} {
			key := vp{v, ed.Pred}
			if r, ok := bestRank[key]; !ok || rank < r {
				bestRank[key] = rank
			}
		}
	}

	// accepted edges per component; closed marks components whose
	// prefix has ended (a conflicting edge was encountered).
	accepted := make(map[int][]int)
	closed := make(map[int]bool)
	var batch []int

	for _, e := range order {
		ed := g.Edge(e)
		if ed.Color != graph.Unknown || !g.IsValid(e) {
			continue
		}
		ci, ok := compOf[e]
		if !ok {
			continue // red/isolated; nothing to schedule
		}
		if closed[ci] {
			continue
		}
		rank := rankOf[e]
		if !prefixOnly {
			deferred := false
			for _, v := range [2]int{ed.U, ed.V} {
				for _, q := range g.S.PredsOf(g.TableOf(v)) {
					if q == ed.Pred {
						continue
					}
					r, okq := bestRank[vp{v, q}]
					if !okq || r >= rank {
						continue
					}
					if score != nil {
						// Only a clearly more valuable gate defers us;
						// near-equals are asked together.
						blocker := order[r]
						if !(score[blocker] > 2*score[e]+1e-9) {
							continue
						}
					}
					deferred = true
					break
				}
				if deferred {
					break
				}
			}
			if deferred {
				continue
			}
		}
		conflict := false
		for _, prev := range accepted[ci] {
			if g.SameCandidate(prev, e) {
				conflict = true
				break
			}
		}
		if conflict {
			if prefixOnly {
				closed[ci] = true
			}
			continue
		}
		accepted[ci] = append(accepted[ci], e)
		batch = append(batch, e)
	}
	return batch
}

// SerialBatch returns just the first askable task of order — the
// no-latency-control baseline used in ablations.
func SerialBatch(g *graph.Graph, order []int) []int {
	g.Revalidate()
	for _, e := range order {
		if g.Edge(e).Color == graph.Unknown && g.IsValid(e) {
			return []int{e}
		}
	}
	return nil
}
