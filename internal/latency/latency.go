// Package latency implements CDB's round-based latency control (§5.2).
// Two tasks conflict when they can appear in the same candidate — then
// answering one may prune the other, so asking both in one round can
// waste money. Each round the scheduler packs a maximal conflict-free
// set from the cost-ordered task list (deferring a task while a
// clearly more valuable pending task touches the same tuple on another
// predicate), using the paper's two cheap rules (different connected
// components; different tuples of the same table) before falling back
// to the exact same-candidate test. The literal longest-prefix rule of
// the paper's pseudo-code is available as PrefixBatch for ablations;
// see DESIGN.md §6 for why packing is the default.
package latency

import (
	"sync"

	"cdb/internal/graph"
	"cdb/internal/obs"
)

// Scheduler metrics, updated once per scheduled batch: how many
// batches were packed and how large they came out (latency control is
// working when batch sizes track the per-predicate gate counts, not 1).
var (
	mBatches   = obs.Default.Counter("cdb_latency_batches_total")
	mBatchSize = obs.Default.Histogram("cdb_latency_batch_size", obs.SizeBuckets)
)

// batchScratch holds scanBatch's per-round dense scratch slices. Rounds
// over large graphs need a few hundred KB of zeroed scratch; recycling
// it through a pool keeps the steady-state scheduler allocation-free.
type batchScratch struct {
	bestRank []int
	rankOf   []int
	accepted [][]int
	closed   []bool
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// grabInts returns a zeroed int slice of length n backed by buf when
// capacity allows.
func grabInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// ParallelBatch selects the sub-sequence of order (task ids, most
// valuable first) that can be crowdsourced simultaneously: it scans
// the whole priority order and greedily packs every task that does not
// conflict with an already-packed one (a maximal conflict-free set
// honouring the cost ordering). Components never conflict with one
// another, and two edges conflict only when they can co-occur in a
// candidate (§5.2). Edges that are already colored or invalid are
// skipped. An empty result means order carried no askable edge.
//
// PrefixBatch implements the stricter longest-prefix rule the paper's
// pseudo-code describes; packing the full scan keeps the same
// correctness guarantee (no batch member can prune another directly)
// while matching the round counts the paper reports (≈ one round per
// predicate on the benchmark queries).
func ParallelBatch(g *graph.Graph, order []int) []int {
	return scanBatch(g, order, nil, false)
}

// ParallelBatchScored is ParallelBatch with the cost scores behind the
// order: an edge is deferred only behind a strictly more valuable
// pending edge at the same tuple (score more than double), so
// co-equal gates share a round and the round count stays near one per
// predicate while the cheap-gate-first inference is preserved. score
// is dense, indexed by edge id.
func ParallelBatchScored(g *graph.Graph, order []int, score []float64) []int {
	return scanBatch(g, order, score, false)
}

// PrefixBatch stops each component's batch at its first conflicting
// edge — §5.2's literal "longest prefix" rule. Exposed for the
// latency-control ablation.
func PrefixBatch(g *graph.Graph, order []int) []int {
	return scanBatch(g, order, nil, true)
}

func scanBatch(g *graph.Graph, order []int, score []float64, prefixOnly bool) []int {
	g.Revalidate()
	// The component partition is cached by the graph and refreshed
	// incrementally as answers arrive, so consulting it per round is
	// O(changed region), not O(E).
	compOf, nComp := g.ComponentIndex()
	nPreds := len(g.S.Preds)

	// Priority-aware deferral: an edge waits when a higher-priority
	// valid edge touches one of its endpoints on a DIFFERENT predicate
	// — that edge is this tuple's "gate", and its answer may prune this
	// one. Per-tuple gates of every predicate still go out together, so
	// rounds stay near one-per-predicate while preserving inference.
	// bestRank[v*nPreds+pred] is the best (smallest) scan rank of a
	// valid uncolored edge at vertex v and predicate, stored as rank+1
	// so the zero value means "unset" and the dense slices need no
	// -1 fill. Edge and vertex ids are dense, so flat slices replace
	// the former maps.
	sc := scratchPool.Get().(*batchScratch)
	defer scratchPool.Put(sc)
	bestRank := grabInts(sc.bestRank, g.NumVertices()*nPreds)
	rankOf := grabInts(sc.rankOf, g.NumEdges())
	sc.bestRank, sc.rankOf = bestRank, rankOf
	for rank, e := range order {
		ed := g.Edge(e)
		if ed.Color != graph.Unknown || !g.IsValid(e) {
			continue
		}
		if rankOf[e] != 0 {
			continue
		}
		rankOf[e] = rank + 1
		for _, v := range [2]int{ed.U, ed.V} {
			key := v*nPreds + ed.Pred
			if r := bestRank[key]; r == 0 || rank+1 < r {
				bestRank[key] = rank + 1
			}
		}
	}

	// accepted edges per component; closed marks components whose
	// prefix has ended (a conflicting edge was encountered).
	accepted := sc.accepted
	if cap(accepted) < nComp {
		accepted = make([][]int, nComp)
	} else {
		accepted = accepted[:nComp]
		for i := range accepted {
			accepted[i] = accepted[i][:0]
		}
	}
	closed := sc.closed
	if cap(closed) < nComp {
		closed = make([]bool, nComp)
	} else {
		closed = closed[:nComp]
		for i := range closed {
			closed[i] = false
		}
	}
	sc.accepted, sc.closed = accepted, closed
	var batch []int

	for _, e := range order {
		ed := g.Edge(e)
		if ed.Color != graph.Unknown || !g.IsValid(e) {
			continue
		}
		ci := compOf[e]
		if ci < 0 {
			continue // red/isolated; nothing to schedule
		}
		if closed[ci] {
			continue
		}
		rank := rankOf[e] - 1
		if !prefixOnly {
			deferred := false
			for _, v := range [2]int{ed.U, ed.V} {
				for _, q := range g.TablePreds(g.TableOf(v)) {
					if q == ed.Pred {
						continue
					}
					r := bestRank[v*nPreds+q] - 1
					if r < 0 || r >= rank {
						continue
					}
					if score != nil {
						// Only a clearly more valuable gate defers us;
						// near-equals are asked together.
						blocker := order[r]
						if !(score[blocker] > 2*score[e]+1e-9) {
							continue
						}
					}
					deferred = true
					break
				}
				if deferred {
					break
				}
			}
			if deferred {
				continue
			}
		}
		conflict := false
		for _, prev := range accepted[ci] {
			if g.SameCandidate(prev, e) {
				conflict = true
				break
			}
		}
		if conflict {
			if prefixOnly {
				closed[ci] = true
			}
			continue
		}
		accepted[ci] = append(accepted[ci], e)
		batch = append(batch, e)
	}
	mBatches.Inc()
	mBatchSize.Observe(float64(len(batch)))
	return batch
}

// SerialBatch returns just the first askable task of order — the
// no-latency-control baseline used in ablations.
func SerialBatch(g *graph.Graph, order []int) []int {
	g.Revalidate()
	for _, e := range order {
		if g.Edge(e).Color == graph.Unknown && g.IsValid(e) {
			return []int{e}
		}
	}
	return nil
}
