package latency

import (
	"testing"

	"cdb/internal/graph"
	"cdb/internal/stats"
)

// benchBlocks builds a chain graph of disjoint 2-tuple blocks (3 edges
// per predicate per block), mirroring the cost package's benchmark
// shape: thousands of small components, the scheduler's target regime.
func benchBlocks(blocks int, r *stats.RNG) (*graph.Graph, []int, []float64) {
	s := &graph.Structure{
		Tables: []string{"A", "B", "C"},
		Preds:  []graph.QPred{{A: 0, B: 1}, {A: 1, B: 2}},
	}
	n := 2 * blocks
	g := graph.MustNewGraph(s, []int{n, n, n})
	for b := 0; b < blocks; b++ {
		for p := range s.Preds {
			g.AddEdge(p, 2*b, 2*b, 0.1+0.8*r.Float64())
			g.AddEdge(p, 2*b, 2*b+1, 0.1+0.8*r.Float64())
			g.AddEdge(p, 2*b+1, 2*b+1, 0.1+0.8*r.Float64())
		}
	}
	order := make([]int, g.NumEdges())
	score := make([]float64, g.NumEdges())
	for i := range order {
		order[i] = i
		score[i] = r.Float64()
	}
	return g, order, score
}

func benchBatch(b *testing.B, blocks int) {
	r := stats.NewRNG(3)
	g, order, score := benchBlocks(blocks, r)
	g.Revalidate()
	b.ReportMetric(float64(g.NumEdges()), "edges")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelBatchScored(g, order, score)
	}
}

func BenchmarkParallelBatchScored2k(b *testing.B)  { benchBatch(b, 400) }
func BenchmarkParallelBatchScored10k(b *testing.B) { benchBatch(b, 1700) }
