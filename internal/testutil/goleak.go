// Package testutil holds small shared test helpers. It must only be
// imported from _test files.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutine count and returns a function to
// defer at the top of a test: it fails the test if, after a grace
// period with retries, more goroutines are alive than before (a
// hand-rolled goleak). The retry loop absorbs goroutines that are
// legitimately mid-exit when the test body returns.
func VerifyNoLeaks(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
	}
}
