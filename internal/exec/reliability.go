package exec

import (
	"context"
	"fmt"
	"math"
	"sort"

	"cdb/internal/crowd"
	"cdb/internal/obs"
	"cdb/internal/quality"
	"cdb/internal/stats"
)

// Reliability metrics: what the executor observed and how it reacted.
// Compare against the cdb_faults_* counters (what the chaos engine
// injected) to see how much damage the policy absorbed.
var (
	mTasksLost   = obs.Default.Counter("cdb_exec_tasks_lost_total")
	mTasksRetry  = obs.Default.Counter("cdb_exec_tasks_retried_total")
	mTasksHedged = obs.Default.Counter("cdb_exec_tasks_hedged_total")
	mAnsLate     = obs.Default.Counter("cdb_exec_answers_late_total")
	mAnsDup      = obs.Default.Counter("cdb_exec_answers_duplicate_total")
	mPartials    = obs.Default.Counter("cdb_exec_partial_results_total")
)

// Reliability is the executor-side fault policy for the asynchronous
// crowd transport: per-HIT deadlines, straggler hedging, exponential
// backoff with deterministic jitter on reissue, and a capped retry
// budget. The zero value means "use defaults"; set a field negative to
// disable it where documented.
type Reliability struct {
	// TaskDeadline is the virtual-tick deadline of each HIT attempt
	// (default 64; the transport's default worst-case honest latency is
	// 24 ticks, so the default deadline only expires on injected
	// stragglers, drops, and blackouts).
	TaskDeadline int64
	// MaxRetries caps the reissue waves per round (default 2; negative
	// disables retries).
	MaxRetries int
	// RetryBudget caps the extra worker assignments reissues may charge
	// to the whole query — retries spend real money, and the paper's
	// BUDGET semantics must keep holding under chaos (default 256;
	// negative means unlimited).
	RetryBudget int
	// BackoffBase multiplies the deadline of successive reissue waves
	// (default 2: 64, 128, 256, … ticks).
	BackoffBase float64
	// JitterFrac adds a deterministic per-(task, wave) jitter of up to
	// this fraction to each reissue deadline, decorrelating retry storms
	// (default 0.25; negative disables).
	JitterFrac float64
	// HedgeAfter is the fraction of TaskDeadline after which the
	// executor peeks at the round and hedges stragglers (default 0.5).
	HedgeAfter float64
	// HedgeFrac bounds the fraction of a round's tasks hedged — the
	// "reissue the slowest p%" policy (default 0.1; negative disables
	// hedging).
	HedgeFrac float64
	// Strict restores fail-fast: cancellation, deadline expiry, or a
	// task exhausting its retries turns into an error instead of a
	// partial Result.
	Strict bool
}

// withDefaults resolves the zero value into the documented defaults.
func (r Reliability) withDefaults() Reliability {
	if r.TaskDeadline <= 0 {
		r.TaskDeadline = 64
	}
	switch {
	case r.MaxRetries == 0:
		r.MaxRetries = 2
	case r.MaxRetries < 0:
		r.MaxRetries = 0
	}
	switch {
	case r.RetryBudget == 0:
		r.RetryBudget = 256
	case r.RetryBudget < 0:
		r.RetryBudget = math.MaxInt / 2
	}
	if r.BackoffBase < 1 {
		r.BackoffBase = 2
	}
	switch {
	case r.JitterFrac == 0:
		r.JitterFrac = 0.25
	case r.JitterFrac < 0:
		r.JitterFrac = 0
	}
	if r.HedgeAfter <= 0 || r.HedgeAfter >= 1 {
		r.HedgeAfter = 0.5
	}
	switch {
	case r.HedgeFrac == 0:
		r.HedgeFrac = 0.1
	case r.HedgeFrac < 0:
		r.HedgeFrac = 0
	}
	return r
}

// ReliabilityStats reports what the fault policy saw and did during one
// execution. All counts are zero on the clean synchronous path.
type ReliabilityStats struct {
	// Partial marks a degraded result: the query was cancelled, hit its
	// deadline, or abandoned tasks after exhausting retries. The
	// remaining fields say which.
	Partial bool
	// Reason is "" for a complete result, else "canceled", "deadline",
	// or "tasks-lost".
	Reason string
	// Issued counts worker assignments handed to the transport,
	// including hedge and retry waves; Reissued counts just the waves.
	Issued   int
	Reissued int
	// Lost counts tasks that ended a round with zero answers after all
	// retries — their verdicts fall back to the optimizer's prior.
	Lost int
	// Underfilled counts tasks concluded with at least one but fewer
	// than Redundancy answers.
	Underfilled int
	// Retried / Hedged count tasks that entered a retry wave / were
	// hedged at the round's hedge point.
	Retried int
	Hedged  int
	// Late counts answers that arrived after their HIT deadline (they
	// still feed truth inference); Duplicates counts answers suppressed
	// by idempotent (task, worker) dedup.
	Late       int
	Duplicates int
	// RoundsTruncated counts in-flight rounds discarded by
	// cancellation; the Result reflects only completed rounds.
	RoundsTruncated int
}

// asyncTask is the executor-side state of one task in the current
// round of the asynchronous path.
type asyncTask struct {
	edge    int
	attempt int
	metaID  int
	retried bool
	answers []quality.ChoiceAnswer
}

// reasonOf maps a context error to a stable Reason string.
func reasonOf(err error) string {
	switch err {
	case context.Canceled:
		return "canceled"
	case context.DeadlineExceeded:
		return "deadline"
	default:
		if err == nil {
			return ""
		}
		return err.Error()
	}
}

// setEdgeConf records the executor's confidence in an edge verdict,
// later folded into per-answer confidences.
func (rep *Report) setEdgeConf(e int, conf float64) {
	if rep.edgeConf == nil {
		rep.edgeConf = map[int]float64{}
	}
	rep.edgeConf[e] = conf
}

// crowdsourceAsync runs one round over the fault-tolerant transport:
// issue every task with a per-HIT deadline, hedge the slowest tasks at
// the hedge point, collect to the deadline, then reissue missing
// assignments in capped backoff waves. Answers are deduped per
// (task, worker) so injected duplicates and late reissue overlaps feed
// truth inference exactly once (Eq. 2 stays correct). It returns the
// round's verdicts, or a context error — in which case the caller
// discards the whole round so the partial result stays deterministic.
func (rep *Report) crowdsourceAsync(ctx context.Context, p *Plan, batch []int, opts Options) (map[int]bool, error) {
	pol := opts.Reliability
	tp := opts.Transport
	tr := opts.Trace
	k := opts.Redundancy

	if rep.seen == nil {
		rep.seen = map[int]map[int]bool{}
	}
	if rep.histIndex == nil {
		rep.histIndex = map[int]int{}
	}
	cur := make(map[int]*asyncTask, len(batch))
	deadline := tp.Now() + pol.TaskDeadline
	specs := make([]crowd.TaskSpec, 0, len(batch))
	for _, e := range batch {
		st := &asyncTask{edge: e, metaID: -1}
		if opts.Meta != nil {
			pred, l, r := p.TaskDescription(e)
			st.metaID = opts.Meta.RecordTask(taskKindOf(p, e), pred, l, r, rep.Metrics.Rounds)
		}
		cur[e] = st
		specs = append(specs, crowd.TaskSpec{ID: e, Truth: p.Truth[e], K: k, Deadline: deadline})
		rep.Reliability.Issued += k
	}
	tp.Issue(specs)

	absorb := func(ans []crowd.Answer) {
		for _, a := range ans {
			if a.Late {
				rep.Reliability.Late++
				mAnsLate.Inc()
			}
			seen := rep.seen[a.Task]
			if seen == nil {
				seen = map[int]bool{}
				rep.seen[a.Task] = seen
			}
			if seen[a.Worker] {
				// Idempotent dedup: one opinion per worker per task, no
				// matter how many deliveries or reissue overlaps.
				rep.Reliability.Duplicates++
				mAnsDup.Inc()
				continue
			}
			seen[a.Worker] = true
			rep.Assignments++
			if rep.PerMarket == nil {
				rep.PerMarket = map[string]int{}
			}
			rep.PerMarket[a.Market]++
			choice := 0
			if a.Value {
				choice = 1
			}
			ca := quality.ChoiceAnswer{Worker: a.Worker, Choice: choice}
			if st, active := cur[a.Task]; active {
				st.answers = append(st.answers, ca)
				if opts.Meta != nil {
					opts.Meta.RecordAssignment(st.metaID, a.Worker, boolAnswer(a.Value))
				}
			} else if idx, ok := rep.histIndex[a.Task]; ok {
				// A straggler from an earlier round: its verdict is
				// already colored, but the answer still sharpens the EM
				// worker model on the next inference run.
				rep.emHistory[idx].Answers = append(rep.emHistory[idx].Answers, ca)
			}
		}
	}

	collect := func(until crowd.Tick) error {
		span := tr.Begin(obs.SpanCollect)
		ans, err := tp.Collect(ctx, until)
		absorb(ans)
		tr.Mutate(span, func(s *obs.Span) { s.Asks = len(ans) })
		tr.End(span)
		return err
	}

	missing := func() []int {
		var out []int
		for _, e := range batch {
			if len(cur[e].answers) < k {
				out = append(out, e)
			}
		}
		return out
	}

	// reissue sends fresh assignments for each listed task, charging
	// the query's retry budget, and returns the latest deadline issued.
	reissue := func(edges []int, waveDeadline int64, hedge bool) crowd.Tick {
		var wave []crowd.TaskSpec
		maxDl := tp.Now()
		for _, e := range edges {
			st := cur[e]
			need := k - len(st.answers)
			if need <= 0 || rep.retryBudget <= 0 {
				continue
			}
			if need > rep.retryBudget {
				need = rep.retryBudget
			}
			rep.retryBudget -= need
			st.attempt++
			dl := tp.Now() + waveDeadline
			if pol.JitterFrac > 0 {
				// Deterministic jitter per (task, attempt) decorrelates
				// the reissue wave without wall-clock randomness.
				jr := stats.HashRNG(0x9e3779b9, uint64(e), uint64(st.attempt))
				dl += int64(pol.JitterFrac * float64(waveDeadline) * jr.Float64())
			}
			if dl > maxDl {
				maxDl = dl
			}
			wave = append(wave, crowd.TaskSpec{ID: e, Attempt: st.attempt, Truth: p.Truth[e], K: need, Deadline: dl})
			rep.Reliability.Issued += need
			rep.Reliability.Reissued += need
			if hedge {
				rep.Reliability.Hedged++
				mTasksHedged.Inc()
			} else if !st.retried {
				st.retried = true
				rep.Reliability.Retried++
				mTasksRetry.Inc()
			}
		}
		if len(wave) > 0 {
			tp.Issue(wave)
			n := len(wave)
			tr.Event(obs.SpanReissue, func(s *obs.Span) { s.Tasks = n })
		}
		return maxDl
	}

	// Straggler hedging: peek at the round partway to the deadline and
	// reissue the slowest p% of tasks early, before knowing whether
	// their answers were dropped or merely slow.
	if pol.HedgeFrac > 0 {
		hedgeTick := tp.Now() + int64(pol.HedgeAfter*float64(pol.TaskDeadline))
		if err := collect(hedgeTick); err != nil {
			return nil, err
		}
		cands := missing()
		sort.Slice(cands, func(i, j int) bool {
			ai, aj := len(cur[cands[i]].answers), len(cur[cands[j]].answers)
			if ai != aj {
				return ai < aj
			}
			return cands[i] < cands[j]
		})
		capN := int(math.Ceil(pol.HedgeFrac * float64(len(batch))))
		if len(cands) > capN {
			cands = cands[:capN]
		}
		reissue(cands, pol.TaskDeadline, true)
	}
	if err := collect(deadline); err != nil {
		return nil, err
	}

	// Retry waves with exponential backoff.
	for wave := 1; wave <= pol.MaxRetries; wave++ {
		miss := missing()
		if len(miss) == 0 || rep.retryBudget <= 0 {
			break
		}
		waveDeadline := int64(float64(pol.TaskDeadline) * math.Pow(pol.BackoffBase, float64(wave)))
		maxDl := reissue(miss, waveDeadline, false)
		if maxDl <= tp.Now() {
			break // budget exhausted before anything went out
		}
		if err := collect(maxDl); err != nil {
			return nil, err
		}
	}

	// Aggregate. Tasks that still have zero answers are lost: their
	// verdict degrades gracefully to the optimizer's prior probability,
	// with the confidence to match.
	lost := 0
	verdicts := make(map[int]bool, len(batch))
	conclude := func(e int, verdict bool, conf float64) {
		verdicts[e] = verdict
		rep.setEdgeConf(e, conf)
		if st := cur[e]; opts.Meta != nil && st.metaID >= 0 {
			_ = opts.Meta.RecordVerdict(st.metaID, verdict)
		}
	}
	if opts.Quality == CDBPlus {
		// EM over the full query history, exactly like the sync path;
		// late answers absorbed into emHistory above are part of it.
		for _, e := range batch {
			st := cur[e]
			if len(st.answers) == 0 {
				continue
			}
			rep.histIndex[e] = len(rep.emHistory)
			rep.emHistory = append(rep.emHistory, quality.ChoiceTask{Choices: 2, Answers: st.answers})
		}
		inferSpan := tr.Begin(obs.SpanInfer)
		post := opts.Workers.InferEM(rep.emHistory, 50)
		tr.Mutate(inferSpan, func(s *obs.Span) { s.Tasks = len(rep.emHistory) })
		tr.End(inferSpan)
		for _, e := range batch {
			st := cur[e]
			if len(st.answers) == 0 {
				lost++
				w := p.G.Edge(e).W
				conclude(e, w >= 0.5, math.Max(w, 1-w))
				continue
			}
			if len(st.answers) < k {
				rep.Reliability.Underfilled++
			}
			pp := post[rep.histIndex[e]]
			conclude(e, quality.EstimateTruth(pp) == 1, math.Max(pp[0], pp[1]))
			if opts.Meta != nil {
				for _, a := range st.answers {
					opts.Meta.UpdateWorkerQuality(a.Worker, opts.Workers.Quality(a.Worker))
				}
			}
		}
	} else {
		for _, e := range batch {
			st := cur[e]
			if len(st.answers) == 0 {
				lost++
				w := p.G.Edge(e).W
				conclude(e, w >= 0.5, math.Max(w, 1-w))
				continue
			}
			if len(st.answers) < k {
				rep.Reliability.Underfilled++
			}
			yes := 0
			for _, a := range st.answers {
				yes += a.Choice
			}
			n := len(st.answers)
			verdict := 2*yes > n
			conf := float64(yes) / float64(n)
			if !verdict {
				conf = 1 - conf
			}
			conclude(e, verdict, conf)
		}
	}
	if lost > 0 {
		rep.Reliability.Lost += lost
		mTasksLost.Add(int64(lost))
		if pol.Strict {
			return nil, fmt.Errorf("exec: %d tasks lost after %d retries (strict mode)", lost, pol.MaxRetries)
		}
	}
	return verdicts, nil
}
