package exec

import (
	"context"
	"strings"
	"testing"

	"cdb/internal/baselines"
	"cdb/internal/cost"
	"cdb/internal/cql"
	"cdb/internal/crowd"
	"cdb/internal/dataset"
	"cdb/internal/graph"
	"cdb/internal/meta"
	"cdb/internal/stats"
)

func mustSelect(t *testing.T, q string) *cql.Select {
	t.Helper()
	st, err := cql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := st.(*cql.Select)
	if !ok {
		t.Fatalf("parsed %T", st)
	}
	return s
}

func examplePlan(t *testing.T) *Plan {
	t.Helper()
	d := dataset.RunningExample()
	p, err := BuildPlan(mustSelect(t, dataset.RunningExampleQuery), d.Catalog, d.Oracle, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildPlanRunningExample(t *testing.T) {
	p := examplePlan(t)
	if len(p.S.Tables) != 4 {
		t.Fatalf("tables = %v", p.S.Tables)
	}
	if len(p.S.Preds) != 3 {
		t.Fatalf("preds = %v", p.S.Preds)
	}
	if p.G.NumEdges() == 0 {
		t.Fatal("no edges built")
	}
	// The three paper answers must be among the ground-truth embeddings.
	truth := p.TrueAnswerKeys()
	if len(truth) != 3 {
		t.Fatalf("true answers = %d, want 3 (the paper's (u12,r12,p8,c12), (u8,r8,p4,c6), (u9,r9,p5,c7))", len(truth))
	}
}

func TestBuildPlanSelection(t *testing.T) {
	d := dataset.RunningExample()
	q := `SELECT Researcher.name, Paper.title, Citation.number
	      FROM Paper, Citation, Researcher
	      WHERE Paper.title CROWDJOIN Citation.title AND
	            Paper.author CROWDJOIN Researcher.name AND
	            Paper.conference CROWDEQUAL "SIGMOD";`
	p, err := BuildPlan(mustSelect(t, q), d.Catalog, d.Oracle, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.S.Tables) != 4 { // 3 real + 1 constant pseudo-table
		t.Fatalf("tables = %v", p.S.Tables)
	}
	if p.S.Kind() != graph.Star {
		t.Fatalf("2J1S over the running example should be a star join, got %v", p.S.Kind())
	}
}

func TestBuildPlanErrors(t *testing.T) {
	d := dataset.RunningExample()
	cases := []string{
		`SELECT * FROM Ghost WHERE Ghost.a CROWDEQUAL 'x'`,
		`SELECT * FROM Paper, Paper WHERE Paper.title CROWDJOIN Paper.title`,
		`SELECT * FROM Paper, Citation WHERE Paper.ghost CROWDJOIN Citation.title`,
		`SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Researcher.name`,
		`SELECT * FROM Paper, Citation, University WHERE Paper.title CROWDJOIN Citation.title`,
	}
	for _, q := range cases {
		if _, err := BuildPlan(mustSelect(t, q), d.Catalog, d.Oracle, DefaultPlanConfig()); err == nil {
			t.Errorf("accepted bad query %q", q)
		}
	}
}

func TestEquiJoinEdgesPreColored(t *testing.T) {
	d := dataset.RunningExample()
	q := `SELECT * FROM Paper, Citation WHERE Paper.title = Citation.title`
	p, err := BuildPlan(mustSelect(t, q), d.Catalog, d.Oracle, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	// No identical titles exist between Paper and Citation in the
	// running example except none — equality is strict.
	for e := 0; e < p.G.NumEdges(); e++ {
		if p.G.Edge(e).Color != graph.Blue {
			t.Fatal("equi-join edges must be pre-colored blue")
		}
	}
}

func perfectPool(seed uint64, n int) *crowd.Pool {
	return crowd.NewPerfectPool(n, stats.NewRNG(seed))
}

func TestRunExpectationPerfectWorkers(t *testing.T) {
	p := examplePlan(t)
	rep, err := Run(context.Background(), p, Options{
		Strategy:   &cost.Expectation{},
		Redundancy: 5,
		Pool:       perfectPool(1, 30),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Recall < 0.99 || rep.Metrics.Precision < 0.99 {
		t.Fatalf("perfect workers should find exact answers: %+v", rep.Metrics)
	}
	if len(rep.Answers) != 3 {
		t.Fatalf("answers = %d, want 3", len(rep.Answers))
	}
	if rep.Metrics.Tasks == 0 || rep.Metrics.Tasks > p.G.NumEdges() {
		t.Fatalf("tasks = %d of %d edges", rep.Metrics.Tasks, p.G.NumEdges())
	}
	if rep.Assignments != rep.Metrics.Tasks*5 {
		t.Fatalf("assignments = %d, want tasks*5", rep.Assignments)
	}
	if rep.HITs == 0 || rep.Dollars <= 0 {
		t.Fatal("pricing not computed")
	}
}

func TestRunSavesTasksVsTreeModel(t *testing.T) {
	// The headline claim: tuple-level optimization beats every tree
	// order on the running example.
	build := func() *Plan { return examplePlan(t) }

	pCDB := build()
	repCDB, err := Run(context.Background(), pCDB, Options{Strategy: &cost.Expectation{}, Redundancy: 1, Pool: perfectPool(2, 30)})
	if err != nil {
		t.Fatal(err)
	}

	pOpt := build()
	opt := baselines.NewTreeModel("OptTree", baselines.OptTreeOrder(pOpt.G, pOpt.Truth))
	repOpt, err := Run(context.Background(), pOpt, Options{Strategy: opt, Redundancy: 1, Pool: perfectPool(2, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if repCDB.Metrics.Tasks >= repOpt.Metrics.Tasks {
		t.Fatalf("CDB (%d tasks) should beat the optimal tree order (%d tasks)",
			repCDB.Metrics.Tasks, repOpt.Metrics.Tasks)
	}
	if repOpt.Metrics.Recall < 0.99 {
		t.Fatalf("OptTree with perfect workers should still find all answers: %+v", repOpt.Metrics)
	}
}

func TestRunTreeBaselinesFindAnswers(t *testing.T) {
	for _, name := range []string{"CrowdDB", "Qurk", "Deco"} {
		p := examplePlan(t)
		var order []int
		switch name {
		case "CrowdDB":
			order = baselines.CrowdDBOrder(p.S)
		case "Qurk":
			order = baselines.QurkOrder(p.S)
		default:
			order = baselines.DecoOrder(p.G)
		}
		rep, err := Run(context.Background(), p, Options{Strategy: baselines.NewTreeModel(name, order), Redundancy: 5, Pool: perfectPool(3, 30)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics.Recall < 0.99 {
			t.Fatalf("%s recall = %v", name, rep.Metrics.Recall)
		}
		if rep.Metrics.Rounds > len(p.S.Preds) {
			t.Fatalf("%s used %d rounds for %d predicates", name, rep.Metrics.Rounds, len(p.S.Preds))
		}
	}
}

func TestRunERBaselines(t *testing.T) {
	for _, mk := range []func() cost.Strategy{
		func() cost.Strategy { return baselines.NewTrans() },
		func() cost.Strategy { return baselines.NewACD() },
	} {
		p := examplePlan(t)
		strat := mk()
		rep, err := Run(context.Background(), p, Options{Strategy: strat, Redundancy: 5, Pool: perfectPool(4, 30)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics.Recall < 0.99 {
			t.Fatalf("%s recall = %v with perfect workers", strat.Name(), rep.Metrics.Recall)
		}
	}
}

func TestTransUsesMoreRoundsThanCDB(t *testing.T) {
	pT := examplePlan(t)
	repT, err := Run(context.Background(), pT, Options{Strategy: baselines.NewTrans(), Redundancy: 1, Pool: perfectPool(5, 30)})
	if err != nil {
		t.Fatal(err)
	}
	pC := examplePlan(t)
	repC, err := Run(context.Background(), pC, Options{Strategy: &cost.Expectation{}, Redundancy: 1, Pool: perfectPool(5, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if repT.Metrics.Rounds <= repC.Metrics.Rounds {
		t.Fatalf("Trans rounds (%d) should exceed CDB rounds (%d)", repT.Metrics.Rounds, repC.Metrics.Rounds)
	}
}

func TestRunMaxRoundsFlush(t *testing.T) {
	for _, maxRounds := range []int{1, 2, 3} {
		p := examplePlan(t)
		rep, err := Run(context.Background(), p, Options{
			Strategy:   &cost.Expectation{},
			Redundancy: 1,
			Pool:       perfectPool(6, 30),
			MaxRounds:  maxRounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics.Rounds > maxRounds {
			t.Fatalf("rounds = %d, limit %d", rep.Metrics.Rounds, maxRounds)
		}
		if rep.Metrics.Recall < 0.99 {
			t.Fatalf("flushing must still find all answers (maxRounds=%d): %+v", maxRounds, rep.Metrics)
		}
	}
}

func TestFewerRoundsAllowedMeansMoreTasks(t *testing.T) {
	// Fig. 22's tradeoff: a tighter latency constraint costs more tasks.
	run := func(maxRounds int) int {
		p := examplePlan(t)
		rep, err := Run(context.Background(), p, Options{Strategy: &cost.Expectation{}, Redundancy: 1, Pool: perfectPool(7, 30), MaxRounds: maxRounds})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Metrics.Tasks
	}
	oneRound := run(1)
	free := run(0)
	if oneRound < free {
		t.Fatalf("1-round flood (%d tasks) should not beat unconstrained (%d tasks)", oneRound, free)
	}
}

func TestRunBudgetStrategy(t *testing.T) {
	p := examplePlan(t)
	b := cost.NewBudget(6)
	rep, err := Run(context.Background(), p, Options{Strategy: b, Redundancy: 1, Pool: perfectPool(8, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Tasks > 6 {
		t.Fatalf("budget overrun: %d tasks", rep.Metrics.Tasks)
	}
	// 6 tasks cover at most two of the three chains.
	if rep.Metrics.Recall < 1.0/3 {
		t.Fatalf("budgeted recall = %v, want at least one answer", rep.Metrics.Recall)
	}
	if rep.Metrics.Precision < 0.99 {
		t.Fatalf("budgeted precision = %v", rep.Metrics.Precision)
	}
}

func TestBudgetBeatsGreedyBaseline(t *testing.T) {
	// Fig. 18's claim: candidate-driven budget spending finds far more
	// answers than the weight-greedy depth-first baseline.
	d := dataset.GenPaper(dataset.Config{Seed: 7, Scale: 0.15})
	q := dataset.Queries("paper")["2J"]
	const budget = 200
	build := func() *Plan {
		p, err := BuildPlan(mustSelect(t, q), d.Catalog, d.Oracle, DefaultPlanConfig())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pC := build()
	repC, err := Run(context.Background(), pC, Options{Strategy: cost.NewBudget(budget), Redundancy: 1, Pool: perfectPool(21, 10)})
	if err != nil {
		t.Fatal(err)
	}
	pB := build()
	repB, err := Run(context.Background(), pB, Options{Strategy: baselines.NewGreedyBudget(budget), Redundancy: 1, Pool: perfectPool(21, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if repC.Metrics.Tasks > budget || repB.Metrics.Tasks > budget {
		t.Fatalf("budget overrun: CDB %d, baseline %d", repC.Metrics.Tasks, repB.Metrics.Tasks)
	}
	if repC.Metrics.Recall <= repB.Metrics.Recall {
		t.Fatalf("budgeted CDB recall (%v) should beat the baseline (%v)",
			repC.Metrics.Recall, repB.Metrics.Recall)
	}
	if repC.Metrics.Recall < 0.5 {
		t.Fatalf("budgeted CDB recall = %v, want a solid majority of answers at B=200", repC.Metrics.Recall)
	}
}

func TestCDBPlusBeatsMajorityVotingWithBadWorkers(t *testing.T) {
	// Mediocre crowd: CDB+ (EM + assignment) must beat plain majority
	// voting on F-measure, averaged over repetitions (Fig. 9's gap).
	const reps = 15
	var mvAgg, plusAgg stats.Agg
	for i := 0; i < reps; i++ {
		pMV := examplePlan(t)
		repMV, err := Run(context.Background(), pMV, Options{
			Strategy:   &cost.Expectation{},
			Redundancy: 3,
			Pool:       crowd.NewPool(25, 0.7, 0.1, stats.NewRNG(uint64(100+i))),
			Quality:    MajorityVoting,
		})
		if err != nil {
			t.Fatal(err)
		}
		mvAgg.Add(repMV.Metrics)

		pPlus := examplePlan(t)
		repPlus, err := Run(context.Background(), pPlus, Options{
			Strategy:   &cost.Expectation{},
			Redundancy: 3,
			Pool:       crowd.NewPool(25, 0.7, 0.1, stats.NewRNG(uint64(100+i))),
			Quality:    CDBPlus,
		})
		if err != nil {
			t.Fatal(err)
		}
		plusAgg.Add(repPlus.Metrics)
	}
	_, _, _, _, mvF1 := mvAgg.Mean()
	_, _, _, _, plusF1 := plusAgg.Mean()
	if plusF1 < mvF1-0.02 {
		t.Fatalf("CDB+ F1 (%v) should not trail majority voting (%v)", plusF1, mvF1)
	}
}

func TestProjectAnswer(t *testing.T) {
	d := dataset.RunningExample()
	q := `SELECT Researcher.name, Citation.number
	      FROM Paper, Researcher, Citation, University
	      WHERE Paper.author CROWDJOIN Researcher.name AND
	            Paper.title CROWDJOIN Citation.title AND
	            Researcher.affiliation CROWDJOIN University.name;`
	p, err := BuildPlan(mustSelect(t, q), d.Catalog, d.Oracle, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), p, Options{Strategy: &cost.Expectation{}, Redundancy: 5, Pool: perfectPool(9, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Answers) != 3 {
		t.Fatalf("answers = %d", len(rep.Answers))
	}
	names := map[string]bool{}
	for _, a := range rep.Answers {
		row, err := p.ProjectAnswer(a)
		if err != nil {
			t.Fatal(err)
		}
		if len(row) != 2 {
			t.Fatalf("projected row = %v", row)
		}
		names[row[0]] = true
	}
	for _, want := range []string{"Bruce W Croft", "H. Jagadish", "S. Chaudhuri"} {
		if !names[want] {
			t.Fatalf("missing expected researcher %q in %v", want, names)
		}
	}
}

func TestProjectAnswerStar(t *testing.T) {
	p := examplePlan(t)
	rep, err := Run(context.Background(), p, Options{Strategy: &cost.Expectation{}, Redundancy: 5, Pool: perfectPool(10, 30)})
	if err != nil {
		t.Fatal(err)
	}
	row, err := p.ProjectAnswer(rep.Answers[0])
	if err != nil {
		t.Fatal(err)
	}
	// SELECT *: 3 (Paper) + 3 (Researcher) + 2 (Citation) + 3 (University).
	if len(row) != 11 {
		t.Fatalf("star projection has %d columns, want 11: %v", len(row), row)
	}
}

func TestRunOptionValidation(t *testing.T) {
	p := examplePlan(t)
	if _, err := Run(context.Background(), p, Options{Pool: perfectPool(1, 5)}); err == nil || !strings.Contains(err.Error(), "Strategy") {
		t.Fatal("missing strategy should error")
	}
	if _, err := Run(context.Background(), p, Options{Strategy: &cost.Expectation{}}); err == nil || !strings.Contains(err.Error(), "Pool") {
		t.Fatal("missing pool should error")
	}
}

func TestGeneratedDatasetEndToEnd(t *testing.T) {
	// Integration: small generated paper dataset, 2J query, CDB vs
	// CrowdDB cost with perfect workers.
	d := dataset.GenPaper(dataset.Config{Seed: 42, Scale: 0.06})
	q := dataset.Queries("paper")["2J"]
	build := func() *Plan {
		p, err := BuildPlan(mustSelect(t, q), d.Catalog, d.Oracle, DefaultPlanConfig())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pC := build()
	if len(pC.TrueAnswerKeys()) == 0 {
		t.Skip("generated instance has no answers at this scale/seed")
	}
	repC, err := Run(context.Background(), pC, Options{Strategy: &cost.Expectation{}, Redundancy: 1, Pool: perfectPool(11, 30)})
	if err != nil {
		t.Fatal(err)
	}
	pT := build()
	repT, err := Run(context.Background(), pT, Options{Strategy: baselines.NewTreeModel("CrowdDB", baselines.CrowdDBOrder(pT.S)), Redundancy: 1, Pool: perfectPool(11, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if repC.Metrics.Recall < 0.99 || repT.Metrics.Recall < 0.99 {
		t.Fatalf("perfect-worker recall: CDB %v, CrowdDB %v", repC.Metrics.Recall, repT.Metrics.Recall)
	}
	if repC.Metrics.Tasks > repT.Metrics.Tasks {
		t.Fatalf("CDB (%d) asked more than CrowdDB (%d)", repC.Metrics.Tasks, repT.Metrics.Tasks)
	}
}

func TestCrossMarketRouting(t *testing.T) {
	// Two markets; the router deals tasks across both (the paper's
	// cross-market HIT deployment).
	rng := stats.NewRNG(31)
	amt := crowd.NewMarket("AMT", true, crowd.NewPerfectPool(10, rng.Split()))
	cf := crowd.NewMarket("CrowdFlower", false, crowd.NewPerfectPool(10, rng.Split()))
	p := examplePlan(t)
	rep, err := Run(context.Background(), p, Options{
		Strategy:   &cost.Expectation{},
		Redundancy: 3,
		Pool:       crowd.NewPerfectPool(10, rng.Split()),
		Router:     crowd.NewRouter(amt, cf),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Recall < 0.99 {
		t.Fatalf("routed execution recall = %v", rep.Metrics.Recall)
	}
	if rep.PerMarket["AMT"] == 0 || rep.PerMarket["CrowdFlower"] == 0 {
		t.Fatalf("tasks not spread across markets: %v", rep.PerMarket)
	}
	if rep.PerMarket["AMT"]+rep.PerMarket["CrowdFlower"] != rep.Metrics.Tasks {
		t.Fatalf("market counts %v do not add up to %d tasks", rep.PerMarket, rep.Metrics.Tasks)
	}
}

func TestERSideOracle(t *testing.T) {
	p := examplePlan(t)
	side := p.ERSideOracle(0.4)
	pairs := side(0, nil) // Paper.author ~ Researcher.name predicate
	if len(pairs) == 0 {
		t.Fatal("expected within-side similar pairs among the running example names")
	}
	sawMatch := false
	for _, sp := range pairs {
		if sp.U == sp.V {
			t.Fatal("self pair in side dedup")
		}
		if g1, g2 := p.G.TableOf(sp.U), p.G.TableOf(sp.V); g1 != g2 {
			t.Fatal("side pair spans two tables")
		}
		if sp.Match {
			sawMatch = true
		}
	}
	// "Michael J. Franklin"/"Michael Franklin" (same entity) should be
	// a within-side match across the Paper/Researcher name columns...
	// they live in different tables, so within-side matches come from
	// same-column duplicates; at minimum the call must be well-formed.
	_ = sawMatch
	// Out-of-range predicate and selection predicates yield nothing.
	if got := side(99, nil); got != nil {
		t.Fatalf("bad pred should yield nil, got %v", got)
	}
}

func TestERSideOracleRespectsAlive(t *testing.T) {
	p := examplePlan(t)
	side := p.ERSideOracle(0.4)
	empty := map[int]bool{} // nothing alive
	if pairs := side(0, empty); len(pairs) != 0 {
		t.Fatalf("no alive vertices should mean no side pairs, got %d", len(pairs))
	}
}

func TestExactOracle(t *testing.T) {
	o := ExactOracle{}
	if !o.JoinMatch("A", "x", "B", "y", " MIT ", "mit") {
		t.Fatal("case/space-folded equality should match")
	}
	if o.JoinMatch("A", "x", "B", "y", "MIT", "Stanford") {
		t.Fatal("different values should not match")
	}
	if !o.SelMatch("A", "x", "usa", "USA") || o.SelMatch("A", "x", "UK", "USA") {
		t.Fatal("SelMatch broken")
	}
}

func TestQualityModeString(t *testing.T) {
	if MajorityVoting.String() != "majority-voting" || CDBPlus.String() != "cdb+" {
		t.Fatal("mode strings broken")
	}
}

func TestCDBPlusEarlyStopSavesAssignments(t *testing.T) {
	// With perfect workers and a 0.95 confidence threshold, CDB+ stops
	// collecting answers for a task once it is confident, so the total
	// assignment count stays below the k-per-task ceiling.
	p := examplePlan(t)
	rep, err := Run(context.Background(), p, Options{
		Strategy:   &cost.Expectation{},
		Redundancy: 5,
		Quality:    CDBPlus,
		Pool:       perfectPool(41, 40),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assignments >= rep.Metrics.Tasks*5 {
		t.Fatalf("CDB+ used %d assignments for %d tasks — early stop never fired",
			rep.Assignments, rep.Metrics.Tasks)
	}
	if rep.Metrics.Recall < 0.99 {
		t.Fatalf("recall = %v", rep.Metrics.Recall)
	}
}

func TestMetadataRecording(t *testing.T) {
	p := examplePlan(t)
	store := meta.NewStore()
	rep, err := Run(context.Background(), p, Options{
		Strategy:   &cost.Expectation{},
		Redundancy: 3,
		Pool:       perfectPool(51, 30),
		Meta:       store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if store.Tasks().Len() != rep.Metrics.Tasks {
		t.Fatalf("recorded %d tasks, executor reports %d", store.Tasks().Len(), rep.Metrics.Tasks)
	}
	if store.Assignments().Len() != rep.Assignments {
		t.Fatalf("recorded %d assignments, executor reports %d", store.Assignments().Len(), rep.Assignments)
	}
	st := store.ComputeStats()
	if st.PerKind[meta.TaskJoin] != rep.Metrics.Tasks {
		t.Fatalf("all running-example tasks are joins: %v", st.PerKind)
	}
	// Every task has a verdict after the run.
	for _, row := range store.Tasks().Rows {
		if row[5].S != "match" && row[5].S != "nonmatch" {
			t.Fatalf("task without verdict: %v", row)
		}
	}
	// Match rate equals the fraction of asked edges that are truly blue
	// (perfect workers).
	blueAsked := 0
	for e := 0; e < p.G.NumEdges(); e++ {
		if p.G.Edge(e).Color == graph.Blue {
			blueAsked++
		}
	}
	if want := float64(blueAsked) / float64(rep.Metrics.Tasks); st.MatchRate != want {
		t.Fatalf("match rate = %v, want %v", st.MatchRate, want)
	}
}

func TestMetadataRecordingCDBPlus(t *testing.T) {
	p := examplePlan(t)
	store := meta.NewStore()
	_, err := Run(context.Background(), p, Options{
		Strategy:   &cost.Expectation{},
		Redundancy: 3,
		Quality:    CDBPlus,
		Pool:       crowd.NewPool(25, 0.85, 0.05, stats.NewRNG(61)),
		Meta:       store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if store.Tasks().Len() == 0 || store.Assignments().Len() == 0 {
		t.Fatal("CDB+ path did not record metadata")
	}
	// EM quality estimates must have been written back.
	sawEstimate := false
	for _, row := range store.Workers().Rows {
		if row[2].F != 0.7 {
			sawEstimate = true
		}
	}
	if !sawEstimate {
		t.Fatal("no EM quality estimate reached the worker relation")
	}
}

func TestCalibrationDoesNotBreakExecution(t *testing.T) {
	// Calibration re-weights edges mid-query; answers must be unchanged
	// with a perfect crowd and cost must stay sane.
	d := dataset.GenPaper(dataset.Config{Seed: 11, Scale: 0.08})
	q := dataset.Queries("paper")["2J"]
	build := func() *Plan {
		p, err := BuildPlan(mustSelect(t, q), d.Catalog, d.Oracle, DefaultPlanConfig())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pPlain := build()
	plain, err := Run(context.Background(), pPlain, Options{Strategy: &cost.Expectation{}, Redundancy: 1, Pool: perfectPool(71, 20)})
	if err != nil {
		t.Fatal(err)
	}
	pCal := build()
	cal, err := Run(context.Background(), pCal, Options{Strategy: &cost.Expectation{}, Redundancy: 1, Pool: perfectPool(71, 20), Calibrate: true})
	if err != nil {
		t.Fatal(err)
	}
	if cal.Metrics.Recall < 0.99 || plain.Metrics.Recall < 0.99 {
		t.Fatalf("recall: plain %v calibrated %v", plain.Metrics.Recall, cal.Metrics.Recall)
	}
	// Calibration should not blow the cost up (within 25% either way is
	// acceptable on this instance; the ablation bench tracks the rest).
	lo, hi := plain.Metrics.Tasks*3/4, plain.Metrics.Tasks*5/4
	if cal.Metrics.Tasks < lo || cal.Metrics.Tasks > hi {
		t.Fatalf("calibrated cost %d far from plain %d", cal.Metrics.Tasks, plain.Metrics.Tasks)
	}
}

func TestSelectivityHintsRescaleWeights(t *testing.T) {
	d := dataset.RunningExample()
	cfg := DefaultPlanConfig()
	base, err := BuildPlan(mustSelect(t, dataset.RunningExampleQuery), d.Catalog, d.Oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	predName := base.S.Preds[0].Name
	var baseMean float64
	var n int
	for e := 0; e < base.G.NumEdges(); e++ {
		if ed := base.G.Edge(e); ed.Pred == 0 {
			baseMean += ed.W
			n++
		}
	}
	baseMean /= float64(n)

	cfg.Selectivity = map[string]float64{predName: baseMean / 2}
	hinted, err := BuildPlan(mustSelect(t, dataset.RunningExampleQuery), d.Catalog, d.Oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hintedMean float64
	for e := 0; e < hinted.G.NumEdges(); e++ {
		if ed := hinted.G.Edge(e); ed.Pred == 0 {
			hintedMean += ed.W
		}
	}
	hintedMean /= float64(n)
	if diff := hintedMean - baseMean/2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("hinted mean = %v, want %v", hintedMean, baseMean/2)
	}
	// Other predicates untouched.
	if hinted.G.Edge(hinted.G.NumEdges()-1).W != base.G.Edge(base.G.NumEdges()-1).W {
		t.Fatal("unhinted predicate weights changed")
	}
}

func TestStatsFeedbackLoop(t *testing.T) {
	// Run once with metadata, feed the observed selectivities into a
	// second plan, and verify the second run still finds everything.
	d := dataset.RunningExample()
	store := meta.NewStore()
	p1, err := BuildPlan(mustSelect(t, dataset.RunningExampleQuery), d.Catalog, d.Oracle, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), p1, Options{Strategy: &cost.Expectation{}, Redundancy: 1, Pool: perfectPool(81, 20), Meta: store}); err != nil {
		t.Fatal(err)
	}
	hints := store.ComputeStats().Selectivity
	if len(hints) == 0 {
		t.Fatal("no selectivities observed")
	}
	cfg := DefaultPlanConfig()
	cfg.Selectivity = hints
	p2, err := BuildPlan(mustSelect(t, dataset.RunningExampleQuery), d.Catalog, d.Oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), p2, Options{Strategy: &cost.Expectation{}, Redundancy: 1, Pool: perfectPool(82, 20)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Recall < 0.99 || rep.Metrics.Precision < 0.99 {
		t.Fatalf("feedback run metrics: %+v", rep.Metrics)
	}
}
