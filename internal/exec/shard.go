package exec

import (
	"sort"

	"cdb/internal/graph"
)

// Component sharding (the cluster layer's partitioning unit).
//
// The graph model never optimizes across connected components: every
// embedding — candidate, answer or ground-truth answer — draws one edge
// per predicate, consecutive predicates in the connected order share a
// table, and the shared table forces a shared vertex, so all of an
// embedding's edges are transitively vertex-connected and lie in ONE
// tuple-level component. Components are therefore a coordination-free
// unit of distribution: executing each component on a different node
// and unioning the answers reproduces the single-node answer set
// exactly, and per-component crowd work never overlaps (equal task
// keys imply shared cell values, which similarity-join instantiation
// connects into one component).
//
// A shard executes the full plan with every component it does not own
// pre-colored red: red edges are invisible to strategies, enumeration
// and answers, so the run does exactly the owned components' work while
// edge ids, predicate order and verdict keys stay globally consistent
// with every other shard building the same statement.

// ComponentKey canonically names one tuple-graph component: the
// lexicographically smallest task key among its member edges. The key
// is a pure function of the statement and the dataset — never of seeds,
// colors or scheduling — so every node derives the same partition.
func componentKey(p *Plan, members []int) string {
	key := ""
	for i, e := range members {
		if k := p.TaskKey(e); i == 0 || k < key {
			key = k
		}
	}
	return key
}

// ComponentKeys returns the canonical key of every component of the
// freshly built plan, sorted. Must be called before execution colors
// the graph (red verdicts dissolve components).
func ComponentKeys(p *Plan) []string {
	comps := p.G.ConnectedComponents()
	keys := make([]string, 0, len(comps))
	for _, members := range comps {
		keys = append(keys, componentKey(p, members))
	}
	sort.Strings(keys)
	return keys
}

// ShardScope records the component restriction applied to a plan: which
// edges belong to owned components, and how the partition split.
type ShardScope struct {
	// Owned flags, per edge id, membership in an owned component.
	Owned []bool
	// OwnedComponents / TotalComponents count the partition.
	OwnedComponents int
	TotalComponents int
}

// RestrictToOwned colors every component whose canonical key the owner
// predicate rejects red, so the subsequent Run executes only the owned
// components. Must run on a freshly built plan. The returned scope
// remembers the owned edge set for truth accounting (the graph itself
// forgets why an edge is red).
func RestrictToOwned(p *Plan, owned func(componentKey string) bool) *ShardScope {
	comps := p.G.ConnectedComponents()
	sc := &ShardScope{
		Owned:           make([]bool, p.G.NumEdges()),
		TotalComponents: len(comps),
	}
	for _, members := range comps {
		if owned(componentKey(p, members)) {
			sc.OwnedComponents++
			for _, e := range members {
				sc.Owned[e] = true
			}
		} else {
			for _, e := range members {
				p.G.SetColor(e, graph.Red)
			}
		}
	}
	return sc
}

// TruthCounts scores the owned slice of the ground truth after a
// restricted run: the number of true answers whose supporting edges all
// lie in owned components, and how many of them the run returned.
// Truth embeddings partition by component exactly like answers do, so
// summing (total, correct) across a disjoint shard cover reproduces the
// single-node |truth| and |answers ∩ truth| — the raw counts a
// coordinator needs to recompute precision and recall bit-identically.
func (sc *ShardScope) TruthCounts(p *Plan) (total, correct int) {
	truth := map[string]bool{}
	p.G.EnumerateEmbeddings(nil,
		func(e graph.Edge) bool { return p.Truth[e.ID] && sc.Owned[e.ID] },
		func(assign, _ []int) bool {
			truth[assignKey(assign)] = true
			return true
		})
	total = len(truth)
	for k := range p.AnswerKeys() {
		if truth[k] {
			correct++
		}
	}
	return total, correct
}

// MergeKeys derives the deterministic merge key of each answer: its
// chosen-edge vector laid out along the connected predicate order.
// Enumeration emits answers in lexicographic merge-key order, and edge
// ids are globally consistent across nodes planning the same statement,
// so sorting the union of per-shard answers by merge key reproduces the
// single-node row order exactly.
func MergeKeys(p *Plan, answers []graph.Embedding) [][]int {
	order := p.S.PredOrder()
	out := make([][]int, len(answers))
	for i, a := range answers {
		key := make([]int, len(order))
		for j, pIdx := range order {
			key[j] = a.Edges[pIdx]
		}
		out[i] = key
	}
	return out
}

// ShardInfo is the per-shard execution sidecar a scatter-gather
// coordinator merges: row merge keys plus the owned slice of the
// ground-truth accounting. Serialized on the cluster wire next to the
// ordinary Result.
type ShardInfo struct {
	// Components / TotalComponents report the partition this run owned.
	Components      int `json:"components"`
	TotalComponents int `json:"total_components"`
	// MergeKeys holds one key per result row, aligned with Rows.
	MergeKeys [][]int `json:"merge_keys,omitempty"`
	// TruthTotal / TruthCorrect are the owned ground-truth counts
	// (see ShardScope.TruthCounts).
	TruthTotal   int `json:"truth_total"`
	TruthCorrect int `json:"truth_correct"`
}
