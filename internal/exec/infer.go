package exec

import (
	"cdb/internal/graph"
	"cdb/internal/obs"
)

// Transitive-inference integration (see internal/graph/closure.go for
// the overlay itself). When Options.Transitive is on, the executor
// maintains one Closure per run, hands it to closure-aware strategies
// so they never ask entailed edges, and after every crowd round colors
// every entailed label into the graph — marked as inferred, not
// crowd-answered — so pruning, validity and answer assembly all see it
// without spending a HIT.

var mInferred = obs.Default.Counter("cdb_exec_inferred_edges_total")

// ClosureCarrier is implemented by strategies that can consult the
// transitive-inference overlay (Expectation, NaiveExpectation,
// Budget). The executor installs the run's closure before the first
// round and removes it after.
type ClosureCarrier interface {
	SetClosure(*graph.Closure)
}

// AnswerProvenance breaks one answer's supporting edges down by how
// their labels were decided.
type AnswerProvenance struct {
	// Crowd counts edges answered by crowd work (any crowdsourcing
	// path, including shared-resolver verdicts).
	Crowd int `json:"crowd"`
	// Inferred counts edges labeled by transitive inference.
	Inferred int `json:"inferred,omitempty"`
	// Prior counts edges decided without either — exact equi-join
	// matches pre-colored at plan build.
	Prior int `json:"prior,omitempty"`
}

// InferredTask couples a task's canonical identity with the verdict
// transitive inference derived for it, for publication to a shared
// serving layer.
type InferredTask struct {
	Req   TaskRequest
	Value bool
}

// InferredPublisher is optionally implemented by a TaskResolver that
// wants inferred verdicts pushed into its cross-query cache, so one
// query's closure can answer another query's task without crowd work.
type InferredPublisher interface {
	PublishInferred(tasks []InferredTask)
}

func (rep *Report) markCrowd(e int) {
	if rep.crowdEdges == nil {
		rep.crowdEdges = make(map[int]bool)
	}
	rep.crowdEdges[e] = true
}

// applyInference colors every entailed label into the graph after a
// round of crowd answers: Update folds the round's verdicts into the
// overlay, then one pass over the valid uncolored edges applies what
// they entail (one pass suffices — entailed labels add no closure
// information). Inferred edges inherit the weakest confidence on their
// entailing path and are tracked for Stats.Inferred and per-answer
// provenance. When the resolver supports it, the inferred verdicts are
// also published for cross-query reuse. Returns the number of edges
// inferred.
func (rep *Report) applyInference(p *Plan, c *graph.Closure, opts Options) int {
	g := p.G
	c.Update()
	publisher, wantPub := opts.Resolver.(InferredPublisher)
	var pub []InferredTask
	n := 0
	for _, id := range g.ValidUncolored() {
		col, conf, ok := c.Entails(id)
		if !ok {
			continue
		}
		g.SetColor(id, col)
		if rep.inferredEdges == nil {
			rep.inferredEdges = make(map[int]bool)
		}
		rep.inferredEdges[id] = true
		rep.setEdgeConf(id, conf)
		n++
		if wantPub {
			pub = append(pub, InferredTask{
				Req: TaskRequest{
					Edge:  id,
					Key:   p.TaskKey(id),
					Truth: p.Truth[id],
					Prior: g.Edge(id).W,
					K:     opts.Redundancy,
				},
				Value: col == graph.Blue,
			})
		}
	}
	if n > 0 {
		rep.Inferred += n
		mInferred.Add(int64(n))
		if wantPub {
			publisher.PublishInferred(pub)
		}
	}
	return n
}

// assembleProvenance fills Report.Provenance, aligned with Answers.
func (rep *Report) assembleProvenance() {
	rep.Provenance = make([]AnswerProvenance, len(rep.Answers))
	for i, a := range rep.Answers {
		pv := &rep.Provenance[i]
		for _, eid := range a.Edges {
			switch {
			case rep.inferredEdges[eid]:
				pv.Inferred++
			case rep.crowdEdges[eid]:
				pv.Crowd++
			default:
				pv.Prior++
			}
		}
	}
}
