package exec

import (
	"context"
	"testing"

	"cdb/internal/cost"
	"cdb/internal/crowd"
	"cdb/internal/faults"
	"cdb/internal/graph"
	"cdb/internal/stats"
	"cdb/internal/testutil"
)

// asyncSetup builds the fault-tolerant transport over two markets with
// identical worker statistics. The caller owns Close.
func asyncSetup(seed uint64, inj *faults.Injector) (Options, *crowd.Transport) {
	rng := stats.NewRNG(seed)
	pool := crowd.NewPool(30, 0.9, 0.05, rng.Split())
	tp := crowd.NewTransport(crowd.TransportConfig{
		Markets: []*crowd.Market{
			crowd.NewMarket("amt", true, pool),
			crowd.NewMarket("crowdflower", true, crowd.NewPool(30, 0.9, 0.05, rng.Split())),
		},
		Faults: inj,
		Seed:   seed,
	})
	return Options{
		Strategy:   &cost.Expectation{},
		Redundancy: 5,
		Pool:       pool,
		Transport:  tp,
	}, tp
}

// TestAsyncCleanComplete: without faults the async path completes the
// query, marks nothing partial, and reports full per-answer
// confidence.
func TestAsyncCleanComplete(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	p := examplePlan(t)
	opts, tp := asyncSetup(1, nil)
	defer tp.Close()
	rep, err := Run(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reliability.Partial {
		t.Fatalf("clean async run marked partial: %+v", rep.Reliability)
	}
	if rep.Reliability.Lost != 0 || rep.Reliability.Retried != 0 {
		t.Fatalf("clean async run lost/retried tasks: %+v", rep.Reliability)
	}
	if len(rep.Answers) == 0 {
		t.Fatal("no answers")
	}
	if len(rep.Confidence) != len(rep.Answers) {
		t.Fatalf("confidence entries %d, answers %d", len(rep.Confidence), len(rep.Answers))
	}
	for i, c := range rep.Confidence {
		if c < 0.5 || c > 1 {
			t.Fatalf("answer %d confidence %v out of range", i, c)
		}
	}
	if rep.PerMarket["amt"] == 0 || rep.PerMarket["crowdflower"] == 0 {
		t.Fatalf("round-robin across markets broken: %v", rep.PerMarket)
	}
}

// TestAsyncDedupInvariant: a duplicate-only fault load must be fully
// absorbed by idempotent (task, worker) dedup — the verdicts, answer
// set and assignment count are identical to the fault-free run of the
// same seed, and Eq. 2 never sees a doubled opinion.
func TestAsyncDedupInvariant(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	run := func(inj *faults.Injector) *Report {
		p := examplePlan(t)
		opts, tp := asyncSetup(3, inj)
		defer tp.Close()
		rep, err := Run(context.Background(), p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	clean := run(nil)
	dup := run(faults.New(faults.Config{Seed: 9, DuplicateRate: 0.5}))
	if dup.Reliability.Duplicates == 0 {
		t.Fatal("no duplicates injected at rate 0.5")
	}
	if dup.Assignments != clean.Assignments {
		t.Fatalf("dedup leaked: %d assignments with duplicates, %d clean",
			dup.Assignments, clean.Assignments)
	}
	ck, dk := clean.Metrics.F1(), dup.Metrics.F1()
	if ck != dk {
		t.Fatalf("duplicate-only faults changed F1: %v vs %v", dk, ck)
	}
	if len(clean.Answers) != len(dup.Answers) {
		t.Fatalf("duplicate-only faults changed answers: %d vs %d",
			len(dup.Answers), len(clean.Answers))
	}
}

// TestAsyncRetriesRecoverDrops: dropped assignments trigger reissue
// waves that refill the tasks; the query still completes un-partial.
func TestAsyncRetriesRecoverDrops(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	p := examplePlan(t)
	opts, tp := asyncSetup(2, faults.New(faults.Config{Seed: 7, DropRate: 0.3}))
	defer tp.Close()
	rep, err := Run(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reliability.Retried == 0 {
		t.Fatal("30% drop rate triggered no retries")
	}
	if rep.Reliability.Reissued == 0 {
		t.Fatal("retried tasks reissued no assignments")
	}
	if rep.Reliability.Lost > 0 {
		t.Fatalf("retries failed to recover: %d tasks lost", rep.Reliability.Lost)
	}
	if rep.Metrics.F1() < 0.5 {
		t.Fatalf("F1 %v collapsed under recoverable drops", rep.Metrics.F1())
	}
}

// TestAsyncHedging: heavy stragglers make tasks miss the hedge peek,
// so the executor speculatively reissues the slowest ones.
func TestAsyncHedging(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	p := examplePlan(t)
	opts, tp := asyncSetup(4, faults.New(faults.Config{Seed: 13, StragglerRate: 0.6}))
	defer tp.Close()
	rep, err := Run(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reliability.Hedged == 0 {
		t.Fatal("60% stragglers triggered no hedging")
	}
	if rep.Reliability.Late == 0 {
		t.Fatal("stragglers produced no late answers")
	}
}

// TestAsyncLostFallsBackToPrior: when every answer is dropped, retries
// exhaust, verdicts degrade to the optimizer's prior, and the result
// is flagged partial with reason "tasks-lost" instead of erroring.
func TestAsyncLostFallsBackToPrior(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	p := examplePlan(t)
	opts, tp := asyncSetup(5, faults.New(faults.Config{Seed: 21, DropRate: 1}))
	defer tp.Close()
	rep, err := Run(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reliability.Partial || rep.Reliability.Reason != "tasks-lost" {
		t.Fatalf("total loss not flagged: %+v", rep.Reliability)
	}
	if rep.Reliability.Lost == 0 {
		t.Fatal("no tasks recorded lost under 100% drop")
	}
	if rep.Assignments != 0 {
		t.Fatalf("phantom assignments under 100%% drop: %d", rep.Assignments)
	}
	// Prior fallback still yields a complete (if low-confidence) graph
	// coloring, so the round loop terminated rather than spinning.
	if rep.Metrics.Rounds == 0 {
		t.Fatal("no rounds completed")
	}
}

// TestAsyncStrictFailsFast: the same total loss under Strict is an
// error, not a partial result.
func TestAsyncStrictFailsFast(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	p := examplePlan(t)
	opts, tp := asyncSetup(5, faults.New(faults.Config{Seed: 21, DropRate: 1}))
	defer tp.Close()
	opts.Reliability = Reliability{Strict: true}
	if _, err := Run(context.Background(), p, opts); err == nil {
		t.Fatal("strict mode returned no error under total loss")
	}
}

// TestAsyncRetryBudgetCharged: a tiny retry budget caps the reissued
// assignments even when many tasks want retries.
func TestAsyncRetryBudgetCharged(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	p := examplePlan(t)
	opts, tp := asyncSetup(6, faults.New(faults.Config{Seed: 17, DropRate: 0.5}))
	defer tp.Close()
	opts.Reliability = Reliability{RetryBudget: 10, HedgeFrac: -1}
	rep, err := Run(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reliability.Reissued > 10 {
		t.Fatalf("reissued %d assignments over a budget of 10", rep.Reliability.Reissued)
	}
}

// cancelAfterRounds delegates to an inner strategy and fires a cancel
// on the n-th NextRound call, so cancellation lands at a
// deterministic, schedule-independent point of the query: the executor
// notices it inside round n's first collect and discards that round.
type cancelAfterRounds struct {
	inner  cost.Strategy
	after  int
	calls  int
	cancel context.CancelFunc
}

func (c *cancelAfterRounds) Name() string { return c.inner.Name() }

func (c *cancelAfterRounds) NextRound(g *graph.Graph) []int {
	c.calls++
	if c.calls == c.after {
		c.cancel()
	}
	return c.inner.NextRound(g)
}

func (c *cancelAfterRounds) Flush(g *graph.Graph) []int { return c.inner.Flush(g) }

// TestAsyncCancellationDeterministic: cancelling during round n
// discards that round wholesale — the partial result equals the state
// after round n-1, identically across reruns, and no goroutines leak.
func TestAsyncCancellationDeterministic(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	run := func() *Report {
		p := examplePlan(t)
		opts, tp := asyncSetup(8, faults.New(faults.Config{Seed: 3, DropRate: 0.1}))
		defer tp.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		opts.Strategy = &cancelAfterRounds{inner: opts.Strategy, after: 2, cancel: cancel}
		rep, err := Run(ctx, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want := run()
	if !want.Reliability.Partial || want.Reliability.Reason != "canceled" {
		t.Fatalf("cancellation not flagged: %+v", want.Reliability)
	}
	if want.Reliability.RoundsTruncated != 1 {
		t.Fatalf("RoundsTruncated = %d, want 1", want.Reliability.RoundsTruncated)
	}
	if want.Metrics.Rounds != 1 {
		t.Fatalf("completed rounds = %d, want exactly the pre-cancel round", want.Metrics.Rounds)
	}
	for trial := 0; trial < 3; trial++ {
		got := run()
		if got.Assignments != want.Assignments ||
			got.Metrics.Rounds != want.Metrics.Rounds ||
			len(got.Answers) != len(want.Answers) ||
			got.Reliability != want.Reliability {
			t.Fatalf("trial %d: partial result not deterministic:\n got %+v (%d answers, %d asks)\nwant %+v (%d answers, %d asks)",
				trial, got.Reliability, len(got.Answers), got.Assignments,
				want.Reliability, len(want.Answers), want.Assignments)
		}
	}
}

// TestAsyncStrictCancellationErrors: Strict turns mid-query
// cancellation into a context error.
func TestAsyncStrictCancellationErrors(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)()
	p := examplePlan(t)
	opts, tp := asyncSetup(9, nil)
	defer tp.Close()
	opts.Reliability = Reliability{Strict: true}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, p, opts); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
