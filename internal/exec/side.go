package exec

import (
	"cdb/internal/baselines"
	"cdb/internal/cql"
	"cdb/internal/sim"
)

// ERSideOracle adapts the plan into the side-dedup supplier the ER
// baselines (Trans/ACD) need: for a crowd-join predicate, the
// within-column value pairs on each side whose similarity reaches
// epsSide. Real entity-resolution systems crowdsource these pairs to
// power transitivity — a cost CDB's graph model never pays. Exact
// duplicates are skipped (deduplicated for free), and pairs are
// restricted to currently-alive vertices. Ground-truth outcomes come
// from the plan's oracle; answer noise on side pairs is not modelled
// (a strictly ER-favourable simplification, recorded in DESIGN.md).
func (p *Plan) ERSideOracle(epsSide float64) baselines.SideOracle {
	if epsSide <= 0 {
		epsSide = 0.55
	}
	return func(pred int, alive map[int]bool) []baselines.SidePair {
		if pred < 0 || pred >= len(p.Bindings) {
			return nil
		}
		b := p.Bindings[pred]
		if b.Pred.Kind != cql.CrowdJoin {
			return nil
		}
		var out []baselines.SidePair
		for _, side := range [2]struct{ tab, col int }{
			{b.LeftTab, b.LeftCol}, {b.RightTab, b.RightCol},
		} {
			tb := p.Tables[side.tab]
			if tb == nil {
				continue
			}
			var rows []int
			var vals []string
			for r := 0; r < tb.Len(); r++ {
				v := p.G.VertexID(side.tab, r)
				if alive != nil && !alive[v] {
					continue
				}
				cell := tb.Cell(r, side.col)
				if cell.Null {
					continue
				}
				rows = append(rows, r)
				vals = append(vals, cell.String())
			}
			name := p.S.Tables[side.tab]
			colName := tb.Schema.Columns[side.col].Name
			for _, pr := range sim.Join(p.Cfg.Sim, vals, vals, epsSide) {
				if pr.Left >= pr.Right || vals[pr.Left] == vals[pr.Right] {
					continue
				}
				out = append(out, baselines.SidePair{
					U:     p.G.VertexID(side.tab, rows[pr.Left]),
					V:     p.G.VertexID(side.tab, rows[pr.Right]),
					Match: p.Orc.JoinMatch(name, colName, name, colName, vals[pr.Left], vals[pr.Right]),
				})
			}
		}
		return out
	}
}
